// Why-provenance through a tree query (§7 of Hu–Yi PODS'20 + annotated
// relations of Green et al.).
//
// A supply-chain database forms a tree query: Suppliers ship Parts,
// Parts go into Assemblies, Assemblies are installed at Plants, and
// Plants serve Regions:
//
//	Ships(S, P) ⋈ Into(P, A) ⋈ Installed(A, L) ⋈ Serves(L, R)
//	GROUP BY S, R
//
// with the part, assembly and plant attributes aggregated away. Under the
// why-provenance semiring the annotation of each (supplier, region) output
// is the set of minimal witness sets — which concrete shipment, usage,
// installation and service records derive the connection. The same query
// under the Boolean semiring merely says the connection exists; provenance
// says why, which is what an auditor recalls when a batch is recalled.
package main

import (
	"fmt"

	"mpcjoin"
)

func main() {
	q := mpcjoin.NewQuery().
		Relation("Ships", "S", "P").
		Relation("Into", "P", "A").
		Relation("Installed", "A", "L").
		Relation("Serves", "L", "R").
		GroupBy("S", "R")

	data := mpcjoin.Instance[mpcjoin.Provenance]{
		"Ships":     mpcjoin.NewRelation[mpcjoin.Provenance]("S", "P"),
		"Into":      mpcjoin.NewRelation[mpcjoin.Provenance]("P", "A"),
		"Installed": mpcjoin.NewRelation[mpcjoin.Provenance]("A", "L"),
		"Serves":    mpcjoin.NewRelation[mpcjoin.Provenance]("L", "R"),
	}
	// Every base record gets a unique witness id; names below are comments.
	next := mpcjoin.Witness(0)
	tag := func() mpcjoin.Provenance { next++; return mpcjoin.WhyOf(next) }

	// Suppliers 1, 2 ship parts 10, 11; both parts go into assembly 100;
	// a second assembly 101 uses part 11 only.
	data["Ships"].Add(tag(), 1, 10)  // w1
	data["Ships"].Add(tag(), 1, 11)  // w2
	data["Ships"].Add(tag(), 2, 11)  // w3
	data["Into"].Add(tag(), 10, 100) // w4
	data["Into"].Add(tag(), 11, 100) // w5
	data["Into"].Add(tag(), 11, 101) // w6
	// Assembly 100 installed at plants 1000, 1001; 101 at 1001 only.
	data["Installed"].Add(tag(), 100, 1000) // w7
	data["Installed"].Add(tag(), 100, 1001) // w8
	data["Installed"].Add(tag(), 101, 1001) // w9
	// Plant 1000 serves region 7; plant 1001 serves regions 7 and 8.
	data["Serves"].Add(tag(), 1000, 7) // w10
	data["Serves"].Add(tag(), 1001, 7) // w11
	data["Serves"].Add(tag(), 1001, 8) // w12

	cls, _ := q.Class()
	fmt.Printf("query class: %s\n\n", cls)

	res, err := mpcjoin.Execute[mpcjoin.Provenance](mpcjoin.Why(), q, data,
		mpcjoin.WithServers(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("supplier → region connections (engine %s):\n", res.Engine)
	for _, row := range res.Rows {
		fmt.Printf("  supplier %d → region %d, %d derivation(s):\n",
			row.Vals[0], row.Vals[1], len(row.Annot))
		for _, ws := range row.Annot {
			fmt.Printf("    records %v\n", ws)
		}
	}
	fmt.Printf("\nMPC cost: %d rounds, load L = %d\n", res.Stats.Rounds, res.Stats.MaxLoad)
}
