// Co-engagement analysis over behavioral logs — a star query (§5 of
// Hu–Yi PODS'20).
//
// Three event logs share the item attribute I: Viewed(U1, I),
// Carted(U2, I), Purchased(U3, I). The star query
//
//	∑_I Viewed(U1,I) ⋈ Carted(U2,I) ⋈ Purchased(U3,I)   GROUP BY U1,U2,U3
//
// counts, for every user triple, the number of items the first user
// viewed, the second carted, and the third purchased — the co-engagement
// signal behind "users like you also bought". Item popularity is heavily
// skewed, which is exactly the regime where the §5 per-permutation
// decomposition beats the Yannakakis baseline.
package main

import (
	"fmt"
	"math/rand"

	"mpcjoin"
)

const (
	nUsers  = 300
	nItems  = 1500
	nEvents = 3000
	p       = 16
)

func main() {
	rng := rand.New(rand.NewSource(7))
	q := mpcjoin.NewQuery().
		Relation("Viewed", "U1", "I").
		Relation("Carted", "U2", "I").
		Relation("Purchased", "U3", "I").
		GroupBy("U1", "U2", "U3")

	data := mpcjoin.Instance[int64]{
		"Viewed":    mpcjoin.NewRelation[int64]("U1", "I"),
		"Carted":    mpcjoin.NewRelation[int64]("U2", "I"),
		"Purchased": mpcjoin.NewRelation[int64]("U3", "I"),
	}
	// Zipf-ish item popularity: items 0..9 are blockbusters.
	item := func() mpcjoin.Value {
		if rng.Intn(4) == 0 {
			return mpcjoin.Value(rng.Intn(10))
		}
		return mpcjoin.Value(10 + rng.Intn(nItems-10))
	}
	seen := map[[3]int64]bool{}
	add := func(rel string, u int, it mpcjoin.Value) {
		k := [3]int64{int64(len(rel)), int64(u), int64(it)}
		if seen[k] {
			return
		}
		seen[k] = true
		data[rel].Add(1, mpcjoin.Value(u), it)
	}
	for i := 0; i < nEvents; i++ {
		add("Viewed", rng.Intn(nUsers), item())
		if i%2 == 0 {
			add("Carted", rng.Intn(nUsers), item())
		}
		if i%4 == 0 {
			add("Purchased", rng.Intn(nUsers), item())
		}
	}

	cls, _ := q.Class()
	fmt.Printf("query class: %s\n", cls)
	fmt.Printf("events: viewed %d, carted %d, purchased %d\n\n",
		data["Viewed"].Len(), data["Carted"].Len(), data["Purchased"].Len())

	res, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
		mpcjoin.WithServers(p), mpcjoin.WithSeed(3))
	if err != nil {
		panic(err)
	}
	var best int64
	var bestTriple []mpcjoin.Value
	var total int64
	for _, row := range res.Rows {
		total += row.Annot
		if row.Annot > best {
			best, bestTriple = row.Annot, row.Vals
		}
	}
	fmt.Printf("co-engagement triples (engine %s): %d, weight total %d\n",
		res.Engine, len(res.Rows), total)
	fmt.Printf("strongest triple: viewer %d / carter %d / buyer %d share %d items\n",
		bestTriple[0], bestTriple[1], bestTriple[2], best)

	base, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
		mpcjoin.WithServers(p), mpcjoin.WithBaseline())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nMPC load: §5 star algorithm L = %d vs Yannakakis L = %d\n",
		res.Stats.MaxLoad, base.Stats.MaxLoad)
	fmt.Println("(on this instance both are near the OUT/p floor; run " +
		"`mpcbench -experiment T1-Star-load` for the sweep where the gap widens)")
}
