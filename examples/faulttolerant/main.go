// Faulttolerant: the same two-hop reachability query as the quickstart,
// executed twice — once on a flawless simulated cluster and once under a
// seeded fault schedule (crashes, message drops, stragglers) with
// round-level retry. The fault plane's recovery is transparent: rows and
// metered cost are identical in both runs, and res.Faults reports what
// was injected, detected and retried. A third run exhausts the retry
// budget on purpose to show the typed failure path.
package main

import (
	"errors"
	"fmt"

	"mpcjoin"
)

func main() {
	q := mpcjoin.NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")

	data := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("A", "B"),
		"R2": mpcjoin.NewRelation[int64]("B", "C"),
	}
	for a := mpcjoin.Value(0); a < 8; a++ {
		for b := mpcjoin.Value(0); b < 4; b++ {
			data["R1"].Add(1, a, 10+b)
			data["R2"].Add(1, 10+b, 20+(a+b)%8)
		}
	}

	// Fault-free reference run.
	clean, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data, mpcjoin.WithServers(8))
	if err != nil {
		panic(err)
	}

	// The same execution under a deterministic fault schedule: every
	// round may crash a server (5%), drop messages (10%) or straggle
	// (25%); detected faults are retried from the pre-round snapshot.
	faulted, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
		mpcjoin.WithServers(8),
		mpcjoin.WithFaults(mpcjoin.FaultSpec{
			Seed:           42,
			CrashProb:      0.05,
			DropProb:       0.10,
			StragglerProb:  0.25,
			StragglerDelay: 8,
		}),
		mpcjoin.WithRetry(10))
	if err != nil {
		panic(err)
	}

	fmt.Printf("clean run:   %d rows, load L = %d, %d rounds\n",
		len(clean.Rows), clean.Stats.MaxLoad, clean.Stats.Rounds)
	fmt.Printf("faulted run: %d rows, load L = %d, %d rounds\n",
		len(faulted.Rows), faulted.Stats.MaxLoad, faulted.Stats.Rounds)
	rep := faulted.Faults
	fmt.Printf("faults: injected=%d (crash=%d drop=%d straggler=%d) detected=%d retried=%d absorbed=%d\n",
		rep.Injected, rep.Crashes, rep.Drops, rep.Stragglers,
		rep.Detected, rep.Retried, rep.Absorbed)
	if clean.Stats == faulted.Stats && len(clean.Rows) == len(faulted.Rows) {
		fmt.Println("recovery is transparent: identical rows and metered cost")
	}

	// An unabsorbable schedule (every round crashes, one retry) fails
	// with the typed budget error instead of returning wrong answers.
	_, err = mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
		mpcjoin.WithServers(8),
		mpcjoin.WithFaults(mpcjoin.FaultSpec{Seed: 7, CrashProb: 1}),
		mpcjoin.WithRetry(1))
	var fbe *mpcjoin.FaultBudgetError
	if errors.Is(err, mpcjoin.ErrFaultBudgetExceeded) && errors.As(err, &fbe) {
		fmt.Printf("budget exhausted as expected: round %d after %d attempts (%s)\n",
			fbe.Round, fbe.Attempts, fbe.Kind)
	}
}
