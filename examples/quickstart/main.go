// Quickstart: sparse Boolean matrix multiplication as two-hop
// reachability. Given follower edges R1(A,B) and R2(B,C) of a small
// directed graph, compute which pairs (a, c) are connected by some
// two-edge path — the query ∑_B R1(A,B) ⋈ R2(B,C) under the Boolean
// semiring, evaluated with the worst-case optimal MPC algorithm of
// Hu–Yi PODS'20 on a simulated 8-server cluster.
package main

import (
	"fmt"

	"mpcjoin"
)

func main() {
	// ∑_B R1(A,B) ⋈ R2(B,C) with GROUP BY A, C — matrix multiplication.
	q := mpcjoin.NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")

	// A tiny directed graph: 0→{10,11}, 1→{11}, then 10→{20}, 11→{20,21}.
	data := mpcjoin.Instance[bool]{
		"R1": mpcjoin.NewRelation[bool]("A", "B"),
		"R2": mpcjoin.NewRelation[bool]("B", "C"),
	}
	data["R1"].Add(true, 0, 10).Add(true, 0, 11).Add(true, 1, 11)
	data["R2"].Add(true, 10, 20).Add(true, 11, 20).Add(true, 11, 21)

	res, err := mpcjoin.Execute[bool](mpcjoin.Bools(), q, data,
		mpcjoin.WithServers(8))
	if err != nil {
		panic(err)
	}

	fmt.Printf("query class: %s (engine: %s)\n", res.Class, res.Engine)
	fmt.Println("two-hop reachable pairs:")
	for _, row := range res.Rows {
		fmt.Printf("  %d ⇒ %d\n", row.Vals[0], row.Vals[1])
	}
	fmt.Printf("MPC cost: %d rounds, load L = %d, %d units total\n",
		res.Stats.Rounds, res.Stats.MaxLoad, res.Stats.TotalComm)
}
