// Path counting and cheapest routing on a layered network — line queries
// (§4 of Hu–Yi PODS'20).
//
// A logistics network has four layers: origins, two layers of hubs, and
// destinations, with capacity-annotated links between adjacent layers.
// Two questions about end-to-end routes (origin → hub → hub → destination):
//
//  1. How many distinct routes connect each (origin, destination) pair?
//     — the line query under the counting semiring (+, ×).
//  2. What is the cheapest route cost per pair? — the same query under
//     the tropical MinPlus semiring (min, +).
//
// Both are the non-free-connex query ∑_{H1,H2} R1(O,H1) ⋈ R2(H1,H2) ⋈
// R3(H2,D) with outputs {O, D}, executed by the §4 recursive algorithm
// (heavy/light split on H1, matmul base case).
package main

import (
	"fmt"
	"math/rand"

	"mpcjoin"
)

const (
	nOrigins = 400
	nHubs    = 40
	nDests   = 400
	p        = 16
)

func main() {
	rng := rand.New(rand.NewSource(42))
	q := mpcjoin.NewQuery().
		Relation("R1", "O", "H1").
		Relation("R2", "H1", "H2").
		Relation("R3", "H2", "D").
		GroupBy("O", "D")

	// Route counts: every link counts 1.
	counts := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("O", "H1"),
		"R2": mpcjoin.NewRelation[int64]("H1", "H2"),
		"R3": mpcjoin.NewRelation[int64]("H2", "D"),
	}
	// Cheapest costs: the same topology with link costs as annotations.
	costs := mpcjoin.Instance[int64]{
		"R1": mpcjoin.NewRelation[int64]("O", "H1"),
		"R2": mpcjoin.NewRelation[int64]("H1", "H2"),
		"R3": mpcjoin.NewRelation[int64]("H2", "D"),
	}

	addLink := func(rel string, a, b int) {
		counts[rel].Add(1, mpcjoin.Value(a), mpcjoin.Value(b))
		costs[rel].Add(int64(rng.Intn(90)+10), mpcjoin.Value(a), mpcjoin.Value(b))
	}
	for o := 0; o < nOrigins; o++ {
		for k := 0; k < 3; k++ { // each origin connects to 3 hubs
			addLink("R1", o, rng.Intn(nHubs))
		}
	}
	for h1 := 0; h1 < nHubs; h1++ {
		for k := 0; k < 6; k++ {
			addLink("R2", h1, rng.Intn(nHubs))
		}
	}
	for d := 0; d < nDests; d++ {
		for k := 0; k < 3; k++ {
			addLink("R3", rng.Intn(nHubs), d)
		}
	}

	cls, _ := q.Class()
	fmt.Printf("query class: %s\n\n", cls)

	// 1. Route counts under (+, ×).
	res, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, counts,
		mpcjoin.WithServers(p), mpcjoin.WithSeed(1))
	if err != nil {
		panic(err)
	}
	var totalRoutes, bestPair int64
	var bestO, bestD mpcjoin.Value
	for _, row := range res.Rows {
		totalRoutes += row.Annot
		if row.Annot > bestPair {
			bestPair, bestO, bestD = row.Annot, row.Vals[0], row.Vals[1]
		}
	}
	fmt.Printf("route counting (engine %s):\n", res.Engine)
	fmt.Printf("  connected (origin, destination) pairs: %d\n", len(res.Rows))
	fmt.Printf("  total routes: %d; best-served pair (%d → %d) has %d routes\n",
		totalRoutes, bestO, bestD, bestPair)
	fmt.Printf("  MPC cost: %d rounds, load L = %d\n\n", res.Stats.Rounds, res.Stats.MaxLoad)

	// 2. Cheapest route per pair under (min, +).
	cheap, err := mpcjoin.Execute[int64](mpcjoin.MinPlus(), q, costs,
		mpcjoin.WithServers(p), mpcjoin.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if cost, ok := cheap.Lookup(bestO, bestD); ok {
		fmt.Printf("cheapest routing (tropical semiring):\n")
		fmt.Printf("  pair (%d → %d): cheapest route costs %d\n", bestO, bestD, cost)
	}
	// Baseline comparison on the same instance.
	base, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, counts,
		mpcjoin.WithServers(p), mpcjoin.WithBaseline())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nload comparison on this instance: §4 algorithm L = %d vs Yannakakis L = %d\n",
		res.Stats.MaxLoad, base.Stats.MaxLoad)
}
