// Graphanalytics: iterated graph kernels on the simulated MPC cluster —
// BFS, SSSP and PageRank over one road-trip graph, each an iterated
// sparse matrix–vector product (SpMV) whose per-iteration cost is the
// Table 1 matmul bound of Hu–Yi PODS'20.
//
// The graph is a small city network: vertices are cities, edges are
// directed roads annotated with driving hours. The three drivers answer
// three questions with the same engine, swapping only the semiring:
//
//   - BFS (Bools): how many hops from the start city? (frontier SpMSpV)
//   - SSSP (MinPlus): how many driving hours? (Bellman-Ford relaxation)
//   - PageRank (Floats): which cities do roads concentrate on?
package main

import (
	"fmt"

	"mpcjoin"
)

func main() {
	// Cities 0..7; a weighted strongly-connected-ish road network with a
	// long detour (0→3 direct is 9h, but 0→1→2→3 is 6h) and an island
	// pair {6, 7} only reachable through 5.
	edges := []mpcjoin.GraphEdge{
		{Src: 0, Dst: 1, W: 2}, {Src: 1, Dst: 2, W: 2}, {Src: 2, Dst: 3, W: 2},
		{Src: 0, Dst: 3, W: 9}, {Src: 3, Dst: 4, W: 1}, {Src: 4, Dst: 5, W: 3},
		{Src: 5, Dst: 6, W: 1}, {Src: 6, Dst: 7, W: 1}, {Src: 7, Dst: 5, W: 1},
		{Src: 4, Dst: 0, W: 4}, {Src: 2, Dst: 5, W: 8},
	}

	bfs, err := mpcjoin.BFS(edges, 0, mpcjoin.WithServers(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("BFS from city 0 (%d iterations, converged=%v):\n", len(bfs.Iterations), bfs.Converged)
	for _, r := range bfs.Rows {
		fmt.Printf("  city %d: %d hops\n", r.Vertex, r.Val)
	}

	sssp, err := mpcjoin.SSSP(edges, 0, mpcjoin.WithServers(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nFastest routes from city 0 (%d iterations):\n", len(sssp.Iterations))
	for _, r := range sssp.Rows {
		fmt.Printf("  city %d: %dh\n", r.Vertex, r.Val)
	}

	pr, err := mpcjoin.PageRank(edges,
		mpcjoin.WithServers(4), mpcjoin.WithDamping(0.85), mpcjoin.WithTolerance(1e-10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nPageRank (%d iterations to tol 1e-10):\n", len(pr.Iterations))
	for _, r := range pr.Ranks {
		fmt.Printf("  city %d: %.4f\n", r.Vertex, r.Rank)
	}

	// Every iteration is one metered constant-round primitive; the whole
	// run's cost is their sequential composition.
	fmt.Printf("\nSSSP cost: %d rounds, max-load %d over p=4 servers\n",
		sssp.Stats.Rounds, sssp.Stats.MaxLoad)
	for _, it := range sssp.Iterations {
		fmt.Printf("  iter %d: frontier in=%d out=%d, %d rounds, load %d (sparse=%v)\n",
			it.Iter, it.In, it.Out, it.Stats.Rounds, it.Stats.MaxLoad, it.Sparse)
	}
}
