// Package mpcjoin computes join-aggregate queries over annotated relations
// on a simulated Massively Parallel Computation (MPC) cluster, implementing
// the algorithms of Hu and Yi, "Parallel Algorithms for Sparse Matrix
// Multiplication and Join-Aggregate Queries" (PODS 2020).
//
// A query is a tree of binary relations with an arbitrary set of output
// (GROUP BY) attributes; every tuple carries an annotation from a
// commutative semiring, annotations of joined tuples are ⊗-multiplied, and
// annotations of join results in the same output group are ⊕-added. Sparse
// matrix multiplication is the special case ∑_B R1(A,B) ⋈ R2(B,C).
//
// The engine classifies each query (matrix multiplication, line, star,
// star-like, general tree, or free-connex) and runs the matching algorithm
// from the paper; the distributed Yannakakis baseline is available for
// comparison. Execution is simulated on p servers with every message
// metered, and results report the model's cost measures — rounds and load
// (maximum per-server incoming communication per round) — alongside the
// answer.
//
// Quick start:
//
//	q := mpcjoin.NewQuery().
//		Relation("R1", "A", "B").
//		Relation("R2", "B", "C").
//		GroupBy("A", "C")
//
//	data := mpcjoin.Instance[int64]{
//		"R1": mpcjoin.NewRelation[int64]("A", "B"),
//		"R2": mpcjoin.NewRelation[int64]("B", "C"),
//	}
//	data["R1"].Add(2, 0, 7) // a=0, b=7, annotation 2
//	data["R2"].Add(3, 7, 1) // b=7, c=1, annotation 3
//
//	res, err := mpcjoin.Execute[int64](mpcjoin.Ints(), q, data,
//		mpcjoin.WithServers(16))
//	// res.Rows == [{Vals:[0 1] Annot:6}], res.Stats.MaxLoad == …
package mpcjoin

import (
	"context"
	"fmt"
	"sort"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/planner"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// Value is a domain value; map your native domains onto int64.
type Value = relation.Value

// Semiring is the annotation algebra interface; see the semiring
// constructors in this package for ready-made instances.
type Semiring[W any] = semiring.Semiring[W]

// Stats is the metered MPC cost of an execution: Rounds, MaxLoad (the
// model's load L — maximum units received by any server in any round),
// TotalComm, and SumLoad (per-round bottleneck loads summed over rounds).
type Stats = mpc.Stats

// RoundTrace is one communication round of a traced execution: the
// primitive that drove it and the distribution of per-server received
// load. Request a trace with WithTrace; read it from Result.Trace.
type RoundTrace = mpc.RoundTrace

// Plan is the explainable outcome of planning one execution: the query's
// class, the cost-ranked candidate engines with their instantiated
// Table 1 formulas, the chosen engine and why, the pre-pass size
// predictions, and predicted vs. measured load. Read it from Result.Plan.
type Plan = planner.Plan

// PlanCandidate is one engine the planner considered, with its predicted
// load and the formula it was priced by.
type PlanCandidate = planner.Candidate

// ---------------------------------------------------------------------------
// Query construction
// ---------------------------------------------------------------------------

// Query is a join-aggregate query under construction. Build with NewQuery,
// then chain Relation and GroupBy. Errors surface at Execute.
type Query struct {
	q   *hypergraph.Query
	err error
}

// NewQuery returns an empty query.
func NewQuery() *Query {
	return &Query{q: &hypergraph.Query{}}
}

// Relation declares a relation symbol over one or two attributes.
func (q *Query) Relation(name string, attrs ...string) *Query {
	if q.err != nil {
		return q
	}
	if len(attrs) < 1 || len(attrs) > 2 {
		q.err = fmt.Errorf("mpcjoin: relation %q must have 1 or 2 attributes, got %d", name, len(attrs))
		return q
	}
	as := make([]hypergraph.Attr, len(attrs))
	for i, a := range attrs {
		as[i] = hypergraph.Attr(a)
	}
	q.q.Edges = append(q.q.Edges, hypergraph.Edge{Name: name, Attrs: as})
	return q
}

// GroupBy declares the output attributes y; non-output attributes are
// ⊕-aggregated away. Calling GroupBy with no attributes (or never) yields
// a single scalar aggregate.
func (q *Query) GroupBy(attrs ...string) *Query {
	if q.err != nil {
		return q
	}
	q.q.Output = nil
	for _, a := range attrs {
		q.q.Output = append(q.q.Output, hypergraph.Attr(a))
	}
	return q
}

// Validate checks the query is a well-formed tree query.
func (q *Query) Validate() error {
	if q.err != nil {
		return q.err
	}
	return q.q.Validate()
}

// Class returns the query's structural class as a string
// ("matmul", "line", "star", "star-like", "tree", "free-connex").
func (q *Query) Class() (string, error) {
	if err := q.Validate(); err != nil {
		return "", err
	}
	return q.q.Classify().String(), nil
}

// ---------------------------------------------------------------------------
// Data
// ---------------------------------------------------------------------------

// Relation is an annotated relation: a multiset of tuples, each carrying a
// semiring annotation.
type Relation[W any] struct {
	rel *relation.Relation[W]
}

// NewRelation returns an empty relation with the given attribute schema.
func NewRelation[W any](attrs ...string) *Relation[W] {
	as := make([]relation.Attr, len(attrs))
	for i, a := range attrs {
		as[i] = relation.Attr(a)
	}
	return &Relation[W]{rel: relation.New[W](as...)}
}

// Add appends a tuple with the given annotation.
func (r *Relation[W]) Add(annot W, vals ...Value) *Relation[W] {
	r.rel.Append(annot, vals...)
	return r
}

// Len returns the number of tuples.
func (r *Relation[W]) Len() int { return r.rel.Len() }

// Attrs returns the schema.
func (r *Relation[W]) Attrs() []string {
	out := make([]string, r.rel.Arity())
	for i, a := range r.rel.Schema() {
		out[i] = string(a)
	}
	return out
}

// Instance binds relation symbols to relations.
type Instance[W any] map[string]*Relation[W]

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// Row is one output tuple.
type Row[W any] struct {
	// Vals holds the output attribute values, in Result.Attrs order.
	Vals []Value
	// Annot is the ⊕-aggregated annotation of the group.
	Annot W
}

// Result is a query answer plus its metered cost and plan information.
type Result[W any] struct {
	// Attrs is the output schema.
	Attrs []string
	// Rows are the output tuples (sorted lexicographically by Vals).
	Rows []Row[W]
	// Stats is the metered MPC cost.
	Stats Stats
	// Class is the query's structural class.
	Class string
	// Engine is the algorithm that ran ("matmul", "matmul-linear",
	// "matmul-worstcase", "matmul-outsens", "line", "star", "star-like",
	// "tree" or "yannakakis"). Under the default cost-based planning it
	// is Plan.Chosen; forced engines (WithEngine, WithBaseline,
	// WithTreeEngine) short-circuit the planner.
	Engine string
	// Plan explains how the engine was chosen: the ranked candidates with
	// predicted loads, the pre-pass OUT/join-cardinality predictions, and
	// predicted vs. measured load. For forced engines it records the
	// forced choice with an empty candidate list.
	Plan Plan
	// Trace is the per-round load timeline, present only when the
	// execution ran with WithTrace. Its rounds count physical exchanges
	// in execution order, so len(Trace) can exceed Stats.Rounds (which
	// merges parallel sub-plans).
	Trace []RoundTrace
	// Faults is the fault-injection accounting, present only when the
	// execution ran with WithFaults. Rows and Stats of a fault-injected
	// run whose faults were absorbed by the retry budget are bit-identical
	// to a fault-free run; only this report reveals what was injected,
	// detected and retried.
	Faults *FaultReport
}

// Execute runs the query over the instance under the semiring and returns
// the answer with its metered MPC cost.
func Execute[W any](sr Semiring[W], q *Query, data Instance[W], opts ...Option) (*Result[W], error) {
	return ExecuteContext(context.Background(), sr, q, data, opts...)
}

// ExecuteContext is Execute with cooperative cancellation: when ctx is
// cancelled (deadline exceeded, client gone, server shutting down), the
// execution stops at the next simulated MPC round barrier and ctx's error
// is returned. A cancelled execution never returns a partial Result.
func ExecuteContext[W any](ctx context.Context, sr Semiring[W], q *Query, data Instance[W], opts ...Option) (*Result[W], error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Resolve the options as a set: conflicts (WithBaseline+WithTreeEngine,
	// WithRetry without WithFaults, …) fail here, before any work runs.
	// See options.go for the combination rules.
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}

	inst := make(db.Instance[W], len(data))
	for name, r := range data {
		inst[name] = r.rel
	}
	// The executed plan (chosen engine, candidates, predictions) is read
	// back through the PlanOut observer; it never changes rows or Stats.
	var plan planner.Plan
	o.PlanOut = &plan
	rel, st, err := core.ExecuteContext(ctx, sr, q.q, inst, o)
	if err != nil {
		return nil, err
	}
	rel.SortRows()

	res := &Result[W]{
		Stats:  st,
		Class:  plan.Class,
		Engine: plan.Chosen,
		Plan:   plan,
	}
	if o.Tracer != nil {
		res.Trace = o.Tracer.Rounds()
	}
	if o.Faults != nil {
		rep := o.Faults.Report()
		res.Faults = &rep
	}
	for _, a := range rel.Schema() {
		res.Attrs = append(res.Attrs, string(a))
	}
	// Materialize the result in one backing buffer (every row has the
	// output schema's width) rather than one allocation per row.
	w := len(res.Attrs)
	buf := make([]Value, len(rel.Rows)*w)
	res.Rows = make([]Row[W], len(rel.Rows))
	for i, row := range rel.Rows {
		var vals []Value // width 0 (full aggregation) keeps Vals nil
		if w > 0 {
			vals = buf[i*w : (i+1)*w : (i+1)*w]
			copy(vals, row.Vals)
		}
		res.Rows[i] = Row[W]{Vals: vals, Annot: row.W}
	}
	return res, nil
}

// Lookup returns the annotation of the output tuple with the given values
// and whether it exists.
func (r *Result[W]) Lookup(vals ...Value) (W, bool) {
	i := sort.Search(len(r.Rows), func(i int) bool {
		return !lessVals(r.Rows[i].Vals, vals)
	})
	if i < len(r.Rows) && equalVals(r.Rows[i].Vals, vals) {
		return r.Rows[i].Annot, true
	}
	var zero W
	return zero, false
}

func lessVals(a, b []Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func equalVals(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
