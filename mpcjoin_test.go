package mpcjoin

import (
	"math/rand"
	"testing"
)

func matMulQuery() *Query {
	return NewQuery().
		Relation("R1", "A", "B").
		Relation("R2", "B", "C").
		GroupBy("A", "C")
}

func TestQuickstartMatMul(t *testing.T) {
	q := matMulQuery()
	data := Instance[int64]{
		"R1": NewRelation[int64]("A", "B"),
		"R2": NewRelation[int64]("B", "C"),
	}
	data["R1"].Add(2, 0, 7)
	data["R1"].Add(5, 0, 8)
	data["R2"].Add(3, 7, 1)
	data["R2"].Add(7, 8, 1)

	res, err := Execute[int64](Ints(), q, data, WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	// The cost-based planner names the Theorem 1 variant it picked: at
	// OUT=1 ≪ (N1+N2)/p the linear branch wins.
	if res.Class != "matmul" || res.Engine != "matmul-linear" {
		t.Fatalf("class/engine = %s/%s", res.Class, res.Engine)
	}
	if res.Plan.Chosen != res.Engine || len(res.Plan.Candidates) == 0 {
		t.Fatalf("plan = %+v", res.Plan)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// (0,1) via b=7: 2·3=6; via b=8: 5·7=35. Total 41.
	if got, ok := res.Lookup(0, 1); !ok || got != 41 {
		t.Fatalf("Lookup(0,1) = %v, %v", got, ok)
	}
	if _, ok := res.Lookup(9, 9); ok {
		t.Fatal("Lookup on absent tuple must fail")
	}
	if res.Stats.Rounds == 0 {
		t.Fatal("no rounds metered")
	}
}

func TestBaselineAgreesWithAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := NewQuery().
		Relation("R1", "A1", "A2").
		Relation("R2", "A2", "A3").
		Relation("R3", "A3", "A4").
		GroupBy("A1", "A4")
	mk := func() Instance[int64] {
		data := Instance[int64]{
			"R1": NewRelation[int64]("A1", "A2"),
			"R2": NewRelation[int64]("A2", "A3"),
			"R3": NewRelation[int64]("A3", "A4"),
		}
		for i := 0; i < 80; i++ {
			data["R1"].Add(1, Value(rng.Intn(10)), Value(rng.Intn(10)))
			data["R2"].Add(1, Value(rng.Intn(10)), Value(rng.Intn(10)))
			data["R3"].Add(1, Value(rng.Intn(10)), Value(rng.Intn(10)))
		}
		return data
	}
	data := mk()
	auto, err := Execute[int64](Ints(), q, data, WithServers(6), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	base, err := Execute[int64](Ints(), q, data, WithServers(6), WithBaseline())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Execute[int64](Ints(), q, data, WithServers(6), WithTreeEngine())
	if err != nil {
		t.Fatal(err)
	}
	// Auto's choice is the cost model's call (on this tiny dense instance
	// the join dwarfs the output, so early aggregation tends to win); what
	// must hold is that it is legal for the class and matches the plan.
	legal := map[string]bool{"line": true, "tree": true, "yannakakis": true}
	if !legal[auto.Engine] || auto.Plan.Chosen != auto.Engine {
		t.Fatalf("auto engine %q (plan chose %q) not a legal line-class choice", auto.Engine, auto.Plan.Chosen)
	}
	if base.Engine != "yannakakis" || tree.Engine != "tree" {
		t.Fatalf("engines: %s %s %s", auto.Engine, base.Engine, tree.Engine)
	}
	if len(auto.Rows) != len(base.Rows) || len(auto.Rows) != len(tree.Rows) {
		t.Fatalf("row counts diverge: %d %d %d", len(auto.Rows), len(base.Rows), len(tree.Rows))
	}
	for i := range auto.Rows {
		if !equalVals(auto.Rows[i].Vals, base.Rows[i].Vals) || auto.Rows[i].Annot != base.Rows[i].Annot {
			t.Fatalf("row %d: auto %v vs base %v", i, auto.Rows[i], base.Rows[i])
		}
		if !equalVals(auto.Rows[i].Vals, tree.Rows[i].Vals) || auto.Rows[i].Annot != tree.Rows[i].Annot {
			t.Fatalf("row %d: auto %v vs tree %v", i, auto.Rows[i], tree.Rows[i])
		}
	}
}

func TestSemiringConstructors(t *testing.T) {
	if IsIdempotent(Ints()) {
		t.Fatal("Ints must not be idempotent")
	}
	for _, s := range []any{Bools(), MinPlus(), MaxPlus(), MaxMin(), Why(), Security()} {
		if !IsIdempotent(s) {
			t.Fatalf("%T must be idempotent", s)
		}
	}
	if MinPlus().Add(MinPlusInf, 5) != 5 {
		t.Fatal("MinPlusInf broken")
	}
	if MaxPlus().Add(MaxPlusNegInf, 5) != 5 {
		t.Fatal("MaxPlusNegInf broken")
	}
}

func TestProvenanceEndToEnd(t *testing.T) {
	q := matMulQuery()
	data := Instance[Provenance]{
		"R1": NewRelation[Provenance]("A", "B"),
		"R2": NewRelation[Provenance]("B", "C"),
	}
	data["R1"].Add(WhyOf(1), 0, 7)
	data["R1"].Add(WhyOf(2), 0, 8)
	data["R2"].Add(WhyOf(3), 7, 1)
	data["R2"].Add(WhyOf(4), 8, 1)

	res, err := Execute[Provenance](Why(), q, data, WithServers(3))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.Lookup(0, 1)
	if !ok {
		t.Fatal("missing output")
	}
	// Two derivations: {1,3} and {2,4}.
	want := Why().Add(
		Why().Mul(WhyOf(1), WhyOf(3)),
		Why().Mul(WhyOf(2), WhyOf(4)))
	if !Why().Equal(got, want) {
		t.Fatalf("provenance = %v, want %v", got, want)
	}
}

func TestQueryErrors(t *testing.T) {
	if err := NewQuery().Relation("R", "A", "B", "C").Validate(); err == nil {
		t.Fatal("arity-3 relation must fail")
	}
	if err := NewQuery().Validate(); err == nil {
		t.Fatal("empty query must fail")
	}
	q := NewQuery().Relation("R", "A", "B").GroupBy("Z")
	if _, err := Execute[int64](Ints(), q, Instance[int64]{"R": NewRelation[int64]("A", "B")}); err == nil {
		t.Fatal("unknown output attr must fail")
	}
}

func TestClassReporting(t *testing.T) {
	cases := []struct {
		q    *Query
		want string
	}{
		{matMulQuery(), "matmul"},
		{NewQuery().Relation("R1", "A1", "A2").Relation("R2", "A2", "A3").
			Relation("R3", "A3", "A4").GroupBy("A1", "A4"), "line"},
		{NewQuery().Relation("R1", "A1", "B").Relation("R2", "A2", "B").
			Relation("R3", "A3", "B").GroupBy("A1", "A2", "A3"), "star"},
		{NewQuery().Relation("R1", "A", "B").Relation("R2", "B", "C").
			GroupBy("A", "B", "C"), "free-connex"},
	}
	for _, c := range cases {
		got, err := c.q.Class()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("class = %s, want %s", got, c.want)
		}
	}
}

func TestScalarAggregate(t *testing.T) {
	// COUNT of full join via no GroupBy.
	q := NewQuery().Relation("R1", "A", "B").Relation("R2", "B", "C")
	data := Instance[int64]{
		"R1": NewRelation[int64]("A", "B"),
		"R2": NewRelation[int64]("B", "C"),
	}
	for i := 0; i < 5; i++ {
		data["R1"].Add(1, Value(i), 0)
		data["R2"].Add(1, 0, Value(i))
	}
	res, err := Execute[int64](Ints(), q, data, WithServers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Annot != 25 {
		t.Fatalf("scalar = %v", res.Rows)
	}
}

func TestRelationAccessors(t *testing.T) {
	r := NewRelation[int64]("A", "B").Add(1, 2, 3)
	if r.Len() != 1 {
		t.Fatal("Len wrong")
	}
	attrs := r.Attrs()
	if len(attrs) != 2 || attrs[0] != "A" || attrs[1] != "B" {
		t.Fatalf("Attrs = %v", attrs)
	}
}
