package mpcjoin

import "mpcjoin/internal/semiring"

// Ready-made commutative semirings. Each constructor returns a stateless
// value implementing Semiring for its carrier type; see the paper's §1.1
// and Green et al. (PODS'07) for the annotated-relation semantics.

// Ints returns (ℤ, +, ×): sum-of-products — ordinary sparse matrix
// multiplication, COUNT(*) GROUP BY when all annotations are 1.
func Ints() semiring.IntSumProd { return semiring.IntSumProd{} }

// Floats returns (ℝ, +, ×) over float64. Floating-point addition is not
// exactly associative; prefer Ints for exact experiments.
func Floats() semiring.FloatSumProd { return semiring.FloatSumProd{} }

// Bools returns ({false,true}, ∨, ∧): set-semantics join-project
// (conjunctive query) evaluation. Idempotent.
func Bools() semiring.BoolOrAnd { return semiring.BoolOrAnd{} }

// MinPlus returns the tropical semiring (ℤ∪{∞}, min, +): per output group,
// the minimum total annotation over its join results — shortest paths when
// the query is a line query over weighted edges. Idempotent.
func MinPlus() semiring.MinPlus { return semiring.MinPlus{} }

// MaxPlus returns (ℤ∪{−∞}, max, +): maximum-weight derivations (critical
// paths). Idempotent.
func MaxPlus() semiring.MaxPlus { return semiring.MaxPlus{} }

// MaxMin returns the bottleneck semiring (max, min): the widest-bottleneck
// derivation per group. Idempotent.
func MaxMin() semiring.MaxMin { return semiring.MaxMin{} }

// Why returns the why-provenance semiring: annotations are sets of witness
// sets identifying which base tuples derive each output. Idempotent.
func Why() semiring.WhyProvenance { return semiring.WhyProvenance{} }

// Security returns the access-control semiring over clearance levels
// (min of maxes). Idempotent.
func Security() semiring.Security { return semiring.Security{} }

// Witness identifies a base tuple in why-provenance annotations.
type Witness = semiring.Witness

// Provenance is a why-provenance annotation: a set of witness sets.
type Provenance = semiring.Provenance

// WhyOf builds the provenance annotation of a base tuple: {{w}}.
func WhyOf(w Witness) Provenance { return semiring.Why(w) }

// Clearance levels for the Security semiring.
const (
	Public    = semiring.Public
	Internal  = semiring.Internal
	Secret    = semiring.Secret
	TopSecret = semiring.TopSecret
	Denied    = semiring.Denied
)

// Infinity sentinels for the tropical semirings.
var (
	// MinPlusInf is the ⊕-identity ("+∞") of MinPlus.
	MinPlusInf = semiring.MinPlus{}.Zero()
	// MaxPlusNegInf is the ⊕-identity ("−∞") of MaxPlus.
	MaxPlusNegInf = semiring.MaxPlus{}.Zero()
)

// IsIdempotent reports whether a semiring declares an idempotent ⊕ —
// the class the paper's lower bounds (Theorems 2–3) hold for.
func IsIdempotent(s any) bool { return semiring.IsIdempotent(s) }
