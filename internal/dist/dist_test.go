package dist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"

	"mpcjoin/internal/db"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomRel(rng *rand.Rand, schema []Attr, n, dom int) *relation.Relation[int64] {
	r := relation.New[int64](schema...)
	for i := 0; i < n; i++ {
		vals := make([]relation.Value, len(schema))
		for j := range vals {
			vals[j] = relation.Value(rng.Intn(dom))
		}
		r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(5) + 1)})
	}
	return r
}

func TestFromToRelationRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRel(rng, []Attr{"A", "B"}, 100, 10)
	d := FromRelation(r, 8)
	if d.N() != 100 || d.P() != 8 {
		t.Fatalf("N=%d P=%d", d.N(), d.P())
	}
	back := ToRelation(d)
	if !relation.Equal[int64](intSR, intEq, r, back) {
		t.Fatal("roundtrip lost data")
	}
}

func TestProjectAggMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(10) + 2
		r := randomRel(rng, []Attr{"A", "B", "C"}, rng.Intn(300)+1, 6)
		d := FromRelation(r, p)
		got, _ := ProjectAgg[int64](intSR, d, "A", "C")
		want := relation.ProjectAgg[int64](intSR, r, "A", "C")
		return relation.Equal[int64](intSR, intEq, ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectAggKeysUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randomRel(rng, []Attr{"A", "B"}, 500, 3) // heavy duplication
	d := FromRelation(r, 8)
	got, _ := ProjectAgg[int64](intSR, d, "A")
	seen := map[relation.Value]bool{}
	for _, shard := range got.Part.Shards {
		for _, row := range shard {
			if seen[row.Vals[0]] {
				t.Fatalf("duplicate key %v in ProjectAgg output", row.Vals[0])
			}
			seen[row.Vals[0]] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("expected 3 keys, got %d", len(seen))
	}
}

func TestSemijoinMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(8) + 2
		r := randomRel(rng, []Attr{"A", "B"}, rng.Intn(200)+1, 8)
		s := randomRel(rng, []Attr{"B", "C"}, rng.Intn(200), 8)
		dr, ds := FromRelation(r, p), FromRelation(s, p)
		got, _ := Semijoin(dr, ds)
		want := relation.Semijoin(r, s)
		return relation.Equal[int64](intSR, intEq, ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDegrees(t *testing.T) {
	r := relation.New[int64]("A", "B")
	for i := 0; i < 7; i++ {
		r.Append(1, 1, relation.Value(i))
	}
	for i := 0; i < 3; i++ {
		r.Append(1, 2, relation.Value(i))
	}
	d := FromRelation(r, 4)
	deg, _ := Degrees(d, "A")
	got := map[int64]int64{}
	for _, kc := range mpc.Collect(deg) {
		got[kc.Key] = kc.Count
	}
	if got[1] != 7 || got[2] != 3 {
		t.Fatalf("degrees = %v", got)
	}
}

func TestBroadcastRel(t *testing.T) {
	r := relation.New[int64]("A", "B")
	r.Append(1, 5, 6)
	d := FromRelation(r, 5)
	b, st := Broadcast(d)
	for s := range b.Part.Shards {
		if len(b.Part.Shards[s]) != 1 {
			t.Fatalf("server %d missing broadcast row", s)
		}
	}
	if st.MaxLoad != 1 {
		t.Fatalf("broadcast load = %d", st.MaxLoad)
	}
}

func TestGroupByColocation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := randomRel(rng, []Attr{"A", "B"}, 300, 10)
	d := FromRelation(r, 8)
	g, _ := GroupBy(d, "B")
	owner := map[relation.Value]int{}
	for s, shard := range g.Part.Shards {
		for _, row := range shard {
			b := row.Vals[1]
			if o, ok := owner[b]; ok && o != s {
				t.Fatalf("value %v split across servers %d and %d", b, o, s)
			}
			owner[b] = s
		}
	}
	if g.N() != 300 {
		t.Fatal("GroupBy lost rows")
	}
}

func TestAttachAgg(t *testing.T) {
	// r(A,B) joined with agg(B): annotations multiply; unmatched rows drop.
	r := relation.New[int64]("A", "B")
	r.Append(2, 1, 10)
	r.Append(3, 2, 10)
	r.Append(5, 3, 11)
	r.Append(7, 4, 99) // no matching agg row
	agg := relation.New[int64]("B")
	agg.Append(100, 10)
	agg.Append(1000, 11)

	got, _ := AttachAgg[int64](intSR, FromRelation(r, 3), FromRelation(agg, 3), []Attr{"B"})
	want := relation.New[int64]("A", "B")
	want.Append(200, 1, 10)
	want.Append(300, 2, 10)
	want.Append(5000, 3, 11)
	if !relation.Equal[int64](intSR, intEq, ToRelation(got), want) {
		t.Fatalf("AttachAgg = %v, want %v", ToRelation(got), want)
	}
}

func TestUnionAgg(t *testing.T) {
	a := relation.New[int64]("A")
	a.Append(1, 5)
	b := relation.New[int64]("A")
	b.Append(2, 5)
	b.Append(3, 6)
	got, _ := UnionAgg[int64](intSR, FromRelation(a, 4), FromRelation(b, 6))
	want := relation.New[int64]("A")
	want.Append(3, 5)
	want.Append(3, 6)
	if !relation.Equal[int64](intSR, intEq, ToRelation(got), want) {
		t.Fatalf("UnionAgg = %v", ToRelation(got))
	}
}

func TestReorderProjectFilter(t *testing.T) {
	r := relation.New[int64]("A", "B")
	r.Append(1, 1, 2)
	d := FromRelation(r, 2)
	ro := Reorder(d, []Attr{"B", "A"})
	row := mpc.Collect(ro.Part)[0]
	if row.Vals[0] != 2 || row.Vals[1] != 1 {
		t.Fatalf("reorder wrong: %v", row)
	}
	pr := Project(d, "B")
	if len(pr.Schema) != 1 || mpc.Collect(pr.Part)[0].Vals[0] != 2 {
		t.Fatal("project wrong")
	}
	fl := Filter(d, func(row relation.Row[int64]) bool { return false })
	if fl.N() != 0 {
		t.Fatal("filter wrong")
	}
}

func TestRemoveDanglingMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(8) + 2
		q := hypergraph.LineQuery(3)
		inst := make(db.Instance[int64])
		rels := make(map[string]Rel[int64])
		for _, e := range q.Edges {
			r := randomRel(rng, e.Attrs, rng.Intn(60)+1, 6)
			inst[e.Name] = r
			rels[e.Name] = FromRelation(r, p)
		}
		reduced, _ := RemoveDangling(q, rels)
		want := refengine.RemoveDangling(q, inst)
		for _, e := range q.Edges {
			if !relation.Equal[int64](intSR, intEq, ToRelation(reduced[e.Name]), want[e.Name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDanglingLoadLinear(t *testing.T) {
	// Load must stay O(N/p) regardless of skew.
	const n, p = 4000, 16
	q := hypergraph.MatMulQuery()
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < n; i++ {
		r1.Append(1, relation.Value(i), 0) // all share b=0
		r2.Append(1, 0, relation.Value(i))
	}
	rels := map[string]Rel[int64]{
		"R1": FromRelation(r1, p),
		"R2": FromRelation(r2, p),
	}
	_, st := RemoveDangling(q, rels)
	if st.MaxLoad > 4*(2*n)/p+p*p {
		t.Fatalf("dangling removal load %d not linear (N/p = %d)", st.MaxLoad, 2*n/p)
	}
}

func TestShardRelAndKey(t *testing.T) {
	r := relation.New[int64]("A", "B")
	r.Append(1, 7, 8)
	d := FromRelation(r, 2)
	sr0 := ShardRel(d, 0)
	if sr0.Len() != 1 || sr0.Rows[0].Vals[0] != 7 {
		t.Fatalf("ShardRel wrong: %v", sr0)
	}
	k := d.Key("B")
	if k(relation.Row[int64]{Vals: []relation.Value{7, 8}}) != k(relation.Row[int64]{Vals: []relation.Value{9, 8}}) {
		t.Fatal("key must depend only on projected attrs")
	}
}

func TestEncodeKeyOrderPreserving(t *testing.T) {
	idx := []int{0}
	lo := relation.EncodeKey([]relation.Value{-5}, idx)
	mid := relation.EncodeKey([]relation.Value{0}, idx)
	hi := relation.EncodeKey([]relation.Value{3}, idx)
	if !(lo < mid && mid < hi) {
		t.Fatal("EncodeKey does not preserve signed order")
	}
}
