// Package dist layers distributed annotated relations on top of the MPC
// simulator: a Rel is a relation whose rows are partitioned across servers,
// and the package provides the relational MPC primitives of §2.1 —
// distributed aggregation (reduce-by-key), semijoin (multi-search),
// degree statistics, broadcast, co-location by key, and the dangling-tuple
// full reducer for acyclic queries. All algorithm packages build on these.
package dist

import (
	"fmt"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// Attr aliases the relation attribute type.
type Attr = relation.Attr

// Rel is a relation partitioned across the servers of an MPC cluster.
type Rel[W any] struct {
	Schema []Attr
	Part   mpc.Part[relation.Row[W]]
}

// FromRelation distributes r evenly over p servers (the model's uncounted
// initial placement). Shards are defensive copies; the caller keeps
// ownership of r.
func FromRelation[W any](r *relation.Relation[W], p int) Rel[W] {
	return FromRelationIn(nil, r, p)
}

// FromRelationIn is FromRelation into an execution scope (nil = ambient):
// the placement stamps the scope onto the Part, and every Part derived
// from it inherits the scope's runtime and cancellation context. This is
// how core threads per-execution scoping under the engines.
func FromRelationIn[W any](ex *mpc.Exec, r *relation.Relation[W], p int) Rel[W] {
	return Rel[W]{
		Schema: append([]Attr(nil), r.Schema()...),
		Part:   mpc.DistributeIn(ex, r.Rows, p),
	}
}

// FromRelationOwned is FromRelation with ownership transfer: shards alias
// r.Rows instead of copying it. The caller must not mutate r afterwards
// and must tolerate primitives reordering rows in place. Use it for
// freshly built instances handed to exactly one execution (loaded or
// generated inputs); keep FromRelation for relations that are reused.
func FromRelationOwned[W any](r *relation.Relation[W], p int) Rel[W] {
	return FromRelationOwnedIn(nil, r, p)
}

// FromRelationOwnedIn is FromRelationOwned into an execution scope.
func FromRelationOwnedIn[W any](ex *mpc.Exec, r *relation.Relation[W], p int) Rel[W] {
	return Rel[W]{
		Schema: append([]Attr(nil), r.Schema()...),
		Part:   mpc.DistributeOwnedIn(ex, r.Rows, p),
	}
}

// FromCols distributes a columnar relation over p servers: the rows are
// materialized once (all value vectors carved from a single backing
// buffer) and handed to the execution with ownership transfer, so a
// loader that builds instances column-wise (relation.FromColumnsOwned)
// feeds an execution without a defensive row copy. The caller keeps c,
// but must not mutate its weight column while the execution runs — row
// annotations share it.
func FromCols[W any](c *relation.Cols[W], p int) Rel[W] {
	return FromColsIn(nil, c, p)
}

// FromColsIn is FromCols into an execution scope (nil = ambient).
func FromColsIn[W any](ex *mpc.Exec, c *relation.Cols[W], p int) Rel[W] {
	return FromRelationOwnedIn(ex, c.Relation(), p)
}

// Empty returns an empty Rel with the given schema over p servers.
// The Rel has no execution scope; see EmptyIn.
func Empty[W any](schema []Attr, p int) Rel[W] {
	return EmptyIn[W](nil, schema, p)
}

// EmptyIn is Empty scoped to the execution ex, so downstream operations
// that merge the empty Rel with scoped inputs stay on the execution's
// runtime and cancellation context.
func EmptyIn[W any](ex *mpc.Exec, schema []Attr, p int) Rel[W] {
	return Rel[W]{Schema: append([]Attr(nil), schema...), Part: mpc.NewPartIn[relation.Row[W]](ex, p)}
}

// ToRelation gathers all shards into a sequential relation (unmetered;
// used to read off final distributed outputs for verification).
func ToRelation[W any](r Rel[W]) *relation.Relation[W] {
	out := relation.New[W](r.Schema...)
	for _, row := range mpc.Collect(r.Part) {
		out.AppendRow(row)
	}
	return out
}

// P returns the relation's server count.
func (r Rel[W]) P() int { return r.Part.P() }

// N returns the total number of rows.
func (r Rel[W]) N() int { return r.Part.Len() }

// Cols maps attribute names to column indices, panicking on absences.
func (r Rel[W]) Cols(attrs ...Attr) []int {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = -1
		for c, s := range r.Schema {
			if s == a {
				idx[i] = c
				break
			}
		}
		if idx[i] < 0 {
			panic(fmt.Sprintf("dist: attribute %q not in schema %v", a, r.Schema))
		}
	}
	return idx
}

// Has reports whether the schema contains a.
func (r Rel[W]) Has(a Attr) bool {
	for _, s := range r.Schema {
		if s == a {
			return true
		}
	}
	return false
}

// Key returns a row-key function projecting rows onto attrs.
func (r Rel[W]) Key(attrs ...Attr) func(relation.Row[W]) string {
	idx := r.Cols(attrs...)
	return func(row relation.Row[W]) string { return relation.EncodeKey(row.Vals, idx) }
}

// SharedAttrs returns the attributes present in both schemas, in r's order.
func SharedAttrs[W any](r, s Rel[W]) []Attr {
	var out []Attr
	for _, a := range r.Schema {
		if s.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// ShardRel views server s's shard as a sequential relation (local compute).
func ShardRel[W any](r Rel[W], s int) *relation.Relation[W] {
	out := relation.New[W](r.Schema...)
	out.Rows = r.Part.Shards[s]
	return out
}

// ---------------------------------------------------------------------------
// Distributed operators
// ---------------------------------------------------------------------------

// ProjectAgg computes the distributed π̂_attrs: rows are projected onto
// attrs and annotations of equal projections are ⊕-combined via
// reduce-by-key. The result has one row per distinct key, keys sorted and
// contiguous across servers. Cost: O(N'/p) load, O(1) rounds, where N' is
// the input size.
func ProjectAgg[W any](sr semiring.Semiring[W], r Rel[W], attrs ...Attr) (Rel[W], mpc.Stats) {
	idx := r.Cols(attrs...)
	projected := mpc.Map(r.Part, func(row relation.Row[W]) relation.Row[W] {
		vals := make([]relation.Value, len(idx))
		for i, c := range idx {
			vals[i] = row.Vals[c]
		}
		return relation.Row[W]{Vals: vals, W: row.W}
	})
	allIdx := make([]int, len(attrs))
	for i := range allIdx {
		allIdx[i] = i
	}
	reduced, st := mpc.ReduceByKey(projected,
		func(row relation.Row[W]) string { return relation.EncodeKey(row.Vals, allIdx) },
		func(a, b relation.Row[W]) relation.Row[W] {
			return relation.Row[W]{Vals: a.Vals, W: sr.Add(a.W, b.W)}
		})
	return Rel[W]{Schema: append([]Attr(nil), attrs...), Part: reduced}, st
}

// Semijoin filters r to the rows that match some row of s on their shared
// attributes (r ⋉ s), via the multi-search primitive. Annotations pass
// through. Cost: O((|r|+|s|)/p) load.
func Semijoin[W any](r, s Rel[W]) (Rel[W], mpc.Stats) {
	shared := SharedAttrs(r, s)
	if len(shared) == 0 {
		panic("dist: Semijoin with no shared attributes")
	}
	filtered, st := mpc.SemijoinKeys(r.Part, s.Part, r.Key(shared...), s.Key(shared...))
	return Rel[W]{Schema: r.Schema, Part: filtered}, st
}

// SemijoinValues filters r to rows whose attr value appears in the keys
// Part (values need not be unique).
func SemijoinValues[W any](r Rel[W], a Attr, keys mpc.Part[relation.Value]) (Rel[W], mpc.Stats) {
	c := r.Cols(a)[0]
	filtered, st := mpc.SemijoinKeys(r.Part, keys,
		func(row relation.Row[W]) relation.Value { return row.Vals[c] },
		func(v relation.Value) relation.Value { return v })
	return Rel[W]{Schema: r.Schema, Part: filtered}, st
}

// Degrees computes, for every distinct value of attribute a in r, the
// number of rows carrying it (the §2.1 degree statistic). The result is a
// Part of (value, count), one entry per distinct value.
func Degrees[W any](r Rel[W], a Attr) (mpc.Part[mpc.KeyCount[int64]], mpc.Stats) {
	c := r.Cols(a)[0]
	return mpc.CountByKey(r.Part, func(row relation.Row[W]) int64 { return int64(row.Vals[c]) })
}

// Broadcast replicates r's rows to every server. Cost: one round with load
// |r| per server — only sensible for small relations (the N₁=1 fast path).
func Broadcast[W any](r Rel[W]) (Rel[W], mpc.Stats) {
	part, st := mpc.Broadcast(r.Part)
	return Rel[W]{Schema: r.Schema, Part: part}, st
}

// GroupBy co-locates all rows sharing a value vector on attrs onto single
// servers (sorted, contiguous). The caller must keep the maximum group
// size within the intended load.
func GroupBy[W any](r Rel[W], attrs ...Attr) (Rel[W], mpc.Stats) {
	grouped, st := mpc.GroupByKey(r.Part, r.Key(attrs...))
	return Rel[W]{Schema: r.Schema, Part: grouped}, st
}

// Reshape reinterprets the relation over a different server count (see
// mpc.Reshape); zero cost.
func Reshape[W any](r Rel[W], p int) Rel[W] {
	return Rel[W]{Schema: r.Schema, Part: mpc.Reshape(r.Part, p)}
}

// Rebalance spreads rows evenly across servers in one metered round.
func Rebalance[W any](r Rel[W]) (Rel[W], mpc.Stats) {
	part, st := mpc.Rebalance(r.Part)
	return Rel[W]{Schema: r.Schema, Part: part}, st
}

// AttachAgg implements the §7 reduction step: agg must have one row per
// distinct key over exactly the attributes on; every row of r is
// ⊗-multiplied with the agg annotation matching it on on. Rows with no
// match are dropped (they are dangling with respect to the removed
// relation). Cost: one multi-search.
func AttachAgg[W any](sr semiring.Semiring[W], r Rel[W], agg Rel[W], on []Attr) (Rel[W], mpc.Stats) {
	preds, st := mpc.LookupJoin(r.Part, agg.Part, r.Key(on...), agg.Key(on...))
	matched := mpc.Filter(preds, func(pr mpc.Pred[relation.Row[W], relation.Row[W]]) bool { return pr.Found })
	rows := mpc.Map(matched, func(pr mpc.Pred[relation.Row[W], relation.Row[W]]) relation.Row[W] {
		return relation.Row[W]{Vals: pr.X.Vals, W: sr.Mul(pr.X.W, pr.Y.W)}
	})
	return Rel[W]{Schema: r.Schema, Part: rows}, st
}

// UnionAgg ⊕-merges relations with identical schemas into one, combining
// duplicate tuples (the "aggregate all subqueries" steps). Cost: one
// reduce-by-key over the concatenation, rebalanced first.
func UnionAgg[W any](sr semiring.Semiring[W], rels ...Rel[W]) (Rel[W], mpc.Stats) {
	if len(rels) == 0 {
		panic("dist: UnionAgg needs at least one input")
	}
	p := rels[0].P()
	schema := rels[0].Schema
	parts := make([]mpc.Part[relation.Row[W]], 0, len(rels))
	for _, r := range rels {
		if len(r.Schema) != len(schema) {
			panic(fmt.Sprintf("dist: UnionAgg schema mismatch %v vs %v", r.Schema, schema))
		}
		reordered := r
		for i := range schema {
			if r.Schema[i] != schema[i] {
				reordered = Reorder(r, schema)
				break
			}
		}
		parts = append(parts, reordered.Part)
	}
	// Concatenate shard-wise onto the first relation's server count: rows
	// stay put when server counts match; otherwise fold shards round-robin
	// (a placement choice, not communication — the rows are already on
	// those virtual servers and the subsequent reduce re-routes them).
	merged := mpc.NewPartIn[relation.Row[W]](parts[0].Scope(), p)
	for _, pt := range parts {
		for s, shard := range pt.Shards {
			merged.Shards[s%p] = append(merged.Shards[s%p], shard...)
		}
	}
	res, st := ProjectAgg(sr, Rel[W]{Schema: schema, Part: merged}, schema...)
	return res, st
}

// Reorder permutes columns to the given schema (local, zero cost). When
// the columns are already in the requested order the rows are returned
// as-is, not rebuilt.
func Reorder[W any](r Rel[W], schema []Attr) Rel[W] {
	idx := r.Cols(schema...)
	identity := len(idx) == len(r.Schema)
	for i, c := range idx {
		if c != i {
			identity = false
			break
		}
	}
	if identity {
		return Rel[W]{Schema: append([]Attr(nil), schema...), Part: r.Part}
	}
	part := mpc.Map(r.Part, func(row relation.Row[W]) relation.Row[W] {
		vals := make([]relation.Value, len(idx))
		for i, c := range idx {
			vals[i] = row.Vals[c]
		}
		return relation.Row[W]{Vals: vals, W: row.W}
	})
	return Rel[W]{Schema: append([]Attr(nil), schema...), Part: part}
}

// Project drops columns without aggregation (local; duplicates remain).
func Project[W any](r Rel[W], attrs ...Attr) Rel[W] {
	idx := r.Cols(attrs...)
	part := mpc.Map(r.Part, func(row relation.Row[W]) relation.Row[W] {
		vals := make([]relation.Value, len(idx))
		for i, c := range idx {
			vals[i] = row.Vals[c]
		}
		return relation.Row[W]{Vals: vals, W: row.W}
	})
	return Rel[W]{Schema: append([]Attr(nil), attrs...), Part: part}
}

// Filter keeps rows satisfying pred (local, zero cost).
func Filter[W any](r Rel[W], pred func(relation.Row[W]) bool) Rel[W] {
	return Rel[W]{Schema: r.Schema, Part: mpc.Filter(r.Part, pred)}
}

// ---------------------------------------------------------------------------
// Dangling-tuple removal (full reducer)
// ---------------------------------------------------------------------------

// RemoveDangling removes every tuple that cannot participate in a full
// join result, via the classical full reducer run with distributed
// semijoins: leaf-to-root then root-to-leaf over the query's join tree
// (§2.1, [14, 25]). Cost: O(N/p) load, O(n) = O(1) rounds (n is the
// constant number of relations).
func RemoveDangling[W any](q *hypergraph.Query, rels map[string]Rel[W]) (map[string]Rel[W], mpc.Stats) {
	out := make(map[string]Rel[W], len(rels))
	for k, v := range rels {
		out[k] = v
	}
	order, parent := q.JoinTree()
	var st mpc.Stats
	for i := len(order) - 1; i >= 1; i-- {
		e := q.Edges[order[i]]
		pe := q.Edges[parent[order[i]]]
		filtered, s := Semijoin(out[pe.Name], out[e.Name])
		out[pe.Name] = filtered
		st = mpc.Seq(st, s)
	}
	for _, ei := range order[1:] {
		e := q.Edges[ei]
		pe := q.Edges[parent[ei]]
		filtered, s := Semijoin(out[e.Name], out[pe.Name])
		out[e.Name] = filtered
		st = mpc.Seq(st, s)
	}
	return out, st
}
