package dist

import (
	"math/rand"
	"testing"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

func TestSemijoinValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRel(rng, []Attr{"A", "B"}, 200, 20)
	d := FromRelation(r, 6)
	keys := mpc.Distribute([]relation.Value{3, 7, 11}, 6)
	got, _ := SemijoinValues(d, "B", keys)
	want := map[relation.Value]bool{3: true, 7: true, 11: true}
	n := 0
	for _, row := range r.Rows {
		if want[row.Vals[1]] {
			n++
		}
	}
	if got.N() != n {
		t.Fatalf("SemijoinValues kept %d rows, want %d", got.N(), n)
	}
	for _, row := range mpc.Collect(got.Part) {
		if !want[row.Vals[1]] {
			t.Fatalf("row %v should have been filtered", row.Vals)
		}
	}
}

func TestReshapeRel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randomRel(rng, []Attr{"A", "B"}, 50, 5)
	d := FromRelation(r, 12)
	narrow := Reshape(d, 3)
	if narrow.P() != 3 || narrow.N() != 50 {
		t.Fatalf("reshape wrong: P=%d N=%d", narrow.P(), narrow.N())
	}
	if !relation.Equal[int64](intSR, intEq, ToRelation(narrow), r) {
		t.Fatal("reshape changed content")
	}
}

func TestProjectAggSingleColumnStability(t *testing.T) {
	// Values with the high bit patterns that exercise the order-preserving
	// encoding (negative values).
	r := relation.New[int64]("A", "B")
	r.Append(1, -10, 1)
	r.Append(2, -10, 2)
	r.Append(5, 10, 1)
	d := FromRelation(r, 4)
	got, _ := ProjectAgg[int64](intSR, d, "A")
	want := relation.New[int64]("A")
	want.Append(3, -10)
	want.Append(5, 10)
	if !relation.Equal[int64](intSR, intEq, ToRelation(got), want) {
		t.Fatalf("negative-value aggregation wrong: %v", ToRelation(got))
	}
}

func TestUnionAggDifferentWidths(t *testing.T) {
	a := relation.New[int64]("A")
	a.Append(1, 5)
	b := relation.New[int64]("A")
	b.Append(2, 5)
	// Different virtual server counts (as after sub-allocations).
	got, _ := UnionAgg[int64](intSR, FromRelation(a, 3), FromRelation(b, 11))
	want := relation.New[int64]("A")
	want.Append(3, 5)
	if !relation.Equal[int64](intSR, intEq, ToRelation(got), want) {
		t.Fatalf("cross-width union wrong: %v", ToRelation(got))
	}
}

func TestColsPanicsOnMissing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := FromRelation(relation.New[int64]("A"), 2)
	r.Cols("Z")
}
