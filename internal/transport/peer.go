package transport

// peer.go is the serving half of the TCP backend: a shuffle peer that
// owns a block of each round's destination servers. The coordinator
// streams it the round's messages for those destinations; the peer
// assembles per-destination inboxes (validating ascending source order
// and counting delivered units), executes a crash directive it owns —
// discarding the crashed destination's assembled inbox and reporting how
// many units died with it — and replies with an Inbox frame. It never
// interprets payload bytes.
//
// A peer is stateless across rounds: each Round frame is a complete
// request and each Inbox frame a complete response, so a retried attempt
// (same Seq, higher Attempt) is just another request re-encoded from the
// coordinator's immutable pre-round outboxes. That statelessness is what
// makes round-level retry exact: there is no partial peer state for a
// faulty attempt to corrupt.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
)

// Peer is a running shuffle peer: a TCP listener serving any number of
// coordinator connections, each handshaken independently. Create with
// ListenPeer, stop with Close.
type Peer struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}

	rounds  atomic.Uint64
	retries atomic.Uint64
	msgs    atomic.Uint64
	units   atomic.Uint64
	bytes   atomic.Uint64
	crashes atomic.Uint64
}

// ListenPeer starts a peer on addr (e.g. "127.0.0.1:0" for an ephemeral
// port) and serves until Close.
func ListenPeer(addr string) (*Peer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Peer{ln: ln, conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the peer's listen address, for wiring coordinators to
// ephemeral ports.
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the peer's cumulative delivery counters.
func (p *Peer) Stats() PeerStats {
	return PeerStats{
		Rounds:  p.rounds.Load(),
		Retries: p.retries.Load(),
		Msgs:    p.msgs.Load(),
		Units:   p.units.Load(),
		Bytes:   p.bytes.Load(),
		Crashes: p.crashes.Load(),
	}
}

// Close stops accepting, closes every live connection and waits for
// their handlers to notice. In-flight rounds fail on the coordinator
// side; a peer shutdown mid-execution is an execution error, not a
// retryable fault (the coordinator cannot re-reach a dead peer).
func (p *Peer) Close() error {
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	<-p.done
	return err
}

func (p *Peer) acceptLoop() {
	defer close(p.done)
	var wg sync.WaitGroup
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			wg.Wait()
			return
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				p.mu.Lock()
				delete(p.conns, conn)
				p.mu.Unlock()
				conn.Close()
			}()
			p.serve(conn)
		}()
	}
}

// serve handles one coordinator connection: handshake, then a strict
// request-response loop. Any protocol violation is answered with an Err
// frame (best effort) and the connection is dropped — a desynchronized
// stream cannot be resynchronized safely.
func (p *Peer) serve(conn net.Conn) {
	fail := func(err error) {
		_ = writeFrame(conn, kindErr, encodeErr(err.Error()))
	}

	kind, body, err := readFrame(conn)
	if err != nil {
		return
	}
	if kind != kindHello {
		fail(fmt.Errorf("expected Hello, got frame kind %d", kind))
		return
	}
	if _, err := decodeHello(body); err != nil {
		fail(err)
		return
	}
	if err := writeFrame(conn, kindHelloAck, nil); err != nil {
		return
	}

	for {
		kind, body, err := readFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				fail(err)
			}
			return
		}
		switch kind {
		case kindRound:
			r, err := decodeRound(body)
			if err != nil {
				fail(err)
				return
			}
			inbox := p.assemble(r)
			if err := writeFrame(conn, kindInbox, encodeInbox(inbox)); err != nil {
				return
			}
		case kindStats:
			if err := writeFrame(conn, kindStatsResp, encodeStats(p.Stats())); err != nil {
				return
			}
		default:
			fail(fmt.Errorf("unexpected frame kind %d", kind))
			return
		}
	}
}

// assemble builds the Inbox reply for one Round frame: group the
// messages by destination preserving their ascending source order, then
// execute the crash directive. The messages arrive in ascending
// (source, destination) order (decodeRound verified it), so per-
// destination appends reproduce exactly the concatenation order the
// in-process Exchange produces.
func (p *Peer) assemble(r *RoundFrame) *InboxFrame {
	p.rounds.Add(1)
	if r.Attempt > 0 {
		p.retries.Add(1)
	}

	// Group by destination. The frame is source-major, so a destination's
	// messages are scattered across it but stay in ascending source order
	// within each destination; appending in frame order reproduces
	// exactly the concatenation order of the in-process Exchange.
	f := &InboxFrame{Seq: r.Seq, Attempt: r.Attempt}
	at := make(map[int]int, 8) // dst → index into f.Dsts
	for _, m := range r.Msgs {
		p.msgs.Add(1)
		p.units.Add(uint64(m.Units))
		p.bytes.Add(uint64(len(m.Payload)))
		i, ok := at[m.To]
		if !ok {
			i = len(f.Dsts)
			at[m.To] = i
			f.Dsts = append(f.Dsts, DstSegs{Dst: m.To})
		}
		f.Dsts[i].Segs = append(f.Dsts[i].Segs, m)
	}
	sort.Slice(f.Dsts, func(i, j int) bool { return f.Dsts[i].Dst < f.Dsts[j].Dst })

	if r.Crash >= 0 {
		p.crashes.Add(1)
		crash := int(r.Crash)
		for i, d := range f.Dsts {
			if d.Dst != crash {
				continue
			}
			var lost uint64
			for _, sg := range d.Segs {
				lost += uint64(sg.Units)
			}
			f.Lost = lost
			f.Dsts = append(f.Dsts[:i], f.Dsts[i+1:]...)
			break
		}
	}
	return f
}
