// Package transport abstracts the exchange barrier of the MPC simulator
// behind pluggable backends. The simulator's cost model is defined
// entirely by what the barrier delivers — per-destination inboxes and
// received-unit counts — so a backend only has to reproduce that
// contract (internal/runtime's assembly order and counting) to be
// observationally identical: results, Stats, traces and fault reports
// are bit-for-bit the same on every backend.
//
// Two backends exist. InProc is the identity: it installs nothing, and
// executions run the assembly inline exactly as before (the default,
// zero overhead on the hot path). TCP delegates each round to a tier of
// shuffle peers over persistent connections carrying length-prefixed
// binary frames (see frame.go): the execution driver keeps all local
// computation and streams each round's counted outbox frames to the
// peers, which assemble the per-destination inboxes and stream them
// back. Faults injected by the execution's fault plane are executed
// physically by this backend — dropped frames never reach a socket,
// crashed destinations lose their assembled inboxes peer-side — and are
// detected and retried by the unchanged barrier protocol in
// internal/mpc.
package transport

import (
	"context"

	"mpcjoin/internal/mpc"
)

// Transport is a factory for per-execution exchange wires. Connect is
// called once per execution; the returned wire carries that execution's
// rounds sequentially and is closed when the execution ends. A nil wire
// (with nil error) selects the in-process path.
type Transport interface {
	// Name identifies the backend ("inproc", "tcp") in flags, bench rows
	// and reports.
	Name() string
	// Connect establishes the execution's wire; nil means in-process.
	Connect(ctx context.Context) (mpc.Wire, error)
}

type inproc struct{}

func (inproc) Name() string                              { return "inproc" }
func (inproc) Connect(context.Context) (mpc.Wire, error) { return nil, nil }

// InProc returns the in-process backend: the identity transport, equal
// to not configuring one at all.
func InProc() Transport { return inproc{} }

type tcp struct{ addrs []string }

func (t tcp) Name() string { return "tcp" }
func (t tcp) Connect(ctx context.Context) (mpc.Wire, error) {
	return DialCluster(ctx, t.addrs)
}

// TCP returns the TCP backend over the given peer addresses. The
// address order is the cluster topology (it fixes destination
// ownership) and must be identical across coordinators.
func TCP(addrs ...string) Transport {
	return tcp{addrs: append([]string(nil), addrs...)}
}
