package transport

// frame.go is the wire format of the exchange transport: length-prefixed
// binary frames with a versioned header, carrying the counted outbox
// messages of one round attempt peer-ward and the assembled inbox
// segments back. The format is deliberately dumb — fixed-width
// big-endian headers followed by opaque payload bytes — because the PR 2
// outboxes already hold each message as one contiguous span: a Round
// frame is a handful of integer headers plus straight memcpys, and the
// byte volume on the wire is exactly the Units × element-size the tracer
// reports as Bytes.
//
// Layout. Every frame is
//
//	u32  length of everything after this field (≤ MaxFrame)
//	[4]  magic "MPCX"
//	u8   version (currently 1)
//	u8   kind
//	...  kind-specific body
//
// all integers big-endian. Decoding is strict: unknown magic, version or
// kind, truncated bodies, counts that don't fit the remaining bytes, and
// payload lengths that don't sum to exactly the bytes present are all
// errors, never panics, and allocations are bounded by the declared
// frame length before any count field is trusted.
//
// Payload opacity is a compatibility guarantee: peers key on the frame
// headers and never interpret payload bytes, so the coordinator-side
// payload encoding can change without a Version bump. The columnar row
// codec (internal/relation's wire columns, engaged through mpc's
// ColumnarWire seam) replaced the raw element snapshot for row exchanges
// under the same Version 1 — a mixed fleet of old peers and new
// coordinators interops, because a peer only ever memcpys the payload.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mpcjoin/internal/mpc"
)

// Version is the wire-format version this package speaks. Peers refuse
// a Hello with any other version at handshake, so skew between a
// coordinator and its peers fails fast and explicitly instead of
// mis-parsing frames mid-execution.
const Version = 1

// MaxFrame bounds the declared length of a single frame (1 GiB). An
// exchange round larger than this must be split across rounds by the
// algorithm; in the model's terms a round at this size has long since
// blown any interesting load bound.
const MaxFrame = 1 << 30

// Frame kinds.
const (
	kindHello     = 1 // client → peer: version/topology handshake
	kindHelloAck  = 2 // peer → client: handshake accepted
	kindRound     = 3 // client → peer: one attempt's messages for this peer
	kindInbox     = 4 // peer → client: the attempt's assembled inboxes
	kindStats     = 5 // client → peer: request delivery counters
	kindStatsResp = 6 // peer → client: delivery counters
	kindErr       = 7 // peer → client: protocol failure, connection closes
)

var magic = [4]byte{'M', 'P', 'C', 'X'}

// ErrFrame is wrapped by every malformed-frame error.
var ErrFrame = errors.New("transport: malformed frame")

// Hello is the handshake a coordinator sends on every peer connection:
// which slot of the peer set this connection is, out of how many. The
// peer needs the pair only for diagnostics — destination ownership is
// computed per round on the coordinator — but echoing the topology at
// handshake catches mis-wired clusters before any data moves.
type Hello struct {
	PeerIndex int
	PeerCount int
}

// RoundFrame is one exchange attempt as sent to one peer: the round
// coordinates, the crash directive if this peer owns the crashed
// destination (-1 otherwise), and the messages destined to this peer's
// destinations, in ascending (source, destination) order. A dropped
// message is elided by the coordinator before framing, so it simply
// never appears here.
type RoundFrame struct {
	Seq     uint64
	Attempt uint32
	PSrc    uint32
	PDst    uint32
	Crash   int32
	Msgs    []mpc.WireMsg
}

// InboxFrame is a peer's reply to a RoundFrame: for each destination it
// assembled anything for, the segments in ascending source order, plus
// the units a crashed destination lost (assembled and then discarded).
// Seq and Attempt echo the request so the coordinator can detect a
// desynchronized peer.
type InboxFrame struct {
	Seq     uint64
	Attempt uint32
	Lost    uint64
	Dsts    []DstSegs
}

// DstSegs is one destination's assembled inbox: segments in ascending
// source order. Seg.To repeats Dst for uniformity with mpc.WireMsg.
type DstSegs struct {
	Dst  int
	Segs []mpc.WireMsg
}

// PeerStats are a peer's cumulative delivery counters, for smoke tests
// and cluster diagnostics. They count what physically crossed this
// peer's socket: retried attempts count again, and dropped messages
// (elided coordinator-side) never count.
type PeerStats struct {
	Rounds  uint64 `json:"rounds"`  // Round frames served
	Retries uint64 `json:"retries"` // Round frames with Attempt > 0
	Msgs    uint64 `json:"msgs"`    // messages received
	Units   uint64 `json:"units"`   // units received
	Bytes   uint64 `json:"bytes"`   // payload bytes received
	Crashes uint64 `json:"crashes"` // crash directives executed
}

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

// writeFrame writes one frame: length prefix, header, body.
func writeFrame(w io.Writer, kind byte, body []byte) error {
	n := len(body) + 6
	if n > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrFrame, n)
	}
	hdr := make([]byte, 10, 10+len(body))
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	copy(hdr[4:8], magic[:])
	hdr[8] = Version
	hdr[9] = kind
	// One write per frame keeps frames atomic on the socket without
	// buffering layers; bodies are already single contiguous buffers.
	_, err := w.Write(append(hdr, body...))
	return err
}

// readFrame reads one frame and returns its kind and body. The header is
// validated here (magic, version, length bound); the body is returned
// raw for the kind-specific decoder.
func readFrame(r io.Reader) (kind byte, body []byte, err error) {
	var lb [4]byte
	if _, err := io.ReadFull(r, lb[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lb[:])
	if n < 6 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: declared length %d", ErrFrame, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", ErrFrame, err)
	}
	if [4]byte(buf[0:4]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrFrame, buf[0:4])
	}
	if buf[4] != Version {
		return 0, nil, fmt.Errorf("%w: version %d, this build speaks %d", ErrFrame, buf[4], Version)
	}
	return buf[5], buf[6:], nil
}

// ---------------------------------------------------------------------------
// Bounds-checked body parsing
// ---------------------------------------------------------------------------

// parser walks a frame body left to right; the first out-of-bounds read
// poisons it and every subsequent read returns zero values, so decoders
// read straight through and check err once.
type parser struct {
	b   []byte
	off int
	err error
}

func (p *parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
	}
}

func (p *parser) need(n int) bool {
	if p.err != nil {
		return false
	}
	if n < 0 || len(p.b)-p.off < n {
		p.fail("truncated body: need %d bytes at offset %d of %d", n, p.off, len(p.b))
		return false
	}
	return true
}

func (p *parser) u32() uint32 {
	if !p.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(p.b[p.off:])
	p.off += 4
	return v
}

func (p *parser) u64() uint64 {
	if !p.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(p.b[p.off:])
	p.off += 8
	return v
}

func (p *parser) i32() int32 { return int32(p.u32()) }

func (p *parser) bytes(n int) []byte {
	if !p.need(n) {
		return nil
	}
	v := p.b[p.off : p.off+n : p.off+n]
	p.off += n
	return v
}

func (p *parser) done() error {
	if p.err != nil {
		return p.err
	}
	if p.off != len(p.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p.b)-p.off)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Kind-specific bodies
// ---------------------------------------------------------------------------

func encodeHello(h Hello) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b[0:4], uint32(h.PeerIndex))
	binary.BigEndian.PutUint32(b[4:8], uint32(h.PeerCount))
	return b
}

func decodeHello(body []byte) (Hello, error) {
	p := parser{b: body}
	h := Hello{PeerIndex: int(p.u32()), PeerCount: int(p.u32())}
	if err := p.done(); err != nil {
		return Hello{}, err
	}
	if h.PeerCount < 1 || h.PeerIndex < 0 || h.PeerIndex >= h.PeerCount {
		return Hello{}, fmt.Errorf("%w: hello slot %d of %d", ErrFrame, h.PeerIndex, h.PeerCount)
	}
	return h, nil
}

// msgHeaderLen is the fixed per-message header inside Round and Inbox
// bodies: from, to, units, payload length (4 × u32).
const msgHeaderLen = 16

func encodeRound(r *RoundFrame) []byte {
	n := 24 + len(r.Msgs)*msgHeaderLen
	for _, m := range r.Msgs {
		n += len(m.Payload)
	}
	b := make([]byte, 0, n)
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	b = binary.BigEndian.AppendUint32(b, r.Attempt)
	b = binary.BigEndian.AppendUint32(b, r.PSrc)
	b = binary.BigEndian.AppendUint32(b, r.PDst)
	b = binary.BigEndian.AppendUint32(b, uint32(r.Crash))
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.Msgs)))
	for _, m := range r.Msgs {
		b = binary.BigEndian.AppendUint32(b, uint32(m.From))
		b = binary.BigEndian.AppendUint32(b, uint32(m.To))
		b = binary.BigEndian.AppendUint32(b, uint32(m.Units))
		b = binary.BigEndian.AppendUint32(b, uint32(len(m.Payload)))
	}
	for _, m := range r.Msgs {
		b = append(b, m.Payload...)
	}
	return b
}

func decodeRound(body []byte) (*RoundFrame, error) {
	p := parser{b: body}
	r := &RoundFrame{
		Seq:     p.u64(),
		Attempt: p.u32(),
		PSrc:    p.u32(),
		PDst:    p.u32(),
		Crash:   p.i32(),
	}
	nMsgs := int(p.u32())
	if p.err == nil {
		switch {
		case r.PSrc == 0 || r.PDst == 0:
			p.fail("round %d has %d sources, %d destinations", r.Seq, r.PSrc, r.PDst)
		case r.Crash < -1 || r.Crash >= int32(r.PDst):
			p.fail("crash directive %d outside destinations [0,%d)", r.Crash, r.PDst)
		case nMsgs < 0 || nMsgs > (len(body)-p.off)/msgHeaderLen:
			// The headers alone must fit in the bytes present, which bounds
			// the slice allocation below by the frame length.
			p.fail("%d message headers in %d remaining bytes", nMsgs, len(body)-p.off)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	r.Msgs = make([]mpc.WireMsg, nMsgs)
	plens := make([]int, nMsgs)
	prev := -1
	for i := range r.Msgs {
		m := &r.Msgs[i]
		m.From = int(p.u32())
		m.To = int(p.u32())
		m.Units = int(p.u32())
		plens[i] = int(p.u32())
		if p.err != nil {
			return nil, p.err
		}
		if m.From >= int(r.PSrc) || m.To >= int(r.PDst) {
			p.fail("message %d endpoints %d→%d outside %d×%d", i, m.From, m.To, r.PSrc, r.PDst)
			return nil, p.err
		}
		if key := m.From*int(r.PDst) + m.To; key <= prev {
			p.fail("message %d (%d→%d) out of (source, destination) order", i, m.From, m.To)
			return nil, p.err
		} else {
			prev = key
		}
		if m.Units <= 0 {
			p.fail("message %d carries %d units; empty messages are never framed", i, m.Units)
			return nil, p.err
		}
	}
	for i := range r.Msgs {
		r.Msgs[i].Payload = p.bytes(plens[i])
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return r, nil
}

func encodeInbox(f *InboxFrame) []byte {
	n := 24
	for _, d := range f.Dsts {
		n += 8 + len(d.Segs)*msgHeaderLen
		for _, sg := range d.Segs {
			n += len(sg.Payload)
		}
	}
	b := make([]byte, 0, n)
	b = binary.BigEndian.AppendUint64(b, f.Seq)
	b = binary.BigEndian.AppendUint32(b, f.Attempt)
	b = binary.BigEndian.AppendUint64(b, f.Lost)
	b = binary.BigEndian.AppendUint32(b, uint32(len(f.Dsts)))
	for _, d := range f.Dsts {
		b = binary.BigEndian.AppendUint32(b, uint32(d.Dst))
		b = binary.BigEndian.AppendUint32(b, uint32(len(d.Segs)))
		for _, sg := range d.Segs {
			b = binary.BigEndian.AppendUint32(b, uint32(sg.From))
			b = binary.BigEndian.AppendUint32(b, uint32(sg.To))
			b = binary.BigEndian.AppendUint32(b, uint32(sg.Units))
			b = binary.BigEndian.AppendUint32(b, uint32(len(sg.Payload)))
		}
	}
	for _, d := range f.Dsts {
		for _, sg := range d.Segs {
			b = append(b, sg.Payload...)
		}
	}
	return b
}

func decodeInbox(body []byte) (*InboxFrame, error) {
	p := parser{b: body}
	f := &InboxFrame{
		Seq:     p.u64(),
		Attempt: p.u32(),
		Lost:    p.u64(),
	}
	nDst := int(p.u32())
	if p.err == nil && (nDst < 0 || nDst > (len(body)-p.off)/8) {
		p.fail("%d destination headers in %d remaining bytes", nDst, len(body)-p.off)
	}
	if p.err != nil {
		return nil, p.err
	}
	f.Dsts = make([]DstSegs, 0, nDst)
	var plens []int
	prevDst := -1
	for i := 0; i < nDst; i++ {
		dst := int(p.u32())
		nSegs := int(p.u32())
		if p.err == nil && (nSegs < 0 || nSegs > (len(body)-p.off)/msgHeaderLen) {
			p.fail("destination %d declares %d segments in %d remaining bytes", dst, nSegs, len(body)-p.off)
		}
		if p.err != nil {
			return nil, p.err
		}
		if dst <= prevDst {
			p.fail("destination %d out of order after %d", dst, prevDst)
			return nil, p.err
		}
		prevDst = dst
		segs := make([]mpc.WireMsg, nSegs)
		prevSrc := -1
		for j := range segs {
			sg := &segs[j]
			sg.From = int(p.u32())
			sg.To = int(p.u32())
			sg.Units = int(p.u32())
			plens = append(plens, int(p.u32()))
			if p.err != nil {
				return nil, p.err
			}
			if sg.To != dst {
				p.fail("destination %d holds a segment addressed to %d", dst, sg.To)
				return nil, p.err
			}
			if sg.From <= prevSrc {
				p.fail("destination %d segments out of source order (%d after %d)", dst, sg.From, prevSrc)
				return nil, p.err
			}
			prevSrc = sg.From
			if sg.Units <= 0 {
				p.fail("destination %d segment from %d carries %d units", dst, sg.From, sg.Units)
				return nil, p.err
			}
		}
		f.Dsts = append(f.Dsts, DstSegs{Dst: dst, Segs: segs})
	}
	k := 0
	for i := range f.Dsts {
		for j := range f.Dsts[i].Segs {
			f.Dsts[i].Segs[j].Payload = p.bytes(plens[k])
			k++
		}
	}
	if err := p.done(); err != nil {
		return nil, err
	}
	return f, nil
}

func encodeStats(s PeerStats) []byte {
	b := make([]byte, 0, 48)
	b = binary.BigEndian.AppendUint64(b, s.Rounds)
	b = binary.BigEndian.AppendUint64(b, s.Retries)
	b = binary.BigEndian.AppendUint64(b, s.Msgs)
	b = binary.BigEndian.AppendUint64(b, s.Units)
	b = binary.BigEndian.AppendUint64(b, s.Bytes)
	b = binary.BigEndian.AppendUint64(b, s.Crashes)
	return b
}

func decodeStats(body []byte) (PeerStats, error) {
	p := parser{b: body}
	s := PeerStats{
		Rounds:  p.u64(),
		Retries: p.u64(),
		Msgs:    p.u64(),
		Units:   p.u64(),
		Bytes:   p.u64(),
		Crashes: p.u64(),
	}
	if err := p.done(); err != nil {
		return PeerStats{}, err
	}
	return s, nil
}

// maxErrLen bounds the message a peer can make a client allocate.
const maxErrLen = 4096

func encodeErr(msg string) []byte {
	if len(msg) > maxErrLen {
		msg = msg[:maxErrLen]
	}
	return []byte(msg)
}

func decodeErr(body []byte) string {
	if len(body) > maxErrLen {
		body = body[:maxErrLen]
	}
	return string(body)
}
