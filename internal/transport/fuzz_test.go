package transport

// fuzz_test.go asserts the frame decoders' contract over arbitrary
// bytes, in the style of the server's request-decoder fuzzing: a decoder
// returns a validated frame or an error — it must never panic, and
// whatever it accepts must satisfy the documented invariants (so a
// hostile or corrupted stream cannot smuggle malformed rounds into the
// exchange barrier).

import (
	"bytes"
	"testing"

	"mpcjoin/internal/mpc"
)

func fuzzSeedFrames() [][]byte {
	round := encodeRound(&RoundFrame{
		Seq: 3, Attempt: 1, PSrc: 4, PDst: 8, Crash: 2,
		Msgs: []mpc.WireMsg{
			{From: 0, To: 1, Units: 2, Payload: []byte{1, 2, 3, 4}},
			{From: 2, To: 7, Units: 1, Payload: []byte{5, 6}},
		},
	})
	inbox := encodeInbox(&InboxFrame{
		Seq: 3, Attempt: 1, Lost: 4,
		Dsts: []DstSegs{
			{Dst: 0, Segs: []mpc.WireMsg{{From: 1, To: 0, Units: 1, Payload: []byte{9}}}},
			{Dst: 5, Segs: []mpc.WireMsg{
				{From: 0, To: 5, Units: 1, Payload: []byte{8}},
				{From: 3, To: 5, Units: 2, Payload: []byte{7, 6}},
			}},
		},
	})
	return [][]byte{
		round,
		inbox,
		encodeHello(Hello{PeerIndex: 1, PeerCount: 3}),
		encodeStats(PeerStats{Rounds: 9, Units: 100}),
		round[:len(round)-3], // truncated payload
		round[:17],           // truncated header
		{},
		bytes.Repeat([]byte{0xff}, 64), // inflated counts everywhere
	}
}

// FuzzDecodeRound: accepted frames must have in-range endpoints, strictly
// ascending (source, destination) order, positive unit counts, and an
// in-range crash directive — the invariants the peer's assembly relies
// on without rechecking.
func FuzzDecodeRound(f *testing.F) {
	for _, b := range fuzzSeedFrames() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		r, err := decodeRound(body)
		if err != nil {
			return // rejected: the peer answers Err and drops the conn
		}
		if r.PSrc == 0 || r.PDst == 0 {
			t.Fatalf("accepted empty topology %+v", r)
		}
		if r.Crash < -1 || r.Crash >= int32(r.PDst) {
			t.Fatalf("accepted out-of-range crash %d of %d", r.Crash, r.PDst)
		}
		prev := -1
		for i, m := range r.Msgs {
			if m.From < 0 || m.From >= int(r.PSrc) || m.To < 0 || m.To >= int(r.PDst) {
				t.Fatalf("accepted out-of-range endpoints in msg %d: %+v", i, m)
			}
			if m.Units <= 0 {
				t.Fatalf("accepted non-positive units in msg %d: %+v", i, m)
			}
			key := m.From*int(r.PDst) + m.To
			if key <= prev {
				t.Fatalf("accepted out-of-order msg %d: %+v", i, m)
			}
			prev = key
		}
	})
}

// FuzzDecodeInbox: accepted frames must have strictly ascending
// destinations, ascending sources within each destination, consistent
// addressing, and positive unit counts — the invariants the coordinator's
// merge relies on before the typed decode re-validates payload lengths.
func FuzzDecodeInbox(f *testing.F) {
	for _, b := range fuzzSeedFrames() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		in, err := decodeInbox(body)
		if err != nil {
			return
		}
		prevDst := -1
		for _, d := range in.Dsts {
			if d.Dst <= prevDst {
				t.Fatalf("accepted out-of-order destination %d after %d", d.Dst, prevDst)
			}
			prevDst = d.Dst
			prevSrc := -1
			for _, sg := range d.Segs {
				if sg.To != d.Dst {
					t.Fatalf("accepted mis-addressed segment %+v under destination %d", sg, d.Dst)
				}
				if sg.From <= prevSrc {
					t.Fatalf("accepted out-of-source-order segment %+v", sg)
				}
				prevSrc = sg.From
				if sg.Units <= 0 {
					t.Fatalf("accepted non-positive units %+v", sg)
				}
			}
		}
	})
}

// FuzzReadFrame feeds arbitrary bytes through the length-prefixed frame
// reader chained into the kind decoders — the full path a hostile peer
// controls. Nothing may panic; header violations must reject.
func FuzzReadFrame(f *testing.F) {
	for _, b := range fuzzSeedFrames() {
		var buf bytes.Buffer
		writeFrame(&buf, kindRound, b)
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 2, 'M', 'P'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, stream []byte) {
		kind, body, err := readFrame(bytes.NewReader(stream))
		if err != nil {
			return
		}
		// Whatever the reader yields, every kind decoder must reject or
		// accept without panicking (a peer dispatches on kind, but a
		// corrupted kind byte may route any body anywhere).
		_, _ = decodeRound(body)
		_, _ = decodeInbox(body)
		_, _ = decodeHello(body)
		_, _ = decodeStats(body)
		_ = decodeErr(body)
		_ = kind
	})
}

// FuzzHelloStats covers the two fixed-size decoders directly.
func FuzzHelloStats(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 3})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xaa}, 48))
	f.Fuzz(func(t *testing.T, body []byte) {
		if h, err := decodeHello(body); err == nil {
			if h.PeerCount < 1 || h.PeerIndex < 0 || h.PeerIndex >= h.PeerCount {
				t.Fatalf("accepted invalid hello %+v", h)
			}
		}
		_, _ = decodeStats(body)
	})
}
