package transport

// frame_test.go covers the frame codec's round-trip identities and its
// strict-rejection edges; fuzz_test.go hammers the same decoders with
// arbitrary bytes.

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

func TestRoundFrameRoundTrip(t *testing.T) {
	in := &RoundFrame{
		Seq: 42, Attempt: 3, PSrc: 4, PDst: 8, Crash: 6,
		Msgs: []mpc.WireMsg{
			{From: 0, To: 2, Units: 2, Payload: []byte{1, 2, 3, 4}},
			{From: 0, To: 5, Units: 1, Payload: []byte{5}},
			{From: 3, To: 0, Units: 4, Payload: []byte{6, 7, 8, 9}},
		},
	}
	got, err := decodeRound(encodeRound(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip changed the frame:\n in: %+v\nout: %+v", in, got)
	}
}

func TestInboxFrameRoundTrip(t *testing.T) {
	in := &InboxFrame{
		Seq: 7, Attempt: 1, Lost: 12,
		Dsts: []DstSegs{
			{Dst: 1, Segs: []mpc.WireMsg{
				{From: 0, To: 1, Units: 1, Payload: []byte{1, 2}},
				{From: 2, To: 1, Units: 2, Payload: []byte{3, 4, 5, 6}},
			}},
			{Dst: 4, Segs: []mpc.WireMsg{
				{From: 1, To: 4, Units: 3, Payload: []byte{7, 8, 9}},
			}},
		},
	}
	got, err := decodeInbox(encodeInbox(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip changed the frame:\n in: %+v\nout: %+v", in, got)
	}
}

func TestHelloStatsRoundTrip(t *testing.T) {
	h, err := decodeHello(encodeHello(Hello{PeerIndex: 2, PeerCount: 5}))
	if err != nil || h.PeerIndex != 2 || h.PeerCount != 5 {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	s0 := PeerStats{Rounds: 1, Retries: 2, Msgs: 3, Units: 4, Bytes: 5, Crashes: 6}
	s, err := decodeStats(encodeStats(s0))
	if err != nil || s != s0 {
		t.Fatalf("stats round trip: %+v, %v", s, err)
	}
}

// TestRoundFramePayloadOpaque pins the no-version-bump compatibility of
// the columnar payload switch: a real columnar row encoding traverses the
// Version 1 frame codec byte-identically, because peers never interpret
// payload bytes. If this test ever requires a Version bump to pass, the
// opacity guarantee has been broken.
func TestRoundFramePayloadOpaque(t *testing.T) {
	rows := []relation.Row[int64]{
		{Vals: []relation.Value{1, 9}, W: 5},
		{Vals: []relation.Value{1, 8}, W: 6},
		{Vals: []relation.Value{2, 9}, W: 7},
	}
	payload := relation.AppendRowColumns(nil, rows)
	in := &RoundFrame{
		Seq: 1, PSrc: 2, PDst: 2, Crash: -1,
		Msgs: []mpc.WireMsg{{From: 0, To: 1, Units: len(rows), Payload: payload}},
	}
	got, err := decodeRound(encodeRound(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.Msgs[0].Payload, payload) {
		t.Fatal("columnar payload changed in frame transit")
	}
	dec, rest, err := relation.DecodeRowColumns[int64](nil, len(rows), got.Msgs[0].Payload)
	if err != nil || len(rest) != 0 || len(dec) != len(rows) {
		t.Fatalf("payload no longer decodes as columnar rows after transit: %v", err)
	}
}

func TestDecodeRoundRejects(t *testing.T) {
	base := &RoundFrame{
		Seq: 1, Attempt: 0, PSrc: 2, PDst: 4, Crash: -1,
		Msgs: []mpc.WireMsg{
			{From: 0, To: 1, Units: 1, Payload: []byte{1, 2}},
			{From: 1, To: 3, Units: 1, Payload: []byte{3, 4}},
		},
	}
	ok := encodeRound(base)
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": ok[:10],
		"truncated msgs":   ok[:len(ok)-1],
		"trailing bytes":   append(append([]byte(nil), ok...), 0),
	}
	// Corrupt individual header fields of a valid frame.
	corrupt := func(off int, v byte) []byte {
		b := append([]byte(nil), ok...)
		b[off] = v
		return b
	}
	cases["crash out of range"] = corrupt(23, 9)  // crash u32 low byte → 9 ≥ PDst
	cases["msg count inflated"] = corrupt(27, 99) // nMsgs low byte
	cases["dst out of range"] = corrupt(35, 7)    // msg 0 To low byte → 7 ≥ PDst? 7 ≥ 4 ✓
	for name, b := range cases {
		if _, err := decodeRound(b); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestDecodeRoundRejectsOutOfOrderMsgs(t *testing.T) {
	f := &RoundFrame{
		Seq: 1, PSrc: 2, PDst: 4, Crash: -1,
		Msgs: []mpc.WireMsg{
			{From: 1, To: 0, Units: 1, Payload: []byte{1}},
			{From: 0, To: 1, Units: 1, Payload: []byte{2}},
		},
	}
	if _, err := decodeRound(encodeRound(f)); err == nil {
		t.Fatal("accepted out-of-order messages")
	}
}

func TestReadFrameRejectsVersionSkewAndMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, kindHello, encodeHello(Hello{PeerCount: 1})); err != nil {
		t.Fatal(err)
	}
	ok := buf.Bytes()

	skew := append([]byte(nil), ok...)
	skew[8] = Version + 1
	if _, _, err := readFrame(bytes.NewReader(skew)); !errors.Is(err, ErrFrame) {
		t.Fatalf("version skew: err = %v, want ErrFrame", err)
	}

	bad := append([]byte(nil), ok...)
	bad[4] = 'Z'
	if _, _, err := readFrame(bytes.NewReader(bad)); !errors.Is(err, ErrFrame) {
		t.Fatalf("bad magic: err = %v, want ErrFrame", err)
	}

	huge := append([]byte(nil), ok...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := readFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversize length: err = %v, want ErrFrame", err)
	}
}
