package transport

// client.go is the coordinator half of the TCP backend: an mpc.Wire that
// ships each exchange round to a set of shuffle peers and merges their
// assembled inboxes. Destination ownership is a contiguous balanced
// block split of [0, pDst) across the peers, recomputed per round
// because pDst varies round to round (virtual server counts: grids,
// bins, subquery groups); given the fixed peer order it is
// deterministic, so every retry attempt routes identically.
//
// The fault directives of a round attempt become physical here: the
// dropped message is elided from the frames before any byte is written
// to a socket (the peer observes genuinely missing data and the barrier
// detects it by count verification, exactly as the paper's failure
// model prescribes), and the crash directive rides only on the frame of
// the peer owning the crashed destination.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"mpcjoin/internal/mpc"
)

// dialTimeout bounds each peer connection attempt; combined with the
// caller's ctx, whichever is sooner.
const dialTimeout = 10 * time.Second

// Client is an mpc.Wire over persistent TCP connections to a fixed set
// of shuffle peers. It belongs to one execution: rounds are presented
// sequentially (the execution driver is single-threaded at barriers),
// each connection is owned by one round goroutine at a time.
type Client struct {
	peers []*peerConn
}

type peerConn struct {
	addr string
	conn net.Conn
}

// DialCluster connects to every peer and performs the version/topology
// handshake. The peer order is the cluster topology: it determines
// destination ownership, so every coordinator of an execution must use
// the same order (the cluster smoke lane passes the same -peers list
// everywhere).
func DialCluster(ctx context.Context, addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("transport: no peers")
	}
	c := &Client{}
	d := net.Dialer{Timeout: dialTimeout}
	for i, addr := range addrs {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial peer %d (%s): %w", i, addr, err)
		}
		pc := &peerConn{addr: addr, conn: conn}
		c.peers = append(c.peers, pc)
		if err := writeFrame(conn, kindHello, encodeHello(Hello{PeerIndex: i, PeerCount: len(addrs)})); err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: hello to peer %d (%s): %w", i, addr, err)
		}
		kind, body, err := readFrame(conn)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: handshake with peer %d (%s): %w", i, addr, err)
		}
		switch kind {
		case kindHelloAck:
		case kindErr:
			c.Close()
			return nil, fmt.Errorf("transport: peer %d (%s) refused: %s", i, addr, decodeErr(body))
		default:
			c.Close()
			return nil, fmt.Errorf("transport: peer %d (%s) answered Hello with frame kind %d", i, addr, kind)
		}
	}
	return c, nil
}

// Close closes every peer connection. Peers notice EOF and drop the
// conn; their listeners keep serving other executions.
func (c *Client) Close() error {
	var first error
	for _, pc := range c.peers {
		if pc.conn != nil {
			if err := pc.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// ownerSplit returns peer i's destination block [lo, hi) of the
// contiguous balanced split of pDst destinations over n peers.
func ownerSplit(pDst, n, i int) (lo, hi int) {
	return i * pDst / n, (i + 1) * pDst / n
}

// owner returns the peer owning destination dst under the split.
func owner(pDst, n, dst int) int {
	// The block split is monotone; invert it directly and fix boundary
	// rounding with a local scan.
	i := dst * n / pDst
	for {
		lo, hi := ownerSplit(pDst, n, i)
		if dst < lo {
			i--
		} else if dst >= hi {
			i++
		} else {
			return i
		}
	}
}

// ExchangeRound implements mpc.Wire: partition the attempt's messages
// by owning peer (after eliding the dropped one), issue the per-peer
// Round frames concurrently, and merge the Inbox replies.
func (c *Client) ExchangeRound(ctx context.Context, r *mpc.WireRound) (*mpc.WireInbox, error) {
	n := len(c.peers)
	frames := make([]*RoundFrame, n)
	for i := range frames {
		frames[i] = &RoundFrame{
			Seq:     uint64(r.Seq),
			Attempt: uint32(r.Attempt),
			PSrc:    uint32(r.PSrc),
			PDst:    uint32(r.PDst),
			Crash:   -1,
		}
	}
	if r.Crash >= 0 {
		frames[owner(r.PDst, n, r.Crash)].Crash = int32(r.Crash)
	}
	for i, m := range r.Msgs {
		if i == r.Drop {
			// The drop directive is executed here, before any byte reaches
			// a socket: the message's frames genuinely never carry it, and
			// the owning peer's counts come up short at the barrier.
			continue
		}
		o := owner(r.PDst, n, m.To)
		frames[o].Msgs = append(frames[o].Msgs, m)
	}

	// One goroutine per peer; each owns its connection for the round.
	replies := make([]*InboxFrame, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := range c.peers {
		go func(i int) {
			defer wg.Done()
			replies[i], errs[i] = c.peers[i].roundTrip(ctx, frames[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("peer %d (%s): %w", i, c.peers[i].addr, err)
		}
	}

	in := &mpc.WireInbox{
		Segs: make([][]mpc.WireMsg, r.PDst),
		Recv: make([]int64, r.PDst),
	}
	for i, f := range replies {
		if f.Seq != uint64(r.Seq) || f.Attempt != uint32(r.Attempt) {
			return nil, fmt.Errorf("peer %d (%s): inbox for round %d.%d, want %d.%d — connection desynchronized",
				i, c.peers[i].addr, f.Seq, f.Attempt, r.Seq, r.Attempt)
		}
		in.Lost += int64(f.Lost)
		lo, hi := ownerSplit(r.PDst, n, i)
		for _, d := range f.Dsts {
			if d.Dst < lo || d.Dst >= hi {
				return nil, fmt.Errorf("peer %d (%s): inbox for destination %d outside its block [%d,%d)",
					i, c.peers[i].addr, d.Dst, lo, hi)
			}
			in.Segs[d.Dst] = d.Segs
			var units int64
			for _, sg := range d.Segs {
				units += int64(sg.Units)
			}
			in.Recv[d.Dst] = units
		}
	}
	return in, nil
}

// roundTrip sends one Round frame and reads its Inbox reply,
// propagating ctx cancellation onto the socket via a deadline watcher.
func (pc *peerConn) roundTrip(ctx context.Context, f *RoundFrame) (*InboxFrame, error) {
	stop := watchCancel(ctx, pc.conn)
	defer stop()
	if err := writeFrame(pc.conn, kindRound, encodeRound(f)); err != nil {
		return nil, ctxErr(ctx, err)
	}
	kind, body, err := readFrame(pc.conn)
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	switch kind {
	case kindInbox:
		return decodeInbox(body)
	case kindErr:
		return nil, fmt.Errorf("peer error: %s", decodeErr(body))
	default:
		return nil, fmt.Errorf("expected Inbox, got frame kind %d", kind)
	}
}

// PeerStats fetches the delivery counters of every peer, in peer order.
func (c *Client) PeerStats(ctx context.Context) ([]PeerStats, error) {
	out := make([]PeerStats, len(c.peers))
	for i, pc := range c.peers {
		stop := watchCancel(ctx, pc.conn)
		if err := writeFrame(pc.conn, kindStats, nil); err != nil {
			stop()
			return nil, fmt.Errorf("peer %d (%s): %w", i, pc.addr, ctxErr(ctx, err))
		}
		kind, body, err := readFrame(pc.conn)
		stop()
		if err != nil {
			return nil, fmt.Errorf("peer %d (%s): %w", i, pc.addr, ctxErr(ctx, err))
		}
		switch kind {
		case kindStatsResp:
			s, err := decodeStats(body)
			if err != nil {
				return nil, fmt.Errorf("peer %d (%s): %w", i, pc.addr, err)
			}
			out[i] = s
		case kindErr:
			return nil, fmt.Errorf("peer %d (%s): %s", i, pc.addr, decodeErr(body))
		default:
			return nil, fmt.Errorf("peer %d (%s): expected StatsResp, got frame kind %d", i, pc.addr, kind)
		}
	}
	return out, nil
}

// watchCancel forces conn's reads and writes to fail promptly when ctx
// is cancelled, by slamming the deadline into the past. Returns a stop
// function that detaches the watcher and clears the deadline.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-done:
		}
	}()
	return func() {
		close(done)
		conn.SetDeadline(time.Time{})
	}
}

// ctxErr prefers the context's error over the socket error it caused,
// so a cancelled execution surfaces context.Canceled rather than an
// i/o timeout artifact.
func ctxErr(ctx context.Context, err error) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
