package transport_test

// Transport equivalence property test — the tentpole's contract: running
// any query class under any semiring over the TCP backend (three
// loopback shuffle peers) must give bit-for-bit the same rows, the same
// metered Stats, AND the same per-round trace as the in-process backend.
// This is the wire-level analogue of the runtime determinism sweep: the
// exchange barrier delivers identical inboxes whichever transport
// carries them, so everything derived downstream is identical too.

import (
	"math/rand"
	"reflect"
	"testing"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/transport"
	"mpcjoin/internal/workload"
)

// bootPeers starts n loopback shuffle peers torn down with the test and
// returns their addresses.
func bootPeers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		p, err := transport.ListenPeer("127.0.0.1:0")
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		addrs[i] = p.Addr()
	}
	return addrs
}

func freeConnexQuery() *hypergraph.Query {
	return hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"),
		hypergraph.Bin("R2", "B", "C"),
	}, "A", "B", "C")
}

func mapAnnot[W any](inst db.Instance[int64], f func(int64) W) db.Instance[W] {
	out := make(db.Instance[W], len(inst))
	for name, r := range inst {
		nr := relation.New[W](r.Schema()...)
		for _, row := range r.Rows {
			nr.Append(f(row.W), row.Vals...)
		}
		out[name] = nr
	}
	return out
}

// assertTransportEquivalent runs the query on the in-process backend and
// over TCP and requires identical rows, Stats and traces.
func assertTransportEquivalent[W any](t *testing.T, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], p int, peers []string) {
	t.Helper()
	base := core.Options{Servers: p, Seed: 11, Workers: 2}

	inOpts := base
	inOpts.Tracer = mpc.NewTracer()
	resI, stI, err := core.Execute(sr, q, inst, inOpts)
	if err != nil {
		t.Fatalf("inproc execute: %v", err)
	}

	tcpOpts := base
	tcpOpts.Tracer = mpc.NewTracer()
	tcpOpts.Transport = transport.TCP(peers...)
	resT, stT, err := core.Execute(sr, q, inst, tcpOpts)
	if err != nil {
		t.Fatalf("tcp execute: %v", err)
	}

	if stI != stT {
		t.Errorf("Stats diverge: inproc %+v, tcp %+v", stI, stT)
	}
	if trI, trT := inOpts.Tracer.Rounds(), tcpOpts.Tracer.Rounds(); !reflect.DeepEqual(trI, trT) {
		t.Errorf("traces diverge: inproc %d rounds, tcp %d rounds (%+v vs %+v)", len(trI), len(trT), trI, trT)
	}
	resI.SortRows()
	resT.SortRows()
	if !reflect.DeepEqual(resI.Schema(), resT.Schema()) {
		t.Errorf("schemas diverge: inproc %v, tcp %v", resI.Schema(), resT.Schema())
	}
	if !reflect.DeepEqual(resI.Rows, resT.Rows) {
		t.Errorf("rows diverge: inproc %d rows, tcp %d rows", resI.Len(), resT.Len())
	}
}

// TestTransportEquivalence sweeps every query class × three semirings ×
// p ∈ {4, 16} over a 3-peer loopback cluster, comparing the TCP backend
// against in-process execution. One cluster serves the whole sweep —
// every execution dials its own connections, like coordinators sharing
// a long-lived peer tier.
func TestTransportEquivalence(t *testing.T) {
	peers := bootPeers(t, 3)

	queries := []struct {
		name string
		q    *hypergraph.Query
	}{
		{"matmul", hypergraph.MatMulQuery()},
		{"line", hypergraph.LineQuery(3)},
		{"star", hypergraph.StarQuery(3)},
		{"star-like", hypergraph.Fig1StarLike()},
		{"tree", hypergraph.Fig2Tree()},
		{"free-connex", freeConnexQuery()},
	}
	for _, qc := range queries {
		n, dom := 60, 8
		if len(qc.q.Output) > 3 {
			n, dom = 40, 64
		}
		rng := rand.New(rand.NewSource(int64(len(qc.name)) * 97))
		uni, _ := workload.Uniform(qc.q, n, dom, rng)

		for _, p := range []int{4, 16} {
			t.Run(qc.name+"/int-sum-prod/p="+itoa(p), func(t *testing.T) {
				assertTransportEquivalent[int64](t, semiring.IntSumProd{}, qc.q, uni, p, peers)
			})
			t.Run(qc.name+"/bool-or-and/p="+itoa(p), func(t *testing.T) {
				boolInst := mapAnnot(uni, func(w int64) bool { return w != 0 })
				assertTransportEquivalent[bool](t, semiring.BoolOrAnd{}, qc.q, boolInst, p, peers)
			})
			t.Run(qc.name+"/min-plus/p="+itoa(p), func(t *testing.T) {
				tropInst := mapAnnot(uni, func(w int64) int64 { return w })
				assertTransportEquivalent[int64](t, semiring.MinPlus{}, qc.q, tropInst, p, peers)
			})
		}
	}
}

// TestTransportEquivalenceUnderFaults runs a drop-heavy and a crash
// schedule over TCP: the faults are executed physically (frames elided
// before the socket, inboxes discarded peer-side), and round-level retry
// must still deliver rows, Stats and the fault report bit-identical to
// the same schedule executed in process.
func TestTransportEquivalenceUnderFaults(t *testing.T) {
	peers := bootPeers(t, 3)
	q := hypergraph.LineQuery(3)
	rng := rand.New(rand.NewSource(7))
	inst, _ := workload.Uniform(q, 60, 8, rng)

	specs := map[string]mpc.FaultSpec{
		"drop-20pct":  {Seed: 99, DropProb: 0.20, MaxRetries: 10},
		"crash-early": {Seed: 5, CrashProb: 0.5, CrashRound: 2, MaxRetries: 10},
		"mixed":       {Seed: 31, DropProb: 0.15, CrashProb: 0.1, CrashRound: 3, MaxRetries: 12},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			base := core.Options{Servers: 8, Seed: 11}

			inOpts := base
			inOpts.Faults = mpc.NewFaultPlane(spec)
			resI, stI, err := core.Execute[int64](semiring.IntSumProd{}, q, inst, inOpts)
			if err != nil {
				t.Fatalf("inproc faulted execute: %v", err)
			}

			tcpOpts := base
			tcpOpts.Faults = mpc.NewFaultPlane(spec)
			tcpOpts.Transport = transport.TCP(peers...)
			resT, stT, err := core.Execute[int64](semiring.IntSumProd{}, q, inst, tcpOpts)
			if err != nil {
				t.Fatalf("tcp faulted execute: %v", err)
			}

			if stI != stT {
				t.Errorf("Stats diverge: inproc %+v, tcp %+v", stI, stT)
			}
			repI, repT := inOpts.Faults.Report(), tcpOpts.Faults.Report()
			if !reflect.DeepEqual(repI, repT) {
				t.Errorf("fault reports diverge:\ninproc %+v\ntcp    %+v", repI, repT)
			}
			if repI.Injected == 0 {
				t.Error("schedule injected nothing; the test is vacuous")
			}
			resI.SortRows()
			resT.SortRows()
			if !reflect.DeepEqual(resI.Rows, resT.Rows) {
				t.Errorf("rows diverge under faults")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
