package transport

// transport_test.go exercises the TCP backend end to end on loopback
// peers: handshake, round trips, fault directives (drop, crash), the
// ownership split, and the peer counters.

import (
	"context"
	"errors"
	"net"
	"testing"

	"mpcjoin/internal/mpc"
)

// bootCluster starts n loopback peers and a connected client; both are
// torn down with the test.
func bootCluster(t *testing.T, n int) *Client {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		p, err := ListenPeer("127.0.0.1:0")
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		addrs[i] = p.Addr()
	}
	c, err := DialCluster(context.Background(), addrs)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mkRound(seq int64, attempt, pSrc, pDst int, msgs []mpc.WireMsg) *mpc.WireRound {
	return &mpc.WireRound{Seq: seq, Attempt: attempt, PSrc: pSrc, PDst: pDst, Crash: -1, Drop: -1, Msgs: msgs}
}

func TestExchangeRoundDelivers(t *testing.T) {
	c := bootCluster(t, 3)
	msgs := []mpc.WireMsg{
		{From: 0, To: 1, Units: 2, Payload: []byte{1, 2, 3, 4}},
		{From: 0, To: 6, Units: 1, Payload: []byte{5, 6}},
		{From: 2, To: 1, Units: 3, Payload: []byte{7, 8, 9, 10, 11, 12}},
		{From: 3, To: 3, Units: 1, Payload: []byte{13, 14}},
	}
	in, err := c.ExchangeRound(context.Background(), mkRound(1, 0, 4, 8, msgs))
	if err != nil {
		t.Fatalf("ExchangeRound: %v", err)
	}
	if got := in.Recv[1]; got != 5 {
		t.Fatalf("Recv[1] = %d, want 5", got)
	}
	if got := in.Recv[6]; got != 1 {
		t.Fatalf("Recv[6] = %d, want 1", got)
	}
	segs := in.Segs[1]
	if len(segs) != 2 || segs[0].From != 0 || segs[1].From != 2 {
		t.Fatalf("Segs[1] = %+v, want sources 0 then 2", segs)
	}
	if string(segs[0].Payload) != "\x01\x02\x03\x04" || string(segs[1].Payload) != "\x07\x08\x09\x0a\x0b\x0c" {
		t.Fatalf("Segs[1] payloads corrupted: %+v", segs)
	}
	if in.Lost != 0 {
		t.Fatalf("Lost = %d, want 0", in.Lost)
	}
}

func TestExchangeRoundDropIsPhysical(t *testing.T) {
	c := bootCluster(t, 2)
	msgs := []mpc.WireMsg{
		{From: 0, To: 0, Units: 1, Payload: []byte{1}},
		{From: 0, To: 3, Units: 2, Payload: []byte{2, 3}},
		{From: 1, To: 3, Units: 1, Payload: []byte{4}},
	}
	r := mkRound(1, 0, 2, 4, msgs)
	r.Drop = 1 // drop 0→3
	in, err := c.ExchangeRound(context.Background(), r)
	if err != nil {
		t.Fatalf("ExchangeRound: %v", err)
	}
	if in.Recv[3] != 1 {
		t.Fatalf("Recv[3] = %d, want 1 (dropped message delivered?)", in.Recv[3])
	}
	if len(in.Segs[3]) != 1 || in.Segs[3][0].From != 1 {
		t.Fatalf("Segs[3] = %+v, want only source 1", in.Segs[3])
	}
	// Retry of the same round without the drop restores full delivery —
	// the barrier's recovery path.
	r2 := mkRound(1, 1, 2, 4, msgs)
	in2, err := c.ExchangeRound(context.Background(), r2)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if in2.Recv[3] != 3 {
		t.Fatalf("retry Recv[3] = %d, want 3", in2.Recv[3])
	}
}

func TestExchangeRoundCrashLosesInbox(t *testing.T) {
	c := bootCluster(t, 2)
	msgs := []mpc.WireMsg{
		{From: 0, To: 0, Units: 1, Payload: []byte{1}},
		{From: 0, To: 2, Units: 2, Payload: []byte{2, 3}},
		{From: 1, To: 2, Units: 4, Payload: []byte{4, 5, 6, 7}},
	}
	r := mkRound(5, 0, 2, 4, msgs)
	r.Crash = 2
	in, err := c.ExchangeRound(context.Background(), r)
	if err != nil {
		t.Fatalf("ExchangeRound: %v", err)
	}
	if in.Recv[2] != 0 || in.Segs[2] != nil {
		t.Fatalf("crashed destination kept its inbox: recv=%d segs=%v", in.Recv[2], in.Segs[2])
	}
	if in.Lost != 6 {
		t.Fatalf("Lost = %d, want 6 (the crashed destination's assembled units)", in.Lost)
	}
	if in.Recv[0] != 1 {
		t.Fatalf("Recv[0] = %d, want 1 (crash must not affect other destinations)", in.Recv[0])
	}
}

func TestOwnerSplitCoversAllDestinations(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for _, pDst := range []int{1, 2, 3, 7, 16, 33} {
			covered := 0
			for i := 0; i < n; i++ {
				lo, hi := ownerSplit(pDst, n, i)
				covered += hi - lo
				for d := lo; d < hi; d++ {
					if got := owner(pDst, n, d); got != i {
						t.Fatalf("owner(%d,%d,%d) = %d, want %d", pDst, n, d, got, i)
					}
				}
			}
			if covered != pDst {
				t.Fatalf("split of %d over %d covers %d", pDst, n, covered)
			}
		}
	}
}

func TestPeerStatsCount(t *testing.T) {
	c := bootCluster(t, 1)
	msgs := []mpc.WireMsg{
		{From: 0, To: 0, Units: 3, Payload: []byte{1, 2, 3}},
		{From: 1, To: 1, Units: 2, Payload: []byte{4, 5}},
	}
	if _, err := c.ExchangeRound(context.Background(), mkRound(1, 0, 2, 2, msgs)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExchangeRound(context.Background(), mkRound(1, 1, 2, 2, msgs)); err != nil {
		t.Fatal(err)
	}
	stats, err := c.PeerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := stats[0]
	if s.Rounds != 2 || s.Retries != 1 || s.Msgs != 4 || s.Units != 10 || s.Bytes != 10 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDialRejectsVersionSkew(t *testing.T) {
	// A fake peer that answers Hello with a wrong-version frame: the
	// handshake must fail with a frame error, not mis-parse.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, err := readFrame(conn); err != nil {
			return
		}
		// Hand-build a HelloAck with version 99.
		raw := []byte{0, 0, 0, 6, 'M', 'P', 'C', 'X', 99, kindHelloAck}
		conn.Write(raw)
	}()
	_, err = DialCluster(context.Background(), []string{ln.Addr().String()})
	if err == nil {
		t.Fatal("handshake accepted a version-skewed peer")
	}
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("err = %v, want ErrFrame", err)
	}
}

func TestCancelledContextAbortsRound(t *testing.T) {
	// A listener that accepts and never replies: the round must return
	// promptly with the context's error instead of hanging.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Complete the handshake, then go silent.
			go func() {
				if _, _, err := readFrame(conn); err != nil {
					return
				}
				writeFrame(conn, kindHelloAck, nil)
			}()
		}
	}()
	c, err := DialCluster(context.Background(), []string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.ExchangeRound(ctx, mkRound(1, 0, 1, 1, []mpc.WireMsg{{From: 0, To: 0, Units: 1, Payload: []byte{9}}}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
