// Package spmv implements distributed sparse matrix–vector multiplication
// over a semiring — SpMV when the vector is dense, SpMSpV when it is a
// sparse frontier — as an iterated workload surface on top of the mpc
// primitives, following the matmul engine's layouts: the matrix is
// hash-partitioned once by column (the vertex an entry consumes), the
// vector by the same hash, so every product y[i] ⊕= A[i,j] ⊗ x[j] forms
// locally on the server owning column j, is pre-aggregated by output index
// at the producing server (the paper's §1.5 ⊕-combine mechanism, which
// caps the fan-in any output row induces at p), and crosses the wire in a
// single metered exchange per multiply.
//
// Because every engine is generic over semiring.Semiring, one Mul yields
// the iterated graph-analytics family as driver loops (see Iterate and
// graphs.go): BFS under Bools, single-source shortest paths under MinPlus,
// PageRank under Floats — each iteration one exchange round plus a
// constant number of O(p)-load convergence rounds, with per-iteration
// Stats metering checked against the Table 1 matmul formula in the
// experiments harness.
//
// The package is a pure kernel layer: callers build the execution scope
// (workers, tracer, fault plane, transport) with core.Options.NewScope and
// pass its *mpc.Exec in; cancellation and fault-budget errors unwind
// through the mpc sentinel and are recovered at that root.
package spmv

import (
	"fmt"
	"math/bits"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// Entry is one element of a distributed vector: a vertex (or row/column)
// index and its semiring annotation.
type Entry[W any] struct {
	Idx relation.Value
	Val W
}

// Edge is one matrix entry in graph orientation: the multiply pushes
// annotation mass along Src → Dst, i.e. y[Dst] ⊕= W ⊗ x[Src]. In matrix
// terms Src is the column and Dst the row of the entry.
type Edge[W any] struct {
	Src, Dst relation.Value
	W        W
}

// Vector is a distributed sparse vector with canonical placement: entries
// live on the server their index hashes to (the engine's seeded hash) and
// every shard is sorted by index with unique indices. All vectors of one
// engine share its placement, so element-wise driver steps (frontier
// subtraction, relaxation merges, rank updates) are local. Construct
// vectors only through the engine (NewVector, Mul, FromVertices) — mixing
// engines with different seeds or server counts would silently misalign.
type Vector[W any] struct {
	part mpc.Part[Entry[W]]
}

// Len returns the number of entries (driver-side introspection, free in
// the model — the simulator's coordinator knows shard sizes).
func (v Vector[W]) Len() int64 {
	var n int64
	for _, s := range v.part.Shards {
		n += int64(len(s))
	}
	return n
}

// Entries gathers the vector to the driver, globally sorted by index.
func (v Vector[W]) Entries() []Entry[W] {
	out := mpc.Collect(v.part)
	mpc.SortLocal(out, func(e Entry[W]) int64 { return int64(e.Idx) })
	return out
}

// vertexInfo is the engine's per-vertex metadata, co-located with the
// vector entries of that vertex: its out-degree decides the dangling set
// PageRank redistributes, and the vertex list seeds dense vectors.
type vertexInfo struct {
	Idx    relation.Value
	OutDeg int64
}

// Engine is a matrix fixed for repeated multiplication: edges are
// hash-partitioned by Src once at construction (the build's one metered
// exchange) and locally sorted, so every subsequent Mul moves only vector
// data. The sweet spot is exactly the iterated workloads: the matrix
// placement cost is paid once, each iteration pays one exchange.
type Engine[W any] struct {
	sr   semiring.Semiring[W]
	p    int
	seed uint64

	edges    mpc.Part[Edge[W]]    // hash(Src)-owned, sorted by Src
	vertices mpc.Part[vertexInfo] // hash(Idx)-owned, sorted by Idx, unique

	n     int64 // |V|: distinct endpoints
	nnz   int64 // |E|: matrix entries after placement
	build mpc.Stats

	// iterTag labels this engine's trace rounds; Iterate stamps it with
	// the iteration index so traced runs expose per-iteration rounds.
	iterTag string
}

// NewEngine places the edge list on p servers under the given semiring and
// seed. Ownership of edges transfers to the engine (slices may be
// reordered). The build costs the returned engine's BuildStats(): one
// exchange placing the matrix by column hash and one building the vertex
// universe (out-degrees included, for dangling detection and dense
// initialization).
func NewEngine[W any](ex *mpc.Exec, sr semiring.Semiring[W], edges []Edge[W], p int, seed uint64) *Engine[W] {
	if p < 1 {
		panic(fmt.Sprintf("spmv: NewEngine: server count %d < 1", p))
	}
	e := &Engine[W]{sr: sr, p: p, seed: seed, iterTag: "spmv"}

	placed := mpc.DistributeOwnedIn(ex, edges, p)
	mpc.TraceOp(ex, "spmv.matrix")
	routed, st1 := mpc.Route(placed, func(_ int, ed Edge[W]) int { return e.home(ed.Src) })
	ex.ForEachShard(p, func(s int) {
		mpc.SortLocal(routed.Shards[s], func(ed Edge[W]) int64 { return int64(ed.Src) })
	})
	e.edges = routed
	e.nnz = int64(routed.Len())

	// Vertex universe: every endpoint, routed to its home, deduplicated,
	// annotated with its out-degree (edges with Src = v are already on
	// v's home server, so the degree count is local).
	cand := mpc.MapShards(routed, func(_ int, shard []Edge[W]) []relation.Value {
		out := make([]relation.Value, 0, 2*len(shard))
		for _, ed := range shard {
			out = append(out, ed.Src, ed.Dst)
		}
		return out
	})
	mpc.TraceOp(ex, "spmv.vertices")
	verts, st2 := mpc.Route(cand, func(_ int, v relation.Value) int { return e.home(v) })
	infos := mpc.NewPartIn[vertexInfo](ex, p)
	ex.ForEachShard(p, func(s int) {
		vs := verts.Shards[s]
		mpc.SortLocal(vs, func(v relation.Value) int64 { return int64(v) })
		es := e.edges.Shards[s]
		out := make([]vertexInfo, 0, len(vs))
		ei := 0
		for i := 0; i < len(vs); {
			v := vs[i]
			for i < len(vs) && vs[i] == v {
				i++
			}
			for ei < len(es) && es[ei].Src < v {
				ei++
			}
			deg := int64(0)
			for ei+int(deg) < len(es) && es[ei+int(deg)].Src == v {
				deg++
			}
			out = append(out, vertexInfo{Idx: v, OutDeg: deg})
		}
		infos.Shards[s] = out
	})
	e.vertices = infos
	for _, s := range infos.Shards {
		e.n += int64(len(s))
	}
	e.build = mpc.Seq(st1, st2)
	return e
}

// FromRows converts a binary relation into the engine's edge list:
// Vals[0] → Src, Vals[1] → Dst, the annotation mapped by ann. For a
// matrix relation M(I, J) whose entries multiply as y[I] = ⊕_J M[I,J] ⊗
// x[J], pass swap=true so J (the column, Vals[1]) becomes Src.
func FromRows[W, V any](rows []relation.Row[V], ann func(V) W, swap bool) []Edge[W] {
	out := make([]Edge[W], len(rows))
	for i, r := range rows {
		s, d := r.Vals[0], r.Vals[1]
		if swap {
			s, d = d, s
		}
		out[i] = Edge[W]{Src: s, Dst: d, W: ann(r.W)}
	}
	return out
}

// P returns the server count, N the vertex-universe size, NNZ the number
// of matrix entries, and BuildStats the placement cost.
func (e *Engine[W]) P() int                { return e.p }
func (e *Engine[W]) N() int64              { return e.n }
func (e *Engine[W]) NNZ() int64            { return e.nnz }
func (e *Engine[W]) BuildStats() mpc.Stats { return e.build }

// home is the engine's seeded hash placement (splitmix64 finalizer — the
// same family the fault plane and matmul partitioning use), mapping an
// index to the server owning it for both matrix columns and vector
// entries.
func (e *Engine[W]) home(v relation.Value) int {
	x := uint64(v) + e.seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(e.p))
}

// NewVector places entries into the engine's canonical vector layout: one
// metered exchange routing each entry to its home, then a local sort and
// ⊕-merge of duplicate indices.
func (e *Engine[W]) NewVector(entries []Entry[W]) (Vector[W], mpc.Stats) {
	ex := e.edges.Scope()
	placed := mpc.DistributeOwnedIn(ex, entries, e.p)
	mpc.TraceOp(ex, "spmv.vector")
	routed, st := mpc.Route(placed, func(_ int, en Entry[W]) int { return e.home(en.Idx) })
	ex.ForEachShard(e.p, func(s int) {
		routed.Shards[s] = combineEntries(e.sr, routed.Shards[s])
	})
	return Vector[W]{part: routed}, st
}

// FromVertices builds a dense vector over the engine's vertex universe:
// val(v) for every vertex v. Local (the vertex list is already placed);
// the result is aligned and sorted by construction.
func (e *Engine[W]) FromVertices(val func(v relation.Value) W) Vector[W] {
	ex := e.edges.Scope()
	out := mpc.NewPartIn[Entry[W]](ex, e.p)
	ex.ForEachShard(e.p, func(s int) {
		vs := e.vertices.Shards[s]
		shard := make([]Entry[W], len(vs))
		for i, vi := range vs {
			shard[i] = Entry[W]{Idx: vi.Idx, Val: val(vi.Idx)}
		}
		out.Shards[s] = shard
	})
	return Vector[W]{part: out}
}

// MulStat reports one multiply: the input size, the elementary products
// formed, the pre-aggregated partials actually exchanged, the output
// size, which local path ran, and the metered cost (one exchange round).
type MulStat struct {
	In       int64     `json:"in"`
	Products int64     `json:"products"`
	Partials int64     `json:"partials"`
	Out      int64     `json:"out"`
	Sparse   bool      `json:"sparse"`
	Stats    mpc.Stats `json:"stats"`
}

// Mul computes y = A ⊗ x: y[d] = ⊕ over edges (s → d) of w ⊗ x[s]. The
// vector must come from this engine. Local products pre-aggregate by
// output index before the exchange, so a high-in-degree vertex receives
// at most p partials (§1.5's ⊕-combine), and the single exchange's load
// is the multiply's whole metered cost.
//
// Two local product paths, chosen by the global input density: the dense
// path merge-walks the column-sorted edge shard against the sorted vector
// shard (O(nnz_s + |x_s|)); the frontier-sparse path binary-searches each
// vector entry's column run (O(|x_s| log nnz_s + touched edges)) so a
// small frontier never scans the whole matrix. The choice depends only on
// data sizes, never on workers or transport, preserving bit-identical
// runs.
func (e *Engine[W]) Mul(x Vector[W]) (Vector[W], MulStat) {
	ex := e.edges.Scope()
	ms := MulStat{In: x.Len()}
	// Sparse wins when scanning runs per frontier entry beats one full
	// merge pass: |x|·(log₂ nnz + 4) < nnz, the classic SpMSpV crossover.
	ms.Sparse = e.nnz > 0 && ms.In*int64(bits.Len64(uint64(e.nnz))+4) < e.nnz

	partials := mpc.NewPartIn[Entry[W]](ex, e.p)
	products := make([]int64, e.p)
	ex.ForEachShard(e.p, func(s int) {
		es := e.edges.Shards[s]
		xs := x.part.Shards[s]
		var buf []Entry[W]
		if ms.Sparse {
			for _, en := range xs {
				lo, hi := 0, len(es)
				for lo < hi {
					mid := int(uint(lo+hi) >> 1)
					if es[mid].Src < en.Idx {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				for ; lo < len(es) && es[lo].Src == en.Idx; lo++ {
					buf = append(buf, Entry[W]{Idx: es[lo].Dst, Val: e.sr.Mul(es[lo].W, en.Val)})
				}
			}
		} else {
			j := 0
			for i := 0; i < len(es); {
				src := es[i].Src
				for j < len(xs) && xs[j].Idx < src {
					j++
				}
				if j < len(xs) && xs[j].Idx == src {
					for ; i < len(es) && es[i].Src == src; i++ {
						buf = append(buf, Entry[W]{Idx: es[i].Dst, Val: e.sr.Mul(es[i].W, xs[j].Val)})
					}
				} else {
					for ; i < len(es) && es[i].Src == src; i++ {
					}
				}
			}
		}
		products[s] = int64(len(buf))
		partials.Shards[s] = combineEntries(e.sr, buf)
	})
	for s := 0; s < e.p; s++ {
		ms.Products += products[s]
		ms.Partials += int64(len(partials.Shards[s]))
	}

	mpc.TraceOp(ex, e.iterTag+".partials")
	routed, st := mpc.Route(partials, func(_ int, en Entry[W]) int { return e.home(en.Idx) })
	ex.ForEachShard(e.p, func(s int) {
		routed.Shards[s] = combineEntries(e.sr, routed.Shards[s])
	})
	y := Vector[W]{part: routed}
	ms.Out = y.Len()
	ms.Stats = st
	return y, ms
}

// combineEntries sorts a shard by index (stable radix) and ⊕-merges equal
// indices left to right — the deterministic combine order every worker
// count and transport reproduces bit-for-bit.
func combineEntries[W any](sr semiring.Semiring[W], shard []Entry[W]) []Entry[W] {
	if len(shard) == 0 {
		return shard
	}
	mpc.SortLocal(shard, func(e Entry[W]) int64 { return int64(e.Idx) })
	out := shard[:1]
	for _, en := range shard[1:] {
		if last := &out[len(out)-1]; last.Idx == en.Idx {
			last.Val = sr.Add(last.Val, en.Val)
		} else {
			out = append(out, en)
		}
	}
	return out
}

// globalSum gathers one int64 per server to a coordinator, sums, and
// broadcasts the total back — the O(p)-load convergence-round shape
// (TotalCount's pattern, generalized to driver-computed summaries).
func globalSum(ex *mpc.Exec, p int, vals []int64, op string) (int64, mpc.Stats) {
	pt := mpc.NewPartIn[int64](ex, p)
	for s := 0; s < p; s++ {
		pt.Shards[s] = []int64{vals[s]}
	}
	mpc.TraceOp(ex, op+".gather")
	gathered, st1 := mpc.Gather(pt, 0)
	var total int64
	for _, v := range gathered.Shards[0] {
		total += v
	}
	res := mpc.NewPartIn[int64](ex, p)
	res.Shards[0] = []int64{total}
	mpc.TraceOp(ex, op+".broadcast")
	_, st2 := mpc.Broadcast(res)
	return total, mpc.Seq(st1, st2)
}

// globalMaxFloat is globalSum's max-combine twin for L∞ deltas.
func globalMaxFloat(ex *mpc.Exec, p int, vals []float64, op string) (float64, mpc.Stats) {
	pt := mpc.NewPartIn[float64](ex, p)
	for s := 0; s < p; s++ {
		pt.Shards[s] = []float64{vals[s]}
	}
	mpc.TraceOp(ex, op+".gather")
	gathered, st1 := mpc.Gather(pt, 0)
	max := 0.0
	for _, v := range gathered.Shards[0] {
		if v > max {
			max = v
		}
	}
	res := mpc.NewPartIn[float64](ex, p)
	res.Shards[0] = []float64{max}
	mpc.TraceOp(ex, op+".broadcast")
	_, st2 := mpc.Broadcast(res)
	return max, mpc.Seq(st1, st2)
}
