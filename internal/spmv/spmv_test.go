package spmv_test

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"mpcjoin/internal/core"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/spmv"
	"mpcjoin/internal/transport"
)

// scope builds an execution scope for kernel tests.
func scope(t *testing.T, o core.Options) *mpc.Exec {
	t.Helper()
	ex, release, err := o.NewScope(context.Background())
	if err != nil {
		t.Fatalf("NewScope: %v", err)
	}
	t.Cleanup(release)
	return ex
}

// randomGraph draws a seeded directed multigraph with positive weights on
// vertex IDs spread over a sparse domain (so hash placement is exercised).
func randomGraph(seed int64, n, m int) []spmv.Edge[int64] {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]relation.Value, n)
	for i := range ids {
		ids[i] = relation.Value(rng.Int63n(1 << 30))
	}
	edges := make([]spmv.Edge[int64], m)
	for i := range edges {
		edges[i] = spmv.Edge[int64]{
			Src: ids[rng.Intn(n)],
			Dst: ids[rng.Intn(n)],
			W:   1 + rng.Int63n(100),
		}
	}
	return edges
}

// serialSpMV is the single-machine reference: y[d] = ⊕ w ⊗ x[s].
func serialSpMV[W any](sr semiring.Semiring[W], edges []spmv.Edge[W], x map[relation.Value]W) map[relation.Value]W {
	y := map[relation.Value]W{}
	for _, e := range edges {
		xv, ok := x[e.Src]
		if !ok {
			continue
		}
		prod := sr.Mul(e.W, xv)
		if old, ok := y[e.Dst]; ok {
			y[e.Dst] = sr.Add(old, prod)
		} else {
			y[e.Dst] = prod
		}
	}
	return y
}

func TestMulMatchesSerialReference(t *testing.T) {
	for _, p := range []int{1, 3, 8, 16} {
		for _, density := range []string{"dense", "sparse"} {
			t.Run(fmt.Sprintf("p=%d/%s", p, density), func(t *testing.T) {
				edges := randomGraph(42, 300, 2000)
				ex := scope(t, core.Options{Workers: 4})
				e := spmv.NewEngine[int64](ex, semiring.IntSumProd{}, append([]spmv.Edge[int64](nil), edges...), p, 7)

				rng := rand.New(rand.NewSource(9))
				want := map[relation.Value]int64{}
				var in []spmv.Entry[int64]
				nx := 250 // dense relative to nnz
				if density == "sparse" {
					nx = 5 // frontier-sized: forces the gather path
				}
				for i := 0; i < nx; i++ {
					v := edges[rng.Intn(len(edges))].Src
					if _, dup := want[v]; dup {
						continue
					}
					w := 1 + rng.Int63n(50)
					want[v] = w
					in = append(in, spmv.Entry[int64]{Idx: v, Val: w})
				}

				x, _ := e.NewVector(in)
				y, ms := e.Mul(x)
				ref := serialSpMV[int64](semiring.IntSumProd{}, edges, want)

				got := map[relation.Value]int64{}
				for _, en := range y.Entries() {
					got[en.Idx] = en.Val
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("p=%d %s: Mul disagrees with serial reference (%d vs %d entries)", p, density, len(got), len(ref))
				}
				if ms.Out != int64(len(ref)) {
					t.Fatalf("MulStat.Out = %d, want %d", ms.Out, len(ref))
				}
				wantSparse := density == "sparse" && e.NNZ() > 0
				if ms.Sparse != wantSparse {
					t.Fatalf("MulStat.Sparse = %v for %s input", ms.Sparse, density)
				}
			})
		}
	}
}

// serialBFS is the reference level assignment.
func serialBFS(edges []spmv.Edge[bool], src relation.Value) map[relation.Value]int64 {
	adj := map[relation.Value][]relation.Value{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	lev := map[relation.Value]int64{src: 0}
	frontier := []relation.Value{src}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []relation.Value
		for _, v := range frontier {
			for _, w := range adj[v] {
				if _, ok := lev[w]; !ok {
					lev[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return lev
}

func TestBFSMatchesSerial(t *testing.T) {
	wedges := randomGraph(7, 200, 900)
	edges := make([]spmv.Edge[bool], len(wedges))
	for i, e := range wedges {
		edges[i] = spmv.Edge[bool]{Src: e.Src, Dst: e.Dst, W: true}
	}
	src := edges[0].Src
	want := serialBFS(edges, src)

	for _, p := range []int{1, 4, 16} {
		ex := scope(t, core.Options{Workers: 4})
		res := spmv.BFS(ex, append([]spmv.Edge[bool](nil), edges...), p, 3, src, 0)
		if !res.Converged {
			t.Fatalf("p=%d: BFS did not converge", p)
		}
		got := map[relation.Value]int64{}
		for _, en := range res.Rows {
			got[en.Idx] = en.Val
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("p=%d: BFS levels disagree with serial reference", p)
		}
	}
}

// dijkstra is the serial SSSP reference.
func dijkstra(edges []spmv.Edge[int64], src relation.Value) map[relation.Value]int64 {
	type arc struct {
		to relation.Value
		w  int64
	}
	adj := map[relation.Value][]arc{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], arc{e.Dst, e.W})
	}
	dist := map[relation.Value]int64{src: 0}
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if d, ok := dist[it.v]; ok && it.d > d {
			continue
		}
		for _, a := range adj[it.v] {
			nd := it.d + a.w
			if d, ok := dist[a.to]; !ok || nd < d {
				dist[a.to] = nd
				heap.Push(pq, distItem{a.to, nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v relation.Value
	d int64
}
type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		edges := randomGraph(seed, 150, 700)
		src := edges[0].Src
		want := dijkstra(edges, src)

		for _, p := range []int{1, 4, 16} {
			ex := scope(t, core.Options{Workers: 4})
			res := spmv.SSSP(ex, append([]spmv.Edge[int64](nil), edges...), p, uint64(seed), src, 0)
			if !res.Converged {
				t.Fatalf("seed=%d p=%d: SSSP did not converge", seed, p)
			}
			got := map[relation.Value]int64{}
			for _, en := range res.Rows {
				got[en.Idx] = en.Val
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed=%d p=%d: SSSP distances disagree with Dijkstra", seed, p)
			}
		}
	}
}

func TestPageRankConvergesAndSumsToOne(t *testing.T) {
	edges := randomGraph(11, 120, 600)
	ex := scope(t, core.Options{Workers: 4})
	res := spmv.PageRank(ex, edges, 8, 5, 0.85, 1e-10, 0)
	if !res.Converged {
		t.Fatalf("PageRank did not converge in %d iterations", len(res.Iters))
	}
	var sum float64
	for _, r := range res.Ranks {
		if r.Val <= 0 {
			t.Fatalf("vertex %d has non-positive rank %v", r.Idx, r.Val)
		}
		sum += r.Val
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
	if int64(len(res.Ranks)) != res.N {
		t.Fatalf("got %d ranks over %d vertices", len(res.Ranks), res.N)
	}
	// Damped PageRank contracts: every iteration's residual shrinks, so
	// the recorded iteration count is the convergence rate fingerprint.
	if len(res.Iters) < 2 || len(res.Iters) > spmv.DefaultMaxIters {
		t.Fatalf("suspicious iteration count %d", len(res.Iters))
	}
}

// runTrial runs BFS and SSSP under one scope configuration and returns
// the full observable outcome (rows + per-iteration metering).
type trial struct {
	BFSRows, SSSPRows   []spmv.Entry[int64]
	BFSIters, SSSPIters []spmv.IterStat
	BFSStats, SSSPStats mpc.Stats
}

func runTrial(t *testing.T, o core.Options, edges []spmv.Edge[int64], src relation.Value) trial {
	t.Helper()
	bedges := make([]spmv.Edge[bool], len(edges))
	for i, e := range edges {
		bedges[i] = spmv.Edge[bool]{Src: e.Src, Dst: e.Dst, W: true}
	}
	exb := scope(t, o)
	b := spmv.BFS(exb, bedges, 6, 17, src, 0)
	exs := scope(t, o)
	s := spmv.SSSP(exs, append([]spmv.Edge[int64](nil), edges...), 6, 17, src, 0)
	if !b.Converged || !s.Converged {
		t.Fatalf("trial did not converge (bfs=%v sssp=%v)", b.Converged, s.Converged)
	}
	return trial{
		BFSRows: b.Rows, SSSPRows: s.Rows,
		BFSIters: b.Iters, SSSPIters: s.Iters,
		BFSStats: b.Stats, SSSPStats: s.Stats,
	}
}

// TestDriverLoopDeterminism pins the satellite-4 guarantee: BFS and SSSP
// results and per-iteration Stats are bit-identical across worker counts,
// exchange transports, and traced vs untraced execution.
func TestDriverLoopDeterminism(t *testing.T) {
	edges := randomGraph(23, 250, 1200)
	src := edges[0].Src

	base := runTrial(t, core.Options{Workers: 1}, edges, src)

	check := func(name string, got trial) {
		t.Helper()
		if !reflect.DeepEqual(got.BFSRows, base.BFSRows) || !reflect.DeepEqual(got.SSSPRows, base.SSSPRows) {
			t.Fatalf("%s: rows differ from workers=1 inproc baseline", name)
		}
		if !reflect.DeepEqual(got.BFSIters, base.BFSIters) || !reflect.DeepEqual(got.SSSPIters, base.SSSPIters) {
			t.Fatalf("%s: per-iteration Stats differ from baseline", name)
		}
		if got.BFSStats != base.BFSStats || got.SSSPStats != base.SSSPStats {
			t.Fatalf("%s: total Stats differ from baseline", name)
		}
	}

	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		check(fmt.Sprintf("workers=%d", w), runTrial(t, core.Options{Workers: w}, edges, src))
	}

	// Traced runs must meter identically (tracing is observation only).
	check("traced", runTrial(t, core.Options{Workers: 4, Tracer: mpc.NewTracer()}, edges, src))

	// TCP transport: every exchange through a loopback shuffle cluster.
	var addrs []string
	for i := 0; i < 3; i++ {
		peer, err := transport.ListenPeer("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenPeer: %v", err)
		}
		defer peer.Close()
		addrs = append(addrs, peer.Addr())
	}
	check("tcp", runTrial(t, core.Options{Workers: 4, Transport: transport.TCP(addrs...)}, edges, src))
}

// TestIterateTraceHasPerIterationRounds asserts traced executions label
// each iteration's exchange, so round timelines expose the loop structure.
func TestIterateTraceHasPerIterationRounds(t *testing.T) {
	edges := randomGraph(5, 100, 400)
	bedges := make([]spmv.Edge[bool], len(edges))
	for i, e := range edges {
		bedges[i] = spmv.Edge[bool]{Src: e.Src, Dst: e.Dst, W: true}
	}
	tr := mpc.NewTracer()
	ex := scope(t, core.Options{Workers: 2, Tracer: tr})
	res := spmv.BFS(ex, bedges, 4, 1, edges[0].Src, 0)
	ops := map[string]bool{}
	for _, r := range tr.Rounds() {
		ops[r.Op] = true
	}
	for k := 0; k < len(res.Iters); k++ {
		if !ops[fmt.Sprintf("iter%d.partials", k)] {
			t.Fatalf("trace missing iter%d.partials round (ops: %v)", k, ops)
		}
	}
	if !ops["spmv.matrix"] || !ops["spmv.vertices"] || !ops["spmv.vector"] {
		t.Fatalf("trace missing engine build rounds (ops: %v)", ops)
	}
}

// TestIterateBudgetExhaustion pins the round-budget contract: hitting
// MaxIters reports Converged=false with exactly MaxIters iterations, no
// error, no panic.
func TestIterateBudgetExhaustion(t *testing.T) {
	edges := randomGraph(31, 200, 900)
	src := edges[0].Src
	ex := scope(t, core.Options{Workers: 2})
	full := spmv.SSSP(ex, append([]spmv.Edge[int64](nil), edges...), 4, 2, src, 0)
	if len(full.Iters) < 3 {
		t.Skipf("graph converged in %d iterations; budget test needs >= 3", len(full.Iters))
	}
	ex2 := scope(t, core.Options{Workers: 2})
	cut := spmv.SSSP(ex2, append([]spmv.Edge[int64](nil), edges...), 4, 2, src, 2)
	if cut.Converged {
		t.Fatal("truncated run reports Converged=true")
	}
	if len(cut.Iters) != 2 {
		t.Fatalf("truncated run recorded %d iterations, want 2", len(cut.Iters))
	}
}

// TestPerIterationLoadBound checks each iteration's metered MaxLoad
// against the linear-regime Table 1 matmul formula specialized to SpMV:
// O((nnz + |x|)/p + out/p + p) — the experiments harness applies the same
// bound at benchmark scale.
func TestPerIterationLoadBound(t *testing.T) {
	const slack = 8
	edges := randomGraph(71, 400, 4000)
	src := edges[0].Src
	for _, p := range []int{4, 16} {
		ex := scope(t, core.Options{Workers: 4})
		res := spmv.SSSP(ex, append([]spmv.Edge[int64](nil), edges...), p, 9, src, 0)
		for _, it := range res.Iters {
			bound := (res.NNZ+it.In)/int64(p) + it.Out/int64(p) + int64(p)
			if int64(it.Stats.MaxLoad) > slack*bound {
				t.Fatalf("p=%d iter %d: MaxLoad %d exceeds %d× bound %d",
					p, it.Iter, it.Stats.MaxLoad, slack, bound)
			}
		}
	}
}

// TestCancellation pins the scope contract: a cancelled context unwinds
// through mpc.Recover as an error, never a hang or partial result.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex, release, err := core.Options{Workers: 2}.NewScope(ctx)
	if err != nil {
		t.Fatalf("NewScope: %v", err)
	}
	defer release()
	err = func() (err error) {
		defer mpc.Recover(&err)
		edges := randomGraph(3, 50, 200)
		spmv.SSSP(ex, edges, 4, 1, edges[0].Src, 0)
		return nil
	}()
	if err == nil {
		t.Fatal("cancelled execution returned no error")
	}
}
