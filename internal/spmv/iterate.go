package spmv

import (
	"fmt"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/semiring"
)

// Converge selects how Iterate decides the loop is done. Every mode costs
// a constant number of O(p)-load rounds per iteration (a driver-summary
// gather plus a broadcast), metered into that iteration's Stats.
type Converge int

const (
	// ConvergeEmpty stops when the state vector has no entries — the
	// drained-frontier fixpoint of BFS/SSSP-style loops, where the state
	// is the set of vertices still propagating.
	ConvergeEmpty Converge = iota
	// ConvergeFixpoint stops when an iteration leaves the state
	// bit-identical — the fixpoint reached under an idempotent ⊕. The
	// comparison is shard-local (states share the engine's alignment) and
	// only the per-server difference counts cross the wire.
	ConvergeFixpoint
	// ConvergeDelta stops when the L∞ distance between successive states
	// drops to Tol — the float-carrier criterion (PageRank residuals),
	// where exact fixpoints never land.
	ConvergeDelta
)

// DefaultMaxIters caps the driver loop when the caller gives no budget:
// iterated analytics on real graphs converge in tens of rounds, so an
// unconverged run at this budget signals a diverging driver, not a large
// diameter.
const DefaultMaxIters = 256

// IterOptions configures Iterate.
type IterOptions[W any] struct {
	// MaxIters is the round budget; <= 0 selects DefaultMaxIters.
	// Exhausting the budget is not an error — the result reports
	// Converged=false and the state reached.
	MaxIters int
	// Mode selects the convergence criterion.
	Mode Converge
	// Equal compares annotations for ConvergeFixpoint. nil falls back to
	// the semiring's Eq implementation; Iterate panics if neither exists
	// (a fixpoint check without equality is undecidable, not default-able).
	Equal func(a, b W) bool
	// Delta measures the ConvergeDelta distance between an old and new
	// annotation (absent entries compare against the semiring zero).
	Delta func(a, b W) float64
	// Tol is the ConvergeDelta threshold (converged when max delta <= Tol).
	Tol float64
	// Step transforms the multiply's output into the next state — the
	// per-iteration driver logic (frontier subtraction, distance
	// relaxation, rank update). It runs after y = A ⊗ x and receives both
	// the current state x and the product y; nil passes y through. Any
	// communication the step performs must be returned in its Stats.
	Step func(iter int, x, y Vector[W]) (Vector[W], mpc.Stats)
}

// IterStat meters one iteration of the driver loop: the state size going
// in, the elementary products the multiply formed, the state size coming
// out, which local multiply path ran, and the round/load cost — the
// per-iteration figures the experiments harness checks against the
// Table 1 matmul formula.
type IterStat struct {
	Iter     int       `json:"iter"`
	In       int64     `json:"in"`
	Products int64     `json:"products"`
	Out      int64     `json:"out"`
	Sparse   bool      `json:"sparse"`
	Stats    mpc.Stats `json:"stats"`
}

// IterResult is the driver loop's outcome: the final state, the
// per-iteration metering, the loop's total cost (Seq over iterations),
// and whether the convergence criterion fired within the budget.
type IterResult[W any] struct {
	X         Vector[W]
	Iters     []IterStat
	Stats     mpc.Stats
	Converged bool
}

// Iterate runs the multi-round driver loop x ← step(A ⊗ x) until the
// convergence criterion fires or the budget runs out. Each iteration is
// one Mul exchange, the step's own rounds, and a constant-round
// convergence check; all of it lands in that iteration's IterStat and in
// the sequential total. Traced executions see each iteration's rounds
// labeled iterK.partials / iterK.converge.*.
func Iterate[W any](e *Engine[W], x Vector[W], opts IterOptions[W]) IterResult[W] {
	max := opts.MaxIters
	if max <= 0 {
		max = DefaultMaxIters
	}
	eq := opts.Equal
	if eq == nil {
		if cmp, ok := e.sr.(semiring.Eq[W]); ok {
			eq = cmp.Equal
		} else if opts.Mode == ConvergeFixpoint {
			panic(fmt.Sprintf("spmv: Iterate: ConvergeFixpoint needs Equal (semiring %T implements no Eq)", e.sr))
		}
	}
	if opts.Mode == ConvergeDelta && opts.Delta == nil {
		panic("spmv: Iterate: ConvergeDelta needs a Delta distance")
	}

	res := IterResult[W]{X: x}
	defer func() { e.iterTag = "spmv" }()
	for k := 0; k < max; k++ {
		e.iterTag = fmt.Sprintf("iter%d", k)
		y, ms := e.Mul(res.X)
		st := ms.Stats
		next := y
		if opts.Step != nil {
			var sst mpc.Stats
			next, sst = opts.Step(k, res.X, y)
			st = mpc.Seq(st, sst)
		}

		converged := false
		switch opts.Mode {
		case ConvergeEmpty:
			n, cst := mpc.TotalCount(next.part)
			st = mpc.Seq(st, cst)
			converged = n == 0
		case ConvergeFixpoint:
			diffs := shardDiffs(e, res.X, next, eq)
			total, cst := globalSum(e.edges.Scope(), e.p, diffs, e.iterTag+".converge")
			st = mpc.Seq(st, cst)
			converged = total == 0
		case ConvergeDelta:
			deltas := shardDeltas(e, res.X, next, opts.Delta)
			worst, cst := globalMaxFloat(e.edges.Scope(), e.p, deltas, e.iterTag+".converge")
			st = mpc.Seq(st, cst)
			converged = worst <= opts.Tol
		}

		res.Iters = append(res.Iters, IterStat{
			Iter: k, In: ms.In, Products: ms.Products, Out: next.Len(),
			Sparse: ms.Sparse, Stats: st,
		})
		res.Stats = mpc.Seq(res.Stats, st)
		res.X = next
		if converged {
			res.Converged = true
			break
		}
	}
	return res
}

// shardDiffs counts, per server, entries where old and new state disagree
// — an index present on one side only, or present on both with unequal
// annotations. Local: both states carry the engine's alignment.
func shardDiffs[W any](e *Engine[W], old, new Vector[W], eq func(a, b W) bool) []int64 {
	diffs := make([]int64, e.p)
	e.edges.Scope().ForEachShard(e.p, func(s int) {
		a, b := old.part.Shards[s], new.part.Shards[s]
		var d int64
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i].Idx < b[j].Idx:
				d++
				i++
			case a[i].Idx > b[j].Idx:
				d++
				j++
			default:
				if !eq(a[i].Val, b[j].Val) {
					d++
				}
				i++
				j++
			}
		}
		d += int64(len(a) - i + len(b) - j)
		diffs[s] = d
	})
	return diffs
}

// shardDeltas computes, per server, the max distance between aligned old
// and new entries, measuring one-sided entries against the semiring zero.
func shardDeltas[W any](e *Engine[W], old, new Vector[W], delta func(a, b W) float64) []float64 {
	zero := e.sr.Zero()
	deltas := make([]float64, e.p)
	e.edges.Scope().ForEachShard(e.p, func(s int) {
		a, b := old.part.Shards[s], new.part.Shards[s]
		worst := 0.0
		bump := func(d float64) {
			if d > worst {
				worst = d
			}
		}
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i].Idx < b[j].Idx:
				bump(delta(a[i].Val, zero))
				i++
			case a[i].Idx > b[j].Idx:
				bump(delta(zero, b[j].Val))
				j++
			default:
				bump(delta(a[i].Val, b[j].Val))
				i++
				j++
			}
		}
		for ; i < len(a); i++ {
			bump(delta(a[i].Val, zero))
		}
		for ; j < len(b); j++ {
			bump(delta(zero, b[j].Val))
		}
		deltas[s] = worst
	})
	return deltas
}
