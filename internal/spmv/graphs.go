package spmv

import (
	"fmt"
	"math"

	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// GraphResult is the outcome of an int64-valued iterated traversal (BFS
// levels, SSSP distances): one entry per reached vertex, globally sorted
// by vertex, plus the per-iteration metering and the split costs — Build
// for placing the graph, Stats for the driver loop (vector setup,
// multiplies, steps, convergence checks).
type GraphResult struct {
	Rows      []Entry[int64]
	Iters     []IterStat
	Build     mpc.Stats
	Stats     mpc.Stats
	Converged bool
	N         int64 // vertex-universe size
	NNZ       int64 // edge count after placement
}

// BFS computes hop distances from src over the edge list: level 0 at the
// source, level k for vertices first reached by the k-th frontier
// expansion. The driver is the Bools SpMSpV loop — each iteration one
// frontier multiply (sparse path while the frontier is small), a local
// subtraction of already-visited vertices, and a drained-frontier check.
// Unreachable vertices are absent from the result.
func BFS(ex *mpc.Exec, edges []Edge[bool], p int, seed uint64, src relation.Value, maxIters int) *GraphResult {
	e := NewEngine[bool](ex, semiring.BoolOrAnd{}, edges, p, seed)

	// levels[s] is server s's visited set with hop counts, kept sorted by
	// vertex; seeded with the source at level 0 on its home server.
	levels := make([][]Entry[int64], p)
	levels[e.home(src)] = []Entry[int64]{{Idx: src, Val: 0}}

	x0, vst := e.NewVector([]Entry[bool]{{Idx: src, Val: true}})
	step := func(iter int, _, y Vector[bool]) (Vector[bool], mpc.Stats) {
		next := mpc.NewPartIn[Entry[bool]](ex, p)
		ex.ForEachShard(p, func(s int) {
			seen := levels[s]
			var fresh []Entry[bool]
			j := 0
			for _, en := range y.part.Shards[s] {
				for j < len(seen) && seen[j].Idx < en.Idx {
					j++
				}
				if j < len(seen) && seen[j].Idx == en.Idx {
					continue // already visited at an earlier level
				}
				fresh = append(fresh, en)
			}
			if len(fresh) > 0 {
				merged := make([]Entry[int64], 0, len(seen)+len(fresh))
				i, j := 0, 0
				for i < len(seen) || j < len(fresh) {
					if j == len(fresh) || (i < len(seen) && seen[i].Idx < fresh[j].Idx) {
						merged = append(merged, seen[i])
						i++
					} else {
						merged = append(merged, Entry[int64]{Idx: fresh[j].Idx, Val: int64(iter) + 1})
						j++
					}
				}
				levels[s] = merged
			}
			next.Shards[s] = fresh
		})
		return Vector[bool]{part: next}, mpc.Stats{}
	}

	it := Iterate(e, x0, IterOptions[bool]{MaxIters: maxIters, Mode: ConvergeEmpty, Step: step})
	return traversalResult(e, levels, vst, it.Iters, it.Stats, it.Converged)
}

// SSSP computes single-source shortest-path distances under MinPlus by
// frontier relaxation (distributed Bellman-Ford): each iteration relaxes
// the neighbors of last round's improved vertices and the new frontier is
// exactly the set whose tentative distance dropped. Nonnegative weights
// converge within the hop-diameter; maxIters <= 0 defaults to |V|+1, the
// Bellman-Ford guarantee. Weights must be finite tropical values in
// [0, MinPlus.Inf()).
func SSSP(ex *mpc.Exec, edges []Edge[int64], p int, seed uint64, src relation.Value, maxIters int) *GraphResult {
	sr := semiring.MinPlus{}
	e := NewEngine[int64](ex, sr, edges, p, seed)
	if maxIters <= 0 {
		maxIters = int(e.n) + 1
	}

	dist := make([][]Entry[int64], p)
	dist[e.home(src)] = []Entry[int64]{{Idx: src, Val: 0}}

	x0, vst := e.NewVector([]Entry[int64]{{Idx: src, Val: 0}})
	step := func(_ int, _, y Vector[int64]) (Vector[int64], mpc.Stats) {
		next := mpc.NewPartIn[Entry[int64]](ex, p)
		ex.ForEachShard(p, func(s int) {
			cur := dist[s]
			var improved []Entry[int64]
			j := 0
			for _, en := range y.part.Shards[s] {
				for j < len(cur) && cur[j].Idx < en.Idx {
					j++
				}
				if j < len(cur) && cur[j].Idx == en.Idx {
					if en.Val < cur[j].Val {
						cur[j].Val = en.Val
						improved = append(improved, en)
					}
					continue
				}
				improved = append(improved, en)
			}
			if len(improved) > 0 {
				// Insert the newly reached vertices (improved entries not
				// already in cur were appended above without insertion).
				merged := make([]Entry[int64], 0, len(cur)+len(improved))
				i, j := 0, 0
				for i < len(cur) || j < len(improved) {
					switch {
					case j == len(improved) || (i < len(cur) && cur[i].Idx < improved[j].Idx):
						merged = append(merged, cur[i])
						i++
					case i < len(cur) && cur[i].Idx == improved[j].Idx:
						merged = append(merged, cur[i]) // already updated in place
						i++
						j++
					default:
						merged = append(merged, improved[j])
						j++
					}
				}
				dist[s] = merged
			}
			next.Shards[s] = improved
		})
		return Vector[int64]{part: next}, mpc.Stats{}
	}

	it := Iterate(e, x0, IterOptions[int64]{MaxIters: maxIters, Mode: ConvergeEmpty, Step: step})
	return traversalResult(e, dist, vst, it.Iters, it.Stats, it.Converged)
}

func traversalResult[W any](e *Engine[W], state [][]Entry[int64], setup mpc.Stats, iters []IterStat, loop mpc.Stats, conv bool) *GraphResult {
	var rows []Entry[int64]
	for _, s := range state {
		rows = append(rows, s...)
	}
	mpc.SortLocal(rows, func(en Entry[int64]) int64 { return int64(en.Idx) })
	return &GraphResult{
		Rows: rows, Iters: iters,
		Build: e.BuildStats(), Stats: mpc.Seq(setup, loop),
		Converged: conv, N: e.n, NNZ: e.nnz,
	}
}

// PageRankResult is PageRank's outcome: one rank per vertex (summing to 1
// up to float error), sorted by vertex, plus the iterated metering.
type PageRankResult struct {
	Ranks     []Entry[float64]
	Iters     []IterStat
	Build     mpc.Stats
	Stats     mpc.Stats
	Converged bool
	N         int64
	NNZ       int64
}

// PageRank computes damped PageRank over the edge list (edge annotations
// are ignored; each vertex spreads its rank uniformly over its
// out-neighbors). Dangling mass is redistributed uniformly each
// iteration via one O(p) gather/broadcast of per-server dangling sums.
// The state is dense over the vertex universe, so every iteration runs
// the dense multiply path; convergence is the L∞ residual dropping to
// tol (<= 0 selects 1e-9), under a maxIters budget (<= 0 selects
// DefaultMaxIters).
func PageRank[W any](ex *mpc.Exec, edges []Edge[W], p int, seed uint64, damping, tol float64, maxIters int) *PageRankResult {
	if damping <= 0 || damping >= 1 {
		panic(fmt.Sprintf("spmv: PageRank: damping %v outside (0, 1)", damping))
	}
	if tol <= 0 {
		tol = 1e-9
	}
	norm := make([]Edge[float64], len(edges))
	for i, ed := range edges {
		norm[i] = Edge[float64]{Src: ed.Src, Dst: ed.Dst, W: 1}
	}
	e := NewEngine[float64](ex, semiring.FloatSumProd{}, norm, p, seed)
	if e.n == 0 {
		return &PageRankResult{Converged: true}
	}
	n := float64(e.n)

	// Column-normalize in place: edges are grouped by Src on Src's home
	// server, so each run's length is the out-degree. Local, zero rounds.
	ex.ForEachShard(p, func(s int) {
		es := e.edges.Shards[s]
		for i := 0; i < len(es); {
			j := i
			for j < len(es) && es[j].Src == es[i].Src {
				j++
			}
			w := 1 / float64(j-i)
			for ; i < j; i++ {
				es[i].W = w
			}
		}
	})

	r0 := e.FromVertices(func(relation.Value) float64 { return 1 / n })
	step := func(iter int, x, y Vector[float64]) (Vector[float64], mpc.Stats) {
		// Dangling mass: rank sitting on out-degree-0 vertices, summed
		// locally (vertex metadata and state share placement) and totaled
		// in one gather/broadcast pair.
		fs := make([]float64, p)
		ex.ForEachShard(p, func(s int) {
			var m float64
			xs := x.part.Shards[s]
			j := 0
			for _, vi := range e.vertices.Shards[s] {
				if vi.OutDeg != 0 {
					continue
				}
				for j < len(xs) && xs[j].Idx < vi.Idx {
					j++
				}
				if j < len(xs) && xs[j].Idx == vi.Idx {
					m += xs[j].Val
				}
			}
			fs[s] = m
		})
		mass, mst := globalSumFloat(ex, p, fs, fmt.Sprintf("iter%d.dangling", iter))

		next := mpc.NewPartIn[Entry[float64]](ex, p)
		base := (1 - damping) / n
		ex.ForEachShard(p, func(s int) {
			vs := e.vertices.Shards[s]
			ys := y.part.Shards[s]
			out := make([]Entry[float64], len(vs))
			j := 0
			for i, vi := range vs {
				for j < len(ys) && ys[j].Idx < vi.Idx {
					j++
				}
				in := 0.0
				if j < len(ys) && ys[j].Idx == vi.Idx {
					in = ys[j].Val
				}
				out[i] = Entry[float64]{Idx: vi.Idx, Val: base + damping*(in+mass/n)}
			}
			next.Shards[s] = out
		})
		return Vector[float64]{part: next}, mst
	}

	it := Iterate(e, r0, IterOptions[float64]{
		MaxIters: maxIters, Mode: ConvergeDelta, Tol: tol,
		Delta: func(a, b float64) float64 { return math.Abs(a - b) },
		Step:  step,
	})
	return &PageRankResult{
		Ranks: it.X.Entries(), Iters: it.Iters,
		Build: e.BuildStats(), Stats: it.Stats,
		Converged: it.Converged, N: e.n, NNZ: e.nnz,
	}
}

// globalSumFloat is globalSum over float64 payloads (dangling mass).
func globalSumFloat(ex *mpc.Exec, p int, vals []float64, op string) (float64, mpc.Stats) {
	pt := mpc.NewPartIn[float64](ex, p)
	for s := 0; s < p; s++ {
		pt.Shards[s] = []float64{vals[s]}
	}
	mpc.TraceOp(ex, op+".gather")
	gathered, st1 := mpc.Gather(pt, 0)
	var total float64
	for _, v := range gathered.Shards[0] {
		total += v
	}
	res := mpc.NewPartIn[float64](ex, p)
	res.Shards[0] = []float64{total}
	mpc.TraceOp(ex, op+".broadcast")
	_, st2 := mpc.Broadcast(res)
	return total, mpc.Seq(st1, st2)
}
