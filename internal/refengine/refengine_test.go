package refengine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

// randomInstance fills every edge of q with a random relation of n tuples
// over a domain of size dom.
func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(rng.Intn(dom))
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(4) + 1)})
		}
		inst[e.Name] = r
	}
	return inst
}

func TestBruteForceMatMulHandComputed(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A", "B")
	r1.Append(2, 1, 10) // a=1, b=10, weight 2
	r1.Append(3, 1, 11)
	r1.Append(5, 2, 10)
	r2 := relation.New[int64]("B", "C")
	r2.Append(7, 10, 100)
	r2.Append(11, 11, 100)
	r2.Append(13, 10, 101)
	inst["R1"], inst["R2"] = r1, r2

	got, err := BruteForce[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New[int64]("A", "C")
	want.Append(2*7+3*11, 1, 100) // via b=10 and b=11
	want.Append(2*13, 1, 101)
	want.Append(5*7, 2, 100)
	want.Append(5*13, 2, 101)
	if !relation.Equal[int64](intSR, intEq, got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestYannakakisEqualsBruteForceAcrossShapes(t *testing.T) {
	queries := []*hypergraph.Query{
		hypergraph.MatMulQuery(),
		hypergraph.LineQuery(3),
		hypergraph.LineQuery(4),
		hypergraph.StarQuery(3),
		hypergraph.StarQuery(4),
		hypergraph.Fig1StarLike(),
		hypergraph.Fig3Twig(),
		hypergraph.NewQuery([]hypergraph.Edge{
			hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
		}, "A", "B", "C"), // free-connex full join
		hypergraph.NewQuery([]hypergraph.Edge{
			hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"), hypergraph.Bin("R3", "C", "D"),
		}), // scalar aggregate
	}
	for qi, q := range queries {
		// Keep the per-edge growth factor n/dom ≈ 1 for queries with many
		// edges, or the brute-force full join blows up combinatorially.
		n, dom := 20, 4
		if len(q.Edges) > 5 {
			n, dom = 12, 12
		}
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(qi)))
			inst := randomInstance(rng, q, n, dom)
			bf, err := BruteForce[int64](intSR, q, inst)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			yk, err := Yannakakis[int64](intSR, q, inst)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			if !relation.Equal[int64](intSR, intEq, bf, yk) {
				t.Fatalf("query %d seed %d (%s): brute force %v != yannakakis %v",
					qi, seed, String(q), bf, yk)
			}
		}
	}
}

func TestYannakakisFig2TreeWithUnaryEdges(t *testing.T) {
	// The full Figure 2 tree contains a unary edge; the sequential engines
	// must handle it directly (no reduction required).
	q := hypergraph.Fig2Tree()
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// 26 edges: keep n ≤ dom so the full join stays laptop-sized.
		inst := randomInstance(rng, q, 8, 8)
		bf, err := BruteForce[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		yk, err := Yannakakis[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, bf, yk) {
			t.Fatalf("seed %d: mismatch on Fig2 tree", seed)
		}
	}
}

func TestRemoveDanglingExactness(t *testing.T) {
	// Property: after RemoveDangling, every remaining tuple participates in
	// at least one full join result, and the query answer is unchanged.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := hypergraph.LineQuery(3)
		inst := randomInstance(rng, q, 15, 5)
		red := RemoveDangling(q, inst)

		// Answers unchanged.
		a1, _ := BruteForce[int64](intSR, q, inst)
		a2, _ := BruteForce[int64](intSR, q, red)
		if !relation.Equal[int64](intSR, intEq, a1, a2) {
			return false
		}

		// Every surviving tuple joins: check via full join participation.
		full := inst[q.Edges[0].Name].Clone()
		for _, e := range q.Edges[1:] {
			full = relation.Join(intSR, full, inst[e.Name])
		}
		for _, e := range q.Edges {
			r := red[e.Name]
			for _, row := range r.Rows {
				// Project full join onto e's attrs and look for the tuple.
				found := false
				idx := make([]int, r.Arity())
				for i, a := range r.Schema() {
					idx[i] = full.Col(a)
				}
				for _, frow := range full.Rows {
					match := true
					for i := range idx {
						if frow.Vals[idx[i]] != row.Vals[i] {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDanglingEmptyResult(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A", "B")
	r1.Append(1, 1, 10)
	r2 := relation.New[int64]("B", "C")
	r2.Append(1, 99, 5) // no matching B
	inst["R1"], inst["R2"] = r1, r2
	red := RemoveDangling(q, inst)
	if red["R1"].Len() != 0 || red["R2"].Len() != 0 {
		t.Fatalf("dangling removal must empty both: %v %v", red["R1"], red["R2"])
	}
}

func TestIdempotentSemiringAgreement(t *testing.T) {
	// Under the Boolean semiring the engines must agree with set-semantics
	// join-project results.
	q := hypergraph.LineQuery(3)
	boolSR := semiring.BoolOrAnd{}
	rng := rand.New(rand.NewSource(5))
	inst := make(db.Instance[bool])
	for _, e := range q.Edges {
		r := relation.New[bool](e.Attrs...)
		for i := 0; i < 25; i++ {
			r.Append(true, relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
		}
		inst[e.Name] = r
	}
	bf, err := BruteForce[bool](boolSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	yk, err := Yannakakis[bool](boolSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[bool](boolSR, boolSR.Equal, bf, yk) {
		t.Fatal("boolean semiring mismatch")
	}
	for _, row := range bf.Rows {
		if !row.W {
			t.Fatal("join-project result annotated false")
		}
	}
}

func TestTropicalShortestPath(t *testing.T) {
	// MinPlus line query = shortest 3-hop path weight between endpoints.
	q := hypergraph.LineQuery(3)
	mp := semiring.MinPlus{}
	inst := make(db.Instance[int64])
	// A1 -> A2 edges.
	r1 := relation.New[int64]("A1", "A2")
	r1.Append(1, 0, 1)
	r1.Append(10, 0, 2)
	r2 := relation.New[int64]("A2", "A3")
	r2.Append(5, 1, 7)
	r2.Append(1, 2, 7)
	r3 := relation.New[int64]("A3", "A4")
	r3.Append(2, 7, 9)
	inst["R1"], inst["R2"], inst["R3"] = r1, r2, r3

	got, err := Yannakakis[int64](mp, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	// Paths 0→1→7→9 cost 8; 0→2→7→9 cost 13. Min = 8.
	want := relation.New[int64]("A1", "A4")
	want.Append(8, 0, 9)
	if !relation.Equal[int64](mp, mp.Equal, got, want) {
		t.Fatalf("tropical result %v, want %v", got, want)
	}
}

func TestCountOutputAndMaxIntermediate(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for a := 0; a < 4; a++ {
		r1.Append(1, relation.Value(a), 0)
	}
	for c := 0; c < 5; c++ {
		r2.Append(1, 0, relation.Value(c))
	}
	inst["R1"], inst["R2"] = r1, r2
	out, err := CountOutput[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if out != 20 {
		t.Fatalf("OUT = %d, want 20", out)
	}
	j, err := MaxIntermediateJoin[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if j != 20 {
		t.Fatalf("J = %d, want 20", j)
	}
}

func TestValidateErrors(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	if _, err := BruteForce[int64](intSR, q, inst); err == nil {
		t.Fatal("expected error on empty instance")
	}
	inst["R1"] = relation.New[int64]("A", "B")
	inst["R2"] = relation.New[int64]("B", "X") // wrong attr
	if _, err := BruteForce[int64](intSR, q, inst); err == nil {
		t.Fatal("expected error on schema mismatch")
	}
}
