// Package refengine computes join-aggregate queries sequentially and is
// the ground truth every MPC algorithm in this module is tested against.
//
// Two independent evaluators are provided: BruteForce materializes the full
// join Q(R) and aggregates it (exponential in the worst case; fine for test
// instances), and Yannakakis runs the classical 1981 algorithm adapted to
// join-aggregate queries (§1.2 of the paper) — dangling-tuple removal by a
// full semijoin reducer, then bottom-up join-and-aggregate. The two are
// cross-checked against each other in this package's own tests, so a bug
// would have to strike both identically to corrupt the ground truth.
package refengine

import (
	"fmt"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// BruteForce evaluates the query by joining all relations (in a
// connectivity-preserving order) and ⊕-projecting onto the outputs.
func BruteForce[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W]) (*relation.Relation[W], error) {
	if err := db.Validate(q, inst); err != nil {
		return nil, err
	}
	order := joinOrder(q)
	acc := inst[q.Edges[order[0]].Name].Clone()
	for _, i := range order[1:] {
		acc = relation.Join(sr, acc, inst[q.Edges[i].Name])
	}
	return relation.ProjectAgg(sr, acc, q.Output...), nil
}

// joinOrder returns edge indices such that each edge after the first
// shares an attribute with the union of the previous ones (possible for
// any connected query), avoiding accidental cross products.
func joinOrder(q *hypergraph.Query) []int {
	used := make([]bool, len(q.Edges))
	attrs := make(map[hypergraph.Attr]bool)
	order := []int{0}
	used[0] = true
	for _, a := range q.Edges[0].Attrs {
		attrs[a] = true
	}
	for len(order) < len(q.Edges) {
		found := false
		for i, e := range q.Edges {
			if used[i] {
				continue
			}
			touches := false
			for _, a := range e.Attrs {
				if attrs[a] {
					touches = true
					break
				}
			}
			if touches {
				used[i] = true
				order = append(order, i)
				for _, a := range e.Attrs {
					attrs[a] = true
				}
				found = true
				break
			}
		}
		if !found {
			panic("refengine: query graph is disconnected")
		}
	}
	return order
}

// RemoveDangling returns a copy of the instance with every tuple that
// cannot participate in a full join result removed, via the classical full
// reducer: semijoins leaf-to-root, then root-to-leaf.
func RemoveDangling[W any](q *hypergraph.Query, inst db.Instance[W]) db.Instance[W] {
	out := db.Clone(inst)
	order, parent := reducerOrder(q)
	// Leaf-to-root: semijoin each parent with its child.
	for i := len(order) - 1; i >= 1; i-- {
		e := order[i]
		out[q.Edges[parent[e]].Name] = relation.Semijoin(out[q.Edges[parent[e]].Name], out[q.Edges[e].Name])
	}
	// Root-to-leaf.
	for _, e := range order[1:] {
		out[q.Edges[e].Name] = relation.Semijoin(out[q.Edges[e].Name], out[q.Edges[parent[e]].Name])
	}
	return out
}

// reducerOrder is the query's rooted join tree (see hypergraph.JoinTree).
func reducerOrder(q *hypergraph.Query) (order []int, parent []int) {
	return q.JoinTree()
}

// Yannakakis evaluates the query with the classical sequential Yannakakis
// algorithm adapted to aggregations (§1.2): after dangling removal, it
// repeatedly folds a leaf relation into its parent, replacing the parent
// with π̂_{y ∪ anc} (R_leaf ⋈ R_parent), until one relation remains, then
// projects onto the outputs.
func Yannakakis[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W]) (*relation.Relation[W], error) {
	if err := db.Validate(q, inst); err != nil {
		return nil, err
	}
	reduced := RemoveDangling(q, inst)
	order, parent := reducerOrder(q)

	// Materialized relation per edge, folded bottom-up (reverse BFS).
	rels := make([]*relation.Relation[W], len(q.Edges))
	for i, e := range q.Edges {
		rels[i] = reduced[e.Name]
	}
	out := make(map[hypergraph.Attr]bool)
	for _, a := range q.Output {
		out[a] = true
	}

	for i := len(order) - 1; i >= 1; i-- {
		leaf := order[i]
		par := parent[leaf]
		joined := relation.Join(sr, rels[leaf], rels[par])
		// Keep output attributes plus every attribute that still occurs in
		// unmerged relations (the "ancestor" attributes) — dropping others
		// aggregates them away as early as possible.
		keep := keepAttrs(q, order[:i], joined.Schema(), out, par, rels)
		rels[par] = relation.ProjectAgg(sr, joined, keep...)
	}
	root := rels[order[0]]
	return relation.ProjectAgg(sr, root, q.Output...), nil
}

// keepAttrs returns joined-schema attributes that are outputs or appear in
// any still-unmerged relation.
func keepAttrs[W any](q *hypergraph.Query, remaining []int, schema []hypergraph.Attr, out map[hypergraph.Attr]bool, self int, rels []*relation.Relation[W]) []hypergraph.Attr {
	needed := make(map[hypergraph.Attr]bool)
	for _, i := range remaining {
		if i == self {
			continue
		}
		for _, a := range rels[i].Schema() {
			needed[a] = true
		}
	}
	var keep []hypergraph.Attr
	for _, a := range schema {
		if out[a] || needed[a] {
			keep = append(keep, a)
		}
	}
	return keep
}

// CountOutput evaluates OUT = |π_y Q(R)| exactly (by brute force), for test
// and workload calibration purposes.
func CountOutput[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W]) (int, error) {
	res, err := BruteForce(sr, q, inst)
	if err != nil {
		return 0, err
	}
	return res.Len(), nil
}

// MaxIntermediateJoin reports max_e,e' |R_e ⋈ R_e'| over the Yannakakis
// fold order after dangling removal — the quantity J that governs the
// distributed Yannakakis load (§1.4). Used by experiments to relate
// measured loads to the paper's bounds.
func MaxIntermediateJoin[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W]) (int, error) {
	if err := db.Validate(q, inst); err != nil {
		return 0, err
	}
	reduced := RemoveDangling(q, inst)
	order, parent := reducerOrder(q)
	rels := make([]*relation.Relation[W], len(q.Edges))
	for i, e := range q.Edges {
		rels[i] = reduced[e.Name]
	}
	out := make(map[hypergraph.Attr]bool)
	for _, a := range q.Output {
		out[a] = true
	}
	maxJ := 0
	for i := len(order) - 1; i >= 1; i-- {
		leaf := order[i]
		par := parent[leaf]
		joined := relation.Join(sr, rels[leaf], rels[par])
		if joined.Len() > maxJ {
			maxJ = joined.Len()
		}
		keep := keepAttrs(q, order[:i], joined.Schema(), out, par, rels)
		rels[par] = relation.ProjectAgg(sr, joined, keep...)
	}
	return maxJ, nil
}

// String renders a query for error messages.
func String(q *hypergraph.Query) string {
	return fmt.Sprintf("edges=%v output=%v", q.Edges, q.Output)
}
