package lowerbound

import (
	"testing"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/semiring"
)

var boolSR = semiring.BoolOrAnd{}

func TestThm2InstanceShape(t *testing.T) {
	inst, err := Thm2(100, 200, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Realized sizes within a small constant of the targets.
	if inst.N1 < 100 || inst.N1 > 600 || inst.N2 < 200 || inst.N2 > 1200 {
		t.Fatalf("sizes N1=%d N2=%d", inst.N1, inst.N2)
	}
	q := hypergraph.MatMulQuery()
	out, err := refengine.CountOutput[bool](boolSR, q, inst.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if int64(out) != inst.Out {
		t.Fatalf("OUT = %d, certified %d", out, inst.Out)
	}
	if out < 250 || out > 1000 {
		t.Fatalf("OUT = %d not Θ(500)", out)
	}
}

func TestThm2Rejections(t *testing.T) {
	if _, err := Thm2(1, 10, 10); err == nil {
		t.Fatal("n1 < 2 must fail")
	}
	if _, err := Thm2(10, 10, 5); err == nil {
		t.Fatal("OUT < max must fail")
	}
	if _, err := Thm2(10, 10, 1000); err == nil {
		t.Fatal("OUT > N1·N2 must fail")
	}
}

func TestThm3InstanceShape(t *testing.T) {
	inst, err := Thm3(1024, 1024, 16384)
	if err != nil {
		t.Fatal(err)
	}
	q := hypergraph.MatMulQuery()
	out, err := refengine.CountOutput[bool](boolSR, q, inst.Inst)
	if err != nil {
		t.Fatal(err)
	}
	if int64(out) != inst.Out {
		t.Fatalf("OUT = %d, certified %d", out, inst.Out)
	}
	ratio := float64(out) / 16384
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("OUT = %d not Θ(16384)", out)
	}
	if float64(inst.N1) < 512 || float64(inst.N1) > 2048 {
		t.Fatalf("N1 = %d not Θ(1024)", inst.N1)
	}
}

// TestOptimalityOnThm3 is the optimality audit: the Theorem 1 algorithm's
// measured load on the Theorem 3 hard instance must sit within a constant
// factor of the proved lower bound — evidence that both the algorithm and
// the bound are tight.
func TestOptimalityOnThm3(t *testing.T) {
	const p = 16
	for _, tc := range []struct{ n1, n2, out int64 }{
		{4096, 4096, 65536},   // output-sensitive regime
		{4096, 4096, 4194304}, // OUT = N²/4: worst-case regime
	} {
		inst, err := Thm3(tc.n1, tc.n2, tc.out)
		if err != nil {
			t.Fatal(err)
		}
		in := matmul.Input[bool]{
			R1: dist.FromRelation(inst.Inst["R1"], p),
			R2: dist.FromRelation(inst.Inst["R2"], p),
			B:  "B",
		}
		_, st, err := matmul.Compute[bool](boolSR, in, matmul.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		bound := Thm3Bound(inst.N1, inst.N2, inst.Out, p)
		ratio := float64(st.MaxLoad) / bound
		if ratio < 0.05 {
			t.Fatalf("load %d suspiciously below the lower bound %.0f — meter broken?", st.MaxLoad, bound)
		}
		if ratio > 60 {
			t.Fatalf("load %d is %.1f× the lower bound %.0f — not within constants", st.MaxLoad, ratio, bound)
		}
	}
}

func TestThm2AuditLinearLoad(t *testing.T) {
	const p = 8
	inst, err := Thm2(500, 1000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	in := matmul.Input[bool]{
		R1: dist.FromRelation(inst.Inst["R1"], p),
		R2: dist.FromRelation(inst.Inst["R2"], p),
		B:  "B",
	}
	_, st, err := matmul.Compute[bool](boolSR, in, matmul.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bound := Thm2Bound(inst.N1, inst.N2, p)
	ratio := float64(st.MaxLoad) / bound
	if ratio < 0.05 || ratio > 60 {
		t.Fatalf("load %d vs Thm2 bound %.0f (ratio %.2f) outside constants", st.MaxLoad, bound, ratio)
	}
}

func TestBoundsMonotone(t *testing.T) {
	if Thm3Bound(1000, 1000, 100000, 16) > Thm3Bound(1000, 1000, 1000000, 16) {
		t.Fatal("Thm3 bound must grow with OUT")
	}
	if Thm3Bound(1000, 1000, 1000*1000, 16) != Thm3Bound(1000, 1000, 1000*999, 16) {
		// At OUT = N², the min must be the worst-case branch.
		wc := Thm3Bound(1000, 1000, 1000*1000, 16)
		if wc > 250000 {
			t.Fatalf("worst-case branch wrong: %f", wc)
		}
	}
	if Thm2Bound(100, 100, 4) != 50 {
		t.Fatal("Thm2 bound arithmetic wrong")
	}
}
