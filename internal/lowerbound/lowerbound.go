// Package lowerbound constructs the hard instances of Theorems 2 and 3 of
// Hu–Yi PODS'20 and audits the matrix multiplication algorithm against the
// proved bounds. The theorems hold in the idempotent semiring MPC model,
// so the audits run under the Boolean semiring.
//
// Theorem 2: an instance with two B values shared by all of dom(C) forces
// any constant-round algorithm to move Ω((N1+N2)/p) units.
//
// Theorem 3: the complete bipartite instance dom(A) × dom(B) × dom(C) with
// |A| = √(N1·OUT/N2), |B| = √(N1·N2/OUT), |C| = √(N2·OUT/N1) forces load
// Ω(min{√(N1·N2/p), (N1·N2·OUT)^{1/3}/p^{2/3}}).
//
// Together with Theorem 1's matching upper bound, measuring our
// algorithm's load on these instances within a constant of the bound is
// the optimality evidence the experiments report.
package lowerbound

import (
	"fmt"
	"math"

	"mpcjoin/internal/db"
	"mpcjoin/internal/relation"
)

// Instance is a generated hard instance plus its certified parameters.
type Instance struct {
	Inst db.Instance[bool]
	// N1, N2 are the realized input sizes; Out the realized output size.
	N1, N2, Out int64
}

// Thm2 builds the Theorem 2 instance for target sizes n1, n2 ≥ 2 and
// max{n1,n2} ≤ out ≤ n1·n2: R1 = {a} × {b_1..b_{n1}}, R2 = {b_1, b_2} ×
// dom(C) with |C| = n2/2, padded with disjoint unit triples up to the
// target output size. Realized sizes are Θ(n1), Θ(n2), Θ(out).
func Thm2(n1, n2, out int64) (Instance, error) {
	if n1 < 2 || n2 < 2 {
		return Instance{}, fmt.Errorf("lowerbound: Thm2 needs n1, n2 ≥ 2")
	}
	if out < maxI(n1, n2) || out > n1*n2 {
		return Instance{}, fmt.Errorf("lowerbound: Thm2 needs max{N1,N2} ≤ OUT ≤ N1·N2")
	}
	r1 := relation.New[bool]("A", "B")
	r2 := relation.New[bool]("B", "C")
	const a = 0
	for i := int64(0); i < n1; i++ {
		r1.Append(true, a, relation.Value(i))
	}
	nc := n2 / 2
	for j := int64(0); j < nc; j++ {
		r2.Append(true, 0, relation.Value(j))
		r2.Append(true, 1, relation.Value(j))
	}
	outSoFar := nc // {a} × dom(C)
	// Disjoint padding triples (a_i, b_i, c_i), one output each.
	pad := out - outSoFar
	base := relation.Value(1 << 30)
	for i := int64(0); i < pad; i++ {
		r1.Append(true, base+relation.Value(i), base+relation.Value(i))
		r2.Append(true, base+relation.Value(i), base+relation.Value(i))
	}
	return Instance{
		Inst: db.Instance[bool]{"R1": r1, "R2": r2},
		N1:   int64(r1.Len()), N2: int64(r2.Len()), Out: outSoFar + pad,
	}, nil
}

// Thm2Bound is the Theorem 2 load lower bound Ω((N1+N2)/p) (constant 1/2
// in the proof; reported without the constant).
func Thm2Bound(n1, n2 int64, p int) float64 {
	return float64(n1+n2) / float64(p)
}

// Thm3 builds the Theorem 3 dense-block instance for target sizes
// n1, n2 ≥ 2 with 1/OUT ≤ N1/N2 ≤ OUT: complete bipartite relations over
// |A| = √(n1·out/n2), |B| = √(n1·n2/out), |C| = √(n2·out/n1). Realized
// sizes are Θ of the targets (rounding).
func Thm3(n1, n2, out int64) (Instance, error) {
	if n1 < 2 || n2 < 2 {
		return Instance{}, fmt.Errorf("lowerbound: Thm3 needs n1, n2 ≥ 2")
	}
	if out < maxI(n1, n2) || out > n1*n2 {
		return Instance{}, fmt.Errorf("lowerbound: Thm3 needs max{N1,N2} ≤ OUT ≤ N1·N2")
	}
	da := int64(math.Round(math.Sqrt(float64(n1) * float64(out) / float64(n2))))
	dbv := int64(math.Round(math.Sqrt(float64(n1) * float64(n2) / float64(out))))
	dc := int64(math.Round(math.Sqrt(float64(n2) * float64(out) / float64(n1))))
	if da < 1 {
		da = 1
	}
	if dbv < 1 {
		dbv = 1
	}
	if dc < 1 {
		dc = 1
	}
	r1 := relation.New[bool]("A", "B")
	r2 := relation.New[bool]("B", "C")
	for i := int64(0); i < da; i++ {
		for j := int64(0); j < dbv; j++ {
			r1.Append(true, relation.Value(i), relation.Value(j))
		}
	}
	for j := int64(0); j < dbv; j++ {
		for k := int64(0); k < dc; k++ {
			r2.Append(true, relation.Value(j), relation.Value(k))
		}
	}
	return Instance{
		Inst: db.Instance[bool]{"R1": r1, "R2": r2},
		N1:   da * dbv, N2: dbv * dc, Out: da * dc,
	}, nil
}

// Thm3Bound is the Theorem 3 load lower bound
// Ω(min{√(N1·N2/p), (N1·N2·OUT)^{1/3}/p^{2/3}}).
func Thm3Bound(n1, n2, out int64, p int) float64 {
	wc := math.Sqrt(float64(n1) * float64(n2) / float64(p))
	os := math.Cbrt(float64(n1)*float64(n2)*float64(out)) / math.Pow(float64(p), 2.0/3.0)
	return math.Min(wc, os)
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
