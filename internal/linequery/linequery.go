// Package linequery implements the §4 algorithm of Hu–Yi PODS'20 for line
// (chain matrix multiplication) queries
//
//	∑_{A2,…,An} R1(A1,A2) ⋈ R2(A2,A3) ⋈ … ⋈ Rn(An,An+1)
//
// with load Õ(N·OUT^{1/2}/p + (N·OUT/p)^{2/3} + (N+OUT)/p), an asymptotic
// improvement over the distributed Yannakakis baseline's N·OUT/p.
//
// The algorithm recurses on n: values of A2 whose degree in R1 is ≥ √OUT
// are heavy. The heavy subquery aggregates the tail R2 ⋈ … ⋈ Rn down to
// R(A2, An+1) right-to-left with Yannakakis folds (Lemma 4 bounds every
// intermediate join by N·√OUT) and finishes with one output-sensitive
// matrix multiplication; the light subquery joins R1 ⋈ R2 into R(A1, A3)
// (size ≤ N·√OUT by lightness) and recurses on the shorter line. The base
// case n = 2 is §3's matrix multiplication. OUT itself comes from the
// §2.2 constant-factor estimator.
//
// Endpoints may be composite attribute lists: the star-like reduction
// (§6, step 2.2) produces line queries whose first endpoint is a combined
// attribute.
package linequery

import (
	"fmt"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/twoway"
)

// Options tunes the algorithm.
type Options struct {
	// Est configures the §2.2 estimator.
	Est estimate.Params
	// OutOracle replaces the OUT estimate when positive (experiments).
	OutOracle int64
	// Seed drives hash partitioning inside the matmul subroutine.
	Seed uint64
}

// Compute evaluates a line query given by its hypergraph view. rels binds
// each edge name to its distributed relation.
func Compute[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	view, ok := q.LineView()
	if !ok {
		return dist.Rel[W]{}, mpc.Stats{}, fmt.Errorf("linequery: query is not a line query")
	}
	ordered := make([]dist.Rel[W], len(view.EdgeOrder))
	path := make([][]dist.Attr, len(view.Vertices))
	for i, v := range view.Vertices {
		path[i] = []dist.Attr{v}
	}
	for i, ei := range view.EdgeOrder {
		ordered[i] = rels[q.Edges[ei].Name]
	}
	res, st := Run(sr, ordered, path, opts)
	return res, st, nil
}

// Run is the recursive core, operating on relations in path order:
// rels[i] spans path[i] ∪ path[i+1]; the output attributes are
// path[0] ∪ path[n]. Path positions are composite attribute lists;
// interior positions must be single attributes (they are join attributes
// of the §3 matmul base case).
func Run[W any](sr semiring.Semiring[W], rels []dist.Rel[W], path [][]dist.Attr, opts Options) (dist.Rel[W], mpc.Stats) {
	if len(rels) < 2 || len(path) != len(rels)+1 {
		panic("linequery: malformed path")
	}
	p := rels[0].P()
	outSchema := append(append([]dist.Attr(nil), path[0]...), path[len(path)-1]...)

	// Remove dangling tuples along the chain (forward and backward
	// semijoin sweeps — the full reducer specialised to a path).
	var st mpc.Stats
	rels = append([]dist.Rel[W](nil), rels...)
	for i := len(rels) - 2; i >= 0; i-- {
		r, s := dist.Semijoin(rels[i], rels[i+1])
		rels[i] = r
		st = mpc.Seq(st, s)
	}
	for i := 1; i < len(rels); i++ {
		r, s := dist.Semijoin(rels[i], rels[i-1])
		rels[i] = r
		st = mpc.Seq(st, s)
	}
	n0, sc := mpc.TotalCount(rels[0].Part)
	st = mpc.Seq(st, sc)
	if n0 == 0 {
		return dist.Empty[W](outSchema, p), st
	}

	res, st2 := run(sr, rels, path, opts)
	return res, mpc.Seq(st, st2)
}

// run assumes dangling tuples are already removed and recursion invariants
// hold.
func run[W any](sr semiring.Semiring[W], rels []dist.Rel[W], path [][]dist.Attr, opts Options) (dist.Rel[W], mpc.Stats) {
	p := rels[0].P()
	outSchema := append(append([]dist.Attr(nil), path[0]...), path[len(path)-1]...)

	// Base case n = 2: matrix multiplication (§3).
	if len(rels) == 2 {
		if len(path[1]) != 1 {
			panic("linequery: interior path position must be a single attribute")
		}
		res, st, err := matmul.Compute(sr, matmul.Input[W]{R1: rels[0], R2: rels[1], B: path[1][0]},
			matmul.Options{Est: opts.Est, OutOracle: opts.OutOracle, Seed: opts.Seed, SkipDangling: true})
		if err != nil {
			panic(err) // schemas are constructed internally; cannot fail
		}
		return res, st
	}

	// Estimate OUT (§2.2).
	_, out, st := estimate.LineOut(rels, path, opts.Est)
	if opts.OutOracle > 0 {
		out = opts.OutOracle
	}
	if out < 1 {
		out = 1
	}
	thr := isqrt(out)

	// Step 1: degree of each a ∈ dom(A2) in R1; heavy iff ≥ √OUT.
	a2 := path[1]
	a2Key1 := rels[0].Key(a2...)
	a2Key2 := rels[1].Key(a2...)
	degA2, s1 := mpc.CountByKey(rels[0].Part, func(r relation.Row[W]) string { return a2Key1(r) })
	st = mpc.Seq(st, s1)
	heavyStats := mpc.Filter(degA2, func(kc mpc.KeyCount[string]) bool { return kc.Count >= thr })

	r1Split, s2 := mpc.LookupJoin(rels[0].Part, heavyStats,
		func(r relation.Row[W]) string { return a2Key1(r) },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	r2Split, s3 := mpc.LookupJoin(rels[1].Part, heavyStats,
		func(r relation.Row[W]) string { return a2Key2(r) },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	st = mpc.Seq(st, s2, s3)

	takeRows := func(pt mpc.Part[mpc.Pred[relation.Row[W], mpc.KeyCount[string]]], heavy bool) mpc.Part[relation.Row[W]] {
		return mpc.Map(mpc.Filter(pt, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) bool {
			return pr.Found == heavy
		}), func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) relation.Row[W] { return pr.X })
	}
	r1Heavy := dist.Rel[W]{Schema: rels[0].Schema, Part: takeRows(r1Split, true)}
	r1Light := dist.Rel[W]{Schema: rels[0].Schema, Part: takeRows(r1Split, false)}
	r2Heavy := dist.Rel[W]{Schema: rels[1].Schema, Part: takeRows(r2Split, true)}
	r2Light := dist.Rel[W]{Schema: rels[1].Schema, Part: takeRows(r2Split, false)}

	// Steps 2 and 3 run on disjoint server groups simultaneously; their
	// costs compose with Par.
	var stHeavy, stLight mpc.Stats

	// Step 2: the heavy subquery.
	var resHeavy dist.Rel[W]
	nHeavy, sc := mpc.TotalCount(r1Heavy.Part)
	st = mpc.Seq(st, sc)
	if nHeavy > 0 {
		// Remove dangling within the heavy subquery (R2 changed).
		hRels := append([]dist.Rel[W](nil), rels...)
		hRels[0], hRels[1] = r1Heavy, r2Heavy
		for i := len(hRels) - 2; i >= 1; i-- {
			r, s := dist.Semijoin(hRels[i], hRels[i+1])
			hRels[i] = r
			stHeavy = mpc.Seq(stHeavy, s)
		}
		for i := 1; i < len(hRels); i++ {
			r, s := dist.Semijoin(hRels[i], hRels[i-1])
			hRels[i] = r
			stHeavy = mpc.Seq(stHeavy, s)
		}
		r, s := dist.Semijoin(hRels[0], hRels[1])
		hRels[0] = r
		stHeavy = mpc.Seq(stHeavy, s)

		// Step 2.1: fold the tail right-to-left into R(A2, A_{n+1}).
		last := path[len(path)-1]
		acc := hRels[len(hRels)-1]
		for i := len(hRels) - 2; i >= 1; i-- {
			keep := append(append([]dist.Attr(nil), path[i]...), last...)
			folded, s := twoway.JoinAgg(sr, hRels[i], acc, keep...)
			acc = dist.Reshape(folded, p)
			stHeavy = mpc.Seq(stHeavy, s)
		}
		// Step 2.2: one output-sensitive matrix multiplication.
		res, s2, err := matmul.Compute(sr, matmul.Input[W]{R1: hRels[0], R2: acc, B: path[1][0]},
			matmul.Options{Est: opts.Est, Seed: opts.Seed, SkipDangling: true})
		if err != nil {
			panic(err)
		}
		resHeavy = dist.Reshape(res, p)
		stHeavy = mpc.Seq(stHeavy, s2)
	} else {
		resHeavy = dist.EmptyIn[W](rels[0].Part.Scope(), outSchema, p)
	}

	// Step 3: the light subquery.
	var resLight dist.Rel[W]
	nLight, sc2 := mpc.TotalCount(r1Light.Part)
	st = mpc.Seq(st, sc2)
	if nLight > 0 {
		// Step 3.1: R(A1, A3) = ∑_{A2} R1^light ⋈ R2^light — join then
		// aggregate; the join has ≤ N·√OUT results by lightness of A2.
		keep := append(append([]dist.Attr(nil), path[0]...), path[2]...)
		r13, s := twoway.JoinAgg(sr, r1Light, r2Light, keep...)
		stLight = mpc.Seq(stLight, s)
		r13 = dist.Reshape(r13, p)

		// Step 3.2: recurse on the shorter line query. Dangling tuples of
		// the shorter chain are removed (R(A1,A3) may have lost values).
		sRels := append([]dist.Rel[W]{r13}, rels[2:]...)
		sPath := append([][]dist.Attr{path[0]}, path[2:]...)
		for i := len(sRels) - 2; i >= 0; i-- {
			r, s := dist.Semijoin(sRels[i], sRels[i+1])
			sRels[i] = r
			stLight = mpc.Seq(stLight, s)
		}
		for i := 1; i < len(sRels); i++ {
			r, s := dist.Semijoin(sRels[i], sRels[i-1])
			sRels[i] = r
			stLight = mpc.Seq(stLight, s)
		}
		nl0, sc3 := mpc.TotalCount(sRels[0].Part)
		stLight = mpc.Seq(stLight, sc3)
		if nl0 > 0 {
			res, s2 := run(sr, sRels, sPath, opts)
			resLight = dist.Reshape(res, p)
			stLight = mpc.Seq(stLight, s2)
		} else {
			resLight = dist.EmptyIn[W](rels[0].Part.Scope(), outSchema, p)
		}
	} else {
		resLight = dist.EmptyIn[W](rels[0].Part.Scope(), outSchema, p)
	}

	// Step 4: ⊕-merge the two subqueries' results by (A1, A_{n+1}).
	st = mpc.Seq(st, mpc.Par(stHeavy, stLight))
	final, s := dist.UnionAgg(sr, resHeavy, resLight)
	return final, mpc.Seq(st, s)
}

func isqrt(x int64) int64 {
	if x < 0 {
		return 0
	}
	r := int64(1)
	for r*r < x {
		r++
	}
	return r
}
