package linequery

// loadbound_test.go pins the measured load of the §4 algorithm to its
// Theorem 4 bound on controlled block workloads, with generous constants —
// a regression net for the load behavior the experiments report.

import (
	"math"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/workload"
)

func TestLoadWithinTheorem4Bound(t *testing.T) {
	q := hypergraph.LineQuery(3)
	const p = 16
	for _, fan := range []int{2, 4, 8, 16} {
		blocks := 1024 / fan
		inst, meta := workload.Blocks(q, blocks, fan)
		rels := distRels(q, inst, p)
		_, st, err := Compute[int64](intSR, q, rels, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n := float64(meta.N) / 3 // per-relation size
		out := float64(meta.Out)
		bound := n*math.Sqrt(out)/p +
			math.Pow(n*out/p, 2.0/3.0) +
			(3*n+out)/p +
			float64(p*p) // sample-sort term
		if float64(st.MaxLoad) > 8*bound {
			t.Fatalf("fan %d: load %d exceeds 8× Theorem 4 bound %.0f", fan, st.MaxLoad, bound)
		}
	}
}

func TestLoadBeatsBaselineAtLargeOut(t *testing.T) {
	// At the largest OUT of the sweep the §4 algorithm must strictly beat
	// the distributed Yannakakis J/p behavior (J = OUT on blocks).
	q := hypergraph.LineQuery(3)
	const p, fan = 16, 16
	inst, meta := workload.Blocks(q, 1024/fan, fan)
	rels := distRels(q, inst, p)
	_, st, err := Compute[int64](intSR, q, rels, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	jOverP := int(meta.Out) / p
	if st.MaxLoad >= 2*jOverP {
		t.Fatalf("load %d not below 2·J/p = %d at OUT=%d", st.MaxLoad, 2*jOverP, meta.Out)
	}
}
