package linequery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			r.Append(int64(rng.Intn(4)+1), relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		}
		inst[e.Name] = relation.Compact[int64](intSR, r)
	}
	return inst
}

func distRels(q *hypergraph.Query, inst db.Instance[int64], p int) map[string]dist.Rel[int64] {
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	return rels
}

func check(t *testing.T, q *hypergraph.Query, inst db.Instance[int64], p int, opts Options) {
	t.Helper()
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("line mismatch: got %v want %v", dist.ToRelation(got), want)
	}
}

func TestLine3AgainstReference(t *testing.T) {
	q := hypergraph.LineQuery(3)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, q, 60, 10)
		check(t, q, inst, rng.Intn(8)+2, Options{Seed: uint64(seed)})
	}
}

func TestLine4And5AgainstReference(t *testing.T) {
	for _, n := range []int{4, 5} {
		q := hypergraph.LineQuery(n)
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(seed + 100))
			inst := randomInstance(rng, q, 40, 9)
			check(t, q, inst, rng.Intn(6)+2, Options{Seed: uint64(seed)})
		}
	}
}

func TestQuickRandomLines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		q := hypergraph.LineQuery(n)
		inst := randomInstance(rng, q, rng.Intn(60)+5, rng.Intn(8)+3)
		p := rng.Intn(8) + 2
		got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeavySkewChain(t *testing.T) {
	// One A2 value of huge degree forces the heavy path; disjoint light
	// values exercise the light recursion, both in one instance.
	q := hypergraph.LineQuery(3)
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A1", "A2")
	r2 := relation.New[int64]("A2", "A3")
	r3 := relation.New[int64]("A3", "A4")
	for i := 0; i < 200; i++ {
		r1.Append(1, relation.Value(i), 0) // heavy a2 = 0
	}
	r2.Append(1, 0, 0)
	r3.Append(1, 0, 0)
	for i := 1; i <= 50; i++ {
		r1.Append(1, relation.Value(1000+i), relation.Value(i))
		r2.Append(1, relation.Value(i), relation.Value(i))
		r3.Append(1, relation.Value(i), relation.Value(i))
	}
	inst["R1"], inst["R2"], inst["R3"] = r1, r2, r3
	check(t, q, inst, 6, Options{})
}

func TestEmptyChain(t *testing.T) {
	q := hypergraph.LineQuery(3)
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A1", "A2")
	r1.Append(1, 1, 1)
	r2 := relation.New[int64]("A2", "A3")
	r2.Append(1, 99, 1) // breaks the chain
	r3 := relation.New[int64]("A3", "A4")
	r3.Append(1, 1, 1)
	inst["R1"], inst["R2"], inst["R3"] = r1, r2, r3
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("expected empty, got %v", dist.ToRelation(got))
	}
}

func TestCompositeEndpoint(t *testing.T) {
	// First endpoint is a combined attribute (as in the star-like
	// reduction): R(X1 X2, A2) ⋈ R2(A2, A3) ⋈ R3(A3, A4).
	rng := rand.New(rand.NewSource(7))
	r1 := relation.New[int64]("X1", "X2", "A2")
	for i := 0; i < 80; i++ {
		r1.Append(1, relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(8)))
	}
	r1 = relation.Compact[int64](intSR, r1)
	r2raw := relation.New[int64]("A2", "A3")
	r3raw := relation.New[int64]("A3", "A4")
	for i := 0; i < 60; i++ {
		r2raw.Append(1, relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
		r3raw.Append(1, relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
	}
	r2 := relation.Compact[int64](intSR, r2raw)
	r3 := relation.Compact[int64](intSR, r3raw)

	const p = 5
	rels := []dist.Rel[int64]{
		dist.FromRelation(r1, p), dist.FromRelation(r2, p), dist.FromRelation(r3, p),
	}
	path := [][]dist.Attr{{"X1", "X2"}, {"A2"}, {"A3"}, {"A4"}}
	got, _ := Run[int64](intSR, rels, path, Options{})

	want := relation.ProjectAgg[int64](intSR,
		relation.Join[int64](intSR, relation.Join[int64](intSR, r1, r2), r3),
		"X1", "X2", "A4")
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("composite endpoint mismatch: %v vs %v", dist.ToRelation(got), want)
	}
}

func TestTropicalShortestPath(t *testing.T) {
	mp := semiring.MinPlus{}
	q := hypergraph.LineQuery(3)
	inst := make(db.Instance[int64])
	rng := rand.New(rand.NewSource(11))
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < 40; i++ {
			r.Append(int64(rng.Intn(100)), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		inst[e.Name] = relation.Compact[int64](mp, r)
	}
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], 4)
	}
	got, _, err := Compute[int64](mp, q, rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[int64](mp, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](mp, mp.Equal, dist.ToRelation(got), want) {
		t.Fatal("tropical line mismatch")
	}
}

func TestRejectNonLine(t *testing.T) {
	q := hypergraph.StarQuery(3)
	if _, _, err := Compute[int64](intSR, q, nil, Options{}); err == nil {
		t.Fatal("expected error on star query")
	}
}

func TestConstantRoundsInN(t *testing.T) {
	q := hypergraph.LineQuery(3)
	rounds := map[int]bool{}
	for _, n := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(9))
		inst := randomInstance(rng, q, n, n/6)
		got, st, err := Compute[int64](intSR, q, distRels(q, inst, 8), Options{})
		if err != nil {
			t.Fatal(err)
		}
		_ = got
		rounds[st.Rounds] = true
	}
	// The recursion depth is fixed by n (=3), not by data size; rounds may
	// vary slightly with which branches are non-empty but must stay within
	// a small constant band.
	if len(rounds) > 3 {
		t.Fatalf("rounds vary wildly with N: %v", rounds)
	}
}
