package treequery

// loadbound_test.go pins the §7 engine's measured load to its Theorem 6
// bound on controlled block workloads of the Figure 3 twig.

import (
	"math"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/workload"
)

func TestLoadWithinTheorem6Bound(t *testing.T) {
	q := hypergraph.Fig3Twig()
	const p = 16
	for _, sc := range []struct{ blocks, fan, mult int }{
		{64, 2, 1}, {64, 2, 2}, {32, 2, 4},
	} {
		inst, meta := workload.BlocksMulti(q, sc.blocks, sc.fan, sc.mult)
		rels := distRels(q, inst, p)
		_, st, err := Compute[int64](intSR, q, rels, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		nMax := 0
		for _, n := range meta.PerEdge {
			if n > nMax {
				nMax = n
			}
		}
		n := float64(nMax)
		out := float64(meta.Out)
		bound := n*math.Pow(out, 2.0/3.0)/p + (float64(meta.N)+out)/p + float64(p*p)
		if float64(st.MaxLoad) > 8*bound {
			t.Fatalf("%+v: load %d exceeds 8× Theorem 6 bound %.0f", sc, st.MaxLoad, bound)
		}
	}
}

func TestConstantRoundsInDataSize(t *testing.T) {
	q := hypergraph.Fig3Twig()
	rounds := map[int]bool{}
	for _, blocks := range []int{8, 32, 128} {
		inst, _ := workload.Blocks(q, blocks, 2)
		_, st, err := Compute[int64](intSR, q, distRels(q, inst, 8), Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rounds[st.Rounds] = true
	}
	// The recursion structure is fixed by the query; rounds may vary only
	// slightly with which heavy/light classes are non-empty.
	if len(rounds) > 2 {
		t.Fatalf("rounds vary with data size: %v", rounds)
	}
}
