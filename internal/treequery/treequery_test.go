package treequery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(rng.Intn(dom))
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(4) + 1)})
		}
		inst[e.Name] = relation.Compact[int64](intSR, r)
	}
	return inst
}

func distRels(q *hypergraph.Query, inst db.Instance[int64], p int) map[string]dist.Rel[int64] {
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	return rels
}

func check(t *testing.T, q *hypergraph.Query, inst db.Instance[int64], p int, opts Options) {
	t.Helper()
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("tree mismatch on %s:\ngot  %v\nwant %v", refengine.String(q), dist.ToRelation(got), want)
	}
}

func TestFig3TwigAgainstReference(t *testing.T) {
	q := hypergraph.Fig3Twig()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, q, 14, 6)
		check(t, q, inst, rng.Intn(5)+2, Options{Seed: uint64(seed)})
	}
}

func TestFig2FullTreeAgainstReference(t *testing.T) {
	q := hypergraph.Fig2Tree()
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed + 7))
		inst := randomInstance(rng, q, 10, 8)
		check(t, q, inst, rng.Intn(4)+2, Options{Seed: uint64(seed)})
	}
}

func TestSimpleShapesViaTreeEngine(t *testing.T) {
	// The tree engine must handle every specialized shape through its twig
	// dispatch.
	queries := []*hypergraph.Query{
		hypergraph.MatMulQuery(),
		hypergraph.LineQuery(3),
		hypergraph.StarQuery(3),
		hypergraph.Fig1StarLike(),
		hypergraph.NewQuery([]hypergraph.Edge{hypergraph.Bin("R", "A", "B")}, "A", "B"),
	}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(qi) * 13))
		inst := randomInstance(rng, q, 25, 6)
		check(t, q, inst, 4, Options{Seed: uint64(qi)})
	}
}

func TestFreeConnexViaTreeEngine(t *testing.T) {
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
	}, "A", "B", "C")
	rng := rand.New(rand.NewSource(2))
	inst := randomInstance(rng, q, 30, 5)
	check(t, q, inst, 4, Options{})
}

func TestScalarAggregateViaTreeEngine(t *testing.T) {
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
	})
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(rng, q, 30, 5)
	check(t, q, inst, 4, Options{})
}

func TestUnaryAndPendantReduction(t *testing.T) {
	// Unary edge and private non-output pendants must reduce correctly.
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
		hypergraph.Un("U", "B"), hypergraph.Bin("P", "C", "Z"),
	}, "A", "C")
	rng := rand.New(rand.NewSource(4))
	inst := randomInstance(rng, q, 20, 5)
	// Unary edge relation.
	u := relation.New[int64]("B")
	for i := 0; i < 5; i++ {
		u.Append(int64(i+1), relation.Value(i))
	}
	inst["U"] = u
	check(t, q, inst, 4, Options{})
}

func TestDoubleBranchTwig(t *testing.T) {
	// Two branch vertices joined directly — the minimal general twig.
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("Rm", "B1", "B2"),
		hypergraph.Bin("R1a", "B1", "A1"), hypergraph.Bin("R1b", "B1", "A2"),
		hypergraph.Bin("R2a", "B2", "A3"), hypergraph.Bin("R2b", "B2", "A4"),
	}, "A1", "A2", "A3", "A4")
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 20))
		inst := randomInstance(rng, q, 12, 5)
		check(t, q, inst, 4, Options{Seed: uint64(seed)})
	}
}

func TestThreeBranchChain(t *testing.T) {
	// Three branch vertices in a row: two recursion levels may be needed.
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("Rm1", "B1", "B2"), hypergraph.Bin("Rm2", "B2", "B3"),
		hypergraph.Bin("R1a", "B1", "A1"), hypergraph.Bin("R1b", "B1", "A2"),
		hypergraph.Bin("R2a", "B2", "A3"),
		hypergraph.Bin("R3a", "B3", "A4"), hypergraph.Bin("R3b", "B3", "A5"),
	}, "A1", "A2", "A3", "A4", "A5")
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 40))
		inst := randomInstance(rng, q, 10, 4)
		check(t, q, inst, 4, Options{Seed: uint64(seed)})
	}
}

func TestPendantWithLongArm(t *testing.T) {
	// Pendant subtrees with multi-relation arms (inner non-output attrs).
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("Rm", "B1", "B2"),
		hypergraph.Bin("R1a", "B1", "C1"), hypergraph.Bin("R1b", "C1", "A1"),
		hypergraph.Bin("R1c", "B1", "A2"),
		hypergraph.Bin("R2a", "B2", "A3"), hypergraph.Bin("R2b", "B2", "A4"),
	}, "A1", "A2", "A3", "A4")
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 60))
		inst := randomInstance(rng, q, 10, 4)
		check(t, q, inst, 4, Options{Seed: uint64(seed)})
	}
}

func TestEmptyAnswerTree(t *testing.T) {
	q := hypergraph.Fig3Twig()
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		r.Append(1, 1, 1)
		inst[e.Name] = r
	}
	// Break one edge.
	broken := relation.New[int64](q.Edges[0].Attrs...)
	broken.Append(1, 42, 43)
	inst[q.Edges[0].Name] = broken
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("expected empty, got %v", dist.ToRelation(got))
	}
}

func TestQuickRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := rng.Intn(5) + 3
		attrs := make([]hypergraph.Attr, nAttrs)
		for i := range attrs {
			attrs[i] = hypergraph.Attr(rune('A' + i))
		}
		var edges []hypergraph.Edge
		for i := 1; i < nAttrs; i++ {
			parent := rng.Intn(i)
			edges = append(edges, hypergraph.Bin("R"+string(rune('0'+i)), attrs[parent], attrs[i]))
		}
		var out []hypergraph.Attr
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				out = append(out, a)
			}
		}
		if len(out) == 0 {
			out = attrs[:1]
		}
		q := hypergraph.NewQuery(edges, out...)
		if err := q.Validate(); err != nil {
			return true
		}
		inst := randomInstance(rng, q, 12, 4)
		p := rng.Intn(5) + 2
		got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBooleanSemiringTree(t *testing.T) {
	boolSR := semiring.BoolOrAnd{}
	q := hypergraph.Fig3Twig()
	rng := rand.New(rand.NewSource(91))
	inst := make(db.Instance[bool])
	rels := make(map[string]dist.Rel[bool])
	for _, e := range q.Edges {
		r := relation.New[bool](e.Attrs...)
		for i := 0; i < 14; i++ {
			r.Append(true, relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
		}
		inst[e.Name] = r
		rels[e.Name] = dist.FromRelation(r, 4)
	}
	got, _, err := Compute[bool](boolSR, q, rels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[bool](boolSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[bool](boolSR, boolSR.Equal, dist.ToRelation(got), want) {
		t.Fatal("boolean tree mismatch")
	}
}
