// Package treequery implements the §7 algorithm of Hu–Yi PODS'20 for
// arbitrary tree join-aggregate queries, with load
// Õ(N·OUT^{2/3}/p + (N+OUT)/p) (Theorem 6).
//
// Pipeline:
//
//  1. Remove dangling tuples; run the §7 preprocessing reduction (unary
//     edges and private non-output attributes fold into neighbors), after
//     which every leaf attribute is an output attribute.
//  2. Decompose at non-leaf output attributes into twigs (Figure 2); in a
//     twig the output attributes are exactly the leaves.
//  3. Evaluate each twig: matrix multiplication, line, star and star-like
//     twigs dispatch to their §3–§6 engines; a general twig runs the
//     skeleton recursion below.
//  4. Join the twig results (all attributes are outputs now, so the plain
//     distributed Yannakakis algorithm is optimal for this step).
//
// The skeleton recursion (§7.1, Figures 3–4): compute the twig's skeleton
// TS by contracting every pendant star-like subtree T_B to its root B; for
// each pendant root estimate x(b) — the number of output combinations
// inside T_B — and y(b) — Algorithm 1's underestimate of the combinations
// outside — and split dom(B) into heavy (x > y) and light values. Each of
// the 2^{|S∩ȳ|} heavy/light subqueries materializes Q_B for its light
// roots (at least one exists by Lemma 13), replacing T_B by a combined
// output attribute, and recurses on the strictly smaller residual query
// until it leaves the general-tree class.
package treequery

import (
	"fmt"
	"slices"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/linequery"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/starlike"
	"mpcjoin/internal/starquery"
	"mpcjoin/internal/twoway"
	"mpcjoin/internal/yannakakis"
)

// Options tunes the algorithm.
type Options struct {
	// Est configures the §2.2 estimator.
	Est estimate.Params
	// Seed drives hash partitioning in subroutines.
	Seed uint64
}

// Compute evaluates an arbitrary tree join-aggregate query.
func Compute[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	if err := q.Validate(); err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	p := anyRel(rels).P()

	// Dangling removal, then the §7 preprocessing reduction.
	live, st := dist.RemoveDangling(q, rels)
	reduced, steps := hypergraph.ReducePlan(q)
	for _, step := range steps {
		agg, s1 := dist.ProjectAgg(sr, live[step.Remove], step.On...)
		merged, s2 := dist.AttachAgg(sr, live[step.Into], agg, step.On)
		live[step.Into] = merged
		delete(live, step.Remove)
		st = mpc.Seq(st, s1, s2)
	}

	// Twig decomposition and per-twig evaluation.
	twigs := hypergraph.Twigs(reduced)
	twigRels := make(map[string]dist.Rel[W], len(twigs))
	pseudo := &hypergraph.Query{Output: reduced.Output}
	var twigStats []mpc.Stats
	for i, tw := range twigs {
		vt := &vtree[W]{q: tw.Query, groups: map[hypergraph.Attr][]dist.Attr{}, rels: map[string]dist.Rel[W]{}, seed: opts.Seed}
		for _, e := range tw.Query.Edges {
			vt.rels[e.Name] = live[e.Name]
		}
		res, s := evalTwig(sr, vt, opts)
		twigStats = append(twigStats, s)
		name := fmt.Sprintf("twig%d", i)
		twigRels[name] = dist.Reshape(res, p)
		attrs := make([]hypergraph.Attr, len(res.Schema))
		copy(attrs, res.Schema)
		pseudo.Edges = append(pseudo.Edges, hypergraph.Edge{Name: name, Attrs: attrs})
	}
	// The constantly many twigs are independent subqueries evaluated on
	// their own O(p)-server groups simultaneously: Par-compose their costs.
	st = mpc.Seq(st, mpc.Par(twigStats...))

	// Join the twig results (free-connex full join: all attrs are output).
	var final dist.Rel[W]
	if len(twigs) == 1 {
		only := twigRels["twig0"]
		f, s := dist.ProjectAgg(sr, only, reduced.Output...)
		final = f
		st = mpc.Seq(st, s)
	} else {
		clean, s1 := dist.RemoveDangling(pseudo, twigRels)
		f, s2 := yannakakis.RunNoReduce(sr, pseudo, clean)
		final = f
		st = mpc.Seq(st, s1, s2)
	}
	return dist.Reshape(final, p), st, nil
}

// vtree is a query over possibly-synthetic vertices: groups maps a
// combined vertex to its concrete attribute columns (absent = the vertex
// is itself a concrete attribute).
type vtree[W any] struct {
	q      *hypergraph.Query
	groups map[hypergraph.Attr][]dist.Attr
	rels   map[string]dist.Rel[W]
	seed   uint64
	depth  int
}

// expand returns the concrete attributes of a vertex.
func (vt *vtree[W]) expand(v hypergraph.Attr) []dist.Attr {
	if g, ok := vt.groups[v]; ok {
		return g
	}
	return []dist.Attr{v}
}

// expandAll expands a vertex list.
func (vt *vtree[W]) expandAll(vs []hypergraph.Attr) []dist.Attr {
	var out []dist.Attr
	for _, v := range vs {
		out = append(out, vt.expand(v)...)
	}
	return out
}

// evalTwig evaluates a twig query (outputs = leaves), dispatching on its
// class and falling back to the skeleton recursion for general twigs.
func evalTwig[W any](sr semiring.Semiring[W], vt *vtree[W], opts Options) (dist.Rel[W], mpc.Stats) {
	q := vt.q
	if len(q.Edges) == 1 {
		return dist.ProjectAgg(sr, vt.rels[q.Edges[0].Name], vt.expandAll(q.Output)...)
	}
	if v, ok := q.LineView(); ok {
		rels := make([]dist.Rel[W], len(v.EdgeOrder))
		path := make([][]dist.Attr, len(v.Vertices))
		for i, vx := range v.Vertices {
			path[i] = vt.expand(vx)
		}
		for i, ei := range v.EdgeOrder {
			rels[i] = vt.rels[q.Edges[ei].Name]
		}
		return linequery.Run(sr, rels, path, linequery.Options{Est: opts.Est, Seed: vt.seed})
	}
	if v, ok := q.StarView(); ok {
		arms := make([]dist.Rel[W], len(v.ArmEdge))
		leaves := make([][]dist.Attr, len(v.ArmEdge))
		for i, ei := range v.ArmEdge {
			arms[i] = vt.rels[q.Edges[ei].Name]
			leaves[i] = vt.expand(v.Leaves[i])
		}
		return starquery.Run(sr, arms, leaves, v.Center, starquery.Options{Est: opts.Est, Seed: vt.seed})
	}
	if v, ok := q.StarLikeView(); ok {
		arms := make([]starlike.Arm[W], len(v.Arms))
		for i, va := range v.Arms {
			arm := starlike.Arm[W]{Path: [][]dist.Attr{{v.Center}}}
			for _, inner := range va.Inner {
				arm.Path = append(arm.Path, vt.expand(inner))
			}
			arm.Path = append(arm.Path, vt.expand(va.Leaf))
			for _, ei := range va.Edges {
				arm.Rels = append(arm.Rels, vt.rels[q.Edges[ei].Name])
			}
			arms[i] = arm
		}
		return starlike.Run(sr, arms, v.Center, starlike.Options{Est: opts.Est, Seed: vt.seed})
	}
	return skeletonRecurse(sr, vt, opts)
}

// skeletonRecurse is the §7.1 divide-and-conquer on a general twig.
func skeletonRecurse[W any](sr semiring.Semiring[W], vt *vtree[W], opts Options) (dist.Rel[W], mpc.Stats) {
	q := vt.q
	p := anyRel(vt.rels).P()
	outSchema := vt.expandAll(q.Output)

	sk := hypergraph.SkeletonOf(q)
	if sk == nil {
		panic("treequery: general twig without a skeleton")
	}

	// Pendant roots: S ∩ ȳ.
	var roots []hypergraph.Attr
	for _, s := range sk.S {
		if !q.IsOutput(s) {
			roots = append(roots, s)
		}
	}
	slices.Sort(roots)

	var st mpc.Stats

	// Step 1a: x(b) per pendant root — the product of per-arm distinct
	// leaf-combination estimates (§2.2 along each pendant arm).
	xParts := make(map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]], len(roots))
	var xStats []mpc.Stats
	for _, b := range roots {
		xp, s := pendantX(sr, vt, sk.Pendants[b], b, opts)
		xParts[b] = xp
		xStats = append(xStats, s)
	}
	st = mpc.Seq(st, mpc.Par(xStats...)) // one p-server group per root (§7.1 Step 1)

	// Step 1b: y(b) per pendant root via Algorithm 1 over the skeleton.
	yParts := make(map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]], len(roots))
	var yStats []mpc.Stats
	for _, b := range roots {
		yp, s := estimateOutTree(sr, vt, sk, b, roots, xParts, opts)
		yParts[b] = yp
		yStats = append(yStats, s)
	}
	st = mpc.Seq(st, mpc.Par(yStats...))

	// Per-root heavy tables: b is heavy iff x(b) > y(b).
	heavyTables := make(map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]], len(roots))
	for _, b := range roots {
		joined, s := mpc.LookupJoin(xParts[b], yParts[b],
			func(kc mpc.KeyCount[int64]) int64 { return kc.Key },
			func(kc mpc.KeyCount[int64]) int64 { return kc.Key })
		st = mpc.Seq(st, s)
		heavyTables[b] = mpc.Map(mpc.Filter(joined,
			func(pr mpc.Pred[mpc.KeyCount[int64], mpc.KeyCount[int64]]) bool {
				y := int64(1)
				if pr.Found {
					y = pr.Y.Count
				}
				return pr.X.Count > y
			}), func(pr mpc.Pred[mpc.KeyCount[int64], mpc.KeyCount[int64]]) mpc.KeyCount[int64] {
			return pr.X
		})
	}

	// Step 2: the 2^{|roots|} heavy/light subqueries, each on its own
	// p-server group, run in parallel (§7.1 Step 2): Par-compose.
	var results []dist.Rel[W]
	var subStats []mpc.Stats
	for mask := 0; mask < 1<<len(roots); mask++ {
		sub, empty, s := buildSubquery(sr, vt, roots, heavyTables, mask)
		if empty {
			subStats = append(subStats, s)
			continue
		}

		// Light roots of this subquery (forced non-empty for progress —
		// with exact statistics Lemma 13 guarantees one, but x and y are
		// estimates, so fall back to materializing the first root).
		var lights []hypergraph.Attr
		for i, b := range roots {
			if mask&(1<<i) == 0 {
				lights = append(lights, b)
			}
		}
		if len(lights) == 0 {
			lights = roots[:1]
		}

		res, s2 := materializeAndRecurse(sr, sub, sk, lights, outSchema, opts)
		subStats = append(subStats, mpc.Seq(s, s2))
		results = append(results, dist.Reshape(dist.Reorder(res, outSchema), p))
	}
	st = mpc.Seq(st, mpc.Par(subStats...))
	if len(results) == 0 {
		return dist.Empty[W](outSchema, p), st
	}
	final, s := dist.UnionAgg(sr, results...)
	return final, mpc.Seq(st, s)
}

// pendantArms decomposes a pendant star-like subtree rooted at b into arms
// (paths from b outward), each described by its relations and vertex path.
type pendantArm[W any] struct {
	rels []dist.Rel[W]
	path [][]dist.Attr
	// vertices from b outward, excluding b.
	vertices []hypergraph.Attr
}

func armsOf[W any](vt *vtree[W], pq *hypergraph.Query, b hypergraph.Attr) []pendantArm[W] {
	var arms []pendantArm[W]
	for _, ei := range pq.EdgesAt(b) {
		arm := pendantArm[W]{path: [][]dist.Attr{{b}}}
		cur := pq.Edges[ei].Other(b)
		prev := ei
		arm.rels = append(arm.rels, vt.rels[pq.Edges[ei].Name])
		for {
			arm.vertices = append(arm.vertices, cur)
			arm.path = append(arm.path, vt.expand(cur))
			next := -1
			for _, ej := range pq.EdgesAt(cur) {
				if ej != prev {
					next = ej
					break
				}
			}
			if next < 0 {
				break
			}
			arm.rels = append(arm.rels, vt.rels[pq.Edges[next].Name])
			cur = pq.Edges[next].Other(cur)
			prev = next
		}
		arms = append(arms, arm)
	}
	return arms
}

// pendantX estimates x(b) = ∏_arms d_arm(b): the number of output
// combinations of the pendant subtree joinable with each b.
func pendantX[W any](sr semiring.Semiring[W], vt *vtree[W], pq *hypergraph.Query, b hypergraph.Attr, opts Options) (mpc.Part[mpc.KeyCount[int64]], mpc.Stats) {
	arms := armsOf(vt, pq, b)
	var st mpc.Stats
	var per []mpc.Part[mpc.KeyCount[int64]]
	p := anyRel(vt.rels).P()
	for _, arm := range arms {
		ests, _, s := estimate.LineOut(arm.rels, arm.path, opts.Est)
		st = mpc.Seq(st, s)
		per = append(per, mpc.Map(ests, func(kc mpc.KeyCount[string]) mpc.KeyCount[int64] {
			return mpc.KeyCount[int64]{Key: int64(relation.DecodeKey(kc.Key)[0]), Count: kc.Count}
		}))
	}
	merged := mpc.NewPartIn[mpc.KeyCount[int64]](anyRel(vt.rels).Part.Scope(), p)
	for _, pt := range per {
		for s, shard := range pt.Shards {
			merged.Shards[s%p] = append(merged.Shards[s%p], shard...)
		}
	}
	// One entry per arm per b; multiply per b.
	prod, s := mpc.ReduceByKey(merged,
		func(kc mpc.KeyCount[int64]) int64 { return kc.Key },
		func(a, b mpc.KeyCount[int64]) mpc.KeyCount[int64] {
			return mpc.KeyCount[int64]{Key: a.Key, Count: satMul(a.Count, b.Count)}
		})
	return prod, mpc.Seq(st, s)
}

// estimateOutTree is Algorithm 1: an underestimate y(b) of the number of
// output combinations outside T_B joinable with each b ∈ dom(B), computed
// bottom-up over the skeleton rooted at B. Subtrees containing no pendant
// root contribute the multiplicative identity 1 and are skipped; a child's
// factor is max_{c' joinable} y(c'), propagated through the edge relation
// with a multi-search and a max-reduce.
func estimateOutTree[W any](sr semiring.Semiring[W], vt *vtree[W], sk *hypergraph.Skeleton, root hypergraph.Attr, roots []hypergraph.Attr, xParts map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]], opts Options) (mpc.Part[mpc.KeyCount[int64]], mpc.Stats) {
	ts := sk.TS
	isRoot := make(map[hypergraph.Attr]bool, len(roots))
	for _, r := range roots {
		isRoot[r] = true
	}

	var st mpc.Stats
	var visit func(v hypergraph.Attr, fromEdge int) (mpc.Part[mpc.KeyCount[int64]], bool)
	visit = func(v hypergraph.Attr, fromEdge int) (mpc.Part[mpc.KeyCount[int64]], bool) {
		// Gather child factors.
		type childFactor struct {
			part mpc.Part[mpc.KeyCount[int64]]
			edge int
			to   hypergraph.Attr
		}
		var factors []childFactor
		for _, ei := range ts.EdgesAt(v) {
			if ei == fromEdge {
				continue
			}
			child := ts.Edges[ei].Other(v)
			cpart, nontrivial := visit(child, ei)
			if !nontrivial {
				continue
			}
			factors = append(factors, childFactor{part: cpart, edge: ei, to: child})
		}
		var selfX mpc.Part[mpc.KeyCount[int64]]
		hasX := false
		if v != root && isRoot[v] {
			selfX = xParts[v]
			hasX = true
		}
		if len(factors) == 0 {
			if hasX {
				return selfX, true
			}
			return mpc.Part[mpc.KeyCount[int64]]{}, false
		}

		// For each child factor: propagate max y(c') through the edge.
		p := anyRel(vt.rels).P()
		merged := mpc.NewPartIn[mpc.KeyCount[int64]](anyRel(vt.rels).Part.Scope(), p)
		for _, f := range factors {
			erel := vt.rels[ts.Edges[f.edge].Name]
			vCol := erel.Cols(dist.Attr(v))[0]
			cCol := erel.Cols(dist.Attr(f.to))[0]
			looked, s := mpc.LookupJoin(erel.Part, f.part,
				func(r relation.Row[W]) int64 { return int64(r.Vals[cCol]) },
				func(kc mpc.KeyCount[int64]) int64 { return kc.Key })
			st = mpc.Seq(st, s)
			carried := mpc.Map(mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) bool { return pr.Found }),
				func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) mpc.KeyCount[int64] {
					return mpc.KeyCount[int64]{Key: int64(pr.X.Vals[vCol]), Count: pr.Y.Count}
				})
			maxed, s2 := mpc.ReduceByKey(carried,
				func(kc mpc.KeyCount[int64]) int64 { return kc.Key },
				func(a, b mpc.KeyCount[int64]) mpc.KeyCount[int64] {
					if b.Count > a.Count {
						return b
					}
					return a
				})
			st = mpc.Seq(st, s2)
			// Tag with the edge so the final product multiplies one factor
			// per child (duplicate keys across children are distinct).
			for sh, shard := range maxed.Shards {
				merged.Shards[sh%p] = append(merged.Shards[sh%p], shard...)
			}
		}
		if hasX {
			for sh, shard := range selfX.Shards {
				merged.Shards[sh%p] = append(merged.Shards[sh%p], shard...)
			}
		}
		prod, s := mpc.ReduceByKey(merged,
			func(kc mpc.KeyCount[int64]) int64 { return kc.Key },
			func(a, b mpc.KeyCount[int64]) mpc.KeyCount[int64] {
				return mpc.KeyCount[int64]{Key: a.Key, Count: satMul(a.Count, b.Count)}
			})
		st = mpc.Seq(st, s)
		return prod, true
	}

	res, nontrivial := visit(root, -1)
	if !nontrivial {
		// No other pendant roots: y(b) = 1 for every b.
		p := anyRel(vt.rels).P()
		res = mpc.NewPartIn[mpc.KeyCount[int64]](anyRel(vt.rels).Part.Scope(), p)
	}
	_ = sr
	return res, st
}

// buildSubquery filters the relations incident to each pendant root by its
// heavy/light side (bit set in mask = heavy) and runs the full reducer.
// Returns the filtered vtree and whether the subquery is empty.
func buildSubquery[W any](sr semiring.Semiring[W], vt *vtree[W], roots []hypergraph.Attr, heavy map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]], mask int) (*vtree[W], bool, mpc.Stats) {
	sub := &vtree[W]{q: vt.q, groups: vt.groups, rels: make(map[string]dist.Rel[W], len(vt.rels)), seed: vt.seed + uint64(mask)*0x9e37 + 1, depth: vt.depth}
	for k, v := range vt.rels {
		sub.rels[k] = v
	}
	var st mpc.Stats
	for i, b := range roots {
		wantHeavy := mask&(1<<i) != 0
		for _, ei := range vt.q.EdgesAt(b) {
			name := vt.q.Edges[ei].Name
			rel := sub.rels[name]
			bCol := rel.Cols(dist.Attr(b))[0]
			looked, s := mpc.LookupJoin(rel.Part, heavy[b],
				func(r relation.Row[W]) int64 { return int64(r.Vals[bCol]) },
				func(kc mpc.KeyCount[int64]) int64 { return kc.Key })
			st = mpc.Seq(st, s)
			rows := mpc.Map(mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) bool {
				return pr.Found == wantHeavy
			}), func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) relation.Row[W] { return pr.X })
			sub.rels[name] = dist.Rel[W]{Schema: rel.Schema, Part: rows}
		}
	}
	clean, s := dist.RemoveDangling(sub.q, sub.rels)
	st = mpc.Seq(st, s)
	sub.rels = clean
	n, s2 := mpc.TotalCount(clean[sub.q.Edges[0].Name].Part)
	st = mpc.Seq(st, s2)
	return sub, n == 0, st
}

// materializeAndRecurse computes Q_B for every light pendant root,
// replaces each pendant by a combined output vertex, and recurses.
func materializeAndRecurse[W any](sr semiring.Semiring[W], vt *vtree[W], sk *hypergraph.Skeleton, lights []hypergraph.Attr, outSchema []dist.Attr, opts Options) (dist.Rel[W], mpc.Stats) {
	var st mpc.Stats
	p := anyRel(vt.rels).P()

	next := &vtree[W]{
		q:      &hypergraph.Query{Output: append([]hypergraph.Attr(nil), vt.q.Output...)},
		groups: map[hypergraph.Attr][]dist.Attr{},
		rels:   map[string]dist.Rel[W]{},
		seed:   vt.seed*0x9e3779b9 + 17,
		depth:  vt.depth + 1,
	}
	for k, v := range vt.groups {
		next.groups[k] = v
	}

	removedEdges := make(map[string]bool)
	removedLeaves := make(map[hypergraph.Attr]bool)
	for _, b := range lights {
		pq := sk.Pendants[b]
		arms := armsOf(vt, pq, b)

		// Shrink each arm to R(leaf…, b) with Yannakakis folds, then join
		// the arms into Q_B over (b, all pendant leaves).
		var acc dist.Rel[W]
		for ai, arm := range arms {
			leaf := arm.path[len(arm.path)-1]
			armRel := arm.rels[len(arm.rels)-1]
			for j := len(arm.rels) - 2; j >= 0; j-- {
				keep := append(append([]dist.Attr(nil), arm.path[j]...), leaf...)
				folded, s := twoway.JoinAgg(sr, arm.rels[j], armRel, keep...)
				st = mpc.Seq(st, s)
				armRel = dist.Reshape(folded, p)
			}
			// Single-relation arms may span extra attrs already (keep all).
			if ai == 0 {
				acc = armRel
			} else {
				joined, _, s := twoway.Join(sr, acc, armRel)
				st = mpc.Seq(st, s)
				acc = dist.Reshape(joined, p)
			}
		}

		// Register the combined vertex.
		gname := hypergraph.Attr(fmt.Sprintf("⟨Q%s:%d⟩", b, vt.depth))
		var concrete []dist.Attr
		for _, a := range acc.Schema {
			if a != dist.Attr(b) {
				concrete = append(concrete, a)
			}
		}
		next.groups[gname] = concrete
		ename := fmt.Sprintf("⟨R%s:%d⟩", b, vt.depth)
		next.q.Edges = append(next.q.Edges, hypergraph.Edge{Name: ename, Attrs: []hypergraph.Attr{b, gname}})
		next.rels[ename] = acc

		for _, e := range pq.Edges {
			removedEdges[e.Name] = true
		}
		for _, v := range pq.Attrs() {
			if v != b && vt.q.IsOutput(v) {
				removedLeaves[v] = true
			}
		}
		next.q.Output = append(next.q.Output, gname)
	}

	for _, e := range vt.q.Edges {
		if !removedEdges[e.Name] {
			next.q.Edges = append(next.q.Edges, e)
			next.rels[e.Name] = vt.rels[e.Name]
		}
	}
	var outs []hypergraph.Attr
	for _, o := range next.q.Output {
		if !removedLeaves[o] {
			outs = append(outs, o)
		}
	}
	next.q.Output = outs

	res, s := evalTwig(sr, next, opts)
	st = mpc.Seq(st, s)
	return dist.Reorder(res, outSchema), st
}

func anyRel[W any](rels map[string]dist.Rel[W]) dist.Rel[W] {
	for _, r := range rels {
		return r
	}
	panic("treequery: no relations")
}

func satMul(a, b int64) int64 {
	const lim = int64(1) << 40
	if b < 1 {
		b = 1
	}
	if a > lim/b {
		return lim
	}
	return a * b
}
