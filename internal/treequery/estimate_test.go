package treequery

// estimate_test.go white-box tests for the §7.1 statistics: pendant x(b)
// estimates and Algorithm 1's y(b) underestimates, checked against the
// Lemma 12 invariant (y(b) ≥ x(b') for joinable pairs of pendant roots).

import (
	"testing"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var sr = semiring.IntSumProd{}

// buildTwig constructs the minimal two-branch twig B1–B2 with controllable
// pendant fanouts: B1 carries leaves A1, A2 (fan1 values each per b), B2
// carries leaves A3, A4 (fan2 values each).
func buildTwig(t *testing.T, nB int, fan1, fan2 int, p int) (*vtree[int64], *hypergraph.Skeleton) {
	t.Helper()
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("Rm", "B1", "B2"),
		hypergraph.Bin("R1a", "B1", "A1"), hypergraph.Bin("R1b", "B1", "A2"),
		hypergraph.Bin("R2a", "B2", "A3"), hypergraph.Bin("R2b", "B2", "A4"),
	}, "A1", "A2", "A3", "A4")
	inst := map[string]*relation.Relation[int64]{}
	for _, e := range q.Edges {
		inst[e.Name] = relation.New[int64](e.Attrs...)
	}
	for b := 0; b < nB; b++ {
		inst["Rm"].Append(1, relation.Value(b), relation.Value(b))
		for f := 0; f < fan1; f++ {
			inst["R1a"].Append(1, relation.Value(b), relation.Value(b*100+f))
			inst["R1b"].Append(1, relation.Value(b), relation.Value(b*100+f))
		}
		for f := 0; f < fan2; f++ {
			inst["R2a"].Append(1, relation.Value(b), relation.Value(b*100+f))
			inst["R2b"].Append(1, relation.Value(b), relation.Value(b*100+f))
		}
	}
	vt := &vtree[int64]{q: q, groups: map[hypergraph.Attr][]dist.Attr{}, rels: map[string]dist.Rel[int64]{}}
	for name, r := range inst {
		vt.rels[name] = dist.FromRelation(r, p)
	}
	sk := hypergraph.SkeletonOf(q)
	if sk == nil {
		t.Fatal("no skeleton")
	}
	return vt, sk
}

func collectCounts(pt mpc.Part[mpc.KeyCount[int64]]) map[int64]int64 {
	out := map[int64]int64{}
	for _, kc := range mpc.Collect(pt) {
		out[kc.Key] = kc.Count
	}
	return out
}

func TestPendantXExactOnSmallFans(t *testing.T) {
	// fan1 = 3 per arm, two arms → x(b) = 9 for every b (below the sketch
	// size, so estimates are exact).
	vt, sk := buildTwig(t, 5, 3, 2, 4)
	xp, _ := pendantX(sr, vt, sk.Pendants["B1"], "B1", Options{})
	got := collectCounts(xp)
	if len(got) != 5 {
		t.Fatalf("x values for %d b's, want 5", len(got))
	}
	for b, x := range got {
		if x != 9 {
			t.Fatalf("x(%d) = %d, want 9", b, x)
		}
	}
	xp2, _ := pendantX(sr, vt, sk.Pendants["B2"], "B2", Options{})
	for b, x := range collectCounts(xp2) {
		if x != 4 {
			t.Fatalf("x2(%d) = %d, want 4", b, x)
		}
	}
}

func TestEstimateOutTreeLemma12(t *testing.T) {
	// y computed at B1 must satisfy y(b) ≥ x_{B2}(b') for joinable (b, b')
	// — here b joins b' = b, so y_{B1}(b) ≥ x_{B2}(b) = 4.
	vt, sk := buildTwig(t, 5, 3, 2, 4)
	roots := []hypergraph.Attr{"B1", "B2"}
	xParts := map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]]{}
	for _, b := range roots {
		xp, _ := pendantX(sr, vt, sk.Pendants[b], b, Options{})
		xParts[b] = xp
	}
	y1, _ := estimateOutTree(sr, vt, sk, "B1", roots, xParts, Options{})
	got := collectCounts(y1)
	for b, y := range got {
		if y < 4 {
			t.Fatalf("y_B1(%d) = %d violates Lemma 12 (x_B2 = 4)", b, y)
		}
		// On this instance the skeleton is the single edge B1–B2, so the
		// exact value is x_B2(b) = 4.
		if y != 4 {
			t.Fatalf("y_B1(%d) = %d, want exactly 4", b, y)
		}
	}
	y2, _ := estimateOutTree(sr, vt, sk, "B2", roots, xParts, Options{})
	for b, y := range collectCounts(y2) {
		if y != 9 {
			t.Fatalf("y_B2(%d) = %d, want 9", b, y)
		}
	}
}

func TestHeavyLightSplitFollowsXandY(t *testing.T) {
	// fan1 = 4 (x1 = 16) vs fan2 = 1 (x2 = 1): B1 values are heavy at B1
	// (x1 = 16 > y1 = 1) and B2 values are light (x2 = 1 ≤ y2 = 16). The
	// engine must therefore materialize Q_B2 and run one recursion level —
	// verified end to end by comparing against the baseline inside
	// skeletonRecurse's own verification tests; here we check the split.
	vt, sk := buildTwig(t, 4, 4, 1, 4)
	roots := []hypergraph.Attr{"B1", "B2"}
	xParts := map[hypergraph.Attr]mpc.Part[mpc.KeyCount[int64]]{}
	for _, b := range roots {
		xp, _ := pendantX(sr, vt, sk.Pendants[b], b, Options{})
		xParts[b] = xp
	}
	y1, _ := estimateOutTree(sr, vt, sk, "B1", roots, xParts, Options{})
	x1 := collectCounts(xParts["B1"])
	yy1 := collectCounts(y1)
	for b := range x1 {
		if !(x1[b] > yy1[b]) {
			t.Fatalf("b=%d at B1: x=%d y=%d, expected heavy", b, x1[b], yy1[b])
		}
	}
	y2, _ := estimateOutTree(sr, vt, sk, "B2", roots, xParts, Options{})
	x2 := collectCounts(xParts["B2"])
	yy2 := collectCounts(y2)
	for b := range x2 {
		if x2[b] > yy2[b] {
			t.Fatalf("b=%d at B2: x=%d y=%d, expected light", b, x2[b], yy2[b])
		}
	}
}
