// Package starquery implements the §5 algorithm of Hu–Yi PODS'20 for star
// queries
//
//	∑_B R1(A1,B) ⋈ R2(A2,B) ⋈ … ⋈ Rn(An,B)
//
// with load Õ((N·OUT/p)^{2/3} + N·OUT^{1/2}/p + (N+OUT)/p). Unlike the
// matrix-multiplication and line algorithms, it is oblivious to OUT: the
// output size appears only in the analysis.
//
// Each value b ∈ dom(B) is classified by the permutation ϕ_b that sorts
// its per-relation degrees d_1(b) ≤ … ≤ d_n(b); this splits dom(B) into at
// most n! classes B_ϕ, each handled as its own subquery. Within a class,
// the arms at odd positions of ϕ (the small-degree half, interleaved) are
// fully joined into R_ϕ(A^odd, B) and the even positions into
// R_ϕ(A^even, B) — Lemmas 5 and 6 bound both by N·√OUT — and the subquery
// reduces to one output-sensitive matrix multiplication. The n! subquery
// results are ⊕-merged by the output attributes.
package starquery

import (
	"cmp"
	"fmt"
	"slices"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/twoway"
)

// Options tunes the algorithm.
type Options struct {
	// Est configures the estimator used inside the matmul subroutine.
	Est estimate.Params
	// Seed drives hash partitioning in subroutines.
	Seed uint64
}

// Compute evaluates a star query given by its hypergraph view.
func Compute[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	view, ok := q.StarView()
	if !ok {
		return dist.Rel[W]{}, mpc.Stats{}, fmt.Errorf("starquery: query is not a star query")
	}
	arms := make([]dist.Rel[W], len(view.ArmEdge))
	leaves := make([][]dist.Attr, len(view.ArmEdge))
	for i, ei := range view.ArmEdge {
		arms[i] = rels[q.Edges[ei].Name]
		leaves[i] = []dist.Attr{view.Leaves[i]}
	}
	res, st := Run(sr, arms, leaves, view.Center, opts)
	return res, st, nil
}

// Run is the core algorithm over explicit arms: arms[i] spans
// leaves[i] ∪ {b}. Leaves may be composite attribute lists (combined
// attributes from the tree-query reduction); the center b is a single
// attribute. The output schema is the concatenation of the leaves.
func Run[W any](sr semiring.Semiring[W], arms []dist.Rel[W], leaves [][]dist.Attr, b dist.Attr, opts Options) (dist.Rel[W], mpc.Stats) {
	n := len(arms)
	if n < 2 {
		panic("starquery: need at least 2 arms")
	}
	p := arms[0].P()
	var outSchema []dist.Attr
	for _, l := range leaves {
		outSchema = append(outSchema, l...)
	}

	// Remove dangling tuples: every b must appear in all arms.
	arms = append([]dist.Rel[W](nil), arms...)
	var st mpc.Stats
	inter, s := dist.ProjectAgg(sr, arms[0], b)
	st = mpc.Seq(st, s)
	for i := 1; i < n; i++ {
		bs, s1 := dist.ProjectAgg(sr, arms[i], b)
		filtered, s2 := dist.Semijoin(inter, bs)
		inter = filtered
		st = mpc.Seq(st, s1, s2)
	}
	for i := range arms {
		filtered, s := dist.Semijoin(arms[i], inter)
		arms[i] = filtered
		st = mpc.Seq(st, s)
	}
	nb, sc := mpc.TotalCount(inter.Part)
	st = mpc.Seq(st, sc)
	if nb == 0 {
		return dist.Empty[W](outSchema, p), st
	}

	// Step 1: per-arm degrees d_i(b) and the per-b sorting permutation.
	type armDeg struct {
		b   relation.Value
		arm int
		deg int64
	}
	degTagged := mpc.NewPartIn[armDeg](inter.Part.Scope(), p)
	for i := range arms {
		deg, s := dist.Degrees(arms[i], b)
		st = mpc.Seq(st, s)
		tagged := mpc.Map(deg, func(kc mpc.KeyCount[int64]) armDeg {
			return armDeg{b: relation.Value(kc.Key), arm: i, deg: kc.Count}
		})
		for sh, shard := range tagged.Shards {
			degTagged.Shards[sh] = append(degTagged.Shards[sh], shard...)
		}
	}
	grouped, s2 := mpc.GroupByKey(degTagged, func(ad armDeg) int64 { return int64(ad.b) })
	st = mpc.Seq(st, s2)

	// One permutation id per b (bases are local after grouping).
	type bPerm struct {
		b    relation.Value
		perm int64
	}
	perms := mpc.MapShards(grouped, func(_ int, shard []armDeg) []bPerm {
		var out []bPerm
		byB := make(map[relation.Value][]armDeg)
		var bOrder []relation.Value
		for _, ad := range shard {
			if _, seen := byB[ad.b]; !seen {
				bOrder = append(bOrder, ad.b)
			}
			byB[ad.b] = append(byB[ad.b], ad)
		}
		// First-seen key order, not map order: shard contents must be
		// reproducible run to run for the determinism guarantees.
		for _, bv := range bOrder {
			ads := byB[bv]
			slices.SortFunc(ads, func(x, y armDeg) int {
				if x.deg != y.deg {
					return cmp.Compare(x.deg, y.deg)
				}
				return cmp.Compare(x.arm, y.arm)
			})
			order := make([]int, len(ads))
			for i, ad := range ads {
				order[i] = ad.arm
			}
			out = append(out, bPerm{b: bv, perm: encodePerm(order, n)})
		}
		return out
	})

	// Distinct occurring permutations (≤ n!, usually far fewer).
	distinctPerms, s3 := mpc.ReduceByKey(perms, func(bp bPerm) int64 { return bp.perm },
		func(a, b bPerm) bPerm { return a })
	permIDsPart, s4 := mpc.Gather(mpc.Map(distinctPerms, func(bp bPerm) int64 { return bp.perm }), 0)
	permBcast, s5 := mpc.Broadcast(permIDsPart)
	st = mpc.Seq(st, s3, s4, s5)
	permIDs := append([]int64(nil), permBcast.Shards[0]...)
	slices.Sort(permIDs)

	// Tag every arm row with its b's permutation class.
	tagged := make([]mpc.Part[rowPerm[W]], n)
	for i := range arms {
		bCol := arms[i].Cols(b)[0]
		looked, s := mpc.LookupJoin(arms[i].Part, perms,
			func(r relation.Row[W]) int64 { return int64(r.Vals[bCol]) },
			func(bp bPerm) int64 { return int64(bp.b) })
		st = mpc.Seq(st, s)
		tagged[i] = mpc.Map(looked, func(pr mpc.Pred[relation.Row[W], bPerm]) rowPerm[W] {
			perm := int64(-1)
			if pr.Found {
				perm = pr.Y.perm
			}
			return rowPerm[W]{row: pr.X, perm: perm}
		})
	}

	// Steps 2–3: per-permutation subqueries, each reduced to one matrix
	// multiplication; results ⊕-merged at the end. The (constantly many)
	// subqueries run on disjoint O(p)-server groups simultaneously, so
	// their costs compose with Par, as in the paper's accounting.
	var results []dist.Rel[W]
	var classStats []mpc.Stats
	for _, pid := range permIDs {
		var cst mpc.Stats
		order := decodePerm(pid, n)

		// Interleave sorted arms into odd/even halves (1-indexed odds).
		var oddIdx, evenIdx []int
		for pos, armIdx := range order {
			if pos%2 == 0 {
				oddIdx = append(oddIdx, armIdx)
			} else {
				evenIdx = append(evenIdx, armIdx)
			}
		}

		classArm := func(i int) dist.Rel[W] {
			rows := mpc.Map(mpc.Filter(tagged[i], func(rp rowPerm[W]) bool { return rp.perm == pid }),
				func(rp rowPerm[W]) relation.Row[W] { return rp.row })
			return dist.Rel[W]{Schema: arms[i].Schema, Part: rows}
		}

		fold := func(idx []int) dist.Rel[W] {
			acc := classArm(idx[0])
			for _, i := range idx[1:] {
				joined, _, s := twoway.Join(sr, acc, classArm(i))
				cst = mpc.Seq(cst, s)
				acc = dist.Reshape(joined, p)
			}
			return acc
		}
		rOdd := fold(oddIdx)
		rEven := fold(evenIdx)

		res, s, err := matmul.Compute(sr, matmul.Input[W]{R1: rOdd, R2: rEven, B: b},
			matmul.Options{Est: opts.Est, Seed: opts.Seed ^ uint64(pid), SkipDangling: true})
		if err != nil {
			panic(err)
		}
		cst = mpc.Seq(cst, s)
		classStats = append(classStats, cst)
		results = append(results, dist.Reshape(dist.Reorder(res, outSchema), p))
	}
	st = mpc.Seq(st, mpc.Par(classStats...))
	if len(results) == 0 {
		return dist.Empty[W](outSchema, p), st
	}

	final, s6 := dist.UnionAgg(sr, results...)
	return final, mpc.Seq(st, s6)
}

// rowPerm tags a row with its b value's permutation class.
type rowPerm[W any] struct {
	row  relation.Row[W]
	perm int64
}

// encodePerm packs an arm order into an int64 (base-n digits; n ≤ 15).
func encodePerm(order []int, n int) int64 {
	if n > 15 {
		panic("starquery: more than 15 arms unsupported")
	}
	var id int64
	for i := len(order) - 1; i >= 0; i-- {
		id = id*int64(n) + int64(order[i])
	}
	return id
}

// decodePerm inverts encodePerm.
func decodePerm(id int64, n int) []int {
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[i] = int(id % int64(n))
		id /= int64(n)
	}
	return order
}
