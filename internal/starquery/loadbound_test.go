package starquery

// loadbound_test.go pins the §5 algorithm's measured load to its Theorem 5
// bound on controlled block workloads.

import (
	"math"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/workload"
)

func TestLoadWithinTheorem5Bound(t *testing.T) {
	q := hypergraph.StarQuery(3)
	const p = 16
	for _, fan := range []int{2, 4, 8} {
		blocks := 1024 / fan
		inst, meta := workload.Blocks(q, blocks, fan)
		rels := distRels(q, inst, p)
		_, st, err := Compute[int64](intSR, q, rels, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		n := float64(meta.N) / 3
		out := float64(meta.Out)
		bound := math.Pow(n*out/p, 2.0/3.0) +
			n*math.Sqrt(out)/p +
			(3*n+out)/p +
			float64(p*p)
		if float64(st.MaxLoad) > 8*bound {
			t.Fatalf("fan %d: load %d exceeds 8× Theorem 5 bound %.0f", fan, st.MaxLoad, bound)
		}
	}
}

func TestObliviousToOut(t *testing.T) {
	// The §5 algorithm never consumes an OUT estimate: running it twice on
	// instances that differ only in OUT-irrelevant padding must not change
	// its decisions' structure. Proxy check: same instance, different
	// seeds, identical loads (the algorithm is deterministic given data —
	// its only randomness is inside the matmul subroutine hashing).
	q := hypergraph.StarQuery(3)
	inst, _ := workload.Blocks(q, 64, 4)
	rels := distRels(q, inst, 8)
	_, st1, err := Compute[int64](intSR, q, rels, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := Compute[int64](intSR, q, distRels(q, inst, 8), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("non-deterministic stats: %+v vs %+v", st1, st2)
	}
}
