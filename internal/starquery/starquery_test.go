package starquery

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, domA, domB int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			r.Append(int64(rng.Intn(4)+1), relation.Value(rng.Intn(domA)), relation.Value(rng.Intn(domB)))
		}
		inst[e.Name] = relation.Compact[int64](intSR, r)
	}
	return inst
}

func distRels(q *hypergraph.Query, inst db.Instance[int64], p int) map[string]dist.Rel[int64] {
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	return rels
}

func check(t *testing.T, q *hypergraph.Query, inst db.Instance[int64], p int, opts Options) {
	t.Helper()
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("star mismatch: got %v want %v", dist.ToRelation(got), want)
	}
}

func TestStar3AgainstReference(t *testing.T) {
	q := hypergraph.StarQuery(3)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, q, 50, 10, 8)
		check(t, q, inst, rng.Intn(8)+2, Options{Seed: uint64(seed)})
	}
}

func TestStar4And5AgainstReference(t *testing.T) {
	for _, n := range []int{4, 5} {
		q := hypergraph.StarQuery(n)
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed + 31))
			inst := randomInstance(rng, q, 25, 6, 6)
			check(t, q, inst, rng.Intn(6)+2, Options{Seed: uint64(seed)})
		}
	}
}

func TestQuickRandomStars(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		q := hypergraph.StarQuery(n)
		inst := randomInstance(rng, q, rng.Intn(40)+5, rng.Intn(8)+2, rng.Intn(6)+2)
		p := rng.Intn(6) + 2
		got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedDegreePermutations(t *testing.T) {
	// Construct b values with deliberately different degree orderings so
	// several permutation classes occur simultaneously.
	q := hypergraph.StarQuery(3)
	inst := make(db.Instance[int64])
	r := [3]*relation.Relation[int64]{}
	for i := range r {
		r[i] = relation.New[int64](q.Edges[i].Attrs...)
	}
	// b=1: degrees (1, 5, 10); b=2: degrees (10, 1, 5); b=3: (5, 10, 1).
	degPattern := [3][3]int{{1, 5, 10}, {10, 1, 5}, {5, 10, 1}}
	for b := 0; b < 3; b++ {
		for arm := 0; arm < 3; arm++ {
			for k := 0; k < degPattern[b][arm]; k++ {
				r[arm].Append(1, relation.Value(100*b+k), relation.Value(b+1))
			}
		}
	}
	inst["R1"], inst["R2"], inst["R3"] = r[0], r[1], r[2]
	check(t, q, inst, 5, Options{})
}

func TestSkewedCenter(t *testing.T) {
	// One b with huge degrees everywhere (dense block) plus sparse rest.
	q := hypergraph.StarQuery(3)
	inst := make(db.Instance[int64])
	for ei, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < 30; i++ {
			r.Append(1, relation.Value(i), 0)
		}
		for i := 0; i < 40; i++ {
			r.Append(1, relation.Value(1000+i), relation.Value(1+(i+ei)%7))
		}
		inst[e.Name] = r
	}
	check(t, q, inst, 6, Options{})
}

func TestEmptyIntersection(t *testing.T) {
	q := hypergraph.StarQuery(3)
	inst := make(db.Instance[int64])
	for ei, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		r.Append(1, 1, relation.Value(ei)) // disjoint b values
		inst[e.Name] = r
	}
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("expected empty, got %v", dist.ToRelation(got))
	}
}

func TestCompositeLeaves(t *testing.T) {
	// Arms with multi-attribute leaves, as in the tree-query reduction.
	rng := rand.New(rand.NewSource(4))
	arm1 := relation.New[int64]("X1", "X2", "B")
	arm2 := relation.New[int64]("Y1", "B")
	arm3 := relation.New[int64]("Z1", "Z2", "B")
	for i := 0; i < 60; i++ {
		arm1.Append(1, relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(5)))
		arm2.Append(1, relation.Value(rng.Intn(6)), relation.Value(rng.Intn(5)))
		arm3.Append(1, relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(5)))
	}
	a1 := relation.Compact[int64](intSR, arm1)
	a2 := relation.Compact[int64](intSR, arm2)
	a3 := relation.Compact[int64](intSR, arm3)

	const p = 4
	got, _ := Run[int64](intSR,
		[]dist.Rel[int64]{dist.FromRelation(a1, p), dist.FromRelation(a2, p), dist.FromRelation(a3, p)},
		[][]dist.Attr{{"X1", "X2"}, {"Y1"}, {"Z1", "Z2"}}, "B", Options{})

	want := relation.ProjectAgg[int64](intSR,
		relation.Join[int64](intSR, relation.Join[int64](intSR, a1, a2), a3),
		"X1", "X2", "Y1", "Z1", "Z2")
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("composite leaves mismatch")
	}
}

func TestPermCodec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		order := rng.Perm(n)
		got := decodePerm(encodePerm(order, n), n)
		for i := range order {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectNonStar(t *testing.T) {
	q := hypergraph.LineQuery(3)
	if _, _, err := Compute[int64](intSR, q, nil, Options{}); err == nil {
		t.Fatal("expected error on line query")
	}
}

func TestStarWithMultiplicity(t *testing.T) {
	// The shared center B carries multiplicity: per-b degrees grow
	// uniformly, exercising the dense permutation classes.
	q := hypergraph.StarQuery(3)
	for _, mult := range []int{2, 4} {
		inst, _ := workload.BlocksMulti(q, 8, 2, mult)
		check(t, q, inst, 4, Options{Seed: uint64(mult)})
	}
}
