// Package semiring defines the commutative semiring abstraction that
// annotates every tuple flowing through the query engine, together with the
// standard instances used throughout the literature on annotated relations
// (Green, Karvounarakis, Tannen; Joglekar, Puttagunta, Ré).
//
// A commutative semiring (R, ⊕, ⊗) consists of a carrier set R with two
// associative, commutative operations such that
//
//   - (R, ⊕) is a commutative monoid with identity Zero,
//   - (R, ⊗) is a commutative monoid with identity One,
//   - ⊗ distributes over ⊕, and
//   - Zero annihilates: a ⊗ Zero = Zero.
//
// Unlike a ring, no additive inverses are required, so the engine never
// subtracts; this is precisely the model under which the Hu–Yi PODS'20
// algorithms (and their lower bounds) are stated. Several instances below
// are additionally idempotent (a ⊕ a = a), which is the class of semirings
// the paper's lower bounds (Theorems 2 and 3) already hold for.
package semiring

// Semiring is the interface every annotation algebra implements. W is the
// carrier type. Implementations must be value types safe for concurrent use
// (they carry no mutable state).
//
// Algorithms in this module treat W as opaque: the only permitted
// operations are Add, Mul, Zero and One. This mirrors the "semiring MPC
// model" of the paper, in which the only way a server creates new semiring
// elements is by adding or multiplying elements it already holds.
type Semiring[W any] interface {
	// Zero returns the identity of ⊕ (and the annihilator of ⊗).
	Zero() W
	// One returns the identity of ⊗.
	One() W
	// Add returns a ⊕ b.
	Add(a, b W) W
	// Mul returns a ⊗ b.
	Mul(a, b W) W
}

// Eq is implemented by semirings whose carrier supports a semantic equality
// test. It is used by tests and by result comparison helpers; the query
// algorithms themselves never inspect annotations.
type Eq[W any] interface {
	Equal(a, b W) bool
}

// Idempotent is a marker interface for semirings with a ⊕ a = a. The
// lower-bound audits insist on an idempotent semiring, as Theorems 2 and 3
// of the paper are proved for that class.
type Idempotent interface {
	IdempotentAdd() bool
}

// IsIdempotent reports whether s declares an idempotent ⊕.
func IsIdempotent(s any) bool {
	i, ok := s.(Idempotent)
	return ok && i.IdempotentAdd()
}

// ---------------------------------------------------------------------------
// Natural numbers / integers under (+, ×): the counting semiring.
// ---------------------------------------------------------------------------

// IntSumProd is the semiring (ℤ, +, ×). With all annotations set to 1 it
// computes COUNT(*) GROUP BY y; in general it computes sum-of-products, the
// semantics of ordinary sparse matrix multiplication over the integers.
type IntSumProd struct{}

func (IntSumProd) Zero() int64           { return 0 }
func (IntSumProd) One() int64            { return 1 }
func (IntSumProd) Add(a, b int64) int64  { return a + b }
func (IntSumProd) Mul(a, b int64) int64  { return a * b }
func (IntSumProd) Equal(a, b int64) bool { return a == b }

// ---------------------------------------------------------------------------
// Reals under (+, ×).
// ---------------------------------------------------------------------------

// FloatSumProd is the semiring (ℝ, +, ×) over float64. Note that floating
// point addition is not exactly associative; tests that compare against a
// reference engine use a tolerance. For exact experiments prefer IntSumProd.
type FloatSumProd struct{}

func (FloatSumProd) Zero() float64            { return 0 }
func (FloatSumProd) One() float64             { return 1 }
func (FloatSumProd) Add(a, b float64) float64 { return a + b }
func (FloatSumProd) Mul(a, b float64) float64 { return a * b }

// Equal compares with a small relative tolerance.
func (FloatSumProd) Equal(a, b float64) bool {
	const eps = 1e-9
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	}
	if -b > m {
		m = -b
	}
	return d <= eps*(1+m)
}

// ---------------------------------------------------------------------------
// Booleans under (∨, ∧): set semantics. Idempotent.
// ---------------------------------------------------------------------------

// BoolOrAnd is the Boolean semiring ({false,true}, ∨, ∧). Annotating every
// tuple with true turns a join-aggregate query into a join-project
// (conjunctive) query: the output is exactly π_y Q(R). It is idempotent, so
// it is admissible for the paper's lower-bound constructions.
type BoolOrAnd struct{}

func (BoolOrAnd) Zero() bool           { return false }
func (BoolOrAnd) One() bool            { return true }
func (BoolOrAnd) Add(a, b bool) bool   { return a || b }
func (BoolOrAnd) Mul(a, b bool) bool   { return a && b }
func (BoolOrAnd) Equal(a, b bool) bool { return a == b }
func (BoolOrAnd) IdempotentAdd() bool  { return true }

// ---------------------------------------------------------------------------
// Tropical semirings. Idempotent.
// ---------------------------------------------------------------------------

// tropInf is the additive identity of MinPlus (−tropInf for MaxPlus). We use
// a large sentinel rather than math.Inf so the carrier stays int64 and all
// arithmetic is exact. Workload weights must stay far below this value.
const tropInf int64 = 1 << 60

// satAdd adds two finite tropical weights, saturating at the ±tropInf
// sentinels so the result never escapes the carrier's domain: a sum at or
// above tropInf becomes ∞, a sum at or below −tropInf becomes −∞. Both
// tropical Muls route through this, which keeps their sentinels absorbing
// and exact for arbitrary (even adversarially large) finite inputs.
func satAdd(a, b int64) int64 {
	s := a + b
	if s >= tropInf {
		return tropInf
	}
	if s <= -tropInf {
		return -tropInf
	}
	return s
}

// MinPlus is the tropical semiring (ℤ ∪ {∞}, min, +). A join-aggregate
// query under MinPlus computes, per output group, the minimum total weight
// of any join result — e.g. shortest path lengths when the query is a line
// query over edge relations. Idempotent.
type MinPlus struct{}

// Inf returns the additive identity ("+∞") sentinel.
func (MinPlus) Inf() int64  { return tropInf }
func (MinPlus) Zero() int64 { return tropInf }
func (MinPlus) One() int64  { return 0 }

func (MinPlus) Add(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Mul is saturating addition so that ∞ ⊗ a = ∞ exactly. Saturation also
// applies to finite sums that reach the sentinel range: without it, a sum
// crossing tropInf would compare above the canonical ∞ and lose an
// Add(∞, ·) to the identity (x ⊕ 0̄ must return x), and deep Mul chains
// could wrap around int64. Results always stay in [−tropInf, tropInf].
func (MinPlus) Mul(a, b int64) int64 {
	if a >= tropInf || b >= tropInf {
		return tropInf
	}
	return satAdd(a, b)
}

func (MinPlus) Equal(a, b int64) bool { return a == b }
func (MinPlus) IdempotentAdd() bool   { return true }

// MaxPlus is the tropical semiring (ℤ ∪ {−∞}, max, +), computing the
// maximum-weight join result per group (e.g. critical paths). Idempotent.
type MaxPlus struct{}

// NegInf returns the additive identity ("−∞") sentinel.
func (MaxPlus) NegInf() int64 { return -tropInf }
func (MaxPlus) Zero() int64   { return -tropInf }
func (MaxPlus) One() int64    { return 0 }

func (MaxPlus) Add(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mul is saturating addition so that −∞ ⊗ a = −∞ exactly. The finite-sum
// clamp matters here too: two large negative weights would otherwise sum
// below the −∞ sentinel and lose an Add(·, −∞) to the additive identity.
func (MaxPlus) Mul(a, b int64) int64 {
	if a <= -tropInf || b <= -tropInf {
		return -tropInf
	}
	return satAdd(a, b)
}

func (MaxPlus) Equal(a, b int64) bool { return a == b }
func (MaxPlus) IdempotentAdd() bool   { return true }

// MaxMin is the bottleneck semiring (ℤ ∪ {±∞}, max, min): the annotation of
// a group is the widest bottleneck over its join results (maximum over
// results of the minimum annotation along the result). Idempotent in both
// operations.
type MaxMin struct{}

func (MaxMin) Zero() int64 { return -tropInf }
func (MaxMin) One() int64  { return tropInf }

func (MaxMin) Add(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func (MaxMin) Mul(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func (MaxMin) Equal(a, b int64) bool { return a == b }
func (MaxMin) IdempotentAdd() bool   { return true }

// ---------------------------------------------------------------------------
// Why-provenance: sets of witness sets. Idempotent.
// ---------------------------------------------------------------------------

// Witness identifies a base tuple contributing to a derivation. Callers
// assign each base tuple a distinct Witness id.
type Witness uint32

// WitnessSet is a sorted, duplicate-free set of Witness ids: one minimal
// derivation ("proof") of an output tuple.
type WitnessSet []Witness

// Provenance is a why-provenance annotation: a set of witness sets, kept
// sorted and duplicate-free so equal annotations have equal representations.
type Provenance []WitnessSet

// WhyProvenance is the semiring of why-provenance (Green et al., PODS'07):
// ⊕ is union of witness-set families, ⊗ is pairwise union of witness sets.
// Zero is the empty family; One is the family containing only the empty
// witness set. It is idempotent, and annotations grow with the number of
// derivations, which makes it a deliberately heavy-weight stress test for
// the engine's "annotations are opaque" discipline.
type WhyProvenance struct{}

// Why constructs the provenance annotation of a base tuple with the given
// witness id: {{w}}.
func Why(w Witness) Provenance { return Provenance{WitnessSet{w}} }

func (WhyProvenance) Zero() Provenance { return nil }
func (WhyProvenance) One() Provenance  { return Provenance{WitnessSet{}} }

// Add returns the union of the two families, deduplicated.
func (WhyProvenance) Add(a, b Provenance) Provenance {
	merged := make(Provenance, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch compareWitnessSets(a[i], b[j]) {
		case -1:
			merged = append(merged, a[i])
			i++
		case 1:
			merged = append(merged, b[j])
			j++
		default:
			merged = append(merged, a[i])
			i++
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	if len(merged) == 0 {
		return nil
	}
	return merged
}

// Mul returns { s ∪ t : s ∈ a, t ∈ b }, normalized.
func (WhyProvenance) Mul(a, b Provenance) Provenance {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make(Provenance, 0, len(a)*len(b))
	for _, s := range a {
		for _, t := range b {
			out = append(out, unionWitnessSets(s, t))
		}
	}
	return normalizeProvenance(out)
}

func (WhyProvenance) Equal(a, b Provenance) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if compareWitnessSets(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func (WhyProvenance) IdempotentAdd() bool { return true }

func unionWitnessSets(s, t WitnessSet) WitnessSet {
	out := make(WitnessSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// compareWitnessSets orders witness sets first by length, then
// lexicographically, giving Provenance a canonical sorted form.
func compareWitnessSets(s, t WitnessSet) int {
	if len(s) != len(t) {
		if len(s) < len(t) {
			return -1
		}
		return 1
	}
	for i := range s {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func normalizeProvenance(p Provenance) Provenance {
	if len(p) <= 1 {
		return p
	}
	sortProvenance(p)
	out := p[:1]
	for _, ws := range p[1:] {
		if compareWitnessSets(out[len(out)-1], ws) != 0 {
			out = append(out, ws)
		}
	}
	return out
}

func sortProvenance(p Provenance) {
	// Insertion sort is adequate: provenance families in tests are small,
	// and keeping this dependency-free avoids pulling sort into the hot
	// path for other semirings.
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && compareWitnessSets(p[j], p[j-1]) < 0; j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// ---------------------------------------------------------------------------
// GF(2)-like parity semiring? Not a semiring use-case here; instead provide
// the "access control" / security semiring, a small total-order example.
// ---------------------------------------------------------------------------

// Clearance levels for the Security semiring, ordered from most permissive
// to most restrictive.
const (
	Public    uint8 = 0
	Internal  uint8 = 1
	Secret    uint8 = 2
	TopSecret uint8 = 3
	// Denied is the Zero of the Security semiring: no clearance suffices.
	Denied uint8 = 4
)

// Security is the access-control semiring (min, max) over clearance levels:
// the clearance needed for a join result is the max over its inputs, and
// the clearance needed for an output group is the min over its derivations
// (any one derivation suffices). Idempotent.
type Security struct{}

func (Security) Zero() uint8 { return Denied }
func (Security) One() uint8  { return Public }

func (Security) Add(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

func (Security) Mul(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func (Security) Equal(a, b uint8) bool { return a == b }
func (Security) IdempotentAdd() bool   { return true }
