package semiring

import (
	"math/rand"
	"testing"
)

// Property tests for the tropical sentinels: the ±tropInf infinities must
// be absorbing and exact under ⊗ for every weight in the carrier domain
// [−tropInf, tropInf], including weights adjacent to the sentinels where
// an unsaturated sum would escape the domain (the historical bug: two
// large finite MaxPlus weights summed below −∞ and then lost an ⊕ against
// the additive identity).

// tropicalWeights draws weights covering the whole domain: small values,
// negatives, the sentinels themselves, and values within a few units of
// ±tropInf where saturation must kick in.
func tropicalWeights(rng *rand.Rand, n int) []int64 {
	ws := []int64{
		0, 1, -1, 7, -7, 1 << 20, -(1 << 20),
		tropInf, -tropInf,
		tropInf - 1, tropInf - 2, -tropInf + 1, -tropInf + 2,
		tropInf / 2, -tropInf / 2, tropInf/2 + 3, -tropInf/2 - 3,
	}
	for i := 0; i < n; i++ {
		// Uniform over the full domain; about half land in the "large"
		// half where pairwise sums saturate.
		ws = append(ws, rng.Int63n(2*tropInf+1)-tropInf)
	}
	return ws
}

func inDomain(x int64) bool { return -tropInf <= x && x <= tropInf }

func TestMinPlusSentinelAbsorbingAndExact(t *testing.T) {
	sr := MinPlus{}
	ws := tropicalWeights(rand.New(rand.NewSource(1)), 200)
	for _, a := range ws {
		// ∞ is absorbing and exact: ∞ ⊗ a = ∞ bit-for-bit, both sides.
		if got := sr.Mul(sr.Inf(), a); got != sr.Inf() {
			t.Fatalf("MinPlus: Inf ⊗ %d = %d, want Inf", a, got)
		}
		if got := sr.Mul(a, sr.Inf()); got != sr.Inf() {
			t.Fatalf("MinPlus: %d ⊗ Inf = %d, want Inf", a, got)
		}
		// One is the multiplicative identity on the whole domain.
		if got := sr.Mul(sr.One(), a); got != a {
			t.Fatalf("MinPlus: One ⊗ %d = %d, want %d", a, got, a)
		}
		// Zero (= ∞) is the additive identity: x ⊕ 0̄ = x. This is the law
		// an unsaturated product used to break: a finite sum past tropInf
		// compared above ∞ and vanished here.
		for _, b := range ws {
			m := sr.Mul(a, b)
			if !inDomain(m) {
				t.Fatalf("MinPlus: %d ⊗ %d = %d escapes [−Inf, Inf]", a, b, m)
			}
			if got := sr.Add(m, sr.Zero()); got != m {
				t.Fatalf("MinPlus: (%d ⊗ %d) ⊕ Zero = %d, want %d", a, b, got, m)
			}
			if m != sr.Mul(b, a) {
				t.Fatalf("MinPlus: ⊗ not commutative at (%d, %d)", a, b)
			}
		}
	}
}

func TestMaxPlusSentinelAbsorbingAndExact(t *testing.T) {
	sr := MaxPlus{}
	ws := tropicalWeights(rand.New(rand.NewSource(2)), 200)
	for _, a := range ws {
		if got := sr.Mul(sr.NegInf(), a); got != sr.NegInf() {
			t.Fatalf("MaxPlus: NegInf ⊗ %d = %d, want NegInf", a, got)
		}
		if got := sr.Mul(a, sr.NegInf()); got != sr.NegInf() {
			t.Fatalf("MaxPlus: %d ⊗ NegInf = %d, want NegInf", a, got)
		}
		if got := sr.Mul(sr.One(), a); got != a {
			t.Fatalf("MaxPlus: One ⊗ %d = %d, want %d", a, got, a)
		}
		for _, b := range ws {
			// The underflow case: a, b near −tropInf sum below the −∞
			// sentinel unless Mul saturates; the product must stay in
			// domain and must still win an ⊕ against the identity.
			m := sr.Mul(a, b)
			if !inDomain(m) {
				t.Fatalf("MaxPlus: %d ⊗ %d = %d escapes [−Inf, Inf]", a, b, m)
			}
			if got := sr.Add(m, sr.Zero()); got != m {
				t.Fatalf("MaxPlus: (%d ⊗ %d) ⊕ Zero = %d, want %d", a, b, got, m)
			}
			if m != sr.Mul(b, a) {
				t.Fatalf("MaxPlus: ⊗ not commutative at (%d, %d)", a, b)
			}
		}
	}
}

func TestMaxMinIdentityComposition(t *testing.T) {
	sr := MaxMin{}
	ws := tropicalWeights(rand.New(rand.NewSource(3)), 200)
	for _, a := range ws {
		// One (= +∞) composes as the identity: min(+∞, a) = a.
		if got := sr.Mul(sr.One(), a); got != a {
			t.Fatalf("MaxMin: One ⊗ %d = %d, want %d", a, got, a)
		}
		if got := sr.Mul(a, sr.One()); got != a {
			t.Fatalf("MaxMin: %d ⊗ One = %d, want %d", a, got, a)
		}
		// Zero (= −∞) is absorbing under ⊗ and the identity under ⊕.
		if got := sr.Mul(sr.Zero(), a); got != sr.Zero() {
			t.Fatalf("MaxMin: Zero ⊗ %d = %d, want Zero", a, got)
		}
		if got := sr.Add(sr.Zero(), a); got != a {
			t.Fatalf("MaxMin: Zero ⊕ %d = %d, want %d", a, got, a)
		}
		// Identity composition along a chain: bottlenecking through +∞
		// never changes the bottleneck; min/max are closed on the domain.
		for _, b := range ws {
			lhs := sr.Mul(sr.Mul(a, sr.One()), b)
			if rhs := sr.Mul(a, b); lhs != rhs {
				t.Fatalf("MaxMin: (a ⊗ One) ⊗ b = %d, want %d at (%d, %d)", lhs, rhs, a, b)
			}
			if m := sr.Mul(a, b); !inDomain(m) {
				t.Fatalf("MaxMin: %d ⊗ %d = %d escapes the domain", a, b, m)
			}
		}
	}
}

// TestTropicalDistributivity pins ⊗ distributing over ⊕ on the saturated
// domain — the law join-aggregate correctness rests on.
func TestTropicalDistributivity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ws := tropicalWeights(rng, 60)
	type ring struct {
		name string
		add  func(a, b int64) int64
		mul  func(a, b int64) int64
	}
	rings := []ring{
		{"minplus", MinPlus{}.Add, MinPlus{}.Mul},
		{"maxplus", MaxPlus{}.Add, MaxPlus{}.Mul},
		{"maxmin", MaxMin{}.Add, MaxMin{}.Mul},
	}
	for _, r := range rings {
		for i := 0; i < 4000; i++ {
			a, b, c := ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))], ws[rng.Intn(len(ws))]
			lhs := r.mul(a, r.add(b, c))
			rhs := r.add(r.mul(a, b), r.mul(a, c))
			if lhs != rhs {
				t.Fatalf("%s: a ⊗ (b ⊕ c) = %d but (a⊗b) ⊕ (a⊗c) = %d at (%d, %d, %d)", r.name, lhs, rhs, a, b, c)
			}
		}
	}
}
