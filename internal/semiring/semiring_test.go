package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// checkLaws verifies the commutative-semiring axioms for s on values drawn
// by gen. eq must be a semantic equality test.
func checkLaws[W any](t *testing.T, name string, s Semiring[W], eq func(a, b W) bool, gen func(r *rand.Rand) W) {
	t.Helper()
	r := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 500; i++ {
		a, b, c := gen(r), gen(r), gen(r)

		if !eq(s.Add(a, b), s.Add(b, a)) {
			t.Fatalf("%s: ⊕ not commutative on %v, %v", name, a, b)
		}
		if !eq(s.Mul(a, b), s.Mul(b, a)) {
			t.Fatalf("%s: ⊗ not commutative on %v, %v", name, a, b)
		}
		if !eq(s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c))) {
			t.Fatalf("%s: ⊕ not associative on %v, %v, %v", name, a, b, c)
		}
		if !eq(s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c))) {
			t.Fatalf("%s: ⊗ not associative on %v, %v, %v", name, a, b, c)
		}
		if !eq(s.Add(a, s.Zero()), a) {
			t.Fatalf("%s: Zero not ⊕-identity on %v", name, a)
		}
		if !eq(s.Mul(a, s.One()), a) {
			t.Fatalf("%s: One not ⊗-identity on %v", name, a)
		}
		if !eq(s.Mul(a, s.Zero()), s.Zero()) {
			t.Fatalf("%s: Zero not annihilating on %v", name, a)
		}
		if !eq(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c))) {
			t.Fatalf("%s: ⊗ does not distribute over ⊕ on %v, %v, %v", name, a, b, c)
		}
	}
}

func checkIdempotent[W any](t *testing.T, name string, s Semiring[W], eq func(a, b W) bool, gen func(r *rand.Rand) W) {
	t.Helper()
	r := rand.New(rand.NewSource(0xfeed))
	for i := 0; i < 200; i++ {
		a := gen(r)
		if !eq(s.Add(a, a), a) {
			t.Fatalf("%s: ⊕ not idempotent on %v", name, a)
		}
	}
}

func TestIntSumProdLaws(t *testing.T) {
	s := IntSumProd{}
	// Bounded values so products of three factors cannot overflow int64.
	gen := func(r *rand.Rand) int64 { return r.Int63n(1<<20) - 1<<19 }
	checkLaws[int64](t, "IntSumProd", s, s.Equal, gen)
}

func TestFloatSumProdLaws(t *testing.T) {
	s := FloatSumProd{}
	// Powers of two make float arithmetic exact, so associativity holds
	// bit-for-bit and the laws can be checked with plain equality.
	gen := func(r *rand.Rand) float64 {
		return float64(int64(1) << r.Intn(20))
	}
	checkLaws[float64](t, "FloatSumProd", s, func(a, b float64) bool { return a == b }, gen)
}

func TestBoolOrAndLaws(t *testing.T) {
	s := BoolOrAnd{}
	gen := func(r *rand.Rand) bool { return r.Intn(2) == 0 }
	checkLaws[bool](t, "BoolOrAnd", s, s.Equal, gen)
	checkIdempotent[bool](t, "BoolOrAnd", s, s.Equal, gen)
}

func genTropical(r *rand.Rand) int64 {
	switch r.Intn(8) {
	case 0:
		return tropInf
	case 1:
		return -tropInf
	default:
		return r.Int63n(2000) - 1000
	}
}

func TestMinPlusLaws(t *testing.T) {
	s := MinPlus{}
	// Draw from non-negative weights plus the +∞ sentinel; MinPlus's
	// carrier is ℤ∪{∞}, so −∞ is excluded.
	gen := func(r *rand.Rand) int64 {
		if r.Intn(8) == 0 {
			return tropInf
		}
		return r.Int63n(2000)
	}
	checkLaws[int64](t, "MinPlus", s, s.Equal, gen)
	checkIdempotent[int64](t, "MinPlus", s, s.Equal, gen)
}

func TestMaxPlusLaws(t *testing.T) {
	s := MaxPlus{}
	gen := func(r *rand.Rand) int64 {
		if r.Intn(8) == 0 {
			return -tropInf
		}
		return r.Int63n(2000)
	}
	checkLaws[int64](t, "MaxPlus", s, s.Equal, gen)
	checkIdempotent[int64](t, "MaxPlus", s, s.Equal, gen)
}

func TestMaxMinLaws(t *testing.T) {
	s := MaxMin{}
	checkLaws[int64](t, "MaxMin", s, s.Equal, genTropical)
	checkIdempotent[int64](t, "MaxMin", s, s.Equal, genTropical)
}

func TestSecurityLaws(t *testing.T) {
	s := Security{}
	gen := func(r *rand.Rand) uint8 { return uint8(r.Intn(5)) }
	checkLaws[uint8](t, "Security", s, s.Equal, gen)
	checkIdempotent[uint8](t, "Security", s, s.Equal, gen)
}

func genProvenance(r *rand.Rand) Provenance {
	s := WhyProvenance{}
	n := r.Intn(4)
	p := s.Zero()
	for i := 0; i < n; i++ {
		k := r.Intn(3) + 1
		ws := make(WitnessSet, 0, k)
		for j := 0; j < k; j++ {
			ws = append(ws, Witness(r.Intn(8)))
		}
		// Normalize the random witness set through the semiring ops.
		one := Provenance{WitnessSet{}}
		for _, w := range ws {
			one = s.Mul(one, Why(w))
		}
		p = s.Add(p, one)
	}
	return p
}

func TestWhyProvenanceLaws(t *testing.T) {
	s := WhyProvenance{}
	checkLaws[Provenance](t, "WhyProvenance", s, s.Equal, genProvenance)
	checkIdempotent[Provenance](t, "WhyProvenance", s, s.Equal, genProvenance)
}

func TestWhyProvenanceBasics(t *testing.T) {
	s := WhyProvenance{}
	a, b, c := Why(1), Why(2), Why(3)

	ab := s.Mul(a, b)
	want := Provenance{WitnessSet{1, 2}}
	if !s.Equal(ab, want) {
		t.Fatalf("Mul(Why(1), Why(2)) = %v, want %v", ab, want)
	}

	sum := s.Add(ab, c)
	want = Provenance{WitnessSet{3}, WitnessSet{1, 2}}
	if !s.Equal(sum, want) {
		t.Fatalf("Add = %v, want %v", sum, want)
	}

	// (a⊗b) ⊕ (a⊗b) = a⊗b — idempotence keeps derivation sets small.
	if !s.Equal(s.Add(ab, ab), ab) {
		t.Fatalf("Add not idempotent on %v", ab)
	}

	// Multiplying overlapping witness sets unions them without duplicates.
	aa := s.Mul(ab, a)
	if !s.Equal(aa, ab) {
		t.Fatalf("Mul({1,2},{1}) = %v, want %v", aa, ab)
	}
}

func TestIsIdempotent(t *testing.T) {
	if IsIdempotent(IntSumProd{}) {
		t.Fatal("IntSumProd must not be idempotent")
	}
	if IsIdempotent(FloatSumProd{}) {
		t.Fatal("FloatSumProd must not be idempotent")
	}
	for _, s := range []any{BoolOrAnd{}, MinPlus{}, MaxPlus{}, MaxMin{}, WhyProvenance{}, Security{}} {
		if !IsIdempotent(s) {
			t.Fatalf("%T must be idempotent", s)
		}
	}
}

func TestTropicalSentinels(t *testing.T) {
	mp := MinPlus{}
	if got := mp.Mul(mp.Inf(), 5); got != mp.Inf() {
		t.Fatalf("∞ ⊗ 5 = %d, want ∞", got)
	}
	if got := mp.Add(mp.Inf(), 5); got != 5 {
		t.Fatalf("min(∞, 5) = %d, want 5", got)
	}
	xp := MaxPlus{}
	if got := xp.Mul(xp.NegInf(), 5); got != xp.NegInf() {
		t.Fatalf("−∞ ⊗ 5 = %d, want −∞", got)
	}
	if got := xp.Add(xp.NegInf(), 5); got != 5 {
		t.Fatalf("max(−∞, 5) = %d, want 5", got)
	}
}

// TestQuickProvenanceAbsorption uses testing/quick to check the absorption-
// free property indirectly: Add and Mul never produce unsorted or duplicate
// families, i.e. normalization is a fixpoint.
func TestQuickProvenanceAbsorption(t *testing.T) {
	s := WhyProvenance{}
	isNormal := func(p Provenance) bool {
		for i := 1; i < len(p); i++ {
			if compareWitnessSets(p[i-1], p[i]) >= 0 {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genProvenance(r), genProvenance(r)
		return isNormal(s.Add(a, b)) && isNormal(s.Mul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
