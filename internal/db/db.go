// Package db defines the instance type shared by every engine: a binding
// from the relation symbols (edge names) of a hypergraph query to annotated
// relations, plus structural validation and size accounting.
package db

import (
	"fmt"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
)

// Instance binds each edge name of a query to its relation.
type Instance[W any] map[string]*relation.Relation[W]

// Validate checks that inst provides exactly one relation per query edge
// and that each relation's schema carries the edge's attributes (in any
// order).
func Validate[W any](q *hypergraph.Query, inst Instance[W]) error {
	if len(inst) != len(q.Edges) {
		return fmt.Errorf("db: instance has %d relations, query has %d edges", len(inst), len(q.Edges))
	}
	for _, e := range q.Edges {
		r, ok := inst[e.Name]
		if !ok {
			return fmt.Errorf("db: no relation bound to edge %q", e.Name)
		}
		if r.Arity() != len(e.Attrs) {
			return fmt.Errorf("db: relation %q has arity %d, edge has %d attributes", e.Name, r.Arity(), len(e.Attrs))
		}
		for _, a := range e.Attrs {
			if !r.Has(a) {
				return fmt.Errorf("db: relation %q lacks attribute %q", e.Name, a)
			}
		}
	}
	return nil
}

// InputSize returns N = Σ_e |R_e|.
func InputSize[W any](inst Instance[W]) int {
	n := 0
	for _, r := range inst {
		n += r.Len()
	}
	return n
}

// MaxRelationSize returns max_e |R_e|.
func MaxRelationSize[W any](inst Instance[W]) int {
	m := 0
	for _, r := range inst {
		if r.Len() > m {
			m = r.Len()
		}
	}
	return m
}

// Clone deep-copies the instance.
func Clone[W any](inst Instance[W]) Instance[W] {
	out := make(Instance[W], len(inst))
	for k, v := range inst {
		out[k] = v.Clone()
	}
	return out
}
