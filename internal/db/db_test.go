package db

import (
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
)

func inst() (Instance[int64], *hypergraph.Query) {
	q := hypergraph.MatMulQuery()
	r1 := relation.New[int64]("A", "B")
	r1.Append(1, 1, 2)
	r2 := relation.New[int64]("B", "C")
	r2.Append(1, 2, 3)
	r2.Append(1, 2, 4)
	return Instance[int64]{"R1": r1, "R2": r2}, q
}

func TestValidateOK(t *testing.T) {
	i, q := inst()
	if err := Validate(q, i); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	i, q := inst()

	missing := Instance[int64]{"R1": i["R1"]}
	if err := Validate(q, missing); err == nil {
		t.Fatal("missing relation must fail")
	}

	extra := Instance[int64]{"R1": i["R1"], "R2": i["R2"], "R3": i["R1"]}
	if err := Validate(q, extra); err == nil {
		t.Fatal("extra relation must fail")
	}

	misnamed := Instance[int64]{"R1": i["R1"], "RX": i["R2"]}
	if err := Validate(q, misnamed); err == nil {
		t.Fatal("misnamed relation must fail")
	}

	wrongArity := Instance[int64]{"R1": i["R1"], "R2": relation.New[int64]("B")}
	if err := Validate(q, wrongArity); err == nil {
		t.Fatal("wrong arity must fail")
	}

	wrongAttr := Instance[int64]{"R1": i["R1"], "R2": relation.New[int64]("B", "Z")}
	if err := Validate(q, wrongAttr); err == nil {
		t.Fatal("wrong attribute must fail")
	}
}

func TestSizes(t *testing.T) {
	i, _ := inst()
	if InputSize(i) != 3 {
		t.Fatalf("InputSize = %d", InputSize(i))
	}
	if MaxRelationSize(i) != 2 {
		t.Fatalf("MaxRelationSize = %d", MaxRelationSize(i))
	}
}

func TestCloneIsDeep(t *testing.T) {
	i, _ := inst()
	c := Clone(i)
	c["R1"].Append(9, 7, 7)
	if i["R1"].Len() == c["R1"].Len() {
		t.Fatal("clone shares storage")
	}
	c["R2"].Rows[0].W = 99
	if i["R2"].Rows[0].W == 99 {
		t.Fatal("clone shares rows")
	}
}
