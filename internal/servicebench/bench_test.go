package servicebench

import (
	"testing"
	"time"
)

// TestRunSmoke runs the full scenario set at a tiny scale: the report
// must be structurally complete and the snapshot-read invariant (zero
// failed queries under registration churn) must hold even here.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping service bench smoke in -short mode")
	}
	// DatasetN is sized so a single execution takes tens of milliseconds:
	// the flood scenario needs executions long enough for concurrent
	// arrivals to pile up at admission (a too-cheap query drains as fast
	// as a single CPU can offer load and nothing ever sheds).
	rep, err := Run(Options{
		Duration:   400 * time.Millisecond,
		Workers:    4,
		Population: 16,
		DatasetN:   1600,
		DatasetDom: 40,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 5 {
		t.Fatalf("scenarios = %d, want 5", len(rep.Scenarios))
	}
	names := map[string]Scenario{}
	for _, sc := range rep.Scenarios {
		names[sc.Name] = sc
		if sc.Requests == 0 || sc.Completed == 0 {
			t.Fatalf("scenario %s saw no traffic: %+v", sc.Name, sc)
		}
		if sc.P99NS < sc.P50NS {
			t.Fatalf("scenario %s: p99 < p50: %+v", sc.Name, sc)
		}
	}
	for _, want := range []string{"cold", "warm", "register-churn", "flood-solo", "flood"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing scenario %s in %v", want, rep.Scenarios)
		}
	}
	if names["cold"].CacheHits != 0 {
		t.Fatalf("cold scenario hit the cache: %+v", names["cold"])
	}
	if names["warm"].CacheHits == 0 {
		t.Fatalf("warm scenario never hit the cache: %+v", names["warm"])
	}
	if rep.RegisterChurnFailed != 0 {
		t.Fatalf("register churn failed %d queries, want 0", rep.RegisterChurnFailed)
	}
	if rep.CacheP99SpeedupX <= 0 || rep.CacheQPSGainX <= 0 {
		t.Fatalf("cache derived numbers missing: %+v", rep)
	}
	if names["flood"].Shed == 0 {
		t.Fatalf("flood scenario shed nothing: %+v", names["flood"])
	}
	if rep.FloodQuietP99RatioX <= 0 {
		t.Fatalf("flood quiet ratio missing: %+v", rep)
	}
}
