// Package servicebench is the closed-loop load generator for the serving
// plane (mpcbench -service): it boots an in-process mpcd server, drives
// it over real HTTP with Zipf-popular queries and multi-tenant profiles,
// and reports latency percentiles, throughput, cache hit ratio and shed
// rate per scenario.
//
// The scenario set mirrors the serving plane's claims:
//
//   - cold: every request executes (cache bypass) — the no-cache baseline.
//   - warm: the same Zipf-popular workload with the cache on — repeats are
//     served from the result cache and concurrent identical misses
//     coalesce, so hit latency and throughput measure the cache path.
//   - register-churn: the warm workload while the queried dataset is
//     continuously re-registered — snapshot reads mean zero failed
//     queries, at the price of cache invalidations.
//   - flood-solo: a quiet tenant alone, uncached — its baseline p99.
//   - flood: the same quiet tenant while a noisy tenant floods beyond its
//     queue share — weighted-fair admission must keep the quiet tenant's
//     p99 close to solo while the noisy tenant is shed.
//
// All percentiles are end-to-end client latencies (queueing included);
// throughput counts successful responses only.
package servicebench

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"mpcjoin/internal/server"
)

// Options sizes a benchmark run. Zero values take the defaults noted on
// each field.
type Options struct {
	// Duration is the wall budget per scenario (default 2s).
	Duration time.Duration
	// Workers is the closed-loop client count (default 8).
	Workers int
	// Population is the number of distinct query identities the Zipf
	// draw ranges over (default 64).
	Population int
	// ZipfS is the Zipf skew parameter s > 1 (default 1.2): popular
	// queries repeat, unpopular ones stay cold.
	ZipfS float64
	// Seed drives the generators (default 1).
	Seed int64
	// DatasetN and DatasetDom size the benchmark dataset (default 2000
	// rows over domain 50 — a join that costs real engine time, so the
	// cache path's advantage is measured against genuine work).
	DatasetN   int
	DatasetDom int
	// Capacity, TenantQueue size the flood scenarios' admission plane
	// (defaults 1 and 3). Capacity 1 serializes engine executions, so the
	// quiet tenant's flood latency isolates queueing policy from CPU
	// contention between concurrent executions.
	Capacity    int64
	TenantQueue int
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Population <= 0 {
		o.Population = 64
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DatasetN <= 0 {
		o.DatasetN = 2000
	}
	if o.DatasetDom <= 0 {
		o.DatasetDom = 50
	}
	if o.Capacity <= 0 {
		o.Capacity = 1
	}
	if o.TenantQueue <= 0 {
		o.TenantQueue = 3
	}
	return o
}

// Scenario is one scenario's measured outcome. Latencies are nanoseconds.
type Scenario struct {
	Name      string  `json:"name"`
	Requests  int64   `json:"requests"`
	Completed int64   `json:"completed"`
	CacheHits int64   `json:"cache_hits"`
	Coalesced int64   `json:"coalesced"`
	Shed      int64   `json:"shed"`
	Failed    int64   `json:"failed"`
	QPS       float64 `json:"qps"`
	HitRatio  float64 `json:"hit_ratio"`
	ShedRate  float64 `json:"shed_rate"`
	P50NS     int64   `json:"p50_ns"`
	P99NS     int64   `json:"p99_ns"`
	// Hit/Miss percentiles split the latency distribution by serving
	// path (zero when the path did not occur).
	HitP50NS  int64 `json:"hit_p50_ns,omitempty"`
	HitP99NS  int64 `json:"hit_p99_ns,omitempty"`
	MissP50NS int64 `json:"miss_p50_ns,omitempty"`
	MissP99NS int64 `json:"miss_p99_ns,omitempty"`
	// QuietP50NS/QuietP99NS are the quiet tenant's own percentiles in
	// the flood scenarios.
	QuietP50NS int64 `json:"quiet_p50_ns,omitempty"`
	QuietP99NS int64 `json:"quiet_p99_ns,omitempty"`
}

// Report is the full benchmark output (BENCH_service.json).
type Report struct {
	Scenarios []Scenario `json:"scenarios"`
	// CacheP99SpeedupX is cold p99 / warm hit p99: how much faster the
	// 99th-percentile cached answer is than executing.
	CacheP99SpeedupX float64 `json:"cache_p99_speedup_x"`
	// CacheQPSGainX is warm QPS / cold QPS at identical offered load.
	CacheQPSGainX float64 `json:"cache_qps_gain_x"`
	// RegisterChurnFailed counts queries that failed while the dataset
	// was being re-registered under load (the snapshot-read invariant
	// demands zero).
	RegisterChurnFailed int64 `json:"register_churn_failed"`
	// FloodQuietP99RatioX is the quiet tenant's flood p99 / solo p99:
	// per-tenant fairness should keep it near 1.
	FloodQuietP99RatioX float64 `json:"flood_quiet_p99_ratio_x"`
	// FloodShedRate is the noisy tenant's shed fraction during the flood.
	FloodShedRate float64 `json:"flood_shed_rate"`
}

// tally accumulates one scenario's measurements across client workers.
type tally struct {
	mu        sync.Mutex
	requests  int64
	completed int64
	hits      int64
	coalesced int64
	shed      int64
	failed    int64
	all       []time.Duration
	hit       []time.Duration
	miss      []time.Duration
	quiet     []time.Duration
}

func (c *tally) record(d time.Duration, status int, body string, quietTenant bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	switch {
	case status == http.StatusOK:
		c.completed++
		c.all = append(c.all, d)
		if quietTenant {
			c.quiet = append(c.quiet, d)
		}
		if strings.Contains(body, `"cached":true`) {
			c.hits++
			c.hit = append(c.hit, d)
		} else {
			c.miss = append(c.miss, d)
			if strings.Contains(body, `"coalesced":true`) {
				c.coalesced++
			}
		}
	case status == http.StatusTooManyRequests:
		c.shed++
	default:
		c.failed++
	}
}

func (c *tally) scenario(name string, elapsed time.Duration) Scenario {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Scenario{
		Name:      name,
		Requests:  c.requests,
		Completed: c.completed,
		CacheHits: c.hits,
		Coalesced: c.coalesced,
		Shed:      c.shed,
		Failed:    c.failed,
		P50NS:     pct(c.all, 0.50).Nanoseconds(),
		P99NS:     pct(c.all, 0.99).Nanoseconds(),
		HitP50NS:  pct(c.hit, 0.50).Nanoseconds(),
		HitP99NS:  pct(c.hit, 0.99).Nanoseconds(),
		MissP50NS: pct(c.miss, 0.50).Nanoseconds(),
		MissP99NS: pct(c.miss, 0.99).Nanoseconds(),
	}
	if len(c.quiet) > 0 {
		s.QuietP50NS = pct(c.quiet, 0.50).Nanoseconds()
		s.QuietP99NS = pct(c.quiet, 0.99).Nanoseconds()
	}
	if elapsed > 0 {
		s.QPS = float64(c.completed) / elapsed.Seconds()
	}
	if c.completed > 0 {
		s.HitRatio = float64(c.hits) / float64(c.completed)
	}
	if c.requests > 0 {
		s.ShedRate = float64(c.shed) / float64(c.requests)
	}
	return s
}

// pct returns the p-th percentile (0 < p <= 1) by nearest-rank over a
// copy of ds; zero when empty.
func pct(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// bench is one booted server under test plus the client plumbing.
type bench struct {
	opts   Options
	srv    *server.Server
	ts     *httptest.Server
	client *http.Client
}

func newBench(opts Options, cfg server.Config) (*bench, error) {
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	b := &bench{
		opts: opts,
		srv:  srv,
		ts:   ts,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * opts.Workers,
			MaxIdleConnsPerHost: 4 * opts.Workers,
		}},
	}
	// E is the benchmark dataset; N is a quarter-size sibling the flood's
	// noisy tenant queries, so noisy executions are cheap relative to the
	// quiet tenant's and the quiet tenant's head-of-line wait (at most one
	// in-flight noisy execution, with capacity 1) stays small.
	for name, n := range map[string]int{"E": opts.DatasetN, "N": opts.DatasetN / 4} {
		if n < 16 {
			n = 16
		}
		body := fmt.Sprintf(`{"name":%q,"arity":2,"generate":{"n":%d,"dom":%d,"seed":42}}`, name, n, opts.DatasetDom)
		if status, out := b.post("", "/v1/datasets", body); status != http.StatusOK {
			ts.Close()
			return nil, fmt.Errorf("servicebench: registering dataset %s: %d %s", name, status, out)
		}
	}
	return b, nil
}

func (b *bench) close() { b.ts.Close() }

func (b *bench) post(tenant, path, body string) (int, string) {
	req, err := http.NewRequest(http.MethodPost, b.ts.URL+path, strings.NewReader(body))
	if err != nil {
		return 0, err.Error()
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-MPC-Tenant", tenant)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// queryBody renders the benchmark query for one identity (seed) and
// cache mode. The seed changes the engine's hash partitioning — results
// are equivalent, cache keys distinct — so the Zipf draw over seeds
// models a population of distinct-but-repeating queries.
func queryBody(seed uint64, mode string) string { return queryBodyOn("E", seed, mode) }

func queryBodyOn(ds string, seed uint64, mode string) string {
	opts := fmt.Sprintf(`"seed":%d`, seed)
	if mode != "" {
		opts += fmt.Sprintf(`,"cache":%q`, mode)
	}
	return fmt.Sprintf(`{"relations":[{"name":"R1","attrs":["A","B"],"dataset":%q},{"name":"R2","attrs":["B","C"],"dataset":%q}],"group_by":["A"],"options":{%s}}`, ds, ds, opts)
}

// shedBackoff is how long a closed-loop worker waits after a 429 before
// retrying — the standard client reaction to admission shedding. Without
// it the shed workers spin on decode-and-reject, which on a small machine
// steals CPU from admitted executions and distorts the latency split the
// flood scenario measures.
const shedBackoff = 50 * time.Millisecond

// closedLoop runs workers posting queries until the deadline. newPick is
// called once per worker with its private rng and returns the per-request
// generator of (tenant, body) pairs.
func (b *bench) closedLoop(workers int, d time.Duration, c *tally, newPick func(rng *rand.Rand) func() (tenant, body string)) {
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(b.opts.Seed + int64(w)*7919))
			pick := newPick(rng)
			for time.Now().Before(deadline) {
				tenant, body := pick()
				t0 := time.Now()
				status, out := b.post(tenant, "/v2/query", body)
				c.record(time.Since(t0), status, out, tenant == "quiet")
				if status == http.StatusTooManyRequests {
					time.Sleep(shedBackoff)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Run executes the full scenario set and derives the report.
func Run(opts Options, progress func(format string, args ...any)) (*Report, error) {
	opts = opts.withDefaults()
	if progress == nil {
		progress = func(string, ...any) {}
	}
	rep := &Report{}

	// cold / warm / register-churn share a default admission plane large
	// enough that admission is not the bottleneck being measured.
	runCached := func(name, mode string, churn bool) (Scenario, error) {
		b, err := newBench(opts, server.Config{Capacity: int64(opts.Workers), MaxQueue: 4 * opts.Workers})
		if err != nil {
			return Scenario{}, err
		}
		defer b.close()
		if mode == "" {
			// Warm-up: execute every identity in the population once so
			// the timed window measures steady-state cache serving, not
			// the fill transient. (The churn scenario's registrations then
			// invalidate this fill — that is the scenario.)
			idx := make(chan uint64)
			var warmWG sync.WaitGroup
			for w := 0; w < opts.Workers; w++ {
				warmWG.Add(1)
				go func() {
					defer warmWG.Done()
					for seed := range idx {
						b.post("", "/v2/query", queryBody(seed, ""))
					}
				}()
			}
			for seed := uint64(0); seed < uint64(opts.Population); seed++ {
				idx <- seed
			}
			close(idx)
			warmWG.Wait()
		}
		stop := make(chan struct{})
		var churnWG sync.WaitGroup
		if churn {
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				body := fmt.Sprintf(`{"name":"E","arity":2,"generate":{"n":%d,"dom":%d,"seed":42}}`, opts.DatasetN, opts.DatasetDom)
				for {
					select {
					case <-stop:
						return
					case <-time.After(opts.Duration / 50):
						b.post("", "/v1/datasets", body)
					}
				}
			}()
		}
		var c tally
		t0 := time.Now()
		b.closedLoop(opts.Workers, opts.Duration, &c, func(rng *rand.Rand) func() (string, string) {
			z := rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.Population-1))
			return func() (string, string) { return "", queryBody(z.Uint64(), mode) }
		})
		elapsed := time.Since(t0)
		close(stop)
		churnWG.Wait()
		sc := c.scenario(name, elapsed)
		progress("%s: %d requests, qps=%.0f p50=%v p99=%v hit_ratio=%.2f failed=%d",
			name, sc.Requests, sc.QPS, time.Duration(sc.P50NS), time.Duration(sc.P99NS), sc.HitRatio, sc.Failed)
		return sc, nil
	}

	cold, err := runCached("cold", "bypass", false)
	if err != nil {
		return nil, err
	}
	warm, err := runCached("warm", "", false)
	if err != nil {
		return nil, err
	}
	churn, err := runCached("register-churn", "", true)
	if err != nil {
		return nil, err
	}
	rep.RegisterChurnFailed = churn.Failed

	// Flood scenarios run on a deliberately small admission plane so the
	// noisy tenant saturates it; quiet runs the identical workload in
	// both, uncached (every request is real work competing for capacity).
	// The quiet tenant's fair-dequeue weight lets it jump the noisy
	// backlog: its flood latency is then one residual noisy execution
	// plus its own, which is what "fairness keeps p99 near solo" means.
	floodCfg := server.Config{
		Capacity:      opts.Capacity,
		MaxQueue:      4*opts.TenantQueue + 4,
		TenantQueue:   opts.TenantQueue,
		TenantWeights: map[string]int64{"quiet": 16},
	}
	quietWorkers := opts.Workers / 4
	if quietWorkers < 1 {
		quietWorkers = 1
	}
	noisyWorkers := 2 * opts.Workers

	runFlood := func(name string, withNoise bool) (Scenario, error) {
		b, err := newBench(opts, floodCfg)
		if err != nil {
			return Scenario{}, err
		}
		defer b.close()
		var c tally
		var wg sync.WaitGroup
		t0 := time.Now()
		if withNoise {
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.closedLoop(noisyWorkers, opts.Duration, &c, func(rng *rand.Rand) func() (string, string) {
					return func() (string, string) { return "noisy", queryBodyOn("N", uint64(rng.Int63n(1<<30)), "off") }
				})
			}()
		}
		var quiet tally
		b.closedLoop(quietWorkers, opts.Duration, &quiet, func(rng *rand.Rand) func() (string, string) {
			return func() (string, string) { return "quiet", queryBody(uint64(rng.Int63n(1<<30)), "off") }
		})
		wg.Wait()
		elapsed := time.Since(t0)
		// Merge: the scenario row reports both tenants, with the quiet
		// percentiles split out.
		c.mu.Lock()
		quiet.mu.Lock()
		c.requests += quiet.requests
		c.completed += quiet.completed
		c.shed += quiet.shed
		c.failed += quiet.failed
		c.all = append(c.all, quiet.all...)
		c.miss = append(c.miss, quiet.miss...)
		c.quiet = append(c.quiet, quiet.quiet...)
		quiet.mu.Unlock()
		c.mu.Unlock()
		sc := c.scenario(name, elapsed)
		progress("%s: %d requests, qps=%.0f quiet_p99=%v shed_rate=%.2f",
			name, sc.Requests, sc.QPS, time.Duration(sc.QuietP99NS), sc.ShedRate)
		return sc, nil
	}

	solo, err := runFlood("flood-solo", false)
	if err != nil {
		return nil, err
	}
	flood, err := runFlood("flood", true)
	if err != nil {
		return nil, err
	}

	rep.Scenarios = []Scenario{cold, warm, churn, solo, flood}
	if warm.HitP99NS > 0 {
		rep.CacheP99SpeedupX = float64(cold.P99NS) / float64(warm.HitP99NS)
	}
	if cold.QPS > 0 {
		rep.CacheQPSGainX = warm.QPS / cold.QPS
	}
	if solo.QuietP99NS > 0 {
		rep.FloodQuietP99RatioX = float64(flood.QuietP99NS) / float64(solo.QuietP99NS)
	}
	rep.FloodShedRate = flood.ShedRate
	return rep, nil
}
