package core

import (
	"context"
	"fmt"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/planner"
)

// resolvePlan decides which engine this execution runs. Forced engines and
// strategies short-circuit to a trivial plan; StrategyAuto runs the
// estimate-only pre-pass over the placed relations and ranks the class's
// legal candidates by predicted load.
func resolvePlan[W any](ex *mpc.Exec, q *hypergraph.Query, class hypergraph.Class, rels map[string]dist.Rel[W], opts Options) (planner.Plan, error) {
	if opts.Engine != "" {
		if err := checkEngine(class, opts.Engine); err != nil {
			return planner.Plan{}, err
		}
		return planner.Forced(class, opts.Engine, "forced by Options.Engine"), nil
	}
	switch opts.Strategy {
	case StrategyYannakakis:
		return planner.Forced(class, planner.EngineYannakakis, "forced by StrategyYannakakis"), nil
	case StrategyTree:
		return planner.Forced(class, planner.EngineTree, "forced by StrategyTree"), nil
	}
	return planAuto(ex, q, class, rels, opts), nil
}

// checkEngine validates a forced engine name against the class's legal set.
func checkEngine(class hypergraph.Class, engine string) error {
	legal := planner.Legal(class)
	for _, e := range legal {
		if e == engine {
			return nil
		}
	}
	return fmt.Errorf("core: engine %q is not legal for class %s (legal: %v)", engine, class, legal)
}

// planAuto is the cost-based planner: it reads the exact per-relation
// input sizes off the placed shards (local metadata, no communication),
// runs the estimate-only pre-pass for the output-size and
// join-cardinality predictions, and ranks the candidates. The pre-pass
// rounds run inside the execution scope — they appear in the tracer
// timeline under "plan.*" labels and are subject to the fault plane — but
// their cost is metered into Plan.EstimateStats, never the execution
// Stats.
func planAuto[W any](ex *mpc.Exec, q *hypergraph.Query, class hypergraph.Class, rels map[string]dist.Rel[W], opts Options) planner.Plan {
	in := planner.Input{Class: class, P: opts.Servers}
	for _, e := range q.Edges {
		n := int64(rels[e.Name].N())
		in.N += n
		if n > in.NMax {
			in.NMax = n
		}
	}
	var view *hypergraph.LineView
	if class == hypergraph.ClassMatMul {
		view, _ = q.LineView()
		in.N1 = int64(rels[q.Edges[view.EdgeOrder[0]].Name].N())
		in.N2 = int64(rels[q.Edges[view.EdgeOrder[1]].Name].N())
		// Theorem 1's degenerate fast paths need no estimates; mirror the
		// engine's own dispatch and skip the pre-pass entirely.
		p := int64(in.P)
		if in.N1 <= 1 || in.N2 <= 1 || in.N1*p < in.N2 || in.N2*p < in.N1 {
			return planner.Rank(in)
		}
	}

	var st mpc.Stats
	// J — the exact full-join cardinality — prices the Yannakakis
	// candidate in every class.
	mpc.TraceOp(ex, "plan.join-count")
	j, s := estimate.TreeCount(q, rels, opts.Est)
	st = mpc.Seq(st, s)
	in.J = j

	switch {
	case opts.OutOracle > 0:
		// An oracle short-circuits the sketch rounds (experiment support
		// and the decision-matrix tests, which need exact OUT regimes).
		in.Out = opts.OutOracle
	case class == hypergraph.ClassMatMul:
		// Matmul: the §2.2 sketch fold along the two-edge path, exactly
		// the estimator the chosen engine would trust.
		path := make([][]dist.Attr, len(view.Vertices))
		for i, v := range view.Vertices {
			path[i] = []dist.Attr{v}
		}
		rl := make([]dist.Rel[W], len(view.EdgeOrder))
		for i, ei := range view.EdgeOrder {
			rl[i] = rels[q.Edges[ei].Name]
		}
		mpc.TraceOp(ex, "plan.out-sketch")
		_, out, s := estimate.LineOut(rl, path, opts.Est)
		st = mpc.Seq(st, s)
		in.Out = out
	default:
		// Every tree-shaped class (line included): the KMV image fold,
		// which estimates OUT and profiles the Yannakakis candidate's
		// largest pre-aggregation intermediate and aggregated image.
		mpc.TraceOp(ex, "plan.out-sketch")
		out, maxFold, maxImage, s := estimate.TreeOutProfile(q, rels, opts.Est)
		st = mpc.Seq(st, s)
		in.Out = out
		in.MaxFold = maxFold
		in.MaxImage = maxImage
	}

	plan := planner.Rank(in)
	plan.EstimateStats = st
	return plan
}

// PlanInstance plans a query over an instance without executing it: it
// places the relations, runs the same estimate-only pre-pass StrategyAuto
// would run, and returns the ranked plan. The serving tier's dry-run
// endpoint (/v2/plan) and its engine-resolved cache keys are built on
// this. The instance is never mutated (placement always copies, ignoring
// OwnInput), and MeasuredLoad is left zero.
func PlanInstance[W any](ctx context.Context, q *hypergraph.Query, inst db.Instance[W], opts Options) (pl planner.Plan, err error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return planner.Plan{}, err
	}
	if err := db.Validate(q, inst); err != nil {
		return planner.Plan{}, err
	}
	class := q.Classify()

	// Forced plans need no placement at all.
	if opts.Engine != "" || opts.Strategy != StrategyAuto {
		return resolvePlan[W](nil, q, class, nil, opts)
	}

	ex, release, err := opts.NewScope(ctx)
	if err != nil {
		return planner.Plan{}, err
	}
	defer release()
	defer mpc.Recover(&err)

	rels := make(map[string]dist.Rel[W], len(q.Edges))
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], opts.Servers)
	}
	return planAuto(ex, q, class, rels, opts), nil
}
