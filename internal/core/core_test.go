package core

import (
	"math/rand"
	"testing"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(rng.Intn(dom))
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(4) + 1)})
		}
		inst[e.Name] = relation.Compact[int64](intSR, r)
	}
	return inst
}

func TestPlanEngineSelection(t *testing.T) {
	cases := []struct {
		q      *hypergraph.Query
		engine string
	}{
		{hypergraph.MatMulQuery(), "matmul"},
		{hypergraph.LineQuery(3), "line"},
		{hypergraph.StarQuery(3), "star"},
		{hypergraph.Fig1StarLike(), "star-like"},
		{hypergraph.Fig2Tree(), "tree"},
		{hypergraph.NewQuery([]hypergraph.Edge{
			hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
		}, "A", "B", "C"), "yannakakis"},
	}
	for _, c := range cases {
		pl, err := PlanQuery(c.q, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Engine != c.engine {
			t.Errorf("query %v: engine %s, want %s", c.q.Output, pl.Engine, c.engine)
		}
	}
	pl, _ := PlanQuery(hypergraph.MatMulQuery(), StrategyYannakakis)
	if pl.Engine != "yannakakis" {
		t.Errorf("forced baseline ignored: %s", pl.Engine)
	}
	pl, _ = PlanQuery(hypergraph.MatMulQuery(), StrategyTree)
	if pl.Engine != "tree" {
		t.Errorf("forced tree ignored: %s", pl.Engine)
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	queries := []*hypergraph.Query{
		hypergraph.MatMulQuery(),
		hypergraph.LineQuery(3),
		hypergraph.StarQuery(3),
		hypergraph.Fig1StarLike(),
		hypergraph.Fig3Twig(),
	}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(qi)))
		inst := randomInstance(rng, q, 18, 5)
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{StrategyAuto, StrategyYannakakis, StrategyTree} {
			got, st, err := Execute[int64](intSR, q, inst, Options{Servers: 5, Strategy: strat, Seed: uint64(qi)})
			if err != nil {
				t.Fatalf("query %d strategy %v: %v", qi, strat, err)
			}
			if !relation.Equal[int64](intSR, intEq, got, want) {
				t.Fatalf("query %d strategy %v: %v != %v", qi, strat, got, want)
			}
			if st.Rounds == 0 && want.Len() > 0 {
				t.Fatalf("query %d strategy %v: no rounds metered", qi, strat)
			}
		}
	}
}

func TestExecuteValidates(t *testing.T) {
	q := hypergraph.MatMulQuery()
	if _, _, err := Execute[int64](intSR, q, db.Instance[int64]{}, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	bad := hypergraph.NewQuery([]hypergraph.Edge{hypergraph.Bin("R", "A", "A")}, "A")
	if _, _, err := Execute[int64](intSR, bad, db.Instance[int64]{}, Options{}); err == nil {
		t.Fatal("expected query validation error")
	}
}

func TestDefaultServers(t *testing.T) {
	q := hypergraph.MatMulQuery()
	rng := rand.New(rand.NewSource(1))
	inst := randomInstance(rng, q, 30, 5)
	got, _, err := Execute[int64](intSR, q, inst, Options{}) // Servers unset
	if err != nil {
		t.Fatal(err)
	}
	want, _ := refengine.Yannakakis[int64](intSR, q, inst)
	if !relation.Equal[int64](intSR, intEq, got, want) {
		t.Fatal("default-server execution mismatch")
	}
}
