package core

import (
	"math/rand"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

// TestTraceDeterminism runs every engine once untraced and once traced and
// requires bit-identical results and Stats: tracing is observation only.
func TestTraceDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		q     *hypergraph.Query
		strat Strategy
	}{
		{"matmul", hypergraph.MatMulQuery(), StrategyAuto},
		{"line", hypergraph.LineQuery(3), StrategyAuto},
		{"star", hypergraph.StarQuery(3), StrategyAuto},
		{"star-like", hypergraph.Fig1StarLike(), StrategyAuto},
		{"tree", hypergraph.Fig3Twig(), StrategyTree},
		{"yannakakis", hypergraph.MatMulQuery(), StrategyYannakakis},
	}
	for qi, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(qi)))
			inst := randomInstance(rng, c.q, 24, 6)
			opts := Options{Servers: 5, Strategy: c.strat, Seed: uint64(qi)}

			plain, plainSt, err := Execute[int64](intSR, c.q, inst, opts)
			if err != nil {
				t.Fatal(err)
			}

			tr := mpc.NewTracer()
			topts := opts
			topts.Tracer = tr
			traced, tracedSt, err := Execute[int64](intSR, c.q, inst, topts)
			if err != nil {
				t.Fatal(err)
			}

			if plainSt != tracedSt {
				t.Fatalf("stats differ: untraced %+v, traced %+v", plainSt, tracedSt)
			}
			if !relation.Equal[int64](intSR, intEq, plain, traced) {
				t.Fatalf("results differ between traced and untraced runs")
			}

			rounds := tr.Rounds()
			if len(rounds) == 0 {
				t.Fatal("traced run recorded no rounds")
			}
			// Physical exchanges can outnumber metered rounds (Par merges
			// disjoint sub-plans) but never undercount them.
			if len(rounds) < plainSt.Rounds {
				t.Fatalf("trace has %d rounds, stats meter %d", len(rounds), plainSt.Rounds)
			}
			maxTrace := 0
			for _, rt := range rounds {
				if rt.Op == "" {
					t.Fatalf("round %d has empty op", rt.Round)
				}
				if rt.Servers <= 0 || rt.Receivers > rt.Servers {
					t.Fatalf("round %d malformed: %+v", rt.Round, rt)
				}
				if rt.MaxLoad > maxTrace {
					maxTrace = rt.MaxLoad
				}
			}
			// Every exchange composes into Stats with max-of-MaxLoad, so the
			// worst traced round is at least the metered bottleneck.
			if maxTrace < plainSt.MaxLoad {
				t.Fatalf("trace max load %d < stats MaxLoad %d", maxTrace, plainSt.MaxLoad)
			}
		})
	}
}

// TestTracerReuseAcrossExecutions checks that one tracer observes two
// sequential executions after a Reset without mixing timelines.
func TestTracerReuseAcrossExecutions(t *testing.T) {
	q := hypergraph.MatMulQuery()
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, q, 20, 5)
	tr := mpc.NewTracer()
	opts := Options{Servers: 4, Seed: 7, Tracer: tr}

	if _, _, err := Execute[int64](intSR, q, inst, opts); err != nil {
		t.Fatal(err)
	}
	first := tr.Rounds()
	tr.Reset()
	if _, _, err := Execute[int64](intSR, q, inst, opts); err != nil {
		t.Fatal(err)
	}
	second := tr.Rounds()

	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("round counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("round %d differs across identical executions:\n%+v\n%+v", i+1, first[i], second[i])
		}
	}
}
