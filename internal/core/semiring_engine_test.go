package core

// semiring_engine_test.go runs the full engine across random tree queries
// under several semirings — including idempotent ones, where duplicated
// partial aggregation would go undetected by the counting semiring alone
// (a ⊕ a = a masks double-counting) and non-idempotent ones, where any
// tuple routed to two blocks would double-count. Passing under both
// classes pins down the "every elementary product exactly once" invariant.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// randomTreeQuery builds a random tree query over up to 6 attributes with
// a random output set.
func randomTreeQuery(rng *rand.Rand) *hypergraph.Query {
	nAttrs := rng.Intn(4) + 3
	attrs := make([]hypergraph.Attr, nAttrs)
	for i := range attrs {
		attrs[i] = hypergraph.Attr(rune('A' + i))
	}
	var edges []hypergraph.Edge
	for i := 1; i < nAttrs; i++ {
		parent := rng.Intn(i)
		edges = append(edges, hypergraph.Bin("R"+string(rune('0'+i)), attrs[parent], attrs[i]))
	}
	var out []hypergraph.Attr
	for _, a := range attrs {
		if rng.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		out = attrs[:1]
	}
	return hypergraph.NewQuery(edges, out...)
}

func checkSemiring[W any](t *testing.T, name string, sr semiring.Semiring[W], eq func(a, b W) bool, genW func(*rand.Rand) W, maxCount int) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomTreeQuery(rng)
		if err := q.Validate(); err != nil {
			return true
		}
		inst := make(db.Instance[W])
		for _, e := range q.Edges {
			r := relation.New[W](e.Attrs...)
			for i := 0; i < rng.Intn(14)+4; i++ {
				r.Append(genW(rng), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)))
			}
			inst[e.Name] = r
		}
		want, err := refengine.Yannakakis[W](sr, q, inst)
		if err != nil {
			return false
		}
		for _, strat := range []Strategy{StrategyAuto, StrategyTree} {
			got, _, err := Execute[W](sr, q, inst, Options{Servers: rng.Intn(5) + 2, Strategy: strat, Seed: uint64(seed)})
			if err != nil {
				return false
			}
			if !relation.Equal[W](sr, eq, got, want) {
				t.Logf("%s: mismatch on %s (strategy %v)", name, refengine.String(q), strat)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestEngineUnderCountingSemiring(t *testing.T) {
	sr := semiring.IntSumProd{}
	checkSemiring[int64](t, "IntSumProd", sr, sr.Equal,
		func(rng *rand.Rand) int64 { return int64(rng.Intn(5) + 1) }, 20)
}

func TestEngineUnderBooleanSemiring(t *testing.T) {
	sr := semiring.BoolOrAnd{}
	checkSemiring[bool](t, "BoolOrAnd", sr, sr.Equal,
		func(rng *rand.Rand) bool { return true }, 15)
}

func TestEngineUnderMinPlus(t *testing.T) {
	sr := semiring.MinPlus{}
	checkSemiring[int64](t, "MinPlus", sr, sr.Equal,
		func(rng *rand.Rand) int64 { return int64(rng.Intn(100)) }, 15)
}

func TestEngineUnderMaxMin(t *testing.T) {
	sr := semiring.MaxMin{}
	checkSemiring[int64](t, "MaxMin", sr, sr.Equal,
		func(rng *rand.Rand) int64 { return int64(rng.Intn(100)) }, 15)
}

func TestEngineUnderProvenance(t *testing.T) {
	sr := semiring.WhyProvenance{}
	var next semiring.Witness
	checkSemiring[semiring.Provenance](t, "WhyProvenance", sr, sr.Equal,
		func(rng *rand.Rand) semiring.Provenance {
			next++
			return semiring.Why(next)
		}, 8)
}

// TestEngineDanglingInjection: adding join-less noise tuples must never
// change any engine's answer (they are removed by the reducers).
func TestEngineDanglingInjection(t *testing.T) {
	sr := semiring.IntSumProd{}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := randomTreeQuery(rng)
		if err := q.Validate(); err != nil {
			continue
		}
		inst := make(db.Instance[int64])
		for _, e := range q.Edges {
			r := relation.New[int64](e.Attrs...)
			for i := 0; i < 12; i++ {
				r.Append(1, relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)))
			}
			inst[e.Name] = r
		}
		clean, _, err := Execute[int64](sr, q, inst, Options{Servers: 4, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		// Inject tuples over fresh values into every relation.
		noisy := db.Clone(inst)
		fresh := relation.Value(1 << 20)
		for _, r := range noisy {
			for i := 0; i < 8; i++ {
				fresh += 2
				r.Append(99, fresh, fresh+1)
			}
		}
		got, _, err := Execute[int64](sr, q, noisy, Options{Servers: 4, Seed: uint64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](sr, sr.Equal, clean, got) {
			t.Fatalf("seed %d: dangling tuples changed the answer on %s", seed, refengine.String(q))
		}
	}
}
