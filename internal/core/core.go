// Package core is the query engine tying the paper's algorithms together:
// it classifies a tree join-aggregate query (hypergraph.Classify) and
// dispatches to the §3–§7 algorithm matching its class, or to the
// distributed Yannakakis baseline on request. It is the implementation
// behind the module's public API.
package core

import (
	"context"
	"fmt"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/linequery"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/planner"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/starlike"
	"mpcjoin/internal/starquery"
	"mpcjoin/internal/transport"
	"mpcjoin/internal/treequery"
	"mpcjoin/internal/yannakakis"
)

// Strategy selects the execution engine.
type Strategy int

const (
	// StrategyAuto selects the engine with the cost-based planner: an
	// estimate-only pre-pass (§2.2 sketches plus an exact count fold)
	// predicts OUT and the join cardinality, each legal candidate's
	// Table 1 formula is instantiated with the instance's sizes, and the
	// min-predicted-load engine runs (see internal/planner).
	StrategyAuto Strategy = iota
	// StrategyYannakakis forces the distributed Yannakakis baseline —
	// Table 1's comparison column.
	StrategyYannakakis
	// StrategyTree forces the general §7 tree engine regardless of class
	// (it subsumes all the specialized classes via its twig dispatch).
	StrategyTree
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyYannakakis:
		return "yannakakis"
	case StrategyTree:
		return "tree"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options configures Execute.
type Options struct {
	// Servers is p, the simulated cluster size (default 16).
	Servers int
	// Strategy selects the engine (default StrategyAuto).
	Strategy Strategy
	// Est configures the §2.2 estimator used by the specialized engines.
	Est estimate.Params
	// Seed drives hash partitioning (reproducible runs).
	Seed uint64
	// OutOracle, when positive, replaces estimated output sizes in the
	// matmul/line engines (experiment support).
	OutOracle int64
	// Workers sizes the concurrent execution runtime the simulator's
	// per-server work runs on. 0 and 1 run serially (the default); n > 1
	// uses n OS workers; negative selects GOMAXPROCS. Results and metered
	// Stats are identical for every setting — Workers changes wall-clock
	// time only. The runtime is scoped to the execution (not process
	// global), so concurrent Execute calls with different Workers values
	// never interact.
	Workers int
	// OwnInput transfers ownership of the instance's relations to the
	// execution: the initial placement aliases their row slices instead
	// of copying them, and the caller must not reuse the instance
	// afterwards (rows may be reordered in place). Drivers that build an
	// instance, execute it once and discard it (cmd/mpcrun, generated
	// experiment inputs) set this to skip one full input copy.
	OwnInput bool
	// Tracer, when non-nil, records a per-round load timeline of the
	// execution (see mpc.RoundTrace). Read the timeline with
	// Tracer.Rounds() after the call returns. nil (the default) keeps the
	// zero-cost path: tracing adds no work and no allocations when off.
	Tracer *mpc.Tracer
	// Faults, when non-nil, injects the plane's deterministic fault
	// schedule at the execution's exchange barriers, with round-level
	// checkpoint/retry recovery (see mpc.FaultPlane). Read the injection
	// accounting with Faults.Report() after the call returns; a round
	// still faulty past its retry budget fails the execution with a
	// *mpc.FaultBudgetError (errors.Is mpc.ErrFaultBudgetExceeded). nil
	// (the default) keeps the flawless-cluster fast path.
	Faults *mpc.FaultPlane
	// Engine, when non-empty, forces a specific engine by its dispatch
	// name (the planner.Engine* constants), bypassing both the Strategy
	// and the cost-based planner. The engine must be legal for the
	// query's class (planner.Legal). The boundcheck dominated-engine
	// sweep forces each candidate this way, and the serving tier pins an
	// execution to the engine it resolved when keying its result cache.
	Engine string
	// PlanOut, when non-nil, receives the executed plan: chosen engine,
	// ranked candidates with predicted loads, the pre-pass predictions,
	// and the measured MaxLoad. Like Tracer it is a pure observer — it
	// never changes rows or Stats and is excluded from the result
	// fingerprint. It is filled for forced strategies too (with a
	// trivial "forced" plan), so callers have one place to read the
	// resolved engine.
	PlanOut *planner.Plan
	// Transport selects the exchange backend the execution's round
	// barriers run on: nil or transport.InProc() is the in-process path
	// (the default, zero overhead); transport.TCP(peers...) delegates
	// every exchange to a cluster of shuffle peers. Results, Stats,
	// traces and fault reports are bit-for-bit identical across
	// backends. The wire is connected when the execution starts and
	// closed when it returns.
	Transport transport.Transport
}

func (o Options) withDefaults() Options {
	if o.Servers == 0 {
		o.Servers = 16
	}
	return o
}

// Plan describes how a query will be executed.
type Plan struct {
	Class    hypergraph.Class
	Strategy Strategy
	// Engine is the algorithm that will run ("yannakakis", "matmul", …).
	Engine string
}

// PlanQuery classifies the query and reports the class-default engine —
// the one Auto dispatches to absent instance information. The
// instance-aware decision (which may pick a different legal engine) is
// made by the cost-based planner at execution time; read it from
// Options.PlanOut or compute it without executing via PlanInstance.
func PlanQuery(q *hypergraph.Query, strat Strategy) (Plan, error) {
	if err := q.Validate(); err != nil {
		return Plan{}, err
	}
	c := q.Classify()
	pl := Plan{Class: c, Strategy: strat}
	switch strat {
	case StrategyYannakakis:
		pl.Engine = "yannakakis"
	case StrategyTree:
		pl.Engine = "tree"
	default:
		switch c {
		case hypergraph.ClassFreeConnex:
			pl.Engine = "yannakakis"
		case hypergraph.ClassMatMul:
			pl.Engine = "matmul"
		case hypergraph.ClassLine:
			pl.Engine = "line"
		case hypergraph.ClassStar:
			pl.Engine = "star"
		case hypergraph.ClassStarLike:
			pl.Engine = "star-like"
		default:
			pl.Engine = "tree"
		}
	}
	return pl, nil
}

// Execute evaluates the query over the instance on a simulated p-server
// MPC cluster and returns the (gathered) result relation together with the
// metered communication cost.
func Execute[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], opts Options) (*relation.Relation[W], mpc.Stats, error) {
	return ExecuteContext(context.Background(), sr, q, inst, opts)
}

// ExecuteContext is Execute with cooperative cancellation: when ctx is
// cancelled (deadline, client disconnect, shutdown), the execution stops at
// the next MPC round barrier and returns ctx's error. Cancellation never
// yields a partial result — the returned relation is nil whenever err is
// non-nil.
func ExecuteContext[W any](ctx context.Context, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], opts Options) (*relation.Relation[W], mpc.Stats, error) {
	res, st, err := ExecuteDistributedContext(ctx, sr, q, inst, opts)
	if err != nil {
		return nil, mpc.Stats{}, err
	}
	return dist.ToRelation(res), st, nil
}

// ExecuteDistributed is Execute but leaves the result distributed, as the
// MPC model does.
func ExecuteDistributed[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	return ExecuteDistributedContext(context.Background(), sr, q, inst, opts)
}

// NewScope builds the per-execution scope the Options describe: a runtime
// sized by Workers bound to the caller's context, with the tracer, fault
// plane and exchange transport attached. It is the shared execution root of
// every engine family (the join-aggregate dispatch below, internal/spmv's
// iterated kernels): the returned Exec travels inside every Part placed
// under it, so the whole dataflow of one execution — and nothing outside
// it — runs on this runtime and stops at the next round barrier once ctx
// is done. The returned release func closes the transport wire (if one was
// connected) and must be deferred by the caller; callers should also defer
// mpc.Recover to convert the primitives' cancellation unwind into an error.
func (o Options) NewScope(ctx context.Context) (*mpc.Exec, func(), error) {
	o = o.withDefaults()
	ex := mpc.NewExec(ctx, o.Workers)
	if o.Tracer != nil {
		ex = ex.WithTracer(o.Tracer)
	}
	if o.Faults != nil {
		ex = ex.WithFaults(o.Faults)
	}
	release := func() {}
	if o.Transport != nil {
		// The wire is per-execution: connect here, close when the
		// execution returns (success, error or unwind alike).
		w, werr := o.Transport.Connect(ctx)
		if werr != nil {
			return nil, nil, fmt.Errorf("connecting %s transport: %w", o.Transport.Name(), werr)
		}
		if w != nil {
			release = func() { w.Close() }
			ex = ex.WithWire(w)
		}
	}
	return ex, release, nil
}

// ExecuteDistributedContext is ExecuteContext but leaves the result
// distributed. It is the execution root: it builds the per-execution scope
// (worker runtime + context) that every Part of this execution carries, and
// recovers the mpc package's internal cancellation panic back into an
// error, so callers see cancellation as an ordinary context error.
func ExecuteDistributedContext[W any](ctx context.Context, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], opts Options) (res dist.Rel[W], st mpc.Stats, err error) {
	opts = opts.withDefaults()
	if err := q.Validate(); err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	if err := db.Validate(q, inst); err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	pl, err := PlanQuery(q, opts.Strategy)
	if err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}

	ex, release, err := opts.NewScope(ctx)
	if err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	defer release()
	// Primitives report cancellation by unwinding with an internal sentinel
	// (they return no errors); convert it back into a returned error here.
	defer mpc.Recover(&err)

	rels := make(map[string]dist.Rel[W], len(q.Edges))
	for _, e := range q.Edges {
		if opts.OwnInput {
			rels[e.Name] = dist.FromRelationOwnedIn(ex, inst[e.Name], opts.Servers)
		} else {
			rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], opts.Servers)
		}
	}

	// Resolve the plan: forced engine/strategy short-circuits; Auto runs
	// the estimate-only pre-pass and the cost model. The pre-pass is
	// metered into plan.EstimateStats, not st, so an auto run's Stats are
	// bit-identical to the chosen engine forced directly.
	plan, err := resolvePlan(ex, q, pl.Class, rels, opts)
	if err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	pl.Engine = plan.Chosen

	res, st, err = dispatch(sr, q, rels, pl, opts)
	if err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	plan.MeasuredLoad = st.MaxLoad
	if opts.PlanOut != nil {
		*opts.PlanOut = plan
	}
	// Engines may emit columns in their internal order; present them in
	// the query's declared output order (a local, zero-cost permutation).
	if len(q.Output) > 0 {
		res = dist.Reorder(res, q.Output)
	}
	return res, st, nil
}

func dispatch[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], pl Plan, opts Options) (dist.Rel[W], mpc.Stats, error) {
	switch pl.Engine {
	case "yannakakis":
		res, st := yannakakis.Run(sr, q, rels)
		return res, st, nil
	case "matmul", "matmul-linear", "matmul-worstcase", "matmul-outsens":
		view, _ := q.LineView()
		in := matmul.Input[W]{
			R1: rels[q.Edges[view.EdgeOrder[0]].Name],
			R2: rels[q.Edges[view.EdgeOrder[1]].Name],
			B:  view.Vertices[1],
		}
		var alg matmul.Algorithm
		switch pl.Engine {
		case "matmul-linear":
			alg = matmul.Linear
		case "matmul-worstcase":
			alg = matmul.WorstCase
		case "matmul-outsens":
			alg = matmul.OutputSensitive
		default:
			alg = matmul.Auto
		}
		res, st, err := matmul.Compute(sr, in, matmul.Options{Algorithm: alg, Est: opts.Est, Seed: opts.Seed, OutOracle: opts.OutOracle})
		if err != nil {
			return dist.Rel[W]{}, mpc.Stats{}, err
		}
		return res, st, nil
	case "line":
		res, st, err := linequery.Compute(sr, q, rels, linequery.Options{Est: opts.Est, Seed: opts.Seed, OutOracle: opts.OutOracle})
		return res, st, err
	case "star":
		res, st, err := starquery.Compute(sr, q, rels, starquery.Options{Est: opts.Est, Seed: opts.Seed})
		return res, st, err
	case "star-like":
		res, st, err := starlike.Compute(sr, q, rels, starlike.Options{Est: opts.Est, Seed: opts.Seed})
		return res, st, err
	default:
		res, st, err := treequery.Compute(sr, q, rels, treequery.Options{Est: opts.Est, Seed: opts.Seed})
		return res, st, err
	}
}
