package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

// TestConcurrentExecutionsIsolated documents the fix for the historical
// global-runtime race: Options.Workers used to swap a process-global
// runtime, so two concurrent Execute calls wanting different pool sizes
// stomped each other. With per-execution scoping, concurrent executions
// with mixed Workers and Servers must produce results and Stats
// bit-identical to their serial baselines. Run under -race.
func TestConcurrentExecutionsIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	configs := []struct {
		q    *hypergraph.Query
		opts Options
	}{
		{hypergraph.MatMulQuery(), Options{Servers: 8, Seed: 1}},
		{hypergraph.LineQuery(3), Options{Servers: 16, Seed: 2}},
		{hypergraph.Fig1StarLike(), Options{Servers: 5, Seed: 6}},
		{hypergraph.StarQuery(3), Options{Servers: 8, Seed: 3, Strategy: StrategyYannakakis}},
		{hypergraph.Fig3Twig(), Options{Servers: 5, Seed: 4, Strategy: StrategyTree}},
	}
	type baseline struct {
		rel *relation.Relation[int64]
		st  mpc.Stats
	}
	instances := make([]map[string]*relation.Relation[int64], len(configs))
	baselines := make([]baseline, len(configs))
	for i, c := range configs {
		instances[i] = randomInstance(rng, c.q, 18, 5)
		o := c.opts
		o.Workers = 1 // serial reference semantics
		rel, st, err := Execute(intSR, c.q, instances[i], o)
		if err != nil {
			t.Fatalf("config %d baseline: %v", i, err)
		}
		rel.SortRows()
		baselines[i] = baseline{rel: rel, st: st}
	}

	// 12 concurrent executions (≥ 8), cycling configs and worker counts;
	// -1 means GOMAXPROCS in core.Options.
	workerMix := []int{2, 4, -1, 3}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(configs)
			o := configs[i].opts
			o.Workers = workerMix[g%len(workerMix)]
			rel, st, err := Execute(intSR, configs[i].q, instances[i], o)
			if err != nil {
				errs[g] = fmt.Errorf("config %d workers %d: %v", i, o.Workers, err)
				return
			}
			rel.SortRows()
			if st != baselines[i].st {
				errs[g] = fmt.Errorf("config %d workers %d: stats %+v, serial baseline %+v", i, o.Workers, st, baselines[i].st)
				return
			}
			if !relation.Equal(intSR, intEq, rel, baselines[i].rel) {
				errs[g] = fmt.Errorf("config %d workers %d: result differs from serial baseline", i, o.Workers)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// slowSR is IntSumProd with a sleep in Mul — a synthetic workload whose
// rounds take real wall time, so a mid-round cancellation is observable.
type slowSR struct{ d time.Duration }

func (slowSR) Zero() int64            { return 0 }
func (slowSR) One() int64             { return 1 }
func (slowSR) Add(a, b int64) int64   { return a + b }
func (s slowSR) Mul(a, b int64) int64 { time.Sleep(s.d); return a * b }
func (slowSR) Equal(a, b int64) bool  { return a == b }

// TestExecuteContextCancel cancels a deliberately slow execution mid-run
// and asserts it returns context.Canceled promptly — within one MPC round,
// not after running to completion — and that no execution goroutines leak.
func TestExecuteContextCancel(t *testing.T) {
	q := hypergraph.LineQuery(3)
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, q, 80, 10)
	opts := Options{Servers: 8, Seed: 5, Workers: 2, Strategy: StrategyYannakakis}
	sr := slowSR{d: 200 * time.Microsecond}

	// Uncancelled reference duration: the full run must be much slower
	// than the cancelled one for the "stopped early" assertion to mean
	// anything.
	full := time.Now()
	if _, _, err := Execute[int64](sr, q, inst, opts); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	fullDur := time.Since(full)

	before := stdruntime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, _, err := ExecuteContext[int64](ctx, sr, q, inst, opts)
		done <- err
	}()
	time.Sleep(fullDur / 10)
	cancel()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled execution did not return")
	}
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// The execution must stop at the next round barrier: well before the
	// full runtime (generous 3/4 bound to stay robust under -race).
	if elapsed >= fullDur*3/4 {
		t.Errorf("cancelled run took %v of a %v full run; cancellation did not stop it early", elapsed, fullDur)
	}
	// Fork–join workers are joined before ExecuteContext returns, so the
	// goroutine count must settle back (poll briefly for scheduler noise).
	deadline := time.Now().Add(5 * time.Second)
	for stdruntime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := stdruntime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after cancellation", before, n)
	}
}

// TestExecuteContextDeadline exercises the deadline path: an already
// expired context must fail fast without producing a result.
func TestExecuteContextDeadline(t *testing.T) {
	q := hypergraph.MatMulQuery()
	rng := rand.New(rand.NewSource(13))
	inst := randomInstance(rng, q, 60, 8)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rel, _, err := ExecuteContext(ctx, intSR, q, inst, Options{Servers: 8, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if rel != nil {
		t.Fatal("cancelled execution returned a partial result")
	}
}

// TestExecuteContextBackgroundMatchesExecute pins the delegation: Execute
// and ExecuteContext(Background) are the same computation.
func TestExecuteContextBackgroundMatchesExecute(t *testing.T) {
	q := hypergraph.LineQuery(3)
	rng := rand.New(rand.NewSource(17))
	inst := randomInstance(rng, q, 60, 9)
	opts := Options{Servers: 8, Seed: 9}
	a, sta, err := Execute(intSR, q, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, stb, err := ExecuteContext(context.Background(), intSR, q, inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	a.SortRows()
	b.SortRows()
	if sta != stb || !relation.Equal(intSR, intEq, a, b) {
		t.Fatal("ExecuteContext(Background) differs from Execute")
	}
}
