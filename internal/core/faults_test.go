package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
)

// faultedRun executes q under a fresh fault plane built from spec and
// returns the sorted result, the base stats, and the plane's accounting.
func faultedRun(t *testing.T, q *hypergraph.Query, strat Strategy, spec mpc.FaultSpec, workers, n int) (*relation.Relation[int64], mpc.Stats, mpc.FaultReport) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, q, n, 6)
	fp := mpc.NewFaultPlane(spec)
	res, st, err := Execute(intSR, q, inst, Options{Servers: 6, Seed: 5, Workers: workers, Strategy: strat, Faults: fp})
	if err != nil {
		t.Fatalf("faulted execute: %v", err)
	}
	res.SortRows()
	return res, st, fp.Report()
}

// TestFaultDeterminismAcrossWorkers: same seed + same fault spec ⇒
// identical injected schedule, identical retry counts, identical rows —
// for every strategy the dispatcher exposes and for worker counts
// 1/4/GOMAXPROCS. Runs in the -race lane: a scheduling-dependent
// injection or retry path shows up here as a diff or a race report.
func TestFaultDeterminismAcrossWorkers(t *testing.T) {
	spec := mpc.FaultSpec{
		Seed:           23,
		CrashProb:      0.08,
		DropProb:       0.10,
		StragglerProb:  0.30,
		StragglerDelay: 8,
		MaxRetries:     12,
	}
	cases := []struct {
		name  string
		q     *hypergraph.Query
		strat Strategy
		// n sizes the random instance; the tree engine's twig query is
		// far more expensive per row, so it runs on a smaller one to
		// keep the race lane fast.
		n int
	}{
		{"matmul-auto", hypergraph.MatMulQuery(), StrategyAuto, 40},
		{"star-auto", hypergraph.StarQuery(3), StrategyAuto, 40},
		{"line-auto", hypergraph.LineQuery(3), StrategyAuto, 40},
		{"tree", hypergraph.Fig3Twig(), StrategyTree, 14},
		{"yannakakis", hypergraph.MatMulQuery(), StrategyYannakakis, 40},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantRes, wantSt, wantRep := faultedRun(t, c.q, c.strat, spec, 1, c.n)
			if wantRep.Injected == 0 {
				t.Fatal("schedule injected nothing; the determinism check proves nothing")
			}
			for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
				res, st, rep := faultedRun(t, c.q, c.strat, spec, w, c.n)
				if !relation.Equal[int64](intSR, intEq, res, wantRes) {
					t.Errorf("workers=%d: rows differ from serial run", w)
				}
				if st != wantSt {
					t.Errorf("workers=%d: stats %+v != serial %+v", w, st, wantSt)
				}
				if !reflect.DeepEqual(rep, wantRep) {
					t.Errorf("workers=%d: fault report differs:\n got %+v\nwant %+v", w, rep, wantRep)
				}
			}
		})
	}
}

// TestFaultRetryMatchesFaultFree: the absorbed schedule of the previous
// test must leave rows and base stats identical to a run with no fault
// plane at all — retry recovery is invisible to results and metering.
func TestFaultRetryMatchesFaultFree(t *testing.T) {
	q := hypergraph.MatMulQuery()
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(rng, q, 40, 6)
	free, stFree, err := Execute(intSR, q, inst, Options{Servers: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	free.SortRows()

	spec := mpc.FaultSpec{Seed: 23, CrashProb: 0.08, DropProb: 0.10, StragglerProb: 0.30, StragglerDelay: 8, MaxRetries: 12}
	faulted, st, rep := faultedRun(t, q, StrategyAuto, spec, 1, 40)
	if rep.Injected == 0 {
		t.Fatal("schedule injected nothing")
	}
	if !relation.Equal[int64](intSR, intEq, faulted, free) {
		t.Error("faulted rows differ from fault-free run")
	}
	if st != stFree {
		t.Errorf("faulted stats %+v != fault-free %+v", st, stFree)
	}
}
