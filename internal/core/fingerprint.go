package core

import (
	"encoding/binary"
	"math"
)

// ResultFingerprint hashes every Options knob that can change what a query
// returns — rows, Stats, trace content, or fault accounting — into one
// 64-bit value. Two Options with equal fingerprints produce bit-identical
// results for the same query over the same instance; that invariant is what
// lets the serving tier key its result cache on the fingerprint.
//
// Knobs that only change how fast or where the work runs are excluded by
// design: Workers (wall-clock only), Tracer (observer; whether a trace is
// *returned* is keyed separately by the caller), Transport (bit-identical
// across backends), and OwnInput (input buffer ownership). Fields are
// resolved to their effective defaults first so that e.g. Servers 0 and
// Servers 16 collide, as they must.
func (o Options) ResultFingerprint() uint64 {
	o = o.withDefaults()
	h := uint64(fnvOffset)
	put := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		for _, x := range b {
			h ^= uint64(x)
			h *= fnvPrime
		}
	}
	putStr := func(s string) {
		put(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime
		}
	}
	put(uint64(o.Servers))
	put(uint64(o.Strategy))
	// The forced engine changes Stats and trace content (and, for
	// auto-planned serving-tier queries, *is* the resolved plan), so it is
	// part of the result identity. PlanOut, like Tracer, is an observer
	// and stays out.
	putStr(o.Engine)
	put(uint64(o.Est.K))
	put(uint64(o.Est.Reps))
	put(o.Est.Seed)
	put(o.Seed)
	put(uint64(o.OutOracle))
	if o.Faults != nil {
		s := o.Faults.Spec()
		put(1)
		put(s.Seed)
		put(math.Float64bits(s.StragglerProb))
		put(uint64(s.StragglerDelay))
		put(math.Float64bits(s.CrashProb))
		put(uint64(s.CrashRound))
		put(math.Float64bits(s.DropProb))
		put(uint64(int64(s.MaxRetries)))
		put(uint64(s.StopAfter))
	} else {
		put(0)
	}
	return h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)
