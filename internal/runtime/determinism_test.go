package runtime_test

// Determinism property test for the concurrent runtime: executing any
// query class under any semiring on a worker pool must give bit-for-bit
// the same answer AND the same metered Stats as serial execution. This is
// the contract that lets the simulator parallelize per-server work while
// keeping the MPC cost model exact.

import (
	"math/rand"
	"reflect"
	"testing"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/workload"
)

// freeConnexQuery is a full join (every attribute is an output), which
// classifies as free-connex and dispatches to the Yannakakis engine.
func freeConnexQuery() *hypergraph.Query {
	return hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"),
		hypergraph.Bin("R2", "B", "C"),
	}, "A", "B", "C")
}

// mapAnnot re-annotates an int64 instance into another carrier type.
func mapAnnot[W any](inst db.Instance[int64], f func(int64) W) db.Instance[W] {
	out := make(db.Instance[W], len(inst))
	for name, r := range inst {
		nr := relation.New[W](r.Schema()...)
		for _, row := range r.Rows {
			nr.Append(f(row.W), row.Vals...)
		}
		out[name] = nr
	}
	return out
}

// assertDeterministic runs the query serially and on an 8-worker pool and
// requires identical rows and identical Stats.
func assertDeterministic[W any](t *testing.T, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], p int) {
	t.Helper()
	base := core.Options{Servers: p, Seed: 11}

	serialOpts := base
	serialOpts.Workers = 1
	resS, stS, err := core.Execute(sr, q, inst, serialOpts)
	if err != nil {
		t.Fatalf("serial execute: %v", err)
	}

	concOpts := base
	concOpts.Workers = 8
	resC, stC, err := core.Execute(sr, q, inst, concOpts)
	if err != nil {
		t.Fatalf("concurrent execute: %v", err)
	}

	if stS != stC {
		t.Errorf("Stats diverge: serial %+v, workers=8 %+v", stS, stC)
	}
	resS.SortRows()
	resC.SortRows()
	if !reflect.DeepEqual(resS.Schema(), resC.Schema()) {
		t.Errorf("schemas diverge: serial %v, workers=8 %v", resS.Schema(), resC.Schema())
	}
	if !reflect.DeepEqual(resS.Rows, resC.Rows) {
		t.Errorf("rows diverge: serial %d rows, workers=8 %d rows", resS.Len(), resC.Len())
	}
}

// TestExecutionDeterminism sweeps every query class × three semirings ×
// p ∈ {1, 4, 16} over both random and structured instances, comparing an
// 8-worker run against serial execution.
func TestExecutionDeterminism(t *testing.T) {
	queries := []struct {
		name string
		q    *hypergraph.Query
	}{
		{"matmul", hypergraph.MatMulQuery()},
		{"line", hypergraph.LineQuery(3)},
		{"star", hypergraph.StarQuery(3)},
		{"star-like", hypergraph.Fig1StarLike()},
		{"tree", hypergraph.Fig2Tree()},
		{"free-connex", freeConnexQuery()},
	}
	for _, qc := range queries {
		pl, err := core.PlanQuery(qc.q, core.StrategyAuto)
		if err != nil {
			t.Fatalf("%s: plan: %v", qc.name, err)
		}
		if got := pl.Class.String(); got != qc.name {
			t.Fatalf("%s: classified as %s", qc.name, got)
		}
	}

	for _, qc := range queries {
		insts := []struct {
			name string
			inst db.Instance[int64]
		}{}
		// Keep random instances sparse for the many-output queries: with a
		// dense domain the Fig. 1/2 fixtures have output size exponential
		// in their arm count, which swamps the test without adding
		// determinism coverage.
		n, dom := 60, 8
		if len(qc.q.Output) > 3 {
			n, dom = 40, 64
		}
		rng := rand.New(rand.NewSource(int64(len(qc.name)) * 97))
		uni, _ := workload.Uniform(qc.q, n, dom, rng)
		blk, _ := workload.Blocks(qc.q, 4, 2)
		insts = append(insts,
			struct {
				name string
				inst db.Instance[int64]
			}{"uniform", uni},
			struct {
				name string
				inst db.Instance[int64]
			}{"blocks", blk},
		)

		for _, ic := range insts {
			for _, p := range []int{1, 4, 16} {
				t.Run(qc.name+"/"+ic.name+"/int-sum-prod/p="+itoa(p), func(t *testing.T) {
					assertDeterministic[int64](t, semiring.IntSumProd{}, qc.q, ic.inst, p)
				})
				t.Run(qc.name+"/"+ic.name+"/bool-or-and/p="+itoa(p), func(t *testing.T) {
					boolInst := mapAnnot(ic.inst, func(w int64) bool { return w != 0 })
					assertDeterministic[bool](t, semiring.BoolOrAnd{}, qc.q, boolInst, p)
				})
				t.Run(qc.name+"/"+ic.name+"/min-plus/p="+itoa(p), func(t *testing.T) {
					tropInst := mapAnnot(ic.inst, func(w int64) int64 { return w })
					assertDeterministic[int64](t, semiring.MinPlus{}, qc.q, tropInst, p)
				})
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
