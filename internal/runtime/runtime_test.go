package runtime

import (
	"math/rand"
	stdruntime "runtime"
	"sync/atomic"
	"testing"
)

func TestNewSizing(t *testing.T) {
	if got := New(4).Workers(); got != 4 {
		t.Fatalf("New(4).Workers() = %d", got)
	}
	if got := New(0).Workers(); got != stdruntime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := Default().Workers(); got != stdruntime.GOMAXPROCS(0) {
		t.Fatalf("Default().Workers() = %d, want GOMAXPROCS", got)
	}
	if Serial().Workers() != 1 {
		t.Fatal("Serial() must have exactly one worker")
	}
	if New(1) != Serial() {
		t.Fatal("New(1) should be the Serial runtime")
	}
}

func TestForEachShardCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			rt := New(workers)
			counts := make([]atomic.Int32, n)
			rt.ForEachShard(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachShardSerialOrder(t *testing.T) {
	var order []int
	Serial().ForEachShard(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachShardPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rt := New(workers)
		func() {
			defer func() {
				r := recover()
				if r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			rt.ForEachShard(16, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// serialExchange is the reference semantics Exchange must reproduce.
func serialExchange(pDst int, out [][][]int) ([][]int, []int64) {
	shards := make([][]int, pDst)
	recv := make([]int64, pDst)
	for src := range out {
		for dst := range out[src] {
			msg := out[src][dst]
			if len(msg) == 0 {
				continue
			}
			shards[dst] = append(shards[dst], msg...)
			recv[dst] += int64(len(msg))
		}
	}
	return shards, recv
}

func TestExchangeMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		pSrc := rng.Intn(8) + 1
		pDst := rng.Intn(8) + 1
		out := make([][][]int, pSrc)
		for src := range out {
			out[src] = make([][]int, pDst)
			for dst := range out[src] {
				msg := make([]int, rng.Intn(5))
				for i := range msg {
					msg[i] = rng.Intn(1000)
				}
				if len(msg) > 0 {
					out[src][dst] = msg
				}
			}
		}
		wantShards, wantRecv := serialExchange(pDst, out)
		for _, workers := range []int{1, 2, 8} {
			gotShards, gotRecv := Exchange(New(workers), pDst, out)
			for dst := 0; dst < pDst; dst++ {
				if gotRecv[dst] != wantRecv[dst] {
					t.Fatalf("workers=%d dst=%d recv=%d want %d", workers, dst, gotRecv[dst], wantRecv[dst])
				}
				if len(gotShards[dst]) != len(wantShards[dst]) {
					t.Fatalf("workers=%d dst=%d shard len %d want %d", workers, dst, len(gotShards[dst]), len(wantShards[dst]))
				}
				for i := range wantShards[dst] {
					if gotShards[dst][i] != wantShards[dst][i] {
						t.Fatalf("workers=%d dst=%d element %d: %d want %d (src-order violated)",
							workers, dst, i, gotShards[dst][i], wantShards[dst][i])
					}
				}
			}
		}
	}
}

func TestExchangeEmptyInboxStaysNil(t *testing.T) {
	out := [][][]int{{nil, {1}}, {nil, {2}}}
	shards, recv := Exchange(New(4), 2, out)
	if shards[0] != nil || recv[0] != 0 {
		t.Fatalf("empty inbox not nil: %v recv=%d", shards[0], recv[0])
	}
	if len(shards[1]) != 2 || recv[1] != 2 {
		t.Fatalf("inbox 1 wrong: %v recv=%d", shards[1], recv[1])
	}
}
