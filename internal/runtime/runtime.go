// Package runtime is the concurrent execution engine under the MPC
// simulator. It runs the per-server work of a simulated round — local
// computation and exchange assembly — on a pool of OS workers, while
// leaving the simulated cost model untouched: results and metered
// Stats are bit-for-bit identical to serial execution.
//
// The design exploits the structure of the MPC model itself. Within a
// round, the p simulated servers are independent by definition: each
// reads only its own shard (plus read-only broadcast state) and writes
// only its own outputs. ForEachShard maps that independence onto real
// parallelism. Exchange is the one primitive where servers' outputs
// meet; there, each *destination* server owns its inbox — one worker
// assembles shard dst by concatenating the messages out[0][dst],
// out[1][dst], ... in ascending source order, so no two workers ever
// write the same slice and the serial concatenation order is preserved
// exactly. Per-destination received-unit counts are collected into a
// worker-owned vector and aggregated only after the barrier, which is
// why load accounting stays deterministic under any interleaving.
//
// A Runtime is a value-like handle: it carries only the worker count.
// Goroutines are forked per call (fork–join), bounded by the worker
// count, and joined before the call returns, so no pool state outlives
// a primitive and a Runtime is safe for concurrent use.
package runtime

import (
	"context"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
)

// Runtime executes per-shard work on up to workers concurrent OS
// workers. The zero value is not valid; use New, Default or Serial.
type Runtime struct {
	workers int
}

var serial = &Runtime{workers: 1}

// New returns a Runtime with the given worker count. workers <= 0
// selects GOMAXPROCS (the Default sizing); workers == 1 is equivalent
// to Serial.
func New(workers int) *Runtime {
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return serial
	}
	return &Runtime{workers: workers}
}

// Default returns a Runtime sized to GOMAXPROCS — one worker per
// available CPU, the right default because shard work is CPU-bound.
func Default() *Runtime { return New(0) }

// Serial returns the single-worker Runtime: every ForEachShard and
// Exchange runs inline on the calling goroutine, with no goroutines
// forked. It is the escape hatch for debugging and the reference
// semantics the concurrent paths must reproduce exactly.
func Serial() *Runtime { return serial }

// Workers returns the pool size.
func (rt *Runtime) Workers() int { return rt.workers }

// Scratch is a per-worker scratch arena handed to ForEachShardScratch
// callbacks. It amortizes the small bookkeeping buffers a shard
// callback needs every round (destination counts, memoized routing
// decisions) across rounds: the backing storage lives in a sync.Pool
// and is reused, so steady-state rounds allocate nothing for them.
//
// Buffers carved from a Scratch are valid only within the callback
// invocation that carved them — the arena is reset between invocations
// and the Scratch returns to the pool at the round barrier. Callbacks
// must not let carved slices escape (store them in round outputs,
// capture them in closures that outlive the call). Data that crosses
// the round barrier must be allocated normally.
type Scratch struct {
	ints []int
	at   int
}

// reset recycles the arena for the next callback invocation. Carved
// slices from the previous invocation must no longer be referenced.
func (sc *Scratch) reset() { sc.at = 0 }

// Ints carves a zeroed length-n []int from the arena. Successive calls
// within one callback return disjoint slices.
func (sc *Scratch) Ints(n int) []int {
	if sc.at+n > len(sc.ints) {
		// Grow the backing array. Slices carved earlier in this callback
		// keep the old backing, so disjointness is preserved.
		sc.ints = make([]int, 2*len(sc.ints)+n)
		sc.at = 0
	}
	s := sc.ints[sc.at : sc.at+n]
	sc.at += n
	clear(s)
	return s
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch checks a Scratch out of the shared pool for callers that
// run per-shard work outside ForEachShardScratch (e.g. serial helpers).
// Pair with PutScratch.
func GetScratch() *Scratch {
	sc := scratchPool.Get().(*Scratch)
	sc.reset()
	return sc
}

// PutScratch returns a Scratch to the pool. The caller must not use it
// or any slice carved from it afterwards.
func PutScratch(sc *Scratch) { scratchPool.Put(sc) }

// ForEachShard invokes fn(i) for every i in [0, n), each exactly once.
// With one worker the calls run inline in ascending order; otherwise
// they run on up to Workers() goroutines which are joined before
// ForEachShard returns (fork–join barrier). fn must therefore confine
// its writes to state owned by shard i; reads of shared state are safe
// only if no worker writes it.
//
// If any invocation panics, ForEachShard waits for the remaining
// workers and then re-panics with the first panic value observed, so
// the simulator's panic-on-misuse contracts survive parallelism.
func (rt *Runtime) ForEachShard(n int, fn func(i int)) {
	rt.forEachShard(nil, n, false, func(i int, _ *Scratch) { fn(i) })
}

// ForEachShardCtx is ForEachShard with cooperative cancellation: when ctx
// is cancelled, workers stop claiming new shards and the call returns
// ctx.Err() after the join barrier. Shards already in flight run to
// completion (shard work is never interrupted mid-element), so the caller
// observes cancellation with at most one shard's worth of latency per
// worker; partially produced outputs must be discarded by the caller. A
// nil ctx means "never cancelled" and is equivalent to ForEachShard.
func (rt *Runtime) ForEachShardCtx(ctx context.Context, n int, fn func(i int)) error {
	return rt.forEachShard(ctx, n, false, func(i int, _ *Scratch) { fn(i) })
}

// ForEachShardScratch is ForEachShard with a per-worker Scratch arena:
// every invocation of fn receives the scratch owned by the worker
// running it, freshly reset. The arenas come from a shared sync.Pool
// and return to it before ForEachShardScratch returns, so steady-state
// rounds reuse the same backing buffers instead of reallocating them.
// The Scratch escape rules apply (see Scratch).
func (rt *Runtime) ForEachShardScratch(n int, fn func(i int, sc *Scratch)) {
	rt.forEachShard(nil, n, true, fn)
}

// ForEachShardScratchCtx is ForEachShardScratch with the cooperative
// cancellation semantics of ForEachShardCtx.
func (rt *Runtime) ForEachShardScratchCtx(ctx context.Context, n int, fn func(i int, sc *Scratch)) error {
	return rt.forEachShard(ctx, n, true, fn)
}

func (rt *Runtime) forEachShard(ctx context.Context, n int, scratch bool, fn func(i int, sc *Scratch)) error {
	if n <= 0 {
		return nil
	}
	// The cancellation probe between shard claims is an inlined nil check
	// (not a closure), keeping the uncancellable paths allocation-free.
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	w := rt.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		var sc *Scratch
		if scratch {
			sc = GetScratch()
			defer PutScratch(sc)
		}
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if scratch {
				sc.reset()
			}
			fn(i, sc)
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal atomic.Value
	)
	body := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if panicked.CompareAndSwap(false, true) {
					panicVal.Store(&r)
				}
			}
		}()
		var sc *Scratch
		if scratch {
			sc = GetScratch()
			defer PutScratch(sc)
		}
		for {
			i := int(next.Add(1)) - 1
			if i >= n || panicked.Load() || (ctx != nil && ctx.Err() != nil) {
				return
			}
			if scratch {
				sc.reset()
			}
			fn(i, sc)
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go body()
	}
	wg.Wait()
	if panicked.Load() {
		panic(*panicVal.Load().(*any))
	}
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// Exchange assembles the inboxes of one simulated communication round:
// out[src][dst] is the message source server src sends to destination
// dst, and shard dst of the result is the concatenation of
// out[0][dst], out[1][dst], ... in ascending src order (message order
// preserved), exactly as in serial execution. Each destination's inbox
// is built by a single worker into a buffer it owns, so the function
// involves no shared-slice writes; destinations with no incoming units
// keep a nil shard.
//
// recv[dst] is the number of units destination dst received. It is
// written once per destination before the join barrier and read by the
// caller only after Exchange returns, making the metering aggregation
// (max → MaxLoad, sum → TotalComm) independent of scheduling.
//
// A nil (or empty) out[src] row means source src sends nothing this
// round; sparse senders (coordinator fan-outs, boundary fix-ups) use
// this to avoid materializing p empty destination rows per silent
// source. Exchange validates only pDst-conformance of out's rows that
// it touches; callers perform shape validation (with their own panic
// messages) before calling.
func Exchange[T any](rt *Runtime, pDst int, out [][][]T) (shards [][]T, recv []int64) {
	shards, recv, _ = ExchangeCtx[T](nil, rt, pDst, out)
	return shards, recv
}

// ExchangeCtx is Exchange with cooperative cancellation (the semantics of
// ForEachShardCtx): on cancellation the partially assembled shards are
// abandoned and ctx.Err() is returned; the caller must not use them. This
// is the round barrier a cancelled query stops at.
func ExchangeCtx[T any](ctx context.Context, rt *Runtime, pDst int, out [][][]T) (shards [][]T, recv []int64, err error) {
	shards = make([][]T, pDst)
	recv = make([]int64, pDst)
	err = rt.ForEachShardCtx(ctx, pDst, func(dst int) {
		total := 0
		for src := range out {
			if len(out[src]) == 0 {
				continue
			}
			total += len(out[src][dst])
		}
		if total == 0 {
			return
		}
		inbox := make([]T, 0, total)
		for src := range out {
			if len(out[src]) == 0 {
				continue
			}
			inbox = append(inbox, out[src][dst]...)
		}
		shards[dst] = inbox
		recv[dst] = int64(total)
	})
	if err != nil {
		return nil, nil, err
	}
	return shards, recv, nil
}
