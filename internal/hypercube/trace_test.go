package hypercube

import (
	"context"
	"testing"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/workload"
)

// TestTraceDeterminism: a traced HyperCube run must be bit-identical to an
// untraced one, and its timeline must include the single grid round.
func TestTraceDeterminism(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst, _ := workload.Blocks(q, 8, 3)

	run := func(ex *mpc.Exec) (dist.Rel[int64], mpc.Stats) {
		rels := make(map[string]dist.Rel[int64])
		for _, e := range q.Edges {
			rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], 8)
		}
		return JoinAggregate(intSR, q, rels, 42)
	}

	plainRes, plainSt := run(mpc.NewExec(context.Background(), 1))
	tr := mpc.NewTracer()
	tracedRes, tracedSt := run(mpc.NewExec(context.Background(), 1).WithTracer(tr))

	if plainSt != tracedSt {
		t.Fatalf("stats differ: %+v vs %+v", plainSt, tracedSt)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(plainRes), dist.ToRelation(tracedRes)) {
		t.Fatal("results differ between traced and untraced runs")
	}
	rounds := tr.Rounds()
	if len(rounds) == 0 {
		t.Fatal("no rounds traced")
	}
	found := false
	for _, rt := range rounds {
		if rt.Op == "hypercube.grid" {
			found = true
		}
	}
	if !found {
		t.Fatalf("timeline lacks hypercube.grid: %+v", rounds)
	}
}
