package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func distRels(q *hypergraph.Query, inst db.Instance[int64], p int) map[string]dist.Rel[int64] {
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	return rels
}

func TestOptimalSharesProductBound(t *testing.T) {
	q := hypergraph.LineQuery(3)
	sizes := map[string]int{"R1": 100, "R2": 100, "R3": 100}
	for _, p := range []int{1, 4, 16, 64} {
		s := OptimalShares(q, sizes, p)
		if s.P() > p {
			t.Fatalf("p=%d: shares %v exceed budget", p, s)
		}
		if len(s.Dims) != 4 {
			t.Fatalf("dims = %v", s.Dims)
		}
	}
}

func TestOptimalSharesPrefersSkewedSizes(t *testing.T) {
	// Matmul with a huge R1: the B and A dimensions should get the shares.
	q := hypergraph.MatMulQuery()
	s := OptimalShares(q, map[string]int{"R1": 100000, "R2": 100}, 16)
	// Predicted load must beat the trivial (all ones) assignment.
	trivial := 100000.0 + 100.0
	got := 0.0
	for _, e := range q.Edges {
		den := 1.0
		for _, a := range e.Attrs {
			den *= float64(s.Dims[idxOf(s.Attrs, a)])
		}
		got += float64(map[string]int{"R1": 100000, "R2": 100}[e.Name]) / den
	}
	if got >= trivial {
		t.Fatalf("shares %v do not improve on trivial", s)
	}
}

func TestFullJoinMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q *hypergraph.Query
		switch rng.Intn(3) {
		case 0:
			q = hypergraph.MatMulQuery()
		case 1:
			q = hypergraph.LineQuery(3)
		default:
			q = hypergraph.StarQuery(3)
		}
		// Full query: all attributes are output.
		full := hypergraph.NewQuery(q.Edges, q.Attrs()...)
		inst := make(db.Instance[int64])
		for _, e := range full.Edges {
			r := relation.New[int64](e.Attrs...)
			for i := 0; i < rng.Intn(40)+5; i++ {
				r.Append(int64(rng.Intn(4)+1), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
			}
			inst[e.Name] = relation.Compact[int64](intSR, r)
		}
		p := rng.Intn(14) + 2
		got, _ := FullJoin(intSR, full, distRels(full, inst, p), uint64(seed))
		want, err := refengine.BruteForce[int64](intSR, full, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFullJoinNoDuplicates(t *testing.T) {
	// Each join result must be emitted by exactly one server.
	q := hypergraph.MatMulQuery()
	full := hypergraph.NewQuery(q.Edges, "A", "B", "C")
	inst, _ := workload.Blocks(full, 6, 2)
	got, _ := FullJoin(intSR, full, distRels(full, inst, 9), 3)
	seen := map[string]bool{}
	idx := []int{0, 1, 2}
	for _, shard := range got.Part.Shards {
		for _, row := range shard {
			k := relation.EncodeKey(row.Vals, idx)
			if seen[k] {
				t.Fatalf("duplicate full-join result %v", row.Vals)
			}
			seen[k] = true
		}
	}
}

func TestJoinAggregateMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := hypergraph.MatMulQuery()
		inst := make(db.Instance[int64])
		for _, e := range q.Edges {
			r := relation.New[int64](e.Attrs...)
			for i := 0; i < 50; i++ {
				r.Append(int64(rng.Intn(3)+1), relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
			}
			inst[e.Name] = relation.Compact[int64](intSR, r)
		}
		got, _ := JoinAggregate(intSR, q, distRels(q, inst, 6), uint64(seed))
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("seed %d: hypercube join-aggregate mismatch", seed)
		}
	}
}

func TestAggregationIsTheBottleneck(t *testing.T) {
	// §1.4's claim: computing the full join first makes the OUT_f/p
	// aggregation dominate. On a dense-B instance OUT_f = mult·OUT; the
	// hypercube route must pay ≥ OUT_f/p while the §3 algorithm does not.
	q := hypergraph.MatMulQuery()
	const p = 8
	inst, meta := workload.BlocksMulti(q, 64, 4, 8) // OUT_f = 8·OUT
	outf := meta.Out * 8
	_, st := JoinAggregate(intSR, q, distRels(q, inst, p), 1)
	if int64(st.MaxLoad) < outf/int64(p)/4 {
		t.Fatalf("hypercube route load %d suspiciously below OUT_f/p = %d", st.MaxLoad, outf/int64(p))
	}
}

func TestForEachCell(t *testing.T) {
	radix := []int{2, 3, 2}
	var cells []int
	forEachCell(radix, map[int]int{1: 2}, func(c int) { cells = append(cells, c) })
	if len(cells) != 4 { // 2·1·2 free combinations
		t.Fatalf("cells = %v", cells)
	}
	// All cells must decode to coordinate 2 on dimension 1.
	for _, c := range cells {
		d2 := c % 2
		d1 := (c / 2) % 3
		if d1 != 2 {
			t.Fatalf("cell %d has dim1 = %d (dims %d %d)", c, d1, d1, d2)
		}
	}
}
