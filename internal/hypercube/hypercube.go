// Package hypercube implements the HyperCube (a.k.a. Shares) algorithm —
// the worst-case optimal single-round MPC algorithm for FULL conjunctive
// queries [Afrati–Ullman; Beame–Koutris–Suciu; §1.4 of Hu–Yi PODS'20].
//
// The p servers are arranged as a grid with one dimension per attribute:
// attribute x receives a share p_x with Π_x p_x ≤ p, and a tuple of
// relation R_e is replicated to every server whose coordinates agree with
// the tuple's hashed values on e's attributes. Every potential join result
// then meets at exactly one server, which emits it locally.
//
// Hu–Yi §1.4 discuss this algorithm as the alternative route to
// join-aggregate queries: compute the full join worst-case optimally, then
// aggregate. Their observation — "the aggregation step will become the
// bottleneck with a load of O(OUT_f/p)" — is exactly what the ALT-fulljoin
// experiment measures against this implementation.
package hypercube

import (
	"fmt"
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/kmv"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// Shares is a share assignment: one dimension size per attribute, in
// Query.Attrs() order, with product ≤ p.
type Shares struct {
	Attrs []hypergraph.Attr
	Dims  []int
}

// P returns the number of grid servers (the product of the dimensions).
func (s Shares) P() int {
	p := 1
	for _, d := range s.Dims {
		p *= d
	}
	return p
}

// String implements fmt.Stringer.
func (s Shares) String() string {
	out := ""
	for i, a := range s.Attrs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", a, s.Dims[i])
	}
	return out
}

// OptimalShares picks the integer share vector (product ≤ p) minimizing
// the predicted per-server input Σ_e N_e / Π_{x∈e} p_x, by exhaustive
// search — queries have a constant number of attributes, so the search
// space is tiny. sizes maps edge names to |R_e|.
func OptimalShares(q *hypergraph.Query, sizes map[string]int, p int) Shares {
	attrs := q.Attrs()
	best := Shares{Attrs: attrs, Dims: ones(len(attrs))}
	bestCost := math.Inf(1)
	dims := ones(len(attrs))
	var rec func(i, prod int)
	rec = func(i, prod int) {
		if i == len(attrs) {
			cost := 0.0
			for _, e := range q.Edges {
				den := 1.0
				for _, a := range e.Attrs {
					den *= float64(dims[idxOf(attrs, a)])
				}
				cost += float64(sizes[e.Name]) / den
			}
			if cost < bestCost {
				bestCost = cost
				best = Shares{Attrs: attrs, Dims: append([]int(nil), dims...)}
			}
			return
		}
		for d := 1; prod*d <= p; d++ {
			dims[i] = d
			rec(i+1, prod*d)
		}
		dims[i] = 1
	}
	rec(0, 1)
	return best
}

// FullJoin computes the full join of the tree query (every attribute is
// an output) in a single data round with the HyperCube grid. The result
// stays where it is produced; each join result is emitted at exactly one
// server, so no deduplication is needed. Load: the worst-case optimal
// O(N/p^{1/ρ*}) per server for the chosen shares, plus the coordinator
// rounds that size the shares.
func FullJoin[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], seed uint64) (dist.Rel[W], mpc.Stats) {
	p := anyRel(rels).P()
	ex := anyRel(rels).Part.Scope()

	// Learn the relation sizes (a coordinator statistic).
	sizes := make(map[string]int, len(q.Edges))
	var st mpc.Stats
	for _, e := range q.Edges {
		n, s := mpc.TotalCount(rels[e.Name].Part)
		sizes[e.Name] = int(n)
		st = mpc.Seq(st, s)
	}
	shares := OptimalShares(q, sizes, p)
	grid := shares.P()

	// Mixed-radix coordinates: coordOf(attr value assignments) → server.
	attrs := shares.Attrs
	radix := shares.Dims

	// Route every tuple to all grid cells agreeing with its hashed values.
	type hcRow struct {
		edge int
		row  relation.Row[W]
	}
	out := make([][][]hcRow, p)
	for src := range out {
		out[src] = make([][]hcRow, grid)
	}
	// Source-major (edge inner) so each source's outbox builds on one
	// worker; within a source the append order is edge-major, matching the
	// serial edge-outer iteration exactly.
	edgeCols := make([][]int, len(q.Edges))
	for ei, e := range q.Edges {
		edgeCols[ei] = rels[e.Name].Cols(e.Attrs...)
	}
	ex.ForEachShard(p, func(src int) {
		for ei, e := range q.Edges {
			cols := edgeCols[ei]
			for _, row := range rels[e.Name].Part.Shards[src] {
				// Fixed coordinates from the tuple's values.
				fixed := make(map[int]int, len(cols))
				for i, c := range cols {
					ai := idxOf(attrs, e.Attrs[i])
					fixed[ai] = int(kmv.Hash64(uint64(row.Vals[c]), seed+uint64(ai)) % uint64(radix[ai]))
				}
				forEachCell(radix, fixed, func(cell int) {
					out[src][cell] = append(out[src][cell], hcRow{edge: ei, row: row})
				})
			}
		}
	})
	mpc.TraceOp(ex, "hypercube.grid")
	routed, s := mpc.ExchangeToIn(ex, grid, out)
	st = mpc.Seq(st, s)

	// Local full join per cell.
	order := joinOrder(q)
	outSchema := make([]dist.Attr, len(attrs))
	copy(outSchema, attrs)
	result := mpc.MapShards(routed, func(_ int, shard []hcRow) []relation.Row[W] {
		parts := make([]*relation.Relation[W], len(q.Edges))
		for ei, e := range q.Edges {
			parts[ei] = relation.New[W](e.Attrs...)
		}
		for _, hr := range shard {
			parts[hr.edge].AppendRow(hr.row)
		}
		acc := parts[order[0]]
		for _, ei := range order[1:] {
			acc = relation.Join(sr, acc, parts[ei])
		}
		return relation.Reorder(acc, outSchema).Rows
	})
	return dist.Rel[W]{Schema: outSchema, Part: result}, st
}

// JoinAggregate is the §1.4 alternative for join-aggregate queries:
// HyperCube full join, then a distributed ⊕-aggregation onto the output
// attributes. The aggregation shuffles OUT_f rows — the bottleneck Hu–Yi
// identify.
func JoinAggregate[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], seed uint64) (dist.Rel[W], mpc.Stats) {
	live, st := dist.RemoveDangling(q, rels)
	full, s := FullJoin(sr, q, live, seed)
	st = mpc.Seq(st, s)
	agg, s2 := dist.ProjectAgg(sr, full, toAttrs(q.Output)...)
	return agg, mpc.Seq(st, s2)
}

// joinOrder returns edge indices such that each edge after the first
// shares an attribute with the union of the previous ones.
func joinOrder(q *hypergraph.Query) []int {
	used := make([]bool, len(q.Edges))
	attrs := make(map[hypergraph.Attr]bool)
	order := []int{0}
	used[0] = true
	for _, a := range q.Edges[0].Attrs {
		attrs[a] = true
	}
	for len(order) < len(q.Edges) {
		for i, e := range q.Edges {
			if used[i] {
				continue
			}
			touches := false
			for _, a := range e.Attrs {
				if attrs[a] {
					touches = true
					break
				}
			}
			if touches {
				used[i] = true
				order = append(order, i)
				for _, a := range e.Attrs {
					attrs[a] = true
				}
				break
			}
		}
	}
	return order
}

// forEachCell enumerates all grid cells whose coordinates agree with the
// fixed dimensions, calling f with the mixed-radix cell id.
func forEachCell(radix []int, fixed map[int]int, f func(cell int)) {
	var rec func(i, acc int)
	rec = func(i, acc int) {
		if i == len(radix) {
			f(acc)
			return
		}
		if v, ok := fixed[i]; ok {
			rec(i+1, acc*radix[i]+v)
			return
		}
		for v := 0; v < radix[i]; v++ {
			rec(i+1, acc*radix[i]+v)
		}
	}
	rec(0, 0)
}

func idxOf(attrs []hypergraph.Attr, a hypergraph.Attr) int {
	for i, x := range attrs {
		if x == a {
			return i
		}
	}
	panic(fmt.Sprintf("hypercube: attribute %q not in query", a))
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func toAttrs(as []hypergraph.Attr) []dist.Attr {
	out := make([]dist.Attr, len(as))
	copy(out, as)
	return out
}

func anyRel[W any](rels map[string]dist.Rel[W]) dist.Rel[W] {
	for _, r := range rels {
		return r
	}
	panic("hypercube: no relations")
}
