package mpc

import (
	"fmt"

	xrt "mpcjoin/internal/runtime"
)

// kernels.go holds the allocation-lean routing kernel shared by every
// primitive and engine that builds exchange outboxes. Historically each
// call site grew p destination rows by repeated append — p slice
// headers plus O(log) reallocation copies per row, every round. The
// counted two-pass build replaces that with exactly three allocations
// per source (row table, backing buffer, and a count vector that a
// Scratch arena amortizes away): count per-destination sizes, carve
// contiguous sub-slices of one buffer, fill.

// BuildOutbox assembles one source server's destination rows for an
// exchange onto pDst servers using a counted two-pass build. scan is
// invoked exactly twice with an emit callback: the first invocation
// (fill == false) tallies per-destination unit counts, the second
// (fill == true) places elements into contiguous sub-slices of a
// single backing buffer. scan must emit the same destination sequence
// in both invocations — route from read-only state, or memoize the
// decisions (a Scratch is the natural place). The element argument is
// ignored during the count pass, so callers may defer constructing
// expensive elements to the fill pass.
//
// Destinations that receive nothing keep a nil row, matching the
// append-built outboxes this replaces. Out-of-range destinations panic
// with what naming the calling primitive.
//
// sc, when non-nil, provides the count vector from the worker's arena;
// a nil sc allocates it (serial helpers, tests).
func BuildOutbox[T any](sc *xrt.Scratch, pDst int, what string, scan func(fill bool, emit func(dst int, x T))) [][]T {
	var counts []int
	if sc != nil {
		counts = sc.Ints(pDst)
	} else {
		counts = make([]int, pDst)
	}
	total := 0
	scan(false, func(dst int, _ T) {
		if dst < 0 || dst >= pDst {
			panic(fmt.Sprintf("mpc: %s destination %d out of range [0,%d)", what, dst, pDst))
		}
		counts[dst]++
		total++
	})
	row := make([][]T, pDst)
	if total == 0 {
		return row
	}
	buf := make([]T, total)
	at := 0
	for d, c := range counts {
		if c > 0 {
			row[d] = buf[at:at : at+c]
			at += c
		}
	}
	scan(true, func(dst int, x T) {
		row[dst] = append(row[dst], x)
	})
	for d, c := range counts {
		if len(row[d]) != c {
			panic(fmt.Sprintf("mpc: %s emitted %d units for destination %d on the fill pass, %d on the count pass", what, len(row[d]), d, c))
		}
	}
	return row
}

// BuildOutboxDests assembles one source's destination rows from a
// precomputed destination array: element src[j] goes to dests[j]. It keeps
// BuildOutbox's layout — contiguous sub-slices of one backing buffer in
// ascending destination order, nil rows for empty destinations — but
// places elements in a single pass over the data, since the destinations
// are already materialized: count from the int array (which the CPU
// streams far faster than re-running a scan closure), carve, then write
// through per-destination cursors. Use it wherever the destination of
// every element is known up front (Route's memoized dests, the sort
// partition's bucket walk); keep BuildOutbox for scans with variable
// fan-out.
//
// Out-of-range destinations panic with what naming the calling primitive.
// sc, when non-nil, provides the count vector from the worker's arena.
func BuildOutboxDests[T any](sc *xrt.Scratch, pDst int, what string, dests []int, src []T) [][]T {
	if len(dests) != len(src) {
		panic(fmt.Sprintf("mpc: %s destination array has %d entries for %d elements", what, len(dests), len(src)))
	}
	var counts []int
	if sc != nil {
		counts = sc.Ints(pDst)
	} else {
		counts = make([]int, pDst)
	}
	for _, d := range dests {
		if d < 0 || d >= pDst {
			panic(fmt.Sprintf("mpc: %s destination %d out of range [0,%d)", what, d, pDst))
		}
		counts[d]++
	}
	row := make([][]T, pDst)
	if len(src) == 0 {
		return row
	}
	buf := make([]T, len(src))
	at := 0
	for d, c := range counts {
		if c > 0 {
			row[d] = buf[at : at+c : at+c]
			counts[d] = at // repurpose as the destination's write cursor
			at += c
		}
	}
	for j, d := range dests {
		buf[counts[d]] = src[j]
		counts[d]++
	}
	return row
}
