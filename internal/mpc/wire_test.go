package mpc

// wire_test.go covers the mpc-side wire seam with an in-memory fake:
// round numbering, the raw element codec, and the abort paths for a
// misbehaving transport. End-to-end TCP behavior lives in
// internal/transport's tests.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// loopWire is a correct in-memory Wire: it assembles inboxes exactly as
// the in-process Exchange would, honoring drop and crash directives, and
// records the rounds it carried.
type loopWire struct {
	rounds []WireRound
	closed bool
}

func (w *loopWire) Close() error { w.closed = true; return nil }

func (w *loopWire) ExchangeRound(_ context.Context, r *WireRound) (*WireInbox, error) {
	cp := *r
	cp.Msgs = append([]WireMsg(nil), r.Msgs...)
	w.rounds = append(w.rounds, cp)

	in := &WireInbox{Segs: make([][]WireMsg, r.PDst), Recv: make([]int64, r.PDst)}
	for i, m := range r.Msgs {
		if i == r.Drop {
			continue
		}
		if m.To == r.Crash {
			in.Lost += int64(m.Units)
			continue
		}
		in.Segs[m.To] = append(in.Segs[m.To], m)
		in.Recv[m.To] += int64(m.Units)
	}
	return in, nil
}

type pair struct{ A, B int64 }

func TestWireExchangeMatchesInline(t *testing.T) {
	data := make([]pair, 64)
	for i := range data {
		data[i] = pair{A: int64(i), B: int64(i * i)}
	}
	run := func(ex *Exec) (Part[pair], Stats) {
		pt := DistributeIn(ex, data, 8)
		return Route(pt, func(_ int, x pair) int { return int(x.A) % 8 })
	}
	gotI, stI := run(NewExec(context.Background(), 1))

	w := &loopWire{}
	gotW, stW := run(NewExec(context.Background(), 1).WithWire(w))

	if stI != stW {
		t.Fatalf("Stats diverge: inline %+v, wire %+v", stI, stW)
	}
	for s := range gotI.Shards {
		if len(gotI.Shards[s]) != len(gotW.Shards[s]) {
			t.Fatalf("shard %d sizes diverge", s)
		}
		for i := range gotI.Shards[s] {
			if gotI.Shards[s][i] != gotW.Shards[s][i] {
				t.Fatalf("shard %d element %d diverges: %+v vs %+v", s, i, gotI.Shards[s][i], gotW.Shards[s][i])
			}
		}
	}
	if len(w.rounds) != 1 || w.rounds[0].Seq != 1 {
		t.Fatalf("wire carried %d rounds, first seq %d; want 1 round, seq 1", len(w.rounds), w.rounds[0].Seq)
	}
}

func TestWireSeqIncrementsPerRound(t *testing.T) {
	w := &loopWire{}
	ex := NewExec(context.Background(), 1).WithWire(w)
	pt := DistributeIn(ex, []int64{1, 2, 3, 4}, 4)
	pt, _ = Route(pt, func(_ int, x int64) int { return int(x) % 4 })
	_, _ = Route(pt, func(_ int, x int64) int { return int(x+1) % 4 })
	if len(w.rounds) != 2 || w.rounds[0].Seq != 1 || w.rounds[1].Seq != 2 {
		t.Fatalf("rounds = %+v", w.rounds)
	}
}

// shortWire delivers only a prefix of each message's units — a transport
// that silently loses data. Without a fault plane the barrier must abort
// the execution rather than hand short inboxes to the algorithm.
type shortWire struct{ loopWire }

func (w *shortWire) ExchangeRound(ctx context.Context, r *WireRound) (*WireInbox, error) {
	in, err := w.loopWire.ExchangeRound(ctx, r)
	if err != nil {
		return nil, err
	}
	for dst, segs := range in.Segs {
		if len(segs) == 0 {
			continue
		}
		sg := segs[len(segs)-1]
		elem := len(sg.Payload) / sg.Units
		sg.Units--
		sg.Payload = sg.Payload[:sg.Units*elem]
		in.Recv[dst] -= 1
		if sg.Units == 0 {
			in.Segs[dst] = segs[:len(segs)-1]
		} else {
			segs[len(segs)-1] = sg
		}
		break
	}
	return in, nil
}

func TestWireShortDeliveryAborts(t *testing.T) {
	var err error
	func() {
		defer Recover(&err)
		ex := NewExec(context.Background(), 1).WithWire(&shortWire{})
		pt := DistributeIn(ex, []int64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
		Route(pt, func(_ int, x int64) int { return int(x) % 4 })
	}()
	if err == nil {
		t.Fatal("short delivery went undetected")
	}
	if !strings.Contains(err.Error(), "transport") {
		t.Fatalf("err = %v, want a transport error", err)
	}
}

// errWire fails every round.
type errWire struct{}

func (errWire) Close() error { return nil }
func (errWire) ExchangeRound(context.Context, *WireRound) (*WireInbox, error) {
	return nil, errors.New("boom")
}

func TestWireErrorSurfacesAtRoot(t *testing.T) {
	var err error
	func() {
		defer Recover(&err)
		ex := NewExec(context.Background(), 1).WithWire(errWire{})
		pt := DistributeIn(ex, []int64{1, 2}, 2)
		Route(pt, func(_ int, x int64) int { return int(x) % 2 })
	}()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the wire's error", err)
	}
}

func TestRawCodecRoundTrip(t *testing.T) {
	xs := []pair{{1, 2}, {3, 4}, {5, 6}}
	b := rawBytes(xs)
	if len(b) != 3*16 {
		t.Fatalf("rawBytes length %d, want 48", len(b))
	}
	got, err := appendRaw[pair](nil, 3, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("element %d: %+v != %+v", i, got[i], xs[i])
		}
	}
}

func TestRawCodecZeroSize(t *testing.T) {
	xs := []struct{}{{}, {}, {}}
	b := rawBytes(xs)
	if b != nil {
		t.Fatalf("zero-size payload = %v, want nil", b)
	}
	got, err := appendRaw[struct{}](nil, 3, nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("decode: %v, %d elements", err, len(got))
	}
}

func TestAppendRawRejectsBadLengths(t *testing.T) {
	if _, err := appendRaw[int64](nil, 2, make([]byte, 15)); err == nil {
		t.Error("accepted 15 bytes for 2 int64s")
	}
	if _, err := appendRaw[int64](nil, -1, nil); err == nil {
		t.Error("accepted negative units")
	}
	if _, err := appendRaw[struct{}](nil, 1, []byte{1}); err == nil {
		t.Error("accepted payload bytes for zero-size elements")
	}
}
