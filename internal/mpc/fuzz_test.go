package mpc

import (
	"testing"
)

// FuzzReduceByKey feeds arbitrary byte strings as key streams and checks
// the distributed reduce against a map-based fold, across varying server
// counts derived from the input.
func FuzzReduceByKey(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 1}, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7}, uint8(3))
	f.Add([]byte{0, 255, 0, 255, 128}, uint8(9))
	f.Fuzz(func(t *testing.T, keys []byte, pRaw uint8) {
		p := int(pRaw)%16 + 1
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		data := make([]KeyCount[int64], len(keys))
		want := map[int64]int64{}
		for i, k := range keys {
			data[i] = KeyCount[int64]{Key: int64(k), Count: int64(i + 1)}
			want[int64(k)] += int64(i + 1)
		}
		reduced, st := ReduceByKey(Distribute(data, p),
			func(kc KeyCount[int64]) int64 { return kc.Key },
			func(a, b KeyCount[int64]) KeyCount[int64] {
				return KeyCount[int64]{Key: a.Key, Count: a.Count + b.Count}
			})
		got := map[int64]int64{}
		for _, kc := range Collect(reduced) {
			if _, dup := got[kc.Key]; dup {
				t.Fatalf("duplicate key %d in output", kc.Key)
			}
			got[kc.Key] = kc.Count
		}
		if len(got) != len(want) {
			t.Fatalf("key sets differ: %d vs %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d: %d, want %d", k, got[k], v)
			}
		}
		if st.Rounds < 1 && len(keys) > 0 {
			t.Fatal("no rounds metered")
		}
	})
}

// FuzzSortBy checks the distributed sort against the obvious spec on
// arbitrary inputs and server counts.
func FuzzSortBy(f *testing.F) {
	f.Add([]byte{3, 1, 2}, uint8(2))
	f.Add([]byte{5, 5, 5, 5}, uint8(7))
	f.Fuzz(func(t *testing.T, vals []byte, pRaw uint8) {
		p := int(pRaw)%12 + 1
		if len(vals) > 4096 {
			vals = vals[:4096]
		}
		data := make([]int, len(vals))
		for i, v := range vals {
			data[i] = int(v)
		}
		sorted, _ := SortBy(Distribute(data, p), func(a, b int) bool { return a < b })
		if sorted.Len() != len(data) {
			t.Fatalf("lost elements: %d vs %d", sorted.Len(), len(data))
		}
		prev := -1
		counts := map[int]int{}
		for _, shard := range sorted.Shards {
			for _, x := range shard {
				if x < prev {
					t.Fatal("not globally sorted")
				}
				prev = x
				counts[x]++
			}
		}
		for _, v := range vals {
			counts[int(v)]--
		}
		for _, c := range counts {
			if c != 0 {
				t.Fatal("multiset changed")
			}
		}
	})
}

// FuzzMultiSearch checks predecessor semantics on arbitrary X/Y sets.
func FuzzMultiSearch(f *testing.F) {
	f.Add([]byte{5, 10, 15}, []byte{7, 12}, uint8(3))
	f.Add([]byte{1}, []byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, xsRaw, ysRaw []byte, pRaw uint8) {
		p := int(pRaw)%8 + 1
		if len(xsRaw) > 1024 {
			xsRaw = xsRaw[:1024]
		}
		if len(ysRaw) > 1024 {
			ysRaw = ysRaw[:1024]
		}
		xs := make([]int, len(xsRaw))
		for i, v := range xsRaw {
			xs[i] = int(v)
		}
		ys := make([]int, len(ysRaw))
		for i, v := range ysRaw {
			ys[i] = int(v)
		}
		preds, _ := MultiSearch(Distribute(xs, p), Distribute(ys, p),
			func(x int) int { return x }, func(y int) int { return y })
		if preds.Len() != len(xs) {
			t.Fatalf("result count %d, want %d", preds.Len(), len(xs))
		}
		for _, pr := range Collect(preds) {
			best, found := 0, false
			for _, y := range ys {
				if y <= pr.X && (!found || y > best) {
					best, found = y, true
				}
			}
			if found != pr.Found || (found && pr.Y != best) {
				t.Fatalf("pred(%d) = (%d,%v), want (%d,%v)", pr.X, pr.Y, pr.Found, best, found)
			}
		}
	})
}
