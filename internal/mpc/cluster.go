// Package mpc simulates the Massively Parallel Computation (MPC) model of
// Beame, Koutris and Suciu on a single machine, with exact cost metering.
//
// The model: p servers joined by a complete network compute in synchronous
// rounds. In a round every server receives messages, performs arbitrary
// local computation, and sends messages. The cost of an algorithm is its
// number of rounds together with its load L — the maximum number of units
// received by any server in any round, where one unit is one tuple, one
// semiring element, or one O(log N)-bit integer.
//
// The simulator is deterministic and physical: datasets are really
// partitioned into per-server shards (Part), and every primitive moves data
// only through Exchange, which meters per-destination received units. Local
// computation is unmetered, exactly as in the model.
//
// Cost composition follows the model's semantics: steps executed one after
// another add rounds (Seq); independent sub-algorithms executed on disjoint
// server groups in the same phase run simultaneously, so their costs merge
// by taking the maximum rounds and maximum load (Par). Paper algorithms
// that "allocate p_i servers to subquery i" are simulated by routing each
// subquery's input to its group in one metered global exchange and then
// Par-merging the groups' costs.
//
// Where the paper allocates c·p servers for a constant c > 1 (e.g. the sum
// of ⌈·⌉ allocations), the simulator uses that many virtual servers; the
// reported load is the maximum over virtual servers, which matches the
// paper's accounting up to the same constant factors its analysis hides.
//
// Execution vs. model: primitives run their per-server work on the
// execution runtime of the scope (Exec) their input Parts carry — each
// execution owns its runtime and cancellation context, and the scope flows
// from the initial placement (DistributeIn) through every derived Part, so
// concurrent executions with different worker counts never interact. Parts
// created without a scope use the serial runtime. The runtime affects
// only wall-clock time; results and Stats are bit-for-bit identical across
// runtimes, because per-server work is independent within a round and all
// cross-server assembly (Exchange) is owned per destination with metering
// aggregated after the round barrier. Per-element callbacks passed to
// primitives must therefore be safe for concurrent invocation across
// servers (pure functions and read-only captures qualify).
package mpc

import (
	"fmt"
	"unsafe"

	xrt "mpcjoin/internal/runtime"
)

// Stats is the metered cost of an MPC computation fragment.
type Stats struct {
	// Rounds is the number of communication rounds.
	Rounds int
	// MaxLoad is the maximum number of units received by any server in any
	// single round. This is the model's load L: per-round, so sequential
	// composition takes the max across steps, not the sum (a server that
	// receives N/p units in each of 3 rounds has load N/p, not 3N/p).
	MaxLoad int
	// TotalComm is the total number of units sent over the network across
	// all rounds and servers.
	TotalComm int64
	// SumLoad is the sum over rounds of that round's maximum per-server
	// received volume — the total-volume counterpart of MaxLoad. For a
	// single exchange SumLoad == MaxLoad; sequential steps add it while
	// MaxLoad maxes. Use it for total-traffic analyses (e.g. how much a
	// bottleneck server receives over a whole algorithm); MaxLoad remains
	// the quantity the paper's bounds are stated in.
	SumLoad int64
}

// Seq composes costs of steps executed one after another: rounds and
// SumLoad accumulate, while MaxLoad takes the max across steps because the
// model defines load per round — Seq(a, b) costs a.Rounds+b.Rounds rounds
// at load max(a.MaxLoad, b.MaxLoad), exactly how the paper composes "run X,
// then Y" (e.g. Lemma 1's O(1)-round primitives chained at load O(N/p)).
func Seq(ss ...Stats) Stats {
	var out Stats
	for _, s := range ss {
		out.Rounds += s.Rounds
		if s.MaxLoad > out.MaxLoad {
			out.MaxLoad = s.MaxLoad
		}
		out.TotalComm += s.TotalComm
		out.SumLoad += s.SumLoad
	}
	return out
}

// Par composes costs of sub-algorithms that run simultaneously on disjoint
// server groups: rounds and MaxLoad take the max (the groups share the
// rounds), TotalComm adds, and SumLoad takes the max — each round's
// bottleneck server is the worst over the groups, and summing per-group
// bottlenecks would double-count rounds the groups share.
func Par(ss ...Stats) Stats {
	var out Stats
	for _, s := range ss {
		if s.Rounds > out.Rounds {
			out.Rounds = s.Rounds
		}
		if s.MaxLoad > out.MaxLoad {
			out.MaxLoad = s.MaxLoad
		}
		out.TotalComm += s.TotalComm
		if s.SumLoad > out.SumLoad {
			out.SumLoad = s.SumLoad
		}
	}
	return out
}

// Part is a dataset partitioned across p servers; Shards[i] is server i's
// local fragment. A Part's server count is fixed at creation. A Part also
// carries the execution scope (Exec) that created it — primitives read
// their runtime and cancellation context from their input Parts and stamp
// the scope onto their outputs, so the scope flows with the dataflow.
type Part[T any] struct {
	Shards [][]T

	// ex is the execution scope; nil denotes the ambient scope (see Exec).
	ex *Exec
}

// NewPart returns an empty Part over p servers in the ambient scope.
// Execution-scoped callers use NewPartIn.
func NewPart[T any](p int) Part[T] { return NewPartIn[T](nil, p) }

// NewPartIn returns an empty Part over p servers belonging to the given
// execution scope (nil = ambient).
func NewPartIn[T any](ex *Exec, p int) Part[T] {
	if p <= 0 {
		panic(fmt.Sprintf("mpc: invalid server count %d", p))
	}
	return Part[T]{Shards: make([][]T, p), ex: ex}
}

// P returns the number of servers the Part spans.
func (pt Part[T]) P() int { return len(pt.Shards) }

// Len returns the total number of elements across all shards.
func (pt Part[T]) Len() int {
	n := 0
	for _, s := range pt.Shards {
		n += len(s)
	}
	return n
}

// MaxShard returns the largest shard size — the storage load of the Part.
func (pt Part[T]) MaxShard() int {
	m := 0
	for _, s := range pt.Shards {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// Distribute splits data round-robin across p servers, modelling the
// model's assumption that input starts evenly distributed (N/p per server).
// It is the uncounted initial placement, not a communication step. Each
// shard is a defensive copy, so the caller may keep mutating data; when
// the caller hands ownership instead, DistributeOwned skips the copies.
func Distribute[T any](data []T, p int) Part[T] {
	return distributeIn(nil, data, p, true)
}

// DistributeIn is Distribute into an execution scope (nil = ambient); the
// scope then flows to every Part derived from the placement.
func DistributeIn[T any](ex *Exec, data []T, p int) Part[T] {
	return distributeIn(ex, data, p, true)
}

// DistributeOwnedIn is DistributeOwned into an execution scope.
func DistributeOwnedIn[T any](ex *Exec, data []T, p int) Part[T] {
	return distributeIn(ex, data, p, false)
}

// DistributeOwned is Distribute without the per-shard defensive copy:
// shards alias sub-slices of data. The caller transfers ownership — it
// must not mutate data afterwards, and must tolerate primitives
// reordering elements within it (local in-place sorts). Use it on
// freshly built inputs that are handed to exactly one execution
// (cmd/mpcrun's loaded instances, the experiment drivers' generated
// ones); keep Distribute for inputs that are reused or shared.
func DistributeOwned[T any](data []T, p int) Part[T] {
	return distributeIn(nil, data, p, false)
}

func distributeIn[T any](ex *Exec, data []T, p int, copyShards bool) Part[T] {
	pt := NewPartIn[T](ex, p)
	if len(data) == 0 {
		return pt
	}
	per := (len(data) + p - 1) / p
	for i := 0; i < p; i++ {
		lo := i * per
		if lo >= len(data) {
			break
		}
		hi := lo + per
		if hi > len(data) {
			hi = len(data)
		}
		if copyShards {
			pt.Shards[i] = append([]T(nil), data[lo:hi]...)
		} else {
			pt.Shards[i] = data[lo:hi:hi]
		}
	}
	return pt
}

// Collect gathers all shards into one slice. It models reading off the
// final distributed output for verification and is not a metered step:
// query answers are allowed to remain distributed in the MPC model.
func Collect[T any](pt Part[T]) []T {
	out := make([]T, 0, pt.Len())
	for _, s := range pt.Shards {
		out = append(out, s...)
	}
	return out
}

// Exchange performs one communication round. out[src][dst] holds the units
// server src sends to server dst; the result's shard dst is the
// concatenation over src (in src order, preserving order within each
// message). A nil out[src] row means server src sends nothing — sparse
// senders (coordinator fan-outs) need not materialize p empty
// destinations. The returned Stats has Rounds=1 and MaxLoad equal to the
// largest per-destination received volume.
//
// Inbox assembly runs on the ambient runtime (one worker per
// destination); see internal/runtime.Exchange for why the result and
// metering are identical to serial execution.
func Exchange[T any](p int, out [][][]T) (Part[T], Stats) {
	return ExchangeIn(nil, p, out)
}

// ExchangeIn is Exchange inside an execution scope (nil = ambient): the
// round runs on the scope's runtime, observes its cancellation, and the
// resulting Part carries the scope.
func ExchangeIn[T any](ex *Exec, p int, out [][][]T) (Part[T], Stats) {
	if len(out) != p {
		panic(fmt.Sprintf("mpc: Exchange expects %d source servers, got %d", p, len(out)))
	}
	for src := range out {
		if len(out[src]) != p && len(out[src]) != 0 {
			panic(fmt.Sprintf("mpc: Exchange source %d has %d destinations, want %d", src, len(out[src]), p))
		}
	}
	return exchangeOnRuntime(ex, p, out)
}

// ExchangeTo performs one communication round from the current server set
// onto a (possibly different-sized) destination server set: out[src][dst]
// with len(out) source servers and pDst destinations per source (nil rows
// allowed, as in Exchange). This is how "allocate p_i servers to subquery
// i" steps route each subquery's input onto its group of (virtual)
// servers in a single metered round.
func ExchangeTo[T any](pDst int, out [][][]T) (Part[T], Stats) {
	return ExchangeToIn(nil, pDst, out)
}

// ExchangeToIn is ExchangeTo inside an execution scope (nil = ambient).
func ExchangeToIn[T any](ex *Exec, pDst int, out [][][]T) (Part[T], Stats) {
	for src := range out {
		if len(out[src]) != pDst && len(out[src]) != 0 {
			panic(fmt.Sprintf("mpc: ExchangeTo source %d has %d destinations, want %d", src, len(out[src]), pDst))
		}
	}
	return exchangeOnRuntime(ex, pDst, out)
}

// exchangeOnRuntime assembles the round's inboxes on the scope's runtime
// (shape already validated by the caller) and aggregates the
// per-destination received counts into Stats after the barrier, keeping
// the metering deterministic regardless of worker count. It is the round
// barrier of the simulator and therefore the canonical cancellation
// point: a done context is observed here, before and during assembly.
// With a fault plane on the scope, the round instead runs under the
// plane's inject → detect → retry protocol (exchangeFaulty); with a
// transport wire, the barrier is delegated to it (see wire.go); without
// either, the dispatch costs two nil checks.
func exchangeOnRuntime[T any](ex *Exec, pDst int, out [][][]T) (Part[T], Stats) {
	if ex != nil && ex.fp != nil {
		return exchangeFaulty(ex, ex.fp, pDst, out)
	}
	var (
		shards [][]T
		recv   []int64
	)
	if ex != nil && ex.wire != nil {
		// Fault-free wire barrier: the transport must deliver every unit.
		// Verifying the counts against the outboxes here means an
		// undetected transport loss can never silently corrupt a result —
		// without a fault plane there is no retry, so a mismatch aborts.
		shards, recv, _ = exchangeWire[T](ex, ex.nextWireSeq(), 0, pDst, out, -1, -1)
		for src := range out {
			for dst, m := range out[src] {
				if len(m) > 0 {
					recv[dst] -= int64(len(m))
				}
			}
		}
		for dst, d := range recv {
			if d != 0 {
				wireError(fmt.Errorf("destination %d delivery off by %d units with no fault plane to retry", dst, -d))
			}
			recv[dst] = int64(len(shards[dst]))
		}
	} else {
		ex.checkpoint()
		var err error
		shards, recv, err = xrt.ExchangeCtx(ex.Context(), ex.runtime(), pDst, out)
		if err != nil {
			panic(canceled{err})
		}
	}
	st := recvStats(recv)
	if ex != nil && ex.tr != nil {
		var zero T
		ex.tr.record(recv, int64(unsafe.Sizeof(zero)))
	}
	return Part[T]{Shards: shards, ex: ex}, st
}

// recvStats folds a round's per-destination received counts into Stats.
func recvStats(recv []int64) Stats {
	st := Stats{Rounds: 1}
	for _, n := range recv {
		if int(n) > st.MaxLoad {
			st.MaxLoad = int(n)
		}
		st.TotalComm += n
	}
	st.SumLoad = int64(st.MaxLoad)
	return st
}

// exchangeFaulty is the exchange barrier under a fault plane: execute the
// round, let the plane corrupt it, detect the corruption at the
// post-round barrier, and recover by re-executing the round from its
// checkpoint — the immutable outboxes — within the spec's retry budget.
//
// The successful attempt moves exactly the units a fault-free round
// would, so the Stats (and any Tracer record) of a recovered round are
// bit-identical to a fault-free execution; every fault-related quantity
// is accounted on the plane instead. A round still faulty past the
// budget aborts the execution with a *FaultBudgetError through the
// sentinel unwind (recovered into an error at the execution root).
func exchangeFaulty[T any](ex *Exec, fp *FaultPlane, pDst int, out [][][]T) (Part[T], Stats) {
	round, op := fp.beginRound()

	// The pre-round checkpoint's manifest: expected per-destination
	// units, and the round's non-empty messages (drop candidates), both
	// derived from the outboxes in deterministic src-major order.
	expected := make([]int64, pDst)
	var msgs []msgRef
	for src := range out {
		for dst, m := range out[src] {
			if len(m) == 0 {
				continue
			}
			expected[dst] += int64(len(m))
			msgs = append(msgs, msgRef{src: src, dst: dst, units: int64(len(m))})
		}
	}

	budget := fp.spec.retries()
	var seq int64
	if ex.wire != nil {
		// One wire sequence number per logical round; retry attempts
		// re-present the same Seq with a higher Attempt, which is how a
		// peer distinguishes "resend from the checkpoint" from progress.
		seq = ex.nextWireSeq()
	}
	for attempt := 0; ; attempt++ {
		inj := fp.decide(round, attempt, pDst, msgs)

		var (
			shards [][]T
			recv   []int64
			lost   int64
		)
		if ex.wire != nil {
			// Over a wire the plane's directives become physical: the
			// transport elides the dropped message before it is written to
			// the socket and discards a crashed destination's assembled
			// inbox (reporting what it lost), so detection below sees real
			// missing frames, not simulated ones. The checkpoint (out) is
			// still never mutated — retries re-encode from it.
			shards, recv, lost = exchangeWire[T](ex, seq, attempt, pDst, out, inj.crash, inj.dropIdx)
		} else {
			// Apply network-level faults to this attempt's transfer: a
			// dropped message is withheld from assembly. The checkpoint
			// (out) is never mutated — the faulted view shallow-copies the
			// affected source row only.
			fout := out
			if inj.dropIdx >= 0 {
				m := msgs[inj.dropIdx]
				fout = append([][][]T(nil), out...)
				row := append([][]T(nil), fout[m.src]...)
				row[m.dst] = nil
				fout[m.src] = row
			}

			ex.checkpoint()
			var err error
			shards, recv, err = xrt.ExchangeCtx(ex.Context(), ex.runtime(), pDst, fout)
			if err != nil {
				panic(canceled{err})
			}
			// A crashed destination dies mid-round: its assembled inbox is
			// lost with everything it had received this round.
			if inj.crash >= 0 {
				lost = recv[inj.crash]
				shards[inj.crash] = nil
				recv[inj.crash] = 0
			}
		}

		// Post-round barrier: the failure detector sees crashed servers,
		// and count verification compares received units against the
		// checkpoint manifest — how the barrier notices dropped messages.
		failed := inj.crash >= 0
		if !failed {
			for dst, n := range recv {
				if n != expected[dst] {
					failed = true
					break
				}
			}
		}

		retrying := failed && attempt < budget
		fp.observe(round, op, attempt, inj, msgs, lost, retrying)
		if !failed {
			st := recvStats(recv)
			if ex.tr != nil {
				var zero T
				ex.tr.record(recv, int64(unsafe.Sizeof(zero)))
			}
			return Part[T]{Shards: shards, ex: ex}, st
		}
		if !retrying {
			panic(canceled{&FaultBudgetError{
				Round: round, Op: op, Attempts: attempt + 1, Kind: inj.failKind(),
			}})
		}
	}
}

// RouteTo performs one exchange onto pDst destination servers, with each
// element's destinations chosen by dest (returning one or more targets —
// replication is allowed, as in grid joins). The per-source outbox builds
// run on the ambient runtime, so dest must be safe for concurrent calls
// across source servers (pure functions and read-only captures are; it is
// invoked serially within one source, in element order).
func RouteTo[T any](pt Part[T], pDst int, dest func(src int, x T) []int) (Part[T], Stats) {
	ex := pt.scope()
	TraceOp(ex, "route_to")
	out := make([][][]T, pt.P())
	ex.ForEachShardScratch(pt.P(), func(src int, sc *xrt.Scratch) {
		shard := pt.Shards[src]
		if len(shard) == 0 {
			return
		}
		// dest is invoked exactly once per element; the returned
		// destination lists are memoized so both BuildOutbox passes see
		// the same routing without re-running user code.
		dlists := make([][]int, len(shard))
		for j, x := range shard {
			dlists[j] = dest(src, x)
		}
		out[src] = BuildOutbox[T](sc, pDst, "RouteTo", func(fill bool, emit func(int, T)) {
			for j, x := range shard {
				for _, d := range dlists[j] {
					emit(d, x)
				}
			}
		})
	})
	return ExchangeToIn(ex, pDst, out)
}

// Route performs one exchange where each element is sent to the server
// chosen by dest (given the element's current server and the element).
// Like RouteTo, dest must be safe for concurrent calls across source
// servers.
func Route[T any](pt Part[T], dest func(src int, x T) int) (Part[T], Stats) {
	p := pt.P()
	ex := pt.scope()
	TraceOp(ex, "route")
	out := make([][][]T, p)
	ex.ForEachShardScratch(p, func(src int, sc *xrt.Scratch) {
		shard := pt.Shards[src]
		if len(shard) == 0 {
			return
		}
		// dest is invoked exactly once per element; the memoized
		// destinations drive a single-pass placement.
		dests := sc.Ints(len(shard))
		for j, x := range shard {
			dests[j] = dest(src, x)
		}
		out[src] = BuildOutboxDests(sc, p, "Route", dests, shard)
	})
	return ExchangeIn(ex, p, out)
}

// Broadcast replicates the elements of pt to every server: afterwards each
// shard holds all elements (in server, then local order). One round; the
// load is the total element count.
func Broadcast[T any](pt Part[T]) (Part[T], Stats) {
	p := pt.P()
	TraceOp(pt.scope(), "broadcast")
	out := make([][][]T, p)
	for src := range out {
		out[src] = make([][]T, p)
		for dst := 0; dst < p; dst++ {
			out[src][dst] = pt.Shards[src]
		}
	}
	return ExchangeIn(pt.scope(), p, out)
}

// Gather routes every element of pt to server dst (a "convergecast"); used
// for coordinator steps on small statistics vectors.
func Gather[T any](pt Part[T], dst int) (Part[T], Stats) {
	TraceOp(pt.scope(), "gather")
	return Route(pt, func(int, T) int { return dst })
}

// Map applies f to every element locally; zero rounds, zero load. The
// per-shard loops run on the ambient runtime, so f must be safe for
// concurrent calls across servers (as must the callbacks of FlatMap,
// Filter and MapShards — within one server they run serially in element
// order).
func Map[T, U any](pt Part[T], f func(T) U) Part[U] {
	out := NewPartIn[U](pt.scope(), pt.P())
	pt.scope().ForEachShard(pt.P(), func(i int) {
		shard := pt.Shards[i]
		if len(shard) == 0 {
			return
		}
		us := make([]U, len(shard))
		for j, x := range shard {
			us[j] = f(x)
		}
		out.Shards[i] = us
	})
	return out
}

// FlatMap applies f to every element locally, concatenating results.
func FlatMap[T, U any](pt Part[T], f func(T) []U) Part[U] {
	out := NewPartIn[U](pt.scope(), pt.P())
	pt.scope().ForEachShard(pt.P(), func(i int) {
		var us []U
		for _, x := range pt.Shards[i] {
			us = append(us, f(x)...)
		}
		out.Shards[i] = us
	})
	return out
}

// Filter keeps the elements satisfying pred; local, zero cost.
func Filter[T any](pt Part[T], pred func(T) bool) Part[T] {
	out := NewPartIn[T](pt.scope(), pt.P())
	pt.scope().ForEachShard(pt.P(), func(i int) {
		var keep []T
		for _, x := range pt.Shards[i] {
			if pred(x) {
				keep = append(keep, x)
			}
		}
		out.Shards[i] = keep
	})
	return out
}

// MapShards applies f to each shard locally (f receives the server index).
// This is how algorithm packages run their per-server local joins: the
// shard closures execute concurrently on the ambient runtime, one call
// per server, each owning its output slice.
func MapShards[T, U any](pt Part[T], f func(server int, shard []T) []U) Part[U] {
	out := NewPartIn[U](pt.scope(), pt.P())
	pt.scope().ForEachShard(pt.P(), func(i int) {
		out.Shards[i] = f(i, pt.Shards[i])
	})
	return out
}

// Concat places the groups' shards side by side into one Part spanning the
// sum of their server counts. It models sub-algorithm outputs staying on
// the (disjoint) server groups that produced them: no communication.
func Concat[T any](groups ...Part[T]) Part[T] {
	total := 0
	var ex *Exec
	for _, g := range groups {
		total += g.P()
		if ex == nil {
			ex = g.scope()
		}
	}
	out := NewPartIn[T](ex, total)
	at := 0
	for _, g := range groups {
		for _, s := range g.Shards {
			out.Shards[at] = s
			at++
		}
	}
	return out
}

// Reshape reinterprets a Part over a different server count: shard i of
// the input lands on shard i mod p of the output. It costs nothing because
// "virtual servers" allocated by sub-algorithms (grids, bins, subquery
// groups) are hosted by the p physical servers; Reshape merely fixes the
// hosting map after the fact. The metering convention is unchanged: loads
// are measured per virtual server, an undercount of at most the constant
// co-location factor ⌈P_virtual/p⌉ that the paper's own O(p)-allocation
// analysis hides as well.
func Reshape[T any](pt Part[T], p int) Part[T] {
	if pt.P() == p {
		return pt
	}
	out := NewPartIn[T](pt.scope(), p)
	counts := make([]int, p)
	for s, shard := range pt.Shards {
		counts[s%p] += len(shard)
	}
	for d, c := range counts {
		if c > 0 {
			out.Shards[d] = make([]T, 0, c)
		}
	}
	for s, shard := range pt.Shards {
		d := s % p
		out.Shards[d] = append(out.Shards[d], shard...)
	}
	return out
}

// Widen pads pt with empty shards up to p servers (p ≥ pt.P()); no cost.
func Widen[T any](pt Part[T], p int) Part[T] {
	if p < pt.P() {
		panic(fmt.Sprintf("mpc: Widen to %d < current %d", p, pt.P()))
	}
	out := NewPartIn[T](pt.scope(), p)
	copy(out.Shards, pt.Shards)
	return out
}

// Slice returns the sub-Part of servers [lo, hi); shards are shared, not
// copied. It models addressing a contiguous server group.
func Slice[T any](pt Part[T], lo, hi int) Part[T] {
	if lo < 0 || hi > pt.P() || lo > hi {
		panic(fmt.Sprintf("mpc: Slice [%d,%d) out of range [0,%d)", lo, hi, pt.P()))
	}
	return Part[T]{Shards: pt.Shards[lo:hi], ex: pt.ex}
}

// Rebalance spreads pt's elements evenly (round-robin by global arrival
// order: server-major, then local order) across its servers in one metered
// round. Useful after filters that leave skewed shards. Destinations are
// computed from per-server prefix offsets rather than a shared counter, so
// the outbox build parallelizes with the same assignment serial round-robin
// would produce.
func Rebalance[T any](pt Part[T]) (Part[T], Stats) {
	p := pt.P()
	TraceOp(pt.scope(), "rebalance")
	base := make([]int, p)
	at := 0
	for s, shard := range pt.Shards {
		base[s] = at
		at += len(shard)
	}
	out := make([][][]T, p)
	ex := pt.scope()
	ex.ForEachShard(p, func(src int) {
		shard := pt.Shards[src]
		n := len(shard)
		if n == 0 {
			return
		}
		// Round-robin destinations are pure arithmetic, so the outbox is
		// built analytically in one pass: destination d receives exactly
		// the elements at positions j ≡ (d − base[src]) (mod p), a strided
		// gather into contiguous segments of one backing buffer. The
		// buffer layout and element order are bit-identical to what a
		// counted build of (base[src]+j) mod p produces, without paying a
		// modulo — or any per-element destination work — at all.
		row := make([][]T, p)
		buf := make([]T, n)
		b := base[src] % p
		at := 0
		for d := 0; d < p; d++ {
			j0 := d - b
			if j0 < 0 {
				j0 += p
			}
			if j0 >= n {
				continue
			}
			c := (n - j0 + p - 1) / p
			seg := buf[at : at+c : at+c]
			at += c
			for i, j := 0, j0; j < n; i, j = i+1, j+p {
				seg[i] = shard[j]
			}
			row[d] = seg
		}
		out[src] = row
	})
	return ExchangeIn(ex, p, out)
}
