package mpc

import (
	"os"
	"regexp"
	"testing"
)

// TestNoComparisonSortsInHotKernels guards the radix migration: the hot
// sort/reduce kernels must contain no comparison-sort call sites. Every
// comparison sort they need goes through the named fallbacks in radix.go
// (sortFunc, sortStableFunc), so a future edit that quietly puts a hot
// path back on slices.SortFunc — undoing the 2×+ the radix kernel buys —
// fails here instead of shipping.
func TestNoComparisonSortsInHotKernels(t *testing.T) {
	banned := regexp.MustCompile(`slices\.Sort|sort\.Slice|sort\.Stable|sort\.Sort\b`)
	for _, file := range []string{"sort.go", "reduce.go"} {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		if loc := banned.FindIndex(src); loc != nil {
			line := 1 + countNewlines(src[:loc[0]])
			t.Errorf("%s:%d: comparison sort call site %q in a hot kernel file; route it through the radix.go fallbacks",
				file, line, src[loc[0]:loc[1]])
		}
	}
}

func countNewlines(b []byte) int {
	n := 0
	for _, c := range b {
		if c == '\n' {
			n++
		}
	}
	return n
}
