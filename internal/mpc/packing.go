package mpc

import "cmp"

// packing.go implements the parallel-packing primitive of §2.1 (from Hu–Yi
// PODS'19): given N weights 0 < x_i ≤ cap distributed across servers, group
// them into bins so that each bin's total weight is O(cap) and the number
// of bins is O(1 + Σx_i/cap).
//
// The implementation assigns element i to bin ⌊prefix(i)/cap⌋ where
// prefix(i) is the running sum of weights in an arbitrary but fixed global
// order. Every bin except possibly the last covers a full cap-wide window
// of the prefix line, so its total is < 2·cap (a window's own mass cap,
// plus at most one straddling element), and all bins except the last have
// total ≥ cap − max_i x_i ≥ 0 mass *starting* inside them with the window
// fully covered; the bin count is ≤ 1 + Σx/cap. This matches the paper's
// guarantee up to the constant 2 (the paper states ≤ cap per bin and
// ≥ cap/2 for all but one bin); the algorithms only need O(cap) bins, and
// the benchmark harness reports measured constants.
//
// Cost: two O(p)-load coordinator rounds (local totals up, base offsets
// down); the assignment itself is local.

// Binned pairs an element with its assigned bin index.
type Binned[T any] struct {
	X   T
	Bin int
}

// ParallelPack assigns each element a bin index as described above. weight
// must return values in (0, cap]; zero-weight elements are permitted and
// simply inherit the current bin. The result preserves the element's
// placement (no data movement); only O(p) statistics travel.
//
// The returned bin count is numBins ≤ 1 + ⌈Σw/cap⌉.
func ParallelPack[T any](pt Part[T], weight func(T) int64, cap int64) (Part[Binned[T]], int, Stats) {
	if cap <= 0 {
		panic("mpc: ParallelPack capacity must be positive")
	}
	p := pt.P()
	ex := pt.scope()

	// Round 1: local totals to coordinator (per-server sums run on the
	// execution's runtime; weight must be safe for concurrent calls).
	totals := NewPartIn[int64](ex, p)
	ex.ForEachShard(p, func(s int) {
		var t int64
		for _, x := range pt.Shards[s] {
			t += weight(x)
		}
		totals.Shards[s] = []int64{t}
	})
	// Keep per-server order: tag with src via KeyCount.
	tagged := NewPartIn[KeyCount[int]](ex, p)
	for s := range totals.Shards {
		tagged.Shards[s] = []KeyCount[int]{{Key: s, Count: totals.Shards[s][0]}}
	}
	TraceOp(ex, "packing.totals")
	gathered, st1 := Gather(tagged, 0)
	base := make([]int64, p)
	perServer := make([]int64, p)
	for _, kc := range gathered.Shards[0] {
		perServer[kc.Key] = kc.Count
	}
	var run int64
	for s := 0; s < p; s++ {
		base[s] = run
		run += perServer[s]
	}
	grandTotal := run

	// Round 2: base offsets back to servers. Only the coordinator sends:
	// its row slices the offset vector per destination, the rest stay nil.
	baseOut := make([][][]int64, p)
	baseRow := make([][]int64, p)
	for dst := 0; dst < p; dst++ {
		baseRow[dst] = base[dst : dst+1 : dst+1]
	}
	baseOut[0] = baseRow
	TraceOp(ex, "packing.offsets")
	basePart, st2 := ExchangeIn(ex, p, baseOut)

	// Local assignment (each server owns its prefix offset).
	out := NewPartIn[Binned[T]](ex, p)
	ex.ForEachShard(p, func(s int) {
		shard := pt.Shards[s]
		if len(shard) == 0 {
			return
		}
		prefix := basePart.Shards[s][0]
		bs := make([]Binned[T], 0, len(shard))
		for _, x := range shard {
			// Assign by the window containing the element's start.
			bin := int(prefix / cap)
			bs = append(bs, Binned[T]{X: x, Bin: bin})
			prefix += weight(x)
		}
		out.Shards[s] = bs
	})
	numBins := int((grandTotal+cap-1)/cap) + 1
	if grandTotal == 0 {
		numBins = 1
	}
	return out, numBins, Seq(st1, st2)
}

// PackGroups runs ParallelPack over (key, weight) statistics and returns
// the bin index assigned to every key — the form the paper's algorithms
// use ("divide A^light into k groups such that each group has total degree
// O(L)"). stats must contain one element per key.
func PackGroups[K cmp.Ordered](pt Part[KeyCount[K]], cap int64) (Part[KeyBin[K]], int, Stats) {
	binned, nBins, st := ParallelPack(pt, func(kc KeyCount[K]) int64 { return kc.Count }, cap)
	return Map(binned, func(b Binned[KeyCount[K]]) KeyBin[K] {
		return KeyBin[K]{Key: b.X.Key, Bin: b.Bin, Count: b.X.Count}
	}), nBins, st
}

// KeyBin records a key's assigned group plus its weight.
type KeyBin[K cmp.Ordered] struct {
	Key   K
	Bin   int
	Count int64
}
