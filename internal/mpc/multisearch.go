package mpc

import "cmp"

// Pred is the result of a multi-search: the element x paired with its
// predecessor y — the element of Y with the greatest key ≤ key(x). Found is
// false when no Y element has key ≤ key(x).
type Pred[X, Y any] struct {
	X     X
	Y     Y
	Found bool
}

// msItem is the merged element type sorted during a multi-search. Y
// elements order before X elements on equal keys so that an equal-keyed Y
// counts as a predecessor of the X ("≤" semantics; semijoins rely on it).
type msItem[X, Y any, K cmp.Ordered] struct {
	k   K
	isX bool
	x   X
	y   Y
}

// lastY carries a server's final local Y element (if any) to the
// coordinator for cross-server predecessor propagation.
type lastY[Y any, K cmp.Ordered] struct {
	src  int
	have bool
	k    K
	y    Y
}

// MultiSearch computes, for every x ∈ xs, its predecessor in ys: the
// element with the greatest ykey ≤ xkey(x). This is the §2.1 multi-search
// primitive of [13]; semijoins reduce to it. Both Parts must span the same
// number of servers.
//
// The implementation sorts the union of the two sets with Y-before-X
// tie-breaking, scans locally, and fixes server boundaries with one O(p)
// coordinator round (each server's last Y is prefix-maxed across servers).
// Cost: the Sort cost plus two O(p)-load rounds.
func MultiSearch[X, Y any, K cmp.Ordered](xs Part[X], ys Part[Y], xkey func(X) K, ykey func(Y) K) (Part[Pred[X, Y]], Stats) {
	p := xs.P()
	if ys.P() != p {
		panic("mpc: MultiSearch parts span different server counts")
	}

	ex := mergeScope(xs, ys)
	merged := NewPartIn[msItem[X, Y, K]](ex, p)
	ex.ForEachShard(p, func(s int) {
		items := make([]msItem[X, Y, K], 0, len(xs.Shards[s])+len(ys.Shards[s]))
		for _, y := range ys.Shards[s] {
			items = append(items, msItem[X, Y, K]{k: ykey(y), y: y})
		}
		for _, x := range xs.Shards[s] {
			items = append(items, msItem[X, Y, K]{k: xkey(x), isX: true, x: x})
		}
		merged.Shards[s] = items
	})

	// Sort by (key, Y-before-X): on equal keys every Y globally precedes
	// every X, so the local scan plus the cross-server carry below sees the
	// correct "greatest Y with key ≤ x" for every X.
	sorted, st := SortBy(merged, func(a, b msItem[X, Y, K]) bool {
		if a.k != b.k {
			return a.k < b.k
		}
		return !a.isX && b.isX
	})

	// Each server's greatest local Y → coordinator.
	lasts := NewPartIn[lastY[Y, K]](ex, p)
	ex.ForEachShard(p, func(s int) {
		shard := sorted.Shards[s]
		l := lastY[Y, K]{src: s}
		for i := len(shard) - 1; i >= 0; i-- {
			if !shard[i].isX {
				l.have = true
				l.k = shard[i].k
				l.y = shard[i].y
				break
			}
		}
		lasts.Shards[s] = []lastY[Y, K]{l}
	})
	TraceOp(ex, "multisearch.boundaries")
	gathered, stA := Gather(lasts, 0)
	byServer := make([]lastY[Y, K], p)
	for _, l := range gathered.Shards[0] {
		byServer[l.src] = l
	}

	// Prefix: carry[s] = greatest Y among servers < s. The equal-key Y/X
	// interleaving across a server boundary is safe: a Y with key equal to
	// a later server's X sorts to an earlier-or-equal position globally,
	// and if it landed on a previous server it is that server's last Y.
	carries := make([]lastY[Y, K], p)
	var cur lastY[Y, K]
	for s := 0; s < p; s++ {
		carries[s] = cur
		if byServer[s].have {
			cur = byServer[s]
		}
	}
	// Only the coordinator sends carries: its row slices the prefix-max
	// vector per destination, the other sources stay nil.
	carryOut := make([][][]lastY[Y, K], p)
	carryRow := make([][]lastY[Y, K], p)
	for dst := 0; dst < p; dst++ {
		carryRow[dst] = carries[dst : dst+1 : dst+1]
	}
	carryOut[0] = carryRow
	TraceOp(ex, "multisearch.carry")
	carried, stB := ExchangeIn(ex, p, carryOut)

	// Local scan (one worker per server; each consults only its carry).
	out := NewPartIn[Pred[X, Y]](ex, p)
	ex.ForEachShard(p, func(s int) {
		var (
			have bool
			by   Y
		)
		if len(carried.Shards[s]) == 1 && carried.Shards[s][0].have {
			have = true
			by = carried.Shards[s][0].y
		}
		nx := 0
		for _, it := range sorted.Shards[s] {
			if it.isX {
				nx++
			}
		}
		if nx == 0 {
			return
		}
		preds := make([]Pred[X, Y], 0, nx)
		for _, it := range sorted.Shards[s] {
			if it.isX {
				preds = append(preds, Pred[X, Y]{X: it.x, Y: by, Found: have})
			} else {
				have = true
				by = it.y
			}
		}
		out.Shards[s] = preds
	})
	return out, Seq(st, stA, stB)
}

// SemijoinKeys filters xs to the elements whose key appears in ys
// (the §2.1 semijoin-by-multi-search). ys need not be duplicate-free.
func SemijoinKeys[X, Y any, K cmp.Ordered](xs Part[X], ys Part[Y], xkey func(X) K, ykey func(Y) K) (Part[X], Stats) {
	preds, st := MultiSearch(xs, ys, xkey, ykey)
	matched := Filter(preds, func(pr Pred[X, Y]) bool {
		return pr.Found && ykey(pr.Y) == xkey(pr.X)
	})
	return Map(matched, func(pr Pred[X, Y]) X { return pr.X }), st
}

// AntijoinKeys filters xs to the elements whose key does NOT appear in ys.
func AntijoinKeys[X, Y any, K cmp.Ordered](xs Part[X], ys Part[Y], xkey func(X) K, ykey func(Y) K) (Part[X], Stats) {
	preds, st := MultiSearch(xs, ys, xkey, ykey)
	unmatched := Filter(preds, func(pr Pred[X, Y]) bool {
		return !pr.Found || ykey(pr.Y) != xkey(pr.X)
	})
	return Map(unmatched, func(pr Pred[X, Y]) X { return pr.X }), st
}

// LookupJoin annotates every x with the Y value sharing its key, if any —
// a one-to-many lookup where ys must have at most one element per key
// (e.g. the output of ReduceByKey). Cost: one MultiSearch.
func LookupJoin[X, Y any, K cmp.Ordered](xs Part[X], ys Part[Y], xkey func(X) K, ykey func(Y) K) (Part[Pred[X, Y]], Stats) {
	preds, st := MultiSearch(xs, ys, xkey, ykey)
	return Map(preds, func(pr Pred[X, Y]) Pred[X, Y] {
		if pr.Found && ykey(pr.Y) != xkey(pr.X) {
			pr.Found = false
		}
		return pr
	}), st
}
