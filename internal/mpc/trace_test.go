package mpc

import (
	"context"
	"testing"
)

// tracedExec returns a scope whose rounds are recorded by the returned
// tracer.
func tracedExec(t *testing.T) (*Exec, *Tracer) {
	t.Helper()
	tr := NewTracer()
	return NewExec(context.Background(), 1).WithTracer(tr), tr
}

func TestTracerRecordsExchangeDistribution(t *testing.T) {
	ex, tr := tracedExec(t)
	// 2 sources, 5 destinations; destination 2 receives 3 units.
	out := [][][]int{
		{{1}, nil, {2, 3}, nil, nil},
		{nil, nil, {4}, nil, {5}},
	}
	_, st := ExchangeToIn(ex, 5, out)

	rounds := tr.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(rounds))
	}
	rt := rounds[0]
	if rt.Round != 1 || rt.Op != "exchange" {
		t.Fatalf("round/op = %d/%q", rt.Round, rt.Op)
	}
	if rt.Servers != 5 || rt.Receivers != 3 {
		t.Fatalf("servers/receivers = %d/%d", rt.Servers, rt.Receivers)
	}
	if rt.MaxLoad != int(st.MaxLoad) || rt.MaxLoad != 3 {
		t.Fatalf("maxLoad = %d (stats %d)", rt.MaxLoad, st.MaxLoad)
	}
	if rt.TotalUnits != st.TotalComm || rt.TotalUnits != 5 {
		t.Fatalf("totalUnits = %d (stats %d)", rt.TotalUnits, st.TotalComm)
	}
	// Sorted loads: [0 0 1 1 3]; nearest-rank p50 is the 3rd (= 1), p99
	// the 5th (= 3).
	if rt.P50Load != 1 || rt.P99Load != 3 {
		t.Fatalf("p50/p99 = %d/%d", rt.P50Load, rt.P99Load)
	}
	if rt.MeanLoad != 1.0 || rt.Imbalance != 3.0 {
		t.Fatalf("mean/imbalance = %v/%v", rt.MeanLoad, rt.Imbalance)
	}
	if rt.Bytes != rt.TotalUnits*8 { // int elements
		t.Fatalf("bytes = %d", rt.Bytes)
	}
}

func TestTracerLabelsPrimitives(t *testing.T) {
	ex, tr := tracedExec(t)
	pt := DistributeIn(ex, []int{5, 1, 4, 2, 3, 0}, 3)

	routed, _ := Route(pt, func(_ int, x int) int { return x % 3 })
	_, _ = Broadcast(routed)
	_, _ = Gather(routed, 0)

	rounds := tr.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(rounds))
	}
	want := []string{"route", "broadcast", "gather"}
	for i, w := range want {
		if rounds[i].Op != w {
			t.Fatalf("round %d op = %q, want %q", i+1, rounds[i].Op, w)
		}
		if rounds[i].Round != i+1 {
			t.Fatalf("round %d numbered %d", i+1, rounds[i].Round)
		}
	}
}

func TestTracerFirstLabelWins(t *testing.T) {
	ex, tr := tracedExec(t)
	pt := DistributeIn(ex, []int{1, 2, 3}, 2)

	// An outer label set before an inner primitive labels itself must
	// survive: Gather delegates to Route, and the round reads "gather".
	TraceOp(ex, "outer.phase")
	_, _ = Gather(pt, 0)
	_, _ = Route(pt, func(_ int, x int) int { return 0 })

	rounds := tr.Rounds()
	if len(rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(rounds))
	}
	if rounds[0].Op != "outer.phase" {
		t.Fatalf("round 1 op = %q, want outer.phase", rounds[0].Op)
	}
	// The label was consumed; the next round names itself normally.
	if rounds[1].Op != "route" {
		t.Fatalf("round 2 op = %q, want route", rounds[1].Op)
	}
}

func TestTracerSortLabels(t *testing.T) {
	ex, tr := tracedExec(t)
	pt := DistributeIn(ex, []int64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}, 4)
	_, _ = SortBy(pt, func(a, b int64) bool { return a < b })

	ops := map[string]bool{}
	for _, rt := range tr.Rounds() {
		ops[rt.Op] = true
	}
	for _, want := range []string{"sort.samples", "sort.splitters", "sort.partition"} {
		if !ops[want] {
			t.Fatalf("missing op %q in %v", want, ops)
		}
	}
}

func TestTracerResetAndUntraced(t *testing.T) {
	ex, tr := tracedExec(t)
	pt := DistributeIn(ex, []int{1, 2, 3}, 2)
	_, _ = Gather(pt, 0)
	if len(tr.Rounds()) != 1 {
		t.Fatalf("rounds = %d", len(tr.Rounds()))
	}
	tr.Reset()
	if len(tr.Rounds()) != 0 {
		t.Fatalf("rounds after reset = %d", len(tr.Rounds()))
	}

	// An untraced scope records nothing and TraceOp is a no-op.
	plain := NewExec(context.Background(), 1)
	TraceOp(plain, "ignored")
	TraceOp(nil, "ignored")
	pt2 := DistributeIn(plain, []int{1, 2}, 2)
	_, _ = Gather(pt2, 0)
	if plain.Tracer() != nil {
		t.Fatal("plain scope has a tracer")
	}
	if len(tr.Rounds()) != 0 {
		t.Fatalf("tracer saw untraced rounds: %d", len(tr.Rounds()))
	}
}

func TestTracerIdenticalResultsAndStats(t *testing.T) {
	run := func(ex *Exec) (Part[int64], Stats) {
		pt := DistributeIn(ex, []int64{42, 17, 99, 3, 8, 56, 23, 71, 5, 64, 12, 88}, 4)
		sorted, st1 := SortBy(pt, func(a, b int64) bool { return a < b })
		g, st2 := Gather(sorted, 0)
		return g, Seq(st1, st2)
	}
	plainRes, plainSt := run(NewExec(context.Background(), 1))
	tr := NewTracer()
	tracedRes, tracedSt := run(NewExec(context.Background(), 1).WithTracer(tr))

	if plainSt != tracedSt {
		t.Fatalf("stats differ: %+v vs %+v", plainSt, tracedSt)
	}
	a, b := plainRes.Shards[0], tracedRes.Shards[0]
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if len(tr.Rounds()) == 0 {
		t.Fatal("traced run recorded no rounds")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []int64{0, 0, 1, 2, 10}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 0}, {0.5, 1}, {0.99, 10}, {1.0, 10},
	}
	for _, c := range cases {
		if got := quantile(sorted, c.q); got != c.want {
			t.Fatalf("quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
}
