package mpc

import (
	"context"
	"fmt"
	stdruntime "runtime"
	"sync/atomic"
	"unsafe"
)

// wire.go is the transport seam of the simulator: the single exchange
// barrier — the only point where data moves between servers, the only
// metered step, and the step the tracer and fault plane instrument — can
// be delegated to a pluggable Wire instead of the in-process inbox
// assembly of internal/runtime. A scope without a wire (the default)
// takes the existing inline path and pays one nil check per round; a
// scope with one (Exec.WithWire, installed by core from the options'
// transport backend) encodes every round's outboxes into counted frames,
// hands them to the wire, and decodes the assembled inboxes it returns.
//
// Division of labor: the engine's local computation is arbitrary Go code
// (closures over typed shards) and stays in the process that runs the
// execution; what crosses the wire is the round's data plane — counted
// per-destination frames, assembled into inboxes by the transport's
// peers. This is the disaggregated-shuffle shape (Spark's external
// shuffle service, Cosco): compute nodes push sorted frames to a shuffle
// tier that owns per-destination assembly. Peers treat payloads as
// opaque bytes and are keyed only by the frame headers, so one peer tier
// serves every element type the engines exchange.
//
// The contract that makes a Wire admissible is exactly the one
// internal/runtime documents for concurrent assembly: shard dst of the
// result must be the concatenation of the round's messages to dst in
// ascending source order, and the per-destination received counts must
// reflect what was actually delivered. Everything downstream — Stats,
// RoundTrace, fault detection by count verification — is derived from
// those counts after the barrier, which is why results, Stats and traces
// are bit-for-bit identical across transports.

// WireMsg is one source→destination message of an exchange round in
// encoded form: its endpoints, its metered size in model units, and its
// payload bytes. Payload is opaque to the transport; only the execution
// that produced it decodes it (see the raw element codec below).
type WireMsg struct {
	From, To int
	Units    int
	Payload  []byte
}

// WireRound is one attempt of one exchange barrier handed to a Wire.
// Msgs holds the round's non-empty messages in ascending (source,
// destination) order — the same deterministic order serial assembly
// consumes them in. Crash and Drop carry the fault plane's directives
// for this attempt, executed by the transport so injected faults are
// physical (a dropped message's bytes never reach its peer): Crash is a
// destination server that dies mid-round losing its inbox, Drop an index
// into Msgs lost in flight; -1 means none.
type WireRound struct {
	Seq     int64 // 1-based exchange index within the execution
	Attempt int   // 0-based retry attempt of this exchange
	PSrc    int   // source server count
	PDst    int   // destination server count
	Crash   int
	Drop    int
	Msgs    []WireMsg
}

// WireInbox is the transport's assembly of one WireRound: for every
// destination the delivered segments in ascending source order, the
// per-destination received unit counts (len PDst; what fault detection
// verifies against the pre-round manifest), and the units a crashed
// destination had received before dying (0 when Crash was -1).
type WireInbox struct {
	Segs [][]WireMsg
	Recv []int64
	Lost int64
}

// ColumnarWire is the structural payload seam: an element type that
// implements it supplies its own wire codec, and every exchange of that
// type over a Wire ships the structural encoding instead of the raw
// memory snapshot below. relation.Row implements it (columnar,
// dictionary-encoded value columns), as do the routers' tagged-row types;
// the interface lives here, satisfied structurally, so element packages
// need not import mpc.
//
// Contract: DecodeWireColumns(nil, units, AppendWireColumns(nil, msg))
// must reproduce msg for any msg with len(msg) == units, consuming the
// whole payload; decode errors must be returned, never panics (a
// malformed segment aborts the execution cleanly). Both methods are
// invoked on the zero value of T and must not depend on the receiver.
// The codec sees one message at a time — per-message state like
// dictionaries is self-contained — so frames stay opaque to transport
// peers, the frame format is unchanged (Version 1 interops), and Units,
// Stats and traces are byte-count-independent of the payload encoding.
//
// The raw snapshot's pinning rule still applies to any pointer-carrying
// bytes a codec copies (relation's weight bytes): exchangeWire KeepAlives
// the outboxes until decode completes.
type ColumnarWire[T any] interface {
	AppendWireColumns(dst []byte, msg []T) []byte
	DecodeWireColumns(dst []T, units int, payload []byte) ([]T, error)
}

// Wire executes exchange barriers on a transport backend. Implementations
// must be deterministic in the sense above; they may block (network
// round-trips) and must observe ctx. An error aborts the execution (it
// unwinds like cancellation and surfaces at the execution root).
//
// A Wire is used by one execution at a time: rounds arrive sequentially,
// already numbered, and retries of a round re-arrive with the same Seq
// and a higher Attempt.
type Wire interface {
	ExchangeRound(ctx context.Context, r *WireRound) (*WireInbox, error)
	Close() error
}

// WithWire returns a scope identical to ex whose exchange barriers run on
// w. Attach it before placing data, like a Tracer: Parts from the wired
// and unwired scopes must not be mixed. A nil w returns ex unchanged.
func (ex *Exec) WithWire(w Wire) *Exec {
	if w == nil || ex == nil {
		return ex
	}
	cp := *ex
	cp.wire = w
	cp.wireSeq = new(atomic.Int64)
	return &cp
}

// Wire returns the scope's transport wire (nil on the in-process path).
func (ex *Exec) Wire() Wire {
	if ex == nil {
		return nil
	}
	return ex.wire
}

// nextWireSeq claims the next exchange index for wire framing.
func (ex *Exec) nextWireSeq() int64 { return ex.wireSeq.Add(1) }

// wireError aborts the execution with a transport failure, through the
// same sentinel unwind as cancellation; the root recovers it into an
// ordinary error.
func wireError(err error) {
	panic(canceled{fmt.Errorf("mpc: transport: %w", err)})
}

// exchangeWire runs one attempt of one exchange barrier over the scope's
// wire: encode the outboxes into counted frames, let the transport
// deliver and assemble them (executing the attempt's fault directives),
// and decode the returned inbox. The caller owns detection: it compares
// recv against its pre-round manifest exactly as on the in-process path.
//
// crash and drop are the attempt's fault directives (-1 when fault-free);
// drop indexes the round's non-empty messages in ascending (src, dst)
// order, matching the manifest order exchangeFaulty builds.
func exchangeWire[T any](ex *Exec, seq int64, attempt, pDst int, out [][][]T, crash, drop int) (shards [][]T, recv []int64, lost int64) {
	var zero T
	cw, columnar := any(zero).(ColumnarWire[T])

	r := &WireRound{
		Seq: seq, Attempt: attempt,
		PSrc: len(out), PDst: pDst,
		Crash: crash, Drop: drop,
	}
	for src := range out {
		for dst, m := range out[src] {
			if len(m) == 0 {
				continue
			}
			var payload []byte
			if columnar {
				payload = cw.AppendWireColumns(nil, m)
			} else {
				payload = rawBytes(m)
			}
			r.Msgs = append(r.Msgs, WireMsg{From: src, To: dst, Units: len(m), Payload: payload})
		}
	}

	ex.checkpoint()
	in, err := ex.wire.ExchangeRound(ex.Context(), r)
	if err != nil {
		if ctx := ex.Context(); ctx != nil && ctx.Err() != nil {
			panic(canceled{ctx.Err()})
		}
		wireError(err)
	}
	if len(in.Recv) != pDst || len(in.Segs) != pDst {
		wireError(fmt.Errorf("inbox shape %d/%d destinations, want %d", len(in.Recv), len(in.Segs), pDst))
	}

	// Decode per destination on the scope's runtime (destinations are
	// independent, exactly like in-process assembly); a malformed segment
	// aborts via the sentinel, which ForEachShard re-propagates.
	shards = make([][]T, pDst)
	ex.ForEachShard(pDst, func(dst int) {
		segs := in.Segs[dst]
		if len(segs) == 0 {
			return
		}
		total := 0
		for _, sg := range segs {
			total += sg.Units
		}
		inbox := make([]T, 0, total)
		prev := -1
		for _, sg := range segs {
			if sg.From <= prev {
				wireError(fmt.Errorf("destination %d segments out of source order (%d after %d)", dst, sg.From, prev))
			}
			prev = sg.From
			var dec []T
			var err error
			if columnar {
				dec, err = cw.DecodeWireColumns(inbox, sg.Units, sg.Payload)
			} else {
				dec, err = appendRaw(inbox, sg.Units, sg.Payload)
			}
			if err != nil {
				wireError(fmt.Errorf("destination %d segment from %d: %w", dst, sg.From, err))
			}
			inbox = dec
		}
		if int64(total) != in.Recv[dst] {
			wireError(fmt.Errorf("destination %d decoded %d units but transport counted %d", dst, total, in.Recv[dst]))
		}
		shards[dst] = inbox
	})

	// The typed outboxes must stay reachable until decoding has finished:
	// payloads round-trip through untyped buffers (sockets, frame codecs)
	// the garbage collector does not trace, and the raw element codec is
	// only sound while the originals pin every object the snapshot bytes
	// reference (see rawBytes).
	stdruntime.KeepAlive(out)
	return shards, in.Recv, in.Lost
}

// ---------------------------------------------------------------------------
// Raw element codec
// ---------------------------------------------------------------------------

// The payload codec is a process-faithful raw snapshot: the bytes of a
// message are the memory of its []T elements (the PR 2 outboxes carve
// all rows of a source from one backing buffer, so a message is one
// contiguous span — it serializes with a single copy, and its byte count
// is exactly the Units × sizeof(element) the tracer already reports as
// Bytes). Decoding copies the bytes into a freshly allocated []T, which
// reproduces the shallow-copy semantics of in-process assembly exactly:
// elements whose fields reference heap objects (row value slices,
// provenance strings) come back referencing the same objects, just as
// `append(inbox, msg...)` would.
//
// That makes the codec valid only where encode and decode happen in the
// process that owns the execution — which is precisely the delegated-
// exchange architecture: transport peers assemble and count frames but
// never interpret payloads. Two obligations follow, both enforced here:
// the encoder's originals must outlive decoding (exchangeWire pins them
// with KeepAlive, because address bytes inside untyped buffers don't
// keep their objects alive), and decode must write into typed memory
// allocated as []T (never reinterpret a raw []byte as elements), so GC
// metadata and alignment are always those of a real []T allocation. A
// cross-process data plane needs a structural codec instead; the
// columnar relation layout on the roadmap is the natural carrier.

// rawBytes returns the raw memory of xs as a byte slice aliasing xs (no
// copy). The view keeps the backing allocation reachable, but copies of
// these bytes do not — callers that buffer them must pin xs separately.
func rawBytes[T any](xs []T) []byte {
	if len(xs) == 0 {
		return nil
	}
	sz := unsafe.Sizeof(xs[0])
	if sz == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), uintptr(len(xs))*sz)
}

// appendRaw decodes units elements from payload onto dst. The payload
// length must be exactly units × sizeof(T); the bytes are copied into
// dst's typed backing, never aliased.
func appendRaw[T any](dst []T, units int, payload []byte) ([]T, error) {
	if units < 0 {
		return dst, fmt.Errorf("negative unit count %d", units)
	}
	var zero T
	sz := int(unsafe.Sizeof(zero))
	if sz == 0 {
		if len(payload) != 0 {
			return dst, fmt.Errorf("zero-size elements with %d payload bytes", len(payload))
		}
		for i := 0; i < units; i++ {
			dst = append(dst, zero)
		}
		return dst, nil
	}
	if len(payload) != units*sz {
		return dst, fmt.Errorf("payload is %d bytes for %d units of %d bytes", len(payload), units, sz)
	}
	if units == 0 {
		return dst, nil
	}
	at := len(dst)
	dst = append(dst, make([]T, units)...)
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[at])), uintptr(units)*uintptr(sz)), payload)
	return dst, nil
}
