package mpc

import (
	"cmp"
	"sort"

	xrt "mpcjoin/internal/runtime"
)

// tagged wraps an element with its provenance (source server and local
// position after the initial local sort). The triple (element, src, idx) is
// globally unique under lexicographic comparison, so range partitioning
// stays balanced even when every element compares equal — the tie-breaking
// that makes sample sort skew-proof.
type tagged[T any] struct {
	src int
	idx int
	x   T
}

// SortBy range-partitions pt by the strict weak order less using sample
// sort with regular sampling: after it returns, shard i holds a contiguous
// range of the global order, elements are non-decreasing across servers and
// sorted within each server, and shard sizes are balanced regardless of
// skew (ties are broken by element provenance).
//
// Cost: 3 rounds — samples to coordinator (≤ p² units), splitter broadcast
// (≤ p units per server), and the data reshuffle (≈ 2N/p per server).
//
// The per-server sort and partition phases run on the ambient runtime, so
// less must be safe for concurrent calls across servers.
//
// SortBy is the comparison path; Sort takes the radix path for encodable
// keys and produces bit-identical results (see radix.go).
func SortBy[T any](pt Part[T], less func(a, b T) bool) (Part[T], Stats) {
	p := pt.P()
	tless := func(a, b tagged[T]) bool {
		if less(a.x, b.x) {
			return true
		}
		if less(b.x, a.x) {
			return false
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	}
	// tcmp is tless as a three-way comparison for the unstable fallback
	// sorts; the (src, idx) provenance tie-break makes it a total order, so
	// the unstable pdqsort is deterministic.
	tcmp := func(a, b tagged[T]) int {
		if less(a.x, b.x) {
			return -1
		}
		if less(b.x, a.x) {
			return 1
		}
		if a.src != b.src {
			return cmp.Compare(a.src, b.src)
		}
		return cmp.Compare(a.idx, b.idx)
	}

	ex := pt.scope()

	// Local sort; tag with (src, idx) for global uniqueness. One worker
	// per server — less must be safe for concurrent calls across servers.
	local := make([][]tagged[T], p)
	ex.ForEachShard(p, func(s int) {
		shard := pt.Shards[s]
		ts := make([]tagged[T], len(shard))
		for i, x := range shard {
			ts[i] = tagged[T]{src: s, x: x}
		}
		sortStableFunc(ts, func(a, b tagged[T]) int {
			if less(a.x, b.x) {
				return -1
			}
			if less(b.x, a.x) {
				return 1
			}
			return 0
		})
		for i := range ts {
			ts[i].idx = i
		}
		local[s] = ts
	})

	// Round 1: regular samples to the coordinator (server 0).
	samplePart := NewPartIn[tagged[T]](ex, p)
	for s, ts := range local {
		n := len(ts)
		if n == 0 {
			continue
		}
		c := p
		if n < c {
			c = n
		}
		for j := 0; j < c; j++ {
			samplePart.Shards[s] = append(samplePart.Shards[s], ts[j*n/c])
		}
	}
	TraceOp(ex, "sort.samples")
	gathered, st1 := Gather(samplePart, 0)

	// Coordinator picks p−1 splitters at regular ranks.
	samples := gathered.Shards[0]
	sortFunc(samples, tcmp)
	var splits []tagged[T]
	if len(samples) > 0 {
		for i := 1; i < p; i++ {
			splits = append(splits, samples[i*len(samples)/p])
		}
	}

	// Round 2: broadcast splitters.
	splitPart := NewPartIn[tagged[T]](ex, p)
	splitPart.Shards[0] = splits
	TraceOp(ex, "sort.splitters")
	bcast, st2 := Broadcast(splitPart)
	splits = bcast.Shards[0] // identical on every server

	// Round 3: route each element to its bucket (= number of splitters ≤ it).
	// The splitter slice is read-only from here on, so the per-source
	// bucket builds are independent.
	out := make([][][]tagged[T], p)
	ex.ForEachShardScratch(p, func(s int, sc *xrt.Scratch) {
		ts := local[s]
		if len(ts) == 0 {
			return
		}
		// Memoize each element's bucket so the counted build's two passes
		// pay the binary search once.
		buckets := sc.Ints(len(ts))
		for j, t := range ts {
			buckets[j] = sort.Search(len(splits), func(i int) bool {
				return tless(t, splits[i]) // first splitter strictly greater
			})
		}
		out[s] = BuildOutbox[tagged[T]](sc, p, "SortBy", func(fill bool, emit func(int, tagged[T])) {
			for j, t := range ts {
				emit(buckets[j], t)
			}
		})
	})
	TraceOp(ex, "sort.partition")
	routed, st3 := ExchangeIn(ex, p, out)

	// Final local sort.
	res := NewPartIn[T](ex, p)
	ex.ForEachShard(p, func(s int) {
		ts := routed.Shards[s]
		sortFunc(ts, tcmp)
		if len(ts) == 0 {
			return
		}
		xs := make([]T, len(ts))
		for i, t := range ts {
			xs[i] = t.x
		}
		res.Shards[s] = xs
	})
	return res, Seq(st1, st2, st3)
}

// Sort is SortBy ordered by an ordered key. When K is radix-encodable
// (integers; the engines' uniform-length EncodeKey strings) every sorting
// phase runs the stable LSD radix kernel of radix.go instead of a
// comparison sort; results, shard contents and Stats are bit-for-bit
// identical to the comparison path either way, because both compute the
// same unique (key, src, idx) total order.
func Sort[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[T], Stats) {
	if !radixEncodable[K]() {
		return SortBy(pt, func(a, b T) bool { return key(a) < key(b) })
	}
	return sortKeyed(pt, key)
}

// sortKeyed is Sort's radix sample sort. It mirrors SortBy's three-round
// structure exactly — same sample positions, same splitter ranks, same
// bucket boundaries, same exchanged messages — swapping each comparison
// sort for a stable radix pass over the encoded keys and each per-element
// binary search against the splitters for one merge-walk over the sorted
// shard:
//
//   - Local sort: stable radix by key, then idx assignment. Stability makes
//     equal keys keep arrival order, which is exactly the order the
//     comparison path's stable sort leaves them in.
//   - Coordinator sample sort: the gathered samples arrive in ascending
//     (src, key, idx) order, so a stable radix by key alone reproduces the
//     full (key, src, idx) order.
//   - Final sort: a routed shard is the ascending-src concatenation of
//     key-sorted runs, so the same stability argument applies again.
//
// String batches are encodable only when uniform-length (≤ 16 bytes); each
// phase falls back to the comparison sort independently when its batch is
// not, which cannot change results — every path computes the same unique
// total order.
func sortKeyed[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[T], Stats) {
	p := pt.P()
	ex := pt.scope()
	tless := func(a, b tagged[T]) bool {
		ka, kb := key(a.x), key(b.x)
		if ka != kb {
			return ka < kb
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	}
	tcmp := func(a, b tagged[T]) int {
		if c := cmp.Compare(key(a.x), key(b.x)); c != 0 {
			return c
		}
		if a.src != b.src {
			return cmp.Compare(a.src, b.src)
		}
		return cmp.Compare(a.idx, b.idx)
	}
	kcmp := func(a, b tagged[T]) int { return cmp.Compare(key(a.x), key(b.x)) }

	// Local sort; tag with (src, idx). The encoded key image is kept per
	// shard (aligned with the sorted elements) for the bucket walk below.
	local := make([][]tagged[T], p)
	localKeys := make([]radixKeys, p)
	localOK := make([]bool, p)
	ex.ForEachShard(p, func(s int) {
		shard := pt.Shards[s]
		if len(shard) == 0 {
			return
		}
		ts := make([]tagged[T], len(shard))
		ks := make([]K, len(shard))
		for i, x := range shard {
			ts[i] = tagged[T]{src: s, x: x}
			ks[i] = key(x)
		}
		if enc, ok := encodeRadixKeys(ks); ok {
			radixSortKeyed(enc, ts)
			localKeys[s], localOK[s] = enc, true
		} else {
			sortStableFunc(ts, kcmp)
		}
		for i := range ts {
			ts[i].idx = i
		}
		local[s] = ts
	})

	// Round 1: regular samples to the coordinator (server 0) — identical
	// positions to SortBy's, since the local orders are identical.
	samplePart := NewPartIn[tagged[T]](ex, p)
	for s, ts := range local {
		n := len(ts)
		if n == 0 {
			continue
		}
		c := p
		if n < c {
			c = n
		}
		for j := 0; j < c; j++ {
			samplePart.Shards[s] = append(samplePart.Shards[s], ts[j*n/c])
		}
	}
	TraceOp(ex, "sort.samples")
	gathered, st1 := Gather(samplePart, 0)

	// Coordinator picks p−1 splitters at regular ranks. Arrival order is
	// ascending src with ascending (key, idx) within each src, so a stable
	// radix by key equals the (key, src, idx) order.
	samples := gathered.Shards[0]
	sortTaggedByKey(samples, key, tcmp)
	var splits []tagged[T]
	if len(samples) > 0 {
		for i := 1; i < p; i++ {
			splits = append(splits, samples[i*len(samples)/p])
		}
	}

	// Round 2: broadcast splitters.
	splitPart := NewPartIn[tagged[T]](ex, p)
	splitPart.Shards[0] = splits
	TraceOp(ex, "sort.splitters")
	bcast, st2 := Broadcast(splitPart)
	splits = bcast.Shards[0] // identical on every server

	// Encode the splitter keys once; the image is read-only across shards.
	var splitKeys radixKeys
	splitOK := false
	if len(splits) > 0 {
		sks := make([]K, len(splits))
		for i, t := range splits {
			sks[i] = key(t.x)
		}
		splitKeys, splitOK = encodeRadixKeys(sks)
	}

	// Round 3: bucket by merge-walk. Shard and splitters are both sorted in
	// the full (key, src, idx) order, so one forward walk computes every
	// element's bucket — the count of splitters ≤ it — in O(n + p) instead
	// of n binary searches. The walk runs in encoded-word space when the
	// shard's and the splitters' images share a class, else on comparisons.
	out := make([][][]tagged[T], p)
	ex.ForEachShardScratch(p, func(s int, sc *xrt.Scratch) {
		ts := local[s]
		if len(ts) == 0 {
			return
		}
		buckets := sc.Ints(len(ts))
		i := 0
		if localOK[s] && splitOK && localKeys[s].class == splitKeys.class {
			enc := localKeys[s]
			for j := range ts {
				for i < len(splits) && splitterLE(splitKeys, splits, i, enc, ts, j) {
					i++
				}
				buckets[j] = i
			}
		} else {
			for j := range ts {
				for i < len(splits) && !tless(ts[j], splits[i]) {
					i++
				}
				buckets[j] = i
			}
		}
		out[s] = BuildOutboxDests(sc, p, "Sort", buckets, ts)
	})
	TraceOp(ex, "sort.partition")
	routed, st3 := ExchangeIn(ex, p, out)

	// Final local sort: ascending-src concatenation of key-sorted runs, so
	// stable radix by key reproduces the (key, src, idx) order.
	res := NewPartIn[T](ex, p)
	ex.ForEachShard(p, func(s int) {
		ts := routed.Shards[s]
		if len(ts) == 0 {
			return
		}
		sortTaggedByKey(ts, key, tcmp)
		xs := make([]T, len(ts))
		for i, t := range ts {
			xs[i] = t.x
		}
		res.Shards[s] = xs
	})
	return res, Seq(st1, st2, st3)
}

// sortTaggedByKey sorts ts into the full (key, src, idx) order, by stable
// radix when the batch encodes (valid because the caller guarantees ts
// arrives in ascending (src, idx) order within equal keys), else by the
// comparison fallback with explicit provenance tie-breaks.
func sortTaggedByKey[T any, K cmp.Ordered](ts []tagged[T], key func(T) K, tcmp func(a, b tagged[T]) int) {
	ks := make([]K, len(ts))
	for i, t := range ts {
		ks[i] = key(t.x)
	}
	if enc, ok := encodeRadixKeys(ks); ok {
		radixSortKeyed(enc, ts)
		return
	}
	sortFunc(ts, tcmp)
}

// splitterLE reports splitter i ≤ element j in the (key, src, idx) total
// order, comparing keys in encoded-word space.
func splitterLE[T any](sk radixKeys, splits []tagged[T], i int, ek radixKeys, ts []tagged[T], j int) bool {
	if !radixEq(sk, i, ek, j) {
		return radixLE(sk, i, ek, j)
	}
	if splits[i].src != ts[j].src {
		return splits[i].src < ts[j].src
	}
	return splits[i].idx <= ts[j].idx
}

// boundarySummary describes one server's key range after a Sort, for
// coordinator-side run-chain resolution.
type boundarySummary[K cmp.Ordered] struct {
	src      int
	nonEmpty bool
	first    K
	last     K
}

// GroupByKey redistributes pt so that all elements sharing a key reside on
// a single server, with keys in sorted contiguous order across servers. It
// is Sort plus the paper's "same value lands on consecutive servers — move
// them to one" fix-up round (§3, LinearSparseMM). The destination load of
// the fix-up is bounded by the largest key multiplicity, which the caller
// is responsible for keeping ≤ the intended load (the paper's algorithms
// only invoke this on light keys).
func GroupByKey[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[T], Stats) {
	p := pt.P()
	ex := pt.scope()
	sorted, st := Sort(pt, key)

	// Round A: boundary summaries to the coordinator.
	sum := NewPartIn[boundarySummary[K]](ex, p)
	for s, shard := range sorted.Shards {
		b := boundarySummary[K]{src: s}
		if len(shard) > 0 {
			b.nonEmpty = true
			b.first = key(shard[0])
			b.last = key(shard[len(shard)-1])
		}
		sum.Shards[s] = []boundarySummary[K]{b}
	}
	TraceOp(ex, "groupby.boundaries")
	gathered, stA := Gather(sum, 0)
	summaries := make([]boundarySummary[K], p)
	for _, b := range gathered.Shards[0] {
		summaries[b.src] = b
	}

	// Coordinator: for every key that spans multiple servers, merge its run
	// onto the run's first server. A run continues from server s to the
	// next non-empty server t iff last(s) == first(t).
	type ownerInstr struct {
		k      K
		target int
	}
	instrs := make([][]ownerInstr, p)
	ownerOf := -1
	var openKey K
	open := false
	for s := 0; s < p; s++ {
		b := summaries[s]
		if !b.nonEmpty {
			continue
		}
		if open && b.first == openKey {
			instrs[s] = append(instrs[s], ownerInstr{k: b.first, target: ownerOf})
			if b.last == b.first {
				continue // entire shard is the open key; run may extend
			}
		}
		ownerOf = s
		openKey = b.last
		open = true
	}

	// Round B: instructions back. Only the coordinator sends, so its row
	// is the whole outbox (instrs is already indexed by destination).
	instrOut := make([][][]ownerInstr, p)
	instrOut[0] = instrs
	TraceOp(ex, "groupby.instructions")
	instrPart, stB := ExchangeIn(ex, p, instrOut)

	// Round C: move chained-key elements to their owners. The coordinator
	// issues at most one instruction per server, always for the shard's
	// first key (only a shard's first key can continue the previous
	// server's run), so the moved elements are exactly a sorted prefix of
	// the shard: split it instead of hashing every element through a map.
	moveOut := make([][][]T, p)
	res := NewPartIn[T](ex, p)
	ex.ForEachShard(p, func(s int) {
		shard := sorted.Shards[s]
		ins := instrPart.Shards[s]
		if len(ins) == 0 {
			res.Shards[s] = shard
			return
		}
		in := ins[0]
		if len(ins) != 1 || len(shard) == 0 || key(shard[0]) != in.k {
			panic("mpc: GroupByKey internal error: unexpected ownership instructions")
		}
		i := sort.Search(len(shard), func(j int) bool { return key(shard[j]) != in.k })
		row := make([][]T, p)
		row[in.target] = shard[:i:i]
		moveOut[s] = row
		res.Shards[s] = shard[i:len(shard):len(shard)]
	})
	TraceOp(ex, "groupby.merge")
	moved, stC := ExchangeIn(ex, p, moveOut)
	for s := range res.Shards {
		if len(moved.Shards[s]) > 0 {
			res.Shards[s] = append(res.Shards[s], moved.Shards[s]...)
		}
	}
	return res, Seq(st, stA, stB, stC)
}
