package mpc

import (
	"cmp"
	"sort"
)

// tagged wraps an element with its provenance (source server and local
// position after the initial local sort). The triple (element, src, idx) is
// globally unique under lexicographic comparison, so range partitioning
// stays balanced even when every element compares equal — the tie-breaking
// that makes sample sort skew-proof.
type tagged[T any] struct {
	src int
	idx int
	x   T
}

// SortBy range-partitions pt by the strict weak order less using sample
// sort with regular sampling: after it returns, shard i holds a contiguous
// range of the global order, elements are non-decreasing across servers and
// sorted within each server, and shard sizes are balanced regardless of
// skew (ties are broken by element provenance).
//
// Cost: 3 rounds — samples to coordinator (≤ p² units), splitter broadcast
// (≤ p units per server), and the data reshuffle (≈ 2N/p per server).
//
// The per-server sort and partition phases run on the ambient runtime, so
// less must be safe for concurrent calls across servers.
func SortBy[T any](pt Part[T], less func(a, b T) bool) (Part[T], Stats) {
	p := pt.P()
	tless := func(a, b tagged[T]) bool {
		if less(a.x, b.x) {
			return true
		}
		if less(b.x, a.x) {
			return false
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.idx < b.idx
	}

	rt := CurrentRuntime()

	// Local sort; tag with (src, idx) for global uniqueness. One worker
	// per server — less must be safe for concurrent calls across servers.
	local := make([][]tagged[T], p)
	rt.ForEachShard(p, func(s int) {
		shard := pt.Shards[s]
		ts := make([]tagged[T], len(shard))
		for i, x := range shard {
			ts[i] = tagged[T]{src: s, x: x}
		}
		sort.SliceStable(ts, func(i, j int) bool { return less(ts[i].x, ts[j].x) })
		for i := range ts {
			ts[i].idx = i
		}
		local[s] = ts
	})

	// Round 1: regular samples to the coordinator (server 0).
	samplePart := NewPart[tagged[T]](p)
	for s, ts := range local {
		n := len(ts)
		if n == 0 {
			continue
		}
		c := p
		if n < c {
			c = n
		}
		for j := 0; j < c; j++ {
			samplePart.Shards[s] = append(samplePart.Shards[s], ts[j*n/c])
		}
	}
	gathered, st1 := Gather(samplePart, 0)

	// Coordinator picks p−1 splitters at regular ranks.
	samples := gathered.Shards[0]
	sort.Slice(samples, func(i, j int) bool { return tless(samples[i], samples[j]) })
	var splits []tagged[T]
	if len(samples) > 0 {
		for i := 1; i < p; i++ {
			splits = append(splits, samples[i*len(samples)/p])
		}
	}

	// Round 2: broadcast splitters.
	splitPart := NewPart[tagged[T]](p)
	splitPart.Shards[0] = splits
	bcast, st2 := Broadcast(splitPart)
	splits = bcast.Shards[0] // identical on every server

	// Round 3: route each element to its bucket (= number of splitters ≤ it).
	// The splitter slice is read-only from here on, so the per-source
	// bucket builds are independent.
	out := make([][][]tagged[T], p)
	rt.ForEachShard(p, func(s int) {
		row := make([][]tagged[T], p)
		for _, t := range local[s] {
			b := sort.Search(len(splits), func(i int) bool {
				return tless(t, splits[i]) // first splitter strictly greater
			})
			row[b] = append(row[b], t)
		}
		out[s] = row
	})
	routed, st3 := Exchange(p, out)

	// Final local sort.
	res := NewPart[T](p)
	rt.ForEachShard(p, func(s int) {
		ts := routed.Shards[s]
		sort.Slice(ts, func(i, j int) bool { return tless(ts[i], ts[j]) })
		if len(ts) == 0 {
			return
		}
		xs := make([]T, len(ts))
		for i, t := range ts {
			xs[i] = t.x
		}
		res.Shards[s] = xs
	})
	return res, Seq(st1, st2, st3)
}

// Sort is SortBy ordered by an ordered key.
func Sort[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[T], Stats) {
	return SortBy(pt, func(a, b T) bool { return key(a) < key(b) })
}

// boundarySummary describes one server's key range after a Sort, for
// coordinator-side run-chain resolution.
type boundarySummary[K cmp.Ordered] struct {
	src      int
	nonEmpty bool
	first    K
	last     K
}

// GroupByKey redistributes pt so that all elements sharing a key reside on
// a single server, with keys in sorted contiguous order across servers. It
// is Sort plus the paper's "same value lands on consecutive servers — move
// them to one" fix-up round (§3, LinearSparseMM). The destination load of
// the fix-up is bounded by the largest key multiplicity, which the caller
// is responsible for keeping ≤ the intended load (the paper's algorithms
// only invoke this on light keys).
func GroupByKey[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[T], Stats) {
	p := pt.P()
	sorted, st := Sort(pt, key)

	// Round A: boundary summaries to the coordinator.
	sum := NewPart[boundarySummary[K]](p)
	for s, shard := range sorted.Shards {
		b := boundarySummary[K]{src: s}
		if len(shard) > 0 {
			b.nonEmpty = true
			b.first = key(shard[0])
			b.last = key(shard[len(shard)-1])
		}
		sum.Shards[s] = []boundarySummary[K]{b}
	}
	gathered, stA := Gather(sum, 0)
	summaries := make([]boundarySummary[K], p)
	for _, b := range gathered.Shards[0] {
		summaries[b.src] = b
	}

	// Coordinator: for every key that spans multiple servers, merge its run
	// onto the run's first server. A run continues from server s to the
	// next non-empty server t iff last(s) == first(t).
	type ownerInstr struct {
		k      K
		target int
	}
	instrs := make([][]ownerInstr, p)
	ownerOf := -1
	var openKey K
	open := false
	for s := 0; s < p; s++ {
		b := summaries[s]
		if !b.nonEmpty {
			continue
		}
		if open && b.first == openKey {
			instrs[s] = append(instrs[s], ownerInstr{k: b.first, target: ownerOf})
			if b.last == b.first {
				continue // entire shard is the open key; run may extend
			}
		}
		ownerOf = s
		openKey = b.last
		open = true
	}

	// Round B: instructions back (coordinator → each server).
	instrOut := make([][][]ownerInstr, p)
	for src := range instrOut {
		instrOut[src] = make([][]ownerInstr, p)
	}
	for dst, is := range instrs {
		instrOut[0][dst] = is
	}
	instrPart, stB := Exchange(p, instrOut)

	// Round C: move chained-key elements to their owners. Each server
	// consults only its own instruction shard, so the builds parallelize.
	moveOut := make([][][]T, p)
	res := NewPart[T](p)
	CurrentRuntime().ForEachShard(p, func(s int) {
		row := make([][]T, p)
		target := make(map[K]int)
		for _, in := range instrPart.Shards[s] {
			target[in.k] = in.target
		}
		for _, x := range sorted.Shards[s] {
			if t, ok := target[key(x)]; ok {
				row[t] = append(row[t], x)
			} else {
				res.Shards[s] = append(res.Shards[s], x)
			}
		}
		moveOut[s] = row
	})
	moved, stC := Exchange(p, moveOut)
	for s := range res.Shards {
		res.Shards[s] = append(res.Shards[s], moved.Shards[s]...)
	}
	return res, Seq(st, stA, stB, stC)
}
