package mpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExchangeToRectangular(t *testing.T) {
	// 2 sources, 5 destinations.
	out := [][][]int{
		{{1}, nil, {2, 3}, nil, nil},
		{nil, nil, {4}, nil, {5}},
	}
	res, st := ExchangeTo(5, out)
	if res.P() != 5 {
		t.Fatalf("P = %d", res.P())
	}
	if st.MaxLoad != 3 { // destination 2 receives 3 units
		t.Fatalf("maxLoad = %d", st.MaxLoad)
	}
	if st.TotalComm != 5 || st.Rounds != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(res.Shards[2]) != 3 || res.Shards[2][0] != 2 || res.Shards[2][2] != 4 {
		t.Fatalf("dest 2 = %v", res.Shards[2])
	}
}

func TestRouteToReplication(t *testing.T) {
	pt := Distribute([]int{1, 2, 3}, 2)
	// Every element goes to destinations 0 and 2 of a 3-server target.
	res, st := RouteTo(pt, 3, func(_ int, x int) []int { return []int{0, 2} })
	if len(res.Shards[0]) != 3 || len(res.Shards[2]) != 3 || len(res.Shards[1]) != 0 {
		t.Fatalf("replication wrong: %v", res.Shards)
	}
	if st.TotalComm != 6 {
		t.Fatalf("total = %d", st.TotalComm)
	}
}

func TestRouteToOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pt := Distribute([]int{1}, 1)
	RouteTo(pt, 2, func(_ int, _ int) []int { return []int{7} })
}

func TestReshape(t *testing.T) {
	pt := NewPart[int](5)
	for s := 0; s < 5; s++ {
		pt.Shards[s] = []int{s}
	}
	r := Reshape(pt, 2)
	if r.P() != 2 || r.Len() != 5 {
		t.Fatalf("reshape wrong: %v", r.Shards)
	}
	// s mod 2 placement: shards 0,2,4 → 0; 1,3 → 1.
	if len(r.Shards[0]) != 3 || len(r.Shards[1]) != 2 {
		t.Fatalf("placement wrong: %v", r.Shards)
	}
	// Same-width reshape is the identity (no copy).
	same := Reshape(pt, 5)
	if same.P() != 5 || same.Len() != 5 {
		t.Fatal("identity reshape wrong")
	}
	// Widening reshape spreads onto more servers.
	wide := Reshape(pt, 9)
	if wide.P() != 9 || wide.Len() != 5 {
		t.Fatal("widening reshape wrong")
	}
}

func TestQuickReshapePreservesMultiset(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(50)
		}
		pt := Distribute(data, rng.Intn(10)+1)
		r := Reshape(pt, rng.Intn(10)+1)
		if r.Len() != n {
			return false
		}
		count := map[int]int{}
		for _, x := range Collect(r) {
			count[x]++
		}
		for _, x := range data {
			count[x]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortNegativeKeys(t *testing.T) {
	data := []int{5, -3, 0, -100, 42, -3}
	sorted, _ := Sort(Distribute(data, 3), func(x int) int { return x })
	got := Collect(sorted)
	want := []int{-100, -3, -3, 0, 5, 42}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
}

func TestSortStringKeys(t *testing.T) {
	data := []string{"pear", "apple", "fig", "apple", "banana"}
	sorted, _ := Sort(Distribute(data, 2), func(s string) string { return s })
	got := Collect(sorted)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestSortBySingleServer(t *testing.T) {
	// p = 1 must work (degenerate splitters).
	data := []int{3, 1, 2}
	sorted, st := SortBy(Distribute(data, 1), func(a, b int) bool { return a < b })
	got := Collect(sorted)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if st.Rounds != 3 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
}

func TestBroadcastEmpty(t *testing.T) {
	pt := NewPart[int](3)
	res, st := Broadcast(pt)
	if res.Len() != 0 || st.MaxLoad != 0 {
		t.Fatal("empty broadcast wrong")
	}
}

func TestMapShards(t *testing.T) {
	pt := Distribute([]int{1, 2, 3, 4}, 2)
	sums := MapShards(pt, func(s int, shard []int) []int {
		total := 0
		for _, x := range shard {
			total += x
		}
		return []int{total}
	})
	if sums.Len() != 2 {
		t.Fatalf("sums = %v", sums.Shards)
	}
	if sums.Shards[0][0]+sums.Shards[1][0] != 10 {
		t.Fatalf("sums = %v", sums.Shards)
	}
}

func TestGroupByKeyEmptyAndSingle(t *testing.T) {
	empty := NewPart[int](4)
	res, _ := GroupByKey(empty, func(x int) int { return x })
	if res.Len() != 0 {
		t.Fatal("empty group wrong")
	}
	single := Distribute([]int{7}, 4)
	res2, _ := GroupByKey(single, func(x int) int { return x })
	if res2.Len() != 1 {
		t.Fatal("single group wrong")
	}
}
