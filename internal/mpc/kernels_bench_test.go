package mpc

import (
	"math/rand"
	"testing"

	xrt "mpcjoin/internal/runtime"
)

// kernels_bench_test.go holds the primitive-level benchmarks of the
// allocation-lean kernel work: steady-state Route, SortBy, GroupByKey and
// ReduceByKey at p = 16 over a fixed 16k-element instance. Run with
// -benchmem; BENCH_kernels.json records before/after rows.

const (
	benchP = 16
	benchN = 16384
)

func benchPart(n, p int) Part[int64] {
	rng := rand.New(rand.NewSource(42))
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(rng.Intn(n / 4))
	}
	return Distribute(data, p)
}

func BenchmarkRouteKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, st := Route(pt, func(_ int, x int64) int { return int(uint64(x) % benchP) })
		if res.Len() != benchN || st.Rounds != 1 {
			b.Fatal("route wrong")
		}
	}
}

func BenchmarkRebalanceKernel(b *testing.B) {
	// Skewed input: everything on server 0.
	pt := NewPart[int64](benchP)
	pt.Shards[0] = make([]int64, benchN)
	for i := range pt.Shards[0] {
		pt.Shards[0][i] = int64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := Rebalance(pt)
		if res.Len() != benchN {
			b.Fatal("rebalance wrong")
		}
	}
}

// BenchmarkSortByKernel drives the keyed Sort entry point — the path
// GroupByKey, ReduceByKey and every engine take — which runs the radix
// kernel for this int64 key. BenchmarkSortByFallbackKernel pins the
// comparison path (SortBy) for contrast.
func BenchmarkSortByKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := Sort(pt, func(x int64) int64 { return x })
		if res.Len() != benchN {
			b.Fatal("sort wrong")
		}
	}
}

func BenchmarkSortByFallbackKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := SortBy(pt, func(a, c int64) bool { return a < c })
		if res.Len() != benchN {
			b.Fatal("sort wrong")
		}
	}
}

func BenchmarkGroupByKeyKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := GroupByKey(pt, func(x int64) int64 { return x })
		if res.Len() != benchN {
			b.Fatal("group wrong")
		}
	}
}

func BenchmarkReduceByKeyKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := ReduceByKey(pt,
			func(x int64) int64 { return x },
			func(a, c int64) int64 { return a + c })
		if res.Len() == 0 {
			b.Fatal("reduce wrong")
		}
	}
}

// BenchmarkExchangeKernel measures the steady-state exchange alone: the
// outboxes are prebuilt once, so each iteration pays only inbox assembly
// and metering.
func BenchmarkExchangeKernel(b *testing.B) {
	pt := benchPart(benchN, benchP)
	out := make([][][]int64, benchP)
	xrt.Serial().ForEachShard(benchP, func(src int) {
		row := make([][]int64, benchP)
		for _, x := range pt.Shards[src] {
			d := int(uint64(x) % benchP)
			row[d] = append(row[d], x)
		}
		out[src] = row
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, st := Exchange(benchP, out)
		if res.Len() != benchN || st.MaxLoad == 0 {
			b.Fatal("exchange wrong")
		}
	}
}
