package mpc

import (
	"sync/atomic"

	xrt "mpcjoin/internal/runtime"
)

// ambient is the execution runtime every primitive in this package runs
// on. It defaults to the serial runtime, so the simulator behaves
// exactly as before unless a caller opts into concurrency. The pointer
// is swapped atomically; primitives snapshot it once per call.
//
// Execution concurrency is orthogonal to the cost model: Stats depend
// only on what data moves where, never on the runtime, so any runtime
// yields identical metering (see internal/runtime for why).
var ambient atomic.Pointer[xrt.Runtime]

func init() { ambient.Store(xrt.Serial()) }

// SetRuntime installs rt as the ambient execution runtime for all mpc
// primitives operating on scope-less Parts and returns the previously
// installed one, so callers can restore it (typically with defer). A nil
// rt installs Serial().
//
// Deprecated: the swap is atomic but the setting is process-global, so
// two concurrent executions wanting different pool sizes stomp each
// other's runtime. Per-execution scoping supersedes it: create an Exec
// (NewExec) and place data with the *In constructors — the scope travels
// with the Parts and concurrent executions never interact.
//
// Removal note: every in-tree driver (cmd/mpcrun, cmd/mpcbench,
// internal/experiments, examples/) now runs on per-execution scopes and
// no longer installs an ambient runtime. The shim is kept only so
// scope-less Parts in external code and old tests keep working; it will
// be removed together with the unscoped constructors once those callers
// migrate — do not add new callers.
func SetRuntime(rt *xrt.Runtime) *xrt.Runtime {
	if rt == nil {
		rt = xrt.Serial()
	}
	return ambient.Swap(rt)
}

// CurrentRuntime returns the ambient execution runtime.
func CurrentRuntime() *xrt.Runtime { return ambient.Load() }
