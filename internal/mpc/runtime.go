package mpc

import (
	"sync/atomic"

	xrt "mpcjoin/internal/runtime"
)

// ambient is the execution runtime every primitive in this package runs
// on. It defaults to the serial runtime, so the simulator behaves
// exactly as before unless a caller opts into concurrency. The pointer
// is swapped atomically; primitives snapshot it once per call.
//
// Execution concurrency is orthogonal to the cost model: Stats depend
// only on what data moves where, never on the runtime, so any runtime
// yields identical metering (see internal/runtime for why).
var ambient atomic.Pointer[xrt.Runtime]

func init() { ambient.Store(xrt.Serial()) }

// SetRuntime installs rt as the ambient execution runtime for all mpc
// primitives and returns the previously installed one, so callers can
// restore it (typically with defer). A nil rt installs Serial().
//
// The swap is atomic but the setting is process-global: concurrent
// executions that want different pool sizes should serialize their
// SetRuntime/restore windows. Results and Stats are runtime-independent
// either way.
func SetRuntime(rt *xrt.Runtime) *xrt.Runtime {
	if rt == nil {
		rt = xrt.Serial()
	}
	return ambient.Swap(rt)
}

// CurrentRuntime returns the ambient execution runtime.
func CurrentRuntime() *xrt.Runtime { return ambient.Load() }
