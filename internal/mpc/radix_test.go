package mpc

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"

	xrt "mpcjoin/internal/runtime"
)

// radix_test.go pins the radix sorting kernel to the comparison path it
// replaced: every keyed sort must produce bit-identical shard contents,
// shard boundaries and Stats — provenance tie-breaks included — whether
// the batch takes the radix or the comparison route.

// radixDistributions builds the input shapes the radix kernel must handle:
// uniform random, Zipf-skewed (heavy duplicate keys exercising provenance
// tie-breaks), pre-sorted, reverse-sorted, all-equal, and tiny batches
// below the insertion-sort cutoff.
func radixDistributions(n int) map[string][]int64 {
	rng := rand.New(rand.NewSource(7))
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = int64(rng.Intn(n/2)) - int64(n/4) // negatives included
	}
	zipf := make([]int64, n)
	zrng := rand.NewZipf(rand.New(rand.NewSource(9)), 1.3, 1, uint64(n/16))
	for i := range zipf {
		zipf[i] = int64(zrng.Uint64())
	}
	sorted := append([]int64(nil), uniform...)
	slices.Sort(sorted)
	reversed := append([]int64(nil), sorted...)
	slices.Reverse(reversed)
	equal := make([]int64, n)
	for i := range equal {
		equal[i] = 42
	}
	tiny := append([]int64(nil), uniform[:min(n, 9)]...)
	return map[string][]int64{
		"uniform":  uniform,
		"zipf":     zipf,
		"sorted":   sorted,
		"reversed": reversed,
		"allequal": equal,
		"tiny":     tiny,
	}
}

// TestSortRadixMatchesComparison is the radix-vs-SortFunc equivalence
// sweep: for every distribution, Sort (radix path for int64 keys) must
// reproduce SortBy (comparison path) exactly — per-shard element
// sequences and Stats — under both the serial and a parallel runtime.
// Zipf and all-equal inputs make the outcome depend entirely on the
// (src, idx) provenance tie-breaks, so any stability bug shows up as a
// reordered duplicate.
func TestSortRadixMatchesComparison(t *testing.T) {
	const p = 8
	for name, data := range radixDistributions(4096) {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				ex := ExecOn(nil, xrt.New(workers))
				want, wantSt := SortBy(DistributeIn(ex, data, p), func(a, b int64) bool { return a < b })
				got, gotSt := Sort(DistributeIn(ex, data, p), func(x int64) int64 { return x })
				if gotSt != wantSt {
					t.Fatalf("Stats diverged: radix %+v, comparison %+v", gotSt, wantSt)
				}
				for s := range want.Shards {
					if !slices.Equal(got.Shards[s], want.Shards[s]) {
						t.Fatalf("shard %d diverged:\nradix      %v\ncomparison %v", s, got.Shards[s], want.Shards[s])
					}
				}
			})
		}
	}
}

// TestSortRadixMatchesComparisonStringKeys runs the sweep with string keys
// in the shapes the engines produce (uniform 8- and 16-byte EncodeKey
// strings) plus shapes that force the comparison fallback (ragged and
// > 16-byte keys). All must agree with the comparison path exactly.
func TestSortRadixMatchesComparisonStringKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2048
	mk := func(f func(i int) string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = f(i)
		}
		return out
	}
	inputs := map[string][]string{
		"uniform8": mk(func(i int) string {
			var b [8]byte
			v := uint64(rng.Intn(300))
			for j := range b {
				b[j] = byte(v >> (56 - 8*j))
			}
			return string(b[:])
		}),
		"uniform16": mk(func(i int) string {
			var b [16]byte
			v := uint64(rng.Intn(300))
			for j := 0; j < 8; j++ {
				b[8+j] = byte(v >> (56 - 8*j))
			}
			b[0] = byte(i % 3)
			return string(b[:])
		}),
		"ragged": mk(func(i int) string {
			return strings.Repeat("x", i%5) + fmt.Sprint(rng.Intn(100))
		}),
		"long": mk(func(i int) string {
			return strings.Repeat("k", 17) + fmt.Sprint(rng.Intn(50))
		}),
		"embedded-nul": mk(func(i int) string {
			var b [8]byte
			b[3] = byte(rng.Intn(3))
			return string(b[:])
		}),
	}
	const p = 8
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			want, wantSt := SortBy(Distribute(data, p), func(a, b string) bool { return a < b })
			got, gotSt := Sort(Distribute(data, p), func(x string) string { return x })
			if gotSt != wantSt {
				t.Fatalf("Stats diverged: radix %+v, comparison %+v", gotSt, wantSt)
			}
			for s := range want.Shards {
				if !slices.Equal(got.Shards[s], want.Shards[s]) {
					t.Fatalf("shard %d diverged", s)
				}
			}
		})
	}
}

// TestSortFloatFallback pins the dispatch decision for non-encodable key
// types: float keys must take the comparison path (bitwise images order
// NaN and -0 differently than <) and still match SortBy.
func TestSortFloatFallback(t *testing.T) {
	if radixEncodable[float64]() {
		t.Fatal("float64 must not be radix-encodable")
	}
	rng := rand.New(rand.NewSource(13))
	data := make([]float64, 1024)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	data[7] = math.Inf(1)
	data[13] = math.Inf(-1)
	data[21] = math.Copysign(0, -1)
	const p = 4
	want, wantSt := SortBy(Distribute(data, p), func(a, b float64) bool { return a < b })
	got, gotSt := Sort(Distribute(data, p), func(x float64) float64 { return x })
	if gotSt != wantSt {
		t.Fatalf("Stats diverged: %+v vs %+v", gotSt, wantSt)
	}
	for s := range want.Shards {
		if !slices.Equal(got.Shards[s], want.Shards[s]) {
			t.Fatalf("shard %d diverged", s)
		}
	}
}

// TestEncodeRadixKeysOrderPreserving checks the core property of the key
// image: for random pairs of every supported kind, a < b exactly when
// image(a) < image(b) lexicographically, and a == b exactly when the
// images are equal.
func TestEncodeRadixKeysOrderPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checkPairs := func(t *testing.T, k radixKeys, cmps []int) {
		t.Helper()
		for i := 0; i+1 < len(cmps); i += 2 {
			a, b := i, i+1
			imgLess := !radixEq(k, a, k, b) && radixLE(k, a, k, b)
			imgEq := radixEq(k, a, k, b)
			switch {
			case cmps[i] < cmps[i+1]:
				if !imgLess {
					t.Fatalf("pair %d: a < b but image not less", i/2)
				}
			case cmps[i] == cmps[i+1]:
				if !imgEq {
					t.Fatalf("pair %d: a == b but images differ", i/2)
				}
			default:
				if imgLess || imgEq {
					t.Fatalf("pair %d: a > b but image ≤", i/2)
				}
			}
		}
	}
	t.Run("int64", func(t *testing.T) {
		ks := make([]int64, 512)
		cmps := make([]int, len(ks))
		for i := range ks {
			ks[i] = rng.Int63() - (1 << 62)
		}
		order := append([]int64(nil), ks...)
		slices.Sort(order)
		for i, v := range ks {
			cmps[i], _ = slices.BinarySearch(order, v)
		}
		enc, ok := encodeRadixKeys(ks)
		if !ok || enc.class != -1 || enc.hi != nil {
			t.Fatal("int64 batch must encode to one word")
		}
		checkPairs(t, enc, cmps)
	})
	t.Run("int8-negative", func(t *testing.T) {
		ks := []int8{-128, -1, 0, 1, 127, -1}
		enc, ok := encodeRadixKeys(ks)
		if !ok {
			t.Fatal("int8 batch must encode")
		}
		for i := 0; i+1 < len(ks); i++ {
			if (ks[i] < ks[i+1]) != (!radixEq(enc, i, enc, i+1) && radixLE(enc, i, enc, i+1)) {
				t.Fatalf("int8 order broken at %d", i)
			}
		}
	})
	t.Run("string16", func(t *testing.T) {
		ks := make([]string, 256)
		for i := range ks {
			var b [12]byte
			rng.Read(b[:])
			ks[i] = string(b[:])
		}
		enc, ok := encodeRadixKeys(ks)
		if !ok || enc.class != 12 || enc.hi == nil {
			t.Fatalf("12-byte batch must encode two-word, got ok=%v class=%d", ok, enc.class)
		}
		for i := 0; i+1 < len(ks); i++ {
			wantLess := ks[i] < ks[i+1]
			gotLess := !radixEq(enc, i, enc, i+1) && radixLE(enc, i, enc, i+1)
			if wantLess != gotLess {
				t.Fatalf("string order broken at %d: %q vs %q", i, ks[i], ks[i+1])
			}
		}
	})
	t.Run("rejects", func(t *testing.T) {
		if _, ok := encodeRadixKeys([]string{"abc", "de"}); ok {
			t.Fatal("ragged strings must not encode")
		}
		if _, ok := encodeRadixKeys([]string{strings.Repeat("x", 17)}); ok {
			t.Fatal("17-byte strings must not encode")
		}
		if _, ok := encodeRadixKeys([]float64{1, 2}); ok {
			t.Fatal("floats must not encode")
		}
	})
}

// TestRadixSortKeyedStable checks stability of the core kernel directly:
// payloads carrying their input position must come out position-ordered
// within equal keys, across the insertion-sort and counting-pass regimes
// and both key widths.
func TestRadixSortKeyedStable(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{0, 1, 2, radixSortCutoff, radixSortCutoff + 1, 1000} {
		for _, wide := range []bool{false, true} {
			t.Run(fmt.Sprintf("n=%d/wide=%v", n, wide), func(t *testing.T) {
				type pay struct {
					k   uint64
					pos int
				}
				es := make([]pay, n)
				lo := make([]uint64, n)
				var hi []uint64
				if wide {
					hi = make([]uint64, n)
				}
				for i := range es {
					k := uint64(rng.Intn(7)) // few distinct keys → many ties
					es[i] = pay{k: k, pos: i}
					if wide {
						hi[i] = k
						lo[i] = 0x55
					} else {
						lo[i] = k
					}
				}
				class := -1
				if wide {
					class = 12
				}
				radixSortKeyed(radixKeys{lo: lo, hi: hi, class: class}, es)
				for i := 1; i < n; i++ {
					if es[i-1].k > es[i].k {
						t.Fatalf("not sorted at %d", i)
					}
					if es[i-1].k == es[i].k && es[i-1].pos > es[i].pos {
						t.Fatalf("unstable at %d: pos %d before %d", i, es[i-1].pos, es[i].pos)
					}
				}
			})
		}
	}
}

// TestSortLocalRadixStable checks SortLocal's stable contract on both the
// radix path (int64, uniform strings) and the comparison fallback (ragged
// strings), against a SortStableFunc oracle.
func TestSortLocalRadixStable(t *testing.T) {
	type item struct {
		k   int64
		pos int
	}
	rng := rand.New(rand.NewSource(23))
	items := make([]item, 777)
	for i := range items {
		items[i] = item{k: int64(rng.Intn(50)) - 25, pos: i}
	}
	want := append([]item(nil), items...)
	slices.SortStableFunc(want, func(a, b item) int {
		if a.k != b.k {
			if a.k < b.k {
				return -1
			}
			return 1
		}
		return 0
	})
	SortLocal(items, func(it item) int64 { return it.k })
	if !slices.Equal(items, want) {
		t.Fatal("SortLocal (radix) diverged from the stable oracle")
	}

	type sitem struct {
		k   string
		pos int
	}
	sitems := make([]sitem, 300)
	for i := range sitems {
		sitems[i] = sitem{k: strings.Repeat("a", i%4) + fmt.Sprint(rng.Intn(9)), pos: i}
	}
	swant := append([]sitem(nil), sitems...)
	slices.SortStableFunc(swant, func(a, b sitem) int { return strings.Compare(a.k, b.k) })
	SortLocal(sitems, func(it sitem) string { return it.k })
	if !slices.Equal(sitems, swant) {
		t.Fatal("SortLocal (fallback) diverged from the stable oracle")
	}
}

var sinkInt64 Part[int64]

// TestSortAllocsBounded extends the AllocsPerRun contracts to the radix
// path: one keyed Sort at p = 16 over 16k int64 elements performs a
// bounded constant number of allocations — per shard the tag/key/radix
// buffers (≤ 8) plus the outbox pair, the exchange tables, and the final
// element buffers. 24p + 32 gives headroom without letting a per-element
// regression through (it sits two orders of magnitude below the
// pre-kernel 2318).
func TestSortAllocsBounded(t *testing.T) {
	const p = 16
	pt := benchPart(16384, p)
	key := func(x int64) int64 { return x }
	Sort(pt, key) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() {
		sinkInt64, _ = Sort(pt, key)
	})
	bound := float64(24*p + 32)
	if allocs > bound {
		t.Errorf("Sort allocated %.1f times per call at p=%d, want ≤ %.0f", allocs, p, bound)
	}
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

// BenchmarkRadixVsSortFunc compares the local radix kernel against
// slices.SortFunc on the canonical input shapes, at the shard size the
// cluster kernels see (16k/16 = 1k) and at full 16k. Run with:
//
//	go test -run NONE -bench RadixVsSortFunc -benchmem ./internal/mpc/
func BenchmarkRadixVsSortFunc(b *testing.B) {
	for name, data := range radixDistributions(16384) {
		if name == "tiny" {
			continue
		}
		for _, n := range []int{1024, 16384} {
			in := data[:n]
			b.Run(fmt.Sprintf("radix/%s/n=%d", name, n), func(b *testing.B) {
				buf := make([]int64, n)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(buf, in)
					enc, ok := encodeRadixKeys(buf)
					if !ok {
						b.Fatal("int64 must encode")
					}
					radixSortKeyed(enc, buf)
				}
			})
			b.Run(fmt.Sprintf("sortfunc/%s/n=%d", name, n), func(b *testing.B) {
				buf := make([]int64, n)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(buf, in)
					slices.SortFunc(buf, func(a, c int64) int {
						if a != c {
							if a < c {
								return -1
							}
							return 1
						}
						return 0
					})
				}
			})
		}
	}
}
