package mpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func refReduce(data []KeyCount[int]) map[int]int64 {
	m := map[int]int64{}
	for _, kc := range data {
		m[kc.Key] += kc.Count
	}
	return m
}

func TestReduceByKeyMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		p := rng.Intn(14) + 2
		nkeys := rng.Intn(30) + 1
		data := make([]KeyCount[int], n)
		for i := range data {
			data[i] = KeyCount[int]{Key: rng.Intn(nkeys), Count: int64(rng.Intn(10) + 1)}
		}
		pt := Distribute(data, p)
		reduced, _ := ReduceByKey(pt, func(kc KeyCount[int]) int { return kc.Key },
			func(a, b KeyCount[int]) KeyCount[int] { return KeyCount[int]{Key: a.Key, Count: a.Count + b.Count} })

		want := refReduce(data)
		got := map[int]int64{}
		for _, shard := range reduced.Shards {
			for _, kc := range shard {
				if _, dup := got[kc.Key]; dup {
					return false // key must appear exactly once globally
				}
				got[kc.Key] = kc.Count
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceByKeySingleHotKey(t *testing.T) {
	// All n elements share one key: the worst chain case.
	const n, p = 1000, 16
	data := make([]KeyCount[int], n)
	for i := range data {
		data[i] = KeyCount[int]{Key: 42, Count: 1}
	}
	pt := Distribute(data, p)
	reduced, st := ReduceByKey(pt, func(kc KeyCount[int]) int { return kc.Key },
		func(a, b KeyCount[int]) KeyCount[int] { return KeyCount[int]{Key: a.Key, Count: a.Count + b.Count} })
	all := Collect(reduced)
	if len(all) != 1 || all[0].Count != n {
		t.Fatalf("hot key reduce = %v", all)
	}
	// After local pre-combine only p elements move; load stays tiny.
	if st.MaxLoad > 4*p {
		t.Fatalf("hot key load %d too high", st.MaxLoad)
	}
}

func TestReduceByKeyAlternatingChains(t *testing.T) {
	// Keys 0..k-1 each appearing on every server: many simultaneous chains.
	const p, k = 8, 5
	pt := NewPart[KeyCount[int]](p)
	for s := 0; s < p; s++ {
		for key := 0; key < k; key++ {
			pt.Shards[s] = append(pt.Shards[s], KeyCount[int]{Key: key, Count: 1})
		}
	}
	reduced, _ := ReduceByKey(pt, func(kc KeyCount[int]) int { return kc.Key },
		func(a, b KeyCount[int]) KeyCount[int] { return KeyCount[int]{Key: a.Key, Count: a.Count + b.Count} })
	all := Collect(reduced)
	if len(all) != k {
		t.Fatalf("got %d keys, want %d: %v", len(all), k, all)
	}
	for _, kc := range all {
		if kc.Count != p {
			t.Fatalf("key %d count = %d, want %d", kc.Key, kc.Count, p)
		}
	}
}

func TestReduceByKeyEmpty(t *testing.T) {
	pt := NewPart[KeyCount[int]](4)
	reduced, st := ReduceByKey(pt, func(kc KeyCount[int]) int { return kc.Key },
		func(a, b KeyCount[int]) KeyCount[int] { return a })
	if reduced.Len() != 0 {
		t.Fatal("empty reduce produced data")
	}
	if st.Rounds == 0 {
		t.Fatal("reduce must still run its rounds")
	}
}

func TestReduceByKeyNonCommutativeOrderIndependence(t *testing.T) {
	// combine is commutative+associative per contract; verify the result is
	// independent of the initial distribution.
	rng := rand.New(rand.NewSource(3))
	n := 300
	data := make([]KeyCount[int], n)
	for i := range data {
		data[i] = KeyCount[int]{Key: rng.Intn(7), Count: int64(i)}
	}
	comb := func(a, b KeyCount[int]) KeyCount[int] {
		return KeyCount[int]{Key: a.Key, Count: a.Count + b.Count}
	}
	key := func(kc KeyCount[int]) int { return kc.Key }

	r1, _ := ReduceByKey(Distribute(data, 4), key, comb)
	shuffled := append([]KeyCount[int](nil), data...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	r2, _ := ReduceByKey(Distribute(shuffled, 9), key, comb)

	m1, m2 := map[int]int64{}, map[int]int64{}
	for _, kc := range Collect(r1) {
		m1[kc.Key] = kc.Count
	}
	for _, kc := range Collect(r2) {
		m2[kc.Key] = kc.Count
	}
	if len(m1) != len(m2) {
		t.Fatalf("key sets differ: %v vs %v", m1, m2)
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("key %d: %d vs %d", k, v, m2[k])
		}
	}
}

func TestCountByKey(t *testing.T) {
	data := []string{"a", "b", "a", "c", "a", "b"}
	pt := Distribute(data, 3)
	counts, _ := CountByKey(pt, func(s string) string { return s })
	got := map[string]int64{}
	for _, kc := range Collect(counts) {
		got[kc.Key] = kc.Count
	}
	if got["a"] != 3 || got["b"] != 2 || got["c"] != 1 {
		t.Fatalf("counts = %v", got)
	}
}

func TestTotalCount(t *testing.T) {
	pt := Distribute(make([]int, 77), 5)
	total, st := TotalCount(pt)
	if total != 77 {
		t.Fatalf("total = %d", total)
	}
	if st.MaxLoad > 5 {
		t.Fatalf("TotalCount load %d should be O(p)", st.MaxLoad)
	}
}

func TestSortedRunsAndSortLocal(t *testing.T) {
	shard := []int{3, 1, 2, 1, 3}
	SortLocal(shard, func(x int) int { return x })
	runs := SortedRuns(shard, func(x int) int { return x })
	if len(runs) != 3 {
		t.Fatalf("runs = %v", runs)
	}
	if runs[0] != [2]int{0, 2} || runs[2] != [2]int{3, 5} {
		t.Fatalf("run bounds = %v", runs)
	}
}

// --- MultiSearch / semijoin ---

func TestMultiSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(10) + 2
		nx, ny := rng.Intn(200)+1, rng.Intn(50)
		xs := make([]int, nx)
		for i := range xs {
			xs[i] = rng.Intn(100)
		}
		ys := make([]int, ny)
		for i := range ys {
			ys[i] = rng.Intn(100)
		}
		preds, _ := MultiSearch(Distribute(xs, p), Distribute(ys, p),
			func(x int) int { return x }, func(y int) int { return y })
		if preds.Len() != nx {
			return false
		}
		for _, pr := range Collect(preds) {
			// Brute force predecessor: greatest y ≤ x.
			best, found := 0, false
			for _, y := range ys {
				if y <= pr.X && (!found || y > best) {
					best, found = y, true
				}
			}
			if found != pr.Found {
				return false
			}
			if found && pr.Y != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSemijoinAntijoinKeys(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(8) + 2
		xs := make([]int, rng.Intn(150)+1)
		for i := range xs {
			xs[i] = rng.Intn(30)
		}
		ys := make([]int, rng.Intn(30))
		for i := range ys {
			ys[i] = rng.Intn(30)
		}
		inY := map[int]bool{}
		for _, y := range ys {
			inY[y] = true
		}
		semi, _ := SemijoinKeys(Distribute(xs, p), Distribute(ys, p),
			func(x int) int { return x }, func(y int) int { return y })
		anti, _ := AntijoinKeys(Distribute(xs, p), Distribute(ys, p),
			func(x int) int { return x }, func(y int) int { return y })
		if semi.Len()+anti.Len() != len(xs) {
			return false
		}
		for _, x := range Collect(semi) {
			if !inY[x] {
				return false
			}
		}
		for _, x := range Collect(anti) {
			if inY[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupJoin(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	ys := []KeyCount[int]{{Key: 2, Count: 20}, {Key: 4, Count: 40}}
	res, _ := LookupJoin(Distribute(xs, 3), Distribute(ys, 3),
		func(x int) int { return x }, func(kc KeyCount[int]) int { return kc.Key })
	found := 0
	for _, pr := range Collect(res) {
		if pr.Found {
			found++
			if pr.Y.Count != int64(pr.X)*10 {
				t.Fatalf("lookup mismatch: %+v", pr)
			}
		}
	}
	if found != 2 {
		t.Fatalf("found = %d, want 2", found)
	}
}

// --- ParallelPack ---

func TestParallelPackInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(10) + 2
		n := rng.Intn(300) + 1
		cap := int64(rng.Intn(50) + 10)
		data := make([]int64, n)
		var total int64
		for i := range data {
			data[i] = rng.Int63n(cap) + 1
			total += data[i]
		}
		binned, nBins, _ := ParallelPack(Distribute(data, p), func(x int64) int64 { return x }, cap)

		sums := map[int]int64{}
		for _, b := range Collect(binned) {
			if b.Bin < 0 || b.Bin >= nBins {
				return false
			}
			sums[b.Bin] += b.X
		}
		var check int64
		for bin, s := range sums {
			if s >= 2*cap {
				return false // each bin total < 2·cap
			}
			_ = bin
			check += s
		}
		if check != total {
			return false
		}
		// Bin count bound: ≤ 1 + ⌈total/cap⌉.
		return int64(nBins) <= 1+(total+cap-1)/cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelPackLoadIsCoordinatorOnly(t *testing.T) {
	data := make([]int64, 10000)
	for i := range data {
		data[i] = 1
	}
	const p = 16
	_, _, st := ParallelPack(Distribute(data, p), func(x int64) int64 { return x }, 100)
	if st.MaxLoad > p {
		t.Fatalf("pack load %d should be O(p)", st.MaxLoad)
	}
	if st.Rounds != 2 {
		t.Fatalf("pack rounds = %d, want 2", st.Rounds)
	}
}

func TestPackGroups(t *testing.T) {
	stats := []KeyCount[int]{{1, 30}, {2, 30}, {3, 30}, {4, 30}, {5, 30}}
	pt := Distribute(stats, 2)
	bins, nBins, _ := PackGroups(pt, 60)
	if nBins < 3 {
		t.Fatalf("nBins = %d", nBins)
	}
	sums := map[int]int64{}
	for _, kb := range Collect(bins) {
		sums[kb.Bin] += kb.Count
	}
	for _, s := range sums {
		if s >= 120 {
			t.Fatalf("bin overfull: %v", sums)
		}
	}
}
