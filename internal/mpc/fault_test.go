package mpc

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
)

// faultPipeline runs a small multi-round dataflow (route, rebalance,
// broadcast of a filtered slice) under the given scope and returns the
// final collected data and the Seq-composed stats — deterministic for
// any worker count, which is exactly what the fault plane must preserve.
func faultPipeline(ex *Exec, p, n int) ([]int, Stats) {
	data := make([]int, n)
	for i := range data {
		data[i] = i * 7 % 53
	}
	pt := DistributeIn(ex, data, p)
	pt, st1 := Route(pt, func(src int, x int) int { return x % p })
	pt, st2 := Rebalance(pt)
	small := Filter(pt, func(x int) bool { return x%5 == 0 })
	bc, st3 := Broadcast(small)
	pt, st4 := Route(bc, func(src int, x int) int { return (x + src) % p })
	return Collect(pt), Seq(st1, st2, st3, st4)
}

func execWith(workers int, spec *FaultSpec) (*Exec, *FaultPlane) {
	ex := NewExec(context.Background(), workers)
	if spec == nil {
		return ex, nil
	}
	fp := NewFaultPlane(*spec)
	return ex.WithFaults(fp), fp
}

// TestFaultRetryTransparent: any schedule the retry budget absorbs must
// leave data and base Stats bit-identical to a fault-free run.
func TestFaultRetryTransparent(t *testing.T) {
	const p, n = 8, 400
	exFree, _ := execWith(1, nil)
	wantData, wantStats := faultPipeline(exFree, p, n)

	specs := map[string]FaultSpec{
		"crash-round-1":  {Seed: 3, CrashRound: 1},
		"crash-10pct":    {Seed: 18, CrashProb: 0.10, MaxRetries: 8},
		"drop-20pct":     {Seed: 5, DropProb: 0.20, MaxRetries: 8},
		"straggler-only": {Seed: 7, StragglerProb: 0.9, StragglerDelay: 4},
		"mixed":          {Seed: 9, CrashProb: 0.1, DropProb: 0.2, StragglerProb: 0.3, MaxRetries: 10},
	}
	for name, spec := range specs {
		ex, fp := execWith(1, &spec)
		got, st := faultPipeline(ex, p, n)
		if !reflect.DeepEqual(got, wantData) {
			t.Errorf("%s: data differs from fault-free run", name)
		}
		if st != wantStats {
			t.Errorf("%s: stats %+v != fault-free %+v", name, st, wantStats)
		}
		rep := fp.Report()
		if rep.Rounds == 0 {
			t.Errorf("%s: plane observed no rounds", name)
		}
		if rep.Injected == 0 {
			t.Errorf("%s: schedule injected nothing (weak test seed)", name)
		}
		if rep.Detected != rep.Crashes+rep.Drops {
			t.Errorf("%s: detected %d != crashes %d + drops %d", name, rep.Detected, rep.Crashes, rep.Drops)
		}
		if rep.Absorbed != rep.Stragglers {
			t.Errorf("%s: absorbed %d != stragglers %d", name, rep.Absorbed, rep.Stragglers)
		}
	}
}

// TestFaultDeterminism: same seed + same spec ⇒ identical injected
// schedule, retry counts and results across worker counts (satellite
// requirement: 1, 4, GOMAXPROCS).
func TestFaultDeterminism(t *testing.T) {
	const p, n = 16, 900
	spec := FaultSpec{Seed: 11, CrashProb: 0.08, DropProb: 0.15, StragglerProb: 0.25, MaxRetries: 10}

	type outcome struct {
		data []int
		st   Stats
		rep  FaultReport
	}
	run := func(workers int) outcome {
		ex, fp := execWith(workers, &spec)
		data, st := faultPipeline(ex, p, n)
		return outcome{data: data, st: st, rep: fp.Report()}
	}

	want := run(1)
	if want.rep.Injected == 0 {
		t.Fatal("schedule injected nothing; pick a richer seed")
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(w)
		if !reflect.DeepEqual(got.data, want.data) {
			t.Errorf("workers=%d: data differs", w)
		}
		if got.st != want.st {
			t.Errorf("workers=%d: stats %+v != %+v", w, got.st, want.st)
		}
		if !reflect.DeepEqual(got.rep, want.rep) {
			t.Errorf("workers=%d: fault report differs:\n got %+v\nwant %+v", w, got.rep, want.rep)
		}
	}
}

// TestFaultBudgetExceeded: a schedule that faults the same round past its
// retry budget must abort with the typed error, recovered at the root.
func TestFaultBudgetExceeded(t *testing.T) {
	spec := FaultSpec{Seed: 1, CrashProb: 1, MaxRetries: 2}
	ex, fp := execWith(1, &spec)

	var err error
	func() {
		defer Recover(&err)
		faultPipeline(ex, 4, 100)
	}()
	if !errors.Is(err, ErrFaultBudgetExceeded) {
		t.Fatalf("want ErrFaultBudgetExceeded, got %v", err)
	}
	var fbe *FaultBudgetError
	if !errors.As(err, &fbe) {
		t.Fatalf("want *FaultBudgetError, got %T", err)
	}
	if fbe.Round != 1 || fbe.Attempts != 3 || fbe.Kind != "crash" {
		t.Errorf("unexpected budget error detail: %+v", fbe)
	}
	rep := fp.Report()
	if rep.Retried != 2 || rep.RetriedRounds != 1 {
		t.Errorf("want 2 retries of 1 round, got %+v", rep)
	}
	if rep.BackoffUnits != 1+2 {
		t.Errorf("want backoff 3 units (1+2), got %d", rep.BackoffUnits)
	}
}

// TestFaultNoRetries: MaxRetries < 0 means the first detected fault
// exhausts the budget.
func TestFaultNoRetries(t *testing.T) {
	spec := FaultSpec{Seed: 1, CrashRound: 1, MaxRetries: -1}
	ex, _ := execWith(1, &spec)
	var err error
	func() {
		defer Recover(&err)
		faultPipeline(ex, 4, 100)
	}()
	var fbe *FaultBudgetError
	if !errors.As(err, &fbe) || fbe.Attempts != 1 {
		t.Fatalf("want single-attempt budget error, got %v", err)
	}
}

// TestFaultStopAfter: injection stops after the configured round count.
func TestFaultStopAfter(t *testing.T) {
	spec := FaultSpec{Seed: 2, DropProb: 1, MaxRetries: -1, StopAfter: 0}
	// DropProb=1 with no retries would abort at the first data-moving
	// round; StopAfter=0 keeps that behavior, StopAfter bounds it.
	ex, _ := execWith(1, &spec)
	var err error
	func() {
		defer Recover(&err)
		faultPipeline(ex, 4, 100)
	}()
	if !errors.Is(err, ErrFaultBudgetExceeded) {
		t.Fatalf("control run: want budget error, got %v", err)
	}

	// With injection confined to rounds the pipeline doesn't reach...
	// actually confine to 0 < rounds: StopAfter can't be < 1 usefully
	// here, so confine faults to round 1 only and give it one retry:
	spec = FaultSpec{Seed: 2, DropProb: 1, MaxRetries: 1, StopAfter: 1}
	ex, fp := execWith(1, &spec)
	err = nil
	func() {
		defer Recover(&err)
		faultPipeline(ex, 4, 100)
	}()
	// Round 1 drops on attempt 0, and again on attempt 1 (DropProb=1)…
	// which exceeds MaxRetries=1. StopAfter applies to rounds, not
	// attempts, so the correct observation is: all injected faults are
	// in round 1.
	rep := fp.Report()
	for _, ev := range rep.Events {
		if ev.Round > 1 {
			t.Errorf("event beyond StopAfter round: %+v", ev)
		}
	}
}

// TestFaultSpecValidate rejects out-of-model specs.
func TestFaultSpecValidate(t *testing.T) {
	bad := []FaultSpec{
		{CrashProb: 1.5},
		{DropProb: -0.1},
		{StragglerProb: 2},
		{StragglerDelay: -1},
		{CrashRound: -2},
		{StopAfter: -1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("spec %d: want validation error, got nil", i)
		}
	}
	good := FaultSpec{Seed: 1, CrashProb: 0.5, DropProb: 1, StragglerProb: 0, MaxRetries: -1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if !good.Enabled() {
		t.Error("spec with CrashProb>0 should be Enabled")
	}
	if (FaultSpec{}).Enabled() {
		t.Error("zero spec must not be Enabled")
	}
}

// TestFaultPlaneReset: a reset plane restarts the schedule from round 1,
// so two sequential executions observe identical reports.
func TestFaultPlaneReset(t *testing.T) {
	spec := FaultSpec{Seed: 4, DropProb: 0.3, MaxRetries: 8}
	fp := NewFaultPlane(spec)
	run := func() FaultReport {
		ex := NewExec(context.Background(), 1).WithFaults(fp)
		faultPipeline(ex, 8, 300)
		return fp.Report()
	}
	first := run()
	fp.Reset()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reports differ after Reset:\n first %+v\nsecond %+v", first, second)
	}
}

// TestFaultEventsTruncated: the event log caps at maxFaultEvents and
// accounts the overflow instead of growing without bound.
func TestFaultEventsTruncated(t *testing.T) {
	fp := NewFaultPlane(FaultSpec{Seed: 1, StragglerProb: 1})
	ex := NewExec(context.Background(), 1).WithFaults(fp)
	pt := DistributeIn(ex, make([]int, 64), 4)
	for i := 0; i < maxFaultEvents+40; i++ {
		pt, _ = Rebalance(pt)
	}
	rep := fp.Report()
	if len(rep.Events) != maxFaultEvents {
		t.Fatalf("want %d events, got %d", maxFaultEvents, len(rep.Events))
	}
	if rep.EventsTruncated != 40 {
		t.Fatalf("want 40 truncated, got %d", rep.EventsTruncated)
	}
	if rep.Injected != maxFaultEvents+40 {
		t.Fatalf("Injected must count truncated events too, got %d", rep.Injected)
	}
}

// TestFaultTraceCompatible: a traced, faulted, retried run records the
// same per-round timeline as a traced fault-free run — retries are
// invisible to the tracer.
func TestFaultTraceCompatible(t *testing.T) {
	const p, n = 8, 300
	trFree := NewTracer()
	exFree := NewExec(context.Background(), 1).WithTracer(trFree)
	faultPipeline(exFree, p, n)

	spec := FaultSpec{Seed: 9, CrashProb: 0.2, DropProb: 0.2, MaxRetries: 10}
	tr := NewTracer()
	ex, fp := execWith(1, &spec)
	ex = ex.WithTracer(tr)
	faultPipeline(ex, p, n)

	if fp.Report().Retried == 0 {
		t.Fatal("schedule triggered no retries; pick a richer seed")
	}
	if !reflect.DeepEqual(tr.Rounds(), trFree.Rounds()) {
		t.Error("traced timeline differs between faulted and fault-free runs")
	}
}
