package mpc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// fault.go is the deterministic fault plane of the simulator: seeded
// injection of server failures at the exchange barrier, detection at the
// post-round barrier, and recovery by round-level checkpoint/retry.
//
// The MPC model assumes p flawless servers and perfect rounds; a serving
// system built on the simulator has to keep the Table 1 guarantees
// observable when servers straggle, crash, or drop messages. The fault
// plane makes imperfect rounds first-class while preserving the repo's
// core invariant — determinism: every injection decision is a pure
// function of (spec seed, round index, attempt index, round shape), so a
// given seed and fault spec produce the identical fault schedule, the
// identical retry counts, and — for schedules retry can absorb — results
// and base Stats that are bit-for-bit identical to a fault-free run, for
// every worker count.
//
// Failure model, per metered exchange (one simulated round):
//
//   - Straggler: one destination server is slow. The synchronous barrier
//     waits it out, so nothing is lost and nothing re-runs; the simulated
//     delay is accounted in the FaultReport (not in Stats, which the
//     model defines purely in units moved).
//   - Crash: one destination server dies mid-round and its inbox is lost.
//     The barrier's failure detector observes the death; the round is
//     re-executed from its checkpoint.
//   - Drop: one message (the units one source sends one destination) is
//     lost in the network. Detection is by count verification: the
//     post-round barrier compares per-destination received units against
//     the pre-round outbox totals.
//
// Recovery is round-level checkpoint/retry: the outboxes handed to the
// exchange ARE the checkpoint (assembly never mutates them), so a failed
// round is re-executed from the same outboxes, up to the spec's retry
// budget, with deterministic exponential backoff accounted per attempt.
// A round that stays faulty past the budget aborts the execution with a
// *FaultBudgetError (errors.Is ErrFaultBudgetExceeded), delivered through
// the same panic-sentinel unwind as cancellation (see Exec) and recovered
// into an ordinary error at the execution root.

// ErrFaultBudgetExceeded reports an execution aborted because one round
// stayed faulty through every retry its fault spec allows. Returned
// (wrapped in a *FaultBudgetError) by execution roots; test with
// errors.Is.
var ErrFaultBudgetExceeded = errors.New("mpc: fault budget exceeded")

// FaultBudgetError is the typed failure of a round that exhausted its
// retry budget.
type FaultBudgetError struct {
	// Round is the 1-based physical round (exchange) that kept failing.
	Round int
	// Op labels the primitive that drove the round ("route",
	// "sort.partition", …); "" when the exchange was unlabeled.
	Op string
	// Attempts is how many times the round executed (1 + retries).
	Attempts int
	// Kind is the fault kind detected on the final attempt ("crash" or
	// "drop").
	Kind string
}

func (e *FaultBudgetError) Error() string {
	op := e.Op
	if op == "" {
		op = "exchange"
	}
	return fmt.Sprintf("%v: round %d (%s) still faulty (%s) after %d attempts",
		ErrFaultBudgetExceeded, e.Round, op, e.Kind, e.Attempts)
}

func (e *FaultBudgetError) Unwrap() error { return ErrFaultBudgetExceeded }

// DefaultMaxRetries is the per-round retry budget when FaultSpec.MaxRetries
// is zero.
const DefaultMaxRetries = 3

// FaultSpec declares a deterministic fault schedule. The zero value
// injects nothing. All probabilities are per round attempt, drawn from a
// stream derived only from (Seed, round, attempt), never from global
// randomness — two executions with the same seed and spec see the same
// schedule.
type FaultSpec struct {
	// Seed drives the injection stream. Independent of the execution's
	// partitioning seed, so fault schedules can vary while the query
	// stays fixed (and vice versa).
	Seed uint64
	// StragglerProb is the per-round probability that one destination
	// server straggles; StragglerDelay is the simulated delay in model
	// time units it is late by (0 means 1). Stragglers are absorbed at
	// the barrier, never retried.
	StragglerProb  float64
	StragglerDelay int64
	// CrashProb is the per-attempt probability that one destination
	// server crashes mid-round, losing its inbox. CrashRound, when
	// positive, additionally crashes a server deterministically on the
	// first attempt of exactly that (1-based) physical round — the
	// reproducible "server dies at round k" experiment.
	CrashProb  float64
	CrashRound int
	// DropProb is the per-attempt probability that one message (one
	// source→destination transfer) is lost. Rounds that move nothing
	// have no messages to drop.
	DropProb float64
	// MaxRetries bounds re-executions per round: 0 means
	// DefaultMaxRetries, negative means no retries (any detected fault
	// exceeds the budget immediately).
	MaxRetries int
	// StopAfter, when positive, stops all injection after that many
	// physical rounds — useful to fault only an execution's prefix.
	StopAfter int
}

// Enabled reports whether the spec can inject anything.
func (s FaultSpec) Enabled() bool {
	return s.StragglerProb > 0 || s.CrashProb > 0 || s.CrashRound > 0 || s.DropProb > 0
}

// Validate rejects specs outside the model: probabilities must lie in
// [0, 1] and counts must be non-negative.
func (s FaultSpec) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("mpc: fault spec: %s must be in [0, 1], got %v", name, p)
		}
		return nil
	}
	if err := check("straggler probability", s.StragglerProb); err != nil {
		return err
	}
	if err := check("crash probability", s.CrashProb); err != nil {
		return err
	}
	if err := check("drop probability", s.DropProb); err != nil {
		return err
	}
	if s.StragglerDelay < 0 {
		return fmt.Errorf("mpc: fault spec: straggler delay must be non-negative, got %d", s.StragglerDelay)
	}
	if s.CrashRound < 0 {
		return fmt.Errorf("mpc: fault spec: crash round must be non-negative, got %d", s.CrashRound)
	}
	if s.StopAfter < 0 {
		return fmt.Errorf("mpc: fault spec: stop-after must be non-negative, got %d", s.StopAfter)
	}
	return nil
}

// retries resolves the per-round retry budget.
func (s FaultSpec) retries() int {
	switch {
	case s.MaxRetries > 0:
		return s.MaxRetries
	case s.MaxRetries < 0:
		return 0
	}
	return DefaultMaxRetries
}

// FaultEvent is one injected fault.
type FaultEvent struct {
	// Round is the 1-based physical round; Attempt the 0-based execution
	// attempt of that round the fault was injected into.
	Round   int `json:"round"`
	Attempt int `json:"attempt"`
	// Kind is "straggler", "crash" or "drop".
	Kind string `json:"kind"`
	// Op labels the primitive that drove the round (same labels as
	// RoundTrace.Op); "" when unlabeled.
	Op string `json:"op,omitempty"`
	// Server is the affected destination server; Src the source of a
	// dropped message (-1 otherwise).
	Server int `json:"server"`
	Src    int `json:"src"`
	// Units is what the fault cost: units lost (crash, drop) or
	// simulated delay units (straggler).
	Units int64 `json:"units"`
	// Retried reports whether the fault triggered a re-execution
	// (stragglers never do; crashes and drops always do, budget
	// permitting).
	Retried bool `json:"retried"`
}

// maxFaultEvents caps the per-execution event log; floods beyond it are
// summarized by FaultReport.EventsTruncated so a chaos soak cannot
// balloon memory.
const maxFaultEvents = 512

// FaultReport is what an execution's fault plane injected, detected and
// retried. Faults never change results or base Stats (for schedules the
// retry budget absorbs); everything fault-related is accounted here.
type FaultReport struct {
	// Rounds is the number of physical rounds the plane observed.
	Rounds int `json:"rounds"`
	// Injected counts injected faults of all kinds; Stragglers, Crashes
	// and Drops break it down.
	Injected   int `json:"injected"`
	Stragglers int `json:"stragglers"`
	Crashes    int `json:"crashes"`
	Drops      int `json:"drops"`
	// Detected counts faults caught by the post-round barrier (crashes
	// via the failure detector, drops via count verification); Absorbed
	// counts stragglers waited out in place.
	Detected int `json:"detected"`
	Absorbed int `json:"absorbed"`
	// Retried is the number of round re-executions; RetriedRounds the
	// number of distinct rounds that needed at least one.
	Retried       int `json:"retried"`
	RetriedRounds int `json:"retried_rounds"`
	// DelayUnits is total simulated straggler delay; BackoffUnits the
	// deterministic exponential backoff charged across retries
	// (2^(attempt-1) per retry, capped per attempt at 2^16).
	DelayUnits   int64 `json:"delay_units"`
	BackoffUnits int64 `json:"backoff_units"`
	// Events is the injection log in round order, capped at
	// maxFaultEvents; EventsTruncated counts events beyond the cap.
	Events          []FaultEvent `json:"events,omitempty"`
	EventsTruncated int          `json:"events_truncated,omitempty"`
}

// FaultPlane injects the spec's faults into one execution and accounts
// what happened. Attach with Exec.WithFaults before placing data; read
// the outcome with Report after the execution returns. Like a Tracer, a
// plane must not be shared by two concurrent executions — each would
// perturb the other's round numbering and therefore its schedule.
type FaultPlane struct {
	spec  FaultSpec
	round atomic.Int64 // physical rounds begun

	mu  sync.Mutex
	op  string // pending first-set-wins op label (see TraceOp)
	rep FaultReport
}

// NewFaultPlane returns a plane injecting spec. The spec must be valid
// (Validate); API boundaries (mpcjoin, the query service) validate before
// constructing, so an invalid spec here is a programmer error and panics.
func NewFaultPlane(spec FaultSpec) *FaultPlane {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return &FaultPlane{spec: spec}
}

// Spec returns the plane's fault spec.
func (fp *FaultPlane) Spec() FaultSpec { return fp.spec }

// Report returns a copy of the plane's accounting so far.
func (fp *FaultPlane) Report() FaultReport {
	if fp == nil {
		return FaultReport{}
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	rep := fp.rep
	rep.Events = append([]FaultEvent(nil), fp.rep.Events...)
	return rep
}

// Reset clears the accounting and the round counter so one plane can
// observe several sequential executions (each restarting the schedule).
func (fp *FaultPlane) Reset() {
	fp.mu.Lock()
	fp.rep = FaultReport{}
	fp.op = ""
	fp.mu.Unlock()
	fp.round.Store(0)
}

// beginRound claims the next physical round index and consumes the
// pending op label (set by TraceOp, first-set-wins — the same labeling
// protocol the Tracer uses, so fault events carry the primitive names
// engines already emit).
func (fp *FaultPlane) beginRound() (round int, op string) {
	round = int(fp.round.Add(1))
	fp.mu.Lock()
	op = fp.op
	fp.op = ""
	fp.rep.Rounds = round
	fp.mu.Unlock()
	return round, op
}

func (fp *FaultPlane) setOp(op string) {
	fp.mu.Lock()
	if fp.op == "" {
		fp.op = op
	}
	fp.mu.Unlock()
}

// msgRef identifies one non-empty message of a round: what source src
// sends destination dst, and how many units that is.
type msgRef struct {
	src, dst int
	units    int64
}

// injection is one attempt's decided faults; -1 fields mean "none".
type injection struct {
	straggler int   // destination server that straggles
	delay     int64 // its simulated delay units
	crash     int   // destination server that crashes
	dropIdx   int   // index into the round's msgRef list
}

func (in injection) failed() bool { return in.crash >= 0 || in.dropIdx >= 0 }

// failKind names the fault that made the attempt fail (crash dominates:
// a crashed server loses its whole inbox, dropped message included).
func (in injection) failKind() string {
	if in.crash >= 0 {
		return "crash"
	}
	if in.dropIdx >= 0 {
		return "drop"
	}
	return ""
}

// decide computes the faults injected into one (round, attempt). It is a
// pure function of the spec, the indices and the round's deterministic
// shape (destination count and message list), which is what makes the
// whole schedule reproducible across worker counts: nothing here reads
// scheduling, time, or global randomness. Draws happen in a fixed order
// (straggler, crash, drop) from a stream keyed by (Seed, round, attempt).
func (fp *FaultPlane) decide(round, attempt, pDst int, msgs []msgRef) injection {
	inj := injection{straggler: -1, crash: -1, dropIdx: -1}
	s := fp.spec
	if s.StopAfter > 0 && round > s.StopAfter {
		return inj
	}
	rng := faultRNG(s.Seed, uint64(round), uint64(attempt))
	if s.StragglerProb > 0 && rng.float() < s.StragglerProb {
		inj.straggler = rng.intn(pDst)
		inj.delay = s.StragglerDelay
		if inj.delay <= 0 {
			inj.delay = 1
		}
	}
	if s.CrashRound > 0 && round == s.CrashRound && attempt == 0 {
		inj.crash = rng.intn(pDst)
	} else if s.CrashProb > 0 && rng.float() < s.CrashProb {
		inj.crash = rng.intn(pDst)
	}
	if s.DropProb > 0 && len(msgs) > 0 && rng.float() < s.DropProb {
		inj.dropIdx = rng.intn(len(msgs))
	}
	return inj
}

// observe accounts one executed attempt: which faults were injected,
// whether the barrier detected a failure, and whether a retry follows.
func (fp *FaultPlane) observe(round int, op string, attempt int, inj injection, msgs []msgRef, lost int64, retrying bool) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	add := func(ev FaultEvent) {
		fp.rep.Injected++
		if len(fp.rep.Events) < maxFaultEvents {
			ev.Round, ev.Attempt, ev.Op = round, attempt, op
			fp.rep.Events = append(fp.rep.Events, ev)
		} else {
			fp.rep.EventsTruncated++
		}
	}
	if inj.straggler >= 0 {
		fp.rep.Stragglers++
		fp.rep.Absorbed++
		fp.rep.DelayUnits += inj.delay
		add(FaultEvent{Kind: "straggler", Server: inj.straggler, Src: -1, Units: inj.delay})
	}
	if inj.crash >= 0 {
		fp.rep.Crashes++
		fp.rep.Detected++
		add(FaultEvent{Kind: "crash", Server: inj.crash, Src: -1, Units: lost, Retried: retrying})
	}
	if inj.dropIdx >= 0 {
		m := msgs[inj.dropIdx]
		fp.rep.Drops++
		fp.rep.Detected++
		add(FaultEvent{Kind: "drop", Server: m.dst, Src: m.src, Units: m.units, Retried: retrying})
	}
	if retrying {
		fp.rep.Retried++
		if attempt == 0 {
			fp.rep.RetriedRounds++
		}
		// Deterministic exponential backoff: retry a (0-based attempt a
		// failed) charges 2^a simulated units, capped so a long soak
		// cannot overflow the accounting.
		shift := attempt
		if shift > 16 {
			shift = 16
		}
		fp.rep.BackoffUnits += int64(1) << shift
	}
}

// splitmix is the splitmix64 stream the injection draws come from: tiny,
// seedable, and stateless across rounds by construction.
type splitmix struct{ s uint64 }

// faultRNG keys a stream to (seed, round, attempt) so every attempt of
// every round has its own independent, reproducible draw sequence.
func faultRNG(seed, round, attempt uint64) *splitmix {
	return &splitmix{s: seed ^ round*0x9e3779b97f4a7c15 ^ attempt*0xbf58476d1ce4e5b9}
}

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *splitmix) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
