package mpc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestStatsSeqPar(t *testing.T) {
	a := Stats{Rounds: 2, MaxLoad: 10, TotalComm: 100}
	b := Stats{Rounds: 3, MaxLoad: 7, TotalComm: 50}

	s := Seq(a, b)
	if s.Rounds != 5 || s.MaxLoad != 10 || s.TotalComm != 150 {
		t.Fatalf("Seq = %+v", s)
	}
	p := Par(a, b)
	if p.Rounds != 3 || p.MaxLoad != 10 || p.TotalComm != 150 {
		t.Fatalf("Par = %+v", p)
	}
	if z := Seq(); z != (Stats{}) {
		t.Fatalf("Seq() = %+v", z)
	}
}

func TestSumLoadAccounting(t *testing.T) {
	// Two sequential steps with bottleneck loads 10 and 7: the model's
	// load L (MaxLoad) is the max across rounds, while SumLoad adds the
	// per-round bottlenecks — the distinction this field exists for.
	a := Stats{Rounds: 2, MaxLoad: 10, TotalComm: 100, SumLoad: 12}
	b := Stats{Rounds: 3, MaxLoad: 7, TotalComm: 50, SumLoad: 9}

	s := Seq(a, b)
	if s.MaxLoad != 10 || s.SumLoad != 21 {
		t.Fatalf("Seq: MaxLoad = %d SumLoad = %d, want 10 and 21", s.MaxLoad, s.SumLoad)
	}
	p := Par(a, b)
	if p.MaxLoad != 10 || p.SumLoad != 12 {
		t.Fatalf("Par: MaxLoad = %d SumLoad = %d, want 10 and 12", p.MaxLoad, p.SumLoad)
	}

	// A single Exchange is one round, so its SumLoad is its MaxLoad.
	out := [][][]int{
		{{7}, {1, 2}, nil},
		{nil, nil, nil},
		{nil, {3, 4, 5}, nil},
	}
	_, st := Exchange(3, out)
	if st.SumLoad != int64(st.MaxLoad) || st.SumLoad != 5 {
		t.Fatalf("Exchange: SumLoad = %d MaxLoad = %d, want both 5", st.SumLoad, st.MaxLoad)
	}

	// Chaining two exchanges: MaxLoad stays at the bottleneck round,
	// SumLoad accumulates across rounds.
	_, st2 := Exchange(3, [][][]int{
		{{1}, nil, nil},
		{nil, {2, 3}, nil},
		{nil, nil, {4}},
	})
	total := Seq(st, st2)
	if total.MaxLoad != 5 || total.SumLoad != 7 {
		t.Fatalf("Seq of exchanges: MaxLoad = %d SumLoad = %d, want 5 and 7", total.MaxLoad, total.SumLoad)
	}
}

func TestDistributeCollect(t *testing.T) {
	data := make([]int, 103)
	for i := range data {
		data[i] = i
	}
	pt := Distribute(data, 8)
	if pt.P() != 8 || pt.Len() != 103 {
		t.Fatalf("P=%d Len=%d", pt.P(), pt.Len())
	}
	if pt.MaxShard() > (103+7)/8 {
		t.Fatalf("MaxShard=%d too large", pt.MaxShard())
	}
	got := Collect(pt)
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("Collect lost data at %d: %d", i, v)
		}
	}
}

func TestDistributeEmpty(t *testing.T) {
	pt := Distribute([]int(nil), 4)
	if pt.Len() != 0 || pt.P() != 4 {
		t.Fatalf("empty distribute wrong: %+v", pt)
	}
}

func TestExchangeAccounting(t *testing.T) {
	// 3 servers; server 0 sends 2 units to server 1 and 1 to itself;
	// server 2 sends 3 units to server 1.
	out := [][][]int{
		{{7}, {1, 2}, nil},
		{nil, nil, nil},
		{nil, {3, 4, 5}, nil},
	}
	res, st := Exchange(3, out)
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.MaxLoad != 5 { // server 1 receives 2+3
		t.Fatalf("maxLoad = %d, want 5", st.MaxLoad)
	}
	if st.TotalComm != 6 {
		t.Fatalf("totalComm = %d, want 6", st.TotalComm)
	}
	if len(res.Shards[1]) != 5 || len(res.Shards[0]) != 1 || len(res.Shards[2]) != 0 {
		t.Fatalf("routing wrong: %v", res.Shards)
	}
	// Order: sources in ascending order, message order preserved.
	want := []int{1, 2, 3, 4, 5}
	for i, v := range res.Shards[1] {
		if v != want[i] {
			t.Fatalf("order wrong: %v", res.Shards[1])
		}
	}
}

func TestRoute(t *testing.T) {
	pt := Distribute([]int{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	res, st := Route(pt, func(_ int, x int) int { return x % 4 })
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	for s, shard := range res.Shards {
		for _, x := range shard {
			if x%4 != s {
				t.Fatalf("element %d on server %d", x, s)
			}
		}
		if len(shard) != 2 {
			t.Fatalf("server %d shard size %d", s, len(shard))
		}
	}
}

func TestBroadcast(t *testing.T) {
	pt := NewPart[int](4)
	pt.Shards[2] = []int{9, 8}
	res, st := Broadcast(pt)
	if st.MaxLoad != 2 {
		t.Fatalf("broadcast load = %d, want 2", st.MaxLoad)
	}
	for s := range res.Shards {
		if len(res.Shards[s]) != 2 {
			t.Fatalf("server %d missing broadcast: %v", s, res.Shards[s])
		}
	}
}

func TestGather(t *testing.T) {
	pt := Distribute([]int{1, 2, 3, 4, 5}, 3)
	res, st := Gather(pt, 1)
	if len(res.Shards[1]) != 5 || len(res.Shards[0]) != 0 {
		t.Fatalf("gather wrong: %v", res.Shards)
	}
	if st.MaxLoad != 5 {
		t.Fatalf("gather load = %d", st.MaxLoad)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	pt := Distribute([]int{1, 2, 3, 4}, 2)
	doubled := Map(pt, func(x int) int { return 2 * x })
	if doubled.Len() != 4 {
		t.Fatalf("map len = %d", doubled.Len())
	}
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	if evens.Len() != 2 {
		t.Fatalf("filter len = %d", evens.Len())
	}
	dup := FlatMap(pt, func(x int) []int { return []int{x, x} })
	if dup.Len() != 8 {
		t.Fatalf("flatmap len = %d", dup.Len())
	}
}

func TestConcatWidenSlice(t *testing.T) {
	a := Distribute([]int{1, 2}, 2)
	b := Distribute([]int{3}, 3)
	c := Concat(a, b)
	if c.P() != 5 || c.Len() != 3 {
		t.Fatalf("concat P=%d len=%d", c.P(), c.Len())
	}
	w := Widen(a, 6)
	if w.P() != 6 || w.Len() != 2 {
		t.Fatalf("widen wrong")
	}
	s := Slice(w, 0, 2)
	if s.P() != 2 || s.Len() != 2 {
		t.Fatalf("slice wrong")
	}
}

func TestRebalance(t *testing.T) {
	pt := NewPart[int](4)
	pt.Shards[0] = []int{1, 2, 3, 4, 5, 6, 7, 8}
	res, _ := Rebalance(pt)
	if res.MaxShard() != 2 {
		t.Fatalf("rebalance max shard = %d, want 2", res.MaxShard())
	}
	if res.Len() != 8 {
		t.Fatalf("rebalance lost data")
	}
}

// --- Sort ---

func sortedGlobal[T any](pt Part[T], less func(a, b T) bool) bool {
	var prev *T
	for _, shard := range pt.Shards {
		for i := range shard {
			if prev != nil && less(shard[i], *prev) {
				return false
			}
			prev = &shard[i]
		}
	}
	return true
}

func TestSortCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]int, 2000)
	for i := range data {
		data[i] = rng.Intn(500)
	}
	pt := Distribute(data, 16)
	sorted, st := Sort(pt, func(x int) int { return x })
	if sorted.Len() != len(data) {
		t.Fatalf("sort lost data: %d vs %d", sorted.Len(), len(data))
	}
	if !sortedGlobal(sorted, func(a, b int) bool { return a < b }) {
		t.Fatal("not globally sorted")
	}
	if st.Rounds != 3 {
		t.Fatalf("sort rounds = %d, want 3", st.Rounds)
	}
	got := Collect(sorted)
	sort.Ints(got)
	want := append([]int(nil), data...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("sort changed multiset")
		}
	}
}

func TestSortBalancedUnderTotalSkew(t *testing.T) {
	// Every element identical: tie-breaking must still balance shards.
	const n, p = 4096, 16
	data := make([]int, n)
	pt := Distribute(data, p)
	sorted, _ := Sort(pt, func(x int) int { return x })
	if m := sorted.MaxShard(); m > 2*n/p+p {
		t.Fatalf("skewed shard %d exceeds 2N/p+p = %d", m, 2*n/p+p)
	}
}

func TestSortLoadBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, p = 8192, 32
	data := make([]int, n)
	for i := range data {
		data[i] = rng.Intn(100) // heavy duplication
	}
	pt := Distribute(data, p)
	_, st := Sort(pt, func(x int) int { return x })
	if st.MaxLoad > 2*n/p+p*p {
		t.Fatalf("sort load %d exceeds 2N/p + p² = %d", st.MaxLoad, 2*n/p+p*p)
	}
}

func TestQuickSortByPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		p := rng.Intn(15) + 2
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(40)
		}
		pt := Distribute(data, p)
		sorted, _ := SortBy(pt, func(a, b int) bool { return a < b })
		if sorted.Len() != n || !sortedGlobal(sorted, func(a, b int) bool { return a < b }) {
			return false
		}
		got := Collect(sorted)
		sort.Ints(got)
		want := append([]int(nil), data...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// --- GroupByKey ---

func TestGroupByKeyColocation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 1
		p := rng.Intn(12) + 2
		data := make([]int, n)
		for i := range data {
			data[i] = rng.Intn(20)
		}
		pt := Distribute(data, p)
		grouped, _ := GroupByKey(pt, func(x int) int { return x })
		if grouped.Len() != n {
			return false
		}
		owner := map[int]int{}
		for s, shard := range grouped.Shards {
			for _, x := range shard {
				if o, ok := owner[x]; ok && o != s {
					return false // key on two servers
				}
				owner[x] = s
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByKeySingleKeyEverywhere(t *testing.T) {
	// One key spanning every server must collapse onto one server.
	const n, p = 64, 8
	data := make([]int, n) // all zeros
	pt := Distribute(data, p)
	grouped, _ := GroupByKey(pt, func(x int) int { return x })
	nonEmpty := 0
	for _, shard := range grouped.Shards {
		if len(shard) > 0 {
			nonEmpty++
			if len(shard) != n {
				t.Fatalf("key split: shard has %d of %d", len(shard), n)
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("key on %d servers, want 1", nonEmpty)
	}
}
