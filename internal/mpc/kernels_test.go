package mpc

import (
	"fmt"
	"testing"

	xrt "mpcjoin/internal/runtime"
)

// kernels_test.go pins down the two contracts of the counted-exchange
// kernel: destination ordering is bit-for-bit identical to the serial
// append-grown outboxes it replaced, and steady-state routing performs a
// small documented constant number of allocations per server.

// appendRouteOracle is the pre-counted-exchange reference: serial
// append-grown outboxes concatenated in ascending source order. Counted
// Route must reproduce its shard contents exactly, element order included.
func appendRouteOracle(pt Part[int64], dest func(src int, x int64) int) [][]int64 {
	p := pt.P()
	out := make([][][]int64, p)
	for src, shard := range pt.Shards {
		row := make([][]int64, p)
		for _, x := range shard {
			d := dest(src, x)
			row[d] = append(row[d], x)
		}
		out[src] = row
	}
	shards := make([][]int64, p)
	for dst := 0; dst < p; dst++ {
		for src := 0; src < p; src++ {
			shards[dst] = append(shards[dst], out[src][dst]...)
		}
	}
	return shards
}

// adversarialParts builds the shard shapes most likely to break a counted
// build: every shard empty, all data on one server (one giant shard, the
// rest empty), a single-server cluster, and a mixed case with interleaved
// empty shards.
func adversarialParts() map[string]Part[int64] {
	giant := NewPart[int64](8)
	giant.Shards[3] = make([]int64, 4096)
	for i := range giant.Shards[3] {
		giant.Shards[3][i] = int64(i * 7)
	}

	single := NewPart[int64](1)
	for i := 0; i < 100; i++ {
		single.Shards[0] = append(single.Shards[0], int64(i))
	}

	mixed := NewPart[int64](8)
	for s := 0; s < 8; s += 2 {
		for i := 0; i < 50*(s+1); i++ {
			mixed.Shards[s] = append(mixed.Shards[s], int64(s*1000+i))
		}
	}

	return map[string]Part[int64]{
		"all-empty":       NewPart[int64](8),
		"one-giant-shard": giant,
		"p=1":             single,
		"interleaved":     mixed,
	}
}

// TestCountedRouteMatchesSerialOracle checks, for every adversarial shard
// shape and under both the serial and an 8-worker runtime, that counted
// Route reproduces the append-built serial oracle's output exactly.
func TestCountedRouteMatchesSerialOracle(t *testing.T) {
	dests := map[string]func(src int, x int64) int{
		"mod-p":      func(_ int, x int64) int { return int(uint64(x) % 8) },
		"all-to-one": func(_ int, _ int64) int { return 5 },
		"by-src":     func(src int, _ int64) int { return src },
	}
	for ptName, pt := range adversarialParts() {
		for dName, d := range dests {
			dest := d
			if pt.P() == 1 {
				dest = func(_ int, _ int64) int { return 0 }
			}
			want := appendRouteOracle(pt, dest)
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", ptName, dName, workers), func(t *testing.T) {
					scoped := pt
					scoped.ex = ExecOn(nil, xrt.New(workers))
					got, st := Route(scoped, dest)
					if st.Rounds != 1 {
						t.Fatalf("Route rounds = %d, want 1", st.Rounds)
					}
					if got.P() != pt.P() {
						t.Fatalf("Route produced %d shards, want %d", got.P(), pt.P())
					}
					for s := range want {
						if len(got.Shards[s]) != len(want[s]) {
							t.Fatalf("shard %d: got %d elements, want %d", s, len(got.Shards[s]), len(want[s]))
						}
						for i := range want[s] {
							if got.Shards[s][i] != want[s][i] {
								t.Fatalf("shard %d element %d: got %d, want %d (ordering broken)",
									s, i, got.Shards[s][i], want[s][i])
							}
						}
					}
				})
			}
		}
	}
}

// TestBuildOutboxFillCountMismatchPanics verifies the kernel's misuse
// guard: a scan that emits different destination sequences on the two
// passes must panic, not silently corrupt the round.
func TestBuildOutboxFillCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildOutbox accepted a count/fill mismatch")
		}
	}()
	calls := 0
	BuildOutbox[int64](nil, 4, "test", func(fill bool, emit func(int, int64)) {
		calls++
		emit(calls%4, 1) // different destination each pass
	})
}

// TestBuildOutboxOutOfRangePanics checks the destination range guard fires
// on the count pass, naming the calling primitive.
func TestBuildOutboxOutOfRangePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("BuildOutbox accepted an out-of-range destination")
		}
	}()
	BuildOutbox[int64](nil, 4, "test", func(fill bool, emit func(int, int64)) {
		emit(4, 1)
	})
}

var sinkRows [][]int64 // defeat dead-code elimination in alloc tests

// TestBuildOutboxAllocs asserts the kernel's allocation contract: with a
// worker arena supplying the count vector, one build performs a small
// constant number of heap allocations — the destination row table, the
// shared backing buffer, and the two emit closures with their capture
// cells (6 total as measured) — regardless of element count.
func TestBuildOutboxAllocs(t *testing.T) {
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i)
	}
	scan := func(fill bool, emit func(dst int, x int64)) {
		for _, x := range data {
			emit(int(uint64(x)%7), x)
		}
	}
	rt := xrt.Serial()
	// Warm the scratch pool and the arena so steady state is measured.
	rt.ForEachShardScratch(1, func(_ int, sc *xrt.Scratch) {
		sinkRows = BuildOutbox[int64](sc, 7, "test", scan)
	})
	allocs := testing.AllocsPerRun(50, func() {
		rt.ForEachShardScratch(1, func(_ int, sc *xrt.Scratch) {
			sinkRows = BuildOutbox[int64](sc, 7, "test", scan)
		})
	})
	if allocs > 6 {
		t.Errorf("BuildOutbox allocated %.1f times per build, want ≤ 6 (row table, backing buffer, emit closures)", allocs)
	}
}

var sinkPart Part[int64]

// TestRouteAllocsBounded asserts the steady-state allocation bound of a
// full single-pass Route round: out table (1) + per-source
// BuildOutboxDests (row table + backing buffer — 2p) + exchange
// shard/recv tables (2) + per-destination inbox (≤ p) + small change.
// 4p + 16 is the ceiling — the append-grown build this lineage replaced
// performed O(p² log(N/p²)) allocations (1950 measured at p = 16,
// N = 16k), and the counted two-pass build's emit closures cost ~6p
// (104 measured); the dests-array build drops both.
func TestRouteAllocsBounded(t *testing.T) {
	const p = 16
	pt := benchPart(16384, p)
	dest := func(_ int, x int64) int { return int(uint64(x) % p) }
	Route(pt, dest) // warm the scratch pool
	allocs := testing.AllocsPerRun(20, func() {
		sinkPart, _ = Route(pt, dest)
	})
	bound := float64(4*p + 16)
	if allocs > bound {
		t.Errorf("Route allocated %.1f times per round at p=%d, want ≤ %.0f", allocs, p, bound)
	}
}

// TestBuildOutboxDestsMatchesBuildOutbox checks the single-pass builder
// reproduces the counted two-pass build bit-for-bit — same row layout
// (contiguous ascending-destination segments of one buffer, nil rows for
// empty destinations), same element order — on the adversarial shapes.
func TestBuildOutboxDestsMatchesBuildOutbox(t *testing.T) {
	for name, pt := range adversarialParts() {
		p := pt.P()
		for src, shard := range pt.Shards {
			dests := make([]int, len(shard))
			for j, x := range shard {
				dests[j] = int(uint64(x) % uint64(p))
			}
			want := BuildOutbox[int64](nil, p, "oracle", func(fill bool, emit func(int, int64)) {
				for j, x := range shard {
					emit(dests[j], x)
				}
			})
			got := BuildOutboxDests(nil, p, "test", dests, shard)
			if len(got) != len(want) {
				t.Fatalf("%s src %d: row count %d, want %d", name, src, len(got), len(want))
			}
			for d := range want {
				if (got[d] == nil) != (want[d] == nil) {
					t.Fatalf("%s src %d dst %d: nil-ness mismatch", name, src, d)
				}
				if len(got[d]) != len(want[d]) {
					t.Fatalf("%s src %d dst %d: %d elements, want %d", name, src, d, len(got[d]), len(want[d]))
				}
				for i := range want[d] {
					if got[d][i] != want[d][i] {
						t.Fatalf("%s src %d dst %d elem %d: %d, want %d", name, src, d, i, got[d][i], want[d][i])
					}
				}
			}
		}
	}
}

// TestBuildOutboxDestsOutOfRangePanics checks both range guards.
func TestBuildOutboxDestsOutOfRangePanics(t *testing.T) {
	for _, bad := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BuildOutboxDests accepted destination %d of range [0,4)", bad)
				}
			}()
			BuildOutboxDests(nil, 4, "test", []int{bad}, []int64{7})
		}()
	}
}

// TestBuildOutboxDestsLengthMismatchPanics checks the dests/src shape guard.
func TestBuildOutboxDestsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildOutboxDests accepted mismatched dests/src lengths")
		}
	}()
	BuildOutboxDests(nil, 4, "test", []int{0, 1}, []int64{7})
}

// TestBuildOutboxDestsAllocs asserts the single-pass builder's allocation
// contract: with a worker arena supplying the count vector, one build
// performs exactly two heap allocations — the destination row table and
// the shared backing buffer — regardless of element count.
func TestBuildOutboxDestsAllocs(t *testing.T) {
	data := make([]int64, 4096)
	dests := make([]int, len(data))
	for i := range data {
		data[i] = int64(i)
		dests[i] = i % 7
	}
	rt := xrt.Serial()
	build := func(_ int, sc *xrt.Scratch) {
		sinkRows = BuildOutboxDests(sc, 7, "test", dests, data)
	}
	rt.ForEachShardScratch(1, build)
	allocs := testing.AllocsPerRun(50, func() {
		rt.ForEachShardScratch(1, build)
	})
	if allocs > 2 {
		t.Errorf("BuildOutboxDests allocated %.1f times per build, want ≤ 2 (row table, backing buffer)", allocs)
	}
}
