package mpc

// colwire_test.go: the ColumnarWire seam end to end inside mpc. When the
// exchanged element type implements the structural codec (relation.Row
// does), wired rounds must carry the columnar payload — not the raw
// memory snapshot — and still reproduce inline results and Stats
// bit-for-bit. Transport-level coverage (TCP, real peers) lives in
// internal/transport's equivalence suite; this test pins the dispatch.

import (
	"context"
	"strings"
	"testing"

	"mpcjoin/internal/relation"
)

func rowFixture(n int) []relation.Row[int64] {
	rows := make([]relation.Row[int64], n)
	for i := range rows {
		rows[i] = relation.Row[int64]{
			Vals: []relation.Value{relation.Value(i % 5), relation.Value(i)},
			W:    int64(i * 3),
		}
	}
	return rows
}

func TestWireExchangeColumnarMatchesInline(t *testing.T) {
	data := rowFixture(96)
	run := func(ex *Exec) (Part[relation.Row[int64]], Stats) {
		pt := DistributeIn(ex, data, 6)
		return Route(pt, func(_ int, r relation.Row[int64]) int { return int(r.Vals[0]) % 6 })
	}
	gotI, stI := run(NewExec(context.Background(), 1))

	w := &loopWire{}
	gotW, stW := run(NewExec(context.Background(), 1).WithWire(w))

	if stI != stW {
		t.Fatalf("Stats diverge: inline %+v, wire %+v", stI, stW)
	}
	for s := range gotI.Shards {
		if len(gotI.Shards[s]) != len(gotW.Shards[s]) {
			t.Fatalf("shard %d sizes diverge: %d vs %d", s, len(gotI.Shards[s]), len(gotW.Shards[s]))
		}
		for i := range gotI.Shards[s] {
			a, b := gotI.Shards[s][i], gotW.Shards[s][i]
			if a.W != b.W || len(a.Vals) != len(b.Vals) {
				t.Fatalf("shard %d element %d diverges: %+v vs %+v", s, i, a, b)
			}
			for c := range a.Vals {
				if a.Vals[c] != b.Vals[c] {
					t.Fatalf("shard %d element %d col %d: %d vs %d", s, i, c, a.Vals[c], b.Vals[c])
				}
			}
		}
	}

	// The round must have shipped the structural encoding: a columnar
	// message leads with its mode byte and decodes with relation's codec —
	// a raw Row snapshot (slice headers) would be units × 40 bytes and
	// meaningless across processes.
	if len(w.rounds) != 1 || len(w.rounds[0].Msgs) == 0 {
		t.Fatalf("wire carried %d rounds", len(w.rounds))
	}
	for _, m := range w.rounds[0].Msgs {
		if m.Payload[0] != 0 {
			t.Fatalf("message %d→%d mode byte %d, want 0 (uniform columnar)", m.From, m.To, m.Payload[0])
		}
		dec, rest, err := relation.DecodeRowColumns[int64](nil, m.Units, m.Payload)
		if err != nil || len(rest) != 0 || len(dec) != m.Units {
			t.Fatalf("message %d→%d payload does not decode as columnar rows: %v (%d trailing)", m.From, m.To, err, len(rest))
		}
	}
}

// corruptWire flips a byte inside the first delivered payload. The decode
// layer must abort the execution with a transport error, never panic or
// hand the algorithm corrupt rows.
type corruptWire struct{ loopWire }

func (w *corruptWire) ExchangeRound(ctx context.Context, r *WireRound) (*WireInbox, error) {
	in, err := w.loopWire.ExchangeRound(ctx, r)
	if err != nil {
		return nil, err
	}
	for dst, segs := range in.Segs {
		if len(segs) == 0 {
			continue
		}
		sg := segs[0]
		sg.Payload = append([]byte(nil), sg.Payload...)
		sg.Payload[len(sg.Payload)-1] ^= 0xFF
		sg.Payload = sg.Payload[:len(sg.Payload)-3]
		in.Segs[dst][0] = sg
		break
	}
	return in, nil
}

func TestWireColumnarCorruptionAborts(t *testing.T) {
	var err error
	func() {
		defer Recover(&err)
		ex := NewExec(context.Background(), 1).WithWire(&corruptWire{})
		pt := DistributeIn(ex, rowFixture(32), 4)
		Route(pt, func(_ int, r relation.Row[int64]) int { return int(r.Vals[1]) % 4 })
	}()
	if err == nil {
		t.Fatal("corrupt columnar payload went undetected")
	}
	if !strings.Contains(err.Error(), "transport") {
		t.Fatalf("err = %v, want a transport error", err)
	}
}

// TestColumnarDecodeAllocsBounded: decoding one columnar message performs
// a constant number of allocations — the typed row append, the single
// carved value backing, and codec scratch — independent of row count.
func TestColumnarDecodeAllocsBounded(t *testing.T) {
	rows := rowFixture(4096)
	payload := relation.AppendRowColumns(nil, rows)
	var zero relation.Row[int64]
	avg := testing.AllocsPerRun(20, func() {
		if _, err := zero.DecodeWireColumns(nil, len(rows), payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 4 {
		t.Fatalf("columnar decode averaged %.1f allocs per message, want ≤ 4", avg)
	}
}
