package mpc

import (
	"slices"
	"sync"
)

// trace.go is the round-level observability layer of the metering core.
// Stats collapses an execution into four aggregates; a Tracer, attached to
// an execution scope (Exec.WithTracer), additionally records one RoundTrace
// per metered exchange — which primitive moved data, how the received load
// distributed over the destination servers, and how much was sent — without
// perturbing results or Stats in any way. Tracing is strictly opt-in: a
// scope without a tracer pays one nil check per round and allocates
// nothing, so the allocation regression tests over the untraced kernels
// hold unchanged.

// RoundTrace describes one metered communication round: the primitive that
// ran it and the distribution of per-server received load. Loads are in the
// model's units (tuples / semiring elements / O(log N)-bit integers);
// Bytes approximates the wire volume as TotalUnits × sizeof(element).
type RoundTrace struct {
	// Round is the 1-based index of this exchange in execution order. It
	// counts physical exchanges; Stats.Rounds can be smaller because Par
	// merges rounds of sub-algorithms running on disjoint server groups.
	Round int `json:"round"`
	// Op names the primitive (or engine phase) that ran the round, e.g.
	// "route", "sort.partition", "matmul.os.gridA". Unlabeled exchanges
	// report "exchange".
	Op string `json:"op"`
	// Servers is the destination server count of the round; Receivers is
	// how many of them received at least one unit.
	Servers   int `json:"servers"`
	Receivers int `json:"receivers"`
	// MaxLoad / P50Load / P99Load are nearest-rank quantiles of the
	// per-server received-load distribution (over all destination servers,
	// zero-receivers included). MaxLoad matches the round's contribution to
	// Stats.MaxLoad.
	MaxLoad int `json:"max_load"`
	P50Load int `json:"p50_load"`
	P99Load int `json:"p99_load"`
	// MeanLoad is TotalUnits / Servers; Imbalance is MaxLoad / MeanLoad (1
	// is a perfectly balanced round; 0 when nothing moved). The paper's
	// bounds constrain MaxLoad, so Imbalance is the skew diagnostic: a
	// round with high Imbalance is where a load bound would break first.
	MeanLoad  float64 `json:"mean_load"`
	Imbalance float64 `json:"imbalance"`
	// TotalUnits is the round's total communication (= its contribution to
	// Stats.TotalComm); Bytes approximates it in bytes of element payload.
	TotalUnits int64 `json:"total_units"`
	Bytes      int64 `json:"bytes"`
}

// Tracer accumulates RoundTraces for one execution. Attach with
// Exec.WithTracer before placing data; read with Rounds after the
// execution returns. A Tracer must not be shared by two concurrent
// executions (each would interleave rounds into the other's timeline);
// the mutex only orders rounds of sub-algorithms within one execution.
type Tracer struct {
	mu     sync.Mutex
	op     string
	rounds []RoundTrace
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Rounds returns a copy of the recorded per-round traces, in execution
// order.
func (t *Tracer) Rounds() []RoundTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return slices.Clone(t.rounds)
}

// Reset clears the recorded rounds (and any pending op label), so one
// tracer can observe several sequential executions.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.rounds = t.rounds[:0]
	t.op = ""
	t.mu.Unlock()
}

// TraceOp labels the next metered exchange of ex's tracer with op. The
// first label set before a round wins — an outer primitive (or an engine
// phase) that labels before delegating to an inner one keeps its more
// specific name — and the label is consumed by the round it describes.
// A nil scope or an untraced scope ignores the call, so primitives label
// unconditionally at zero cost on the untraced path. A fault plane on
// the scope receives the same label, so FaultEvents name the primitive
// whose round they perturbed.
func TraceOp(ex *Exec, op string) {
	if ex == nil {
		return
	}
	if ex.tr != nil {
		ex.tr.setOp(op)
	}
	if ex.fp != nil {
		ex.fp.setOp(op)
	}
}

func (t *Tracer) setOp(op string) {
	t.mu.Lock()
	if t.op == "" {
		t.op = op
	}
	t.mu.Unlock()
}

// record appends one round computed from the per-destination received
// counts; called by exchangeOnRuntime after the round barrier, so the
// distribution it sees is the deterministic post-barrier metering.
func (t *Tracer) record(recv []int64, elemBytes int64) {
	if len(recv) == 0 {
		return
	}
	loads := slices.Clone(recv)
	slices.Sort(loads)
	var total int64
	receivers := 0
	for _, n := range recv {
		total += n
		if n > 0 {
			receivers++
		}
	}
	rt := RoundTrace{
		Servers:    len(recv),
		Receivers:  receivers,
		MaxLoad:    int(loads[len(loads)-1]),
		P50Load:    int(quantile(loads, 0.50)),
		P99Load:    int(quantile(loads, 0.99)),
		TotalUnits: total,
		Bytes:      total * elemBytes,
	}
	rt.MeanLoad = float64(total) / float64(len(recv))
	if total > 0 {
		rt.Imbalance = float64(rt.MaxLoad) / rt.MeanLoad
	}
	t.mu.Lock()
	rt.Round = len(t.rounds) + 1
	rt.Op = t.op
	if rt.Op == "" {
		rt.Op = "exchange"
	}
	t.op = ""
	t.rounds = append(t.rounds, rt)
	t.mu.Unlock()
}

// quantile is the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
