package mpc

import (
	"context"
	"fmt"
	"sync/atomic"

	xrt "mpcjoin/internal/runtime"
)

// Exec is the scope of one MPC execution: the worker runtime its
// per-server work runs on and the context.Context that cancels it. Every
// Part carries the Exec that created it, and every primitive propagates
// the scope from its inputs to its outputs, so an execution's whole
// dataflow shares one scope without any process-global state — two
// concurrent executions with different worker counts or deadlines never
// interact. (The idiom mirrors dataflow systems where datasets carry
// their session: a Spark RDD knows its SparkContext.)
//
// Scope semantics:
//
//   - The runtime decides how many OS workers run per-server work. It
//     affects wall-clock time only; results and metered Stats are
//     bit-for-bit identical across runtimes (see internal/runtime).
//   - The context cancels the execution at round barriers: every metered
//     exchange and every runtime dispatch checks it before (and, shard-
//     granular, during) the barrier, so a cancelled execution stops
//     within one round instead of running to completion.
//
// Cancellation protocol: the mpc primitives return no errors — threading
// an error through every engine's round structure would triple the API
// for a condition that simply abandons the execution. Instead a primitive
// that observes a done context panics with an internal sentinel carrying
// ctx.Err(); the execution root (core.ExecuteContext) recovers it via
// CanceledError and returns the error. Algorithm code between the root
// and the primitives holds no resources that outlive the execution, so
// unwinding through it is safe. The sentinel never escapes a root that
// uses Recover/CanceledError; any other panic re-propagates unchanged.
//
// A nil *Exec is a valid scope everywhere one is accepted: it denotes the
// ambient scope — the serial runtime and a never-cancelled context. Parts
// built by the unscoped constructors (NewPart, Distribute, Exchange …)
// carry the nil scope, which keeps scope-less callers and tests working
// unchanged.
type Exec struct {
	rt  *xrt.Runtime
	ctx context.Context

	// tr, when non-nil, records one RoundTrace per metered exchange of
	// this execution (see trace.go). Nil — the default — is the zero-cost
	// off path: primitives pay a single nil check per round.
	tr *Tracer

	// fp, when non-nil, is the fault plane injecting deterministic
	// failures at this execution's exchange barriers (see fault.go). Nil
	// — the default — keeps the flawless-cluster fast path: one nil
	// check per round.
	fp *FaultPlane

	// wire, when non-nil, delegates this execution's exchange barriers to
	// a transport backend (see wire.go); wireSeq numbers its rounds. Nil
	// — the default — is the in-process path: one nil check per round.
	wire    Wire
	wireSeq *atomic.Int64
}

// NewExec returns an execution scope with the given context and worker
// count. workers follows the Options.Workers convention: 0 and 1 run
// serially (the default), n > 1 uses n OS workers, and negative selects
// GOMAXPROCS. A nil ctx means "never cancelled".
func NewExec(ctx context.Context, workers int) *Exec {
	var rt *xrt.Runtime
	switch {
	case workers == 0:
		rt = xrt.Serial()
	case workers < 0:
		rt = xrt.New(0)
	default:
		rt = xrt.New(workers)
	}
	return ExecOn(ctx, rt)
}

// ExecOn returns an execution scope running on an explicit runtime.
// A nil rt selects the serial runtime; a nil ctx means "never cancelled".
func ExecOn(ctx context.Context, rt *xrt.Runtime) *Exec {
	if rt == nil {
		rt = xrt.Serial()
	}
	return &Exec{rt: rt, ctx: ctx}
}

// WithTracer returns a scope identical to ex that records a RoundTrace
// per metered exchange into tr. Attach it before placing data — the traced
// scope is a distinct scope, and Parts from the two must not be mixed. A
// nil tr returns ex unchanged.
func (ex *Exec) WithTracer(tr *Tracer) *Exec {
	if tr == nil || ex == nil {
		return ex
	}
	cp := *ex
	cp.tr = tr
	return &cp
}

// Tracer returns the scope's tracer (nil when untraced or ambient).
func (ex *Exec) Tracer() *Tracer {
	if ex == nil {
		return nil
	}
	return ex.tr
}

// WithFaults returns a scope identical to ex whose exchange barriers run
// under the fault plane fp. Attach it before placing data, like a
// Tracer: Parts from the faulted and unfaulted scopes must not be mixed.
// A nil fp returns ex unchanged.
func (ex *Exec) WithFaults(fp *FaultPlane) *Exec {
	if fp == nil || ex == nil {
		return ex
	}
	cp := *ex
	cp.fp = fp
	return &cp
}

// Faults returns the scope's fault plane (nil when fault injection is
// off or the scope is ambient).
func (ex *Exec) Faults() *FaultPlane {
	if ex == nil {
		return nil
	}
	return ex.fp
}

// Context returns the scope's context (nil when never cancelled).
func (ex *Exec) Context() context.Context {
	if ex == nil {
		return nil
	}
	return ex.ctx
}

// Workers returns the scope's worker-pool size.
func (ex *Exec) Workers() int { return ex.runtime().Workers() }

// runtime resolves the scope's runtime; the nil (ambient) scope resolves
// to the serial runtime.
func (ex *Exec) runtime() *xrt.Runtime {
	if ex == nil {
		return xrt.Serial()
	}
	return ex.rt
}

// canceled is the panic sentinel carrying an aborted execution's error
// out of the primitive that observed it (see the protocol above). Two
// conditions abort an execution mid-flight: a done context, and a round
// that exhausted its fault-retry budget (*FaultBudgetError) — both
// unwind through this sentinel and surface as ordinary errors at the
// root.
type canceled struct{ err error }

// CanceledError inspects a recovered panic value: if it is the mpc
// abort sentinel it returns the underlying error (a context error, or a
// *FaultBudgetError under fault injection) and true. Execution roots use
// it to convert the unwound panic back into an error.
func CanceledError(r any) (error, bool) {
	if c, ok := r.(canceled); ok {
		return c.err, true
	}
	return nil, false
}

// Recover converts an in-flight abort panic (cancellation, fault budget
// exhaustion) into an error; any other panic (including nil recovery)
// re-propagates or no-ops. Use it in a defer at an execution root:
//
//	defer mpc.Recover(&err)
func Recover(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if err, ok := CanceledError(r); ok {
		*errp = err
		return
	}
	panic(r)
}

// checkpoint panics with the cancellation sentinel when the scope's
// context is done. Primitives call it on entry to every round barrier.
func (ex *Exec) checkpoint() {
	if ex == nil || ex.ctx == nil {
		return
	}
	if err := ex.ctx.Err(); err != nil {
		panic(canceled{err})
	}
}

// ForEachShard dispatches fn(i) for i in [0, n) on the scope's runtime,
// checking cancellation before the dispatch and between shard claims.
// Algorithm packages use it for their per-server local phases; fn must
// confine writes to state owned by shard i (see xrt.Runtime.ForEachShard).
func (ex *Exec) ForEachShard(n int, fn func(i int)) {
	ex.checkpoint()
	if err := ex.runtime().ForEachShardCtx(ex.Context(), n, fn); err != nil {
		panic(canceled{err})
	}
}

// ForEachShardScratch is ForEachShard with a per-worker Scratch arena
// (see xrt.Runtime.ForEachShardScratch for the escape rules).
func (ex *Exec) ForEachShardScratch(n int, fn func(i int, sc *xrt.Scratch)) {
	ex.checkpoint()
	if err := ex.runtime().ForEachShardScratchCtx(ex.Context(), n, fn); err != nil {
		panic(canceled{err})
	}
}

// scope returns the Part's execution scope (nil = ambient); primitives
// propagate it to every Part they derive.
func (pt Part[T]) scope() *Exec { return pt.ex }

// Scope returns the execution scope the Part belongs to, for algorithm
// code that needs to create fresh Parts (NewPartIn) or raw exchanges
// (ExchangeIn) inside the same execution. It may be nil (ambient scope);
// the *In constructors accept that.
func (pt Part[T]) Scope() *Exec { return pt.ex }

// mergeScope picks the non-nil scope when a primitive combines two Parts
// (MultiSearch, SemijoinKeys); both nil yields the ambient scope. Mixing
// two different non-nil scopes is a caller bug — executions must not
// share data — and panics rather than silently picking one.
func mergeScope[X, Y any](a Part[X], b Part[Y]) *Exec {
	ax, bx := a.scope(), b.scope()
	switch {
	case ax == nil:
		return bx
	case bx == nil || ax == bx:
		return ax
	}
	panic(fmt.Sprintf("mpc: parts from two different executions combined (%p vs %p)", ax, bx))
}
