package mpc

import (
	"cmp"
)

// ReduceByKey combines all elements sharing a key into one, using the
// associative and commutative operator combine. Afterwards every key is
// represented by exactly one element, keys are sorted and contiguous across
// servers, and shard sizes are balanced.
//
// This is the paper's reduce-by-key primitive (§2.1, [13]): it computes
// aggregations ∑_ȳ R and degree statistics with load O(N/p) in O(1) rounds.
// The implementation is deterministic and skew-proof: a local pre-combine
// caps every key's surviving multiplicity at p (one per server), a
// tie-broken sample sort balances the shuffle, a second local combine
// leaves one element per key per server, and a constant-size coordinator
// round stitches runs that straddle server boundaries.
//
// The per-server phases run on the ambient runtime: key and combine must
// be safe for concurrent calls across servers.
func ReduceByKey[T any, K cmp.Ordered](pt Part[T], key func(T) K, combine func(a, b T) T) (Part[T], Stats) {
	p := pt.P()
	ex := pt.scope()

	// Local pre-combine (free).
	pre := MapShards(pt, func(_ int, shard []T) []T {
		return combineLocal(shard, key, combine)
	})

	// Global sort by key; balanced by construction.
	sorted, st := Sort(pre, key)

	// Local combine of adjacent runs (free): ≤ 1 element per key per server.
	reduced := MapShards(sorted, func(_ int, shard []T) []T {
		return combineSortedRuns(shard, key, combine)
	})

	// Boundary resolution: keys may still straddle servers (≤ p copies of a
	// key globally). Each server reports its first/last elements to the
	// coordinator, which combines chains and tells every participant to
	// keep, replace, or drop.
	type edge struct {
		src       int
		nonEmpty  bool
		firstK    K
		lastK     K
		firstItem T
		lastItem  T
		n         int
	}
	edges := NewPartIn[edge](ex, p)
	for s, shard := range reduced.Shards {
		e := edge{src: s, n: len(shard)}
		if len(shard) > 0 {
			e.nonEmpty = true
			e.firstItem = shard[0]
			e.lastItem = shard[len(shard)-1]
			e.firstK = key(e.firstItem)
			e.lastK = key(e.lastItem)
		}
		edges.Shards[s] = []edge{e}
	}
	TraceOp(ex, "reduce.boundaries")
	gathered, stA := Gather(edges, 0)
	byServer := make([]edge, p)
	for _, e := range gathered.Shards[0] {
		byServer[e.src] = e
	}

	// Walk servers in key order, tracking the currently "open" run: the key
	// that the most recent server ended with, which the next server may
	// continue. A key spans servers s..t exactly when it is the last key of
	// s, the first key of s+1..t, and the only key of the servers strictly
	// between. Closing a multi-member run emits a replace instruction to
	// the run's first server and drop instructions to the rest.
	type instr struct {
		k       K
		replace bool // replace the element with item (owner); else drop it
		item    T
	}
	instrs := make([][]instr, p)
	var (
		open    bool
		openKey K
		acc     T
		members []int
	)
	closeRun := func() {
		if open && len(members) > 1 {
			instrs[members[0]] = append(instrs[members[0]], instr{k: openKey, replace: true, item: acc})
			for _, m := range members[1:] {
				instrs[m] = append(instrs[m], instr{k: openKey})
			}
		}
		open = false
		members = members[:0]
	}
	for s := 0; s < p; s++ {
		e := byServer[s]
		if !e.nonEmpty {
			continue
		}
		if open && e.firstK == openKey {
			members = append(members, s)
			acc = combine(acc, e.firstItem)
			if e.lastK == openKey {
				continue // the whole shard is this key; run may extend further
			}
			closeRun()
		} else {
			closeRun()
		}
		open = true
		openKey = e.lastK
		acc = e.lastItem
		members = append(members, s)
	}
	closeRun()

	// Only the coordinator sends instructions, so its row is the whole
	// outbox (instrs is already indexed by destination server).
	instrOut := make([][][]instr, p)
	instrOut[0] = instrs
	TraceOp(ex, "reduce.instructions")
	instrPart, stB := ExchangeIn(ex, p, instrOut)

	// Apply instructions per server; each worker touches only shard s.
	// After the local combine a server holds one element per key, so the
	// coordinator's instructions can only touch the shard's ends: at most
	// one for the first key (drop, or replace when this server owns a
	// run confined to that key) and one for the last key (replace, when
	// this server opened a run that later servers continued). Apply them
	// in place instead of hashing every element through drop/replace maps.
	out := NewPartIn[T](ex, p)
	ex.ForEachShard(p, func(s int) {
		shard := reduced.Shards[s]
		ins := instrPart.Shards[s]
		if len(ins) == 0 {
			out.Shards[s] = shard
			return
		}
		lo := 0
		for _, in := range ins {
			switch {
			case len(shard) > 0 && in.k == key(shard[0]) && !in.replace:
				lo = 1
			case len(shard) > 0 && in.k == key(shard[0]) && lo == 0:
				shard[0] = in.item
			case len(shard) > 0 && in.k == key(shard[len(shard)-1]) && in.replace:
				shard[len(shard)-1] = in.item
			default:
				panic("mpc: ReduceByKey internal error: instruction matches neither shard boundary")
			}
		}
		out.Shards[s] = shard[lo:]
	})
	return out, Seq(st, stA, stB)
}

// combineLocal folds equal-key elements of shard into one each, preserving
// no particular order.
func combineLocal[T any, K cmp.Ordered](shard []T, key func(T) K, combine func(a, b T) T) []T {
	if len(shard) <= 1 {
		return shard
	}
	acc := make(map[K]T, len(shard))
	order := make([]K, 0, len(shard))
	for _, x := range shard {
		k := key(x)
		if cur, ok := acc[k]; ok {
			acc[k] = combine(cur, x)
		} else {
			acc[k] = x
			order = append(order, k)
		}
	}
	out := make([]T, 0, len(order))
	for _, k := range order {
		out = append(out, acc[k])
	}
	return out
}

// combineSortedRuns folds adjacent equal-key runs of a key-sorted shard.
func combineSortedRuns[T any, K cmp.Ordered](shard []T, key func(T) K, combine func(a, b T) T) []T {
	if len(shard) <= 1 {
		return shard
	}
	out := shard[:0:0]
	cur := shard[0]
	curK := key(cur)
	for _, x := range shard[1:] {
		k := key(x)
		if k == curK {
			cur = combine(cur, x)
			continue
		}
		out = append(out, cur)
		cur, curK = x, k
	}
	return append(out, cur)
}

// CountByKey counts elements per key: the degree-statistics use of
// reduce-by-key from §2.1 ("each tuple has key π_v t and value 1").
func CountByKey[T any, K cmp.Ordered](pt Part[T], key func(T) K) (Part[KeyCount[K]], Stats) {
	ones := Map(pt, func(x T) KeyCount[K] { return KeyCount[K]{Key: key(x), Count: 1} })
	return ReduceByKey(ones, func(kc KeyCount[K]) K { return kc.Key }, func(a, b KeyCount[K]) KeyCount[K] {
		return KeyCount[K]{Key: a.Key, Count: a.Count + b.Count}
	})
}

// KeyCount pairs a key with a count (or any integer statistic).
type KeyCount[K cmp.Ordered] struct {
	Key   K
	Count int64
}

// TotalCount sums shard sizes via a coordinator round and broadcasts the
// result, so every server learns |pt| — used when an algorithm branches on
// a global size. Returns the count and the (O(p)-load) stats.
func TotalCount[T any](pt Part[T]) (int64, Stats) {
	p := pt.P()
	ex := pt.scope()
	counts := NewPartIn[int64](ex, p)
	for s, shard := range pt.Shards {
		counts.Shards[s] = []int64{int64(len(shard))}
	}
	TraceOp(ex, "count.gather")
	gathered, st1 := Gather(counts, 0)
	var total int64
	for _, c := range gathered.Shards[0] {
		total += c
	}
	tot := NewPartIn[int64](ex, p)
	tot.Shards[0] = []int64{total}
	TraceOp(ex, "count.broadcast")
	_, st2 := Broadcast(tot)
	return total, Seq(st1, st2)
}

// SortedRuns is a local helper returning the (start, end) index pairs of
// equal-key runs in a key-sorted shard.
func SortedRuns[T any, K cmp.Ordered](shard []T, key func(T) K) [][2]int {
	var runs [][2]int
	for i := 0; i < len(shard); {
		j := i + 1
		for j < len(shard) && key(shard[j]) == key(shard[i]) {
			j++
		}
		runs = append(runs, [2]int{i, j})
		i = j
	}
	return runs
}

// SortLocal sorts a shard in place by key (local helper, zero cost). The
// sort is stable: equal-key elements keep their input order. Radix-
// encodable key batches (integers; uniform-length strings such as the
// engines' EncodeKey keys — see radix.go) run the LSD radix kernel; other
// batches take the stable comparison fallback.
func SortLocal[T any, K cmp.Ordered](shard []T, key func(T) K) {
	if len(shard) <= 1 {
		return
	}
	kcmp := func(a, b T) int { return cmp.Compare(key(a), key(b)) }
	if !radixEncodable[K]() {
		sortStableFunc(shard, kcmp)
		return
	}
	ks := make([]K, len(shard))
	for i, x := range shard {
		ks[i] = key(x)
	}
	if enc, ok := encodeRadixKeys(ks); ok {
		radixSortKeyed(enc, shard)
		return
	}
	sortStableFunc(shard, kcmp)
}
