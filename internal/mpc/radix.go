package mpc

import (
	"cmp"
	"reflect"
	"slices"
	"unsafe"
)

// radix.go is the keyed sorting kernel behind Sort, GroupByKey, ReduceByKey
// and SortLocal: a stable LSD radix sort over an order-preserving uint64
// image of the keys, replacing the comparison sorts those paths used to run.
// Comparison sorting pays a cache-missing indirect call per comparison
// (O(n log n) of them); the radix kernel pays O(n) sequential passes over
// flat uint64 arrays — 2–4× on the kernel benchmarks at 16k elements.
//
// Key encoding. A key type K is radix-encodable when an order- and
// equality-preserving mapping onto fixed-width unsigned words exists:
//
//   - signed integers: widen to int64, flip the sign bit (the EncodeKey
//     trick) — one uint64 word;
//   - unsigned integers: widen — one word;
//   - strings: big-endian bytes packed into one word (length ≤ 8) or two
//     (length ≤ 16), valid only when every key in the batch has the same
//     length — zero padding would otherwise merge "a" and "a\x00", breaking
//     injectivity and with it the provenance tie-break order. The engines'
//     keys are relation.EncodeKey strings (exactly 8 bytes per column), so
//     1- and 2-column keys take this path.
//
// Everything else — floats (NaN ordering differs between < and a bitwise
// image), long or ragged strings — takes the comparison fallback, which is
// the pre-radix slices.SortFunc path, centralized here so the sort/reduce
// kernels themselves contain no comparison-sort call sites (a guard test
// pins that).
//
// Encodability is decided per batch at run time: one reflect.Kind check per
// sort call, then a tight per-kind loop extracting values through unsafe
// pointer reinterpretation (no per-element boxing). The decision is purely
// local — every batch is sorted into the same unique (key, provenance)
// total order whether it took the radix or the comparison path, so mixed
// decisions across shards or phases cannot change results.

// RadixKey is the constraint satisfied by key types the radix kernel can
// encode: fixed-width integers and strings. It is a subset of cmp.Ordered
// (floats are excluded). The sort primitives accept all of cmp.Ordered and
// test encodability dynamically; RadixKey documents — and lets callers
// assert statically — which keys take the radix path.
type RadixKey interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr | ~string
}

// radixKeys is the encoded image of one batch of keys: element j's image is
// (hi[j], lo[j]) compared lexicographically; hi is nil for one-word keys.
// class tags the encoding domain: -1 for numeric keys, the uniform byte
// length for string keys. Two batches' images are mutually comparable only
// when their classes match.
type radixKeys struct {
	lo    []uint64
	hi    []uint64
	class int
}

// signFlip maps int64 order onto uint64 order.
const signFlip = uint64(1) << 63

// radixEncodable reports whether K's kind can ever take the radix path
// (string batches additionally require uniform length ≤ 16 at encode time).
func radixEncodable[K cmp.Ordered]() bool {
	switch reflect.TypeFor[K]().Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.String:
		return true
	}
	return false
}

// encodeRadixKeys builds the order-preserving uint64 image of ks, or
// reports false when the batch is not radix-encodable. The kind dispatch
// happens once; the per-kind loops read the keys through unsafe pointers,
// which is sound because cmp.Ordered admits only types whose memory layout
// is exactly their kind's.
func encodeRadixKeys[K cmp.Ordered](ks []K) (radixKeys, bool) {
	if len(ks) == 0 {
		return radixKeys{class: -1}, true
	}
	lo := make([]uint64, len(ks))
	switch reflect.TypeFor[K]().Kind() {
	case reflect.Int:
		for j := range ks {
			lo[j] = uint64(int64(*(*int)(unsafe.Pointer(&ks[j])))) ^ signFlip
		}
	case reflect.Int8:
		for j := range ks {
			lo[j] = uint64(int64(*(*int8)(unsafe.Pointer(&ks[j])))) ^ signFlip
		}
	case reflect.Int16:
		for j := range ks {
			lo[j] = uint64(int64(*(*int16)(unsafe.Pointer(&ks[j])))) ^ signFlip
		}
	case reflect.Int32:
		for j := range ks {
			lo[j] = uint64(int64(*(*int32)(unsafe.Pointer(&ks[j])))) ^ signFlip
		}
	case reflect.Int64:
		for j := range ks {
			lo[j] = uint64(*(*int64)(unsafe.Pointer(&ks[j]))) ^ signFlip
		}
	case reflect.Uint:
		for j := range ks {
			lo[j] = uint64(*(*uint)(unsafe.Pointer(&ks[j])))
		}
	case reflect.Uint8:
		for j := range ks {
			lo[j] = uint64(*(*uint8)(unsafe.Pointer(&ks[j])))
		}
	case reflect.Uint16:
		for j := range ks {
			lo[j] = uint64(*(*uint16)(unsafe.Pointer(&ks[j])))
		}
	case reflect.Uint32:
		for j := range ks {
			lo[j] = uint64(*(*uint32)(unsafe.Pointer(&ks[j])))
		}
	case reflect.Uint64:
		for j := range ks {
			lo[j] = *(*uint64)(unsafe.Pointer(&ks[j]))
		}
	case reflect.Uintptr:
		for j := range ks {
			lo[j] = uint64(*(*uintptr)(unsafe.Pointer(&ks[j])))
		}
	case reflect.String:
		return encodeStringKeys(ks, lo)
	default:
		return radixKeys{}, false
	}
	return radixKeys{lo: lo, class: -1}, true
}

// encodeStringKeys packs uniform-length string keys (≤ 16 bytes) into one
// or two big-endian words per key, left-aligned. Uniform length makes the
// zero padding unambiguous, so word order equals string order and equal
// words mean equal strings. Ragged or longer batches report false.
func encodeStringKeys[K cmp.Ordered](ks []K, lo []uint64) (radixKeys, bool) {
	length := len(*(*string)(unsafe.Pointer(&ks[0])))
	if length > 16 {
		return radixKeys{}, false
	}
	var hi []uint64
	if length > 8 {
		hi = make([]uint64, len(ks))
	}
	for j := range ks {
		s := *(*string)(unsafe.Pointer(&ks[j]))
		if len(s) != length {
			return radixKeys{}, false
		}
		var h, l uint64
		for i := 0; i < length && i < 8; i++ {
			h |= uint64(s[i]) << (56 - 8*i)
		}
		for i := 8; i < length; i++ {
			l |= uint64(s[i]) << (56 - 8*(i-8))
		}
		if hi != nil {
			hi[j], lo[j] = h, l
		} else {
			lo[j] = h
		}
	}
	return radixKeys{lo: lo, hi: hi, class: length}, true
}

// radixLE reports image j of a ≤ image i of b (lexicographic on (hi, lo)).
// Both batches must have the same class.
func radixLE(a radixKeys, j int, b radixKeys, i int) bool {
	if a.hi != nil && a.hi[j] != b.hi[i] {
		return a.hi[j] < b.hi[i]
	}
	return a.lo[j] <= b.lo[i]
}

// radixEq reports image j of a == image i of b. Injectivity of the
// encoding (numeric, or uniform-length strings of equal class) makes this
// equivalent to key equality.
func radixEq(a radixKeys, j int, b radixKeys, i int) bool {
	if a.hi != nil && a.hi[j] != b.hi[i] {
		return false
	}
	return a.lo[j] == b.lo[i]
}

// radixSortCutoff is the batch size below which a stable binary insertion
// on the encoded words beats setting up counting passes.
const radixSortCutoff = 48

// radixSortKeyed stably sorts es by the encoded keys k, permuting k's
// word arrays alongside so they stay aligned with es on return. Stability
// is load-bearing: the sort phases feed inputs whose arrival order is the
// (src, idx) provenance order, and stable key-sorting them reproduces the
// full (key, src, idx) total order the comparison sorts computed.
//
// LSD counting passes, 8-bit digits, least-significant word first. Digits
// on which every key agrees are skipped (detected with one OR-of-XOR scan),
// so nearly-uniform key distributions pay almost nothing. Ping-pong
// buffers; an odd pass count copies back.
func radixSortKeyed[E any](k radixKeys, es []E) {
	n := len(es)
	if n != len(k.lo) || (k.hi != nil && n != len(k.hi)) {
		panic("mpc: radixSortKeyed key/element length mismatch")
	}
	if n <= 1 {
		return
	}
	if n <= radixSortCutoff {
		insertionSortKeyed(k, es)
		return
	}

	var diffLo, diffHi uint64
	for _, v := range k.lo {
		diffLo |= v ^ k.lo[0]
	}
	if k.hi != nil {
		for _, v := range k.hi {
			diffHi |= v ^ k.hi[0]
		}
	}
	if diffLo == 0 && diffHi == 0 {
		return // all keys equal; input order is already the stable answer
	}

	srcE, dstE := es, make([]E, n)
	srcLo, dstLo := k.lo, make([]uint64, n)
	var srcHi, dstHi []uint64
	if k.hi != nil {
		srcHi, dstHi = k.hi, make([]uint64, n)
	}
	passes := 0
	pass := func(words []uint64, shift uint) {
		var count [256]int
		for _, v := range words {
			count[(v>>shift)&0xff]++
		}
		sum := 0
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		if srcHi != nil {
			for j := 0; j < n; j++ {
				d := (words[j] >> shift) & 0xff
				at := count[d]
				count[d]++
				dstE[at], dstLo[at], dstHi[at] = srcE[j], srcLo[j], srcHi[j]
			}
		} else {
			for j := 0; j < n; j++ {
				d := (words[j] >> shift) & 0xff
				at := count[d]
				count[d]++
				dstE[at], dstLo[at] = srcE[j], srcLo[j]
			}
		}
		srcE, dstE = dstE, srcE
		srcLo, dstLo = dstLo, srcLo
		srcHi, dstHi = dstHi, srcHi
		passes++
	}
	for b := uint(0); b < 64; b += 8 {
		if (diffLo>>b)&0xff != 0 {
			pass(srcLo, b)
		}
	}
	if k.hi != nil {
		for b := uint(0); b < 64; b += 8 {
			if (diffHi>>b)&0xff != 0 {
				pass(srcHi, b)
			}
		}
	}
	if passes%2 == 1 {
		copy(es, srcE)
		copy(k.lo, srcLo)
		if k.hi != nil {
			copy(k.hi, srcHi)
		}
	}
}

// insertionSortKeyed is the stable small-batch path of radixSortKeyed.
func insertionSortKeyed[E any](k radixKeys, es []E) {
	for i := 1; i < len(es); i++ {
		e, lo := es[i], k.lo[i]
		var hi uint64
		if k.hi != nil {
			hi = k.hi[i]
		}
		j := i - 1
		for j >= 0 {
			if k.hi != nil {
				if k.hi[j] < hi || (k.hi[j] == hi && k.lo[j] <= lo) {
					break
				}
			} else if k.lo[j] <= lo {
				break
			}
			es[j+1] = es[j]
			k.lo[j+1] = k.lo[j]
			if k.hi != nil {
				k.hi[j+1] = k.hi[j]
			}
			j--
		}
		es[j+1] = e
		k.lo[j+1] = lo
		if k.hi != nil {
			k.hi[j+1] = hi
		}
	}
}

// ---------------------------------------------------------------------------
// Comparison fallbacks
// ---------------------------------------------------------------------------

// sortFunc and sortStableFunc are the comparison fallbacks for batches the
// radix kernel cannot encode. They are the only comparison-sort call sites
// serving the sort/reduce kernels — sort.go and reduce.go deliberately
// contain none (TestNoComparisonSortsInHotKernels pins that), so a future
// edit cannot quietly put a hot path back on slices.SortFunc.

func sortFunc[E any](es []E, cmpf func(a, b E) int) {
	slices.SortFunc(es, cmpf)
}

func sortStableFunc[E any](es []E, cmpf func(a, b E) int) {
	slices.SortStableFunc(es, cmpf)
}
