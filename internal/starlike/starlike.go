// Package starlike implements the §6 algorithm of Hu–Yi PODS'20 for
// star-like queries: n line-query arms T_1 … T_n sharing a common
// non-output attribute B, with the far end A_i of each arm an output
// attribute and all interior attributes aggregated away. Star-like queries
// generalize both line queries (n = 2) and star queries (single-relation
// arms) and are the building block for general tree queries (§7).
//
// Like the star algorithm it is oblivious to OUT. Each b ∈ dom(B) is
// classified by the permutation ϕ_b sorting its per-arm degree estimates
// d_i(b) (obtained by the §2.2 estimator along each arm), and further as
// "small" (∏_{i<n} d_{ϕ(i)}(b) ≤ d_{ϕ(n)}(b)) or "large". A small class
// shrinks its n−1 low-degree arms (Yannakakis folds, sizes ≤ N·√OUT by
// Lemma 10), joins them into a combined attribute A^small, and finishes as
// a line query through the remaining arm (§4). A large class shrinks all
// arms, splits them into the index sets I = {ϕ(n), ϕ(n−3), …} and J (whose
// joint sizes Lemma 11 bounds by N·OUT^{2/3}), uniformizes by degree
// (powers of two) and finishes with one matrix multiplication per degree
// class. Load: Õ((N·N')^{1/3}·OUT^{1/2}/p^{2/3} + N'^{2/3}·OUT^{1/3}/p^{2/3}
// + N·OUT^{2/3}/p + (N+N'+OUT)/p) (Lemma 7).
package starlike

import (
	"cmp"
	"fmt"
	"slices"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/linequery"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/twoway"
)

// Options tunes the algorithm.
type Options struct {
	// Est configures the §2.2 estimator.
	Est estimate.Params
	// Seed drives hash partitioning in subroutines.
	Seed uint64
}

// Arm is one arm of a star-like query: relations ordered from the center
// outward (Rels[0] touches B), with the vertex path [B], inner…, Leaf.
type Arm[W any] struct {
	// Rels[j] spans Path[j] ∪ Path[j+1].
	Rels []dist.Rel[W]
	// Path[0] = [B]; Path[len-1] = the (possibly composite) leaf.
	Path [][]dist.Attr
}

// Leaf returns the arm's output attribute list.
func (a Arm[W]) Leaf() []dist.Attr { return a.Path[len(a.Path)-1] }

// Compute evaluates a star-like query given by its hypergraph view.
func Compute[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	view, ok := q.StarLikeView()
	if !ok {
		return dist.Rel[W]{}, mpc.Stats{}, fmt.Errorf("starlike: query is not a star-like query")
	}
	arms := make([]Arm[W], len(view.Arms))
	for i, va := range view.Arms {
		arm := Arm[W]{Path: [][]dist.Attr{{view.Center}}}
		for _, inner := range va.Inner {
			arm.Path = append(arm.Path, []dist.Attr{inner})
		}
		arm.Path = append(arm.Path, []dist.Attr{va.Leaf})
		for _, ei := range va.Edges {
			arm.Rels = append(arm.Rels, rels[q.Edges[ei].Name])
		}
		arms[i] = arm
	}
	res, st := Run(sr, arms, view.Center, opts)
	return res, st, nil
}

// Run is the core algorithm over explicit arms. Leaves may be composite;
// the center b and all interior attributes are single. The output schema
// is the concatenation of the arm leaves in the given order.
func Run[W any](sr semiring.Semiring[W], arms []Arm[W], b dist.Attr, opts Options) (dist.Rel[W], mpc.Stats) {
	n := len(arms)
	if n < 2 {
		panic("starlike: need at least 2 arms")
	}
	p := arms[0].Rels[0].P()
	var outSchema []dist.Attr
	for _, a := range arms {
		outSchema = append(outSchema, a.Leaf()...)
	}

	var st mpc.Stats
	arms = cloneArms(arms)

	// Degenerate to a line query when n = 2 (§6: a star-like query with
	// two arms is a line query through B).
	if n == 2 {
		var rels []dist.Rel[W]
		var path [][]dist.Attr
		for j := len(arms[0].Rels) - 1; j >= 0; j-- {
			rels = append(rels, arms[0].Rels[j])
		}
		rels = append(rels, arms[1].Rels...)
		for j := len(arms[0].Path) - 1; j >= 0; j-- {
			path = append(path, arms[0].Path[j])
		}
		path = append(path, arms[1].Path[1:]...)
		res, s := linequery.Run(sr, rels, path, linequery.Options{Est: opts.Est, Seed: opts.Seed})
		st = mpc.Seq(st, s)
		return dist.Reshape(dist.Reorder(res, outSchema), p), st
	}

	// Dangling removal across the whole query: sweep each arm inward to B,
	// intersect the arms' B-sets, sweep back outward.
	st = mpc.Seq(st, removeDangling(sr, arms, b))
	nb, sc := mpc.TotalCount(arms[0].Rels[0].Part)
	st = mpc.Seq(st, sc)
	if nb == 0 {
		return dist.Empty[W](outSchema, p), st
	}

	// Step 1: per-arm degree estimates d_i(b) by the §2.2 estimator run
	// along each arm (exact when the arm is a single relation and the
	// distinct leaf count is below the sketch size).
	type armDeg struct {
		b   relation.Value
		arm int
		deg int64
	}
	degTagged := mpc.NewPartIn[armDeg](arms[0].Rels[0].Part.Scope(), p)
	for i := range arms {
		ests, _, s := estimate.LineOut(arms[i].Rels, arms[i].Path, opts.Est)
		st = mpc.Seq(st, s)
		tagged := mpc.Map(ests, func(kc mpc.KeyCount[string]) armDeg {
			return armDeg{b: relation.DecodeKey(kc.Key)[0], arm: i, deg: kc.Count}
		})
		for sh, shard := range tagged.Shards {
			degTagged.Shards[sh] = append(degTagged.Shards[sh], shard...)
		}
	}
	grouped, s2 := mpc.GroupByKey(degTagged, func(ad armDeg) int64 { return int64(ad.b) })
	st = mpc.Seq(st, s2)

	// Per-b class: permutation ϕ_b plus the small/large flag.
	type bClass struct {
		b     relation.Value
		class int64 // encodePerm(ϕ_b)·2 + small-bit
	}
	classes := mpc.MapShards(grouped, func(_ int, shard []armDeg) []bClass {
		var out []bClass
		byB := make(map[relation.Value][]armDeg)
		var bOrder []relation.Value
		for _, ad := range shard {
			if _, seen := byB[ad.b]; !seen {
				bOrder = append(bOrder, ad.b)
			}
			byB[ad.b] = append(byB[ad.b], ad)
		}
		// First-seen key order, not map order: shard contents must be
		// reproducible run to run for the determinism guarantees.
		for _, bv := range bOrder {
			ads := byB[bv]
			slices.SortFunc(ads, func(x, y armDeg) int {
				if x.deg != y.deg {
					return cmp.Compare(x.deg, y.deg)
				}
				return cmp.Compare(x.arm, y.arm)
			})
			order := make([]int, len(ads))
			var prod int64 = 1
			for i, ad := range ads {
				order[i] = ad.arm
				if i < len(ads)-1 {
					prod = satMul(prod, ad.deg)
				}
			}
			small := int64(0)
			if prod <= ads[len(ads)-1].deg {
				small = 1
			}
			out = append(out, bClass{b: bv, class: encodePerm(order, n)*2 + small})
		}
		return out
	})

	distinct, s3 := mpc.ReduceByKey(classes, func(bc bClass) int64 { return bc.class },
		func(a, b bClass) bClass { return a })
	idsPart, s4 := mpc.Gather(mpc.Map(distinct, func(bc bClass) int64 { return bc.class }), 0)
	idsBcast, s5 := mpc.Broadcast(idsPart)
	st = mpc.Seq(st, s3, s4, s5)
	classIDs := append([]int64(nil), idsBcast.Shards[0]...)
	slices.Sort(classIDs)

	// Tag the B-incident relation of every arm with its b's class.
	taggedInner := make([]mpc.Part[rowClass[W]], n)
	for i := range arms {
		bCol := arms[i].Rels[0].Cols(b)[0]
		looked, s := mpc.LookupJoin(arms[i].Rels[0].Part, classes,
			func(r relation.Row[W]) int64 { return int64(r.Vals[bCol]) },
			func(bc bClass) int64 { return int64(bc.b) })
		st = mpc.Seq(st, s)
		taggedInner[i] = mpc.Map(looked, func(pr mpc.Pred[relation.Row[W], bClass]) rowClass[W] {
			cl := int64(-1)
			if pr.Found {
				cl = pr.Y.class
			}
			return rowClass[W]{row: pr.X, class: cl}
		})
	}

	// Steps 2–3 per class. The (constantly many) subqueries run on disjoint
	// O(p)-server groups simultaneously, so their costs compose with Par,
	// as in the paper's accounting.
	var results []dist.Rel[W]
	var classStats []mpc.Stats
	for _, cid := range classIDs {
		var cst mpc.Stats
		small := cid%2 == 1
		order := decodePerm(cid/2, n)

		// The class's arms: B-incident relations filtered to the class,
		// outer relations restricted by an outward semijoin sweep.
		classArms := make([]Arm[W], n)
		for i := range arms {
			rows := mpc.Map(mpc.Filter(taggedInner[i], func(rc rowClass[W]) bool { return rc.class == cid }),
				func(rc rowClass[W]) relation.Row[W] { return rc.row })
			ca := Arm[W]{Path: arms[i].Path, Rels: append([]dist.Rel[W](nil), arms[i].Rels...)}
			ca.Rels[0] = dist.Rel[W]{Schema: arms[i].Rels[0].Schema, Part: rows}
			for j := 1; j < len(ca.Rels); j++ {
				filtered, s := dist.Semijoin(ca.Rels[j], ca.Rels[j-1])
				ca.Rels[j] = filtered
				cst = mpc.Seq(cst, s)
			}
			classArms[i] = ca
		}

		var res dist.Rel[W]
		var s mpc.Stats
		if small {
			res, s = runSmall(sr, classArms, order, b, p, opts)
		} else {
			res, s = runLarge(sr, classArms, order, b, p, opts)
		}
		cst = mpc.Seq(cst, s)
		classStats = append(classStats, cst)
		results = append(results, dist.Reshape(dist.Reorder(res, outSchema), p))
	}
	st = mpc.Seq(st, mpc.Par(classStats...))
	if len(results) == 0 {
		return dist.Empty[W](outSchema, p), st
	}
	final, s6 := dist.UnionAgg(sr, results...)
	return final, mpc.Seq(st, s6)
}

// runSmall handles Q^small_ϕ: shrink arms ϕ(1..n−1) (Step 2.1), join them
// into the combined attribute A^small (Step 2.2), and run the remaining
// arm as a line query.
func runSmall[W any](sr semiring.Semiring[W], arms []Arm[W], order []int, b dist.Attr, p int, opts Options) (dist.Rel[W], mpc.Stats) {
	var st mpc.Stats
	n := len(arms)

	shrunk := make([]dist.Rel[W], 0, n-1)
	for _, i := range order[:n-1] {
		r, s := shrinkArm(sr, arms[i], b, p)
		st = mpc.Seq(st, s)
		shrunk = append(shrunk, r)
	}
	// R_ϕ(A^small, B): full join of the shrunk arms on B.
	acc := shrunk[0]
	for _, r := range shrunk[1:] {
		joined, _, s := twoway.Join(sr, acc, r)
		st = mpc.Seq(st, s)
		acc = dist.Reshape(joined, p)
	}
	// Combined-attribute line query through the last arm.
	last := arms[order[n-1]]
	smallAttrs := minus(acc.Schema, b)
	rels := append([]dist.Rel[W]{acc}, last.Rels...)
	path := append([][]dist.Attr{smallAttrs}, last.Path...)
	res, s := linequery.Run(sr, rels, path, linequery.Options{Est: opts.Est, Seed: opts.Seed})
	return res, mpc.Seq(st, s)
}

// runLarge handles Q^large_ϕ: shrink all arms (Step 3.1), split into the
// I/J index sets of Lemma 11 (Step 3.2), uniformize by the power-of-two
// degree of b in R(A^I, B) (Step 3.3), and run one matrix multiplication
// per degree class (Step 3.4).
func runLarge[W any](sr semiring.Semiring[W], arms []Arm[W], order []int, b dist.Attr, p int, opts Options) (dist.Rel[W], mpc.Stats) {
	var st mpc.Stats
	n := len(arms)

	shrunk := make([]dist.Rel[W], n)
	for i := range arms {
		r, s := shrinkArm(sr, arms[i], b, p)
		st = mpc.Seq(st, s)
		shrunk[i] = r
	}

	// I = {ϕ(n), ϕ(n−3), ϕ(n−6), …} (1-indexed), J = the rest.
	inI := make([]bool, n)
	for k := n; k >= 1; k -= 3 {
		inI[k-1] = true
	}
	var iIdx, jIdx []int
	for pos, armIdx := range order {
		if inI[pos] {
			iIdx = append(iIdx, armIdx)
		} else {
			jIdx = append(jIdx, armIdx)
		}
	}
	fold := func(idx []int) dist.Rel[W] {
		acc := shrunk[idx[0]]
		for _, i := range idx[1:] {
			joined, _, s := twoway.Join(sr, acc, shrunk[i])
			st = mpc.Seq(st, s)
			acc = dist.Reshape(joined, p)
		}
		return acc
	}
	rI := fold(iIdx)
	if len(jIdx) == 0 {
		// Degenerate (n = 1 cannot happen; n = 2 gives J = {ϕ(1)} — only
		// possible if n ≤ 1, guarded upstream).
		panic("starlike: empty J side")
	}
	rJ := fold(jIdx)

	// Uniformize: group b values by ⌈log₂ deg⌉ in R(A^I, B).
	degI, s := dist.Degrees(rI, b)
	st = mpc.Seq(st, s)
	classOf := mpc.Map(degI, func(kc mpc.KeyCount[int64]) mpc.KeyCount[int64] {
		return mpc.KeyCount[int64]{Key: kc.Key, Count: int64(bitLen(kc.Count))}
	})
	distinct, s1 := mpc.ReduceByKey(mpc.Map(classOf, func(kc mpc.KeyCount[int64]) int64 { return kc.Count }),
		func(c int64) int64 { return c }, func(a, b int64) int64 { return a })
	clPart, s2 := mpc.Gather(distinct, 0)
	clBcast, s3 := mpc.Broadcast(clPart)
	st = mpc.Seq(st, s1, s2, s3)
	classIDs := append([]int64(nil), clBcast.Shards[0]...)
	slices.Sort(classIDs)

	bColI := rI.Cols(b)[0]
	bColJ := rJ.Cols(b)[0]
	tagI, s4 := mpc.LookupJoin(rI.Part, classOf,
		func(r relation.Row[W]) int64 { return int64(r.Vals[bColI]) },
		func(kc mpc.KeyCount[int64]) int64 { return kc.Key })
	tagJ, s5 := mpc.LookupJoin(rJ.Part, classOf,
		func(r relation.Row[W]) int64 { return int64(r.Vals[bColJ]) },
		func(kc mpc.KeyCount[int64]) int64 { return kc.Key })
	st = mpc.Seq(st, s4, s5)

	outSchema := append(minus(rI.Schema, b), minus(rJ.Schema, b)...)
	var parts []mpc.Part[relation.Row[W]]
	var mmStats []mpc.Stats
	for _, cid := range classIDs {
		selRows := func(pt mpc.Part[mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]]) mpc.Part[relation.Row[W]] {
			return mpc.Map(mpc.Filter(pt, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) bool {
				return pr.Found && pr.Y.Count == cid
			}), func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[int64]]) relation.Row[W] { return pr.X })
		}
		subI := dist.Rel[W]{Schema: rI.Schema, Part: selRows(tagI)}
		subJ := dist.Rel[W]{Schema: rJ.Schema, Part: selRows(tagJ)}
		res, s, err := matmul.Compute(sr, matmul.Input[W]{R1: subI, R2: subJ, B: b},
			matmul.Options{Est: opts.Est, Seed: opts.Seed ^ uint64(cid), SkipDangling: true})
		if err != nil {
			panic(err)
		}
		mmStats = append(mmStats, s)
		parts = append(parts, dist.Reshape(res, p).Part)
	}
	// Step 3.4: "all the matrix multiplications are computed in parallel".
	st = mpc.Seq(st, mpc.Par(mmStats...))
	// Degree classes partition dom(B); their outputs may still share
	// output tuples, so ⊕-merge.
	rels := make([]dist.Rel[W], len(parts))
	for i, pt := range parts {
		rels[i] = dist.Rel[W]{Schema: outSchema, Part: pt}
	}
	if len(rels) == 0 {
		return dist.Empty[W](outSchema, p), st
	}
	res, s6 := dist.UnionAgg(sr, rels...)
	return res, mpc.Seq(st, s6)
}

// shrinkArm folds an arm into R(leaf…, B) with Yannakakis aggregations
// from the leaf toward the center (Step 2.1 / 3.1).
func shrinkArm[W any](sr semiring.Semiring[W], arm Arm[W], b dist.Attr, p int) (dist.Rel[W], mpc.Stats) {
	var st mpc.Stats
	h := len(arm.Rels) - 1
	acc := arm.Rels[h]
	leaf := arm.Leaf()
	for j := h - 1; j >= 0; j-- {
		keep := append(append([]dist.Attr(nil), arm.Path[j]...), leaf...)
		folded, s := twoway.JoinAgg(sr, arm.Rels[j], acc, keep...)
		st = mpc.Seq(st, s)
		acc = dist.Reshape(folded, p)
	}
	_ = b
	return acc, st
}

// removeDangling runs the full reducer across the arms: inward sweeps to
// B, B-set intersection, outward sweeps.
func removeDangling[W any](sr semiring.Semiring[W], arms []Arm[W], b dist.Attr) mpc.Stats {
	var st mpc.Stats
	// Inward: restrict each relation by its outer neighbor.
	for i := range arms {
		for j := len(arms[i].Rels) - 2; j >= 0; j-- {
			filtered, s := dist.Semijoin(arms[i].Rels[j], arms[i].Rels[j+1])
			arms[i].Rels[j] = filtered
			st = mpc.Seq(st, s)
		}
	}
	// Intersect B-sets.
	inter, s := dist.ProjectAgg(sr, arms[0].Rels[0], b)
	st = mpc.Seq(st, s)
	for i := 1; i < len(arms); i++ {
		bs, s1 := dist.ProjectAgg(sr, arms[i].Rels[0], b)
		filtered, s2 := dist.Semijoin(inter, bs)
		inter = filtered
		st = mpc.Seq(st, s1, s2)
	}
	// Outward: restrict the B-incident relation to the intersection, then
	// sweep outward.
	for i := range arms {
		filtered, s := dist.Semijoin(arms[i].Rels[0], inter)
		arms[i].Rels[0] = filtered
		st = mpc.Seq(st, s)
		for j := 1; j < len(arms[i].Rels); j++ {
			f, s2 := dist.Semijoin(arms[i].Rels[j], arms[i].Rels[j-1])
			arms[i].Rels[j] = f
			st = mpc.Seq(st, s2)
		}
	}
	return st
}

type rowClass[W any] struct {
	row   relation.Row[W]
	class int64
}

func cloneArms[W any](arms []Arm[W]) []Arm[W] {
	out := make([]Arm[W], len(arms))
	for i, a := range arms {
		out[i] = Arm[W]{Rels: append([]dist.Rel[W](nil), a.Rels...), Path: a.Path}
	}
	return out
}

func minus(schema []dist.Attr, b dist.Attr) []dist.Attr {
	var out []dist.Attr
	for _, a := range schema {
		if a != b {
			out = append(out, a)
		}
	}
	return out
}

func satMul(a, b int64) int64 {
	const lim = int64(1) << 40
	if a > lim/maxI64(b, 1) {
		return lim
	}
	return a * b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func bitLen(x int64) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// encodePerm packs an arm order into an int64 (base-n digits; n ≤ 15).
func encodePerm(order []int, n int) int64 {
	if n > 15 {
		panic("starlike: more than 15 arms unsupported")
	}
	var id int64
	for i := len(order) - 1; i >= 0; i-- {
		id = id*int64(n) + int64(order[i])
	}
	return id
}

// decodePerm inverts encodePerm.
func decodePerm(id int64, n int) []int {
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[i] = int(id % int64(n))
		id /= int64(n)
	}
	return order
}
