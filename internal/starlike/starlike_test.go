package starlike

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			r.Append(int64(rng.Intn(4)+1), relation.Value(rng.Intn(dom)), relation.Value(rng.Intn(dom)))
		}
		inst[e.Name] = relation.Compact[int64](intSR, r)
	}
	return inst
}

func distRels(q *hypergraph.Query, inst db.Instance[int64], p int) map[string]dist.Rel[int64] {
	rels := make(map[string]dist.Rel[int64])
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	return rels
}

func check(t *testing.T, q *hypergraph.Query, inst db.Instance[int64], p int, opts Options) {
	t.Helper()
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.Yannakakis[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("star-like mismatch: got %v want %v", dist.ToRelation(got), want)
	}
}

// smallStarLike: 3 arms — A1–B, A2–C21–B, A3–C31–B.
func smallStarLike() *hypergraph.Query {
	return hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A1", "B"),
		hypergraph.Bin("R21", "A2", "C21"), hypergraph.Bin("R22", "C21", "B"),
		hypergraph.Bin("R31", "A3", "C31"), hypergraph.Bin("R32", "C31", "B"),
	}, "A1", "A2", "A3")
}

func TestSmallStarLikeAgainstReference(t *testing.T) {
	q := smallStarLike()
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng, q, 30, 7)
		check(t, q, inst, rng.Intn(6)+2, Options{Seed: uint64(seed)})
	}
}

func TestFig1StarLikeAgainstReference(t *testing.T) {
	q := hypergraph.Fig1StarLike()
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		inst := randomInstance(rng, q, 20, 6)
		check(t, q, inst, rng.Intn(5)+2, Options{Seed: uint64(seed)})
	}
}

func TestQuickRandomStarLike(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random star-like query: 3–4 arms of length 1–2.
		nArms := rng.Intn(2) + 3
		var edges []hypergraph.Edge
		var out []hypergraph.Attr
		for i := 0; i < nArms; i++ {
			leaf := hypergraph.Attr(rune('P' + i))
			out = append(out, leaf)
			if rng.Intn(2) == 0 {
				edges = append(edges, hypergraph.Bin("R"+string(rune('0'+i)), leaf, "B"))
			} else {
				mid := hypergraph.Attr("C" + string(rune('0'+i)))
				edges = append(edges,
					hypergraph.Bin("R"+string(rune('0'+i))+"a", leaf, mid),
					hypergraph.Bin("R"+string(rune('0'+i))+"b", mid, "B"))
			}
		}
		q := hypergraph.NewQuery(edges, out...)
		if err := q.Validate(); err != nil {
			return false
		}
		inst := randomInstance(rng, q, rng.Intn(25)+5, rng.Intn(5)+3)
		p := rng.Intn(5) + 2
		got, _, err := Compute[int64](intSR, q, distRels(q, inst, p), Options{Seed: uint64(seed)})
		if err != nil {
			// Pure star queries (all arms single relations) are still
			// star-like by our view; errors are real failures.
			return false
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeClassPath(t *testing.T) {
	// Force large classes: b values where the product of the n−1 smallest
	// arm degrees exceeds the largest (all arms same moderate degree).
	q := smallStarLike()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A1", "B")
	r21 := relation.New[int64]("A2", "C21")
	r22 := relation.New[int64]("C21", "B")
	r31 := relation.New[int64]("A3", "C31")
	r32 := relation.New[int64]("C31", "B")
	// b = 0 joined with 6 values on every arm: 6·6 > 6 → large class.
	for i := 0; i < 6; i++ {
		r1.Append(1, relation.Value(i), 0)
		r21.Append(1, relation.Value(i), relation.Value(i%3))
		r22.Append(1, relation.Value(i%3), 0)
		r31.Append(1, relation.Value(i), relation.Value(i%2))
		r32.Append(1, relation.Value(i%2), 0)
	}
	inst["R1"] = relation.Compact[int64](intSR, r1)
	inst["R21"] = relation.Compact[int64](intSR, r21)
	inst["R22"] = relation.Compact[int64](intSR, r22)
	inst["R31"] = relation.Compact[int64](intSR, r31)
	inst["R32"] = relation.Compact[int64](intSR, r32)
	check(t, q, inst, 4, Options{})
}

func TestSmallClassPath(t *testing.T) {
	// Force small classes: one dominant arm (degree 50), others degree 1.
	q := smallStarLike()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A1", "B")
	r21 := relation.New[int64]("A2", "C21")
	r22 := relation.New[int64]("C21", "B")
	r31 := relation.New[int64]("A3", "C31")
	r32 := relation.New[int64]("C31", "B")
	for i := 0; i < 50; i++ {
		r1.Append(1, relation.Value(i), 0)
	}
	r21.Append(1, 7, 3)
	r22.Append(1, 3, 0)
	r31.Append(1, 9, 4)
	r32.Append(1, 4, 0)
	inst["R1"] = r1
	inst["R21"] = r21
	inst["R22"] = r22
	inst["R31"] = r31
	inst["R32"] = r32
	check(t, q, inst, 4, Options{})
}

func TestEmptyAfterDangling(t *testing.T) {
	q := smallStarLike()
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		inst[e.Name] = r
	}
	inst["R1"].Append(1, 1, 1)
	inst["R21"].Append(1, 1, 1)
	inst["R22"].Append(1, 1, 2) // b = 2 ≠ 1: empty intersection
	inst["R31"].Append(1, 1, 1)
	inst["R32"].Append(1, 1, 1)
	got, _, err := Compute[int64](intSR, q, distRels(q, inst, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("expected empty, got %v", dist.ToRelation(got))
	}
}

func TestRunTwoArmsDegeneratesToLine(t *testing.T) {
	// Two arms of length 2 each: equivalent to the 4-relation line query.
	rng := rand.New(rand.NewSource(3))
	mk := func(a1, a2 hypergraph.Attr) *relation.Relation[int64] {
		r := relation.New[int64](a1, a2)
		for i := 0; i < 40; i++ {
			r.Append(1, relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		return relation.Compact[int64](intSR, r)
	}
	ra1 := mk("X", "C1")
	ra0 := mk("C1", "B")
	rb0 := mk("B", "C2")
	rb1 := mk("C2", "Y")
	const p = 4
	arms := []Arm[int64]{
		{Rels: []dist.Rel[int64]{dist.FromRelation(ra0, p), dist.FromRelation(ra1, p)},
			Path: [][]dist.Attr{{"B"}, {"C1"}, {"X"}}},
		{Rels: []dist.Rel[int64]{dist.FromRelation(rb0, p), dist.FromRelation(rb1, p)},
			Path: [][]dist.Attr{{"B"}, {"C2"}, {"Y"}}},
	}
	got, _ := Run[int64](intSR, arms, "B", Options{})
	joined := relation.Join[int64](intSR, relation.Join[int64](intSR, relation.Join[int64](intSR, ra1, ra0), rb0), rb1)
	want := relation.ProjectAgg[int64](intSR, joined, "X", "Y")
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("two-arm mismatch: %v vs %v", dist.ToRelation(got), want)
	}
}

func TestPermCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		order := rng.Perm(n)
		got := decodePerm(encodePerm(order, n), n)
		for i := range order {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectNonStarLike(t *testing.T) {
	q := hypergraph.LineQuery(3)
	if _, _, err := Compute[int64](intSR, q, nil, Options{}); err == nil {
		t.Fatal("expected error on line query")
	}
}

func TestFig1WithMultiplicity(t *testing.T) {
	// Inner (non-output) attributes carry multiplicity: arm folds must
	// ⊕-combine duplicate derivations correctly (annotations multiply).
	q := hypergraph.Fig1StarLike()
	for _, mult := range []int{2, 3} {
		inst, _ := workload.BlocksMulti(q, 6, 2, mult)
		check(t, q, inst, 4, Options{Seed: uint64(mult)})
	}
}

func TestDanglingInjectionStarLike(t *testing.T) {
	q := hypergraph.Fig1StarLike()
	inst, _ := workload.Blocks(q, 8, 2)
	noisy := workload.InjectDangling(inst, int64(1), 0.5)
	check(t, q, noisy, 4, Options{})
}
