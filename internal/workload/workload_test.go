package workload

import (
	"errors"
	"math/rand"
	"testing"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func TestBlocksOutExactMatMul(t *testing.T) {
	inst, meta := MatMulBlocks(8, 3, 5)
	q := hypergraph.MatMulQuery()
	if err := db.Validate(q, inst); err != nil {
		t.Fatal(err)
	}
	out, err := refengine.CountOutput[int64](intSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if int64(out) != meta.Out || meta.Out != 8*3*5 {
		t.Fatalf("OUT = %d, meta %d, want %d", out, meta.Out, 8*3*5)
	}
	if meta.PerEdge["R1"] != 8*3 || meta.PerEdge["R2"] != 8*5 {
		t.Fatalf("sizes = %v", meta.PerEdge)
	}
}

func TestBlocksOutExactAcrossShapes(t *testing.T) {
	queries := []*hypergraph.Query{
		hypergraph.LineQuery(3),
		hypergraph.StarQuery(3),
		hypergraph.Fig3Twig(),
	}
	for _, q := range queries {
		inst, meta := Blocks(q, 4, 2)
		out, err := refengine.CountOutput[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		if int64(out) != meta.Out {
			t.Fatalf("%v: OUT = %d, meta %d", q.Output, out, meta.Out)
		}
		want := int64(4)
		for range q.Output {
			want *= 2
		}
		if meta.Out != want {
			t.Fatalf("%v: meta.Out = %d, want %d", q.Output, meta.Out, want)
		}
	}
}

func TestFanForOut(t *testing.T) {
	q := hypergraph.MatMulQuery()
	fan := FanForOut(q, 10, 4000) // fan² = 400 → fan = 20
	if fan != 20 {
		t.Fatalf("fan = %d", fan)
	}
	if f := FanForOut(q, 1000, 10); f != 1 {
		t.Fatalf("tiny out fan = %d", f)
	}
}

func TestUniformAndZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := hypergraph.LineQuery(3)
	inst, meta := Uniform(q, 200, 50, rng)
	if meta.N == 0 || meta.Out != -1 {
		t.Fatalf("meta = %+v", meta)
	}
	if err := db.Validate(q, inst); err != nil {
		t.Fatal(err)
	}

	zinst, zmeta, err := Zipf(q, 500, 100, 1.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(q, zinst); err != nil {
		t.Fatal(err)
	}
	// Zipf must produce at least one genuinely heavy value.
	deg := map[int64]int{}
	for _, row := range zinst["R1"].Rows {
		deg[int64(row.Vals[1])] += int(row.W)
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 50 {
		t.Fatalf("Zipf skew too weak: max degree %d", max)
	}
	_ = zmeta
}

func TestMatMulZipfAndUnequal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := hypergraph.MatMulQuery()
	inst, _, err := MatMulZipf(300, 50, 1.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(q, inst); err != nil {
		t.Fatal(err)
	}
	inst2, meta2 := MatMulUnequal(10, 1000, 5, rng)
	if err := db.Validate(q, inst2); err != nil {
		t.Fatal(err)
	}
	if meta2.PerEdge["R1"] >= meta2.PerEdge["R2"] {
		t.Fatalf("unequal sizes wrong: %v", meta2.PerEdge)
	}
}

func TestInjectDanglingPreservesAnswer(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst, _ := MatMulBlocks(5, 2, 3)
	noisy := InjectDangling(inst, int64(1), 0.5)
	if db.InputSize(noisy) <= db.InputSize(inst) {
		t.Fatal("no dangling injected")
	}
	a, _ := refengine.BruteForce[int64](intSR, q, inst)
	b, _ := refengine.BruteForce[int64](intSR, q, noisy)
	if a.Len() != b.Len() {
		t.Fatalf("dangling changed answer: %d vs %d", a.Len(), b.Len())
	}
}

func TestZipfParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := hypergraph.MatMulQuery()
	// These used to panic inside rand.NewZipf; now they are typed errors.
	if _, _, err := Zipf(q, 10, 50, 1.0, rng); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("Zipf s=1.0: err = %v, want ErrInvalidParam", err)
	}
	if _, _, err := Zipf(q, 10, 0, 1.5, rng); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("Zipf dom=0: err = %v, want ErrInvalidParam", err)
	}
	if _, _, err := MatMulZipf(10, 50, 0.3, rng); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("MatMulZipf s=0.3: err = %v, want ErrInvalidParam", err)
	}
	if _, _, err := MatMulZipf(10, 1, 1.5, rng); !errors.Is(err, ErrInvalidParam) {
		t.Fatalf("MatMulZipf dom=1: err = %v, want ErrInvalidParam", err)
	}
}

func TestPowerLawGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst, meta, err := PowerLawGraph(500, 6, 1.3, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := GraphQuery()
	if err := db.Validate(q, inst); err != nil {
		t.Fatal(err)
	}
	r := inst["E"]
	if meta.N != r.Len() || meta.N < 499 {
		t.Fatalf("meta.N = %d over %d edges", meta.N, r.Len())
	}
	// Connectivity: the tree backbone reaches every vertex from 0.
	adj := map[int64][]int64{}
	outdeg := map[int64]int{}
	for _, row := range r.Rows {
		s, d := int64(row.Vals[0]), int64(row.Vals[1])
		if s == d {
			t.Fatalf("self-loop %d", s)
		}
		if row.W < 1 || row.W > 100 {
			t.Fatalf("weight %d outside [1, 100]", row.W)
		}
		adj[s] = append(adj[s], d)
		outdeg[s]++
	}
	reached := map[int64]bool{0: true}
	stack := []int64{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !reached[w] {
				reached[w] = true
				stack = append(stack, w)
			}
		}
	}
	if len(reached) != 500 {
		t.Fatalf("only %d/500 vertices reachable from 0", len(reached))
	}
	// Power-law skew: the heaviest hub's degree dwarfs the average.
	max := 0
	for _, d := range outdeg {
		if d > max {
			max = d
		}
	}
	if max < 3*meta.N/500 {
		t.Fatalf("skew too weak: max out-degree %d, %d edges over 500 vertices", max, meta.N)
	}

	// Parameter validation mirrors the Zipf generators.
	for _, bad := range []func() error{
		func() error { _, _, err := PowerLawGraph(1, 6, 1.3, 100, rng); return err },
		func() error { _, _, err := PowerLawGraph(500, 0.5, 1.3, 100, rng); return err },
		func() error { _, _, err := PowerLawGraph(500, 6, 0.9, 100, rng); return err },
		func() error { _, _, err := PowerLawGraph(500, 6, 1.3, 0, rng); return err },
	} {
		if err := bad(); !errors.Is(err, ErrInvalidParam) {
			t.Fatalf("bad params: err = %v, want ErrInvalidParam", err)
		}
	}
}
