// Package workload generates instances with controlled sizes for the
// experiment harness: block-structured instances whose output size OUT is
// exact by construction (the knob every Table 1 experiment sweeps),
// uniform and Zipf-skewed random instances, and dangling-tuple injection.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
)

// ErrInvalidParam marks generator-parameter validation failures (Zipf
// exponents, domain sizes, graph shapes). Drivers test with errors.Is and
// turn it into a usage error instead of letting rand.NewZipf panic deep in
// the generator.
var ErrInvalidParam = errors.New("workload: invalid parameter")

// zipfParams validates the (s, dom) pair rand.NewZipf requires: it panics
// for s <= 1 or an empty domain, so every Zipf-shaped generator guards
// here first.
func zipfParams(s float64, dom int) error {
	if s <= 1 || math.IsNaN(s) || math.IsInf(s, 0) {
		return fmt.Errorf("%w: zipf exponent s=%v must be > 1", ErrInvalidParam, s)
	}
	if dom < 2 {
		return fmt.Errorf("%w: zipf domain %d must be >= 2", ErrInvalidParam, dom)
	}
	return nil
}

// Meta summarizes a generated instance.
type Meta struct {
	// N is the total input size Σ|R_e|; PerEdge the per-relation sizes.
	N       int
	PerEdge map[string]int
	// Out is the exact output size when the generator controls it, else -1.
	Out int64
}

// Blocks generates a block-structured instance for any tree query: the
// domain splits into `blocks` independent blocks; within a block every
// non-output attribute takes a single fresh value and every output
// attribute takes `fan` fresh values, each edge holding the cross product
// of its endpoints' value sets. The full join restricted to a block is the
// cross product of its output values, so
//
//	OUT = blocks · fan^{|output attributes|}
//
// exactly, while each relation has blocks·fan^{(output endpoints)} tuples.
// Sweeping fan at fixed N·? sweeps OUT with everything else controlled —
// the workhorse of the Table 1 experiments. All annotations are 1.
func Blocks(q *hypergraph.Query, blocks, fan int) (db.Instance[int64], Meta) {
	return BlocksFan(q, blocks, nil, fan)
}

// BlocksMulti is Blocks with a multiplicity on non-output attributes:
// every non-output attribute takes mult fresh values per block (instead of
// one), so every derivation multiplies by mult per non-output attribute
// while OUT is unchanged. This drives the intermediate join size J (the
// Yannakakis baseline's cost) arbitrarily above OUT — the regime where the
// Hu–Yi algorithms' advantage is largest.
func BlocksMulti(q *hypergraph.Query, blocks, fan, mult int) (db.Instance[int64], Meta) {
	return blocksGen(q, blocks, nil, fan, mult)
}

// BlocksFan is Blocks with a per-attribute fan override (attributes absent
// from fans use def; non-output attributes always have fan 1).
func BlocksFan(q *hypergraph.Query, blocks int, fans map[hypergraph.Attr]int, def int) (db.Instance[int64], Meta) {
	return blocksGen(q, blocks, fans, def, 1)
}

func blocksGen(q *hypergraph.Query, blocks int, fans map[hypergraph.Attr]int, def, mult int) (db.Instance[int64], Meta) {
	fanOf := func(a hypergraph.Attr) int {
		if !q.IsOutput(a) {
			return mult
		}
		if f, ok := fans[a]; ok {
			return f
		}
		return def
	}
	// Values: attribute a in block k gets values k·stride + 0..fan-1 where
	// stride is the max fan (so blocks never collide).
	stride := def
	if mult > stride {
		stride = mult
	}
	for _, f := range fans {
		if f > stride {
			stride = f
		}
	}
	if stride < 1 {
		stride = 1
	}

	inst := make(db.Instance[int64], len(q.Edges))
	meta := Meta{PerEdge: make(map[string]int, len(q.Edges)), Out: 1}
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for k := 0; k < blocks; k++ {
			switch len(e.Attrs) {
			case 1:
				for i := 0; i < fanOf(e.Attrs[0]); i++ {
					r.Append(1, relation.Value(k*stride+i))
				}
			case 2:
				for i := 0; i < fanOf(e.Attrs[0]); i++ {
					for j := 0; j < fanOf(e.Attrs[1]); j++ {
						r.Append(1, relation.Value(k*stride+i), relation.Value(k*stride+j))
					}
				}
			}
		}
		inst[e.Name] = r
		meta.PerEdge[e.Name] = r.Len()
		meta.N += r.Len()
	}
	var out int64 = int64(blocks)
	for _, a := range q.Output {
		out *= int64(fanOf(a))
	}
	meta.Out = out
	return inst, meta
}

// FanForOut returns the fan that makes Blocks produce approximately the
// target OUT with the given block count: fan = (out/blocks)^(1/|y|).
func FanForOut(q *hypergraph.Query, blocks int, out int64) int {
	k := len(q.Output)
	if k == 0 {
		return 1
	}
	f := math.Pow(float64(out)/float64(blocks), 1/float64(k))
	if f < 1 {
		return 1
	}
	return int(math.Round(f))
}

// Uniform fills every edge with n tuples drawn uniformly from [0, dom) per
// attribute; duplicates are merged (annotation = multiplicity).
func Uniform(q *hypergraph.Query, n, dom int, rng *rand.Rand) (db.Instance[int64], Meta) {
	inst := make(db.Instance[int64], len(q.Edges))
	meta := Meta{PerEdge: make(map[string]int, len(q.Edges)), Out: -1}
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(rng.Intn(dom))
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: 1})
		}
		inst[e.Name] = dedup(r)
		meta.PerEdge[e.Name] = inst[e.Name].Len()
		meta.N += inst[e.Name].Len()
	}
	return inst, meta
}

// Zipf fills every edge with n tuples whose attribute values follow a
// Zipf(s) distribution over [0, dom) — the skew stressor for the
// heavy/light machinery. s must be > 1 and dom >= 2 (errors.Is
// ErrInvalidParam otherwise).
func Zipf(q *hypergraph.Query, n, dom int, s float64, rng *rand.Rand) (db.Instance[int64], Meta, error) {
	if err := zipfParams(s, dom); err != nil {
		return nil, Meta{}, err
	}
	z := rand.NewZipf(rng, s, 1, uint64(dom-1))
	inst := make(db.Instance[int64], len(q.Edges))
	meta := Meta{PerEdge: make(map[string]int, len(q.Edges)), Out: -1}
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(z.Uint64())
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: 1})
		}
		inst[e.Name] = dedup(r)
		meta.PerEdge[e.Name] = inst[e.Name].Len()
		meta.N += inst[e.Name].Len()
	}
	return inst, meta, nil
}

// MatMulBlocks is Blocks specialized to the matrix multiplication query:
// N1 = blocks·aPer, N2 = blocks·cPer, OUT = blocks·aPer·cPer exactly.
func MatMulBlocks(blocks, aPer, cPer int) (db.Instance[int64], Meta) {
	q := hypergraph.MatMulQuery()
	return BlocksFan(q, blocks, map[hypergraph.Attr]int{"A": aPer, "C": cPer}, 1)
}

// MatMulZipf generates a skewed sparse matrix multiplication instance:
// n tuples per side with B drawn Zipf(s) from [0, domB). s must be > 1 and
// domB >= 2 (errors.Is ErrInvalidParam otherwise).
func MatMulZipf(n, domB int, s float64, rng *rand.Rand) (db.Instance[int64], Meta, error) {
	if err := zipfParams(s, domB); err != nil {
		return nil, Meta{}, err
	}
	z := rand.NewZipf(rng, s, 1, uint64(domB-1))
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < n; i++ {
		r1.Append(1, relation.Value(i), relation.Value(z.Uint64()))
		r2.Append(1, relation.Value(z.Uint64()), relation.Value(i))
	}
	inst := db.Instance[int64]{"R1": dedup(r1), "R2": dedup(r2)}
	return inst, Meta{
		N:       inst["R1"].Len() + inst["R2"].Len(),
		PerEdge: map[string]int{"R1": inst["R1"].Len(), "R2": inst["R2"].Len()},
		Out:     -1,
	}, nil
}

// MatMulUnequal generates N1 ≪ N2: n1 rows sharing domB values against
// n2 columns, exercising the unequal-ratio fast path.
func MatMulUnequal(n1, n2, domB int, rng *rand.Rand) (db.Instance[int64], Meta) {
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < n1; i++ {
		r1.Append(1, relation.Value(i), relation.Value(rng.Intn(domB)))
	}
	for i := 0; i < n2; i++ {
		r2.Append(1, relation.Value(rng.Intn(domB)), relation.Value(i))
	}
	inst := db.Instance[int64]{"R1": dedup(r1), "R2": dedup(r2)}
	return inst, Meta{
		N:       inst["R1"].Len() + inst["R2"].Len(),
		PerEdge: map[string]int{"R1": inst["R1"].Len(), "R2": inst["R2"].Len()},
		Out:     -1,
	}
}

// InjectDangling appends, to every relation, extra tuples over fresh
// domain values that cannot join (a fraction frac of the relation's size),
// exercising the dangling-removal passes. Returns the modified instance;
// OUT is unchanged.
func InjectDangling[W any](inst db.Instance[W], one W, frac float64) db.Instance[W] {
	out := db.Clone(inst)
	fresh := relation.Value(1 << 40)
	for name, r := range out {
		extra := int(frac * float64(r.Len()))
		for i := 0; i < extra; i++ {
			vals := make([]relation.Value, r.Arity())
			for j := range vals {
				fresh++
				vals[j] = fresh
			}
			r.AppendRow(relation.Row[W]{Vals: vals, W: one})
		}
		out[name] = r
	}
	return out
}

// dedup merges duplicate tuples, summing multiplicities.
func dedup(r *relation.Relation[int64]) *relation.Relation[int64] {
	seen := make(map[string]int, r.Len())
	out := relation.New[int64](r.Schema()...)
	idx := make([]int, r.Arity())
	for i := range idx {
		idx[i] = i
	}
	for _, row := range r.Rows {
		k := relation.EncodeKey(row.Vals, idx)
		if at, ok := seen[k]; ok {
			out.Rows[at].W += row.W
			continue
		}
		seen[k] = len(out.Rows)
		out.AppendRow(row)
	}
	return out
}

// GraphQuery returns the single-edge query E(S, D) the graph workloads
// run over: one binary relation holding the weighted edge list, both
// endpoints output (free-connex — no aggregation happens in the query
// itself; the iterated drivers supply the semantics).
func GraphQuery() *hypergraph.Query {
	return hypergraph.NewQuery([]hypergraph.Edge{hypergraph.Bin("E", "S", "D")}, "S", "D")
}

// PowerLawGraph generates a connected directed graph with a power-law
// in/out-degree tail, as one edge relation E(S, D) with positive int64
// weight annotations in [1, maxW] — the input of the BFS/SSSP/PageRank
// drivers. The shape is a random-tree backbone (vertex v > 0 attaches
// under a uniform earlier parent, so every vertex is reachable from
// vertex 0 with O(log n) expected depth) plus ~n·(avgDeg−1) extra edges
// whose endpoints are Zipf(s)-skewed toward low vertex IDs, producing the
// heavy hubs the skew machinery and the SpMSpV pre-aggregation exist for.
// Duplicate edges and self-loops are dropped, so the realized edge count
// (Meta.N) lands slightly under n·avgDeg.
//
// Requires n >= 2, avgDeg >= 1, s > 1, maxW >= 1 (errors.Is
// ErrInvalidParam otherwise).
func PowerLawGraph(n int, avgDeg float64, s float64, maxW int64, rng *rand.Rand) (db.Instance[int64], Meta, error) {
	if n < 2 {
		return nil, Meta{}, fmt.Errorf("%w: graph needs n >= 2 vertices, got %d", ErrInvalidParam, n)
	}
	if avgDeg < 1 {
		return nil, Meta{}, fmt.Errorf("%w: graph average degree %v must be >= 1", ErrInvalidParam, avgDeg)
	}
	if maxW < 1 {
		return nil, Meta{}, fmt.Errorf("%w: graph max weight %d must be >= 1", ErrInvalidParam, maxW)
	}
	if err := zipfParams(s, n); err != nil {
		return nil, Meta{}, err
	}

	type edge struct{ s, d relation.Value }
	seen := make(map[edge]bool, int(float64(n)*avgDeg))
	r := relation.New[int64]("S", "D")
	add := func(src, dst relation.Value) {
		if src == dst || seen[edge{src, dst}] {
			return
		}
		seen[edge{src, dst}] = true
		r.Append(1+rng.Int63n(maxW), src, dst)
	}

	// Backbone: parent(v) uniform over earlier vertices.
	for v := 1; v < n; v++ {
		add(relation.Value(rng.Intn(v)), relation.Value(v))
	}
	// Skewed extras: both endpoints Zipf-shaped, hubs at low IDs.
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	extra := int(float64(n) * (avgDeg - 1))
	for i := 0; i < extra; i++ {
		add(relation.Value(z.Uint64()), relation.Value(z.Uint64()))
	}

	inst := db.Instance[int64]{"E": r}
	return inst, Meta{
		N:       r.Len(),
		PerEdge: map[string]int{"E": r.Len()},
		Out:     -1,
	}, nil
}

// Describe renders a Meta for harness output.
func (m Meta) Describe() string {
	return fmt.Sprintf("N=%d OUT=%d", m.N, m.Out)
}
