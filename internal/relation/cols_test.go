package relation

import (
	"math/rand"
	"testing"
)

// cols_test.go: the columnar ↔ row round-trip oracle. Conversion must be
// lossless and order-preserving, dictionaries deterministic, and the
// ownership-transfer constructor must reject malformed shapes.

// randomRelation builds a relation with heavy duplicate keys (small value
// domains) so dictionaries actually dedupe.
func randomRelation(rng *rand.Rand, n, arity int) *Relation[int64] {
	attrs := make([]Attr, arity)
	for i := range attrs {
		attrs[i] = Attr(string(rune('A' + i)))
	}
	r := New[int64](attrs...)
	for i := 0; i < n; i++ {
		vals := make([]Value, arity)
		for c := range vals {
			vals[c] = Value(rng.Intn(1+n/8)) - Value(n/16)
		}
		r.AppendRow(Row[int64]{Vals: vals, W: rng.Int63()})
	}
	return r
}

func sameRows[W comparable](t *testing.T, got, want *Relation[W]) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("row count %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Rows {
		if len(got.Rows[i].Vals) != len(want.Rows[i].Vals) {
			t.Fatalf("row %d arity %d, want %d", i, len(got.Rows[i].Vals), len(want.Rows[i].Vals))
		}
		for c := range want.Rows[i].Vals {
			if got.Rows[i].Vals[c] != want.Rows[i].Vals[c] {
				t.Fatalf("row %d col %d: %d, want %d", i, c, got.Rows[i].Vals[c], want.Rows[i].Vals[c])
			}
		}
		if got.Rows[i].W != want.Rows[i].W {
			t.Fatalf("row %d weight %v, want %v", i, got.Rows[i].W, want.Rows[i].W)
		}
	}
}

// TestColsRoundTrip: Relation → Cols → Relation is the identity on rows,
// order included, across arities (0 column rows too) and sizes.
func TestColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 7, 500} {
		for _, arity := range []int{1, 2, 4} {
			r := randomRelation(rng, n, arity)
			c := ToCols(r)
			if c.Len() != n || c.Arity() != arity {
				t.Fatalf("Cols shape %d×%d, want %d×%d", c.Len(), c.Arity(), n, arity)
			}
			sameRows(t, c.Relation(), r)
		}
	}
}

// TestColsRoundTripZeroSizeWeights: W = struct{} (zero-size annotations)
// round-trips; the weight column carries no bytes but the length.
func TestColsRoundTripZeroSizeWeights(t *testing.T) {
	r := New[struct{}]("A", "B")
	for i := 0; i < 50; i++ {
		r.Append(struct{}{}, Value(i%5), Value(i%3))
	}
	c := ToCols(r)
	got := c.Relation()
	if got.Len() != 50 {
		t.Fatalf("round-trip lost rows: %d", got.Len())
	}
	for i, row := range got.Rows {
		if row.Vals[0] != Value(i%5) || row.Vals[1] != Value(i%3) {
			t.Fatalf("row %d diverged: %v", i, row.Vals)
		}
	}
}

// TestColsDictionaryDeterministic: dictionaries are first-seen ordered and
// duplicate keys share codes.
func TestColsDictionaryDeterministic(t *testing.T) {
	r := New[int64]("A")
	for _, v := range []Value{7, 3, 7, 9, 3, 7} {
		r.Append(1, v)
	}
	c := ToCols(r)
	wantDict := []Value{7, 3, 9}
	if len(c.Dicts[0]) != len(wantDict) {
		t.Fatalf("dictionary %v, want %v", c.Dicts[0], wantDict)
	}
	for i, v := range wantDict {
		if c.Dicts[0][i] != v {
			t.Fatalf("dictionary %v, want %v (first-seen order)", c.Dicts[0], wantDict)
		}
	}
	wantCodes := []uint32{0, 1, 0, 2, 1, 0}
	for i, code := range wantCodes {
		if c.Codes[0][i] != code {
			t.Fatalf("codes %v, want %v", c.Codes[0], wantCodes)
		}
	}
	// Append through the incremental path agrees with the bulk path.
	c.Append(5, 3)
	if c.Codes[0][6] != 1 || c.Len() != 7 {
		t.Fatalf("Append produced code %d, want 1", c.Codes[0][6])
	}
}

// TestFromColumnsOwned: the ownership-transfer constructor adopts valid
// buffers verbatim and rejects malformed shapes.
func TestFromColumnsOwned(t *testing.T) {
	dicts := [][]Value{{10, 20}, {30}}
	codes := [][]uint32{{0, 1, 0}, {0, 0, 0}}
	ws := []int64{1, 2, 3}
	c, err := FromColumnsOwned([]Attr{"A", "B"}, dicts, codes, ws)
	if err != nil {
		t.Fatalf("valid columns rejected: %v", err)
	}
	if &c.Dicts[0][0] != &dicts[0][0] || &c.Ws[0] != &ws[0] {
		t.Fatal("FromColumnsOwned copied instead of adopting")
	}
	r := c.Relation()
	if r.Rows[1].Vals[0] != 20 || r.Rows[2].Vals[1] != 30 {
		t.Fatalf("adopted columns decode wrong: %v", r.Rows)
	}

	if _, err := FromColumnsOwned([]Attr{"A"}, dicts, codes, ws); err == nil {
		t.Fatal("accepted column count ≠ arity")
	}
	if _, err := FromColumnsOwned([]Attr{"A", "B"}, dicts, [][]uint32{{0}, {0, 0, 0}}, ws); err == nil {
		t.Fatal("accepted ragged code columns")
	}
	if _, err := FromColumnsOwned([]Attr{"A", "B"}, dicts, [][]uint32{{0, 1, 9}, {0, 0, 0}}, ws); err == nil {
		t.Fatal("accepted out-of-range code")
	}
}
