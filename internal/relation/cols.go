package relation

import (
	"fmt"
)

// cols.go is the columnar (structure-of-arrays) representation of a
// relation: per-attribute value columns, dictionary-encoded, plus a dense
// weight column. The row representation stays the working form of the
// per-server operators (local joins index rows); Cols is the storage and
// transfer form — loaders can build instances column-wise with ownership
// transfer, the wire codec ships columns instead of row-memory snapshots
// (see colwire.go), and dictionary encoding collapses the repeated key
// values join workloads are full of to one uint32 code per cell.
//
// Layout. Column c of row i holds Dicts[c][Codes[c][i]]; Ws[i] is the
// row's annotation. Dictionaries are first-seen ordered, which makes the
// encoding deterministic: two equal relations (same rows, same order)
// have bit-identical Cols. Conversion is lossless in both directions and
// preserves row order, so Relation → Cols → Relation round-trips exactly.

// Cols is a columnar relation: dictionary-encoded value columns and a
// weight column. The zero value is not usable; construct with ToCols,
// NewCols, or FromColumnsOwned.
type Cols[W any] struct {
	schema []Attr
	col    map[Attr]int

	// Dicts[c] is column c's dictionary in first-seen order; Codes[c][i]
	// indexes into it. len(Codes[c]) == Len() for every column; Ws has
	// the same length. Mutate only through Append, or rebuild with
	// FromColumnsOwned.
	Dicts [][]Value
	Codes [][]uint32
	Ws    []W

	// dict maps values to codes per column, lazily maintained by Append.
	dict []map[Value]uint32
}

// NewCols returns an empty columnar relation with the given schema.
func NewCols[W any](schema ...Attr) *Cols[W] {
	col := make(map[Attr]int, len(schema))
	for i, a := range schema {
		if _, dup := col[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a))
		}
		col[a] = i
	}
	return &Cols[W]{
		schema: append([]Attr(nil), schema...),
		col:    col,
		Dicts:  make([][]Value, len(schema)),
		Codes:  make([][]uint32, len(schema)),
		dict:   make([]map[Value]uint32, len(schema)),
	}
}

// Schema returns the attribute list (do not mutate).
func (c *Cols[W]) Schema() []Attr { return c.schema }

// Arity returns the number of attributes.
func (c *Cols[W]) Arity() int { return len(c.schema) }

// Len returns the number of rows.
func (c *Cols[W]) Len() int { return len(c.Ws) }

// Col returns the column index of attribute a, or -1 if absent.
func (c *Cols[W]) Col(a Attr) int {
	i, ok := c.col[a]
	if !ok {
		return -1
	}
	return i
}

// Value returns the value of column col in row i.
func (c *Cols[W]) Value(i, col int) Value {
	return c.Dicts[col][c.Codes[col][i]]
}

// Append adds a row. vals must match the schema arity.
func (c *Cols[W]) Append(w W, vals ...Value) {
	if len(vals) != len(c.schema) {
		panic(fmt.Sprintf("relation: row arity %d does not match schema %v", len(vals), c.schema))
	}
	for ci, v := range vals {
		if c.dict[ci] == nil {
			c.dict[ci] = make(map[Value]uint32, 16)
			for code, dv := range c.Dicts[ci] {
				c.dict[ci][dv] = uint32(code)
			}
		}
		code, ok := c.dict[ci][v]
		if !ok {
			code = uint32(len(c.Dicts[ci]))
			c.Dicts[ci] = append(c.Dicts[ci], v)
			c.dict[ci][v] = code
		}
		c.Codes[ci] = append(c.Codes[ci], code)
	}
	c.Ws = append(c.Ws, w)
}

// ToCols converts r to columnar form. Row order is preserved and
// dictionaries are first-seen ordered, so the result is a deterministic
// function of r. r is not modified.
func ToCols[W any](r *Relation[W]) *Cols[W] {
	c := NewCols[W](r.schema...)
	arity := len(r.schema)
	for ci := 0; ci < arity; ci++ {
		c.Codes[ci] = make([]uint32, 0, len(r.Rows))
		c.dict[ci] = make(map[Value]uint32, 64)
	}
	c.Ws = make([]W, 0, len(r.Rows))
	for _, row := range r.Rows {
		for ci := 0; ci < arity; ci++ {
			v := row.Vals[ci]
			code, ok := c.dict[ci][v]
			if !ok {
				code = uint32(len(c.Dicts[ci]))
				c.Dicts[ci] = append(c.Dicts[ci], v)
				c.dict[ci][v] = code
			}
			c.Codes[ci] = append(c.Codes[ci], code)
		}
		c.Ws = append(c.Ws, row.W)
	}
	return c
}

// Relation materializes the row form: rows in column order i, all value
// vectors carved from one backing buffer (one allocation for all Vals).
// The weight slice is shared with c — callers that keep using c must not
// mutate returned annotations in place.
func (c *Cols[W]) Relation() *Relation[W] {
	r := New[W](c.schema...)
	n := c.Len()
	if n == 0 {
		return r
	}
	arity := len(c.schema)
	backing := make([]Value, n*arity)
	r.Rows = make([]Row[W], n)
	for i := 0; i < n; i++ {
		vals := backing[i*arity : (i+1)*arity : (i+1)*arity]
		for ci := 0; ci < arity; ci++ {
			vals[ci] = c.Dicts[ci][c.Codes[ci][i]]
		}
		r.Rows[i] = Row[W]{Vals: vals, W: c.Ws[i]}
	}
	return r
}

// FromColumnsOwned constructs a Cols directly from prebuilt columns with
// ownership transfer: the dictionary, code and weight slices are adopted,
// not copied — the caller must not reuse them. This is the loader-facing
// constructor: a columnar data source hands its buffers over without a
// row-form detour. Shapes are validated (per-column lengths equal to
// len(ws), codes within the dictionary) so a malformed source fails here
// rather than as a corrupt relation later.
func FromColumnsOwned[W any](schema []Attr, dicts [][]Value, codes [][]uint32, ws []W) (*Cols[W], error) {
	if len(dicts) != len(schema) || len(codes) != len(schema) {
		return nil, fmt.Errorf("relation: %d dictionaries and %d code columns for %d attributes",
			len(dicts), len(codes), len(schema))
	}
	c := NewCols[W](schema...)
	for ci := range schema {
		if len(codes[ci]) != len(ws) {
			return nil, fmt.Errorf("relation: column %q has %d codes for %d rows",
				schema[ci], len(codes[ci]), len(ws))
		}
		limit := uint32(len(dicts[ci]))
		for i, code := range codes[ci] {
			if code >= limit {
				return nil, fmt.Errorf("relation: column %q row %d: code %d out of dictionary range [0,%d)",
					schema[ci], i, code, limit)
			}
		}
	}
	c.Dicts = dicts
	c.Codes = codes
	c.Ws = ws
	return c, nil
}
