// Package relation implements annotated relations and the sequential
// relational algebra over them: natural join, semijoin, selection, and
// projection with ⊕-aggregation.
//
// Two distinct consumers share this package. First, every simulated MPC
// server uses it for its local computation (the MPC model allows arbitrary
// local work; only communication is metered). Second, the reference engine
// in internal/refengine composes these operators sequentially to produce
// ground-truth answers for tests.
//
// A relation is a multiset of rows over a fixed schema of named attributes;
// each row carries a semiring annotation. Operators never inspect
// annotations beyond applying ⊕ and ⊗, as required by the semiring MPC
// model the paper's lower bounds are proved in.
package relation

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"mpcjoin/internal/semiring"
)

// Attr names an attribute (a vertex of the query hypergraph).
type Attr string

// Value is a domain value. All attribute domains are identified with int64;
// workloads map their native domains onto it.
type Value int64

// Row is one tuple: a value for every schema attribute, plus an annotation.
type Row[W any] struct {
	Vals []Value
	W    W
}

// Relation is a multiset of annotated rows over a schema. The zero value is
// not usable; construct with New.
type Relation[W any] struct {
	schema []Attr
	col    map[Attr]int
	Rows   []Row[W]
}

// New returns an empty relation with the given schema. Attribute names must
// be distinct.
func New[W any](schema ...Attr) *Relation[W] {
	col := make(map[Attr]int, len(schema))
	for i, a := range schema {
		if _, dup := col[a]; dup {
			panic(fmt.Sprintf("relation: duplicate attribute %q in schema", a))
		}
		col[a] = i
	}
	return &Relation[W]{schema: append([]Attr(nil), schema...), col: col}
}

// Schema returns the attribute list (do not mutate).
func (r *Relation[W]) Schema() []Attr { return r.schema }

// Arity returns the number of attributes.
func (r *Relation[W]) Arity() int { return len(r.schema) }

// Len returns the number of rows.
func (r *Relation[W]) Len() int { return len(r.Rows) }

// Col returns the column index of attribute a, or -1 if absent.
func (r *Relation[W]) Col(a Attr) int {
	i, ok := r.col[a]
	if !ok {
		return -1
	}
	return i
}

// Has reports whether the schema contains a.
func (r *Relation[W]) Has(a Attr) bool { _, ok := r.col[a]; return ok }

// Append adds a row. vals must match the schema arity.
func (r *Relation[W]) Append(w W, vals ...Value) {
	if len(vals) != len(r.schema) {
		panic(fmt.Sprintf("relation: row arity %d does not match schema %v", len(vals), r.schema))
	}
	r.Rows = append(r.Rows, Row[W]{Vals: append([]Value(nil), vals...), W: w})
}

// AppendRow adds a row without copying vals; the caller must not reuse the
// slice. Arity is still checked.
func (r *Relation[W]) AppendRow(row Row[W]) {
	if len(row.Vals) != len(r.schema) {
		panic(fmt.Sprintf("relation: row arity %d does not match schema %v", len(row.Vals), r.schema))
	}
	r.Rows = append(r.Rows, row)
}

// Clone returns a deep copy (annotations are copied by value).
func (r *Relation[W]) Clone() *Relation[W] {
	out := New[W](r.schema...)
	out.Rows = make([]Row[W], len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W}
	}
	return out
}

// Empty returns an empty relation with the same schema.
func (r *Relation[W]) Empty() *Relation[W] { return New[W](r.schema...) }

// String renders a small relation for debugging and test failure messages.
func (r *Relation[W]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v {", r.schema)
	for i, row := range r.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v:%v", row.Vals, row.W)
	}
	b.WriteString("}")
	return b.String()
}

// ---------------------------------------------------------------------------
// Keys
// ---------------------------------------------------------------------------

// EncodeKey encodes the projection of vals onto the column indices idx as
// a comparable string (8 little-endian bytes per value), usable as a sort
// or grouping key. The encoding flips the sign bit so lexicographic string
// order equals lexicographic numeric order on the value vectors.
func EncodeKey(vals []Value, idx []int) string {
	// Keys of up to four columns (all of the paper's query classes) are
	// assembled in a stack buffer; only the returned string is heap-allocated.
	var stack [32]byte
	out := stack[:0]
	if 8*len(idx) > len(stack) {
		out = make([]byte, 0, 8*len(idx))
	}
	for _, i := range idx {
		v := uint64(vals[i]) ^ (1 << 63) // order-preserving for signed values
		out = append(out,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(out)
}

// DecodeKey inverts EncodeKey, recovering the projected value vector.
func DecodeKey(k string) []Value {
	if len(k)%8 != 0 {
		panic("relation: DecodeKey on malformed key")
	}
	out := make([]Value, len(k)/8)
	for i := range out {
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(k[i*8+j])
		}
		out[i] = Value(v ^ (1 << 63))
	}
	return out
}

// key encodes the projection of vals onto the column indices idx as a
// comparable string (8 little-endian bytes per value).
func key(vals []Value, idx []int) string {
	var stack [32]byte // ≤ 4 columns encode without a heap buffer
	out := stack[:0]
	if 8*len(idx) > len(stack) {
		out = make([]byte, 0, 8*len(idx))
	}
	for _, i := range idx {
		v := uint64(vals[i])
		out = append(out,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(out)
}

// cols maps attribute names to column indices in r, panicking on absences.
func (r *Relation[W]) cols(attrs []Attr) []int {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		c := r.Col(a)
		if c < 0 {
			panic(fmt.Sprintf("relation: attribute %q not in schema %v", a, r.schema))
		}
		idx[i] = c
	}
	return idx
}

// Shared returns the attributes common to r and s, in r's schema order.
func Shared[W any](r, s *Relation[W]) []Attr {
	var out []Attr
	for _, a := range r.schema {
		if s.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

// Join computes the natural join r ⋈ s. The output schema is r's attributes
// followed by s's non-shared attributes; each output annotation is
// w(t_r) ⊗ w(t_s).
func Join[W any](sr semiring.Semiring[W], r, s *Relation[W]) *Relation[W] {
	shared := Shared(r, s)
	rIdx := r.cols(shared)
	sIdx := s.cols(shared)

	var extra []Attr
	var extraIdx []int
	for i, a := range s.schema {
		if !r.Has(a) {
			extra = append(extra, a)
			extraIdx = append(extraIdx, i)
		}
	}
	out := New[W](append(append([]Attr(nil), r.schema...), extra...)...)

	// Build on the smaller side to bound the hash table.
	if len(r.Rows) <= len(s.Rows) {
		ht := make(map[string][]int, len(r.Rows))
		for i, row := range r.Rows {
			k := key(row.Vals, rIdx)
			ht[k] = append(ht[k], i)
		}
		for _, srow := range s.Rows {
			for _, i := range ht[key(srow.Vals, sIdx)] {
				rrow := r.Rows[i]
				vals := make([]Value, 0, len(out.schema))
				vals = append(vals, rrow.Vals...)
				for _, c := range extraIdx {
					vals = append(vals, srow.Vals[c])
				}
				out.Rows = append(out.Rows, Row[W]{Vals: vals, W: sr.Mul(rrow.W, srow.W)})
			}
		}
	} else {
		ht := make(map[string][]int, len(s.Rows))
		for i, row := range s.Rows {
			k := key(row.Vals, sIdx)
			ht[k] = append(ht[k], i)
		}
		for _, rrow := range r.Rows {
			for _, i := range ht[key(rrow.Vals, rIdx)] {
				srow := s.Rows[i]
				vals := make([]Value, 0, len(out.schema))
				vals = append(vals, rrow.Vals...)
				for _, c := range extraIdx {
					vals = append(vals, srow.Vals[c])
				}
				out.Rows = append(out.Rows, Row[W]{Vals: vals, W: sr.Mul(rrow.W, srow.W)})
			}
		}
	}
	return out
}

// Semijoin returns the rows of r that join with at least one row of s on
// their shared attributes (r ⋉ s). Annotations pass through unchanged.
func Semijoin[W any](r, s *Relation[W]) *Relation[W] {
	shared := Shared(r, s)
	if len(shared) == 0 {
		// No shared attributes: r ⋉ s is r if s nonempty, else empty.
		if s.Len() == 0 {
			return r.Empty()
		}
		return r.Clone()
	}
	rIdx := r.cols(shared)
	sIdx := s.cols(shared)
	seen := make(map[string]struct{}, len(s.Rows))
	for _, row := range s.Rows {
		seen[key(row.Vals, sIdx)] = struct{}{}
	}
	out := r.Empty()
	for _, row := range r.Rows {
		if _, ok := seen[key(row.Vals, rIdx)]; ok {
			out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
		}
	}
	return out
}

// ProjectAgg computes π̂_attrs r: group rows by the projection onto attrs and
// ⊕-combine the annotations of each group. The output has one row per
// distinct key, in first-seen order.
func ProjectAgg[W any](sr semiring.Semiring[W], r *Relation[W], attrs ...Attr) *Relation[W] {
	idx := r.cols(attrs)
	out := New[W](attrs...)
	pos := make(map[string]int, len(r.Rows))
	for _, row := range r.Rows {
		k := key(row.Vals, idx)
		if at, ok := pos[k]; ok {
			out.Rows[at].W = sr.Add(out.Rows[at].W, row.W)
			continue
		}
		vals := make([]Value, len(idx))
		for i, c := range idx {
			vals[i] = row.Vals[c]
		}
		pos[k] = len(out.Rows)
		out.Rows = append(out.Rows, Row[W]{Vals: vals, W: row.W})
	}
	return out
}

// Compact ⊕-merges duplicate rows in place semantics (returns a new
// relation with one row per distinct tuple). It is ProjectAgg onto the full
// schema.
func Compact[W any](sr semiring.Semiring[W], r *Relation[W]) *Relation[W] {
	return ProjectAgg(sr, r, r.schema...)
}

// SelectEq returns the rows of r with value v in attribute a.
func SelectEq[W any](r *Relation[W], a Attr, v Value) *Relation[W] {
	c := r.Col(a)
	if c < 0 {
		panic(fmt.Sprintf("relation: attribute %q not in schema %v", a, r.schema))
	}
	out := r.Empty()
	for _, row := range r.Rows {
		if row.Vals[c] == v {
			out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
		}
	}
	return out
}

// SelectIn returns the rows of r whose value in attribute a belongs to set.
func SelectIn[W any](r *Relation[W], a Attr, set map[Value]struct{}) *Relation[W] {
	c := r.Col(a)
	if c < 0 {
		panic(fmt.Sprintf("relation: attribute %q not in schema %v", a, r.schema))
	}
	out := r.Empty()
	for _, row := range r.Rows {
		if _, ok := set[row.Vals[c]]; ok {
			out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
		}
	}
	return out
}

// Select returns the rows of r satisfying pred.
func Select[W any](r *Relation[W], pred func(Row[W]) bool) *Relation[W] {
	out := r.Empty()
	for _, row := range r.Rows {
		if pred(row) {
			out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
		}
	}
	return out
}

// UnionAgg returns the ⊕-union of relations with identical schemas:
// duplicate tuples across inputs are merged with ⊕.
func UnionAgg[W any](sr semiring.Semiring[W], rs ...*Relation[W]) *Relation[W] {
	if len(rs) == 0 {
		panic("relation: UnionAgg needs at least one input")
	}
	out := rs[0].Clone()
	for _, r := range rs[1:] {
		if !sameSchema(out.schema, r.schema) {
			panic(fmt.Sprintf("relation: UnionAgg schema mismatch %v vs %v", out.schema, r.schema))
		}
		for _, row := range r.Rows {
			out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
		}
	}
	return Compact(sr, out)
}

func sameSchema(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rename returns a copy of r with attribute from renamed to to.
func Rename[W any](r *Relation[W], from, to Attr) *Relation[W] {
	schema := make([]Attr, len(r.schema))
	for i, a := range r.schema {
		if a == from {
			schema[i] = to
		} else {
			schema[i] = a
		}
	}
	out := New[W](schema...)
	for _, row := range r.Rows {
		out.AppendRow(Row[W]{Vals: append([]Value(nil), row.Vals...), W: row.W})
	}
	return out
}

// Distinct returns the distinct values of attribute a in r.
func Distinct[W any](r *Relation[W], a Attr) []Value {
	c := r.Col(a)
	if c < 0 {
		panic(fmt.Sprintf("relation: attribute %q not in schema %v", a, r.schema))
	}
	seen := make(map[Value]struct{})
	var out []Value
	for _, row := range r.Rows {
		v := row.Vals[c]
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// Degrees returns, for each distinct value of attribute a, the number of
// rows of r carrying it.
func Degrees[W any](r *Relation[W], a Attr) map[Value]int {
	c := r.Col(a)
	if c < 0 {
		panic(fmt.Sprintf("relation: attribute %q not in schema %v", a, r.schema))
	}
	deg := make(map[Value]int)
	for _, row := range r.Rows {
		deg[row.Vals[c]]++
	}
	return deg
}

// ---------------------------------------------------------------------------
// Canonicalization and comparison (test support)
// ---------------------------------------------------------------------------

// SortRows orders rows lexicographically by value vector, in place.
func (r *Relation[W]) SortRows() {
	slices.SortFunc(r.Rows, func(x, y Row[W]) int {
		a, b := x.Vals, y.Vals
		for k := range a {
			if a[k] != b[k] {
				return cmp.Compare(a[k], b[k])
			}
		}
		return 0
	})
}

// Reorder returns a copy of r with columns permuted to the given schema,
// which must contain exactly r's attributes.
func Reorder[W any](r *Relation[W], schema []Attr) *Relation[W] {
	if len(schema) != len(r.schema) {
		panic(fmt.Sprintf("relation: Reorder schema %v incompatible with %v", schema, r.schema))
	}
	idx := r.cols(schema)
	out := New[W](schema...)
	for _, row := range r.Rows {
		vals := make([]Value, len(idx))
		for i, c := range idx {
			vals[i] = row.Vals[c]
		}
		out.AppendRow(Row[W]{Vals: vals, W: row.W})
	}
	return out
}

// Equal reports whether r and s denote the same annotated relation: same
// attribute set (order-insensitive), same distinct tuples, and ⊕-aggregated
// annotations equal under eq. Inputs are not modified.
func Equal[W any](sr semiring.Semiring[W], eq func(a, b W) bool, r, s *Relation[W]) bool {
	if len(r.schema) != len(s.schema) {
		return false
	}
	for _, a := range r.schema {
		if !s.Has(a) {
			return false
		}
	}
	rc := Compact(sr, r)
	sc := Compact(sr, Reorder(s, r.schema))
	if rc.Len() != sc.Len() {
		return false
	}
	rc.SortRows()
	sc.SortRows()
	for i := range rc.Rows {
		for k := range rc.Rows[i].Vals {
			if rc.Rows[i].Vals[k] != sc.Rows[i].Vals[k] {
				return false
			}
		}
		if !eq(rc.Rows[i].W, sc.Rows[i].W) {
			return false
		}
	}
	return true
}
