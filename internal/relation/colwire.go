package relation

import (
	"encoding/binary"
	"fmt"
	"unsafe"
)

// colwire.go is the structural columnar payload codec for wire exchanges
// of rows. The simulator's default wire payload is a raw memory snapshot
// of the element slice (see internal/mpc's raw element codec): correct,
// one memcpy, but process-bound — a Row's bytes are a slice header whose
// pointer only means something in the encoding process. This codec ships
// the row *contents* as columns instead: per attribute one dictionary (in
// first-seen order) plus one uint32 code per row — or the plain values
// when a message's column has few repeats — then the weight column. That
// is both smaller on the wire for the key-repetitive messages join
// workloads exchange, and the carrier a future cross-process data plane
// needs, since no pointers cross.
//
// Weight bytes are still a raw memory copy of each W: the codec's
// structural guarantee covers the relational payload (values), while
// annotations keep the in-process shallow-copy semantics of the raw codec
// — including its pinning obligation (the encoder's originals must stay
// reachable until decode; mpc's exchangeWire KeepAlives them). A W that
// itself contains pointers is exactly as portable as it was before.
//
// Wire format of one message of n rows (all integers little-endian):
//
//	u8  mode               0 = columnar (uniform arity), 1 = ragged rows
//	mode 0:
//	  u32 arity
//	  per column:
//	    u32 dictLen        plainMarker = no dictionary, values follow
//	    dictLen × u64      dictionary values (first-seen order), or
//	                       n × u64 plain values when plainMarker
//	    n × u32            codes (only when dictLen != plainMarker)
//	  n × sizeof(W)        weight bytes
//	mode 1:
//	  per row: u32 arity, arity × u64 values
//	  n × sizeof(W)        weight bytes
//
// Mode 1 exists so the codec never fails: messages mixing arities (which
// the engines do not produce, but the codec must not corrupt) fall back
// to self-describing rows.
//
// Decoding is strict — every length is bounds-checked and trailing bytes
// are an error — and allocation-lean: all value vectors of a message are
// carved from one backing buffer, mirroring the outbox builds.

const plainMarker = ^uint32(0)

// AppendRowColumns appends the columnar encoding of rows to dst and
// returns the extended buffer. The encoding is deterministic: equal row
// sequences encode to equal bytes.
func AppendRowColumns[W any](dst []byte, rows []Row[W]) []byte {
	n := len(rows)
	uniform := true
	arity := 0
	if n > 0 {
		arity = len(rows[0].Vals)
		for _, r := range rows[1:] {
			if len(r.Vals) != arity {
				uniform = false
				break
			}
		}
	}
	if !uniform {
		dst = append(dst, 1)
		for _, r := range rows {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Vals)))
			for _, v := range r.Vals {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
			}
		}
		return appendWeightBytes(dst, rows)
	}

	dst = append(dst, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(arity))
	for c := 0; c < arity; c++ {
		// First-seen dictionary for the column; fall back to plain values
		// when the message has too few repeats for codes to pay off
		// (dictionary + codes beat plain u64s only below ~n/2 distinct).
		dict := make(map[Value]uint32, n)
		order := make([]Value, 0, n)
		codes := make([]uint32, n)
		for i, r := range rows {
			v := r.Vals[c]
			code, ok := dict[v]
			if !ok {
				code = uint32(len(order))
				dict[v] = code
				order = append(order, v)
			}
			codes[i] = code
		}
		if len(order) > n/2 {
			dst = binary.LittleEndian.AppendUint32(dst, plainMarker)
			for _, r := range rows {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Vals[c]))
			}
			continue
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(order)))
		for _, v := range order {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
		}
		for _, code := range codes {
			dst = binary.LittleEndian.AppendUint32(dst, code)
		}
	}
	return appendWeightBytes(dst, rows)
}

// DecodeRowColumns decodes units rows from the front of payload onto dst,
// returning the extended slice and the unconsumed remainder. All value
// vectors are carved from one backing allocation.
func DecodeRowColumns[W any](dst []Row[W], units int, payload []byte) ([]Row[W], []byte, error) {
	if units < 0 {
		return dst, nil, fmt.Errorf("negative unit count %d", units)
	}
	p := payload
	take := func(k int) ([]byte, error) {
		if len(p) < k {
			return nil, fmt.Errorf("payload truncated: need %d bytes, have %d", k, len(p))
		}
		b := p[:k]
		p = p[k:]
		return b, nil
	}
	mode, err := take(1)
	if err != nil {
		return dst, nil, err
	}

	at := len(dst)
	dst = append(dst, make([]Row[W], units)...)
	out := dst[at:]

	switch mode[0] {
	case 0:
		b, err := take(4)
		if err != nil {
			return dst, nil, err
		}
		arity := int(binary.LittleEndian.Uint32(b))
		if arity > len(p) { // cheap sanity bound before allocating
			return dst, nil, fmt.Errorf("arity %d exceeds payload", arity)
		}
		var backing []Value
		if arity > 0 && units > 0 {
			backing = make([]Value, units*arity)
			for i := range out {
				out[i].Vals = backing[i*arity : (i+1)*arity : (i+1)*arity]
			}
		}
		for c := 0; c < arity; c++ {
			b, err := take(4)
			if err != nil {
				return dst, nil, err
			}
			dictLen := binary.LittleEndian.Uint32(b)
			if dictLen == plainMarker {
				vals, err := take(8 * units)
				if err != nil {
					return dst, nil, err
				}
				for i := 0; i < units; i++ {
					out[i].Vals[c] = Value(binary.LittleEndian.Uint64(vals[8*i:]))
				}
				continue
			}
			if int(dictLen) > units {
				return dst, nil, fmt.Errorf("column %d dictionary of %d entries for %d rows", c, dictLen, units)
			}
			db, err := take(8 * int(dictLen))
			if err != nil {
				return dst, nil, err
			}
			cb, err := take(4 * units)
			if err != nil {
				return dst, nil, err
			}
			for i := 0; i < units; i++ {
				code := binary.LittleEndian.Uint32(cb[4*i:])
				if code >= dictLen {
					return dst, nil, fmt.Errorf("column %d row %d: code %d out of dictionary range [0,%d)", c, i, code, dictLen)
				}
				out[i].Vals[c] = Value(binary.LittleEndian.Uint64(db[8*code:]))
			}
		}
	case 1:
		for i := range out {
			b, err := take(4)
			if err != nil {
				return dst, nil, err
			}
			arity := int(binary.LittleEndian.Uint32(b))
			vb, err := take(8 * arity)
			if err != nil {
				return dst, nil, err
			}
			if arity == 0 {
				continue
			}
			vals := make([]Value, arity)
			for c := range vals {
				vals[c] = Value(binary.LittleEndian.Uint64(vb[8*c:]))
			}
			out[i].Vals = vals
		}
	default:
		return dst, nil, fmt.Errorf("unknown columnar mode %d", mode[0])
	}

	rest, err := decodeWeightBytes(out, p)
	if err != nil {
		return dst, nil, err
	}
	return dst, rest, nil
}

// AppendWireColumns implements the mpc ColumnarWire seam for rows: wire
// messages of Row elements ship columns instead of raw slice-header
// memory. Satisfied structurally — relation does not import mpc.
func (Row[W]) AppendWireColumns(dst []byte, msg []Row[W]) []byte {
	return AppendRowColumns(dst, msg)
}

// DecodeWireColumns is the decoding half of the ColumnarWire seam. The
// whole payload must be consumed.
func (Row[W]) DecodeWireColumns(dst []Row[W], units int, payload []byte) ([]Row[W], error) {
	dec, rest, err := DecodeRowColumns(dst, units, payload)
	if err != nil {
		return dst, err
	}
	if len(rest) != 0 {
		return dst, fmt.Errorf("columnar row payload has %d trailing bytes", len(rest))
	}
	return dec, nil
}

// ---------------------------------------------------------------------------
// Sided row streams
// ---------------------------------------------------------------------------

// AppendSidedRowColumns encodes a message of two-relation tagged rows (the
// routers' sideRow shape: a left/right flag plus a row, with uniform arity
// within each side but not across sides). Format: u32 left count, a
// packed flag bitmap (bit set = left), then the left rows' columnar
// encoding followed by the right rows'. at(i) returns element i.
func AppendSidedRowColumns[W any](dst []byte, n int, at func(i int) (left bool, row Row[W])) []byte {
	var lefts, rights []Row[W]
	for i := 0; i < n; i++ {
		if left, row := at(i); left {
			lefts = append(lefts, row)
		} else {
			rights = append(rights, row)
		}
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(lefts)))
	var acc byte
	for i := 0; i < n; i++ {
		if left, _ := at(i); left {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if n%8 != 0 {
		dst = append(dst, acc)
	}
	dst = AppendRowColumns(dst, lefts)
	return AppendRowColumns(dst, rights)
}

// DecodeSidedRowColumns decodes a sided message of units elements,
// invoking emit once per element in stream order. The whole payload must
// be consumed.
func DecodeSidedRowColumns[W any](units int, payload []byte, emit func(left bool, row Row[W])) error {
	if units < 0 {
		return fmt.Errorf("negative unit count %d", units)
	}
	if len(payload) < 4 {
		return fmt.Errorf("sided payload truncated")
	}
	nLeft := int(binary.LittleEndian.Uint32(payload))
	if nLeft > units {
		return fmt.Errorf("sided payload claims %d left rows of %d", nLeft, units)
	}
	payload = payload[4:]
	bm := (units + 7) / 8
	if len(payload) < bm {
		return fmt.Errorf("sided payload bitmap truncated")
	}
	bitmap := payload[:bm]
	payload = payload[bm:]
	lefts, rest, err := DecodeRowColumns[W](nil, nLeft, payload)
	if err != nil {
		return fmt.Errorf("left rows: %w", err)
	}
	rights, rest, err := DecodeRowColumns[W](nil, units-nLeft, rest)
	if err != nil {
		return fmt.Errorf("right rows: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("sided payload has %d trailing bytes", len(rest))
	}
	li, ri := 0, 0
	for i := 0; i < units; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			if li >= len(lefts) {
				return fmt.Errorf("sided bitmap marks more than %d left rows", nLeft)
			}
			emit(true, lefts[li])
			li++
		} else {
			if ri >= len(rights) {
				return fmt.Errorf("sided bitmap marks more than %d right rows", units-nLeft)
			}
			emit(false, rights[ri])
			ri++
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Weight bytes
// ---------------------------------------------------------------------------

// appendWeightBytes appends the raw memory of every row's annotation.
func appendWeightBytes[W any](dst []byte, rows []Row[W]) []byte {
	var zero W
	sz := int(unsafe.Sizeof(zero))
	if sz == 0 {
		return dst
	}
	for i := range rows {
		dst = append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&rows[i].W)), sz)...)
	}
	return dst
}

// decodeWeightBytes fills the annotations of out from the raw weight
// section at the front of p, returning the remainder.
func decodeWeightBytes[W any](out []Row[W], p []byte) ([]byte, error) {
	var zero W
	sz := int(unsafe.Sizeof(zero))
	if sz == 0 {
		return p, nil
	}
	need := sz * len(out)
	if len(p) < need {
		return nil, fmt.Errorf("weight section truncated: need %d bytes, have %d", need, len(p))
	}
	for i := range out {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[i].W)), sz), p[i*sz:])
	}
	return p[need:], nil
}
