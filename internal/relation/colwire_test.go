package relation

import (
	"math/rand"
	"testing"
)

// colwire_test.go: round-trip and corruption oracles for the columnar wire
// codec. Every encode must decode to bit-identical rows, and every
// truncation or corruption of a valid payload must surface as an error,
// never a panic or silent misdecode.

func roundTripRows[W comparable](t *testing.T, rows []Row[W]) []Row[W] {
	t.Helper()
	payload := AppendRowColumns(nil, rows)
	dec, rest, err := DecodeRowColumns[W](nil, len(rows), payload)
	if err != nil {
		t.Fatalf("decode of valid payload failed: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	if len(dec) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(dec), len(rows))
	}
	for i := range rows {
		if len(dec[i].Vals) != len(rows[i].Vals) {
			t.Fatalf("row %d arity %d, want %d", i, len(dec[i].Vals), len(rows[i].Vals))
		}
		for c := range rows[i].Vals {
			if dec[i].Vals[c] != rows[i].Vals[c] {
				t.Fatalf("row %d col %d: %d, want %d", i, c, dec[i].Vals[c], rows[i].Vals[c])
			}
		}
		if dec[i].W != rows[i].W {
			t.Fatalf("row %d weight %v, want %v", i, dec[i].W, rows[i].W)
		}
	}
	return dec
}

// TestRowColumnsRoundTrip covers the codec's modes: dictionary-heavy
// columns, all-distinct (plain) columns, a mix, empty messages, zero-arity
// rows, and negative values (sign must survive the u64 transit).
func TestRowColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]Row[int64]{
		"empty": nil,
		"one":   {{Vals: []Value{-3, 9}, W: 42}},
		"zeroArity": {
			{Vals: nil, W: 1}, {Vals: nil, W: 2}, {Vals: nil, W: 3},
		},
	}
	dictHeavy := make([]Row[int64], 200)
	for i := range dictHeavy {
		dictHeavy[i] = Row[int64]{Vals: []Value{Value(i % 3), Value(-(i % 5))}, W: rng.Int63()}
	}
	cases["dictHeavy"] = dictHeavy
	plain := make([]Row[int64], 100)
	for i := range plain {
		plain[i] = Row[int64]{Vals: []Value{Value(i) - 50, Value(rng.Int63())}, W: int64(i)}
	}
	cases["allDistinct"] = plain
	mixed := make([]Row[int64], 64)
	for i := range mixed {
		mixed[i] = Row[int64]{Vals: []Value{Value(i % 2), Value(i)}, W: -int64(i)}
	}
	cases["mixedColumns"] = mixed

	for name, rows := range cases {
		t.Run(name, func(t *testing.T) { roundTripRows(t, rows) })
	}
}

// TestRowColumnsRaggedFallback: mixed arities take mode 1 and still
// round-trip exactly.
func TestRowColumnsRaggedFallback(t *testing.T) {
	rows := []Row[int64]{
		{Vals: []Value{1, 2, 3}, W: 10},
		{Vals: []Value{4}, W: 20},
		{Vals: nil, W: 30},
		{Vals: []Value{5, 6}, W: 40},
	}
	payload := AppendRowColumns(nil, rows)
	if payload[0] != 1 {
		t.Fatalf("ragged message encoded as mode %d, want 1", payload[0])
	}
	roundTripRows(t, rows)
}

// TestRowColumnsZeroSizeWeights: W = struct{} ships no weight section.
func TestRowColumnsZeroSizeWeights(t *testing.T) {
	rows := []Row[struct{}]{
		{Vals: []Value{1, 2}}, {Vals: []Value{1, 3}}, {Vals: []Value{2, 2}},
	}
	roundTripRows(t, rows)
}

// TestRowColumnsDictionaryEngages: a key-repetitive message must actually
// use dictionary encoding and beat the raw snapshot size it replaces.
func TestRowColumnsDictionaryEngages(t *testing.T) {
	rows := make([]Row[int64], 512)
	for i := range rows {
		rows[i] = Row[int64]{Vals: []Value{Value(i % 4), Value(i % 7)}, W: 1}
	}
	payload := AppendRowColumns(nil, rows)
	// mode + arity + 2×(dictLen + dict + codes) + weights
	want := 1 + 4 + (4 + 8*4 + 4*512) + (4 + 8*7 + 4*512) + 8*512
	if len(payload) != want {
		t.Fatalf("dictionary-heavy payload is %d bytes, want %d (dictionaries not engaging?)", len(payload), want)
	}
}

// TestRowColumnsDecodeRejectsCorruption: every strict-prefix truncation of
// valid payloads errors, as do targeted corruptions (bad mode, oversized
// dictionary, out-of-range code, trailing bytes via the wire seam).
func TestRowColumnsDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range [][]Row[int64]{
		{{Vals: []Value{1, 2}, W: 5}, {Vals: []Value{1, 3}, W: 6}, {Vals: []Value{1, 2}, W: 7}},
		func() []Row[int64] {
			rs := make([]Row[int64], 40)
			for i := range rs {
				rs[i] = Row[int64]{Vals: []Value{Value(rng.Int63()), Value(i % 2)}, W: int64(i)}
			}
			return rs
		}(),
		{{Vals: []Value{1, 2, 3}, W: 1}, {Vals: []Value{4}, W: 2}}, // mode 1
	} {
		payload := AppendRowColumns(nil, rows)
		for k := 0; k < len(payload); k++ {
			if _, _, err := DecodeRowColumns[int64](nil, len(rows), payload[:k]); err == nil {
				t.Fatalf("decode of %d-byte prefix of %d-byte payload succeeded", k, len(payload))
			}
		}
	}

	rows := []Row[int64]{{Vals: []Value{1}, W: 5}, {Vals: []Value{1}, W: 6}}
	valid := AppendRowColumns(nil, rows)

	bad := append([]byte(nil), valid...)
	bad[0] = 9
	if _, _, err := DecodeRowColumns[int64](nil, 2, bad); err == nil {
		t.Fatal("accepted unknown mode byte")
	}

	bad = append([]byte(nil), valid...)
	bad[5] = 200 // dictLen for column 0: far larger than the row count
	if _, _, err := DecodeRowColumns[int64](nil, 2, bad); err == nil {
		t.Fatal("accepted dictionary larger than row count")
	}

	// Out-of-range code: dictLen=1, so any nonzero code byte is invalid.
	// Layout: mode(1) arity(4) dictLen(4) dict(8) codes(2×4) weights.
	bad = append([]byte(nil), valid...)
	bad[1+4+4+8] = 7
	if _, _, err := DecodeRowColumns[int64](nil, 2, bad); err == nil {
		t.Fatal("accepted out-of-range dictionary code")
	}

	// Trailing bytes are an error at the wire seam.
	var zero Row[int64]
	if _, err := zero.DecodeWireColumns(nil, 2, append(append([]byte(nil), valid...), 0xEE)); err == nil {
		t.Fatal("wire seam accepted trailing bytes")
	}
	if dec, err := zero.DecodeWireColumns(nil, 2, valid); err != nil || len(dec) != 2 {
		t.Fatalf("wire seam rejected valid payload: %v", err)
	}
}

// TestSidedRowColumnsRoundTrip: the routers' sided stream (left/right flag
// + row) round-trips in element order, including sides of differing arity
// — the shape that forces per-side column groups.
func TestSidedRowColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	type sided struct {
		left bool
		row  Row[int64]
	}
	for _, n := range []int{0, 1, 9, 200} {
		els := make([]sided, n)
		for i := range els {
			if rng.Intn(2) == 0 {
				els[i] = sided{left: true, row: Row[int64]{Vals: []Value{Value(i % 4), 7, Value(-i)}, W: int64(i)}}
			} else {
				els[i] = sided{row: Row[int64]{Vals: []Value{Value(i % 3)}, W: -int64(i)}}
			}
		}
		payload := AppendSidedRowColumns(nil, n, func(i int) (bool, Row[int64]) {
			return els[i].left, els[i].row
		})
		var got []sided
		err := DecodeSidedRowColumns(n, payload, func(left bool, row Row[int64]) {
			got = append(got, sided{left: left, row: row})
		})
		if err != nil {
			t.Fatalf("n=%d: decode failed: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d elements", n, len(got))
		}
		for i := range els {
			if got[i].left != els[i].left || got[i].row.W != els[i].row.W ||
				len(got[i].row.Vals) != len(els[i].row.Vals) {
				t.Fatalf("element %d diverged: %+v want %+v", i, got[i], els[i])
			}
			for c := range els[i].row.Vals {
				if got[i].row.Vals[c] != els[i].row.Vals[c] {
					t.Fatalf("element %d col %d: %d want %d", i, c, got[i].row.Vals[c], els[i].row.Vals[c])
				}
			}
		}
		// Truncations of the sided stream also error.
		for k := 0; k < len(payload); k++ {
			if err := DecodeSidedRowColumns(n, payload[:k], func(bool, Row[int64]) {}); err == nil {
				t.Fatalf("n=%d: decode of %d-byte prefix succeeded", n, k)
			}
		}
	}
}
