package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func mk(t *testing.T, schema []Attr, rows ...[]Value) *Relation[int64] {
	t.Helper()
	r := New[int64](schema...)
	for _, vals := range rows {
		r.Append(1, vals...)
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	r := New[int64]("A", "B")
	if r.Arity() != 2 || r.Col("A") != 0 || r.Col("B") != 1 || r.Col("C") != -1 {
		t.Fatalf("schema accessors wrong: %v", r.Schema())
	}
	if !r.Has("A") || r.Has("Z") {
		t.Fatal("Has wrong")
	}
	r.Append(7, 1, 2)
	if r.Len() != 1 || r.Rows[0].W != 7 {
		t.Fatalf("Append failed: %v", r)
	}
}

func TestDuplicateSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate attribute")
		}
	}()
	New[int64]("A", "A")
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	r := New[int64]("A", "B")
	r.Append(1, 5)
}

func TestJoinBasic(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(2, 1, 10)
	r.Append(3, 2, 10)
	r.Append(5, 1, 11)
	s := New[int64]("B", "C")
	s.Append(7, 10, 100)
	s.Append(11, 10, 101)
	s.Append(13, 12, 102)

	j := Join[int64](intSR, r, s)
	want := New[int64]("A", "B", "C")
	want.Append(14, 1, 10, 100)
	want.Append(22, 1, 10, 101)
	want.Append(21, 2, 10, 100)
	want.Append(33, 2, 10, 101)
	if !Equal[int64](intSR, intEq, j, want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
}

func TestJoinNoSharedIsCrossProduct(t *testing.T) {
	r := mk(t, []Attr{"A"}, []Value{1}, []Value{2})
	s := mk(t, []Attr{"B"}, []Value{10}, []Value{20}, []Value{30})
	j := Join[int64](intSR, r, s)
	if j.Len() != 6 {
		t.Fatalf("cross product size = %d, want 6", j.Len())
	}
}

func TestJoinAnnotationsMultiply(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(3, 1, 1)
	s := New[int64]("B", "C")
	s.Append(5, 1, 2)
	j := Join[int64](intSR, r, s)
	if j.Len() != 1 || j.Rows[0].W != 15 {
		t.Fatalf("annotation product wrong: %v", j)
	}
}

func TestSemijoin(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 10)
	r.Append(1, 2, 20)
	r.Append(1, 3, 30)
	s := New[int64]("B", "C")
	s.Append(1, 10, 0)
	s.Append(1, 30, 0)

	got := Semijoin(r, s)
	want := New[int64]("A", "B")
	want.Append(1, 1, 10)
	want.Append(1, 3, 30)
	if !Equal[int64](intSR, intEq, got, want) {
		t.Fatalf("semijoin = %v, want %v", got, want)
	}
}

func TestSemijoinNoShared(t *testing.T) {
	r := mk(t, []Attr{"A"}, []Value{1})
	sEmpty := New[int64]("B")
	if Semijoin(r, sEmpty).Len() != 0 {
		t.Fatal("semijoin with empty unrelated relation must be empty")
	}
	sFull := mk(t, []Attr{"B"}, []Value{9})
	if Semijoin(r, sFull).Len() != 1 {
		t.Fatal("semijoin with nonempty unrelated relation must keep all rows")
	}
}

func TestProjectAgg(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 10)
	r.Append(2, 1, 20)
	r.Append(4, 2, 10)
	got := ProjectAgg[int64](intSR, r, "A")
	want := New[int64]("A")
	want.Append(3, 1)
	want.Append(4, 2)
	if !Equal[int64](intSR, intEq, got, want) {
		t.Fatalf("projectAgg = %v, want %v", got, want)
	}
}

func TestProjectAggEmptyAttrsComputesScalar(t *testing.T) {
	r := New[int64]("A")
	r.Append(3, 1)
	r.Append(4, 2)
	got := ProjectAgg[int64](intSR, r)
	if got.Len() != 1 || got.Rows[0].W != 7 {
		t.Fatalf("scalar aggregate = %v, want single row with 7", got)
	}
}

func TestCompactMergesDuplicates(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 5, 6)
	r.Append(10, 5, 6)
	r.Append(100, 5, 7)
	c := Compact[int64](intSR, r)
	want := New[int64]("A", "B")
	want.Append(11, 5, 6)
	want.Append(100, 5, 7)
	if !Equal[int64](intSR, intEq, c, want) {
		t.Fatalf("compact = %v, want %v", c, want)
	}
}

func TestSelects(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 10)
	r.Append(1, 2, 20)
	r.Append(1, 3, 10)

	if got := SelectEq(r, "B", 10); got.Len() != 2 {
		t.Fatalf("SelectEq = %v", got)
	}
	set := map[Value]struct{}{1: {}, 3: {}}
	if got := SelectIn(r, "A", set); got.Len() != 2 {
		t.Fatalf("SelectIn = %v", got)
	}
	if got := Select(r, func(row Row[int64]) bool { return row.Vals[0]+row.Vals[1] > 20 }); got.Len() != 1 {
		t.Fatalf("Select = %v", got)
	}
}

func TestUnionAgg(t *testing.T) {
	r := New[int64]("A")
	r.Append(1, 5)
	s := New[int64]("A")
	s.Append(2, 5)
	s.Append(3, 6)
	got := UnionAgg[int64](intSR, r, s)
	want := New[int64]("A")
	want.Append(3, 5)
	want.Append(3, 6)
	if !Equal[int64](intSR, intEq, got, want) {
		t.Fatalf("unionAgg = %v, want %v", got, want)
	}
}

func TestRenameAndReorder(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 2)
	rn := Rename(r, "B", "C")
	if !rn.Has("C") || rn.Has("B") {
		t.Fatalf("rename failed: %v", rn.Schema())
	}
	ro := Reorder(r, []Attr{"B", "A"})
	if ro.Rows[0].Vals[0] != 2 || ro.Rows[0].Vals[1] != 1 {
		t.Fatalf("reorder failed: %v", ro)
	}
}

func TestDistinctAndDegrees(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 10)
	r.Append(1, 1, 20)
	r.Append(1, 2, 10)
	if d := Distinct(r, "A"); len(d) != 2 {
		t.Fatalf("distinct = %v", d)
	}
	deg := Degrees(r, "A")
	if deg[1] != 2 || deg[2] != 1 {
		t.Fatalf("degrees = %v", deg)
	}
}

func TestEqualOrderInsensitive(t *testing.T) {
	r := New[int64]("A", "B")
	r.Append(1, 1, 2)
	r.Append(2, 3, 4)
	s := New[int64]("B", "A")
	s.Append(2, 4, 3)
	s.Append(1, 2, 1)
	if !Equal[int64](intSR, intEq, r, s) {
		t.Fatal("Equal must be attribute-order and row-order insensitive")
	}
	s.Append(1, 9, 9)
	if Equal[int64](intSR, intEq, r, s) {
		t.Fatal("Equal must detect extra rows")
	}
}

// Property: join is commutative up to schema reordering and annotation
// equality, for the integer semiring on random instances.
func TestQuickJoinCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, []Attr{"A", "B"}, 30, 8)
		s := randomRel(rng, []Attr{"B", "C"}, 30, 8)
		rs := Join[int64](intSR, r, s)
		sr2 := Join[int64](intSR, s, r)
		return Equal[int64](intSR, intEq, rs, sr2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: π̂_A(r ⋈ s) aggregates to the same totals as brute-force
// enumeration.
func TestQuickProjectAggMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, []Attr{"A", "B"}, 25, 6)
		s := randomRel(rng, []Attr{"B", "C"}, 25, 6)
		got := ProjectAgg[int64](intSR, Join[int64](intSR, r, s), "A", "C")

		// Brute force.
		want := New[int64]("A", "C")
		for _, t1 := range r.Rows {
			for _, t2 := range s.Rows {
				if t1.Vals[1] == t2.Vals[0] {
					want.Append(t1.W*t2.W, t1.Vals[0], t2.Vals[1])
				}
			}
		}
		want = Compact[int64](intSR, want)
		return Equal[int64](intSR, intEq, got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: semijoin is idempotent and a filter: r ⋉ s ⊆ r and
// (r ⋉ s) ⋉ s = r ⋉ s.
func TestQuickSemijoinIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, []Attr{"A", "B"}, 30, 6)
		s := randomRel(rng, []Attr{"B", "C"}, 30, 6)
		once := Semijoin(r, s)
		twice := Semijoin(once, s)
		return once.Len() <= r.Len() && Equal[int64](intSR, intEq, once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomRel(rng *rand.Rand, schema []Attr, n, dom int) *Relation[int64] {
	r := New[int64](schema...)
	for i := 0; i < n; i++ {
		vals := make([]Value, len(schema))
		for j := range vals {
			vals[j] = Value(rng.Intn(dom))
		}
		r.AppendRow(Row[int64]{Vals: vals, W: int64(rng.Intn(5) + 1)})
	}
	return r
}

func FuzzEncodeDecodeKey(f *testing.F) {
	f.Add(int64(0), int64(-5), int64(1<<40))
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		vals := []Value{Value(a), Value(b), Value(c)}
		enc := EncodeKey(vals, []int{0, 1, 2})
		dec := DecodeKey(enc)
		if len(dec) != 3 || dec[0] != vals[0] || dec[1] != vals[1] || dec[2] != vals[2] {
			t.Fatalf("roundtrip failed: %v -> %v", vals, dec)
		}
		// Order preservation on the first column.
		if a < b {
			e1 := EncodeKey([]Value{Value(a)}, []int{0})
			e2 := EncodeKey([]Value{Value(b)}, []int{0})
			if !(e1 < e2) {
				t.Fatalf("order not preserved: %d vs %d", a, b)
			}
		}
	})
}
