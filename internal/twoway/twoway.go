// Package twoway implements the worst-case optimal MPC algorithm for a
// two-way natural join (Beame–Koutris–Suciu; Hu–Tao–Yi), the primitive the
// distributed Yannakakis baseline plugs in (§1.4 of Hu–Yi PODS'20).
//
// Given R and S with join-key degree vectors d_R, d_S, the full join has
// OUT_f = Σ_k d_R(k)·d_S(k) results. The algorithm computes the join in
// O(1) rounds with load O((|R|+|S|)/p + √(OUT_f/p)):
//
//   - keys with d_R, d_S ≤ L are packed whole into groups of total degree
//     O(L) (parallel-packing) and joined locally on one server per group;
//   - a heavy key k is given a ⌈d_R/L⌉ × ⌈d_S/L⌉ grid of servers; its
//     R-tuples are split across grid rows and replicated across columns
//     (and symmetrically for S), so every cell holds O(L) tuples and the
//     cells tile all d_R·d_S output pairs.
//
// The join output is produced in place (each server holds the results its
// tuples generate) and is NOT rebalanced: in the MPC model outputs are
// emitted, not shuffled, and downstream operators (aggregation) pay their
// own shuffle cost — which is exactly how the distributed Yannakakis
// baseline ends up with its O(J/p) term.
package twoway

import (
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	xrt "mpcjoin/internal/runtime"
	"mpcjoin/internal/semiring"
)

// sideRow tags a row with the relation it came from so both inputs travel
// in a single exchange round (loads on shared destinations must add up).
type sideRow[W any] struct {
	left bool
	row  relation.Row[W]
}

// AppendWireColumns implements mpc.ColumnarWire: sideRow exchanges over a
// transport ship as a sided columnar stream (flag bitmap + per-side
// column groups) instead of raw row-header memory.
func (sideRow[W]) AppendWireColumns(dst []byte, msg []sideRow[W]) []byte {
	return relation.AppendSidedRowColumns(dst, len(msg), func(i int) (bool, relation.Row[W]) {
		return msg[i].left, msg[i].row
	})
}

// DecodeWireColumns is the decoding half of the ColumnarWire seam.
func (sideRow[W]) DecodeWireColumns(dst []sideRow[W], units int, payload []byte) ([]sideRow[W], error) {
	err := relation.DecodeSidedRowColumns(units, payload, func(left bool, row relation.Row[W]) {
		dst = append(dst, sideRow[W]{left: left, row: row})
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// keyStat carries per-join-key degrees.
type keyStat struct {
	key    string
	dr, ds int64
}

// gridAssign is a heavy key's server block: servers [offset, offset+ar*bs).
type gridAssign struct {
	key    string
	offset int
	ar, bs int
}

// binAssign is a light key's packed group.
type binAssign struct {
	key string
	bin int
}

// Join computes the full natural join r ⋈ s on their shared attributes,
// annotations ⊗-multiplied. The result spans O(p) virtual servers and is
// left where it is produced. Returns the result, the exact full-join size,
// and the metered cost.
func Join[W any](sr semiring.Semiring[W], r, s dist.Rel[W]) (dist.Rel[W], int64, mpc.Stats) {
	shared := dist.SharedAttrs(r, s)
	if len(shared) == 0 {
		panic("twoway: relations share no attributes")
	}
	p := r.P()
	ex := r.Part.Scope()
	rKey := r.Key(shared...)
	sKey := s.Key(shared...)

	// Degree statistics per side.
	dr, st1 := mpc.CountByKey(r.Part, rKey)
	ds, st2 := mpc.CountByKey(s.Part, sKey)

	// Per-key (d_R, d_S) for keys present on both sides.
	pairs, st3 := mpc.LookupJoin(dr, ds,
		func(kc mpc.KeyCount[string]) string { return kc.Key },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	stats := mpc.Map(mpc.Filter(pairs, func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) bool {
		return pr.Found
	}), func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) keyStat {
		return keyStat{key: pr.X.Key, dr: pr.X.Count, ds: pr.Y.Count}
	})

	// OUT_f = Σ d_R·d_S via a coordinator round.
	outf, st4 := sumInt64(mpc.Map(stats, func(ks keyStat) int64 { return ks.dr * ks.ds }))

	// Load target.
	n := int64(r.N() + s.N())
	load := n / int64(p)
	if l := int64(math.Ceil(math.Sqrt(float64(outf) / float64(p)))); l > load {
		load = l
	}
	if load < 1 {
		load = 1
	}

	// Split stats into heavy and light keys.
	heavy := mpc.Filter(stats, func(ks keyStat) bool { return ks.dr > load || ks.ds > load })
	light := mpc.Filter(stats, func(ks keyStat) bool { return ks.dr <= load && ks.ds <= load })

	// Heavy grid assignment at the coordinator (O(p) heavy keys).
	heavyGathered, st5 := mpc.Gather(heavy, 0)
	var grids []gridAssign
	heavyServers := 0
	for _, ks := range heavyGathered.Shards[0] {
		ar := int((ks.dr + load - 1) / load)
		bs := int((ks.ds + load - 1) / load)
		grids = append(grids, gridAssign{key: ks.key, offset: heavyServers, ar: ar, bs: bs})
		heavyServers += ar * bs
	}
	gridPart := mpc.NewPartIn[gridAssign](ex, p)
	gridPart.Shards[0] = grids
	gridBcast, st6 := mpc.Broadcast(gridPart)

	// Light bin assignment by parallel-packing with capacity 2L (each key
	// weighs d_R + d_S ≤ 2L).
	binned, nBins, st7 := mpc.ParallelPack(light, func(ks keyStat) int64 { return ks.dr + ks.ds }, 2*load)
	binTable := mpc.Map(binned, func(b mpc.Binned[keyStat]) binAssign {
		return binAssign{key: b.X.key, bin: b.Bin}
	})

	// Tell every light tuple its bin via multi-search lookups.
	rBins, st8 := mpc.LookupJoin(r.Part, binTable, rKey, func(b binAssign) string { return b.key })
	sBins, st9 := mpc.LookupJoin(s.Part, binTable, sKey, func(b binAssign) string { return b.key })

	// One exchange routes both relations onto the heavy grids and light
	// bins. Destination space: [0, heavyServers) grids, then bins.
	pDst := heavyServers + nBins
	if pDst == 0 {
		pDst = 1
	}
	out := make([][][]sideRow[W], p)
	gridByKey := make(map[string]gridAssign, len(gridBcast.Shards[0]))
	// Every server sees the same broadcast table; use shard 0's copy for
	// the routing closure (identical content).
	for _, g := range gridBcast.Shards[0] {
		gridByKey[g.key] = g
	}
	// A heavy key's tuples round-robin across its grid rows (columns for
	// the S side) in global arrival order — a counter that, serially, runs
	// across source servers. To build the outboxes concurrently with the
	// exact same assignment, split the counter: count each source's heavy
	// occurrences per key (parallel), prefix-sum the counts across sources
	// in ascending order (serial, touches only per-key totals), then let
	// each source assign from its own base offset (parallel). Every tuple
	// gets precisely the row/column serial execution would give it.
	rCount := make([]map[string]int, p)
	sCount := make([]map[string]int, p)
	ex.ForEachShard(p, func(src int) {
		rc := make(map[string]int)
		for _, pr := range rBins.Shards[src] {
			if k := rKey(pr.X); gridByKey[k].ar > 0 {
				rc[k]++
			}
		}
		sc := make(map[string]int)
		for _, pr := range sBins.Shards[src] {
			if k := sKey(pr.X); gridByKey[k].ar > 0 {
				sc[k]++
			}
		}
		rCount[src], sCount[src] = rc, sc
	})
	rBase := make([]map[string]int, p)
	sBase := make([]map[string]int, p)
	rowRun := make(map[string]int)
	colRun := make(map[string]int)
	for src := 0; src < p; src++ {
		rb := make(map[string]int, len(rCount[src]))
		for k, c := range rCount[src] {
			rb[k] = rowRun[k]
			rowRun[k] += c
		}
		sb := make(map[string]int, len(sCount[src]))
		for k, c := range sCount[src] {
			sb[k] = colRun[k]
			colRun[k] += c
		}
		rBase[src], sBase[src] = rb, sb
	}
	ex.ForEachShardScratch(p, func(src int, scr *xrt.Scratch) {
		rShard := rBins.Shards[src]
		sShard := sBins.Shards[src]
		if len(rShard)+len(sShard) == 0 {
			return
		}
		rowRR := rBase[src] // owned by this source from here on
		colRR := sBase[src]
		// Memoize each tuple's grid placement so the stateful round-robin
		// counters advance exactly once and the counted build's two
		// passes replay identical destinations. An R tuple's replicas are
		// the contiguous cells base..base+n-1 of its grid row; an S
		// tuple's stride down its column: base + i·step for i < n. n = 0
		// encodes a single light-bin destination, n = -1 a dropped tuple
		// (its key is absent from the other side: no join results).
		rMemo := scr.Ints(2 * len(rShard))
		for m, pr := range rShard {
			k := rKey(pr.X)
			if g, isHeavy := gridByKey[k]; isHeavy {
				i := rowRR[k] % g.ar
				rowRR[k]++
				rMemo[2*m] = g.offset + i*g.bs
				rMemo[2*m+1] = g.bs
			} else if pr.Found {
				rMemo[2*m] = heavyServers + pr.Y.bin
				rMemo[2*m+1] = 0
			} else {
				rMemo[2*m+1] = -1
			}
		}
		sMemo := scr.Ints(3 * len(sShard))
		for m, pr := range sShard {
			k := sKey(pr.X)
			if g, isHeavy := gridByKey[k]; isHeavy {
				j := colRR[k] % g.bs
				colRR[k]++
				sMemo[3*m] = g.offset + j
				sMemo[3*m+1] = g.bs
				sMemo[3*m+2] = g.ar
			} else if pr.Found {
				sMemo[3*m] = heavyServers + pr.Y.bin
				sMemo[3*m+2] = 0
			} else {
				sMemo[3*m+2] = -1
			}
		}
		out[src] = mpc.BuildOutbox[sideRow[W]](scr, pDst, "twoway route", func(fill bool, emit func(int, sideRow[W])) {
			for m, pr := range rShard {
				base, n := rMemo[2*m], rMemo[2*m+1]
				switch {
				case n < 0:
				case n == 0:
					emit(base, sideRow[W]{left: true, row: pr.X})
				default:
					for j := 0; j < n; j++ {
						emit(base+j, sideRow[W]{left: true, row: pr.X})
					}
				}
			}
			for m, pr := range sShard {
				base, step, n := sMemo[3*m], sMemo[3*m+1], sMemo[3*m+2]
				switch {
				case n < 0:
				case n == 0:
					emit(base, sideRow[W]{left: false, row: pr.X})
				default:
					for i := 0; i < n; i++ {
						emit(base+i*step, sideRow[W]{left: false, row: pr.X})
					}
				}
			}
		})
	})
	mpc.TraceOp(ex, "twoway.grid")
	routed, st10 := mpc.ExchangeToIn(ex, pDst, out)

	// Local joins.
	outSchema := joinSchema(r.Schema, s.Schema)
	result := mpc.MapShards(routed, func(_ int, shard []sideRow[W]) []relation.Row[W] {
		left := relation.New[W](r.Schema...)
		right := relation.New[W](s.Schema...)
		for _, sr2 := range shard {
			if sr2.left {
				left.AppendRow(sr2.row)
			} else {
				right.AppendRow(sr2.row)
			}
		}
		return relation.Join(sr, left, right).Rows
	})

	st := mpc.Seq(st1, st2, st3, st4, st5, st6, st7, st8, st9, st10)
	return dist.Rel[W]{Schema: outSchema, Part: result}, outf, st
}

// JoinAgg computes π̂_attrs(r ⋈ s): the two-way join followed by the
// distributed ⊕-aggregation onto attrs. This is one Yannakakis fold step;
// its load is O((|r|+|s|)/p + √(OUT_f/p) + J/p) where J = OUT_f is the
// intermediate join size — the aggregation's shuffle of J rows is the
// dominant term, exactly as in the distributed Yannakakis analysis.
func JoinAgg[W any](sr semiring.Semiring[W], r, s dist.Rel[W], attrs ...relation.Attr) (dist.Rel[W], mpc.Stats) {
	joined, _, st := Join(sr, r, s)
	agg, st2 := dist.ProjectAgg(sr, joined, attrs...)
	return agg, mpc.Seq(st, st2)
}

func joinSchema(a, b []relation.Attr) []relation.Attr {
	out := append([]relation.Attr(nil), a...)
	for _, x := range b {
		dup := false
		for _, y := range a {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// sumInt64 sums a distributed set of int64 via the coordinator and returns
// the total (broadcast back so every server knows it).
func sumInt64(pt mpc.Part[int64]) (int64, mpc.Stats) {
	p := pt.P()
	local := mpc.NewPartIn[int64](pt.Scope(), p)
	for s, shard := range pt.Shards {
		var t int64
		for _, x := range shard {
			t += x
		}
		local.Shards[s] = []int64{t}
	}
	g, st1 := mpc.Gather(local, 0)
	var total int64
	for _, x := range g.Shards[0] {
		total += x
	}
	tot := mpc.NewPartIn[int64](pt.Scope(), p)
	tot.Shards[0] = []int64{total}
	_, st2 := mpc.Broadcast(tot)
	return total, mpc.Seq(st1, st2)
}
