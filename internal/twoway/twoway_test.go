package twoway

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomRel(rng *rand.Rand, schema []relation.Attr, n, dom int) *relation.Relation[int64] {
	r := relation.New[int64](schema...)
	for i := 0; i < n; i++ {
		vals := make([]relation.Value, len(schema))
		for j := range vals {
			vals[j] = relation.Value(rng.Intn(dom))
		}
		r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(5) + 1)})
	}
	return r
}

func TestJoinMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(10) + 2
		r := randomRel(rng, []relation.Attr{"A", "B"}, rng.Intn(150)+1, 8)
		s := randomRel(rng, []relation.Attr{"B", "C"}, rng.Intn(150)+1, 8)
		got, outf, _ := Join[int64](intSR, dist.FromRelation(r, p), dist.FromRelation(s, p))
		want := relation.Join[int64](intSR, r, s)
		if int(outf) != want.Len() {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAggMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := rng.Intn(8) + 2
		r := randomRel(rng, []relation.Attr{"A", "B"}, rng.Intn(120)+1, 6)
		s := randomRel(rng, []relation.Attr{"B", "C"}, rng.Intn(120)+1, 6)
		got, _ := JoinAgg[int64](intSR, dist.FromRelation(r, p), dist.FromRelation(s, p), "A", "C")
		want := relation.ProjectAgg[int64](intSR, relation.Join[int64](intSR, r, s), "A", "C")
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinEmptySides(t *testing.T) {
	r := relation.New[int64]("A", "B")
	s := relation.New[int64]("B", "C")
	s.Append(1, 1, 2)
	got, outf, _ := Join[int64](intSR, dist.FromRelation(r, 4), dist.FromRelation(s, 4))
	if got.N() != 0 || outf != 0 {
		t.Fatalf("empty join produced %d rows (outf %d)", got.N(), outf)
	}
}

func TestJoinSingleHotKeyLoad(t *testing.T) {
	// All tuples share one join key: OUT_f = n², so the optimal load is
	// Θ(√(n²/p)) = n/√p, far below the naive n (one server gets everything)
	// and below the output-shuffle bound n²/p for small p.
	const n, p = 2000, 16
	r := relation.New[int64]("A", "B")
	s := relation.New[int64]("B", "C")
	for i := 0; i < n; i++ {
		r.Append(1, relation.Value(i), 0)
		s.Append(1, 0, relation.Value(i))
	}
	got, outf, st := Join[int64](intSR, dist.FromRelation(r, p), dist.FromRelation(s, p))
	if outf != int64(n)*int64(n) {
		t.Fatalf("outf = %d", outf)
	}
	if got.N() != n*n {
		t.Fatalf("result rows = %d", got.N())
	}
	bound := 6 * int(math.Sqrt(float64(n)*float64(n)/float64(p)))
	if st.MaxLoad > bound {
		t.Fatalf("hot-key join load %d exceeds ~6·√(OUT_f/p) = %d", st.MaxLoad, bound)
	}
}

func TestJoinSkewMixture(t *testing.T) {
	// A mix of one heavy key and many light keys must stay correct.
	rng := rand.New(rand.NewSource(9))
	r := relation.New[int64]("A", "B")
	s := relation.New[int64]("B", "C")
	for i := 0; i < 500; i++ {
		r.Append(int64(rng.Intn(3)+1), relation.Value(i), 0) // heavy b=0
		s.Append(int64(rng.Intn(3)+1), 0, relation.Value(i))
	}
	for i := 0; i < 500; i++ {
		b := relation.Value(rng.Intn(200) + 1)
		r.Append(1, relation.Value(i+1000), b)
		s.Append(1, b, relation.Value(i+1000))
	}
	const p = 8
	got, _, _ := Join[int64](intSR, dist.FromRelation(r, p), dist.FromRelation(s, p))
	want := relation.Join[int64](intSR, r, s)
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatal("skew mixture join mismatch")
	}
}

func TestJoinLinearLoadOnLightData(t *testing.T) {
	// Uniform light data: load should be O(N/p).
	rng := rand.New(rand.NewSource(10))
	const n, p = 8000, 16
	r := relation.New[int64]("A", "B")
	s := relation.New[int64]("B", "C")
	for i := 0; i < n; i++ {
		r.Append(1, relation.Value(rng.Intn(n)), relation.Value(rng.Intn(n)))
		s.Append(1, relation.Value(rng.Intn(n)), relation.Value(rng.Intn(n)))
	}
	_, _, st := Join[int64](intSR, dist.FromRelation(r, p), dist.FromRelation(s, p))
	if st.MaxLoad > 8*(2*n)/p+p*p {
		t.Fatalf("light join load %d not O(N/p) (N/p = %d)", st.MaxLoad, 2*n/p)
	}
}

func TestJoinConstantRounds(t *testing.T) {
	// Rounds must not depend on data size.
	rounds := map[int]int{}
	for _, n := range []int{100, 1000, 4000} {
		rng := rand.New(rand.NewSource(11))
		r := randomRel(rng, []relation.Attr{"A", "B"}, n, 50)
		s := randomRel(rng, []relation.Attr{"B", "C"}, n, 50)
		_, _, st := Join[int64](intSR, dist.FromRelation(r, 8), dist.FromRelation(s, 8))
		rounds[st.Rounds] = n
	}
	if len(rounds) != 1 {
		t.Fatalf("rounds vary with data size: %v", rounds)
	}
}
