package textio

import (
	"os"
	"path/filepath"
	"testing"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/workload"
)

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	q := hypergraph.LineQuery(3)
	inst, _ := workload.Blocks(q, 5, 2)
	if err := WriteInstance(dir, q, inst); err != nil {
		t.Fatal(err)
	}
	q2, inst2, err := ReadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Edges) != len(q.Edges) || len(q2.Output) != len(q.Output) {
		t.Fatalf("query mismatch: %+v", q2)
	}
	sr := semiring.IntSumProd{}
	for _, e := range q.Edges {
		if !relation.Equal[int64](sr, func(a, b int64) bool { return a == b }, inst[e.Name], inst2[e.Name]) {
			t.Fatalf("relation %s mismatch", e.Name)
		}
	}
}

func TestRoundtripUnaryAndScalar(t *testing.T) {
	dir := t.TempDir()
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R", "A", "B"), hypergraph.Un("U", "B"),
	}) // empty output: scalar aggregate
	r := relation.New[int64]("A", "B")
	r.Append(3, -5, 7) // negative values must survive
	u := relation.New[int64]("B")
	u.Append(2, 7)
	inst := map[string]*relation.Relation[int64]{"R": r, "U": u}
	if err := WriteInstance(dir, q, inst); err != nil {
		t.Fatal(err)
	}
	q2, inst2, err := ReadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Output) != 0 {
		t.Fatalf("output = %v", q2.Output)
	}
	if inst2["R"].Rows[0].Vals[0] != -5 || inst2["U"].Rows[0].W != 2 {
		t.Fatalf("values corrupted: %v %v", inst2["R"].Rows, inst2["U"].Rows)
	}
}

func TestReadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := ReadInstance(dir); err == nil {
		t.Fatal("missing query.txt must fail")
	}
	os.WriteFile(filepath.Join(dir, "query.txt"), []byte("rel R A B\noutput A\n"), 0o644)
	if _, _, err := ReadInstance(dir); err == nil {
		t.Fatal("missing tsv must fail")
	}
	os.WriteFile(filepath.Join(dir, "R.tsv"), []byte("1\t2\n"), 0o644) // missing weight
	if _, _, err := ReadInstance(dir); err == nil {
		t.Fatal("short row must fail")
	}
	os.WriteFile(filepath.Join(dir, "R.tsv"), []byte("1\tx\t1\n"), 0o644)
	if _, _, err := ReadInstance(dir); err == nil {
		t.Fatal("non-numeric must fail")
	}
	os.WriteFile(filepath.Join(dir, "query.txt"), []byte("bogus line\n"), 0o644)
	if _, _, err := ReadInstance(dir); err == nil {
		t.Fatal("unknown directive must fail")
	}
}
