// Package textio reads and writes query specs and relation data as plain
// text, the interchange format between cmd/datagen and cmd/mpcrun:
//
//	dir/query.txt   rel <name> <attr> [<attr>]   (one line per relation)
//	                output <attr> …              (one line; may be empty)
//	dir/<name>.tsv  value … value weight         (tab-separated, one tuple
//	                                              per line; # starts a comment)
//
// Annotations are int64 (the counting semiring); other semirings are
// reachable through the library API.
package textio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/relation"
)

// WriteInstance writes the query spec and all relations into dir.
func WriteInstance(dir string, q *hypergraph.Query, inst db.Instance[int64]) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var spec strings.Builder
	for _, e := range q.Edges {
		spec.WriteString("rel " + e.Name)
		for _, a := range e.Attrs {
			spec.WriteString(" " + string(a))
		}
		spec.WriteString("\n")
	}
	spec.WriteString("output")
	for _, a := range q.Output {
		spec.WriteString(" " + string(a))
	}
	spec.WriteString("\n")
	if err := os.WriteFile(filepath.Join(dir, "query.txt"), []byte(spec.String()), 0o644); err != nil {
		return err
	}

	for _, e := range q.Edges {
		r := inst[e.Name]
		f, err := os.Create(filepath.Join(dir, e.Name+".tsv"))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "# %s(%s) weight\n", e.Name, joinAttrs(e.Attrs))
		for _, row := range r.Rows {
			for _, v := range row.Vals {
				fmt.Fprintf(w, "%d\t", int64(v))
			}
			fmt.Fprintf(w, "%d\n", row.W)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadInstance loads a query spec and its relations from dir.
func ReadInstance(dir string) (*hypergraph.Query, db.Instance[int64], error) {
	specBytes, err := os.ReadFile(filepath.Join(dir, "query.txt"))
	if err != nil {
		return nil, nil, err
	}
	q := &hypergraph.Query{}
	for ln, line := range strings.Split(string(specBytes), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "rel":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, nil, fmt.Errorf("textio: query.txt line %d: rel needs a name and 1–2 attributes", ln+1)
			}
			e := hypergraph.Edge{Name: fields[1]}
			for _, a := range fields[2:] {
				e.Attrs = append(e.Attrs, hypergraph.Attr(a))
			}
			q.Edges = append(q.Edges, e)
		case "output":
			for _, a := range fields[1:] {
				q.Output = append(q.Output, hypergraph.Attr(a))
			}
		default:
			return nil, nil, fmt.Errorf("textio: query.txt line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}

	inst := make(db.Instance[int64], len(q.Edges))
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		f, err := os.Open(filepath.Join(dir, e.Name+".tsv"))
		if err != nil {
			return nil, nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) != len(e.Attrs)+1 {
				f.Close()
				return nil, nil, fmt.Errorf("textio: %s.tsv line %d: want %d values + weight, got %d fields",
					e.Name, lineNo, len(e.Attrs), len(fields))
			}
			vals := make([]relation.Value, len(e.Attrs))
			for i := range vals {
				x, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					f.Close()
					return nil, nil, fmt.Errorf("textio: %s.tsv line %d: %v", e.Name, lineNo, err)
				}
				vals[i] = relation.Value(x)
			}
			w, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("textio: %s.tsv line %d: %v", e.Name, lineNo, err)
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: w})
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, nil, err
		}
		f.Close()
		inst[e.Name] = r
	}
	return q, inst, nil
}

func joinAttrs(attrs []hypergraph.Attr) string {
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = string(a)
	}
	return strings.Join(parts, ", ")
}
