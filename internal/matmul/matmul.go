// Package matmul implements the sparse matrix multiplication algorithms of
// §3 of Hu–Yi PODS'20 — the paper's core contribution — for the query
//
//	∑_B R1(A, B) ⋈ R2(B, C)
//
// over an arbitrary commutative semiring, where A and C may be composite
// ("combined") attribute lists arising from the star/star-like reductions.
//
// Five execution strategies are provided, matching the paper's case
// analysis, plus the Theorem 1 dispatcher that picks among them:
//
//   - BroadcastSmall — N1 = O(1) (or N2): broadcast the tiny side (§1.5).
//   - UnequalRatio  — N1/N2 ∉ [1/p, p]: group R2 by C, broadcast R1 (§3).
//   - Linear        — OUT ≤ N/p: co-locate by B, local aggregate, one
//     global reduce (LinearSparseMM, §3.2).
//   - WorstCase     — §3.1: heavy/light on A and C, four subqueries, load
//     O(√(N1·N2/p)).
//   - OutputSensitive — §3.2: OUT-adaptive grouping, load
//     O((N1·N2·OUT)^{1/3}/p^{2/3}).
//
// All strategies compute every elementary product a_{ib}·b_{bc} exactly
// once per (a,b,c) and arrange locality so most ⊕-aggregation happens on
// the producing server — the mechanism §1.5 credits for the improvement
// over distributed Yannakakis.
package matmul

import (
	"fmt"
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/kmv"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// Input is a matrix multiplication instance: R1's schema is A ∪ {B}, R2's
// is {B} ∪ C, with A, C disjoint and B the single shared join attribute.
type Input[W any] struct {
	R1, R2 dist.Rel[W]
	B      dist.Attr
}

// ASide returns R1's output attributes (schema minus B), in schema order.
func (in Input[W]) ASide() []dist.Attr { return minusAttr(in.R1.Schema, in.B) }

// CSide returns R2's output attributes.
func (in Input[W]) CSide() []dist.Attr { return minusAttr(in.R2.Schema, in.B) }

// OutSchema returns the output schema: A-side attributes then C-side.
func (in Input[W]) OutSchema() []dist.Attr {
	return append(append([]dist.Attr(nil), in.ASide()...), in.CSide()...)
}

func minusAttr(schema []dist.Attr, b dist.Attr) []dist.Attr {
	var out []dist.Attr
	for _, a := range schema {
		if a != b {
			out = append(out, a)
		}
	}
	return out
}

// validate checks the Input invariants.
func (in Input[W]) validate() error {
	if !in.R1.Has(in.B) || !in.R2.Has(in.B) {
		return fmt.Errorf("matmul: join attribute %q missing from an input schema", in.B)
	}
	for _, a := range in.ASide() {
		for _, c := range in.CSide() {
			if a == c {
				return fmt.Errorf("matmul: attribute %q on both sides", a)
			}
		}
	}
	if in.R1.P() != in.R2.P() {
		return fmt.Errorf("matmul: inputs span %d and %d servers", in.R1.P(), in.R2.P())
	}
	return nil
}

// Algorithm selects an execution strategy.
type Algorithm int

const (
	// Auto is the Theorem 1 dispatcher.
	Auto Algorithm = iota
	// WorstCase forces the §3.1 algorithm.
	WorstCase
	// OutputSensitive forces the §3.2 algorithm.
	OutputSensitive
	// Linear forces LinearSparseMM (correct for any OUT; load degrades to
	// O(max_b d1(b)+d2(b) + OUT) when its precondition OUT ≤ N/p fails).
	Linear
	// BroadcastSmall forces broadcasting the smaller relation.
	BroadcastSmall
	// UnequalRatio forces the N1/N2 ∉ [1/p, p] fast path.
	UnequalRatio
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case WorstCase:
		return "worst-case"
	case OutputSensitive:
		return "output-sensitive"
	case Linear:
		return "linear"
	case BroadcastSmall:
		return "broadcast"
	case UnequalRatio:
		return "unequal"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options tunes Compute.
type Options struct {
	// Algorithm forces a strategy; Auto dispatches per Theorem 1.
	Algorithm Algorithm
	// Est configures the §2.2 estimator.
	Est estimate.Params
	// OutOracle, when positive, replaces the §2.2 OUT estimate (used by
	// experiments to separate estimator error from algorithmic behavior).
	// Per-value OUT_a estimates are still computed by the estimator.
	OutOracle int64
	// Seed drives the within-block hash partitioning.
	Seed uint64
	// SkipDangling skips the initial dangling-removal pass (callers that
	// have already reduced the instance).
	SkipDangling bool
}

// Compute evaluates the matrix multiplication and returns the distributed
// result over OutSchema plus the metered cost. The Auto strategy follows
// Theorem 1: fast paths for degenerate sizes, then the better of the
// worst-case optimal and output-sensitive algorithms by their predicted
// loads, using a constant-factor OUT approximation.
func Compute[W any](sr semiring.Semiring[W], in Input[W], opts Options) (dist.Rel[W], mpc.Stats, error) {
	if err := in.validate(); err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	var st mpc.Stats
	if !opts.SkipDangling {
		r1, s1 := dist.Semijoin(in.R1, in.R2)
		r2, s2 := dist.Semijoin(in.R2, in.R1)
		in.R1, in.R2 = r1, r2
		st = mpc.Seq(st, s1, s2)
	}

	p := in.R1.P()
	n1, s := mpc.TotalCount(in.R1.Part)
	st = mpc.Seq(st, s)
	n2, s := mpc.TotalCount(in.R2.Part)
	st = mpc.Seq(st, s)

	if n1 == 0 || n2 == 0 {
		return dist.Empty[W](in.OutSchema(), p), st, nil
	}

	alg := opts.Algorithm
	var ests mpc.Part[mpc.KeyCount[string]]
	var out int64
	if alg == Auto {
		switch {
		case n1 <= 1 || n2 <= 1:
			alg = BroadcastSmall
		case n1*int64(p) < n2 || n2*int64(p) < n1:
			alg = UnequalRatio
		default:
			// Estimate OUT (§2.2) to choose between the remaining three.
			var es mpc.Stats
			ests, out, es = estimate.MatMulOut(in.R1, in.R2, in.ASide(), []dist.Attr{in.B}, in.CSide(), opts.Est)
			st = mpc.Seq(st, es)
			if opts.OutOracle > 0 {
				out = opts.OutOracle
			}
			switch {
			case out <= (n1+n2)/int64(p):
				alg = Linear
			case wcLoad(n1, n2, p) <= osLoad(n1, n2, out, p):
				alg = WorstCase
			default:
				alg = OutputSensitive
			}
		}
	}

	var res dist.Rel[W]
	var as mpc.Stats
	var err error
	switch alg {
	case BroadcastSmall:
		res, as = broadcastSmall(sr, in, n1, n2)
	case UnequalRatio:
		res, as = unequalRatio(sr, in, n1, n2)
	case Linear:
		res, as = linearSparseMM(sr, in)
	case WorstCase:
		res, as = worstCase(sr, in, n1, n2, opts.Seed)
	case OutputSensitive:
		if ests.P() == 0 {
			var es mpc.Stats
			ests, out, es = estimate.MatMulOut(in.R1, in.R2, in.ASide(), []dist.Attr{in.B}, in.CSide(), opts.Est)
			st = mpc.Seq(st, es)
			if opts.OutOracle > 0 {
				out = opts.OutOracle
			}
		}
		res, as = outputSensitive(sr, in, n1, n2, out, ests, opts.Seed)
	default:
		err = fmt.Errorf("matmul: unknown algorithm %v", alg)
	}
	if err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	return dist.Reshape(res, p), mpc.Seq(st, as), nil
}

// wcLoad is the §3.1 load bound √(N1·N2/p).
func wcLoad(n1, n2 int64, p int) float64 {
	return math.Sqrt(float64(n1) * float64(n2) / float64(p))
}

// osLoad is the §3.2 load bound (N1·N2·OUT)^{1/3}/p^{2/3}.
func osLoad(n1, n2, out int64, p int) float64 {
	return math.Cbrt(float64(n1)*float64(n2)*float64(out)) / math.Pow(float64(p), 2.0/3.0)
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

// sideRow tags a row with its side so both relations travel in a single
// exchange (loads on shared destinations add up).
type sideRow[W any] struct {
	left bool
	row  relation.Row[W]
}

// AppendWireColumns implements mpc.ColumnarWire: sideRow exchanges over a
// transport ship as a sided columnar stream (flag bitmap + per-side
// column groups) instead of raw row-header memory.
func (sideRow[W]) AppendWireColumns(dst []byte, msg []sideRow[W]) []byte {
	return relation.AppendSidedRowColumns(dst, len(msg), func(i int) (bool, relation.Row[W]) {
		return msg[i].left, msg[i].row
	})
}

// DecodeWireColumns is the decoding half of the ColumnarWire seam.
func (sideRow[W]) DecodeWireColumns(dst []sideRow[W], units int, payload []byte) ([]sideRow[W], error) {
	err := relation.DecodeSidedRowColumns(units, payload, func(left bool, row relation.Row[W]) {
		dst = append(dst, sideRow[W]{left: left, row: row})
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// localJoinAgg joins the two sides of a shard on B and ⊕-aggregates onto
// the output schema — the per-server local computation every strategy ends
// with. Free in the MPC model.
func localJoinAgg[W any](sr semiring.Semiring[W], in Input[W], shard []sideRow[W]) []relation.Row[W] {
	left := relation.New[W](in.R1.Schema...)
	right := relation.New[W](in.R2.Schema...)
	for _, s := range shard {
		if s.left {
			left.AppendRow(s.row)
		} else {
			right.AppendRow(s.row)
		}
	}
	joined := relation.Join(sr, left, right)
	attrs := make([]relation.Attr, 0, len(in.OutSchema()))
	for _, a := range in.OutSchema() {
		attrs = append(attrs, a)
	}
	return relation.ProjectAgg(sr, joined, attrs...).Rows
}

// hashB spreads a B value across m slots with a seeded hash.
func hashB(b relation.Value, m int, seed uint64) int {
	if m <= 1 {
		return 0
	}
	return int(kmv.Hash64(uint64(b), seed) % uint64(m))
}

// hashStr spreads an encoded key across m slots.
func hashStr(s string, m int, seed uint64) int {
	if m <= 1 {
		return 0
	}
	var h uint64 = 0xcbf29ce484222325 ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return int(h % uint64(m))
}

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
