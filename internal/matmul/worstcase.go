package matmul

import (
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	xrt "mpcjoin/internal/runtime"
	"mpcjoin/internal/semiring"
)

// worstCase is the §3.1 worst-case optimal algorithm, load O(√(N1·N2/p)):
//
//	Step 1 — degree statistics; A (resp. C) values with degree ≥ L are
//	         heavy, L = √(N1·N2/p).
//	Step 2 — heavy-heavy: each (a, c) pair gets ⌈(d(a)+d(c))/L⌉ servers;
//	         both sides partition by a hash of B, so matching b's meet.
//	Step 3 — heavy-light (and symmetrically light-heavy): each heavy a
//	         gets ⌈(d(a)+N2^light)/L⌉ servers holding its tuples plus all
//	         light R2 tuples, partitioned by B.
//	Step 4 — light-light: parallel-packing groups light A (resp. C) values
//	         into bins of total degree ≤ 2L; bin pair (i, j) is one server
//	         holding both bins entirely, so its outputs are final.
//
// Outputs of steps 2–3 are partial (the same (a,c) is aggregated across a
// block's servers) and are merged by one global reduce whose input is
// O(p·L); step 4 outputs are complete where they are produced. The four
// subqueries cover disjoint (a,c) pairs, so no cross-step merging is
// needed.
func worstCase[W any](sr semiring.Semiring[W], in Input[W], n1, n2 int64, seed uint64) (dist.Rel[W], mpc.Stats) {
	p := in.R1.P()
	ex := in.R1.Part.Scope()
	load := int64(math.Ceil(math.Sqrt(float64(n1) * float64(n2) / float64(p))))
	if load < 1 {
		load = 1
	}

	aKey := in.R1.Key(in.ASide()...)
	cKey := in.R2.Key(in.CSide()...)
	bCol1 := in.R1.Cols(in.B)[0]
	bCol2 := in.R2.Cols(in.B)[0]

	// Step 1: degrees and the heavy/light split.
	dA, st1 := mpc.CountByKey(in.R1.Part, func(r relation.Row[W]) string { return aKey(r) })
	dC, st2 := mpc.CountByKey(in.R2.Part, func(r relation.Row[W]) string { return cKey(r) })
	heavyA := mpc.Filter(dA, func(kc mpc.KeyCount[string]) bool { return kc.Count >= load })
	lightA := mpc.Filter(dA, func(kc mpc.KeyCount[string]) bool { return kc.Count < load })
	heavyC := mpc.Filter(dC, func(kc mpc.KeyCount[string]) bool { return kc.Count >= load })
	lightC := mpc.Filter(dC, func(kc mpc.KeyCount[string]) bool { return kc.Count < load })

	// Heavy lists to the coordinator and out to everyone (|heavy| ≤ N/L ≤ √(N·p)/√N·… = O(√p) each).
	hAPart, stg1 := mpc.Gather(heavyA, 0)
	hABcast, stb1 := mpc.Broadcast(hAPart)
	hCPart, stg2 := mpc.Gather(heavyC, 0)
	hCBcast, stb2 := mpc.Broadcast(hCPart)

	// Light bins by parallel-packing (degree-weighted, capacity L).
	binnedA, kBins, stp1 := mpc.ParallelPack(lightA, func(kc mpc.KeyCount[string]) int64 { return kc.Count }, load)
	binnedC, lBins, stp2 := mpc.ParallelPack(lightC, func(kc mpc.KeyCount[string]) int64 { return kc.Count }, load)
	binA := mpc.Map(binnedA, func(b mpc.Binned[mpc.KeyCount[string]]) mpc.KeyBin[string] {
		return mpc.KeyBin[string]{Key: b.X.Key, Bin: b.Bin}
	})
	binC := mpc.Map(binnedC, func(b mpc.Binned[mpc.KeyCount[string]]) mpc.KeyBin[string] {
		return mpc.KeyBin[string]{Key: b.X.Key, Bin: b.Bin}
	})
	rLook, stl1 := mpc.LookupJoin(in.R1.Part, binA,
		func(r relation.Row[W]) string { return aKey(r) },
		func(kb mpc.KeyBin[string]) string { return kb.Key })
	sLook, stl2 := mpc.LookupJoin(in.R2.Part, binC,
		func(r relation.Row[W]) string { return cKey(r) },
		func(kb mpc.KeyBin[string]) string { return kb.Key })

	// Every server reconstructs the identical block layout from the
	// broadcast heavy lists.
	lay := newWCLayout(hABcast.Shards[0], hCBcast.Shards[0], n1, n2, load, kBins, lBins)

	// One exchange routes everything. The layout is read-only and each
	// source owns its outbox row, so the builds run concurrently on the
	// execution's runtime.
	out := make([][][]sideRow[W], p)
	ex.ForEachShardScratch(p, func(src int, sc *xrt.Scratch) {
		rShard := rLook.Shards[src]
		sShard := sLook.Shards[src]
		if len(rShard)+len(sShard) == 0 {
			return
		}
		// Memoize each row's classification so the counted build's two
		// passes pay the key encoding and map lookup once: tag t > 0 is
		// heavy index t−1, t < 0 is light bin −t−1 (missing lookups are
		// bin 0, hence tag −1).
		rTags := sc.Ints(len(rShard))
		for j, pr := range rShard {
			if ai, isHeavy := lay.heavyAIdx[aKey(pr.X)]; isHeavy {
				rTags[j] = ai + 1
			} else if pr.Found {
				rTags[j] = -(pr.Y.Bin + 1)
			} else {
				rTags[j] = -1
			}
		}
		sTags := sc.Ints(len(sShard))
		for j, pr := range sShard {
			if cj, isHeavy := lay.heavyCIdx[cKey(pr.X)]; isHeavy {
				sTags[j] = cj + 1
			} else if pr.Found {
				sTags[j] = -(pr.Y.Bin + 1)
			} else {
				sTags[j] = -1
			}
		}
		out[src] = mpc.BuildOutbox[sideRow[W]](sc, lay.total, "worstCase route", func(fill bool, emit func(int, sideRow[W])) {
			for j, pr := range rShard {
				row := pr.X
				b := row.Vals[bCol1]
				if t := rTags[j]; t > 0 {
					ai := t - 1
					for cj := range lay.hC {
						off, size := lay.hhBlock(ai, cj)
						emit(off+hashB(b, size, seed), sideRow[W]{left: true, row: row})
					}
					off, size := lay.hlOff[ai], lay.hlSize[ai]
					emit(off+hashB(b, size, seed), sideRow[W]{left: true, row: row})
				} else {
					// Light a: its bin row of the LL grid plus every LH block.
					bin := -t - 1
					for j2 := 0; j2 < lay.lBins; j2++ {
						emit(lay.llStart+bin*lay.lBins+j2, sideRow[W]{left: true, row: row})
					}
					for cj := range lay.hC {
						off, size := lay.lhOff[cj], lay.lhSize[cj]
						emit(off+hashB(b, size, seed), sideRow[W]{left: true, row: row})
					}
				}
			}
			for j, pr := range sShard {
				row := pr.X
				b := row.Vals[bCol2]
				if t := sTags[j]; t > 0 {
					cj := t - 1
					for ai := range lay.hA {
						off, size := lay.hhBlock(ai, cj)
						emit(off+hashB(b, size, seed), sideRow[W]{left: false, row: row})
					}
					off, size := lay.lhOff[cj], lay.lhSize[cj]
					emit(off+hashB(b, size, seed), sideRow[W]{left: false, row: row})
				} else {
					bin := -t - 1
					for i := 0; i < lay.kBins; i++ {
						emit(lay.llStart+i*lay.lBins+bin, sideRow[W]{left: false, row: row})
					}
					for ai := range lay.hA {
						off, size := lay.hlOff[ai], lay.hlSize[ai]
						emit(off+hashB(b, size, seed), sideRow[W]{left: false, row: row})
					}
				}
			}
		})
	})
	mpc.TraceOp(ex, "matmul.wc.grid")
	routed, stx := mpc.ExchangeToIn(ex, lay.total, out)

	partials := mpc.MapShards(routed, func(_ int, shard []sideRow[W]) []relation.Row[W] {
		return localJoinAgg(sr, in, shard)
	})

	// Steps 2–3 partials are reduced globally; step 4 outputs are final.
	reducePart := mpc.Slice(partials, 0, lay.llStart)
	llPart := mpc.Slice(partials, lay.llStart, partials.P())
	if lay.llStart == 0 {
		reducePart = mpc.NewPartIn[relation.Row[W]](ex, 1)
	}
	reduced, str := dist.ProjectAgg(sr, dist.Rel[W]{Schema: in.OutSchema(), Part: reducePart}, in.OutSchema()...)

	result := mpc.Concat(reduced.Part, llPart)
	st := mpc.Seq(st1, st2, stg1, stb1, stg2, stb2, stp1, stp2, stl1, stl2, stx, str)
	return dist.Rel[W]{Schema: in.OutSchema(), Part: result}, st
}

// wcLayout is the deterministic block layout of the §3.1 algorithm,
// recomputable identically on every server from the broadcast heavy lists.
type wcLayout struct {
	hA, hC               []mpc.KeyCount[string]
	heavyAIdx, heavyCIdx map[string]int
	hhOff                []int // |hA|·|hC| blocks, i-major
	hhSz                 []int
	hlOff, hlSize        []int
	lhOff, lhSize        []int
	llStart              int
	kBins, lBins         int
	total                int
}

func newWCLayout(hA, hC []mpc.KeyCount[string], n1, n2, load int64, kBins, lBins int) *wcLayout {
	mpc.SortLocal(hA, func(kc mpc.KeyCount[string]) string { return kc.Key })
	mpc.SortLocal(hC, func(kc mpc.KeyCount[string]) string { return kc.Key })
	lay := &wcLayout{
		hA: hA, hC: hC,
		heavyAIdx: make(map[string]int, len(hA)),
		heavyCIdx: make(map[string]int, len(hC)),
		kBins:     kBins, lBins: lBins,
	}
	var hSumA, hSumC int64
	for i, kc := range hA {
		lay.heavyAIdx[kc.Key] = i
		hSumA += kc.Count
	}
	for j, kc := range hC {
		lay.heavyCIdx[kc.Key] = j
		hSumC += kc.Count
	}
	n1Light := n1 - hSumA
	n2Light := n2 - hSumC

	at := 0
	for i := range hA {
		for j := range hC {
			sz := int(ceilDiv(hA[i].Count+hC[j].Count, load))
			lay.hhOff = append(lay.hhOff, at)
			lay.hhSz = append(lay.hhSz, sz)
			at += sz
		}
	}
	for i := range hA {
		sz := int(ceilDiv(hA[i].Count+n2Light, load))
		lay.hlOff = append(lay.hlOff, at)
		lay.hlSize = append(lay.hlSize, sz)
		at += sz
	}
	for j := range hC {
		sz := int(ceilDiv(hC[j].Count+n1Light, load))
		lay.lhOff = append(lay.lhOff, at)
		lay.lhSize = append(lay.lhSize, sz)
		at += sz
	}
	lay.llStart = at
	lay.total = at + kBins*lBins
	if lay.total == 0 {
		lay.total = 1
	}
	return lay
}

func (l *wcLayout) hhBlock(ai, cj int) (off, size int) {
	idx := ai*len(l.hC) + cj
	return l.hhOff[idx], l.hhSz[idx]
}
