package matmul

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func mkInput(r1, r2 *relation.Relation[int64], p int) Input[int64] {
	return Input[int64]{
		R1: dist.FromRelation(r1, p),
		R2: dist.FromRelation(r2, p),
		B:  "B",
	}
}

// seqMatMul is the sequential ground truth.
func seqMatMul(r1, r2 *relation.Relation[int64]) *relation.Relation[int64] {
	return relation.ProjectAgg[int64](intSR, relation.Join[int64](intSR, r1, r2), outAttrsOf(r1, r2)...)
}

func outAttrsOf(r1, r2 *relation.Relation[int64]) []relation.Attr {
	var out []relation.Attr
	for _, a := range r1.Schema() {
		if a != "B" {
			out = append(out, a)
		}
	}
	for _, a := range r2.Schema() {
		if a != "B" {
			out = append(out, a)
		}
	}
	return out
}

func randMatrices(rng *rand.Rand, n1, n2, domA, domB, domC int) (*relation.Relation[int64], *relation.Relation[int64]) {
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < n1; i++ {
		r1.Append(int64(rng.Intn(5)+1), relation.Value(rng.Intn(domA)), relation.Value(rng.Intn(domB)))
	}
	for i := 0; i < n2; i++ {
		r2.Append(int64(rng.Intn(5)+1), relation.Value(rng.Intn(domB)), relation.Value(rng.Intn(domC)))
	}
	return relation.Compact[int64](intSR, r1), relation.Compact[int64](intSR, r2)
}

func checkAlgorithm(t *testing.T, alg Algorithm, seeds int) {
	t.Helper()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n1 := rng.Intn(150) + 2
		n2 := rng.Intn(150) + 2
		r1, r2 := randMatrices(rng, n1, n2, 12, 8, 12)
		p := rng.Intn(10) + 2
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{Algorithm: alg, Seed: uint64(seed)})
		if err != nil {
			t.Fatalf("alg %v seed %d: %v", alg, seed, err)
		}
		want := seqMatMul(r1, r2)
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("alg %v seed %d p %d: got %v want %v", alg, seed, p,
				dist.ToRelation(got), want)
		}
	}
}

func TestWorstCaseCorrect(t *testing.T)       { checkAlgorithm(t, WorstCase, 12) }
func TestOutputSensitiveCorrect(t *testing.T) { checkAlgorithm(t, OutputSensitive, 12) }
func TestLinearCorrect(t *testing.T)          { checkAlgorithm(t, Linear, 12) }
func TestBroadcastCorrect(t *testing.T)       { checkAlgorithm(t, BroadcastSmall, 8) }
func TestUnequalCorrect(t *testing.T)         { checkAlgorithm(t, UnequalRatio, 8) }
func TestAutoCorrect(t *testing.T)            { checkAlgorithm(t, Auto, 12) }

func TestQuickAutoMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1, r2 := randMatrices(rng, rng.Intn(80)+1, rng.Intn(80)+1,
			rng.Intn(10)+1, rng.Intn(6)+1, rng.Intn(10)+1)
		if r1.Len() == 0 || r2.Len() == 0 {
			return true
		}
		p := rng.Intn(8) + 2
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), seqMatMul(r1, r2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInputs(t *testing.T) {
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	r2.Append(1, 1, 2)
	got, _, err := Compute[int64](intSR, mkInput(r1, r2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("empty input gave %d rows", got.N())
	}
}

func TestSingleTupleSides(t *testing.T) {
	r1 := relation.New[int64]("A", "B")
	r1.Append(3, 7, 1)
	r2 := relation.New[int64]("B", "C")
	for c := 0; c < 50; c++ {
		r2.Append(int64(c+1), 1, relation.Value(c))
	}
	got, st, err := Compute[int64](intSR, mkInput(r1, r2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := seqMatMul(r1, r2)
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatalf("N1=1 mismatch: %v vs %v", dist.ToRelation(got), want)
	}
	if st.MaxLoad > 60 {
		t.Fatalf("broadcast path load %d too high", st.MaxLoad)
	}
}

func TestNoDanglingSurvives(t *testing.T) {
	// Tuples with non-matching B must not affect results.
	r1 := relation.New[int64]("A", "B")
	r1.Append(1, 1, 10)
	r1.Append(1, 2, 99) // dangling
	r2 := relation.New[int64]("B", "C")
	r2.Append(1, 10, 5)
	r2.Append(1, 88, 6) // dangling
	for _, alg := range []Algorithm{WorstCase, OutputSensitive, Linear, Auto} {
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, 3), Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		want := relation.New[int64]("A", "C")
		want.Append(1, 1, 5)
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("alg %v: %v", alg, dist.ToRelation(got))
		}
	}
}

func TestCompositeAttributes(t *testing.T) {
	// A side has two attributes (a combined attribute), as produced by the
	// star-query reduction.
	rng := rand.New(rand.NewSource(5))
	r1 := relation.New[int64]("A1", "A2", "B")
	r2 := relation.New[int64]("B", "C1", "C2")
	for i := 0; i < 120; i++ {
		r1.Append(int64(rng.Intn(3)+1), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(6)))
		r2.Append(int64(rng.Intn(3)+1), relation.Value(rng.Intn(6)), relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5)))
	}
	r1 = relation.Compact[int64](intSR, r1)
	r2 = relation.Compact[int64](intSR, r2)
	for _, alg := range []Algorithm{WorstCase, OutputSensitive, Linear, Auto} {
		in := Input[int64]{R1: dist.FromRelation(r1, 5), R2: dist.FromRelation(r2, 5), B: "B"}
		got, _, err := Compute[int64](intSR, in, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		want := relation.ProjectAgg[int64](intSR, relation.Join[int64](intSR, r1, r2), "A1", "A2", "C1", "C2")
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("alg %v: composite mismatch", alg)
		}
	}
}

func TestIdempotentSemiring(t *testing.T) {
	boolSR := semiring.BoolOrAnd{}
	rng := rand.New(rand.NewSource(8))
	r1 := relation.New[bool]("A", "B")
	r2 := relation.New[bool]("B", "C")
	for i := 0; i < 100; i++ {
		r1.Append(true, relation.Value(rng.Intn(10)), relation.Value(rng.Intn(6)))
		r2.Append(true, relation.Value(rng.Intn(6)), relation.Value(rng.Intn(10)))
	}
	in := Input[bool]{R1: dist.FromRelation(r1, 4), R2: dist.FromRelation(r2, 4), B: "B"}
	got, _, err := Compute[bool](boolSR, in, Options{Algorithm: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.ProjectAgg[bool](boolSR, relation.Join[bool](boolSR, r1, r2), "A", "C")
	if !relation.Equal[bool](boolSR, boolSR.Equal, dist.ToRelation(got), want) {
		t.Fatal("boolean mismatch")
	}
}

// --- Load-shape tests ---

// denseBlock builds the Theorem 3 style instance: dom(A)×dom(B) and
// dom(B)×dom(C) complete bipartite relations.
func denseBlock(nA, nB, nC int) (*relation.Relation[int64], *relation.Relation[int64]) {
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for a := 0; a < nA; a++ {
		for b := 0; b < nB; b++ {
			r1.Append(1, relation.Value(a), relation.Value(b))
		}
	}
	for b := 0; b < nB; b++ {
		for c := 0; c < nC; c++ {
			r2.Append(1, relation.Value(b), relation.Value(c))
		}
	}
	return r1, r2
}

func TestWorstCaseLoadBound(t *testing.T) {
	// Dense single-block instance: N1 = N2 = 2048, OUT = N1·N2/|B|².
	r1, r2 := denseBlock(64, 32, 64)
	const p = 16
	n := float64(r1.Len())
	_, st, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{Algorithm: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	bound := 8 * math.Sqrt(n*n/float64(p))
	if float64(st.MaxLoad) > bound {
		t.Fatalf("worst-case load %d exceeds 8√(N1N2/p) = %.0f", st.MaxLoad, bound)
	}
}

func TestOutputSensitiveBeatsYannakakisShape(t *testing.T) {
	// Moderate-output instance: the output-sensitive load must be well
	// below the N·√OUT/p Yannakakis bound shape and below worst-case.
	rng := rand.New(rand.NewSource(42))
	const n, p = 4096, 16
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	// Each a joins ~16 c's through a shared pool of b's: OUT ≈ 16N.
	for i := 0; i < n; i++ {
		a := relation.Value(i)
		b := relation.Value(rng.Intn(n / 16))
		r1.Append(1, a, b)
		r2.Append(1, relation.Value(i%(n/16)), relation.Value(rng.Intn(n)))
	}
	in := mkInput(r1, r2, p)
	_, stOS, err := Compute[int64](intSR, in, Options{Algorithm: OutputSensitive})
	if err != nil {
		t.Fatal(err)
	}
	_, stWC, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{Algorithm: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	if stOS.MaxLoad > 4*stWC.MaxLoad {
		t.Fatalf("output-sensitive load %d vastly above worst-case %d on sparse-output data",
			stOS.MaxLoad, stWC.MaxLoad)
	}
}

func TestConstantRounds(t *testing.T) {
	for _, alg := range []Algorithm{WorstCase, Linear} {
		rounds := map[int]bool{}
		for _, n := range []int{200, 800, 3200} {
			rng := rand.New(rand.NewSource(13))
			r1, r2 := randMatrices(rng, n, n, n/4, n/8, n/4)
			_, st, err := Compute[int64](intSR, mkInput(r1, r2, 8), Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			rounds[st.Rounds] = true
		}
		if len(rounds) > 2 {
			t.Fatalf("alg %v: round count varies with N: %v", alg, rounds)
		}
	}
}

func TestDispatcherChoosesLinearForTinyOut(t *testing.T) {
	// OUT « N/p: identity-like matrices.
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	const n, p = 4000, 8
	for i := 0; i < n; i++ {
		r1.Append(1, relation.Value(i%(n/(4*p))), relation.Value(i%(n/(4*p))))
		r2.Append(1, relation.Value(i%(n/(4*p))), relation.Value(i%(n/(4*p))))
	}
	r1c := relation.Compact[int64](intSR, r1)
	r2c := relation.Compact[int64](intSR, r2)
	got, st, err := Compute[int64](intSR, mkInput(r1c, r2c, p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := seqMatMul(r1c, r2c)
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatal("tiny-out mismatch")
	}
	// Linear path must be near-linear load.
	if st.MaxLoad > 8*(r1c.Len()+r2c.Len())/p+p*p {
		t.Fatalf("tiny-out load %d not linear", st.MaxLoad)
	}
}

func TestUnequalRatioPath(t *testing.T) {
	// N1 « N2/p triggers the unequal fast path with linear load.
	rng := rand.New(rand.NewSource(3))
	const p = 8
	r1 := relation.New[int64]("A", "B")
	for i := 0; i < 12; i++ {
		r1.Append(1, relation.Value(i), relation.Value(i%4))
	}
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < 4000; i++ {
		r2.Append(1, relation.Value(rng.Intn(4)), relation.Value(i))
	}
	got, st, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := seqMatMul(r1, r2)
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatal("unequal path mismatch")
	}
	// Loads: grouping R2 by C dominates — O(N2/p); broadcasting R1 adds N1.
	if st.MaxLoad > 8*4000/p+200 {
		t.Fatalf("unequal path load %d not linear", st.MaxLoad)
	}
}

func TestOutOracleAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r1, r2 := randMatrices(rng, 100, 100, 10, 6, 10)
	want := seqMatMul(r1, r2)
	got, _, err := Compute[int64](intSR, mkInput(r1, r2, 4),
		Options{Algorithm: OutputSensitive, OutOracle: int64(want.Len())})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
		t.Fatal("oracle run mismatch")
	}
}

func TestValidateErrors(t *testing.T) {
	r1 := relation.New[int64]("A", "X")
	r2 := relation.New[int64]("B", "C")
	in := Input[int64]{R1: dist.FromRelation(r1, 2), R2: dist.FromRelation(r2, 2), B: "B"}
	if _, _, err := Compute[int64](intSR, in, Options{}); err == nil {
		t.Fatal("expected schema error")
	}
	dup1 := relation.New[int64]("A", "B")
	dup2 := relation.New[int64]("B", "A")
	in2 := Input[int64]{R1: dist.FromRelation(dup1, 2), R2: dist.FromRelation(dup2, 2), B: "B"}
	if _, _, err := Compute[int64](intSR, in2, Options{}); err == nil {
		t.Fatal("expected duplicate side attribute error")
	}
}

func TestTropicalMinPlus(t *testing.T) {
	// Min-plus matmul = shortest 2-hop paths.
	mp := semiring.MinPlus{}
	r1 := relation.New[int64]("A", "B")
	r1.Append(3, 0, 1)
	r1.Append(8, 0, 2)
	r2 := relation.New[int64]("B", "C")
	r2.Append(4, 1, 9)
	r2.Append(1, 2, 9)
	in := Input[int64]{R1: dist.FromRelation(r1, 3), R2: dist.FromRelation(r2, 3), B: "B"}
	got, _, err := Compute[int64](mp, in, Options{Algorithm: WorstCase})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New[int64]("A", "C")
	want.Append(7, 0, 9) // min(3+4, 8+1)
	if !relation.Equal[int64](mp, mp.Equal, dist.ToRelation(got), want) {
		t.Fatalf("tropical: %v", dist.ToRelation(got))
	}
}

var benchSink int

func BenchmarkWorstCase(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r1, r2 := randMatrices(rng, 2000, 2000, 300, 100, 300)
	in := mkInput(r1, r2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, _ := Compute[int64](intSR, in, Options{Algorithm: WorstCase})
		benchSink = res.N()
	}
}
