package matmul

// robustness_test.go verifies the separation the §3.2 design relies on:
// output-size estimates steer only the partitioning, so arbitrarily bad
// estimates (tiny sketches, adversarial oracles) may degrade load but can
// never corrupt results.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

func TestOutputSensitiveWithTinySketches(t *testing.T) {
	// K=2, Reps=5: the estimator is nearly useless; correctness must hold.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r1, r2 := randMatrices(rng, rng.Intn(120)+2, rng.Intn(120)+2, 10, 6, 10)
		p := rng.Intn(6) + 2
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, p), Options{
			Algorithm: OutputSensitive,
			Est:       estimate.Params{K: 2, Reps: 5, Seed: uint64(seed)},
			Seed:      uint64(seed),
		})
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), seqMatMul(r1, r2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputSensitiveWithLyingOracle(t *testing.T) {
	// Oracle claims of wildly wrong OUT must not affect answers.
	rng := rand.New(rand.NewSource(4))
	r1, r2 := randMatrices(rng, 120, 120, 12, 6, 12)
	want := seqMatMul(r1, r2)
	for _, oracle := range []int64{1, 5, int64(want.Len()) * 1000} {
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, 4), Options{
			Algorithm: OutputSensitive,
			OutOracle: oracle,
			Seed:      9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("oracle %d corrupted the answer", oracle)
		}
	}
}

func TestAllAlgorithmsOnZipfSkew(t *testing.T) {
	// Heavy Zipf skew on B: every strategy must still agree with the
	// sequential reference.
	rng := rand.New(rand.NewSource(11))
	z := rand.NewZipf(rng, 1.3, 1, 63)
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < 400; i++ {
		r1.Append(1, relation.Value(i), relation.Value(z.Uint64()))
		r2.Append(1, relation.Value(z.Uint64()), relation.Value(i))
	}
	r1 = relation.Compact[int64](intSR, r1)
	r2 = relation.Compact[int64](intSR, r2)
	want := seqMatMul(r1, r2)
	for _, alg := range []Algorithm{Auto, WorstCase, OutputSensitive, Linear} {
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, 8), Options{Algorithm: alg, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("alg %v wrong under Zipf skew", alg)
		}
	}
}

func TestProvenanceThroughWorstCase(t *testing.T) {
	// The heaviest-weight semiring (sets of witness sets) must survive the
	// grid partitioning: annotations are routed and combined opaquely.
	why := semiring.WhyProvenance{}
	r1 := relation.New[semiring.Provenance]("A", "B")
	r2 := relation.New[semiring.Provenance]("B", "C")
	w := semiring.Witness(0)
	tag := func() semiring.Provenance { w++; return semiring.Why(w) }
	for a := 0; a < 6; a++ {
		for b := 0; b < 4; b++ {
			r1.AppendRow(relation.Row[semiring.Provenance]{
				Vals: []relation.Value{relation.Value(a), relation.Value(b)}, W: tag()})
		}
	}
	for b := 0; b < 4; b++ {
		for c := 0; c < 6; c++ {
			r2.AppendRow(relation.Row[semiring.Provenance]{
				Vals: []relation.Value{relation.Value(b), relation.Value(c)}, W: tag()})
		}
	}
	in := Input[semiring.Provenance]{
		R1: dist.FromRelation(r1, 4),
		R2: dist.FromRelation(r2, 4),
		B:  "B",
	}
	got, _, err := Compute[semiring.Provenance](why, in, Options{Algorithm: WorstCase, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := relation.ProjectAgg[semiring.Provenance](why,
		relation.Join[semiring.Provenance](why, r1, r2), "A", "C")
	if !relation.Equal[semiring.Provenance](why, why.Equal, dist.ToRelation(got), want) {
		t.Fatal("provenance corrupted by grid partitioning")
	}
	// Every (a,c) pair joins through all 4 b's: 4 witness sets each.
	for _, row := range want.Rows {
		if len(row.W) != 4 {
			t.Fatalf("expected 4 derivations, got %d", len(row.W))
		}
	}
}

func TestForcedBranchesAgreeOnLowerBoundShapes(t *testing.T) {
	// Dense single-block (Theorem 3 shape at OUT = N²): the nastiest case
	// for the output-sensitive grouping.
	r1, r2 := denseBlock(24, 16, 24)
	want := seqMatMul(r1, r2)
	for _, alg := range []Algorithm{WorstCase, OutputSensitive, Linear} {
		got, _, err := Compute[int64](intSR, mkInput(r1, r2, 6), Options{Algorithm: alg, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("alg %v wrong on dense block", alg)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r1, r2 := randMatrices(rng, 200, 200, 20, 10, 20)
	in := mkInput(r1, r2, 8)
	_, st1, err := Compute[int64](intSR, in, Options{Algorithm: OutputSensitive, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := Compute[int64](intSR, mkInput(r1, r2, 8), Options{Algorithm: OutputSensitive, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", st1, st2)
	}
}
