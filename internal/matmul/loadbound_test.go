package matmul

// loadbound_test.go pins the measured loads of both §3 branches to their
// Lemma 1 / Lemma 2 bounds on controlled workloads.

import (
	"math"
	"testing"

	"mpcjoin/internal/workload"
)

func TestOutputSensitiveWithinLemma2Bound(t *testing.T) {
	const p = 16
	for _, fan := range []int{2, 4, 8} {
		blocks := 2048 / fan
		inst, meta := workload.MatMulBlocks(blocks, fan, fan)
		in := mkInput(inst["R1"], inst["R2"], p)
		_, st, err := Compute[int64](intSR, in, Options{Algorithm: OutputSensitive, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		n1 := float64(meta.PerEdge["R1"])
		bound := math.Cbrt(n1*n1*float64(meta.Out))/math.Pow(p, 2.0/3.0) +
			2*n1/p + float64(meta.Out)/p + p*p
		if float64(st.MaxLoad) > 8*bound {
			t.Fatalf("fan %d: OS load %d exceeds 8× Lemma 2 bound %.0f", fan, st.MaxLoad, bound)
		}
	}
}

func TestWorstCaseWithinLemma1BoundOnBlocks(t *testing.T) {
	const p = 16
	for _, fan := range []int{4, 16} {
		blocks := 2048 / fan
		inst, meta := workload.MatMulBlocks(blocks, fan, fan)
		in := mkInput(inst["R1"], inst["R2"], p)
		_, st, err := Compute[int64](intSR, in, Options{Algorithm: WorstCase, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		n1 := float64(meta.PerEdge["R1"])
		bound := 2*n1/p + math.Sqrt(n1*n1/p) + p*p
		if float64(st.MaxLoad) > 6*bound {
			t.Fatalf("fan %d: WC load %d exceeds 6× Lemma 1 bound %.0f", fan, st.MaxLoad, bound)
		}
	}
}

func TestLinearWithinLinearBound(t *testing.T) {
	// OUT ≤ N/p regime: LinearSparseMM must be O(N/p).
	const p = 16
	inst, meta := workload.MatMulBlocks(512, 2, 2) // OUT = 2048, N = 2048
	in := mkInput(inst["R1"], inst["R2"], p)
	_, st, err := Compute[int64](intSR, in, Options{Algorithm: Linear, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bound := 2*float64(meta.N)/p + float64(meta.Out)/p + p*p
	if float64(st.MaxLoad) > 6*bound {
		t.Fatalf("linear load %d exceeds 6× linear bound %.0f", st.MaxLoad, bound)
	}
}
