package matmul

import (
	"math"

	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	xrt "mpcjoin/internal/runtime"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/twoway"
)

// outputSensitive is the §3.2 algorithm, load O((N1·N2·OUT)^{1/3}/p^{2/3})
// for OUT > N/p:
//
//	Step 1 — per-value output estimates OUT_a (§2.2); a is heavy when
//	         OUT_a ≥ T = √(N2·OUT·L/N1).
//	Step 2 — heavy rows: Yannakakis (two-way join + aggregation) on
//	         R1(A^heavy, B) ⋈ R2; its intermediate size is bounded by
//	         √(N1·N2·OUT/L) because few values are heavy.
//	Step 3 — light rows are packed into groups A_i of total OUT_a ≤ 2T;
//	         each group block receives σ_{A_i}R1 plus a full copy of R2 and
//	         estimates, per C value, the group-local result count; values
//	         with ≥ L results get dedicated ⌈(|σ_{A_i}R1|+d(c))/L⌉-server
//	         blocks partitioned by B.
//	Step 4 — the remaining (group, light-c) pairs are packed into bins of
//	         total estimated results ≤ 2L and evaluated by LinearSparseMM
//	         on ⌈(|σ_{A_i}R1|+|σ_{C_ij}R2|)/L⌉ servers per bin.
//
// Implementation notes relative to the paper's prose: all groups are run
// through the uniform Step 3/4 machinery (the paper short-circuits groups
// with footprint ≤ L; the uniform path preserves the Σp_i = O(p) budget
// since Σ_i ⌈(f_i+N2)/L⌉ ≤ N1/L + k1·N2/L = O(p)), and the per-group §2.2
// estimates are computed by global skew-proof primitives over a synthetic
// group column G rather than per-block coordinators — the routed data and
// metered loads are the same. Estimate errors can only misclassify values
// between Steps 3 and 4, affecting load, never correctness.
func outputSensitive[W any](sr semiring.Semiring[W], in Input[W], n1, n2, out int64, ests mpc.Part[mpc.KeyCount[string]], seed uint64) (dist.Rel[W], mpc.Stats) {
	p := in.R1.P()
	ex := in.R1.Part.Scope()
	load := int64(math.Ceil(math.Cbrt(float64(n1)*float64(n2)*float64(out))/math.Pow(float64(p), 2.0/3.0))) + ceilDiv(n1+n2, int64(p))
	if load < 1 {
		load = 1
	}
	thr := int64(math.Ceil(math.Sqrt(float64(n2) * float64(out) * float64(load) / float64(n1))))
	if thr < 1 {
		thr = 1
	}

	aKey := in.R1.Key(in.ASide()...)
	cKey := in.R2.Key(in.CSide()...)
	bCol2 := in.R2.Cols(in.B)[0]
	outSchema := in.OutSchema()

	heavyEst := mpc.Filter(ests, func(kc mpc.KeyCount[string]) bool { return kc.Count >= thr })
	lightEst := mpc.Filter(ests, func(kc mpc.KeyCount[string]) bool { return kc.Count < thr })

	// Partition R1 rows by the heaviness of their A value.
	split, stSplit := mpc.LookupJoin(in.R1.Part, heavyEst,
		func(r relation.Row[W]) string { return aKey(r) },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	r1Heavy := mpc.Map(mpc.Filter(split, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) bool { return pr.Found }),
		func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) relation.Row[W] { return pr.X })
	r1Light := mpc.Map(mpc.Filter(split, func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) bool { return !pr.Found }),
		func(pr mpc.Pred[relation.Row[W], mpc.KeyCount[string]]) relation.Row[W] { return pr.X })

	st := stSplit

	// Step 2: heavy rows through the Yannakakis algorithm.
	var res2 dist.Rel[W]
	nHeavy, sc := mpc.TotalCount(r1Heavy)
	st = mpc.Seq(st, sc)
	if nHeavy > 0 {
		var s2 mpc.Stats
		res2, s2 = twoway.JoinAgg(sr, dist.Rel[W]{Schema: in.R1.Schema, Part: r1Heavy}, in.R2, outSchema...)
		st = mpc.Seq(st, s2)
	} else {
		res2 = dist.EmptyIn[W](in.R1.Part.Scope(), outSchema, p)
	}

	nLight, sc2 := mpc.TotalCount(r1Light)
	st = mpc.Seq(st, sc2)
	if nLight == 0 {
		return res2, st
	}

	// Pack light A values into groups of total OUT_a ≤ 2T.
	binnedA, _, stPack := mpc.ParallelPack(lightEst, func(kc mpc.KeyCount[string]) int64 { return kc.Count }, thr)
	groupTable := mpc.Map(binnedA, func(b mpc.Binned[mpc.KeyCount[string]]) mpc.KeyBin[string] {
		return mpc.KeyBin[string]{Key: b.X.Key, Bin: b.Bin}
	})
	grouped, stLook := mpc.LookupJoin(r1Light, groupTable,
		func(r relation.Row[W]) string { return aKey(r) },
		func(kb mpc.KeyBin[string]) string { return kb.Key })
	st = mpc.Seq(st, stPack, stLook)

	// Group footprints f_i at the coordinator.
	fCounts, stf := mpc.CountByKey(grouped, func(pr mpc.Pred[relation.Row[W], mpc.KeyBin[string]]) int64 {
		return int64(pr.Y.Bin)
	})
	fGathered, stg := mpc.Gather(fCounts, 0)
	st = mpc.Seq(st, stf, stg)
	foot := append([]mpc.KeyCount[int64](nil), fGathered.Shards[0]...)
	mpc.SortLocal(foot, func(kc mpc.KeyCount[int64]) int64 { return kc.Key })

	// Phase A block layout: group i gets ⌈(f_i + N2)/L⌉ virtual servers.
	type blockA struct {
		group     int64
		f         int64
		off, size int
	}
	blocksA := make([]blockA, 0, len(foot))
	at := 0
	for _, kc := range foot {
		sz := int(ceilDiv(kc.Count+n2, load))
		blocksA = append(blocksA, blockA{group: kc.Key, f: kc.Count, off: at, size: sz})
		at += sz
	}
	totalA := at
	if totalA == 0 {
		return res2, st
	}
	// Broadcast the layout (O(k1) ≤ O(p) entries).
	layPart := mpc.NewPartIn[blockA](ex, p)
	layPart.Shards[0] = blocksA
	layBcast, stb := mpc.Broadcast(layPart)
	st = mpc.Seq(st, stb)
	layout := layBcast.Shards[0]
	blockOf := make(map[int64]blockA, len(layout))
	for _, b := range layout {
		blockOf[b.group] = b
	}

	// Phase A routing: group rows to their block, R2 replicated to every
	// block. Rows gain a synthetic leading G column carrying the group.
	gSchema1 := append([]dist.Attr{"⟨G⟩"}, in.R1.Schema...)
	gSchema2 := append([]dist.Attr{"⟨G⟩"}, in.R2.Schema...)
	outA := make([][][]sideRow[W], p)
	ex.ForEachShardScratch(p, func(src int, sc *xrt.Scratch) {
		gShard := grouped.Shards[src]
		r2Shard := in.R2.Part.Shards[src]
		if len(gShard)+len(r2Shard) == 0 {
			return
		}
		// Memoize destinations so the counted build's two passes pay the
		// key encodings, hashes and map lookups once (-1 marks grouped
		// rows with no block); the synthetic G column is prepended on the
		// fill pass only, when the row is actually placed.
		gDests := sc.Ints(len(gShard))
		for j, pr := range gShard {
			blk, ok := blockOf[int64(pr.Y.Bin)]
			if !ok {
				gDests[j] = -1
				continue
			}
			gDests[j] = blk.off + hashStr(aKey(pr.X), blk.size, seed)
		}
		r2Dests := sc.Ints(len(r2Shard) * len(layout))
		for j, r := range r2Shard {
			ck := cKey(r)
			for l, blk := range layout {
				r2Dests[j*len(layout)+l] = blk.off + hashStr(ck, blk.size, seed^0x51ed)
			}
		}
		outA[src] = mpc.BuildOutbox[sideRow[W]](sc, totalA, "outputSensitive phase A", func(fill bool, emit func(int, sideRow[W])) {
			for j, pr := range gShard {
				d := gDests[j]
				if d < 0 {
					continue
				}
				var row relation.Row[W]
				if fill {
					row = withGroup(int64(pr.Y.Bin), pr.X)
				}
				emit(d, sideRow[W]{left: true, row: row})
			}
			for j, r := range r2Shard {
				for l, blk := range layout {
					var row relation.Row[W]
					if fill {
						row = withGroup(blk.group, r)
					}
					emit(r2Dests[j*len(layout)+l], sideRow[W]{left: false, row: row})
				}
			}
		})
	})
	mpc.TraceOp(ex, "matmul.os.gridA")
	routedA, stA := mpc.ExchangeToIn(ex, totalA, outA)
	st = mpc.Seq(st, stA)

	r1Blk := dist.Rel[W]{Schema: gSchema1, Part: mpc.Map(mpc.Filter(routedA, func(s sideRow[W]) bool { return s.left }),
		func(s sideRow[W]) relation.Row[W] { return s.row })}
	r2Blk := dist.Rel[W]{Schema: gSchema2, Part: mpc.Map(mpc.Filter(routedA, func(s sideRow[W]) bool { return !s.left }),
		func(s sideRow[W]) relation.Row[W] { return s.row })}

	// Per-(group, c) result-count estimates: sketches of distinct A per
	// (G, B), folded through R2 onto (G, C) — §2.2 inside each group, run
	// with global skew-proof primitives over the G column.
	estP := estimate.Params{Seed: seed ^ 0xe57}
	skB, se1 := estimate.SketchValues(r1Blk, append([]dist.Attr{"⟨G⟩"}, in.B), in.ASide(), estP)
	skGC, se2 := estimate.Propagate(r2Blk, append([]dist.Attr{"⟨G⟩"}, in.CSide()...), append([]dist.Attr{"⟨G⟩"}, in.B), skB, estP)
	st = mpc.Seq(st, se1, se2)
	cEst := mpc.Map(skGC, func(ks estimate.KeySketch) mpc.KeyCount[string] {
		e := int64(math.Round(ks.V.Estimate()))
		if e < 1 {
			e = 1
		}
		return mpc.KeyCount[string]{Key: ks.Key, Count: e} // key encodes (G, C…)
	})

	// d(c) within each block: |σ_{C=c}R2| is group-independent, but count
	// it per (G,C) directly off the replicated copies (skew-proof).
	gcCols := r2Blk.Cols(append([]dist.Attr{"⟨G⟩"}, in.CSide()...)...)
	dGC, sd := mpc.CountByKey(r2Blk.Part, func(r relation.Row[W]) string { return relation.EncodeKey(r.Vals, gcCols) })
	st = mpc.Seq(st, sd)

	// Heavy (group, c) pairs: estimated ≥ L results. Join with d(c).
	heavyGC := mpc.Filter(cEst, func(kc mpc.KeyCount[string]) bool { return kc.Count >= load })
	heavyGCd, sj := mpc.LookupJoin(heavyGC, dGC,
		func(kc mpc.KeyCount[string]) string { return kc.Key },
		func(kc mpc.KeyCount[string]) string { return kc.Key })
	st = mpc.Seq(st, sj)
	heavyTbl := mpc.Map(mpc.Filter(heavyGCd, func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) bool { return pr.Found }),
		func(pr mpc.Pred[mpc.KeyCount[string], mpc.KeyCount[string]]) mpc.KeyCount[string] {
			return mpc.KeyCount[string]{Key: pr.X.Key, Count: pr.Y.Count} // (G,C) → d(c)
		})

	// Light (group, c) pairs: pack per group into bins of total estimated
	// results ≤ 2L. Packing runs once per group on the group's stats.
	lightGC := mpc.Filter(cEst, func(kc mpc.KeyCount[string]) bool { return kc.Count < load })
	var binTables []mpc.Part[mpc.KeyBin[string]]
	var packStats []mpc.Stats
	for _, blk := range layout {
		g := blk.group
		mine := mpc.Filter(lightGC, func(kc mpc.KeyCount[string]) bool {
			return relation.DecodeKey(kc.Key)[0] == relation.Value(g)
		})
		binned, _, sp := mpc.ParallelPack(mine, func(kc mpc.KeyCount[string]) int64 { return kc.Count }, load)
		packStats = append(packStats, sp)
		binTables = append(binTables, mpc.Map(binned, func(b mpc.Binned[mpc.KeyCount[string]]) mpc.KeyBin[string] {
			return mpc.KeyBin[string]{Key: b.X.Key, Bin: b.Bin}
		}))
	}
	// Each group packs within its own block; the packs run in parallel.
	st = mpc.Seq(st, mpc.Par(packStats...))
	binTable := mpc.NewPartIn[mpc.KeyBin[string]](ex, totalA)
	for _, bt := range binTables {
		for s, shard := range bt.Shards {
			binTable.Shards[s%totalA] = append(binTable.Shards[s%totalA], shard...)
		}
	}

	// Per-(group,bin) R2 sizes for the Phase B layout.
	binSzPart, sb := binSizes(r2Blk, gcCols, binTable)
	st = mpc.Seq(st, sb)

	// Gather Phase B descriptors at the coordinator.
	heavyG, sg1 := mpc.Gather(heavyTbl, 0)
	binSzG, sg2 := mpc.Gather(binSzPart, 0)
	st = mpc.Seq(st, sg1, sg2)

	type subBlock struct {
		gcKey     string // heavy blocks: the (G,C…) key; bins: the (G,bin) key
		isBin     bool
		off, size int
	}
	var subs []subBlock
	bt := 0
	footOf := make(map[int64]int64, len(layout))
	for _, blk := range layout {
		footOf[blk.group] = blk.f
	}
	hlist := append([]mpc.KeyCount[string](nil), heavyG.Shards[0]...)
	mpc.SortLocal(hlist, func(kc mpc.KeyCount[string]) string { return kc.Key })
	for _, kc := range hlist {
		g := int64(relation.DecodeKey(kc.Key)[0])
		sz := int(ceilDiv(footOf[g]+kc.Count, load))
		subs = append(subs, subBlock{gcKey: kc.Key, off: bt, size: sz})
		bt += sz
	}
	blist := append([]mpc.KeyCount[string](nil), binSzG.Shards[0]...)
	mpc.SortLocal(blist, func(kc mpc.KeyCount[string]) string { return kc.Key })
	for _, kc := range blist {
		g := int64(relation.DecodeKey(kc.Key)[0])
		sz := int(ceilDiv(footOf[g]+kc.Count, load))
		subs = append(subs, subBlock{gcKey: kc.Key, isBin: true, off: bt, size: sz})
		bt += sz
	}
	totalB := bt
	if totalB == 0 {
		return dist.Reshape(res2, p), st
	}
	subPart := mpc.NewPartIn[subBlock](ex, totalA)
	subPart.Shards[0] = subs
	subBcast, sbb := mpc.Broadcast(subPart)
	st = mpc.Seq(st, sbb)
	subList := subBcast.Shards[0]
	heavyBlockOf := make(map[string]subBlock)
	binBlockOf := make(map[string]subBlock)
	perGroupSubs := make(map[int64][]subBlock)
	for _, sb := range subList {
		if sb.isBin {
			binBlockOf[sb.gcKey] = sb
		} else {
			heavyBlockOf[sb.gcKey] = sb
		}
		g := int64(relation.DecodeKey(sb.gcKey)[0])
		perGroupSubs[g] = append(perGroupSubs[g], sb)
	}

	// R2 rows learn their bin (if light) before routing.
	r2WithBin, sl2 := mpc.LookupJoin(r2Blk.Part, binTable,
		func(r relation.Row[W]) string { return relation.EncodeKey(r.Vals, gcCols) },
		func(kb mpc.KeyBin[string]) string { return kb.Key })
	st = mpc.Seq(st, sl2)

	// Phase B routing.
	gCol1 := 0 // G is the leading column on both sides
	b1 := r1Blk.Cols(in.B)[0]
	outB := make([][][]sideRow[W], totalA)
	ex.ForEachShardScratch(totalA, func(src int, sc *xrt.Scratch) {
		r1Shard := r1Blk.Part.Shards[src]
		r2Shard := r2WithBin.Shards[src]
		if len(r1Shard)+len(r2Shard) == 0 {
			return
		}
		// Memoize R2 destinations: the (G,C…) key encodings and block map
		// lookups happen once, not once per counted pass (-1 marks rows
		// that are neither heavy nor binned — the (group, c) pair has no
		// matching group rows, cannot produce output, and is dropped).
		// R1 destinations are cheap arithmetic re-derived per pass.
		r2Dests := sc.Ints(len(r2Shard))
		for j, pr := range r2Shard {
			r := pr.X
			gc := relation.EncodeKey(r.Vals, gcCols)
			b := r.Vals[bCol2+1] // +1 for the leading G column
			if sb, ok := heavyBlockOf[gc]; ok {
				r2Dests[j] = sb.off + hashB(b, sb.size, seed^0xb10c)
				continue
			}
			r2Dests[j] = -1
			if pr.Found {
				g := relation.DecodeKey(gc)[0]
				bk := relation.EncodeKey([]relation.Value{g, relation.Value(pr.Y.Bin)}, []int{0, 1})
				if sb, ok := binBlockOf[bk]; ok {
					r2Dests[j] = sb.off + hashB(b, sb.size, seed^0xb10c)
				}
			}
		}
		outB[src] = mpc.BuildOutbox[sideRow[W]](sc, totalB, "outputSensitive phase B", func(fill bool, emit func(int, sideRow[W])) {
			for _, r := range r1Shard {
				g := int64(r.Vals[gCol1])
				b := r.Vals[b1]
				for _, sb := range perGroupSubs[g] {
					emit(sb.off+hashB(b, sb.size, seed^0xb10c), sideRow[W]{left: true, row: r})
				}
			}
			for j, pr := range r2Shard {
				if d := r2Dests[j]; d >= 0 {
					emit(d, sideRow[W]{left: false, row: pr.X})
				}
			}
		})
	})
	mpc.TraceOp(ex, "matmul.os.gridB")
	routedB, stB := mpc.ExchangeToIn(ex, totalB, outB)
	st = mpc.Seq(st, stB)

	// Local join-aggregate per sub-block server. The G column joins along
	// with B (each sub-block holds one group anyway) and is projected away
	// by aggregating onto the output schema.
	gin := Input[W]{
		R1: dist.Rel[W]{Schema: gSchema1},
		R2: dist.Rel[W]{Schema: gSchema2},
		B:  in.B,
	}
	partials := mpc.MapShards(routedB, func(_ int, shard []sideRow[W]) []relation.Row[W] {
		return localJoinAggOn(sr, gin, outSchema, shard)
	})
	res34, sAgg := dist.ProjectAgg(sr, dist.Rel[W]{Schema: outSchema, Part: partials}, outSchema...)
	st = mpc.Seq(st, sAgg)

	// Steps 2 and 3–4 cover disjoint (a, c) pairs (heavy vs light a).
	final := mpc.Concat(dist.Reshape(res2, p).Part, res34.Part)
	return dist.Rel[W]{Schema: outSchema, Part: final}, st
}

// withGroup prepends a group id column to a row.
func withGroup[W any](g int64, r relation.Row[W]) relation.Row[W] {
	vals := make([]relation.Value, 0, len(r.Vals)+1)
	vals = append(vals, relation.Value(g))
	vals = append(vals, r.Vals...)
	return relation.Row[W]{Vals: vals, W: r.W}
}

// binSizes counts, per (group, bin), the R2 rows whose (G,C) key belongs to
// the bin, returning KeyCounts keyed by EncodeKey(G, bin).
func binSizes[W any](r2Blk dist.Rel[W], gcCols []int, binTable mpc.Part[mpc.KeyBin[string]]) (mpc.Part[mpc.KeyCount[string]], mpc.Stats) {
	looked, st1 := mpc.LookupJoin(r2Blk.Part, binTable,
		func(r relation.Row[W]) string { return relation.EncodeKey(r.Vals, gcCols) },
		func(kb mpc.KeyBin[string]) string { return kb.Key })
	inBin := mpc.Filter(looked, func(pr mpc.Pred[relation.Row[W], mpc.KeyBin[string]]) bool { return pr.Found })
	counts, st2 := mpc.CountByKey(inBin, func(pr mpc.Pred[relation.Row[W], mpc.KeyBin[string]]) string {
		g := relation.DecodeKey(relation.EncodeKey(pr.X.Vals, gcCols))[0]
		return relation.EncodeKey([]relation.Value{g, relation.Value(pr.Y.Bin)}, []int{0, 1})
	})
	return counts, mpc.Seq(st1, st2)
}

// localJoinAggOn is localJoinAgg with explicit schemas and output attrs.
func localJoinAggOn[W any](sr semiring.Semiring[W], in Input[W], outSchema []dist.Attr, shard []sideRow[W]) []relation.Row[W] {
	left := relation.New[W](in.R1.Schema...)
	right := relation.New[W](in.R2.Schema...)
	for _, s := range shard {
		if s.left {
			left.AppendRow(s.row)
		} else {
			right.AppendRow(s.row)
		}
	}
	joined := relation.Join(sr, left, right)
	return relation.ProjectAgg(sr, joined, outSchema...).Rows
}
