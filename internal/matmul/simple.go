package matmul

import (
	"mpcjoin/internal/dist"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

// broadcastSmall handles N1 = O(1) (or symmetrically N2): replicate the
// tiny relation everywhere, join locally against the big one, and run one
// linear-load reduce to merge duplicate output pairs. When N1 = 1 the
// reduce input is at most N2 (no semiring additions are strictly needed,
// per §1.5, but multiset inputs may still carry duplicate tuples, so the
// reduce stays for correctness); the load is O((N1+N2)/p + N_small).
func broadcastSmall[W any](sr semiring.Semiring[W], in Input[W], n1, n2 int64) (dist.Rel[W], mpc.Stats) {
	small, big := in.R1, in.R2
	smallLeft := true
	if n2 < n1 {
		small, big = in.R2, in.R1
		smallLeft = false
	}
	bsmall, st := dist.Broadcast(small)

	partials := mpc.MapShards(big.Part, func(s int, shard []relation.Row[W]) []relation.Row[W] {
		rows := make([]sideRow[W], 0, len(shard)+len(bsmall.Part.Shards[s]))
		for _, r := range bsmall.Part.Shards[s] {
			rows = append(rows, sideRow[W]{left: smallLeft, row: r})
		}
		for _, r := range shard {
			rows = append(rows, sideRow[W]{left: !smallLeft, row: r})
		}
		return localJoinAgg(sr, in, rows)
	})
	res, st2 := dist.ProjectAgg(sr, dist.Rel[W]{Schema: in.OutSchema(), Part: partials}, in.OutSchema()...)
	return res, mpc.Seq(st, st2)
}

// unequalRatio handles N1/N2 < 1/p (or symmetrically > p): after dangling
// removal every C value's degree in R2 is at most N1 ≤ N2/p, so grouping
// R2 by C puts each output group wholly on one server; broadcasting R1
// (which is tiny relative to N2/p) lets each server finish its groups
// locally with no cross-server aggregation at all (§3). Load O((N1+N2)/p).
func unequalRatio[W any](sr semiring.Semiring[W], in Input[W], n1, n2 int64) (dist.Rel[W], mpc.Stats) {
	small, big := in.R1, in.R2
	groupAttrs := in.CSide()
	smallLeft := true
	if n2 < n1 {
		small, big = in.R2, in.R1
		groupAttrs = in.ASide()
		smallLeft = false
	}

	grouped, st1 := dist.GroupBy(big, groupAttrs...)
	bsmall, st2 := dist.Broadcast(small)

	result := mpc.MapShards(grouped.Part, func(s int, shard []relation.Row[W]) []relation.Row[W] {
		rows := make([]sideRow[W], 0, len(shard)+len(bsmall.Part.Shards[s]))
		for _, r := range bsmall.Part.Shards[s] {
			rows = append(rows, sideRow[W]{left: smallLeft, row: r})
		}
		for _, r := range shard {
			rows = append(rows, sideRow[W]{left: !smallLeft, row: r})
		}
		return localJoinAgg(sr, in, rows)
	})
	// Output groups are disjoint across servers (each C value lives on one
	// server), so the local aggregates are final.
	return dist.Rel[W]{Schema: in.OutSchema(), Part: result}, mpc.Seq(st1, st2)
}

// linearSparseMM is the OUT ≤ N/p algorithm of §3.2: co-locate both
// relations by B (every b lands wholly on one server), aggregate locally,
// and merge the per-server partial outputs with one reduce-by-key. After
// dangling removal deg(b) ≤ OUT on either side, so the co-location load is
// O(N/p + OUT) and the final reduce moves at most p·OUT ≤ N rows,
// yielding O(N/p) load overall in its intended regime.
func linearSparseMM[W any](sr semiring.Semiring[W], in Input[W]) (dist.Rel[W], mpc.Stats) {
	p := in.R1.P()
	bCol1 := in.R1.Cols(in.B)[0]
	bCol2 := in.R2.Cols(in.B)[0]

	ex := in.R1.Part.Scope()
	merged := mpc.NewPartIn[sideRow[W]](ex, p)
	ex.ForEachShard(p, func(s int) {
		rows := make([]sideRow[W], 0, len(in.R1.Part.Shards[s])+len(in.R2.Part.Shards[s]))
		for _, r := range in.R1.Part.Shards[s] {
			rows = append(rows, sideRow[W]{left: true, row: r})
		}
		for _, r := range in.R2.Part.Shards[s] {
			rows = append(rows, sideRow[W]{left: false, row: r})
		}
		merged.Shards[s] = rows
	})
	grouped, st1 := mpc.GroupByKey(merged, func(x sideRow[W]) relation.Value {
		if x.left {
			return x.row.Vals[bCol1]
		}
		return x.row.Vals[bCol2]
	})

	partials := mpc.MapShards(grouped, func(_ int, shard []sideRow[W]) []relation.Row[W] {
		return localJoinAgg(sr, in, shard)
	})
	res, st2 := dist.ProjectAgg(sr, dist.Rel[W]{Schema: in.OutSchema(), Part: partials}, in.OutSchema()...)
	return res, mpc.Seq(st1, st2)
}
