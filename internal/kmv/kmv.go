// Package kmv implements the k-minimum-values (KMV) distinct-count sketch
// of Bar-Yossef et al. and Beyer et al., the tool §2.2 of Hu–Yi PODS'20
// uses to obtain constant-factor output-size estimates with linear load.
//
// A sketch applies a fixed hash function to each inserted item and retains
// the k smallest distinct hash values. If v_k is the k-th smallest value as
// a fraction of the hash space, (k−1)/v_k estimates the number of distinct
// items to within (1±ε) with constant probability for k = O(1/ε²). Two
// sketches built with the same hash merge by keeping the k smallest of
// their union — exactly the "⊕" the paper folds through reduce-by-key.
//
// Determinism: hashing is seeded splitmix64, so runs are reproducible; the
// estimate package draws independent seeds per repetition for the
// median-of-O(log N) boosting.
package kmv

import "sort"

// Hash64 is the seeded 64-bit mixer used by all sketches (splitmix64
// finalizer). It is exported so workload generators and tests can construct
// adversarial inputs against a known hash family.
func Hash64(x uint64, seed uint64) uint64 {
	z := x + seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sketch is a KMV sketch: the K smallest distinct hash values seen so far,
// sorted ascending. The zero Sketch is unusable; construct with New.
// Sketches are value types; Insert and Merge return the updated sketch.
//
// A Sketch costs O(K) units of communication, so with constant K it is a
// constant-size message — the property the §2.2 estimator's linear load
// depends on.
type Sketch struct {
	K    int
	Seed uint64
	// Vals holds the at-most-K smallest distinct hash values, ascending.
	Vals []uint64
}

// New returns an empty sketch with capacity k and the given hash seed.
func New(k int, seed uint64) Sketch {
	if k < 2 {
		panic("kmv: k must be at least 2")
	}
	return Sketch{K: k, Seed: seed}
}

// Insert adds an item and returns the updated sketch.
func (s Sketch) Insert(item uint64) Sketch {
	h := Hash64(item, s.Seed)
	i := sort.Search(len(s.Vals), func(i int) bool { return s.Vals[i] >= h })
	if i < len(s.Vals) && s.Vals[i] == h {
		return s // distinct values only
	}
	if len(s.Vals) == s.K && i == s.K {
		return s // larger than current k-th minimum
	}
	vals := make([]uint64, 0, min(len(s.Vals)+1, s.K))
	vals = append(vals, s.Vals[:i]...)
	vals = append(vals, h)
	vals = append(vals, s.Vals[i:]...)
	if len(vals) > s.K {
		vals = vals[:s.K]
	}
	s.Vals = vals
	return s
}

// Merge combines two sketches built with the same K and Seed: the result is
// the sketch of the union of their underlying sets. Merge is associative,
// commutative and idempotent, making it a valid reduce-by-key combiner.
func Merge(a, b Sketch) Sketch {
	if a.K != b.K || a.Seed != b.Seed {
		panic("kmv: merging incompatible sketches")
	}
	// Sketch values are immutable once built (Insert and Merge copy on
	// write), so when one side contributes nothing the other can be
	// returned as-is without copying its values.
	if len(b.Vals) == 0 {
		return a
	}
	if len(a.Vals) == 0 {
		return Sketch{K: a.K, Seed: a.Seed, Vals: b.Vals}
	}
	vals := AppendMerge(make([]uint64, 0, min(len(a.Vals)+len(b.Vals), a.K)), a, b)
	return Sketch{K: a.K, Seed: a.Seed, Vals: vals}
}

// AppendMerge appends the merged value list of a and b (the K smallest of
// their union, ascending, deduplicated) to dst and returns the extended
// slice. It is the allocation-free core of Merge for callers that batch
// many merges into one backing buffer; dst must not alias a.Vals or b.Vals.
func AppendMerge(dst []uint64, a, b Sketch) []uint64 {
	if a.K != b.K || a.Seed != b.Seed {
		panic("kmv: merging incompatible sketches")
	}
	n := 0
	i, j := 0, 0
	for (i < len(a.Vals) || j < len(b.Vals)) && n < a.K {
		switch {
		case j >= len(b.Vals) || (i < len(a.Vals) && a.Vals[i] < b.Vals[j]):
			dst = append(dst, a.Vals[i])
			i++
		case i >= len(a.Vals) || b.Vals[j] < a.Vals[i]:
			dst = append(dst, b.Vals[j])
			j++
		default: // equal
			dst = append(dst, a.Vals[i])
			i++
			j++
		}
		n++
	}
	return dst
}

// Estimate returns the estimated number of distinct inserted items:
// exact when fewer than K distinct values were seen, (K−1)/v_K otherwise.
func (s Sketch) Estimate() float64 {
	if len(s.Vals) < s.K {
		return float64(len(s.Vals))
	}
	vk := float64(s.Vals[s.K-1]) / float64(^uint64(0))
	if vk == 0 {
		return float64(s.K)
	}
	return float64(s.K-1) / vk
}

// IsExact reports whether Estimate is an exact distinct count (the sketch
// never filled up).
func (s Sketch) IsExact() bool { return len(s.Vals) < s.K }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
