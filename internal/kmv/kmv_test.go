package kmv

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactBelowK(t *testing.T) {
	s := New(16, 1)
	for i := uint64(0); i < 10; i++ {
		s = s.Insert(i)
		s = s.Insert(i) // duplicates must not count
	}
	if !s.IsExact() {
		t.Fatal("sketch with <K distinct items must be exact")
	}
	if got := s.Estimate(); got != 10 {
		t.Fatalf("estimate = %v, want exactly 10", got)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	// With k=256 the standard error is ~1/√k ≈ 6%; demand within 25% on a
	// handful of seeds to keep the test robust and fast.
	const n = 50000
	for seed := uint64(1); seed <= 5; seed++ {
		s := New(256, seed)
		for i := uint64(0); i < n; i++ {
			s = s.Insert(i * 2654435761) // arbitrary distinct items
		}
		est := s.Estimate()
		if est < 0.75*n || est > 1.25*n {
			t.Fatalf("seed %d: estimate %v too far from %d", seed, est, n)
		}
	}
}

func TestMergeEqualsBulkInsert(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(30) + 2
		hs := uint64(seed)*7 + 3
		a, b, both := New(k, hs), New(k, hs), New(k, hs)
		for i := 0; i < 200; i++ {
			x := uint64(rng.Intn(500))
			if rng.Intn(2) == 0 {
				a = a.Insert(x)
			} else {
				b = b.Insert(x)
			}
			both = both.Insert(x)
		}
		m := Merge(a, b)
		if len(m.Vals) != len(both.Vals) {
			return false
		}
		for i := range m.Vals {
			if m.Vals[i] != both.Vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAlgebraicLaws(t *testing.T) {
	mk := func(rng *rand.Rand, k int, seed uint64) Sketch {
		s := New(k, seed)
		for i, n := 0, rng.Intn(100); i < n; i++ {
			s = s.Insert(uint64(rng.Intn(300)))
		}
		return s
	}
	eq := func(a, b Sketch) bool {
		if len(a.Vals) != len(b.Vals) {
			return false
		}
		for i := range a.Vals {
			if a.Vals[i] != b.Vals[i] {
				return false
			}
		}
		return true
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(20) + 2
		hs := uint64(seed) ^ 0xabc
		a, b, c := mk(rng, k, hs), mk(rng, k, hs), mk(rng, k, hs)
		if !eq(Merge(a, b), Merge(b, a)) {
			return false
		}
		if !eq(Merge(Merge(a, b), c), Merge(a, Merge(b, c))) {
			return false
		}
		return eq(Merge(a, a), a) // idempotent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchValsStaySortedAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(10) + 2
		s := New(k, uint64(seed))
		for i := 0; i < 500; i++ {
			s = s.Insert(uint64(rng.Int63()))
			if len(s.Vals) > k {
				return false
			}
			if !sort.SliceIsSorted(s.Vals, func(i, j int) bool { return s.Vals[i] < s.Vals[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValueSemantics(t *testing.T) {
	s := New(4, 9)
	s1 := s.Insert(1)
	if len(s.Vals) != 0 {
		t.Fatal("Insert mutated the receiver")
	}
	s2 := s1.Insert(2)
	if len(s1.Vals) != 1 || len(s2.Vals) != 2 {
		t.Fatal("value semantics broken")
	}
}

func TestHash64SeedSeparation(t *testing.T) {
	// Different seeds must behave like independent hash functions: the
	// fraction of colliding outputs over a sample should be ≈ 0.
	coll := 0
	for i := uint64(0); i < 1000; i++ {
		if Hash64(i, 1) == Hash64(i, 2) {
			coll++
		}
	}
	if coll > 0 {
		t.Fatalf("%d collisions between seeds", coll)
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Merge(New(4, 1), New(8, 1))
}

func TestEstimateMedianConvergence(t *testing.T) {
	// Median of several independent estimates should be closer than the
	// worst single estimate — sanity check for the boosting the estimate
	// package applies.
	const n, reps = 20000, 9
	ests := make([]float64, reps)
	for r := range ests {
		s := New(64, uint64(r)+101)
		for i := uint64(0); i < n; i++ {
			s = s.Insert(i)
		}
		ests[r] = s.Estimate()
	}
	sort.Float64s(ests)
	med := ests[reps/2]
	if math.Abs(med-n)/n > 0.3 {
		t.Fatalf("median estimate %v too far from %d", med, n)
	}
}
