// Package yannakakis implements the distributed Yannakakis algorithm
// (§1.2, §1.4 of Hu–Yi PODS'20): the baseline every new algorithm in this
// module is compared against, and the subroutine the new algorithms invoke
// for their "use the Yannakakis algorithm" steps.
//
// The algorithm removes dangling tuples with a distributed full reducer,
// then folds leaves of the join tree into their parents bottom-up, each
// fold being an optimal two-way join followed by an early ⊕-aggregation
// that keeps only output attributes and attributes still needed by
// unmerged relations. Its load is O(N/p + J/p) where J is the maximum
// intermediate join size — O(OUT) for free-connex queries, N·√OUT for
// matrix multiplication, N·OUT^{1−1/n} for stars, and N·OUT in general,
// which is precisely the column of Table 1 the paper improves on.
//
// Execution: the folds themselves are sequentially dependent (a parent is
// joined only after its child leaves fold in), but each fold's per-server
// work — the twoway local hash joins and the ProjectAgg local combines —
// runs concurrently on the ambient mpc runtime, one worker per simulated
// server. Folding order, results and metered Stats are identical under any
// worker count.
package yannakakis

import (
	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/twoway"
)

// Run evaluates the tree join-aggregate query over distributed relations
// and returns the distributed result (one row per output tuple).
func Run[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W]) (dist.Rel[W], mpc.Stats) {
	reduced, st := dist.RemoveDangling(q, rels)
	res, st2 := RunNoReduce(sr, q, reduced)
	return res, mpc.Seq(st, st2)
}

// RunNoReduce is Run without the dangling-removal pass — for callers that
// have already reduced the instance (the paper's algorithms remove
// dangling tuples once up front and then invoke Yannakakis on subqueries).
func RunNoReduce[W any](sr semiring.Semiring[W], q *hypergraph.Query, rels map[string]dist.Rel[W]) (dist.Rel[W], mpc.Stats) {
	order, parent := q.JoinTree()

	cur := make([]dist.Rel[W], len(q.Edges))
	for i, e := range q.Edges {
		cur[i] = rels[e.Name]
	}
	var st mpc.Stats

	p := cur[order[0]].P()
	for i := len(order) - 1; i >= 1; i-- {
		leaf := order[i]
		par := parent[leaf]
		joined, _, s1 := twoway.Join(sr, cur[leaf], cur[par])
		keep := keepAttrs(q, order[:i], joined.Schema, par, cur)
		agg, s2 := dist.ProjectAgg(sr, joined, keep...)
		// The join output spans O(p) virtual servers; pin the fold result
		// back onto the p physical hosts for the next step.
		cur[par] = dist.Reshape(agg, p)
		st = mpc.Seq(st, s1, s2)
	}

	root := cur[order[0]]
	final, s := dist.ProjectAgg(sr, root, q.Output...)
	return final, mpc.Seq(st, s)
}

// keepAttrs selects the attributes of schema that are outputs of q or
// still occur in an unmerged relation — everything else is aggregated away
// as early as possible (the π_{y ∪ anc(e')} of the original algorithm).
func keepAttrs[W any](q *hypergraph.Query, remaining []int, schema []dist.Attr, self int, cur []dist.Rel[W]) []dist.Attr {
	needed := make(map[dist.Attr]bool)
	for _, a := range q.Output {
		needed[a] = true
	}
	for _, i := range remaining {
		if i == self {
			continue
		}
		for _, a := range cur[i].Schema {
			needed[a] = true
		}
	}
	var keep []dist.Attr
	for _, a := range schema {
		if needed[a] {
			keep = append(keep, a)
		}
	}
	return keep
}

// RunOnInstance distributes a sequential instance over p servers and runs
// the algorithm — the convenience entry point used by benchmarks and the
// public API.
func RunOnInstance[W any](sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], p int) (dist.Rel[W], mpc.Stats, error) {
	if err := db.Validate(q, inst); err != nil {
		return dist.Rel[W]{}, mpc.Stats{}, err
	}
	rels := make(map[string]dist.Rel[W], len(q.Edges))
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelation(inst[e.Name], p)
	}
	res, st := Run(sr, q, rels)
	return res, st, nil
}
