package yannakakis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
)

var intSR = semiring.IntSumProd{}

func intEq(a, b int64) bool { return a == b }

func randomInstance(rng *rand.Rand, q *hypergraph.Query, n, dom int) db.Instance[int64] {
	inst := make(db.Instance[int64])
	for _, e := range q.Edges {
		r := relation.New[int64](e.Attrs...)
		for i := 0; i < n; i++ {
			vals := make([]relation.Value, len(e.Attrs))
			for j := range vals {
				vals[j] = relation.Value(rng.Intn(dom))
			}
			r.AppendRow(relation.Row[int64]{Vals: vals, W: int64(rng.Intn(4) + 1)})
		}
		inst[e.Name] = r
	}
	return inst
}

func checkAgainstReference(t *testing.T, q *hypergraph.Query, seeds int, n, dom int) {
	t.Helper()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		inst := randomInstance(rng, q, n, dom)
		p := rng.Intn(10) + 2
		got, _, err := RunOnInstance[int64](intSR, q, inst, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want) {
			t.Fatalf("query %s seed %d p %d: distributed %v != reference %v",
				refengine.String(q), seed, p, dist.ToRelation(got), want)
		}
	}
}

func TestMatMulAgainstReference(t *testing.T) {
	checkAgainstReference(t, hypergraph.MatMulQuery(), 8, 40, 6)
}

func TestLineQueriesAgainstReference(t *testing.T) {
	checkAgainstReference(t, hypergraph.LineQuery(3), 6, 30, 5)
	checkAgainstReference(t, hypergraph.LineQuery(4), 4, 25, 5)
}

func TestStarQueriesAgainstReference(t *testing.T) {
	checkAgainstReference(t, hypergraph.StarQuery(3), 6, 30, 5)
	checkAgainstReference(t, hypergraph.StarQuery(4), 4, 20, 5)
}

func TestStarLikeAndTwigAgainstReference(t *testing.T) {
	checkAgainstReference(t, hypergraph.Fig1StarLike(), 3, 12, 10)
	checkAgainstReference(t, hypergraph.Fig3Twig(), 3, 12, 10)
}

func TestFreeConnexAndScalarAgainstReference(t *testing.T) {
	fullJoin := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
	}, "A", "B", "C")
	checkAgainstReference(t, fullJoin, 5, 30, 5)

	scalar := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Bin("R2", "B", "C"),
	})
	checkAgainstReference(t, scalar, 5, 30, 5)
}

func TestSingleEdgeQuery(t *testing.T) {
	q := hypergraph.NewQuery([]hypergraph.Edge{hypergraph.Bin("R", "A", "B")}, "A")
	checkAgainstReference(t, q, 4, 30, 5)
}

func TestUnaryEdgeQuery(t *testing.T) {
	q := hypergraph.NewQuery([]hypergraph.Edge{
		hypergraph.Bin("R1", "A", "B"), hypergraph.Un("U", "B"),
	}, "A")
	checkAgainstReference(t, q, 4, 25, 5)
}

func TestEmptyAnswer(t *testing.T) {
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A", "B")
	r1.Append(1, 1, 10)
	r2 := relation.New[int64]("B", "C")
	r2.Append(1, 99, 5)
	inst["R1"], inst["R2"] = r1, r2
	got, _, err := RunOnInstance[int64](intSR, q, inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 {
		t.Fatalf("expected empty answer, got %v", dist.ToRelation(got))
	}
}

func TestIdempotentSemiring(t *testing.T) {
	q := hypergraph.LineQuery(3)
	boolSR := semiring.BoolOrAnd{}
	rng := rand.New(rand.NewSource(77))
	inst := make(db.Instance[bool])
	for _, e := range q.Edges {
		r := relation.New[bool](e.Attrs...)
		for i := 0; i < 30; i++ {
			r.Append(true, relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		inst[e.Name] = r
	}
	got, _, err := RunOnInstance[bool](boolSR, q, inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refengine.BruteForce[bool](boolSR, q, inst)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal[bool](boolSR, boolSR.Equal, dist.ToRelation(got), want) {
		t.Fatal("boolean semiring mismatch")
	}
}

func TestQuickRandomTrees(t *testing.T) {
	// Random small tree queries with random output sets, validated and
	// checked against the reference engine.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := rng.Intn(4) + 2
		attrs := make([]hypergraph.Attr, nAttrs)
		for i := range attrs {
			attrs[i] = hypergraph.Attr(rune('A' + i))
		}
		var edges []hypergraph.Edge
		for i := 1; i < nAttrs; i++ {
			parent := rng.Intn(i)
			edges = append(edges, hypergraph.Bin(
				"R"+string(rune('0'+i)), attrs[parent], attrs[i]))
		}
		var out []hypergraph.Attr
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				out = append(out, a)
			}
		}
		q := hypergraph.NewQuery(edges, out...)
		if err := q.Validate(); err != nil {
			return true // skip degenerate shapes
		}
		inst := randomInstance(rng, q, 15, 4)
		got, _, err := RunOnInstance[int64](intSR, q, inst, rng.Intn(6)+2)
		if err != nil {
			return false
		}
		want, err := refengine.Yannakakis[int64](intSR, q, inst)
		if err != nil {
			return false
		}
		return relation.Equal[int64](intSR, intEq, dist.ToRelation(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadScalesWithIntermediateJoin(t *testing.T) {
	// On matmul with a single hot B value, J = N²/4, so the baseline load
	// must be Ω(J/p) — this is the weakness §3 fixes. Verify the measured
	// load indeed tracks J/p (within constants), establishing the baseline
	// behavior the experiments compare against.
	const half, p = 60, 4
	q := hypergraph.MatMulQuery()
	inst := make(db.Instance[int64])
	r1 := relation.New[int64]("A", "B")
	r2 := relation.New[int64]("B", "C")
	for i := 0; i < half; i++ {
		r1.Append(1, relation.Value(i), 0)
		r2.Append(1, 0, relation.Value(i))
	}
	inst["R1"], inst["R2"] = r1, r2
	_, st, err := RunOnInstance[int64](intSR, q, inst, p)
	if err != nil {
		t.Fatal(err)
	}
	j := half * half
	if st.MaxLoad < j/p/4 {
		t.Fatalf("baseline load %d suspiciously below J/p = %d — J-shuffle not happening?", st.MaxLoad, j/p)
	}
}
