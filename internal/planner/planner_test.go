package planner

import (
	"strings"
	"testing"

	"mpcjoin/internal/hypergraph"
)

// rank is a sweep helper: every Rank call in this file also checks the
// structural invariants every plan must satisfy.
func rank(t *testing.T, in Input) Plan {
	t.Helper()
	pl := Rank(in)
	if pl.Chosen == "" {
		t.Fatalf("empty Chosen for %+v", in)
	}
	if len(pl.Candidates) == 0 {
		t.Fatalf("no candidates for %+v", in)
	}
	if pl.Candidates[0].Engine != pl.Chosen {
		t.Fatalf("Chosen %q != first candidate %q", pl.Chosen, pl.Candidates[0].Engine)
	}
	if pl.PredictedLoad != pl.Candidates[0].PredictedLoad {
		t.Fatalf("PredictedLoad %v != first candidate's %v", pl.PredictedLoad, pl.Candidates[0].PredictedLoad)
	}
	if !pl.Candidates[0].Feasible {
		t.Fatalf("chose infeasible candidate %+v", pl.Candidates[0])
	}
	for i := 1; i < len(pl.Candidates); i++ {
		a, b := pl.Candidates[i-1], pl.Candidates[i]
		if !a.Feasible && b.Feasible {
			t.Fatalf("infeasible %q ranked before feasible %q", a.Engine, b.Engine)
		}
		if a.Feasible == b.Feasible && a.PredictedLoad > b.PredictedLoad {
			t.Fatalf("candidates out of order: %q (%v) before %q (%v)",
				a.Engine, a.PredictedLoad, b.Engine, b.PredictedLoad)
		}
	}
	legal := map[string]bool{}
	for _, e := range Legal(in.Class) {
		legal[e] = true
	}
	if !legal[pl.Chosen] {
		t.Fatalf("chosen %q not legal for class %s", pl.Chosen, in.Class)
	}
	return pl
}

// TestDecisionMatrix sweeps the cost model across the regimes where each
// candidate's formula dominates and asserts the crossover decisions.
func TestDecisionMatrix(t *testing.T) {
	cases := []struct {
		name string
		in   Input
		want string
	}{
		// Matmul: at OUT ≪ N/p the linear branch is exactly the input
		// sort floor; worstcase pays N/√p and outsens sort(N+OUT) > floor.
		{"matmul/linear-at-tiny-out",
			Input{Class: hypergraph.ClassMatMul, P: 16, N: 160000, NMax: 80000,
				N1: 80000, N2: 80000, Out: 16, J: 100000000},
			EngineMatMulLinear},
		// Matmul: dense output (OUT ≈ N²/16) gates the linear branch off
		// and makes every OUT-sensitive term dwarf the N/√p grid.
		{"matmul/worstcase-at-dense-out",
			Input{Class: hypergraph.ClassMatMul, P: 16, N: 20000, NMax: 10000,
				N1: 10000, N2: 10000, Out: 25000000, J: 25000000},
			EngineMatMulWorstCase},
		// Matmul: mid-size OUT past the linear gate but well under N·√p —
		// the cube-root branch beats the worst-case grid.
		{"matmul/outsens-between",
			Input{Class: hypergraph.ClassMatMul, P: 16, N: 4000, NMax: 2000,
				N1: 2000, N2: 2000, Out: 300, J: 1000000},
			EngineMatMulOutSens},
		// Line: a huge measured fold intermediate prices yannakakis out;
		// the chain assembly only ever touches OUT/p plus the scratch cap.
		{"line/chain-at-huge-fold",
			Input{Class: hypergraph.ClassLine, P: 16, N: 30000, NMax: 10000,
				Out: 100, J: 2000000, MaxFold: 1000000, MaxImage: 1000000},
			EngineLine},
		// Line: tiny fold images with a large output make the chain pay
		// OUT/p + (p+2)² while the fold pipeline stays at the sort floor.
		{"line/yann-at-tiny-fold",
			Input{Class: hypergraph.ClassLine, P: 16, N: 3000, NMax: 1000,
				Out: 16000, J: 1600, MaxFold: 1600, MaxImage: 10},
			EngineYannakakis},
		// Star: the root-keyed product receive (N+Nmax+OUT)/p loses to a
		// cheap fold profile...
		{"star/yann-at-small-fold",
			Input{Class: hypergraph.ClassStar, P: 16, N: 30000, NMax: 10000,
				Out: 100, J: 500000, MaxFold: 100, MaxImage: 10},
			EngineYannakakis},
		// ...and wins when the fold intermediate blows up.
		{"star/star-at-huge-fold",
			Input{Class: hypergraph.ClassStar, P: 16, N: 30000, NMax: 10000,
				Out: 100, J: 2000000, MaxFold: 1000000, MaxImage: 1000000},
			EngineStar},
		// Star-like shares the chain assembly shape with line.
		{"star-like/chain-at-huge-fold",
			Input{Class: hypergraph.ClassStarLike, P: 16, N: 30000, NMax: 10000,
				Out: 100, J: 2000000, MaxFold: 1000000, MaxImage: 1000000},
			EngineStarLike},
		// Free-connex emits only the fold pipeline and the tree engine.
		{"free-connex/yann-first-on-tie",
			Input{Class: hypergraph.ClassFreeConnex, P: 16, N: 30000, NMax: 10000},
			EngineYannakakis},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pl := rank(t, c.in)
			if pl.Chosen != c.want {
				t.Fatalf("chose %q, want %q; candidates %+v", pl.Chosen, c.want, pl.Candidates)
			}
		})
	}
}

// TestTieOrder pins the emission-order tie breaks: when every candidate
// bottoms out at the input-sort floor, the class's preferred engine wins.
func TestTieOrder(t *testing.T) {
	// Line at OUT=0 with no profiled folds: chain = yann = floor. The
	// fold pipeline is emitted first (no scratch grids), and among the
	// tied specializations the class engine precedes tree.
	pl := rank(t, Input{Class: hypergraph.ClassLine, P: 16, N: 30000, NMax: 10000})
	if pl.Chosen != EngineYannakakis {
		t.Fatalf("line tie chose %q, want yannakakis; %+v", pl.Chosen, pl.Candidates)
	}
	if a, b := pl.Candidates[1], pl.Candidates[2]; a.Engine != EngineLine || b.Engine != EngineTree {
		t.Fatalf("tied specializations out of emission order: %q then %q", a.Engine, b.Engine)
	}
	if pl.Candidates[1].PredictedLoad != pl.PredictedLoad {
		t.Fatalf("expected a three-way tie, got %+v", pl.Candidates)
	}
	// Tree class: the tree engine is itself a fold and keeps precedence
	// over the baseline at a tie.
	pl = rank(t, Input{Class: hypergraph.ClassTree, P: 16, N: 20000, NMax: 10000})
	if pl.Chosen != EngineTree {
		t.Fatalf("tree tie chose %q, want tree; %+v", pl.Chosen, pl.Candidates)
	}
}

// TestInfeasibleNeverChosen gates matmul-linear off and checks it ranks
// last even when its instantiated load is the smallest of the field.
func TestInfeasibleNeverChosen(t *testing.T) {
	in := Input{Class: hypergraph.ClassMatMul, P: 16, N: 4000, NMax: 2000,
		N1: 2000, N2: 2000, Out: 300, J: 1000000}
	pl := rank(t, in)
	var linear *Candidate
	for i := range pl.Candidates {
		if pl.Candidates[i].Engine == EngineMatMulLinear {
			linear = &pl.Candidates[i]
		}
	}
	if linear == nil {
		t.Fatal("linear candidate not reported")
	}
	if linear.Feasible {
		t.Fatalf("OUT=300 > N/p=250 must gate the linear branch off: %+v", linear)
	}
	if last := pl.Candidates[len(pl.Candidates)-1]; last.Engine != EngineMatMulLinear {
		t.Fatalf("infeasible linear must rank last, got %q", last.Engine)
	}
	if linear.PredictedLoad >= pl.PredictedLoad {
		t.Fatalf("test regime lost its point: linear %v not below chosen %v",
			linear.PredictedLoad, pl.PredictedLoad)
	}
}

// TestMatMulFastPaths mirrors Theorem 1's degenerate dispatches: they
// short-circuit to the composite matmul engine with no cost comparison.
func TestMatMulFastPaths(t *testing.T) {
	pl := rank(t, Input{Class: hypergraph.ClassMatMul, P: 8, N: 5001, NMax: 5000,
		N1: 1, N2: 5000, Out: 5000})
	if pl.Chosen != EngineMatMul || !strings.Contains(pl.Reason, "broadcast") {
		t.Fatalf("broadcast fast path: %q (%s)", pl.Chosen, pl.Reason)
	}
	pl = rank(t, Input{Class: hypergraph.ClassMatMul, P: 8, N: 100100, NMax: 100000,
		N1: 100, N2: 100000, Out: 1000})
	if pl.Chosen != EngineMatMul || !strings.Contains(pl.Reason, "ratio") {
		t.Fatalf("unequal-ratio fast path: %q (%s)", pl.Chosen, pl.Reason)
	}
}

// TestSweepInvariants runs the structural checks over a broad input grid —
// every class, several cluster sizes, and output/fold regimes spanning the
// crossovers — so no corner of the matrix can panic, pick an infeasible
// candidate, or return an unsorted plan.
func TestSweepInvariants(t *testing.T) {
	classes := []hypergraph.Class{
		hypergraph.ClassMatMul, hypergraph.ClassLine, hypergraph.ClassStar,
		hypergraph.ClassStarLike, hypergraph.ClassFreeConnex, hypergraph.ClassTree,
	}
	for _, class := range classes {
		for _, p := range []int{1, 4, 16, 64} {
			for _, n := range []int64{0, 100, 100000} {
				for _, out := range []int64{0, 1, n / 2, 10 * n} {
					for _, fold := range []int64{0, out, 100 * (out + 1)} {
						in := Input{Class: class, P: p, N: 3 * n, NMax: n,
							N1: n, N2: n, Out: out, J: fold + out,
							MaxFold: fold, MaxImage: fold / 2}
						rank(t, in)
					}
				}
			}
		}
	}
}

// TestForcedAndLegal pins the trivial-plan constructor and the per-class
// legal engine sets core's dispatch accepts.
func TestForcedAndLegal(t *testing.T) {
	pl := Forced(hypergraph.ClassLine, EngineTree, "forced by test")
	if pl.Chosen != EngineTree || pl.Class != "line" || pl.Reason != "forced by test" {
		t.Fatalf("forced plan %+v", pl)
	}
	if len(pl.Candidates) != 0 {
		t.Fatalf("forced plan must not rank candidates: %+v", pl.Candidates)
	}
	want := map[hypergraph.Class][]string{
		hypergraph.ClassMatMul:     {EngineMatMul, EngineMatMulLinear, EngineMatMulWorstCase, EngineMatMulOutSens, EngineYannakakis},
		hypergraph.ClassLine:       {EngineLine, EngineTree, EngineYannakakis},
		hypergraph.ClassStar:       {EngineStar, EngineTree, EngineYannakakis},
		hypergraph.ClassStarLike:   {EngineStarLike, EngineTree, EngineYannakakis},
		hypergraph.ClassFreeConnex: {EngineYannakakis, EngineTree},
		hypergraph.ClassTree:       {EngineTree, EngineYannakakis},
	}
	for class, engines := range want {
		got := Legal(class)
		if len(got) != len(engines) {
			t.Fatalf("Legal(%s) = %v, want %v", class, got, engines)
		}
		for i := range got {
			if got[i] != engines[i] {
				t.Fatalf("Legal(%s) = %v, want %v", class, got, engines)
			}
		}
	}
}
