// Package planner is the cost model behind StrategyAuto: it instantiates
// each candidate engine's Table 1 load profile with the exact per-relation
// input sizes of the concrete instance and the estimate pre-pass's OUT,
// full-join and fold-intermediate predictions, and ranks the class's legal
// candidates by predicted load.
//
// The package is pure arithmetic over sizes — it never touches relations
// or the mpc plane. The estimate-only pre-pass that produces the OUT,
// join-cardinality and fold predictions (§2.2 kmv sketches plus an exact
// count fold) lives in internal/estimate; internal/core runs it and feeds
// the numbers in here. Keeping the model side-effect free is what lets the
// decision-matrix tests sweep it across regimes without building data.
//
// The model prices what the simulation's exchange plane actually meters.
// Every distributed collection of size M an engine materializes passes
// through a sample sort whose measured per-round MaxLoad is
//
//	sortCost(M) = max(M/p, min(M, p²))
//
// — the balanced reshuffle M/p plus the regular-sampling gather, in which
// every holder sends min(p, local) samples to one coordinator. Table 1's
// data-dependent worst-case terms (N·√OUT/p and friends) bound the skew
// handling of the specialized engines; the collections they sort are what
// distinguishes the engines on a concrete instance, so the formulas below
// are those collection inventories priced by sortCost. Ranking then
// reduces to comparing the engines' largest materialized intermediates —
// exactly the min{·,·} crossovers of Table 1, with the Yannakakis
// candidate's intermediate bounded by the measured fold profile instead of
// the full join J (early ⊕-aggregation keeps its folds near the
// aggregated images when J ≫ OUT).
package planner

import (
	"fmt"
	"math"
	"sort"

	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
)

// Engine names understood by core's dispatch. The planner ranks a subset
// of these per class; all of them are accepted as forced candidates.
const (
	EngineYannakakis      = "yannakakis"
	EngineTree            = "tree"
	EngineLine            = "line"
	EngineStar            = "star"
	EngineStarLike        = "star-like"
	EngineMatMul          = "matmul" // Theorem 1 auto dispatch (fast paths included)
	EngineMatMulLinear    = "matmul-linear"
	EngineMatMulWorstCase = "matmul-worstcase"
	EngineMatMulOutSens   = "matmul-outsens"
)

// Candidate is one engine the planner considered, with the load its
// Table 1 formula predicts for this instance.
type Candidate struct {
	// Engine is the dispatch name (e.g. "matmul-worstcase").
	Engine string `json:"engine"`
	// PredictedLoad is the instantiated formula value, in tuples.
	PredictedLoad float64 `json:"predicted_load"`
	// Formula is the symbolic form that was instantiated.
	Formula string `json:"formula"`
	// Feasible is false when the formula's precondition fails on this
	// instance (e.g. matmul-linear requires OUT ≤ (N1+N2)/p). Infeasible
	// candidates are reported but never chosen.
	Feasible bool `json:"feasible"`
}

// Plan is the full, explainable outcome of planning one execution. It is
// surfaced verbatim through Result.Plan, the /v2/query explain block and
// the /v2/plan dry-run endpoint.
type Plan struct {
	// Class is the structural class of the query ("matmul", "line", …).
	Class string `json:"class"`
	// Chosen is the engine the plan selects.
	Chosen string `json:"chosen"`
	// Reason says why Chosen won (cost crossover, fast path, or forced).
	Reason string `json:"reason"`
	// Candidates are the ranked alternatives, best first. Empty for
	// forced strategies (nothing was compared).
	Candidates []Candidate `json:"candidates,omitempty"`
	// PredictedOut is the pre-pass output-size prediction (0 when the
	// plan was forced or an oracle short-circuited the sketches).
	PredictedOut int64 `json:"predicted_out,omitempty"`
	// PredictedJoin is the predicted full-join cardinality feeding the
	// yannakakis candidate.
	PredictedJoin int64 `json:"predicted_join,omitempty"`
	// PredictedLoad is Chosen's predicted load.
	PredictedLoad float64 `json:"predicted_load,omitempty"`
	// MeasuredLoad is the execution's measured MaxLoad, filled in after
	// the run (0 for dry-run plans that never execute).
	MeasuredLoad int `json:"measured_load,omitempty"`
	// EstimateStats meters the estimate-only pre-pass. It is kept out of
	// the execution Stats so an auto run's Stats stay bit-identical to
	// the same engine forced directly.
	EstimateStats mpc.Stats `json:"estimate_stats,omitempty"`
}

// Input carries the instance sizes the cost model is instantiated with.
type Input struct {
	Class hypergraph.Class
	// P is the number of servers.
	P int
	// N is the total input size Σ|Ri|; NMax the largest single relation.
	N, NMax int64
	// N1, N2 are the two matmul sides in LineView order (0 outside
	// ClassMatMul).
	N1, N2 int64
	// Out is the predicted output size; J the predicted full-join
	// cardinality (J ≥ Out).
	Out, J int64
	// MaxFold is the estimate fold's largest pre-aggregation intermediate
	// (see estimate.TreeOutProfile) — the Yannakakis candidate's per-fold
	// join size under early aggregation. 0 means "not profiled"; the model
	// falls back to min(J, NMax+Out).
	MaxFold int64
	// MaxImage is the fold profile's largest aggregated image consumed as
	// fold-join input (the root image, which no fold consumes, excluded).
	// 0 means "not profiled"; the model falls back to Out.
	MaxImage int64
}

// Rank instantiates every legal candidate's formula for the class and
// returns the ranked plan. It never returns an empty Chosen: every class
// has at least one always-feasible candidate.
func Rank(in Input) Plan {
	p := float64(in.P)
	if p < 1 {
		p = 1
	}
	n, nmax := float64(in.N), float64(in.NMax)
	out, j := float64(in.Out), float64(in.J)
	// sortCost prices one distributed sample sort of a collection of size
	// M: the balanced range-partition reshuffle (M/p per server) and the
	// regular-sampling gather (each holder sends min(p, local) samples to
	// one coordinator, so the coordinator receives min(M, p²)).
	sortCost := func(m float64) float64 {
		return math.Max(m/p, math.Min(m, p*p))
	}
	// Every engine first sorts its input relations (dangling removal /
	// initial placement touches each tuple plus its reducer messages).
	floor := sortCost(2 * nmax)
	// foldJ is the Yannakakis candidate's largest pre-aggregation fold
	// intermediate: the profiled value when the pre-pass ran, else the
	// early-aggregation cap min(J, NMax+OUT) — a fold joins one relation
	// against an aggregated image, which the output plus the relation's
	// own rows bound. img is the largest aggregated image itself (the
	// input side of that join), falling back to OUT.
	foldJ := float64(in.MaxFold)
	if in.MaxFold <= 0 {
		foldJ = math.Min(j, nmax+out)
	}
	img := float64(in.MaxImage)
	if in.MaxImage <= 0 {
		img = out
	}

	pl := Plan{Class: in.Class.String(), PredictedOut: in.Out, PredictedJoin: in.J}

	// Matmul fast paths mirror Theorem 1's dispatch: they need no
	// estimates and no cost comparison, so short-circuit like the engine
	// itself does.
	if in.Class == hypergraph.ClassMatMul {
		fast := math.Max(floor, sortCost(out))
		if in.N1 <= 1 || in.N2 <= 1 {
			pl.Chosen = EngineMatMul
			pl.Reason = "broadcast fast path: one side has at most one tuple"
			pl.Candidates = []Candidate{{Engine: EngineMatMul, PredictedLoad: fast, Formula: "sort(N) + sort(OUT)", Feasible: true}}
			pl.PredictedLoad = fast
			return pl
		}
		if in.N1*int64(in.P) < in.N2 || in.N2*int64(in.P) < in.N1 {
			pl.Chosen = EngineMatMul
			pl.Reason = "unequal-ratio fast path: size ratio exceeds p"
			pl.Candidates = []Candidate{{Engine: EngineMatMul, PredictedLoad: fast, Formula: "sort(N) + sort(OUT)", Feasible: true}}
			pl.PredictedLoad = fast
			return pl
		}
	}

	// The Yannakakis baseline folds leaves into parents. Each fold is a
	// grid two-way join whose per-server receive is twice the join's load
	// target max(inputs/p, √(Jfold/p)) — servers receive the fold's inputs
	// (the edge relation plus the aggregated subtree image), never its
	// output, which is produced locally — followed by an early-aggregation
	// sort of the fold intermediate. That sort's reshuffle runs where the
	// grid join left the collection, a subcluster of d(p) = max(3, (√p−1)²)
	// effective targets (calibrated against the sweep's measured fold
	// rounds), over the intermediate after local pre-combination — bounded
	// by the fold's aggregated result OUT+Nmax. Its sample gather sees the
	// un-combined intermediate (samples leave before runs collapse), hence
	// the min(Jfold, p²) cap on the raw fold size.
	d := math.Max(3, (math.Sqrt(p)-1)*(math.Sqrt(p)-1))
	foldSort := math.Max(math.Min(foldJ, out+nmax)/d, math.Min(foldJ, p*p))
	yann := Candidate{
		Engine:        EngineYannakakis,
		PredictedLoad: math.Max(floor, math.Max(2*math.Max((nmax+img)/p, math.Sqrt(foldJ/p)), foldSort)),
		Formula:       "max(sort(2·Nmax), 2·max((Nmax+IMG)/p, √(Jfold/p)), min(Jfold, OUT+Nmax)/d(p), min(Jfold, p²))",
		Feasible:      true,
	}
	// The specialized engines assemble the output from heavy/light-
	// decomposed pair lists, and their residual matmul subjoins run on
	// scratch grids spanning up to p+2 servers — so their sample gathers
	// are capped by min(·, (p+2)²), not p². What differs per engine (per
	// sweep calibration) is how the gather round composes with the
	// assembly reshuffle. (Their Table 1 skew terms — Nmax·√OUT/p and
	// friends — bound the heavy-value handling, which these collection
	// prices subsume on concrete instances: heavy values inflate the
	// collections, never the per-sort structure.)
	scratch := math.Min(n+out, (p+2)*(p+2))
	// Chain assembly (line, star-like): the accumulated output list is
	// threaded through a chain of pair-list joins (the pair lists ride
	// inside it, so the reshuffle is OUT/p), and the scratch-grid gather
	// piggybacks on the reshuffle round, so the two add.
	chainSpec := func(engine string) Candidate {
		return Candidate{
			Engine:        engine,
			PredictedLoad: math.Max(floor, out/p+scratch),
			Formula:       "max(sort(2·Nmax), OUT/p + min(N+OUT, (p+2)²))",
			Feasible:      true,
		}
	}
	// Product assembly (star): one root-keyed product joins all branch
	// lists at once — the N/p + OUT/p receive of Table 1's star bound —
	// and the gather stays a round of its own, so the terms max.
	starSpec := func(engine string) Candidate {
		return Candidate{
			Engine:        engine,
			PredictedLoad: math.Max(floor, math.Max((n+nmax+out)/p, scratch)),
			Formula:       "max(sort(2·Nmax), (N+Nmax+OUT)/p, min(N+OUT, (p+2)²))",
			Feasible:      true,
		}
	}
	// Generic tree join: assembly sorts see only the aggregated output
	// relation, so the gather operand is Nmax+OUT rather than the raw
	// carried collection.
	treeSpec := func(engine string) Candidate {
		return Candidate{
			Engine:        engine,
			PredictedLoad: math.Max(floor, math.Max((nmax+out)/p, math.Min(nmax+out, (p+2)*(p+2)))),
			Formula:       "max(sort(2·Nmax), (Nmax+OUT)/p, min(Nmax+OUT, (p+2)²))",
			Feasible:      true,
		}
	}

	// Candidates are emitted in tie-preference order: predictions compare
	// coarse collection inventories, so exact ties are common (several
	// engines pinned to the same sample-gather cap, say), and the stable
	// sort keeps the earlier candidate. The matmul specializations come
	// first in their class — at a tie the cheaper algorithm wins. The
	// pair-list specializations (line, star, star-like) buy their skew
	// bounds with residual matmul grids whose sample gathers span scratch
	// servers beyond p, so at a tie the simpler fold pipeline measures no
	// worse and yannakakis is emitted first; the tree engine is itself a
	// fold and keeps precedence over the baseline in its own class.
	var cands []Candidate
	switch in.Class {
	case hypergraph.ClassMatMul:
		n12 := float64(in.N1) * float64(in.N2)
		cands = []Candidate{
			{
				Engine:        EngineMatMulLinear,
				PredictedLoad: math.Max(floor, math.Max(sortCost(float64(in.N1)), math.Max(sortCost(float64(in.N2)), sortCost(out)))),
				Formula:       "max(sort(N1), sort(N2), sort(OUT))  [OUT ≤ N/p]",
				Feasible:      float64(in.Out) <= (float64(in.N1)+float64(in.N2))/p,
			},
			{
				Engine:        EngineMatMulWorstCase,
				PredictedLoad: math.Max(floor, (float64(in.N1)+float64(in.N2))/math.Sqrt(p)),
				Formula:       "max(sort(N), N/√p)",
				Feasible:      true,
			},
			{
				Engine:        EngineMatMulOutSens,
				PredictedLoad: math.Max(floor, math.Max(math.Cbrt(n12*out)/math.Cbrt(p*p), sortCost(n+out))),
				Formula:       "max(sort(N), (N1·N2·OUT)^{1/3}/p^{2/3}, sort(N+OUT))",
				Feasible:      true,
			},
			yann,
		}
	// Inside line/star/star-like classes the tree engine follows the same
	// assembly shape as the class engine on that instance, so it is priced
	// by the class formula, not by treeSpec.
	case hypergraph.ClassLine:
		cands = []Candidate{yann, chainSpec(EngineLine), chainSpec(EngineTree)}
	case hypergraph.ClassStar:
		cands = []Candidate{yann, starSpec(EngineStar), starSpec(EngineTree)}
	case hypergraph.ClassStarLike:
		cands = []Candidate{yann, chainSpec(EngineStarLike), chainSpec(EngineTree)}
	case hypergraph.ClassFreeConnex:
		cands = []Candidate{yann, treeSpec(EngineTree)}
	default: // ClassTree
		cands = []Candidate{treeSpec(EngineTree), yann}
	}

	sort.SliceStable(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.Feasible != cb.Feasible {
			return ca.Feasible
		}
		return ca.PredictedLoad < cb.PredictedLoad
	})
	pl.Candidates = cands
	pl.Chosen = cands[0].Engine
	pl.PredictedLoad = cands[0].PredictedLoad
	pl.Reason = fmt.Sprintf("min predicted load %.0f among %d candidates (IN=%d, OUT≈%d, p=%d)",
		cands[0].PredictedLoad, len(cands), in.N, in.Out, in.P)
	return pl
}

// Forced builds the trivial plan for an execution whose engine was fixed
// up front (forced strategy or Options.Engine), so Result.Plan is always
// populated.
func Forced(class hypergraph.Class, engine, why string) Plan {
	return Plan{Class: class.String(), Chosen: engine, Reason: why}
}

// Legal returns the engines core's dispatch accepts for a class, in the
// planner's preference order. The first entry is the class-default engine
// the pre-planner dispatch used.
func Legal(class hypergraph.Class) []string {
	switch class {
	case hypergraph.ClassMatMul:
		return []string{EngineMatMul, EngineMatMulLinear, EngineMatMulWorstCase, EngineMatMulOutSens, EngineYannakakis}
	case hypergraph.ClassLine:
		return []string{EngineLine, EngineTree, EngineYannakakis}
	case hypergraph.ClassStar:
		return []string{EngineStar, EngineTree, EngineYannakakis}
	case hypergraph.ClassStarLike:
		return []string{EngineStarLike, EngineTree, EngineYannakakis}
	case hypergraph.ClassFreeConnex:
		return []string{EngineYannakakis, EngineTree}
	default:
		return []string{EngineTree, EngineYannakakis}
	}
}
