package hypergraph

import "fmt"

// ReduceStep is one preprocessing step of §7: remove relation Remove by
// ⊗-attaching its ⊕-aggregate (grouped by the shared attributes On) onto
// relation Into. Executing a step assumes dangling tuples were already
// removed, so every Into tuple has at least one matching Remove group.
type ReduceStep struct {
	// Remove and Into are edge names in the query the step was planned on.
	Remove string
	Into   string
	// On is the set of shared attributes the aggregate is grouped by.
	On []Attr
}

// ReducePlan computes the §7 preprocessing of a valid query: iteratively
// remove an edge e if (1) e has a single attribute, or (2) some non-output
// attribute appears only in e. Each removal attaches e's aggregate onto an
// overlapping neighbor. The returned query is the reduced tree — in which
// every leaf attribute is an output attribute (unless only one edge
// remains) — along with the data-level steps, in execution order.
func ReducePlan(q *Query) (*Query, []ReduceStep) {
	cur := &Query{Edges: append([]Edge(nil), q.Edges...), Output: q.Output}
	var steps []ReduceStep
	for len(cur.Edges) > 1 {
		idx := cur.removableEdge()
		if idx < 0 {
			break
		}
		e := cur.Edges[idx]
		into, on := cur.absorber(idx)
		steps = append(steps, ReduceStep{Remove: e.Name, Into: cur.Edges[into].Name, On: on})
		cur.Edges = append(cur.Edges[:idx:idx], cur.Edges[idx+1:]...)
	}
	return cur, steps
}

// removableEdge returns the index of an edge matching the §7 removal
// conditions, or -1. Unary edges are preferred; then edges with a private
// non-output attribute.
func (q *Query) removableEdge() int {
	for i, e := range q.Edges {
		if e.IsUnary() {
			return i
		}
	}
	for i, e := range q.Edges {
		for _, a := range e.Attrs {
			if !q.IsOutput(a) && q.Degree(a) == 1 {
				return i
			}
		}
	}
	return -1
}

// absorber picks the neighbor edge that will absorb edge idx and the
// shared attributes to group by.
func (q *Query) absorber(idx int) (int, []Attr) {
	e := q.Edges[idx]
	for j, f := range q.Edges {
		if j == idx {
			continue
		}
		var shared []Attr
		for _, a := range e.Attrs {
			if f.Has(a) {
				shared = append(shared, a)
			}
		}
		if len(shared) > 0 {
			return j, shared
		}
	}
	panic(fmt.Sprintf("hypergraph: edge %q has no overlapping neighbor; query not connected", e.Name))
}

// Twig is one piece of the twig decomposition of a reduced query: a
// connected subquery in which every output attribute is a leaf. Boundary
// records the break vertices the twig shares with the rest of the tree
// (always output attributes; they are the keys the twig results are joined
// back on).
type Twig struct {
	Query    *Query
	Boundary []Attr
}

// Twigs decomposes a reduced query by breaking it at every non-leaf output
// attribute (Figure 2). Two edges belong to the same twig iff they are
// connected through non-break attributes. Each twig's output set is the
// set of its attributes that are outputs of q; in a reduced query these
// are exactly the twig's leaves.
func Twigs(q *Query) []Twig {
	breaks := make(map[Attr]bool)
	for _, a := range q.Attrs() {
		if q.IsOutput(a) && q.Degree(a) >= 2 {
			breaks[a] = true
		}
	}

	// Union-find on edges; union edges sharing a non-break attribute.
	parent := make([]int, len(q.Edges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	byAttr := make(map[Attr][]int)
	for i, e := range q.Edges {
		for _, a := range e.Attrs {
			if !breaks[a] {
				byAttr[a] = append(byAttr[a], i)
			}
		}
	}
	for _, idxs := range byAttr {
		for _, i := range idxs[1:] {
			union(idxs[0], i)
		}
	}

	groups := make(map[int][]int)
	var order []int
	for i := range q.Edges {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}

	var out []Twig
	for _, r := range order {
		tq := &Query{}
		attrSeen := make(map[Attr]bool)
		for _, i := range groups[r] {
			tq.Edges = append(tq.Edges, q.Edges[i])
			for _, a := range q.Edges[i].Attrs {
				attrSeen[a] = true
			}
		}
		var boundary []Attr
		for _, a := range tq.Attrs() {
			if q.IsOutput(a) {
				tq.Output = append(tq.Output, a)
			}
			if breaks[a] {
				boundary = append(boundary, a)
			}
		}
		out = append(out, Twig{Query: tq, Boundary: boundary})
	}
	return out
}

// Skeleton is the §7 skeleton decomposition of a twig that is not
// star-like (Figure 3): TS is the twig with every pendant star-like
// subtree contracted to its root, Pendants maps each such root B to the
// contracted subquery T_B (whose outputs are its leaves; B itself is the
// non-output center), and S lists the leaves of TS.
type Skeleton struct {
	TS       *Query
	Pendants map[Attr]*Query
	// S is the leaf set of TS, sorted. S ∩ ȳ is exactly the pendant roots.
	S []Attr
}

// SkeletonOf computes the skeleton of a twig query. It requires the twig
// to have at least two attributes appearing in more than two relations
// (otherwise the twig is star-like / line / star and has no skeleton);
// callers should classify first. Returns nil if the precondition fails.
func SkeletonOf(q *Query) *Skeleton {
	// V* = attributes in ≥ 3 edges.
	var vstar []Attr
	inVstar := make(map[Attr]bool)
	for _, a := range q.Attrs() {
		if q.Degree(a) >= 3 {
			vstar = append(vstar, a)
			inVstar[a] = true
		}
	}
	if len(vstar) < 2 {
		return nil
	}

	adj := q.vertexAdj()

	// T_{V*}: minimal subtree connecting V*. Compute by iteratively pruning
	// leaves not in V* from a copy of the vertex tree.
	deg := make(map[Attr]int)
	alive := make(map[Attr]bool)
	aliveEdge := make(map[int]bool)
	for a, hs := range adj {
		deg[a] = len(hs)
		alive[a] = true
	}
	for i := range q.Edges {
		aliveEdge[i] = true
	}
	changed := true
	for changed {
		changed = false
		for a := range alive {
			if !alive[a] || inVstar[a] || deg[a] != 1 {
				continue
			}
			// Prune leaf a and its single alive edge.
			for _, h := range adj[a] {
				if aliveEdge[h.edge] && alive[h.to] {
					aliveEdge[h.edge] = false
					deg[h.to]--
					break
				}
			}
			alive[a] = false
			deg[a] = 0
			changed = true
		}
	}
	// Leaves of T_{V*}: alive vertices with alive-degree 1 (all in V*).
	tvDeg := make(map[Attr]int)
	for i, e := range q.Edges {
		if aliveEdge[i] {
			tvDeg[e.Attrs[0]]++
			tvDeg[e.Attrs[1]]++
		}
	}
	var tvLeaves []Attr
	for a, d := range tvDeg {
		if d == 1 {
			tvLeaves = append(tvLeaves, a)
		}
	}

	// For each T_{V*} leaf B: T_B is B's component of the twig after
	// removing B's T_{V*}-incident edge — everything hanging off B away
	// from the skeleton interior.
	pendants := make(map[Attr]*Query)
	pendantEdges := make(map[int]bool)
	for _, b := range tvLeaves {
		eB := -1
		for _, h := range adj[b] {
			if aliveEdge[h.edge] {
				eB = h.edge
				break
			}
		}
		tb := &Query{}
		// BFS from b avoiding eB.
		seen := map[Attr]bool{b: true}
		queue := []Attr{b}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, h := range adj[v] {
				if h.edge == eB || pendantEdges[h.edge] {
					continue
				}
				pendantEdges[h.edge] = true
				tb.Edges = append(tb.Edges, q.Edges[h.edge])
				if !seen[h.to] {
					seen[h.to] = true
					queue = append(queue, h.to)
				}
			}
		}
		for _, a := range tb.Attrs() {
			if q.IsOutput(a) {
				tb.Output = append(tb.Output, a)
			}
		}
		pendants[b] = tb
	}

	// TS = twig minus pendant edges.
	ts := &Query{}
	for i, e := range q.Edges {
		if !pendantEdges[i] {
			ts.Edges = append(ts.Edges, e)
		}
	}
	for _, a := range ts.Attrs() {
		if q.IsOutput(a) {
			ts.Output = append(ts.Output, a)
		}
	}

	// S = leaves of TS.
	tsDeg := make(map[Attr]int)
	for _, e := range ts.Edges {
		tsDeg[e.Attrs[0]]++
		tsDeg[e.Attrs[1]]++
	}
	var s []Attr
	for a, d := range tsDeg {
		if d == 1 {
			s = append(s, a)
		}
	}
	sortAttrs(s)
	return &Skeleton{TS: ts, Pendants: pendants, S: s}
}

func sortAttrs(as []Attr) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}
