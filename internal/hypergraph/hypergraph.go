// Package hypergraph models the class of queries studied in Hu–Yi PODS'20:
// join-aggregate queries whose hypergraph is a tree with binary (or, before
// preprocessing, unary) hyperedges, with an arbitrary set of output
// attributes.
//
// The package is purely structural: it validates queries, classifies them
// (free-connex, matrix multiplication, line, star, star-like, general
// tree), and computes the decompositions the paper's algorithms are built
// from — the §7 preprocessing reduction, the twig decomposition at non-leaf
// output attributes (Figure 2), and the skeleton of a twig (Figure 3).
// Executing queries over data is the job of the algorithm packages.
package hypergraph

import (
	"fmt"
	"slices"
	"strings"

	"mpcjoin/internal/relation"
)

// Attr names a query attribute (a vertex of the hypergraph).
type Attr = relation.Attr

// Edge is one relation symbol of the query: a hyperedge over one or two
// attributes.
type Edge struct {
	// Name identifies the relation (must be unique within a query).
	Name string
	// Attrs lists the edge's attributes: length 1 or 2, distinct.
	Attrs []Attr
}

// IsUnary reports whether the edge has a single attribute.
func (e Edge) IsUnary() bool { return len(e.Attrs) == 1 }

// Other returns the endpoint of a binary edge different from a.
func (e Edge) Other(a Attr) Attr {
	if e.IsUnary() {
		panic(fmt.Sprintf("hypergraph: Other on unary edge %s", e.Name))
	}
	if e.Attrs[0] == a {
		return e.Attrs[1]
	}
	if e.Attrs[1] == a {
		return e.Attrs[0]
	}
	panic(fmt.Sprintf("hypergraph: %q not an endpoint of edge %s%v", a, e.Name, e.Attrs))
}

// Has reports whether the edge contains attribute a.
func (e Edge) Has(a Attr) bool {
	for _, x := range e.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Query is a join-aggregate query: a set of edges plus the output
// attributes y. Non-output attributes are aggregated away with ⊕.
type Query struct {
	Edges  []Edge
	Output []Attr
}

// NewQuery is a convenience constructor.
func NewQuery(edges []Edge, output ...Attr) *Query {
	return &Query{Edges: edges, Output: output}
}

// Bin builds a binary edge.
func Bin(name string, a, b Attr) Edge { return Edge{Name: name, Attrs: []Attr{a, b}} }

// Un builds a unary edge.
func Un(name string, a Attr) Edge { return Edge{Name: name, Attrs: []Attr{a}} }

// Attrs returns all attributes, in first-appearance order.
func (q *Query) Attrs() []Attr {
	seen := make(map[Attr]bool)
	var out []Attr
	for _, e := range q.Edges {
		for _, a := range e.Attrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// IsOutput reports whether a is an output attribute.
func (q *Query) IsOutput(a Attr) bool {
	for _, o := range q.Output {
		if o == a {
			return true
		}
	}
	return false
}

// EdgesAt returns the indices of edges containing a.
func (q *Query) EdgesAt(a Attr) []int {
	var out []int
	for i, e := range q.Edges {
		if e.Has(a) {
			out = append(out, i)
		}
	}
	return out
}

// Degree returns the number of edges containing a (counting unary edges).
func (q *Query) Degree(a Attr) int { return len(q.EdgesAt(a)) }

// Validate checks that the query is well-formed and its hypergraph is a
// tree: edges have 1 or 2 distinct attributes, unique names, no two binary
// edges connect the same pair, the binary edges form a connected acyclic
// graph spanning all attributes, and every output attribute occurs in some
// edge.
func (q *Query) Validate() error {
	if len(q.Edges) == 0 {
		return fmt.Errorf("hypergraph: query has no edges")
	}
	names := make(map[string]bool)
	pairs := make(map[[2]Attr]bool)
	for _, e := range q.Edges {
		if names[e.Name] {
			return fmt.Errorf("hypergraph: duplicate edge name %q", e.Name)
		}
		names[e.Name] = true
		switch len(e.Attrs) {
		case 1:
		case 2:
			if e.Attrs[0] == e.Attrs[1] {
				return fmt.Errorf("hypergraph: edge %q is a self-loop on %q", e.Name, e.Attrs[0])
			}
			k := [2]Attr{e.Attrs[0], e.Attrs[1]}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			if pairs[k] {
				return fmt.Errorf("hypergraph: parallel edges between %q and %q", k[0], k[1])
			}
			pairs[k] = true
		default:
			return fmt.Errorf("hypergraph: edge %q has arity %d; only 1 or 2 supported", e.Name, len(e.Attrs))
		}
	}

	attrs := q.Attrs()
	// The binary edges must form a spanning tree of the attribute set:
	// connected and |binary edges| = |attrs| − 1. Attributes that appear
	// only in unary edges are permitted only if they are the sole attribute
	// (single-vertex query).
	var nBin int
	adj := make(map[Attr][]Attr)
	for _, e := range q.Edges {
		if !e.IsUnary() {
			nBin++
			adj[e.Attrs[0]] = append(adj[e.Attrs[0]], e.Attrs[1])
			adj[e.Attrs[1]] = append(adj[e.Attrs[1]], e.Attrs[0])
		}
	}
	if nBin == 0 {
		if len(attrs) != 1 {
			return fmt.Errorf("hypergraph: %d attributes but no binary edges", len(attrs))
		}
	} else {
		if nBin != len(attrs)-1 {
			return fmt.Errorf("hypergraph: %d binary edges over %d attributes is not a tree", nBin, len(attrs))
		}
		// Connectivity check by BFS from attrs[0].
		seen := map[Attr]bool{attrs[0]: true}
		queue := []Attr{attrs[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(seen) != len(attrs) {
			return fmt.Errorf("hypergraph: query graph is disconnected")
		}
	}

	seenOut := make(map[Attr]bool)
	all := make(map[Attr]bool, len(attrs))
	for _, a := range attrs {
		all[a] = true
	}
	for _, o := range q.Output {
		if !all[o] {
			return fmt.Errorf("hypergraph: output attribute %q not in query", o)
		}
		if seenOut[o] {
			return fmt.Errorf("hypergraph: duplicate output attribute %q", o)
		}
		seenOut[o] = true
	}
	return nil
}

// JoinTree roots the query's join tree at edge 0 and returns the edges in
// BFS order together with each edge's parent index (-1 for the root). Two
// edges are adjacent in the join tree when they share an attribute; for
// valid tree queries the BFS parents satisfy the running-intersection
// property, so semijoin reducers and Yannakakis folds over this order are
// correct.
func (q *Query) JoinTree() (order []int, parent []int) {
	n := len(q.Edges)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	seen := make([]bool, n)
	order = []int{0}
	seen[0] = true
	for at := 0; at < len(order); at++ {
		cur := order[at]
		for i, e := range q.Edges {
			if seen[i] {
				continue
			}
			if edgesShareAttr(q.Edges[cur], e) {
				seen[i] = true
				parent[i] = cur
				order = append(order, i)
			}
		}
	}
	if len(order) != n {
		panic("hypergraph: JoinTree on disconnected query")
	}
	return order, parent
}

func edgesShareAttr(a, b Edge) bool {
	for _, x := range a.Attrs {
		for _, y := range b.Attrs {
			if x == y {
				return true
			}
		}
	}
	return false
}

// SharedAttrs returns the attributes common to two edges.
func SharedAttrs(a, b Edge) []Attr {
	var out []Attr
	for _, x := range a.Attrs {
		for _, y := range b.Attrs {
			if x == y {
				out = append(out, x)
			}
		}
	}
	return out
}

// vertexAdj returns the vertex adjacency of the binary edges: for each
// attribute, the (neighbor, edge index) pairs.
type halfEdge struct {
	to   Attr
	edge int
}

func (q *Query) vertexAdj() map[Attr][]halfEdge {
	adj := make(map[Attr][]halfEdge)
	for i, e := range q.Edges {
		if e.IsUnary() {
			if _, ok := adj[e.Attrs[0]]; !ok {
				adj[e.Attrs[0]] = nil
			}
			continue
		}
		adj[e.Attrs[0]] = append(adj[e.Attrs[0]], halfEdge{to: e.Attrs[1], edge: i})
		adj[e.Attrs[1]] = append(adj[e.Attrs[1]], halfEdge{to: e.Attrs[0], edge: i})
	}
	return adj
}

// IsFreeConnex reports whether the output attributes form a connected
// subtree of the query tree (the footnote-1 definition for tree queries).
// The empty output set counts as free-connex: a full ⊕-aggregate is
// computable bottom-up with linear intermediate results.
func (q *Query) IsFreeConnex() bool {
	if len(q.Output) == 0 {
		return true
	}
	out := make(map[Attr]bool, len(q.Output))
	for _, a := range q.Output {
		out[a] = true
	}
	adj := q.vertexAdj()
	// BFS within the induced subgraph on output attributes.
	start := q.Output[0]
	seen := map[Attr]bool{start: true}
	queue := []Attr{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, h := range adj[v] {
			if out[h.to] && !seen[h.to] {
				seen[h.to] = true
				queue = append(queue, h.to)
			}
		}
	}
	return len(seen) == len(q.Output)
}

// Class labels the structural class of a query, from most to least special.
type Class int

const (
	// ClassFreeConnex: output attributes form a connected subtree;
	// the distributed Yannakakis algorithm already achieves O((N+OUT)/p).
	ClassFreeConnex Class = iota
	// ClassMatMul: ∑_B R1(A,B) ⋈ R2(B,C) with y = {A, C} — §3.
	ClassMatMul
	// ClassLine: a path with the two endpoints as the only outputs — §4.
	ClassLine
	// ClassStar: n ≥ 3 relations sharing a non-output center — §5.
	ClassStar
	// ClassStarLike: line queries joined at a shared non-output center,
	// with all leaves output and all internal attributes non-output — §6.
	ClassStarLike
	// ClassTree: everything else in the tree class — §7.
	ClassTree
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassFreeConnex:
		return "free-connex"
	case ClassMatMul:
		return "matmul"
	case ClassLine:
		return "line"
	case ClassStar:
		return "star"
	case ClassStarLike:
		return "star-like"
	case ClassTree:
		return "tree"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify returns the most specific class of a valid query. Queries with
// unary edges are ClassTree (the §7 preprocessing removes them first)
// unless free-connex.
func (q *Query) Classify() Class {
	if q.IsFreeConnex() {
		return ClassFreeConnex
	}
	for _, e := range q.Edges {
		if e.IsUnary() {
			return ClassTree
		}
	}
	if v, ok := q.LineView(); ok {
		if len(v.EdgeOrder) == 2 {
			return ClassMatMul
		}
		return ClassLine
	}
	if _, ok := q.StarView(); ok {
		return ClassStar
	}
	if _, ok := q.StarLikeView(); ok {
		return ClassStarLike
	}
	return ClassTree
}

// LineView describes a line query ∑ R1(A1,A2) ⋈ … ⋈ Rn(An,An+1) with
// y = {A1, An+1}.
type LineView struct {
	// Vertices is the path A1, …, A_{n+1}.
	Vertices []Attr
	// EdgeOrder[i] is the index in Query.Edges of the relation on
	// (Vertices[i], Vertices[i+1]).
	EdgeOrder []int
}

// LineView recognizes a line query: the graph is a path of ≥ 2 edges, the
// two endpoints are exactly the output attributes, and the interior is
// non-output. The orientation is normalized so Vertices[0] is the smaller
// attribute name (deterministic across runs).
func (q *Query) LineView() (*LineView, bool) {
	adj := q.vertexAdj()
	var leaves []Attr
	for a, hs := range adj {
		switch len(hs) {
		case 0:
			return nil, false
		case 1:
			leaves = append(leaves, a)
		case 2:
		default:
			return nil, false
		}
	}
	if len(leaves) != 2 || len(q.Edges) < 2 {
		return nil, false
	}
	slices.Sort(leaves)
	// Outputs must be exactly the two leaves.
	if len(q.Output) != 2 {
		return nil, false
	}
	outs := append([]Attr(nil), q.Output...)
	slices.Sort(outs)
	if outs[0] != leaves[0] || outs[1] != leaves[1] {
		return nil, false
	}
	// Walk the path from leaves[0].
	v := &LineView{Vertices: []Attr{leaves[0]}}
	cur, prevEdge := leaves[0], -1
	for {
		var next *halfEdge
		for i := range adj[cur] {
			if adj[cur][i].edge != prevEdge {
				next = &adj[cur][i]
				break
			}
		}
		if next == nil {
			break
		}
		v.Vertices = append(v.Vertices, next.to)
		v.EdgeOrder = append(v.EdgeOrder, next.edge)
		cur, prevEdge = next.to, next.edge
	}
	if len(v.EdgeOrder) != len(q.Edges) {
		return nil, false
	}
	return v, true
}

// StarView describes a star query ∑_B R1(A1,B) ⋈ … ⋈ Rn(An,B) with
// y = {A1, …, An}.
type StarView struct {
	Center Attr
	// Leaves[i] is the output endpoint of Query.Edges[ArmEdge[i]].
	Leaves  []Attr
	ArmEdge []int
}

// StarView recognizes a star query with n ≥ 2 arms: all edges share one
// non-output center, and the outputs are exactly the leaves.
func (q *Query) StarView() (*StarView, bool) {
	if len(q.Edges) < 2 {
		return nil, false
	}
	// Candidate center: intersection of the first two edges.
	var center Attr
	found := false
	for _, a := range q.Edges[0].Attrs {
		if q.Edges[1].Has(a) {
			center, found = a, true
			break
		}
	}
	if !found || q.IsOutput(center) {
		return nil, false
	}
	v := &StarView{Center: center}
	for i, e := range q.Edges {
		if !e.Has(center) || e.IsUnary() {
			return nil, false
		}
		leaf := e.Other(center)
		if !q.IsOutput(leaf) {
			return nil, false
		}
		v.Leaves = append(v.Leaves, leaf)
		v.ArmEdge = append(v.ArmEdge, i)
	}
	if len(q.Output) != len(q.Edges) {
		return nil, false
	}
	return v, true
}

// Arm is one arm of a star-like query: a path from the center B (excluded)
// out to the output leaf. Edges[0] is incident to the center; the vertex
// sequence runs Inner[0] (adjacent to B) … Leaf.
type Arm struct {
	// Leaf is the arm's output endpoint A_i.
	Leaf Attr
	// Inner are the non-output attributes C_ih, …, C_i1 strictly between
	// the center and the leaf, ordered from the center outward.
	Inner []Attr
	// Edges are the arm's edge indices ordered from the center outward.
	Edges []int
}

// StarLikeView describes a star-like query (§6): n ≥ 2 line-query arms
// sharing a non-output center B; leaves are exactly the outputs.
type StarLikeView struct {
	Center Attr
	Arms   []Arm
}

// StarLikeView recognizes a star-like query. The center is the unique
// attribute of degree ≥ 3; pure paths (degree ≤ 2 everywhere) are line or
// matmul queries and are not matched here.
func (q *Query) StarLikeView() (*StarLikeView, bool) {
	adj := q.vertexAdj()
	var center Attr
	nCenters := 0
	for a, hs := range adj {
		if len(hs) >= 3 {
			center = a
			nCenters++
		}
	}
	if nCenters != 1 || q.IsOutput(center) {
		return nil, false
	}
	v := &StarLikeView{Center: center}
	nOut := 0
	for _, h := range adj[center] {
		arm := Arm{Edges: []int{h.edge}}
		cur, prevEdge := h.to, h.edge
		for {
			if len(adj[cur]) > 2 {
				return nil, false // second branch point
			}
			var next *halfEdge
			for i := range adj[cur] {
				if adj[cur][i].edge != prevEdge {
					next = &adj[cur][i]
					break
				}
			}
			if next == nil {
				break
			}
			if q.IsOutput(cur) {
				return nil, false // internal output attribute
			}
			arm.Inner = append(arm.Inner, cur)
			arm.Edges = append(arm.Edges, next.edge)
			cur, prevEdge = next.to, next.edge
		}
		if !q.IsOutput(cur) {
			return nil, false // leaf must be output
		}
		arm.Leaf = cur
		nOut++
		v.Arms = append(v.Arms, arm)
	}
	if nOut != len(q.Output) {
		return nil, false
	}
	// Deterministic arm order: by leaf name.
	slices.SortFunc(v.Arms, func(a, b Arm) int { return strings.Compare(string(a.Leaf), string(b.Leaf)) })
	return v, true
}
