package hypergraph

import (
	"sort"
	"testing"
)

func mustValidate(t *testing.T, q *Query) {
	t.Helper()
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateAcceptsPaperQueries(t *testing.T) {
	for _, q := range []*Query{
		MatMulQuery(), LineQuery(3), LineQuery(5), StarQuery(3), StarQuery(5),
		Fig1StarLike(), Fig2Tree(), Fig3Twig(),
	} {
		mustValidate(t, q)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
	}{
		{"empty", &Query{}},
		{"dup edge name", NewQuery([]Edge{Bin("R", "A", "B"), Bin("R", "B", "C")}, "A")},
		{"self loop", NewQuery([]Edge{Bin("R", "A", "A")}, "A")},
		{"parallel edges", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "A")}, "A")},
		{"cycle", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C"), Bin("R3", "C", "A")}, "A")},
		{"disconnected", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "C", "D"), Bin("R3", "B", "C"), Bin("R4", "A", "D")}, "A")},
		{"unknown output", NewQuery([]Edge{Bin("R1", "A", "B")}, "Z")},
		{"dup output", NewQuery([]Edge{Bin("R1", "A", "B")}, "A", "A")},
		{"arity 3", NewQuery([]Edge{{Name: "R", Attrs: []Attr{"A", "B", "C"}}}, "A")},
	}
	for _, c := range cases {
		if err := c.q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestFreeConnex(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
		want bool
	}{
		{"full join", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C")}, "A", "B", "C"), true},
		{"matmul", MatMulQuery(), false},
		{"single output", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C")}, "A"), true},
		{"empty output", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C")}), true},
		{"line3", LineQuery(3), false},
		{"star3", StarQuery(3), false},
		{"star with center output", NewQuery([]Edge{Bin("R1", "A1", "B"), Bin("R2", "A2", "B"), Bin("R3", "A3", "B")}, "A1", "A2", "A3", "B"), true},
		{"path middle outputs", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C"), Bin("R3", "C", "D")}, "B", "C"), true},
		{"path split outputs", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C"), Bin("R3", "C", "D")}, "A", "D"), false},
	}
	for _, c := range cases {
		if got := c.q.IsFreeConnex(); got != c.want {
			t.Errorf("%s: IsFreeConnex = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		q    *Query
		want Class
	}{
		{"matmul", MatMulQuery(), ClassMatMul},
		{"line3", LineQuery(3), ClassLine},
		{"line5", LineQuery(5), ClassLine},
		{"star2 is matmul", StarQuery(2), ClassMatMul},
		{"star3", StarQuery(3), ClassStar},
		{"star5", StarQuery(5), ClassStar},
		{"fig1 star-like", Fig1StarLike(), ClassStarLike},
		{"fig3 twig", Fig3Twig(), ClassTree},
		{"fig2 tree", Fig2Tree(), ClassTree},
		{"free-connex", NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C")}, "A", "B", "C"), ClassFreeConnex},
	}
	for _, c := range cases {
		mustValidate(t, c.q)
		if got := c.q.Classify(); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestLineView(t *testing.T) {
	q := LineQuery(4)
	v, ok := q.LineView()
	if !ok {
		t.Fatal("LineView failed on line query")
	}
	if len(v.Vertices) != 5 || len(v.EdgeOrder) != 4 {
		t.Fatalf("view sizes: %v %v", v.Vertices, v.EdgeOrder)
	}
	if v.Vertices[0] != "A1" || v.Vertices[4] != "A5" {
		t.Fatalf("orientation: %v", v.Vertices)
	}
	for i, ei := range v.EdgeOrder {
		e := q.Edges[ei]
		if !(e.Has(v.Vertices[i]) && e.Has(v.Vertices[i+1])) {
			t.Fatalf("edge order wrong at %d: %v between %v,%v", i, e, v.Vertices[i], v.Vertices[i+1])
		}
	}
}

func TestStarView(t *testing.T) {
	q := StarQuery(4)
	v, ok := q.StarView()
	if !ok {
		t.Fatal("StarView failed on star query")
	}
	if v.Center != "B" || len(v.Leaves) != 4 {
		t.Fatalf("star view: %+v", v)
	}
}

func TestStarLikeViewFig1(t *testing.T) {
	q := Fig1StarLike()
	v, ok := q.StarLikeView()
	if !ok {
		t.Fatal("StarLikeView failed on Figure 1 query")
	}
	if v.Center != "B" {
		t.Fatalf("center = %q", v.Center)
	}
	if len(v.Arms) != 5 {
		t.Fatalf("arms = %d", len(v.Arms))
	}
	// Arms sorted by leaf; check the worked example arm of the figure:
	// A2 — C21 — C22 — B, i.e. Inner = [C22, C21] from the center outward.
	arm := v.Arms[1]
	if arm.Leaf != "A2" {
		t.Fatalf("arm order: %+v", v.Arms)
	}
	if len(arm.Inner) != 2 || arm.Inner[0] != "C22" || arm.Inner[1] != "C21" {
		t.Fatalf("arm 2 inner = %v, want [C22 C21]", arm.Inner)
	}
	if len(arm.Edges) != 3 {
		t.Fatalf("arm 2 edges = %v", arm.Edges)
	}
	// Edge order: center outward — first edge touches B, last touches A2.
	if !q.Edges[arm.Edges[0]].Has("B") || !q.Edges[arm.Edges[2]].Has("A2") {
		t.Fatalf("arm 2 edge orientation wrong: %v", arm.Edges)
	}
}

func TestStarLikeViewRejectsInternalOutput(t *testing.T) {
	// Same shape as a star-like query but one inner attribute is output.
	q := NewQuery([]Edge{
		Bin("R1", "A1", "B"), Bin("R2", "A2", "B"),
		Bin("R3", "C", "B"), Bin("R4", "A3", "C"),
	}, "A1", "A2", "A3", "C")
	if _, ok := q.StarLikeView(); ok {
		t.Fatal("StarLikeView must reject internal output attributes")
	}
}

func TestReducePlanFig2(t *testing.T) {
	q := Fig2Tree()
	reduced, steps := ReducePlan(q)

	if len(steps) != 2 {
		t.Fatalf("steps = %+v, want 2", steps)
	}
	removed := map[string]string{}
	for _, s := range steps {
		removed[s.Remove] = s.Into
	}
	if _, ok := removed["U1"]; !ok {
		t.Fatalf("unary edge U1 not removed: %+v", steps)
	}
	if into, ok := removed["P1"]; !ok || into != "T6b" {
		t.Fatalf("pendant P1 not absorbed into T6b: %+v", steps)
	}
	// Reduced tree: every leaf attribute is an output attribute.
	for _, a := range reduced.Attrs() {
		if reduced.Degree(a) == 1 && !reduced.IsOutput(a) {
			t.Fatalf("non-output leaf %q survived reduction", a)
		}
	}
	if len(reduced.Edges) != len(q.Edges)-2 {
		t.Fatalf("reduced edges = %d", len(reduced.Edges))
	}
}

func TestReducePlanChainCollapse(t *testing.T) {
	// Path A–B–C–D with y = {A}: everything collapses onto the first edge.
	q := NewQuery([]Edge{
		Bin("R1", "A", "B"), Bin("R2", "B", "C"), Bin("R3", "C", "D"),
	}, "A")
	reduced, steps := ReducePlan(q)
	if len(reduced.Edges) != 1 || reduced.Edges[0].Name != "R1" {
		t.Fatalf("reduced = %+v", reduced.Edges)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %+v", steps)
	}
	// R3 collapses into R2 on C, then R2 into R1 on B.
	if steps[0].Remove != "R3" || steps[0].Into != "R2" || steps[0].On[0] != "C" {
		t.Fatalf("step 0 = %+v", steps[0])
	}
	if steps[1].Remove != "R2" || steps[1].Into != "R1" || steps[1].On[0] != "B" {
		t.Fatalf("step 1 = %+v", steps[1])
	}
}

func TestTwigsFig2(t *testing.T) {
	q := Fig2Tree()
	reduced, _ := ReducePlan(q)
	twigs := Twigs(reduced)
	if len(twigs) != 6 {
		t.Fatalf("got %d twigs, want 6", len(twigs))
	}

	classes := map[Class]int{}
	singles := 0
	for _, tw := range twigs {
		mustValidate(t, tw.Query)
		if len(tw.Query.Edges) == 1 {
			singles++
			continue
		}
		classes[tw.Query.Classify()]++
		// Twig invariant: output attributes are exactly the leaves.
		for _, a := range tw.Query.Attrs() {
			isLeaf := tw.Query.Degree(a) == 1
			if isLeaf != tw.Query.IsOutput(a) {
				t.Fatalf("twig %v: attr %q leaf=%v output=%v", tw.Query.Edges, a, isLeaf, tw.Query.IsOutput(a))
			}
		}
	}
	if singles != 2 {
		t.Fatalf("single-relation twigs = %d, want 2", singles)
	}
	if classes[ClassMatMul] != 2 {
		t.Fatalf("matmul twigs = %d, want 2", classes[ClassMatMul])
	}
	if classes[ClassStarLike] != 1 {
		t.Fatalf("star-like twigs = %d, want 1", classes[ClassStarLike])
	}
	if classes[ClassTree] != 1 {
		t.Fatalf("general twigs = %d, want 1", classes[ClassTree])
	}
}

func TestTwigsPartitionEdges(t *testing.T) {
	q := Fig2Tree()
	reduced, _ := ReducePlan(q)
	twigs := Twigs(reduced)
	seen := map[string]int{}
	for _, tw := range twigs {
		for _, e := range tw.Query.Edges {
			seen[e.Name]++
		}
	}
	if len(seen) != len(reduced.Edges) {
		t.Fatalf("twigs cover %d of %d edges", len(seen), len(reduced.Edges))
	}
	for name, c := range seen {
		if c != 1 {
			t.Fatalf("edge %s in %d twigs", name, c)
		}
	}
}

func TestTwigBoundariesAreBreakVertices(t *testing.T) {
	q := Fig2Tree()
	reduced, _ := ReducePlan(q)
	twigs := Twigs(reduced)
	wantBreaks := map[Attr]bool{"O2": true, "O3": true, "O5": true, "O11": true, "O12": true}
	got := map[Attr]int{}
	for _, tw := range twigs {
		for _, b := range tw.Boundary {
			if !wantBreaks[b] {
				t.Fatalf("unexpected boundary %q", b)
			}
			got[b]++
		}
	}
	// Every break vertex joins exactly two twigs in this tree.
	for b := range wantBreaks {
		if got[b] != 2 {
			t.Fatalf("break %q on %d twigs, want 2", b, got[b])
		}
	}
}

func TestSkeletonFig3(t *testing.T) {
	q := Fig3Twig()
	sk := SkeletonOf(q)
	if sk == nil {
		t.Fatal("SkeletonOf returned nil on Figure 3 twig")
	}
	wantS := []Attr{"B1", "B2", "O5", "O6", "O7"}
	if len(sk.S) != len(wantS) {
		t.Fatalf("S = %v, want %v", sk.S, wantS)
	}
	for i := range wantS {
		if sk.S[i] != wantS[i] {
			t.Fatalf("S = %v, want %v", sk.S, wantS)
		}
	}
	if len(sk.Pendants) != 2 {
		t.Fatalf("pendants = %v", sk.Pendants)
	}
	b1 := sk.Pendants["B1"]
	if b1 == nil || len(b1.Edges) != 3 {
		t.Fatalf("pendant B1 = %+v", b1)
	}
	// B1's pendant has arms O8 and C41–O9 around center B1; with only two
	// arms it degenerates to the line query O8–B1–C41–O9, the star-like
	// base case (§6: "a star-like query degenerates to a line query if
	// n = 2").
	if got := b1.Classify(); got != ClassLine {
		t.Fatalf("pendant B1 class = %v, want line", got)
	}
	b2 := sk.Pendants["B2"]
	if b2 == nil || len(b2.Edges) != 2 {
		t.Fatalf("pendant B2 = %+v", b2)
	}
	// TS has the remaining 6 edges.
	if len(sk.TS.Edges) != 6 {
		t.Fatalf("TS edges = %d: %+v", len(sk.TS.Edges), sk.TS.Edges)
	}
	// Pendant edges and TS edges partition the twig.
	total := len(sk.TS.Edges)
	for _, p := range sk.Pendants {
		total += len(p.Edges)
	}
	if total != len(q.Edges) {
		t.Fatalf("edge partition broken: %d vs %d", total, len(q.Edges))
	}
}

func TestSkeletonNilOnStarLike(t *testing.T) {
	if SkeletonOf(Fig1StarLike()) != nil {
		t.Fatal("star-like query must have no skeleton")
	}
	if SkeletonOf(LineQuery(4)) != nil {
		t.Fatal("line query must have no skeleton")
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Bin("R", "A", "B")
	if e.Other("A") != "B" || e.Other("B") != "A" {
		t.Fatal("Other wrong")
	}
	if !e.Has("A") || e.Has("C") {
		t.Fatal("Has wrong")
	}
	u := Un("U", "A")
	if !u.IsUnary() {
		t.Fatal("IsUnary wrong")
	}
}

func TestAttrsOrderAndDegree(t *testing.T) {
	q := MatMulQuery()
	attrs := q.Attrs()
	want := []Attr{"A", "B", "C"}
	if len(attrs) != 3 {
		t.Fatalf("attrs = %v", attrs)
	}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("attrs = %v", attrs)
		}
	}
	if q.Degree("B") != 2 || q.Degree("A") != 1 {
		t.Fatal("degree wrong")
	}
	es := q.EdgesAt("B")
	sort.Ints(es)
	if len(es) != 2 || es[0] != 0 || es[1] != 1 {
		t.Fatalf("EdgesAt = %v", es)
	}
}
