package hypergraph

// figures.go reconstructs the example queries of the paper's Figures 1–4
// as reusable fixtures. The figures themselves are structural diagrams;
// these constructors reproduce their topology so tests (and the FIG-*
// experiments) can exercise exactly the decompositions the paper
// illustrates.

// Fig1StarLike returns the star-like query of Figure 1: five arms sharing
// the non-output center B. Arm 2 is the figure's worked example with
// V2 = {A2, C21, C22, B} and E2 = {(A2,C21), (C21,C22), (C22,B)}.
func Fig1StarLike() *Query {
	return NewQuery([]Edge{
		Bin("R11", "A1", "C11"), Bin("R12", "C11", "B"),
		Bin("R21", "A2", "C21"), Bin("R22", "C21", "C22"), Bin("R23", "C22", "B"),
		Bin("R3", "A3", "B"),
		Bin("R41", "A4", "C41"), Bin("R42", "C41", "B"),
		Bin("R51", "A5", "C51"), Bin("R52", "C51", "B"),
	}, "A1", "A2", "A3", "A4", "A5")
}

// Fig2Tree returns a tree query reproducing the structure of Figure 2: a
// tree that, after the §7 reduction, decomposes into six twigs — two
// single-relation twigs whose vertices are both outputs (twigs 1 and 5),
// two matrix multiplications (twigs 2 and 6), one star-like twig (twig 3),
// and one general twig handled by the skeleton machinery of §7.1 (twig 4,
// detailed in Figure 3). The pre-reduction tree also carries a unary edge
// and a pendant edge with a private non-output attribute, which the
// reduction removes (Figure 2, left vs middle).
func Fig2Tree() *Query {
	edges := []Edge{
		// Twig 1: single relation, both ends output.
		Bin("T1", "O1", "O2"),
		// Twig 2: matrix multiplication over non-output X1.
		Bin("T2a", "O2", "X1"), Bin("T2b", "X1", "O3"),
		// Twig 3: star-like with center X2 and arms O3 | O4 | C31–O5.
		Bin("T3a", "O3", "X2"), Bin("T3b", "X2", "O4"),
		Bin("T3c", "X2", "C31"), Bin("T3d", "C31", "O5"),
		// Twig 4 (Figure 3): skeleton center D with pendant star-like
		// subtrees rooted at B1 and B2.
		Bin("T4a", "O5", "D"), Bin("T4b", "D", "O6"),
		Bin("T4c", "D", "E"), Bin("T4d", "E", "O7"),
		Bin("T4e", "D", "B1"), Bin("T4f", "B1", "O8"),
		Bin("T4g", "B1", "C41"), Bin("T4h", "C41", "O9"),
		Bin("T4i", "D", "B2"), Bin("T4j", "B2", "O10"), Bin("T4k", "B2", "O11"),
		// Twig 5: single relation, both ends output.
		Bin("T5", "O11", "O12"),
		// Twig 6: matrix multiplication over non-output X9.
		Bin("T6a", "O12", "X9"), Bin("T6b", "X9", "O13"),
		// Removed by reduction: a unary edge and a pendant private attr.
		Un("U1", "O1"),
		Bin("P1", "O13", "Z1"),
	}
	return NewQuery(edges,
		"O1", "O2", "O3", "O4", "O5", "O6", "O7", "O8", "O9", "O10", "O11", "O12", "O13")
}

// Fig3Twig returns twig 4 of Figure 2 in isolation — the Figure 3 example.
// Its skeleton has S = {B1, B2, O5, O6, O7} (the figure's
// {A1, A2, A3, B1, B2} with A_i named O5, O6, O7 to match Fig2Tree), with
// S ∩ ȳ = {B1, B2} the roots of the pendant star-like subtrees.
func Fig3Twig() *Query {
	return NewQuery([]Edge{
		Bin("T4a", "O5", "D"), Bin("T4b", "D", "O6"),
		Bin("T4c", "D", "E"), Bin("T4d", "E", "O7"),
		Bin("T4e", "D", "B1"), Bin("T4f", "B1", "O8"),
		Bin("T4g", "B1", "C41"), Bin("T4h", "C41", "O9"),
		Bin("T4i", "D", "B2"), Bin("T4j", "B2", "O10"), Bin("T4k", "B2", "O11"),
	}, "O5", "O6", "O7", "O8", "O9", "O10", "O11")
}

// MatMulQuery returns ∑_B R1(A,B) ⋈ R2(B,C) with y = {A, C} — the paper's
// running example (§3).
func MatMulQuery() *Query {
	return NewQuery([]Edge{Bin("R1", "A", "B"), Bin("R2", "B", "C")}, "A", "C")
}

// LineQuery returns the length-n line query of §4 over attributes
// A1 … A(n+1) with y = {A1, A(n+1)}.
func LineQuery(n int) *Query {
	if n < 2 {
		panic("hypergraph: line query needs n ≥ 2 relations")
	}
	var edges []Edge
	for i := 1; i <= n; i++ {
		edges = append(edges, Bin(string(attrName("R", i)), attrName("A", i), attrName("A", i+1)))
	}
	return NewQuery(edges, attrName("A", 1), attrName("A", n+1))
}

// StarQuery returns the n-relation star query of §5 over center B with
// y = {A1 … An}.
func StarQuery(n int) *Query {
	if n < 2 {
		panic("hypergraph: star query needs n ≥ 2 relations")
	}
	var edges []Edge
	var out []Attr
	for i := 1; i <= n; i++ {
		a := attrName("A", i)
		edges = append(edges, Bin(string(attrName("R", i)), a, "B"))
		out = append(out, a)
	}
	return NewQuery(edges, out...)
}

func attrName(prefix string, i int) Attr {
	const digits = "0123456789"
	if i < 10 {
		return Attr(prefix + digits[i:i+1])
	}
	return Attr(prefix + digits[i/10:i/10+1] + digits[i%10:i%10+1])
}
