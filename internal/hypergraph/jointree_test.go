package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTree builds a random tree query over n attributes.
func randomTree(rng *rand.Rand, n int) *Query {
	attrs := make([]Attr, n)
	for i := range attrs {
		attrs[i] = Attr(rune('A' + i))
	}
	var edges []Edge
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		edges = append(edges, Bin("R"+string(rune('0'+i)), attrs[parent], attrs[i]))
	}
	var out []Attr
	for _, a := range attrs {
		if rng.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	return NewQuery(edges, out...)
}

// Property: JoinTree's parents share an attribute with their child, the
// order is a valid BFS (parents precede children), and — the running
// intersection property for tree queries — any attribute shared by two
// edges appears in every edge on the join-tree path between them.
func TestQuickJoinTreeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(7) + 2
		q := randomTree(rng, n)
		if err := q.Validate(); err != nil {
			return true
		}
		order, parent := q.JoinTree()
		if len(order) != len(q.Edges) {
			return false
		}
		pos := make([]int, len(order))
		for i, e := range order {
			pos[e] = i
		}
		for _, e := range order[1:] {
			pe := parent[e]
			if pe < 0 || pos[pe] >= pos[e] {
				return false // parent must precede child
			}
			if len(SharedAttrs(q.Edges[e], q.Edges[pe])) == 0 {
				return false // parent must overlap child
			}
		}
		// Running intersection: for every pair of edges sharing attr v,
		// walk the tree path between them and require v everywhere.
		for i := range q.Edges {
			for j := i + 1; j < len(q.Edges); j++ {
				for _, v := range SharedAttrs(q.Edges[i], q.Edges[j]) {
					for _, e := range treePath(parent, pos, i, j) {
						if !q.Edges[e].Has(v) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// treePath returns the edges on the join-tree path between a and b
// (inclusive), using parent pointers and BFS positions as depth proxy.
func treePath(parent []int, pos []int, a, b int) []int {
	var pa, pb []int
	for x := a; x != -1; x = parent[x] {
		pa = append(pa, x)
	}
	for x := b; x != -1; x = parent[x] {
		pb = append(pb, x)
	}
	on := make(map[int]bool, len(pa))
	for _, x := range pa {
		on[x] = true
	}
	// lowest common ancestor = first pb element on pa.
	lca := -1
	for _, x := range pb {
		if on[x] {
			lca = x
			break
		}
	}
	var path []int
	for _, x := range pa {
		path = append(path, x)
		if x == lca {
			break
		}
	}
	for _, x := range pb {
		if x == lca {
			break
		}
		path = append(path, x)
	}
	return path
}

// Property: the §7 reduction never removes output information — the
// reduced query's outputs equal the original's — and reaches a fixpoint
// (no removable edges remain unless a single edge is left).
func TestQuickReducePlanFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomTree(rng, rng.Intn(7)+2)
		if err := q.Validate(); err != nil {
			return true
		}
		reduced, steps := ReducePlan(q)
		if len(reduced.Edges)+len(steps) != len(q.Edges) {
			return false
		}
		if len(reduced.Output) != len(q.Output) {
			return false
		}
		if len(reduced.Edges) > 1 && reduced.removableEdge() >= 0 {
			return false // not a fixpoint
		}
		// Every leaf of the reduced tree is an output (the §7 guarantee),
		// unless the reduction bottomed out at a single edge.
		if len(reduced.Edges) > 1 {
			for _, a := range reduced.Attrs() {
				if reduced.Degree(a) == 1 && !reduced.IsOutput(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: twigs partition the reduced query's edges, each twig validates,
// and within each twig outputs are exactly the leaves.
func TestQuickTwigInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomTree(rng, rng.Intn(7)+2)
		if err := q.Validate(); err != nil {
			return true
		}
		reduced, _ := ReducePlan(q)
		twigs := Twigs(reduced)
		seen := map[string]int{}
		for _, tw := range twigs {
			if err := tw.Query.Validate(); err != nil {
				return false
			}
			for _, e := range tw.Query.Edges {
				seen[e.Name]++
			}
			if len(tw.Query.Edges) > 1 {
				for _, a := range tw.Query.Attrs() {
					if (tw.Query.Degree(a) == 1) != tw.Query.IsOutput(a) {
						return false
					}
				}
			}
		}
		if len(seen) != len(reduced.Edges) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
