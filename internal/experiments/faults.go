package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"mpcjoin/internal/mpc"
)

// ParseFaultSpec parses the mpcbench -faults flag value into a fault
// spec. The format is comma-separated key=value pairs:
//
//	crash=P      per-round crash probability in [0, 1]
//	round=K      deterministic crash at physical round K (1-based)
//	drop=P       per-message drop probability in [0, 1]
//	straggler=P  per-server straggler probability in [0, 1]
//	delay=D      straggler delay in load units (default 8 when straggler is set)
//	retries=R    retry budget per round (0 = default, negative = no retries)
//	seed=S       schedule seed (0 = derived from the experiment seed)
//	stop=N       stop injecting after N faults (0 = unlimited)
//
// Example: -faults crash=0.05,drop=0.05,straggler=0.2,delay=8,retries=6
//
// The returned spec is validated; the empty string returns a disabled
// spec and no error.
func ParseFaultSpec(s string) (mpc.FaultSpec, error) {
	var spec mpc.FaultSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("experiments: fault spec: %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return 0, fmt.Errorf("experiments: fault spec: %s=%q is not a number", key, val)
			}
			return p, nil
		}
		count := func() (int, error) {
			n, err := strconv.Atoi(val)
			if err != nil {
				return 0, fmt.Errorf("experiments: fault spec: %s=%q is not an integer", key, val)
			}
			return n, nil
		}
		var err error
		switch key {
		case "crash":
			spec.CrashProb, err = prob()
		case "round":
			spec.CrashRound, err = count()
		case "drop":
			spec.DropProb, err = prob()
		case "straggler":
			spec.StragglerProb, err = prob()
		case "delay":
			var d int
			d, err = count()
			spec.StragglerDelay = int64(d)
		case "retries":
			spec.MaxRetries, err = count()
		case "stop":
			spec.StopAfter, err = count()
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
			if err != nil {
				err = fmt.Errorf("experiments: fault spec: seed=%q is not an unsigned integer", val)
			}
		default:
			err = fmt.Errorf("experiments: fault spec: unknown key %q (want crash, round, drop, straggler, delay, retries, seed, stop)", key)
		}
		if err != nil {
			return mpc.FaultSpec{}, err
		}
	}
	if spec.StragglerProb > 0 && spec.StragglerDelay == 0 {
		spec.StragglerDelay = 8
	}
	if err := spec.Validate(); err != nil {
		return mpc.FaultSpec{}, err
	}
	if !spec.Enabled() {
		return mpc.FaultSpec{}, fmt.Errorf("experiments: fault spec %q injects nothing (set crash, round, drop or straggler)", s)
	}
	return spec, nil
}
