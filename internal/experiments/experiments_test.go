package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks basic integrity: rows present, no verification mismatches.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, Config{Quick: true, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if tab.ID != id {
				t.Fatalf("table id %q", tab.ID)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tab.Format()
			if strings.Contains(out, "MISMATCH") {
				t.Fatalf("verification mismatch:\n%s", out)
			}
			if !strings.Contains(out, tab.Title) {
				t.Fatal("format missing title")
			}
		})
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", Config{Quick: true}); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitExponent(t *testing.T) {
	// y = 5·x^{-2/3} exactly.
	xs := []float64{4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * 1 / (x * x)
	}
	if k := FitExponent(xs, ys); k < -2.01 || k > -1.99 {
		t.Fatalf("exponent = %v, want -2", k)
	}
}

// TestMMLoadShape asserts the headline result's shape in quick mode: the
// new algorithm beats the baseline and the gap widens with OUT.
func TestMMLoadShape(t *testing.T) {
	tab, err := Run("T1-MM-load", Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Column 5 is L_yann/L_new; it must be ≥ 1 at the largest OUT and
	// larger at the last row than the first.
	first := atofCol(t, tab.Rows[0][5])
	last := atofCol(t, tab.Rows[len(tab.Rows)-1][5])
	if last < 1 {
		t.Fatalf("baseline beat the new algorithm at large OUT: ratio %v\n%s", last, tab.Format())
	}
	if last <= first*0.8 {
		t.Fatalf("ratio did not widen with OUT: first %v last %v\n%s", first, last, tab.Format())
	}
}

func atofCol(t *testing.T, s string) float64 {
	t.Helper()
	var x float64
	if _, err := fmt.Sscan(s, &x); err != nil {
		t.Fatalf("bad float %q", s)
	}
	return x
}
