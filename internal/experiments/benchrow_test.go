package experiments

import (
	stdruntime "runtime"
	"testing"
)

// TestBenchRowMetadata pins the provenance stamping of benchmark rows:
// every row carries the experiment id, the resolved worker count, and the
// GOMAXPROCS of the measuring host (commit is empty under plain `go test`,
// which embeds no VCS stamp).
func TestBenchRowMetadata(t *testing.T) {
	tab, err := Run("T1-MM-load", Config{Quick: true, Seed: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Bench) == 0 {
		t.Fatal("no bench rows")
	}
	procs := stdruntime.GOMAXPROCS(0)
	for i, row := range tab.Bench {
		if row.ID != tab.ID {
			t.Errorf("row %d: id %q, want %q", i, row.ID, tab.ID)
		}
		if row.Workers != 2 {
			t.Errorf("row %d: workers %d, want 2", i, row.Workers)
		}
		if row.GoMaxProcs != procs {
			t.Errorf("row %d: gomaxprocs %d, want %d", i, row.GoMaxProcs, procs)
		}
		if row.WallNs <= 0 {
			t.Errorf("row %d: wallNs %d, want > 0", i, row.WallNs)
		}
	}
}
