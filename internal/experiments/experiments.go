// Package experiments regenerates the paper's results: one experiment per
// Table 1 row (per query class, plus the min{·,·} crossover, unequal sizes
// and p-scaling), the Theorem 2/3 lower-bound audits, the Figure 1–4
// decomposition reproductions, the §2.2 estimator accuracy check, and two
// ablations (locality, parallel packing). Each experiment returns text
// tables; cmd/mpcbench prints them and bench_test.go wraps them in
// testing.B benchmarks. EXPERIMENTS.md records expected vs measured shape.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	stdruntime "runtime"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/estimate"
	"mpcjoin/internal/hypercube"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/lowerbound"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/planner"
	"mpcjoin/internal/refengine"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/runtime"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/transport"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Bench holds the machine-readable benchmark records backing the text
	// rows, for cmd/mpcbench -json. Experiments that don't time engine
	// runs leave it empty.
	Bench []BenchRow
}

// BenchRow is one machine-readable benchmark record: the experiment it
// came from, the instance shape, the metered cost of the new engine's run,
// and its wall-clock time under the configured worker count. Run stamps
// ID and Workers uniformly after an experiment returns.
type BenchRow struct {
	ID      string `json:"id"`
	P       int    `json:"p"`
	N       int64  `json:"N"`
	Out     int64  `json:"OUT"`
	MaxLoad int    `json:"maxLoad"`
	Rounds  int    `json:"rounds"`
	WallNs  int64  `json:"wallNs"`
	Workers int    `json:"workers"`
	// GoMaxProcs and Commit identify the machine parallelism and source
	// revision a wall-clock number was measured under, so rows from
	// different checkouts/hosts can be compared honestly.
	GoMaxProcs int    `json:"gomaxprocs"`
	Commit     string `json:"commit,omitempty"`
	// Trace is the per-round load timeline of the new engine's run,
	// recorded only under Config.Trace (mpcbench -trace).
	Trace []mpc.RoundTrace `json:"trace,omitempty"`
	// Faults is the fault plane's per-run accounting, recorded only
	// under Config.Faults (mpcbench -faults). The row's MaxLoad/Rounds
	// are the base metered cost and exclude fault overhead by design.
	Faults *mpc.FaultReport `json:"faults,omitempty"`
	// Transport names the exchange backend the benched run's rounds
	// travelled over ("inproc", "tcp"). Loads, rounds and tables are
	// identical for every backend; only wallNs changes.
	Transport string `json:"transport"`
	// Plan is the plan the benched run executed, recorded only under
	// Config.Explain (mpcbench -explain). Plan.Chosen always names the
	// engine the metered Stats came from; planner-routed runs also carry
	// the ranked candidates with their predicted loads, while experiments
	// that pin their section's engine record a forced plan.
	Plan *planner.Plan `json:"plan,omitempty"`
}

// addBench records one benchmark row (ID/Workers are stamped by Run).
func (t *Table) addBench(p int, n, out int64, rb bothRun) {
	t.Bench = append(t.Bench, BenchRow{
		P: p, N: n, Out: out,
		MaxLoad: rb.stNew.MaxLoad, Rounds: rb.stNew.Rounds, WallNs: rb.wall.Nanoseconds(),
		Trace: rb.trace, Faults: rb.faults, Plan: rb.plan,
	})
}

// Format renders a Table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales experiment sizes.
type Config struct {
	// Quick shrinks instances for fast iteration (benchmarks use it).
	Quick bool
	// Seed makes runs reproducible.
	Seed uint64
	// Workers sizes the concurrent execution runtime for the experiment
	// (0 and 1 = serial, n > 1 = n OS workers, negative = GOMAXPROCS).
	// Loads and all table contents are identical for every setting; only
	// wallNs in Bench rows changes.
	Workers int
	// Trace records the per-round load timeline of every benched engine
	// run into BenchRow.Trace (mpcbench -trace -json). Tracing never
	// changes loads, rounds or results.
	Trace bool
	// Faults, when enabled, runs every benched (new-engine) execution
	// under a deterministic fault plane (mpcbench -faults). Absorbed
	// schedules leave tables, loads and verification identical to the
	// fault-free run — only wallNs and BenchRow.Faults change; a
	// schedule the retry budget cannot absorb fails the experiment.
	Faults mpc.FaultSpec
	// Transport, when set, carries every benched (new-engine) execution's
	// exchange rounds over the given backend (mpcbench -transport). The
	// verification baseline always runs in process, so each experiment's
	// "verified" column doubles as a cross-transport bit-identity check.
	// nil = in-process.
	Transport transport.Transport
	// Explain attaches the plan each benched run executed to its BenchRow
	// (mpcbench -explain -json): the chosen engine and, for
	// planner-routed runs, the ranked candidates with predicted loads.
	// Planning always happens; Explain only controls whether the plan is
	// recorded, so loads, rounds and tables are identical either way.
	Explain bool
}

// transportName resolves the backend label stamped into BenchRow rows.
func (c Config) transportName() string {
	if c.Transport == nil {
		return "inproc"
	}
	return c.Transport.Name()
}

// effectiveWorkers resolves Config.Workers to the pool size runs use.
func (c Config) effectiveWorkers() int {
	switch {
	case c.Workers > 0:
		return c.Workers
	case c.Workers < 0:
		return runtime.New(0).Workers()
	default:
		return 1
	}
}

func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// exec returns a fresh per-experiment execution scope sized by
// c.Workers, for the experiments that drive engines directly on
// distributed relations rather than through core.Execute.
func (c Config) exec() *mpc.Exec {
	return mpc.NewExec(context.Background(), c.Workers)
}

// faultPlane returns a fresh fault plane for one benched run (nil when
// c.Faults is disabled). Each run gets its own plane so BenchRow.Faults
// reports per-run accounting; the spec's seed defaults off c.Seed so
// -faults without an explicit seed is still reproducible.
func (c Config) faultPlane() *mpc.FaultPlane {
	if !c.Faults.Enabled() {
		return nil
	}
	spec := c.Faults
	if spec.Seed == 0 {
		spec.Seed = c.Seed + 1
	}
	return mpc.NewFaultPlane(spec)
}

// IDs lists all experiment identifiers in canonical order.
func IDs() []string {
	return []string{
		"T1-MM-load", "T1-MM-crossover", "T1-MM-unequal",
		"T1-Line-load", "T1-Star-load", "T1-Tree-load",
		"T1-scaling-p", "T1-rounds",
		"LB-Thm2", "LB-Thm3",
		"FIG1-starlike", "FIG2-twigs",
		"EST-OUT",
		"ABL-locality", "ABL-packing",
		"ALT-fulljoin",
		"GRAPH-iterload",
	}
}

// GraphIDs lists the iterated graph-analytics experiment identifiers —
// the subset of IDs the mpcbench -graph lane runs on its own.
func GraphIDs() []string {
	return []string{"GRAPH-iterload"}
}

// Run executes one experiment. cfg.Workers travels with each engine run's
// execution scope (core.Options.Workers / mpc.NewExec), so concurrent Run
// calls with different worker counts never interact — no process-global
// runtime is installed.
func Run(id string, cfg Config) (Table, error) {
	t, err := run(id, cfg)
	workers := cfg.effectiveWorkers()
	commit := buildCommit()
	procs := stdruntime.GOMAXPROCS(0)
	name := cfg.transportName()
	for i := range t.Bench {
		t.Bench[i].ID = t.ID
		t.Bench[i].Workers = workers
		t.Bench[i].GoMaxProcs = procs
		t.Bench[i].Commit = commit
		t.Bench[i].Transport = name
	}
	return t, err
}

// buildCommit reports the VCS revision the binary was built from (with a
// "-dirty" suffix for modified trees), or "" when build info carries no
// stamp (e.g. plain `go test` builds).
var buildCommit = sync.OnceValue(func() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
})

func run(id string, cfg Config) (Table, error) {
	switch id {
	case "T1-MM-load":
		return mmLoad(cfg), nil
	case "T1-MM-crossover":
		return mmCrossover(cfg), nil
	case "T1-MM-unequal":
		return mmUnequal(cfg), nil
	case "T1-Line-load":
		return classLoad(cfg, "T1-Line-load", hypergraph.LineQuery(3), "line"), nil
	case "T1-Star-load":
		return classLoad(cfg, "T1-Star-load", hypergraph.StarQuery(3), "star"), nil
	case "T1-Tree-load":
		return treeLoad(cfg), nil
	case "T1-scaling-p":
		return scalingP(cfg), nil
	case "T1-rounds":
		return roundsConstant(cfg), nil
	case "LB-Thm2":
		return lbThm2(cfg), nil
	case "LB-Thm3":
		return lbThm3(cfg), nil
	case "FIG1-starlike":
		return fig1(cfg), nil
	case "FIG2-twigs":
		return fig2(cfg), nil
	case "EST-OUT":
		return estOut(cfg), nil
	case "ABL-locality":
		return ablLocality(cfg), nil
	case "ABL-packing":
		return ablPacking(cfg), nil
	case "ALT-fulljoin":
		return altFullJoin(cfg), nil
	case "GRAPH-iterload":
		return graphIterLoad(cfg), nil
	}
	return Table{}, fmt.Errorf("experiments: unknown id %q", id)
}

// bothRun is runBoth's result: the full metered Stats of both engines, the
// new engine's wall-clock time on the current runtime, the chosen engine,
// whether the two answers agree, and (under Config.Trace) the new engine's
// per-round load timeline.
type bothRun struct {
	stNew, stY mpc.Stats
	wall       time.Duration
	engine     string
	verified   bool
	trace      []mpc.RoundTrace
	faults     *mpc.FaultReport
	plan       *planner.Plan
}

// runBoth executes the query under the planner's auto choice and under the
// baseline, verifying they agree. Under Config.Faults the new engine's run
// carries a fresh fault plane while the baseline stays fault-free, so
// verification doubles as a retry-transparency check: an absorbed schedule
// must still agree with the undisturbed baseline. Config.Transport likewise
// rides only the benched run; the baseline always exchanges in process.
func runBoth(cfg Config, q *hypergraph.Query, inst db.Instance[int64], p int) bothRun {
	return runEngine(cfg, q, inst, p, "")
}

// runEngine is runBoth with the benched run pinned to a specific engine
// (empty = let the cost-based planner choose). Experiments that reproduce a
// section's algorithm force its engine so the figure measures that engine
// even when the planner would route the instance elsewhere.
func runEngine(cfg Config, q *hypergraph.Query, inst db.Instance[int64], p int, engine string) bothRun {
	var tr *mpc.Tracer
	if cfg.Trace {
		tr = mpc.NewTracer()
	}
	fp := cfg.faultPlane()
	seed := cfg.Seed
	var plan planner.Plan
	t0 := time.Now()
	resNew, stNew, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Seed: seed, Workers: cfg.Workers, Tracer: tr, Faults: fp, Transport: cfg.Transport, Engine: engine, PlanOut: &plan})
	wall := time.Since(t0)
	if err != nil {
		panic(err)
	}
	resY, stY, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Strategy: core.StrategyYannakakis, Seed: seed, Workers: cfg.Workers})
	if err != nil {
		panic(err)
	}
	eq := relation.Equal[int64](intSR, func(a, b int64) bool { return a == b }, resNew, resY)
	rb := bothRun{stNew: stNew, stY: stY, wall: wall, engine: plan.Chosen, verified: eq}
	if cfg.Explain {
		rb.plan = &plan
	}
	if tr != nil {
		rb.trace = tr.Rounds()
	}
	if fp != nil {
		rep := fp.Report()
		rb.faults = &rep
	}
	return rb
}

// ---------------------------------------------------------------------------
// T1-MM-*
// ---------------------------------------------------------------------------

// mmLoad sweeps OUT at (near-)fixed N on block instances and compares the
// Theorem 1 algorithm's load against distributed Yannakakis — Table 1 row 1.
func mmLoad(cfg Config) Table {
	q := hypergraph.MatMulQuery()
	n := cfg.scale(8192, 1024)
	p := cfg.scale(16, 8)
	t := Table{
		ID:     "T1-MM-load",
		Title:  "sparse matmul: load vs OUT (N per side ≈ const)",
		Header: []string{"fan", "N1=N2", "OUT", "L_new", "L_yann", "ratio", "bound_new", "bound_yann", "verified"},
		Notes: []string{
			"bound_new = min{√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3}}; bound_yann = N·√OUT/p",
			"expected shape: L_new grows ~OUT^{1/3}, L_yann ~OUT^{1/2}; ratio widens with OUT",
		},
	}
	for _, fan := range []int{2, 4, 8, 16, 32} {
		blocks := n / fan
		inst, meta := workload.MatMulBlocks(blocks, fan, fan)
		n1 := int64(meta.PerEdge["R1"])
		rb := runEngine(cfg, q, inst, p, planner.EngineMatMul)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		bn := math.Min(math.Sqrt(float64(n1*n1)/float64(p)),
			math.Cbrt(float64(n1*n1)*float64(meta.Out))/math.Pow(float64(p), 2.0/3.0))
		by := float64(n1) * math.Sqrt(float64(meta.Out)) / float64(p)
		t.Rows = append(t.Rows, []string{
			itoa(fan), i64(n1), i64(meta.Out), itoa(lNew), itoa(lY),
			f2(float64(lY) / float64(maxi(lNew, 1))), f0(bn), f0(by), tick(ok),
		})
	}
	return t
}

// mmCrossover forces both §3 branches across the min{·,·} boundary
// OUT ≈ N·√p and reports which one the dispatcher picks.
func mmCrossover(cfg Config) Table {
	n := cfg.scale(8192, 1024)
	p := cfg.scale(16, 8)
	t := Table{
		ID:     "T1-MM-crossover",
		Title:  "worst-case vs output-sensitive branch crossover (expected at OUT ≈ N·√p)",
		Header: []string{"OUT", "OUT/(N√p)", "L_wc", "L_os", "auto_picks", "verified"},
		Notes:  []string{"the dispatcher must pick the smaller branch on each side of the boundary"},
	}
	boundary := float64(n) * math.Sqrt(float64(p))
	ex := cfg.exec()
	for _, fan := range []int{2, 4, 8, 32, 128} {
		blocks := n / fan
		if blocks < 1 {
			blocks = 1
		}
		inst, meta := workload.MatMulBlocks(blocks, fan, fan)
		r1 := dist.FromRelationIn(ex, inst["R1"], p)
		r2 := dist.FromRelationIn(ex, inst["R2"], p)
		in := matmul.Input[int64]{R1: r1, R2: r2, B: "B"}
		resWC, stWC, err := matmul.Compute(intSR, in, matmul.Options{Algorithm: matmul.WorstCase, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		resOS, stOS, err := matmul.Compute(intSR, in, matmul.Options{Algorithm: matmul.OutputSensitive, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		ok := relation.Equal[int64](intSR, func(a, b int64) bool { return a == b },
			dist.ToRelation(resWC), dist.ToRelation(resOS))
		pick := "worst-case"
		n1 := int64(meta.PerEdge["R1"])
		if math.Cbrt(float64(n1*n1)*float64(meta.Out))/math.Pow(float64(p), 2.0/3.0) <
			math.Sqrt(float64(n1*n1)/float64(p)) {
			pick = "output-sensitive"
		}
		t.Rows = append(t.Rows, []string{
			i64(meta.Out), f2(float64(meta.Out) / boundary),
			itoa(stWC.MaxLoad), itoa(stOS.MaxLoad), pick, tick(ok),
		})
	}
	return t
}

// mmUnequal sweeps N1/N2, exercising Theorem 1's unequal-size bound and
// the N1/N2 ∉ [1/p, p] fast path.
func mmUnequal(cfg Config) Table {
	q := hypergraph.MatMulQuery()
	p := cfg.scale(16, 8)
	n2 := cfg.scale(8192, 1024)
	t := Table{
		ID:     "T1-MM-unequal",
		Title:  "matmul with unequal input sizes",
		Header: []string{"N1", "N2", "OUT", "L_new", "L_yann", "bound_new", "verified"},
		Notes:  []string{"bound_new = (N1+N2)/p + min{√(N1N2)/p·√p, (N1N2·OUT)^{1/3}/p^{2/3}}"},
	}
	for _, ratio := range []int{1, 4, 16, 64, 16 * p} {
		n1 := n2 / ratio
		if n1 < 2 {
			n1 = 2
		}
		blocks := n1 / 2
		if blocks < 1 {
			blocks = 1
		}
		aPer := maxi(n1/blocks, 1)
		cPer := maxi(n2/blocks, 1)
		inst, meta := workload.MatMulBlocks(blocks, aPer, cPer)
		rn1, rn2 := int64(meta.PerEdge["R1"]), int64(meta.PerEdge["R2"])
		rb := runEngine(cfg, q, inst, p, planner.EngineMatMul)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		bn := float64(rn1+rn2)/float64(p) + math.Min(
			math.Sqrt(float64(rn1*rn2)/float64(p)),
			math.Cbrt(float64(rn1*rn2)*float64(meta.Out))/math.Pow(float64(p), 2.0/3.0))
		t.Rows = append(t.Rows, []string{
			i64(rn1), i64(rn2), i64(meta.Out), itoa(lNew), itoa(lY), f0(bn), tick(ok),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// T1 line/star/tree
// ---------------------------------------------------------------------------

// classLoad sweeps OUT on block instances of a query class.
func classLoad(cfg Config, id string, q *hypergraph.Query, name string) Table {
	p := cfg.scale(16, 8)
	base := cfg.scale(2048, 256)
	t := Table{
		ID:     id,
		Title:  name + " query: load vs OUT (block instances)",
		Header: []string{"fan", "N", "OUT", "J", "L_new", "L_yann", "ratio", "verified"},
		Notes: []string{
			"Table 1: baseline load N·OUT^{1-1/n}/p (star) / N·OUT/p (line); new (N·OUT/p)^{2/3}+N·√OUT/p",
			"expected: ratio L_yann/L_new grows with OUT; the J > OUT regime is exercised by T1-Tree-load and ABL-locality",
		},
	}
	for _, fan := range []int{2, 4, 8, 16} {
		blocks := base / fan
		if blocks < 1 {
			blocks = 1
		}
		inst, meta := workload.Blocks(q, blocks, fan)
		j, _ := refengine.MaxIntermediateJoin[int64](intSR, q, inst)
		rb := runEngine(cfg, q, inst, p, name)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		t.Rows = append(t.Rows, []string{
			itoa(fan), itoa(meta.N), i64(meta.Out), itoa(j), itoa(lNew), itoa(lY),
			f2(float64(lY) / float64(maxi(lNew, 1))), tick(ok),
		})
	}
	return t
}

// treeLoad sweeps OUT on the Figure 3 twig — the general-tree engine.
func treeLoad(cfg Config) Table {
	q := hypergraph.Fig3Twig()
	p := cfg.scale(16, 8)
	t := Table{
		ID:     "T1-Tree-load",
		Title:  "general tree query (Figure 3 twig): load vs OUT",
		Header: []string{"blocks", "fan/mult", "N", "OUT", "J", "L_new", "L_yann", "ratio", "verified"},
		Notes: []string{
			"Table 1: baseline N·OUT/p vs new N·OUT^{2/3}/p + (N+OUT)/p",
			"mult = per-block multiplicity of non-output attributes: J (the baseline's cost) grows with it, OUT does not",
		},
	}
	for _, sc := range []struct{ blocks, fan, mult int }{
		{cfg.scale(64, 8), 2, 1}, {cfg.scale(64, 8), 2, 2},
		{cfg.scale(32, 8), 2, 4}, {cfg.scale(32, 8), 2, 6},
	} {
		inst, meta := workload.BlocksMulti(q, sc.blocks, sc.fan, sc.mult)
		j, _ := refengine.MaxIntermediateJoin[int64](intSR, q, inst)
		rb := runEngine(cfg, q, inst, p, planner.EngineTree)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		t.Rows = append(t.Rows, []string{
			itoa(sc.blocks), fmt.Sprintf("%d/%d", sc.fan, sc.mult), itoa(meta.N), i64(meta.Out),
			itoa(j), itoa(lNew), itoa(lY), f2(float64(lY) / float64(maxi(lNew, 1))), tick(ok),
		})
	}
	return t
}

// scalingP fixes an instance and sweeps p, forcing each §3 branch and the
// baseline separately and fitting their load exponents in p.
func scalingP(cfg Config) Table {
	n := cfg.scale(16384, 1024)
	fan := 2 // below √p for the whole sweep: output-sensitive regime
	inst, meta := workload.MatMulBlocks(n/fan, fan, fan)
	q := hypergraph.MatMulQuery()
	t := Table{
		ID:     "T1-scaling-p",
		Title:  "load vs p on a fixed matmul instance (branches forced)",
		Header: []string{"p", "L_os", "L_wc", "L_yann"},
		Notes: []string{
			"theory: L_os ∝ p^{-2/3}, L_wc ∝ p^{-1/2}, L_yann ∝ p^{-1}",
			"p capped so the sample-sort p² term stays below N/p (the model's N ≥ p^{1+ε} regime)",
		},
	}
	var ps, los, lwc, lys []float64
	ex := cfg.exec()
	for _, p := range []int{4, 8, 16, 32} {
		r1 := dist.FromRelationIn(ex, inst["R1"], p)
		r2 := dist.FromRelationIn(ex, inst["R2"], p)
		in := matmul.Input[int64]{R1: r1, R2: r2, B: "B"}
		_, stOS, err := matmul.Compute(intSR, in, matmul.Options{Algorithm: matmul.OutputSensitive, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		_, stWC, err := matmul.Compute(intSR, in, matmul.Options{Algorithm: matmul.WorstCase, Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		_, stY, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Strategy: core.StrategyYannakakis, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{itoa(p), itoa(stOS.MaxLoad), itoa(stWC.MaxLoad), itoa(stY.MaxLoad)})
		ps = append(ps, float64(p))
		los = append(los, float64(stOS.MaxLoad))
		lwc = append(lwc, float64(stWC.MaxLoad))
		lys = append(lys, float64(stY.MaxLoad))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fitted exponents: L_os ∝ p^%.2f, L_wc ∝ p^%.2f, L_yann ∝ p^%.2f (N=%d, OUT=%d)",
			FitExponent(ps, los), FitExponent(ps, lwc), FitExponent(ps, lys), meta.N, meta.Out))
	return t
}

// roundsConstant demonstrates the O(1)-round claim: for each query class,
// the round count of the new algorithm must not grow with the data size
// (it may vary slightly with which heavy/light branches are non-empty).
func roundsConstant(cfg Config) Table {
	p := cfg.scale(16, 8)
	t := Table{
		ID:     "T1-rounds",
		Title:  "constant rounds: round count vs data size per query class",
		Header: []string{"class", "N_small", "rounds", "N_large", "rounds_large"},
		Notes: []string{
			"the model requires O(1) rounds; the simulator's counts are conservative upper bounds",
			"(conceptually parallel phases inside one subquery are partially serialized) but must not grow with N",
		},
	}
	classes := []struct {
		name string
		q    *hypergraph.Query
	}{
		{"matmul", hypergraph.MatMulQuery()},
		{"line", hypergraph.LineQuery(3)},
		{"star", hypergraph.StarQuery(3)},
		{"star-like", hypergraph.Fig1StarLike()},
		{"tree", hypergraph.Fig3Twig()},
	}
	small := cfg.scale(64, 16)
	large := cfg.scale(1024, 128)
	for _, c := range classes {
		instS, _ := workload.Blocks(c.q, small, 2)
		instL, _ := workload.Blocks(c.q, large, 2)
		nS := 0
		for _, v := range instS {
			nS += v.Len()
		}
		nL := 0
		for _, v := range instL {
			nL += v.Len()
		}
		// Each generated instance is executed exactly once: hand over
		// ownership and skip the initial-placement copy. Each row pins its
		// class engine (the row label IS the engine) so the round counts
		// keep describing that engine even where the cost-based planner
		// would route the instance elsewhere.
		_, stS, err := core.Execute(intSR, c.q, instS, core.Options{Servers: p, Seed: cfg.Seed, Workers: cfg.Workers, OwnInput: true, Engine: c.name})
		if err != nil {
			panic(err)
		}
		_, stL, err := core.Execute(intSR, c.q, instL, core.Options{Servers: p, Seed: cfg.Seed, Workers: cfg.Workers, OwnInput: true, Engine: c.name})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			c.name, itoa(nS), itoa(stS.Rounds), itoa(nL), itoa(stL.Rounds),
		})
		if stL.Rounds > 2*stS.Rounds {
			t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %s rounds grew with N (%d → %d)", c.name, stS.Rounds, stL.Rounds))
		}
	}
	return t
}

// ---------------------------------------------------------------------------
// Lower-bound audits
// ---------------------------------------------------------------------------

func lbThm2(cfg Config) Table {
	p := cfg.scale(16, 8)
	n := int64(cfg.scale(4096, 512))
	t := Table{
		ID:     "LB-Thm2",
		Title:  "Theorem 2 hard instance: measured load vs Ω((N1+N2)/p)",
		Header: []string{"N1", "N2", "OUT", "bound", "L_measured", "L/bound"},
		Notes:  []string{"idempotent (Boolean) semiring, as the theorem requires"},
	}
	boolSR := semiring.BoolOrAnd{}
	ex := cfg.exec()
	for _, out := range []int64{n, 2 * n, 4 * n} {
		hard, err := lowerbound.Thm2(n, n, out)
		if err != nil {
			panic(err)
		}
		in := matmul.Input[bool]{
			R1: dist.FromRelationIn(ex, hard.Inst["R1"], p),
			R2: dist.FromRelationIn(ex, hard.Inst["R2"], p),
			B:  "B",
		}
		_, st, err := matmul.Compute[bool](boolSR, in, matmul.Options{Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		bound := lowerbound.Thm2Bound(hard.N1, hard.N2, p)
		t.Rows = append(t.Rows, []string{
			i64(hard.N1), i64(hard.N2), i64(hard.Out), f0(bound),
			itoa(st.MaxLoad), f2(float64(st.MaxLoad) / bound),
		})
	}
	return t
}

func lbThm3(cfg Config) Table {
	p := cfg.scale(16, 8)
	n := int64(cfg.scale(4096, 512))
	t := Table{
		ID:     "LB-Thm3",
		Title:  "Theorem 3 hard instance: measured load vs Ω(min{√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3}})",
		Header: []string{"N1", "N2", "OUT", "bound", "L_measured", "L/bound"},
		Notes:  []string{"constant-factor gap = optimality evidence (Theorem 1 matches Theorem 3)"},
	}
	boolSR := semiring.BoolOrAnd{}
	ex := cfg.exec()
	for _, out := range []int64{4 * n, 64 * n, n * n / 4} {
		hard, err := lowerbound.Thm3(n, n, out)
		if err != nil {
			panic(err)
		}
		in := matmul.Input[bool]{
			R1: dist.FromRelationIn(ex, hard.Inst["R1"], p),
			R2: dist.FromRelationIn(ex, hard.Inst["R2"], p),
			B:  "B",
		}
		_, st, err := matmul.Compute[bool](boolSR, in, matmul.Options{Seed: cfg.Seed})
		if err != nil {
			panic(err)
		}
		bound := lowerbound.Thm3Bound(hard.N1, hard.N2, hard.Out, p)
		t.Rows = append(t.Rows, []string{
			i64(hard.N1), i64(hard.N2), i64(hard.Out), f0(bound),
			itoa(st.MaxLoad), f2(float64(st.MaxLoad) / bound),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

func fig1(cfg Config) Table {
	q := hypergraph.Fig1StarLike()
	p := cfg.scale(32, 8)
	t := Table{
		ID:     "FIG1-starlike",
		Title:  "Figure 1 star-like query (5 arms) through the §6 engine",
		Header: []string{"blocks", "fan", "OUT", "L_new", "L_yann", "verified"},
	}
	view, _ := q.StarLikeView()
	t.Notes = append(t.Notes, fmt.Sprintf("center=%s arms=%d (arm 2 inner chain: C21–C22, as in the figure)",
		view.Center, len(view.Arms)))
	for _, sc := range []struct{ blocks, fan int }{{cfg.scale(128, 16), 1}, {cfg.scale(64, 8), 2}} {
		inst, meta := workload.Blocks(q, sc.blocks, sc.fan)
		rb := runEngine(cfg, q, inst, p, planner.EngineStarLike)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		if rb.engine != "star-like" {
			panic("FIG1 must run the star-like engine, got " + rb.engine)
		}
		t.Rows = append(t.Rows, []string{
			itoa(sc.blocks), itoa(sc.fan), i64(meta.Out), itoa(lNew), itoa(lY), tick(ok),
		})
	}
	return t
}

func fig2(cfg Config) Table {
	q := hypergraph.Fig2Tree()
	p := cfg.scale(32, 8)
	t := Table{
		ID:     "FIG2-twigs",
		Title:  "Figure 2 tree: reduction + twig decomposition + execution",
		Header: []string{"blocks", "fan", "OUT", "L_new", "L_yann", "verified"},
	}
	reduced, steps := hypergraph.ReducePlan(q)
	twigs := hypergraph.Twigs(reduced)
	classes := map[string]int{}
	for _, tw := range twigs {
		if len(tw.Query.Edges) == 1 {
			classes["single"]++
			continue
		}
		classes[tw.Query.Classify().String()]++
	}
	t.Notes = append(t.Notes, fmt.Sprintf("reduction removes %d edges; %d twigs: %v (paper: 2 single, 2 matmul, 1 star-like, 1 general)",
		len(steps), len(twigs), fmtClasses(classes)))
	for _, sc := range []struct{ blocks, fan int }{{cfg.scale(64, 8), 1}, {cfg.scale(16, 4), 2}} {
		inst, meta := workload.Blocks(q, sc.blocks, sc.fan)
		rb := runEngine(cfg, q, inst, p, planner.EngineTree)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		t.Rows = append(t.Rows, []string{
			itoa(sc.blocks), itoa(sc.fan), i64(meta.Out), itoa(lNew), itoa(lY), tick(ok),
		})
	}
	return t
}

func fmtClasses(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d×%s", m[k], k))
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Estimator and ablations
// ---------------------------------------------------------------------------

func estOut(cfg Config) Table {
	p := cfg.scale(16, 8)
	t := Table{
		ID:     "EST-OUT",
		Title:  "§2.2 output-size estimator accuracy (constant-factor claim)",
		Header: []string{"workload", "true_OUT", "estimate", "est/true", "L_est"},
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 3))
	q := hypergraph.MatMulQuery()
	ex := cfg.exec()

	run := func(name string, inst db.Instance[int64]) {
		red := refengine.RemoveDangling(q, inst)
		trueOut, err := refengine.CountOutput[int64](intSR, q, red)
		if err != nil {
			panic(err)
		}
		r1 := dist.FromRelationIn(ex, red["R1"], p)
		r2 := dist.FromRelationIn(ex, red["R2"], p)
		_, est, st := estimate.MatMulOut(r1, r2,
			[]dist.Attr{"A"}, []dist.Attr{"B"}, []dist.Attr{"C"},
			estimate.Params{Seed: cfg.Seed + 9})
		ratio := float64(est) / float64(maxi(trueOut, 1))
		t.Rows = append(t.Rows, []string{name, itoa(trueOut), i64(est), f2(ratio), itoa(st.MaxLoad)})
	}

	inst1, _ := workload.MatMulBlocks(cfg.scale(256, 64), 8, 8)
	run("blocks fan=8", inst1)
	inst2, _, err := workload.MatMulZipf(cfg.scale(4096, 512), cfg.scale(256, 64), 1.5, rng)
	if err != nil {
		panic(err) // parameters are compile-time constants, always valid
	}
	run("zipf s=1.5", inst2)
	inst3, _ := workload.Uniform(q, cfg.scale(4096, 512), cfg.scale(512, 128), rng)
	run("uniform", inst3)
	return t
}

// ablLocality compares the §3.1 algorithm (elementary products aggregated
// where they are produced) against the baseline that shuffles all of them
// — the mechanism §1.5 credits for the improvement.
func ablLocality(cfg Config) Table {
	p := cfg.scale(16, 8)
	n := int64(cfg.scale(2048, 256))
	t := Table{
		ID:     "ABL-locality",
		Title:  "ablation: locality of aggregation (worst-case §3.1 vs shuffle-everything baseline)",
		Header: []string{"OUT", "elem_products", "L_local(§3.1)", "L_shuffle(yann)", "ratio"},
		Notes:  []string{"both compute the same N·√OUT-ish elementary products; only placement differs"},
	}
	boolEq := func(a, b int64) bool { return a == b }
	for _, out := range []int64{16 * n, 64 * n, n * n / 8} {
		hard, err := lowerbound.Thm3(n, n, out)
		if err != nil {
			panic(err)
		}
		inst := boolToInt(hard.Inst)
		q := hypergraph.MatMulQuery()
		j, _ := refengine.MaxIntermediateJoin[int64](intSR, q, inst)
		resNew, stNew, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Seed: cfg.Seed, Workers: cfg.Workers, Engine: planner.EngineMatMul})
		if err != nil {
			panic(err)
		}
		resY, stY, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Strategy: core.StrategyYannakakis, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		if !relation.Equal[int64](intSR, boolEq, resNew, resY) {
			panic("ABL-locality: engines disagree")
		}
		t.Rows = append(t.Rows, []string{
			i64(hard.Out), itoa(j), itoa(stNew.MaxLoad), itoa(stY.MaxLoad),
			f2(float64(stY.MaxLoad) / float64(maxi(stNew.MaxLoad, 1))),
		})
	}
	return t
}

// ablPacking compares the skew-proof primitives (tie-broken sample sort /
// parallel packing) against naive hash partitioning under Zipf skew.
func ablPacking(cfg Config) Table {
	p := cfg.scale(32, 8)
	n := cfg.scale(1<<15, 1<<11)
	t := Table{
		ID:     "ABL-packing",
		Title:  "ablation: skew-proof aggregation vs naive hash partitioning (Zipf keys)",
		Header: []string{"zipf_s", "distinct", "max_key_deg", "L_sortbased", "L_hash", "ratio"},
		Notes:  []string{"sort-based reduce-by-key (§2.1 primitive) stays ~N/p; hash partitioning tracks the heaviest key"},
	}
	for _, s := range []float64{1.2, 1.7, 2.5} {
		rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(s*10)))
		z := rand.NewZipf(rng, s, 1, uint64(n-1))
		keys := make([]int64, n)
		deg := map[int64]int{}
		for i := range keys {
			keys[i] = int64(z.Uint64())
			deg[keys[i]]++
		}
		maxDeg := 0
		for _, d := range deg {
			if d > maxDeg {
				maxDeg = d
			}
		}
		pt := mpc.DistributeOwned(keys, p) // keys are not reused below
		_, stSort := mpc.CountByKey(pt, func(k int64) int64 { return k })
		// Naive: route by key hash, combine locally; load = max received.
		_, stHash := mpc.Route(pt, func(_ int, k int64) int {
			h := uint64(k) * 0x9e3779b97f4a7c15
			return int(h % uint64(p))
		})
		t.Rows = append(t.Rows, []string{
			f2(s), itoa(len(deg)), itoa(maxDeg), itoa(stSort.MaxLoad), itoa(stHash.MaxLoad),
			f2(float64(stHash.MaxLoad) / float64(maxi(stSort.MaxLoad, 1))),
		})
	}
	return t
}

// altFullJoin reproduces §1.4's closing observation: computing the full
// join worst-case optimally (HyperCube) and then aggregating is bottlenecked
// by the OUT_f/p aggregation, so it cannot beat Yannakakis — while the §3
// algorithm beats both.
func altFullJoin(cfg Config) Table {
	q := hypergraph.MatMulQuery()
	p := cfg.scale(16, 8)
	blocks := cfg.scale(256, 32)
	t := Table{
		ID:     "ALT-fulljoin",
		Title:  "§1.4 alternative: HyperCube full join + aggregate vs Yannakakis vs §3",
		Header: []string{"OUT", "OUT_f", "OUT_f/p", "L_hypercube", "L_yann", "L_new", "verified"},
		Notes: []string{
			"paper: \"the aggregation step will become the bottleneck with a load of O(OUT_f/p)\"",
			"OUT_f is the full join size (= mult·OUT on these instances)",
			"our ProjectAgg pre-combines locally, softening the OUT_f/p shuffle when OUT is small;",
			"the §3 algorithm still wins or ties on every row, as §1.4 concludes",
		},
	}
	ex := cfg.exec()
	for _, mult := range []int{1, 4, 16, 64} {
		inst, meta := workload.BlocksMulti(q, blocks, 4, mult)
		outf := meta.Out * int64(mult)
		rels := make(map[string]dist.Rel[int64], len(q.Edges))
		for _, e := range q.Edges {
			rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], p)
		}
		resHC, stHC := hypercube.JoinAggregate(intSR, q, rels, cfg.Seed)
		rb := runEngine(cfg, q, inst, p, planner.EngineMatMul)
		lNew, lY, ok := rb.stNew.MaxLoad, rb.stY.MaxLoad, rb.verified
		t.addBench(p, int64(meta.N), meta.Out, rb)
		resY, _, err := core.Execute(intSR, q, inst, core.Options{Servers: p, Strategy: core.StrategyYannakakis, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			panic(err)
		}
		ok = ok && relation.Equal[int64](intSR, func(a, b int64) bool { return a == b },
			dist.ToRelation(resHC), resY)
		t.Rows = append(t.Rows, []string{
			i64(meta.Out), i64(outf), i64(outf / int64(p)),
			itoa(stHC.MaxLoad), itoa(lY), itoa(lNew), tick(ok),
		})
	}
	return t
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// FitExponent fits y ∝ x^k by least squares in log-log space.
func FitExponent(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

func boolToInt(inst db.Instance[bool]) db.Instance[int64] {
	out := make(db.Instance[int64], len(inst))
	for name, r := range inst {
		nr := relation.New[int64](r.Schema()...)
		for _, row := range r.Rows {
			nr.AppendRow(relation.Row[int64]{Vals: row.Vals, W: 1})
		}
		out[name] = nr
	}
	return out
}

func itoa(x int) string     { return fmt.Sprintf("%d", x) }
func i64toa(x int64) string { return fmt.Sprintf("%d", x) }
func i64(x int64) string    { return fmt.Sprintf("%d", x) }
func f0(x float64) string   { return fmt.Sprintf("%.0f", x) }
func f2(x float64) string   { return fmt.Sprintf("%.2f", x) }
func tick(ok bool) string {
	if ok {
		return "yes"
	}
	return "MISMATCH"
}
func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
