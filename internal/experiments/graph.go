package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/spmv"
	"mpcjoin/internal/workload"
)

// graphIterLoad is the iterated graph-analytics experiment: BFS, SSSP and
// PageRank driven by the internal/spmv kernel over a seeded power-law
// graph, checking that every iteration of the driver loop is one
// constant-round SpMV whose max-load meets the Table 1 matmul bound
//
//	(nnz + in)/p + out/p + p
//
// with in/out the iteration's frontier sizes — the bound is per primitive
// invocation, so it must hold for each iteration separately, not just on
// average. Results are verified against sequential references (BFS levels,
// Dijkstra distances, rank mass conservation).

// graphBoundSlack absorbs the constant factors the Table 1 formula hides
// (hash-partitioning balls-into-bins deviation, the +p broadcast term's
// constant). Same slack the spmv package's own load test uses.
const graphBoundSlack = 8

func graphIterLoad(cfg Config) Table {
	t := Table{
		ID:     "GRAPH-iterload",
		Title:  "per-iteration SpMV load vs (nnz+in)/p + out/p + p on a power-law graph",
		Header: []string{"kind", "p", "n", "nnz", "iters", "converged", "worst load", "worst bound", "ratio", "within", "verified"},
	}

	n := cfg.scale(20000, 1500)
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	inst, _, err := workload.PowerLawGraph(n, 8, 1.2, 100, rng)
	if err != nil {
		panic(err) // parameters are compile-time constants, always valid
	}
	rel := inst["E"]
	boolEdges := make([]spmv.Edge[bool], rel.Len())
	intEdges := make([]spmv.Edge[int64], rel.Len())
	for i, row := range rel.Rows {
		boolEdges[i] = spmv.Edge[bool]{Src: row.Vals[0], Dst: row.Vals[1], W: true}
		intEdges[i] = spmv.Edge[int64]{Src: row.Vals[0], Dst: row.Vals[1], W: row.W}
	}
	wantLevels := serialBFSLevels(intEdges, 0)
	wantDist := serialDijkstra(intEdges, 0)
	t.Notes = append(t.Notes,
		fmt.Sprintf("power-law graph: n=%d requested, %d edges, skew s=1.2, avg degree 8", n, rel.Len()),
		"within = every iteration's MaxLoad ≤ slack·((nnz+in)/p + out/p + p), slack "+itoa(graphBoundSlack))

	ps := []int{4, 16, 64}
	if cfg.Quick {
		ps = []int{4, 16}
	}
	for _, p := range ps {
		for _, kind := range []string{"bfs", "sssp", "pagerank"} {
			var tr *mpc.Tracer
			if cfg.Trace {
				tr = mpc.NewTracer()
			}
			o := core.Options{Servers: p, Workers: cfg.Workers, Seed: cfg.Seed,
				Tracer: tr, Faults: cfg.faultPlane(), Transport: cfg.Transport}
			ex, release, err := o.NewScope(context.Background())
			if err != nil {
				panic(err)
			}

			var iters []spmv.IterStat
			var st mpc.Stats
			var nnz, nVerts, outRows int64
			var conv, verified bool
			t0 := time.Now()
			switch kind {
			case "bfs":
				gr := spmv.BFS(ex, boolEdges, p, cfg.Seed, 0, 0)
				iters, st, conv, nnz, nVerts = gr.Iters, mpc.Seq(gr.Build, gr.Stats), gr.Converged, gr.NNZ, gr.N
				outRows = int64(len(gr.Rows))
				verified = entriesEqual(gr.Rows, wantLevels)
			case "sssp":
				gr := spmv.SSSP(ex, intEdges, p, cfg.Seed, 0, 0)
				iters, st, conv, nnz, nVerts = gr.Iters, mpc.Seq(gr.Build, gr.Stats), gr.Converged, gr.NNZ, gr.N
				outRows = int64(len(gr.Rows))
				verified = entriesEqual(gr.Rows, wantDist)
			case "pagerank":
				pr := spmv.PageRank(ex, intEdges, p, cfg.Seed, 0.85, 1e-9, 0)
				iters, st, conv, nnz, nVerts = pr.Iters, mpc.Seq(pr.Build, pr.Stats), pr.Converged, pr.NNZ, pr.N
				outRows = int64(len(pr.Ranks))
				var sum float64
				for _, r := range pr.Ranks {
					sum += r.Val
				}
				verified = sum > 0.999 && sum < 1.001
			}
			wall := time.Since(t0)
			release()

			// The bound is per iteration: report the iteration with the worst
			// load/bound ratio, and whether every iteration stayed within
			// slack of its own bound.
			within := true
			var worstLoad, worstBound int
			worstRatio := 0.0
			for _, it := range iters {
				bound := int((nnz+it.In)/int64(p) + it.Out/int64(p) + int64(p))
				if it.Stats.MaxLoad > graphBoundSlack*bound {
					within = false
				}
				if r := float64(it.Stats.MaxLoad) / float64(bound); r > worstRatio {
					worstRatio, worstLoad, worstBound = r, it.Stats.MaxLoad, bound
				}
			}
			ver := "yes"
			if !verified {
				ver = "MISMATCH"
			}
			win := "yes"
			if !within {
				win = "EXCEEDED"
			}
			t.Rows = append(t.Rows, []string{
				kind, itoa(p), i64toa(nVerts), i64toa(nnz),
				itoa(len(iters)), fmt.Sprintf("%v", conv),
				itoa(worstLoad), itoa(worstBound), fmt.Sprintf("%.2f", worstRatio),
				win, ver,
			})
			row := BenchRow{P: p, N: nnz, Out: outRows,
				MaxLoad: st.MaxLoad, Rounds: st.Rounds, WallNs: wall.Nanoseconds()}
			if tr != nil {
				row.Trace = tr.Rounds()
			}
			if o.Faults != nil {
				rep := o.Faults.Report()
				row.Faults = &rep
			}
			t.Bench = append(t.Bench, row)
		}
	}
	return t
}

// entriesEqual compares a driver's output rows to a reference map.
func entriesEqual(rows []spmv.Entry[int64], want map[relation.Value]int64) bool {
	if len(rows) != len(want) {
		return false
	}
	for _, r := range rows {
		w, ok := want[r.Idx]
		if !ok || w != r.Val {
			return false
		}
	}
	return true
}

// serialBFSLevels is the sequential reference for BFS hop levels.
func serialBFSLevels(edges []spmv.Edge[int64], src relation.Value) map[relation.Value]int64 {
	adj := map[relation.Value][]relation.Value{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
	}
	level := map[relation.Value]int64{src: 0}
	frontier := []relation.Value{src}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []relation.Value
		for _, v := range frontier {
			for _, u := range adj[v] {
				if _, seen := level[u]; !seen {
					level[u] = d
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return level
}

// serialDijkstra is the sequential reference for SSSP distances; the
// graphs are small enough that the O(V²) scan variant is fine.
func serialDijkstra(edges []spmv.Edge[int64], src relation.Value) map[relation.Value]int64 {
	adj := map[relation.Value][]spmv.Edge[int64]{}
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e)
	}
	dist := map[relation.Value]int64{src: 0}
	done := map[relation.Value]bool{}
	for {
		var u relation.Value
		best := int64(-1)
		for v, d := range dist {
			if !done[v] && (best < 0 || d < best) {
				u, best = v, d
			}
		}
		if best < 0 {
			return dist
		}
		done[u] = true
		for _, e := range adj[u] {
			if d, ok := dist[e.Dst]; !ok || best+e.W < d {
				dist[e.Dst] = best + e.W
			}
		}
	}
}
