package boundcheck

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBoundsHoldAcrossP is the load-bound regression net: every query
// class must stay within its slack × Table 1 bound at p = 4, 16 and 64.
func TestBoundsHoldAcrossP(t *testing.T) {
	results, err := Run(Config{Quick: testing.Short(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(Classes()) * 3
	if len(results) != wantRows {
		t.Fatalf("got %d results, want %d (classes × p values)", len(results), wantRows)
	}
	for _, r := range results {
		t.Logf("%-15s p=%-3d N=%-6d OUT=%-6d load=%-6d bound=%.0f ratio=%.2f",
			r.Class, r.P, r.N, r.Out, r.MaxLoad, r.Bound, r.Ratio)
		if r.MaxLoad <= 0 || r.Rounds <= 0 {
			t.Errorf("%s p=%d: empty metering: %+v", r.Class, r.P, r)
		}
	}
	if err := Check(results); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDoesNotChangeLoads: a traced sweep records a timeline for every
// run whose per-round maxima are consistent with the metered MaxLoad, and
// the loads are identical to an untraced sweep.
func TestTraceDoesNotChangeLoads(t *testing.T) {
	cfg := Config{Quick: true, Ps: []int{8}, Seed: 7}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = true
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(traced) {
		t.Fatalf("row counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		pr, tr := plain[i], traced[i]
		if pr.MaxLoad != tr.MaxLoad || pr.Rounds != tr.Rounds || pr.Out != tr.Out {
			t.Fatalf("%s p=%d: tracing changed the run: %+v vs %+v", pr.Class, pr.P, pr, tr)
		}
		if len(pr.Trace) != 0 {
			t.Fatalf("%s: untraced run has a timeline", pr.Class)
		}
		if len(tr.Trace) == 0 {
			t.Fatalf("%s: traced run has no timeline", tr.Class)
		}
		maxRound := 0
		for _, rt := range tr.Trace {
			if rt.Op == "" || rt.Servers <= 0 {
				t.Fatalf("%s: malformed round %+v", tr.Class, rt)
			}
			if rt.MaxLoad > maxRound {
				maxRound = rt.MaxLoad
			}
		}
		if maxRound < tr.MaxLoad {
			t.Fatalf("%s: trace max %d below metered MaxLoad %d", tr.Class, maxRound, tr.MaxLoad)
		}
	}
}

// TestCheckReportsViolations: Check must name every failing row.
func TestCheckReportsViolations(t *testing.T) {
	results := []Result{
		{Class: "star", P: 4, MaxLoad: 10, Bound: 100, Slack: 8, OK: true},
		{Class: "line", P: 16, MaxLoad: 9000, Bound: 100, Slack: 8, OK: false},
	}
	err := Check(results)
	if err == nil || !strings.Contains(err.Error(), "line p=16") {
		t.Fatalf("Check = %v, want a line p=16 violation", err)
	}
	if strings.Contains(err.Error(), "star") {
		t.Fatalf("Check reported a passing row: %v", err)
	}
	if err := Check(results[:1]); err != nil {
		t.Fatalf("Check on passing rows = %v, want nil", err)
	}
}

// TestWriteJSON: the artifact is valid JSON that round-trips, and an empty
// result set marshals as [] rather than null.
func TestWriteJSON(t *testing.T) {
	results, err := Run(Config{Quick: true, Ps: []int{4}, Seed: 7, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, results); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) || back[0].Class != results[0].Class || len(back[0].Trace) == 0 {
		t.Fatalf("round-trip mismatch: %d rows, first %+v", len(back), back[0])
	}
	sb.Reset()
	if err := WriteJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty results = %q, want []", sb.String())
	}
}
