package boundcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/planner"
	"mpcjoin/internal/workload"
)

// planner.go is the dominated-engine checker for the cost-based planner:
// one controlled instance per query class, swept across cluster sizes,
// with StrategyAuto's measured MaxLoad asserted against every forced
// legal candidate. The planner is allowed to be approximate — estimates
// are estimates — but it must never pick an engine that measures more
// than PlannerSlack× worse than the best candidate on the instance.
// A failure means the cost model's ranking diverged from reality.

// PlannerSlack is the dominated-engine tolerance: the auto-planned run's
// measured MaxLoad must stay within this factor of the best forced
// candidate on every checked instance.
const PlannerSlack = 1.1

// CandidateLoad is one forced candidate's measured load on an instance,
// next to the load the planner predicted for it.
type CandidateLoad struct {
	Engine    string  `json:"engine"`
	MaxLoad   int     `json:"max_load"`
	Predicted float64 `json:"predicted_load,omitempty"`
}

// PlanResult is one (instance, p) planner measurement: what auto chose
// and measured, what every forced candidate measured, and whether auto
// stayed within PlannerSlack of the best.
type PlanResult struct {
	Name   string `json:"name"`
	Class  string `json:"class"`
	P      int    `json:"p"`
	N      int64  `json:"N"`
	Chosen string `json:"chosen"`
	// Predicted is the planner's load prediction for Chosen; AutoLoad the
	// auto run's measured MaxLoad (bit-identical to Chosen forced).
	Predicted  float64         `json:"predicted_load"`
	AutoLoad   int             `json:"auto_load"`
	Candidates []CandidateLoad `json:"candidates"`
	// Best is the forced candidate with the smallest measured MaxLoad;
	// the check is AutoLoad ≤ Slack·BestLoad.
	Best     string  `json:"best_engine"`
	BestLoad int     `json:"best_load"`
	Slack    float64 `json:"slack"`
	Ratio    float64 `json:"ratio"`
	OK       bool    `json:"ok"`
}

// planCase is one per-class workload the planner sweep runs on.
type planCase struct {
	name string
	make func(cfg Config) (*hypergraph.Query, db.Instance[int64])
}

var planCases = []planCase{
	// Sparse regime: a small true output buried in mostly-dangling inputs,
	// so OUT ≤ N/p across the whole sweep and the linear branch is live.
	{name: "matmul-sparse", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		inst, _ := workload.MatMulBlocks(cfg.scale(64, 32), 1, 1)
		return hypergraph.MatMulQuery(), workload.InjectDangling(inst, 1, 31)
	}},
	// Dense regime: every block multiplies 8×8, so OUT = 64·N1/8 and the
	// square-root/cube-root branches compete.
	{name: "matmul-dense", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		inst, _ := workload.MatMulBlocks(cfg.scale(64, 32), 8, 8)
		return hypergraph.MatMulQuery(), inst
	}},
	{name: "line", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.LineQuery(3)
		inst, _ := workload.Blocks(q, cfg.scale(256, 64), 4)
		return q, inst
	}},
	{name: "star", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.StarQuery(3)
		inst, _ := workload.Blocks(q, cfg.scale(256, 64), 4)
		return q, inst
	}},
	{name: "star-like", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.Fig1StarLike()
		inst, _ := workload.BlocksMulti(q, cfg.scale(64, 16), 2, 2)
		return q, inst
	}},
	{name: "tree", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.Fig3Twig()
		inst, _ := workload.BlocksMulti(q, cfg.scale(64, 16), 2, 2)
		return q, inst
	}},
	{name: "free-connex", make: func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.NewQuery([]hypergraph.Edge{
			hypergraph.Bin("R1", "A", "B"),
			hypergraph.Bin("R2", "B", "C"),
		}, "A", "B", "C")
		inst, _ := workload.Blocks(q, cfg.scale(256, 64), 4)
		return q, inst
	}},
}

// RunPlanner sweeps every planner case across cfg's cluster sizes. For
// each (instance, p) it executes StrategyAuto once and every legal
// candidate forced, and scores auto against the measured best. It also
// asserts the auto run's Stats are bit-identical to its chosen engine
// forced — the invariant that makes the comparison meaningful at all.
func RunPlanner(cfg Config) ([]PlanResult, error) {
	slack := PlannerSlack
	if cfg.Slack > 0 {
		slack = cfg.Slack
	}
	var out []PlanResult
	for _, c := range planCases {
		q, inst := c.make(cfg)
		class := q.Classify()
		for _, p := range cfg.ps() {
			var plan planner.Plan
			_, st, err := core.Execute(intSR, q, inst, core.Options{
				Servers: p, Seed: cfg.Seed, PlanOut: &plan,
			})
			if err != nil {
				return nil, fmt.Errorf("planner-check: %s p=%d auto: %w", c.name, p, err)
			}
			r := PlanResult{
				Name: c.name, Class: class.String(), P: p,
				Chosen: plan.Chosen, Predicted: plan.PredictedLoad,
				AutoLoad: st.MaxLoad, Slack: slack,
			}
			for _, e := range q.Edges {
				r.N += int64(inst[e.Name].Len())
			}
			for _, eng := range planner.Legal(class) {
				_, fst, err := core.Execute(intSR, q, inst, core.Options{
					Servers: p, Seed: cfg.Seed, Engine: eng,
				})
				if err != nil {
					return nil, fmt.Errorf("planner-check: %s p=%d engine=%s: %w", c.name, p, eng, err)
				}
				var pred float64
				for _, cand := range plan.Candidates {
					if cand.Engine == eng {
						pred = cand.PredictedLoad
					}
				}
				r.Candidates = append(r.Candidates, CandidateLoad{Engine: eng, MaxLoad: fst.MaxLoad, Predicted: pred})
				if r.Best == "" || fst.MaxLoad < r.BestLoad {
					r.Best, r.BestLoad = eng, fst.MaxLoad
				}
				if eng == plan.Chosen && fst != st {
					return nil, fmt.Errorf("planner-check: %s p=%d: auto Stats %+v != forced %s Stats %+v (auto/forced divergence)",
						c.name, p, st, eng, fst)
				}
			}
			limit := slack * float64(r.BestLoad)
			r.Ratio = float64(r.AutoLoad) / limit
			r.OK = float64(r.AutoLoad) <= limit
			out = append(out, r)
		}
	}
	return out, nil
}

// CheckPlanner returns a non-nil error listing every dominated-engine
// violation in results.
func CheckPlanner(results []PlanResult) error {
	var bad []string
	for _, r := range results {
		if !r.OK {
			bad = append(bad, fmt.Sprintf("%s p=%d: auto chose %s (load %d) but %s measured %d (> %.2f× tolerance)",
				r.Name, r.P, r.Chosen, r.AutoLoad, r.Best, r.BestLoad, r.Slack))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("planner-check: %d violation(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// WritePlanJSON writes planner results as indented JSON (the CI artifact
// format).
func WritePlanJSON(w io.Writer, results []PlanResult) error {
	if results == nil {
		results = []PlanResult{}
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
