// Package boundcheck is the Table 1 load-bound regression checker: it runs
// one controlled block workload per query class across a sweep of cluster
// sizes p and asserts the measured MaxLoad stays within a constant factor
// of the class's Table 1 formula (including the model's p² sample-sort
// term). A failure means an engine's load behavior regressed relative to
// the paper's bound — the experiments would still "work", just at the
// wrong asymptotics, which plain correctness tests cannot catch.
//
// The checker can also record each run's per-round load timeline
// (mpc.RoundTrace), so a bound violation in CI ships with the round that
// caused it. Tracing never changes loads, rounds or results.
package boundcheck

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/linequery"
	"mpcjoin/internal/matmul"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/starquery"
	"mpcjoin/internal/treequery"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

// Config selects the sweep.
type Config struct {
	// Quick shrinks instances for the CI short lane.
	Quick bool
	// Ps is the cluster sizes to sweep; nil means {4, 16, 64}.
	Ps []int
	// Slack overrides every class's default slack constant when positive.
	Slack float64
	// Seed drives hash partitioning (runs are reproducible per seed).
	Seed uint64
	// Trace records each run's per-round load timeline into Result.Trace.
	Trace bool
}

func (c Config) ps() []int {
	if len(c.Ps) == 0 {
		return []int{4, 16, 64}
	}
	return c.Ps
}

func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Result is one (class, p) measurement against its Table 1 bound.
type Result struct {
	Class   string  `json:"class"`
	P       int     `json:"p"`
	N       int64   `json:"N"`
	Out     int64   `json:"OUT"`
	MaxLoad int     `json:"maxLoad"`
	Rounds  int     `json:"rounds"`
	// Bound is the raw Table 1 formula value; the check is
	// MaxLoad ≤ Slack·Bound, and Ratio = MaxLoad/(Slack·Bound).
	Bound float64 `json:"bound"`
	Slack float64 `json:"slack"`
	Ratio float64 `json:"ratio"`
	OK    bool    `json:"ok"`
	// Trace is the run's per-round load timeline (Config.Trace only).
	Trace []mpc.RoundTrace `json:"trace,omitempty"`
}

// measured is what one class run reports before the bound is applied.
type measured struct {
	n     int64 // total input size
	out   int64
	st    mpc.Stats
	bound float64
}

// class bundles a query class's workload, engine call and Table 1 formula.
// The slack constants match the per-package loadbound tests.
type class struct {
	name  string
	slack float64
	run   func(cfg Config, ex *mpc.Exec, p int) (measured, error)
}

// Classes lists the checked class names in sweep order.
func Classes() []string {
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.name
	}
	return names
}

var classes = []class{
	// Theorem 1 linear branch on the OUT ≤ N/p regime: O((N+OUT)/p).
	{name: "matmul-linear", slack: 6, run: func(cfg Config, ex *mpc.Exec, p int) (measured, error) {
		inst, meta := workload.MatMulBlocks(cfg.scale(512, 128), 2, 2)
		st, err := runMatMul(cfg, ex, inst, p, matmul.Linear)
		bound := 2*float64(meta.N)/float64(p) + float64(meta.Out)/float64(p) + float64(p*p)
		return measured{n: int64(meta.N), out: meta.Out, st: st, bound: bound}, err
	}},
	// Lemma 2 output-sensitive branch: (N1N2·OUT)^{1/3}/p^{2/3} + input + OUT terms.
	{name: "matmul-outsens", slack: 8, run: func(cfg Config, ex *mpc.Exec, p int) (measured, error) {
		inst, meta := workload.MatMulBlocks(cfg.scale(512, 128), 4, 4)
		st, err := runMatMul(cfg, ex, inst, p, matmul.OutputSensitive)
		n1 := float64(meta.PerEdge["R1"])
		bound := math.Cbrt(n1*n1*float64(meta.Out))/math.Pow(float64(p), 2.0/3.0) +
			2*n1/float64(p) + float64(meta.Out)/float64(p) + float64(p*p)
		return measured{n: int64(meta.N), out: meta.Out, st: st, bound: bound}, err
	}},
	// Theorem 5, 3-arm star: (N·OUT/p)^{2/3} + N√OUT/p per relation.
	{name: "star", slack: 8, run: func(cfg Config, ex *mpc.Exec, p int) (measured, error) {
		q := hypergraph.StarQuery(3)
		inst, meta := workload.Blocks(q, cfg.scale(256, 64), 4)
		res, err := runClass(cfg, ex, q, inst, p, func(rels map[string]dist.Rel[int64]) (mpc.Stats, error) {
			_, st, err := starquery.Compute(intSR, q, rels, starquery.Options{Seed: cfg.Seed})
			return st, err
		})
		n, out := float64(meta.N)/3, float64(meta.Out)
		bound := math.Pow(n*out/float64(p), 2.0/3.0) + n*math.Sqrt(out)/float64(p) +
			(3*n+out)/float64(p) + float64(p*p)
		return measured{n: int64(meta.N), out: meta.Out, st: res, bound: bound}, err
	}},
	// Theorem 4, 3-relation line: N√OUT/p + (N·OUT/p)^{2/3}.
	{name: "line", slack: 8, run: func(cfg Config, ex *mpc.Exec, p int) (measured, error) {
		q := hypergraph.LineQuery(3)
		inst, meta := workload.Blocks(q, cfg.scale(256, 64), 4)
		res, err := runClass(cfg, ex, q, inst, p, func(rels map[string]dist.Rel[int64]) (mpc.Stats, error) {
			_, st, err := linequery.Compute(intSR, q, rels, linequery.Options{Seed: cfg.Seed})
			return st, err
		})
		n, out := float64(meta.N)/3, float64(meta.Out)
		bound := n*math.Sqrt(out)/float64(p) + math.Pow(n*out/float64(p), 2.0/3.0) +
			(3*n+out)/float64(p) + float64(p*p)
		return measured{n: int64(meta.N), out: meta.Out, st: res, bound: bound}, err
	}},
	// Theorem 6 on the Figure 3 twig: N·OUT^{2/3}/p + (N+OUT)/p.
	{name: "tree", slack: 8, run: func(cfg Config, ex *mpc.Exec, p int) (measured, error) {
		q := hypergraph.Fig3Twig()
		inst, meta := workload.BlocksMulti(q, cfg.scale(64, 16), 2, 2)
		res, err := runClass(cfg, ex, q, inst, p, func(rels map[string]dist.Rel[int64]) (mpc.Stats, error) {
			_, st, err := treequery.Compute(intSR, q, rels, treequery.Options{Seed: cfg.Seed})
			return st, err
		})
		nMax := 0
		for _, n := range meta.PerEdge {
			if n > nMax {
				nMax = n
			}
		}
		out := float64(meta.Out)
		bound := float64(nMax)*math.Pow(out, 2.0/3.0)/float64(p) +
			(float64(meta.N)+out)/float64(p) + float64(p*p)
		return measured{n: int64(meta.N), out: meta.Out, st: res, bound: bound}, err
	}},
}

func runMatMul(cfg Config, ex *mpc.Exec, inst db.Instance[int64], p int, alg matmul.Algorithm) (mpc.Stats, error) {
	in := matmul.Input[int64]{
		R1: dist.FromRelationIn(ex, inst["R1"], p),
		R2: dist.FromRelationIn(ex, inst["R2"], p),
		B:  "B",
	}
	_, st, err := matmul.Compute(intSR, in, matmul.Options{Algorithm: alg, Seed: cfg.Seed})
	return st, err
}

func runClass(cfg Config, ex *mpc.Exec, q *hypergraph.Query, inst db.Instance[int64], p int,
	compute func(map[string]dist.Rel[int64]) (mpc.Stats, error)) (mpc.Stats, error) {
	rels := make(map[string]dist.Rel[int64], len(q.Edges))
	for _, e := range q.Edges {
		rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], p)
	}
	return compute(rels)
}

// Run sweeps every class across cfg's cluster sizes and returns one Result
// per (class, p), with OK already evaluated.
func Run(cfg Config) ([]Result, error) {
	var out []Result
	for _, c := range classes {
		slack := c.slack
		if cfg.Slack > 0 {
			slack = cfg.Slack
		}
		for _, p := range cfg.ps() {
			ex := mpc.NewExec(context.Background(), 0)
			var tr *mpc.Tracer
			if cfg.Trace {
				tr = mpc.NewTracer()
				ex = ex.WithTracer(tr)
			}
			m, err := c.run(cfg, ex, p)
			if err != nil {
				return nil, fmt.Errorf("boundcheck: %s p=%d: %w", c.name, p, err)
			}
			limit := slack * m.bound
			r := Result{
				Class: c.name, P: p, N: m.n, Out: m.out,
				MaxLoad: m.st.MaxLoad, Rounds: m.st.Rounds,
				Bound: m.bound, Slack: slack,
				Ratio: float64(m.st.MaxLoad) / limit,
				OK:    float64(m.st.MaxLoad) <= limit,
			}
			if tr != nil {
				r.Trace = tr.Rounds()
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Check returns a non-nil error listing every bound violation in results.
func Check(results []Result) error {
	var bad []string
	for _, r := range results {
		if !r.OK {
			bad = append(bad, fmt.Sprintf("%s p=%d: load %d > %.0f (%.1f× Table-1 bound %.0f)",
				r.Class, r.P, r.MaxLoad, r.Slack*r.Bound, r.Slack, r.Bound))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("boundcheck: %d violation(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// WriteJSON writes results as indented JSON (the CI artifact format).
func WriteJSON(w io.Writer, results []Result) error {
	if results == nil {
		results = []Result{} // marshal as [], not null
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
