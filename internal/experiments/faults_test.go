package experiments

import (
	"fmt"
	"strings"
	"testing"

	"mpcjoin/internal/mpc"
)

// flatten joins table rows for cheap equality checks in tests.
func flatten(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x00")
	}
	return out
}

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in   string
		want mpc.FaultSpec
	}{
		{"crash=0.05", mpc.FaultSpec{CrashProb: 0.05}},
		{"round=2", mpc.FaultSpec{CrashRound: 2}},
		{"crash=0.05,drop=0.1,straggler=0.2,delay=4,retries=6,seed=9,stop=3",
			mpc.FaultSpec{CrashProb: 0.05, DropProb: 0.1, StragglerProb: 0.2, StragglerDelay: 4, MaxRetries: 6, Seed: 9, StopAfter: 3}},
		// straggler without an explicit delay gets the default delay.
		{"straggler=0.5", mpc.FaultSpec{StragglerProb: 0.5, StragglerDelay: 8}},
		// whitespace and empty fields are tolerated.
		{" crash=0.3 , retries=-1 ,", mpc.FaultSpec{CrashProb: 0.3, MaxRetries: -1}},
	}
	for _, c := range cases {
		got, err := ParseFaultSpec(c.in)
		if err != nil {
			t.Errorf("ParseFaultSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseFaultSpecEmpty(t *testing.T) {
	spec, err := ParseFaultSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Enabled() {
		t.Errorf("empty flag must parse to a disabled spec, got %+v", spec)
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	bad := map[string]string{
		"crash":          "not key=value",
		"crash=x":        "not a number",
		"round=1.5":      "not an integer",
		"seed=-1":        "not an unsigned integer",
		"bogus=1":        "unknown key",
		"crash=1.5":      "must be in [0, 1]",
		"delay=8":        "injects nothing",
		"retries=4":      "injects nothing",
		"drop=0.5":       "", // valid: drops alone are injectable
		"straggler=-0.1": "must be in [0, 1]",
	}
	for in, wantErr := range bad {
		_, err := ParseFaultSpec(in)
		if wantErr == "" {
			if err != nil {
				t.Errorf("ParseFaultSpec(%q): unexpected error %v", in, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("ParseFaultSpec(%q) err = %v, want containing %q", in, err, wantErr)
		}
	}
}

// TestRunWithFaults: an experiment run under an absorbable fault schedule
// must produce the same table rows as the fault-free run (retry is
// transparent to loads, rounds and verification) while the bench rows
// carry the per-run fault accounting.
func TestRunWithFaults(t *testing.T) {
	base, err := Run("T1-MM-load", Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseFaultSpec("crash=0.05,drop=0.05,straggler=0.2,retries=10")
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run("T1-MM-load", Config{Quick: true, Seed: 1, Faults: spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted.Rows) != len(base.Rows) {
		t.Fatalf("row count changed under faults: %d vs %d", len(faulted.Rows), len(base.Rows))
	}
	for i := range base.Rows {
		if strings.Join(faulted.Rows[i], "|") != strings.Join(base.Rows[i], "|") {
			t.Errorf("row %d changed under absorbed faults:\n got %v\nwant %v", i, faulted.Rows[i], base.Rows[i])
		}
	}
	if len(faulted.Bench) == 0 {
		t.Fatal("no bench rows")
	}
	injected := 0
	for _, b := range faulted.Bench {
		if b.Faults == nil {
			t.Fatalf("bench row %s missing fault accounting", b.ID)
		}
		injected += b.Faults.Injected
	}
	if injected == 0 {
		t.Error("fault schedule injected nothing across the sweep; pick a richer seed")
	}
	for _, b := range base.Bench {
		if b.Faults != nil {
			t.Error("fault-free bench row carries fault accounting")
		}
	}
}

// TestRunWorkersScoped: with the ambient-runtime shim gone from Run,
// worker counts must ride the per-execution scope — same tables for any
// setting, and no process-global runtime swap (verified by running
// concurrently in the race lane).
func TestRunWorkersScoped(t *testing.T) {
	base, err := Run("T1-rounds", Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 2)
	for _, w := range []int{1, 4} {
		go func(w int) {
			tab, err := Run("T1-rounds", Config{Quick: true, Seed: 1, Workers: w})
			if err == nil && strings.Join(flatten(tab.Rows), "|") != strings.Join(flatten(base.Rows), "|") {
				err = fmt.Errorf("workers=%d: table rows differ from the serial run", w)
			}
			done <- err
		}(w)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
