package chaos

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

// TestChaosSweep runs the full quick matrix: every engine must absorb
// every retryable schedule bit-identically and fail the budget schedule
// with the typed error.
func TestChaosSweep(t *testing.T) {
	res, err := Run(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatal(err)
	}
	if want := len(Engines()) * len(Scenarios()); len(res) != want {
		t.Fatalf("want %d results, got %d", want, len(res))
	}
	for _, r := range res {
		if r.Injected == 0 {
			t.Errorf("%s/%s: schedule injected nothing — the cell proves nothing", r.Engine, r.Scenario)
		}
		if r.Scenario == "budget-exhausted" && !r.BudgetErr {
			t.Errorf("%s/%s: budget schedule did not raise ErrFaultBudgetExceeded", r.Engine, r.Scenario)
		}
	}
}

// TestChaosDeterministicAcrossWorkers: the whole sweep — results, row
// hashes, stats and fault accounting — must be identical for any worker
// count.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	want, err := Run(Config{Quick: true, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Run(Config{Quick: true, Seed: 7, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("workers=%d: %s/%s differs:\n got %+v\nwant %+v",
						w, want[i].Engine, want[i].Scenario, got[i], want[i])
				}
			}
		}
	}
}

// TestChaosWriteJSON: the artifact is a JSON array that round-trips.
func TestChaosWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty results = %q, want []", got)
	}
	res, err := Run(Config{Quick: true, Seed: 1, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res) {
		t.Errorf("round-trip lost results: %d vs %d", len(back), len(res))
	}
}
