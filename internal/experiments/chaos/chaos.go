// Package chaos is the fault-resilience sweep: it runs every engine
// (matmul, star, line, tree, yannakakis, hypercube) under a matrix of
// deterministic fault schedules — stragglers, crashes, message drops,
// mixtures, and one schedule built to exhaust the retry budget — and
// asserts the tentpole invariant of the fault plane: any retryable
// schedule is fully absorbed, leaving Rows and base Stats bit-identical
// to the fault-free run, while an unabsorbable schedule fails with the
// typed mpc.ErrFaultBudgetExceeded instead of wrong answers. A failure
// here means retry recovery changed results (or silently swallowed a
// fault) — correctness tests without injection cannot catch either.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/dist"
	"mpcjoin/internal/hypercube"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/transport"
	"mpcjoin/internal/workload"
)

var intSR = semiring.IntSumProd{}

// Config selects the sweep.
type Config struct {
	// Quick shrinks instances for the CI short lane.
	Quick bool
	// P is the simulated cluster size (default 8).
	P int
	// Seed drives both the engines' hash partitioning and, offset per
	// scenario, the fault schedules; the whole sweep is reproducible.
	Seed uint64
	// Workers sizes each run's OS worker pool (0 = serial); results must
	// not depend on it.
	Workers int
	// Transport, when set, carries every *faulted* run's exchange rounds
	// over the given backend (chaos -transport tcp) while each engine's
	// fault-free baseline stays in-process. Faults then execute physically
	// — frames elided before the socket, inboxes discarded peer-side — and
	// the sweep's bit-identity judgement doubles as a cross-transport
	// equivalence check. nil = everything in-process.
	Transport transport.Transport
}

// transportName resolves the backend label stamped into Result rows.
func (c Config) transportName() string {
	if c.Transport == nil {
		return "inproc"
	}
	return c.Transport.Name()
}

func (c Config) p() int {
	if c.P <= 0 {
		return 8
	}
	return c.P
}

func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Scenario is one fault schedule of the matrix. WantBudgetErr marks the
// schedule built to exhaust the retry budget: every engine must fail it
// with mpc.ErrFaultBudgetExceeded rather than return anything.
type Scenario struct {
	Name string
	Spec mpc.FaultSpec
	// WantBudgetErr: the run must fail with ErrFaultBudgetExceeded.
	WantBudgetErr bool
}

// Scenarios returns the sweep's fault schedules. Retryable schedules use
// a generous budget so the seeded runs deterministically absorb them;
// the runs are reproducible, so "absorbed once" means "absorbed always".
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "crash-round-1", Spec: mpc.FaultSpec{CrashRound: 1, MaxRetries: 4}},
		{Name: "crash-5pct", Spec: mpc.FaultSpec{CrashProb: 0.05, MaxRetries: 10}},
		{Name: "drop-20pct", Spec: mpc.FaultSpec{DropProb: 0.20, MaxRetries: 10}},
		{Name: "straggler-50pct", Spec: mpc.FaultSpec{StragglerProb: 0.5, StragglerDelay: 16}},
		{Name: "mixed", Spec: mpc.FaultSpec{CrashProb: 0.05, DropProb: 0.10, StragglerProb: 0.25, StragglerDelay: 8, MaxRetries: 12}},
		{Name: "budget-exhausted", Spec: mpc.FaultSpec{CrashProb: 1, MaxRetries: 2}, WantBudgetErr: true},
	}
}

// engine bundles a named engine with its workload and a runner that
// executes it under an optional fault plane.
type engine struct {
	name string
	run  func(cfg Config, fp *mpc.FaultPlane) (*relation.Relation[int64], mpc.Stats, error)
}

// Engines lists the swept engine names in order.
func Engines() []string {
	names := make([]string, len(engines))
	for i, e := range engines {
		names[i] = e.name
	}
	return names
}

// coreEngine runs q over inst through the core dispatcher, which covers
// every strategy the query service exposes.
func coreEngine(name string, strat core.Strategy, mk func(cfg Config) (*hypergraph.Query, db.Instance[int64])) engine {
	return engine{name: name, run: func(cfg Config, fp *mpc.FaultPlane) (*relation.Relation[int64], mpc.Stats, error) {
		q, inst := mk(cfg)
		o := core.Options{Servers: cfg.p(), Seed: cfg.Seed, Workers: cfg.Workers, Strategy: strat, Faults: fp}
		if fp != nil {
			o.Transport = cfg.Transport // baseline (fp == nil) stays in-process
		}
		return core.Execute(intSR, q, inst, o)
	}}
}

var engines = []engine{
	coreEngine("matmul", core.StrategyAuto, func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.MatMulQuery()
		inst, _ := workload.MatMulBlocks(cfg.scale(128, 32), 2, 2)
		return q, inst
	}),
	coreEngine("star", core.StrategyAuto, func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.StarQuery(3)
		inst, _ := workload.Blocks(q, cfg.scale(64, 16), 4)
		return q, inst
	}),
	coreEngine("line", core.StrategyAuto, func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.LineQuery(3)
		inst, _ := workload.Blocks(q, cfg.scale(64, 16), 4)
		return q, inst
	}),
	coreEngine("tree", core.StrategyTree, func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.Fig3Twig()
		inst, _ := workload.BlocksMulti(q, cfg.scale(16, 8), 2, 2)
		return q, inst
	}),
	coreEngine("yannakakis", core.StrategyYannakakis, func(cfg Config) (*hypergraph.Query, db.Instance[int64]) {
		q := hypergraph.MatMulQuery()
		inst, _ := workload.MatMulBlocks(cfg.scale(128, 32), 2, 2)
		return q, inst
	}),
	// The HyperCube full-join path (§1.4's alternative) bypasses the core
	// dispatcher, so it exercises the fault plane through a raw Exec scope
	// — and, returning no error, through mpc.Recover at this root.
	{name: "hypercube", run: func(cfg Config, fp *mpc.FaultPlane) (rel *relation.Relation[int64], st mpc.Stats, err error) {
		q := hypergraph.MatMulQuery()
		inst, _ := workload.BlocksMulti(q, cfg.scale(64, 16), 4, 2)
		defer mpc.Recover(&err)
		ex := mpc.NewExec(context.Background(), cfg.Workers)
		if fp != nil {
			ex = ex.WithFaults(fp)
			if cfg.Transport != nil {
				w, werr := cfg.Transport.Connect(context.Background())
				if werr != nil {
					return nil, mpc.Stats{}, fmt.Errorf("connecting %s transport: %w", cfg.Transport.Name(), werr)
				}
				if w != nil {
					defer w.Close()
					ex = ex.WithWire(w)
				}
			}
		}
		rels := make(map[string]dist.Rel[int64], len(q.Edges))
		for _, e := range q.Edges {
			rels[e.Name] = dist.FromRelationIn(ex, inst[e.Name], cfg.p())
		}
		res, st := hypercube.JoinAggregate(intSR, q, rels, cfg.Seed)
		return dist.ToRelation(res), st, nil
	}},
}

// Result is one (engine, scenario) run judged against the fault-free
// baseline of the same engine.
type Result struct {
	Engine   string `json:"engine"`
	Scenario string `json:"scenario"`
	// Transport names the backend the faulted run's rounds travelled over
	// ("inproc", "tcp"); the baseline always runs in-process.
	Transport string `json:"transport"`
	// Rows / RowsHash fingerprint the sorted output relation; Stats is
	// the base metered cost. For a retryable scenario, OK means all three
	// match the baseline exactly; for the budget scenario, OK means the
	// run failed with ErrFaultBudgetExceeded.
	Rows     int       `json:"rows"`
	RowsHash uint64    `json:"rows_hash"`
	Stats    mpc.Stats `json:"stats"`
	// Fault-plane accounting of the run.
	Injected  int    `json:"injected"`
	Detected  int    `json:"detected"`
	Retried   int    `json:"retried"`
	Absorbed  int    `json:"absorbed"`
	DelayUnit int64  `json:"delay_units"`
	BudgetErr bool   `json:"budget_err"`
	OK        bool   `json:"ok"`
	Detail    string `json:"detail,omitempty"`
}

// fingerprint hashes the sorted rows (schema, values, annotations) so
// two runs can be compared for bit-identical output without retaining
// both relations.
func fingerprint(rel *relation.Relation[int64]) (int, uint64) {
	rel.SortRows()
	h := fnv.New64a()
	for _, a := range rel.Schema() {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, row := range rel.Rows {
		for _, v := range row.Vals {
			put(int64(v))
		}
		put(row.W)
	}
	return len(rel.Rows), h.Sum64()
}

// Run sweeps every engine through every scenario and judges each run
// against that engine's fault-free baseline.
func Run(cfg Config) ([]Result, error) {
	var out []Result
	for _, e := range engines {
		baseRel, baseStats, err := e.run(cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s baseline: %w", e.name, err)
		}
		baseRows, baseHash := fingerprint(baseRel)

		for si, sc := range Scenarios() {
			spec := sc.Spec
			// Per-(engine, scenario) schedule seed: deterministic, but no
			// two cells share a schedule.
			spec.Seed = cfg.Seed*1000003 + uint64(si)*257 + uint64(len(e.name))
			fp := mpc.NewFaultPlane(spec)
			rel, st, err := e.run(cfg, fp)
			rep := fp.Report()
			r := Result{
				Engine: e.name, Scenario: sc.Name, Transport: cfg.transportName(),
				Injected: rep.Injected, Detected: rep.Detected,
				Retried: rep.Retried, Absorbed: rep.Absorbed,
				DelayUnit: rep.DelayUnits + rep.BackoffUnits,
				BudgetErr: errors.Is(err, mpc.ErrFaultBudgetExceeded),
			}
			switch {
			case sc.WantBudgetErr:
				r.OK = r.BudgetErr
				if !r.OK {
					r.Detail = fmt.Sprintf("want ErrFaultBudgetExceeded, got err=%v", err)
				}
			case err != nil:
				r.Detail = fmt.Sprintf("run failed: %v", err)
			default:
				r.Rows, r.RowsHash = fingerprint(rel)
				r.Stats = st
				switch {
				case r.Rows != baseRows || r.RowsHash != baseHash:
					r.Detail = fmt.Sprintf("rows diverged from baseline (%d/%x vs %d/%x)", r.Rows, r.RowsHash, baseRows, baseHash)
				case st != baseStats:
					r.Detail = fmt.Sprintf("stats diverged from baseline (%+v vs %+v)", st, baseStats)
				default:
					r.OK = true
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// Check returns a non-nil error listing every failed (engine, scenario).
func Check(results []Result) error {
	var bad []string
	for _, r := range results {
		if !r.OK {
			bad = append(bad, fmt.Sprintf("%s/%s: %s", r.Engine, r.Scenario, r.Detail))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("chaos: %d failure(s):\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}

// WriteJSON writes results as indented JSON (the CI artifact format).
func WriteJSON(w io.Writer, results []Result) error {
	if results == nil {
		results = []Result{}
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
