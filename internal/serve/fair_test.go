package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFairQueueFastPath(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 4, MaxQueue: 8})
	got, err := q.Acquire(context.Background(), "a", 3)
	if err != nil || got != 3 {
		t.Fatalf("got %d %v", got, err)
	}
	if q.InUse() != 3 {
		t.Fatalf("in use = %d", q.InUse())
	}
	q.Release(3)
	if q.InUse() != 0 {
		t.Fatalf("in use = %d after release", q.InUse())
	}
}

func TestFairQueueClampsOversized(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 2, MaxQueue: 8})
	got, err := q.Acquire(context.Background(), "a", 100)
	if err != nil || got != 2 {
		t.Fatalf("got %d %v, want clamp to 2", got, err)
	}
	q.Release(got)
}

func TestFairQueueGlobalBound(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 1, MaxQueue: 1})
	if _, err := q.Acquire(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		n, err := q.Acquire(context.Background(), "a", 1)
		if err == nil {
			q.Release(n)
		}
		errc <- err
	}()
	for q.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := q.Acquire(context.Background(), "b", 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	q.Release(1)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestFairQueueTenantQuota(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 1, MaxQueue: 10, TenantQueue: 2})
	if _, err := q.Acquire(context.Background(), "noisy", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Acquire(ctx, "noisy", 1)
		}()
	}
	for q.QueuedFor("noisy") != 2 {
		time.Sleep(time.Millisecond)
	}
	// Third queued request from the same tenant sheds on its quota...
	if _, err := q.Acquire(context.Background(), "noisy", 1); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("err = %v, want ErrTenantQueueFull", err)
	}
	// ...while another tenant still queues fine.
	quiet := make(chan error, 1)
	go func() {
		n, err := q.Acquire(context.Background(), "quiet", 1)
		if err == nil {
			q.Release(n)
		}
		quiet <- err
	}()
	for q.QueuedFor("quiet") != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel() // abandon the noisy waiters
	wg.Wait()
	q.Release(1)
	if err := <-quiet; err != nil {
		t.Fatalf("quiet tenant: %v", err)
	}
}

func TestFairQueueFIFOWithinTenant(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 1, MaxQueue: 8})
	if _, err := q.Acquire(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := q.Acquire(context.Background(), "a", 1); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			q.Release(1)
		}(i)
		// Serialize enqueue so FIFO order is well-defined.
		for q.QueuedFor("a") != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	q.Release(1)
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

// TestFairQueueWeightedInterleave parks a flood from a noisy tenant and one
// request from a quiet tenant, then verifies the quiet tenant is served
// after at most ~weight-ratio noisy grants, not after the whole flood.
func TestFairQueueWeightedInterleave(t *testing.T) {
	q := NewFairQueue(FairConfig{
		Capacity: 1,
		MaxQueue: 32,
		Weights:  map[string]int64{"noisy": 1, "quiet": 1},
	})
	if _, err := q.Acquire(context.Background(), "hold", 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	park := func(tenant string) {
		wg.Add(1)
		before := q.QueuedFor(tenant)
		go func() {
			defer wg.Done()
			if _, err := q.Acquire(context.Background(), tenant, 1); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			q.Release(1)
		}()
		for q.QueuedFor(tenant) != before+1 {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 6; i++ {
		park("noisy")
	}
	park("quiet")
	q.Release(1)
	wg.Wait()

	pos := -1
	for i, tenant := range order {
		if tenant == "quiet" {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("quiet tenant never served")
	}
	// With equal weights and stride scheduling, the quiet request must land
	// within the first couple of grants, not behind the 6-deep flood.
	if pos > 2 {
		t.Fatalf("quiet tenant served at position %d of %v; flood starved it", pos, order)
	}
}

func TestFairQueueAbandonReleasesSlot(t *testing.T) {
	q := NewFairQueue(FairConfig{Capacity: 1, MaxQueue: 4})
	if _, err := q.Acquire(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Acquire(ctx, "a", 1)
		errc <- err
	}()
	for q.Queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if q.Queued() != 0 {
		t.Fatalf("queued = %d after abandon", q.Queued())
	}
	q.Release(1)
	// The queue must still function normally.
	n, err := q.Acquire(context.Background(), "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	q.Release(n)
}
