// Package serve holds the serving-plane primitives of the mpcd query
// service: a bounded LRU result cache with tag invalidation (Cache), a
// single-flight group that coalesces concurrent identical executions with
// per-waiter cancellation (Flight), and a per-tenant weighted-fair
// admission queue (FairQueue).
//
// The package is deliberately free of HTTP and engine types — everything
// is generic or string-keyed — so the primitives can be unit-tested in
// isolation and reused by embedders. internal/server wires them into the
// daemon's query path; the determinism of the MPC model (same dataset
// version + canonical options + semiring + seed ⇒ bit-identical rows,
// Stats and trace) is what makes the cache and the coalescer sound.
package serve
