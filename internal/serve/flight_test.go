package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCoalesces(t *testing.T) {
	var f Flight[int]
	var execs atomic.Int64
	gate := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	vals := make([]int, waiters)
	outcomes := make([]FlightOutcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := f.Do(context.Background(), context.Background(), "k", func(ctx context.Context) (int, error) {
				execs.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i], outcomes[i] = v, out
		}(i)
	}
	// Let all callers enqueue before releasing the execution.
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	led := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Fatalf("waiter %d got %d", i, vals[i])
		}
		if outcomes[i] == Led {
			led++
		}
	}
	if led != 1 {
		t.Fatalf("%d leaders, want 1", led)
	}
}

func TestFlightWaiterCancelDoesNotCancelShared(t *testing.T) {
	var f Flight[int]
	gate := make(chan struct{})
	execDone := make(chan error, 1)

	lead := make(chan struct{})
	go func() {
		_, _, err := f.Do(context.Background(), context.Background(), "k", func(ctx context.Context) (int, error) {
			close(lead)
			<-gate
			execDone <- ctx.Err()
			return 7, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
	}()
	<-lead

	ctx, cancel := context.WithCancel(context.Background())
	joinErr := make(chan error, 1)
	var outc atomic.Int64
	go func() {
		_, out, err := f.Do(ctx, context.Background(), "k", func(context.Context) (int, error) {
			t.Error("joiner must not execute")
			return 0, nil
		})
		outc.Store(int64(out))
		joinErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-joinErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner err = %v, want context.Canceled", err)
	}
	if FlightOutcome(outc.Load()) != AbandonedShared {
		t.Fatalf("outcome = %d, want AbandonedShared", outc.Load())
	}
	close(gate)
	if err := <-execDone; err != nil {
		t.Fatalf("shared execution saw ctx err %v after one waiter abandoned", err)
	}
}

func TestFlightLastWaiterCancelsWithCause(t *testing.T) {
	var f Flight[int]
	started := make(chan struct{})
	cause := make(chan error, 1)

	ctx, cancel := context.WithCancelCause(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, out, err := f.Do(ctx, context.Background(), "k", func(execCtx context.Context) (int, error) {
			close(started)
			<-execCtx.Done()
			cause <- context.Cause(execCtx)
			return 0, execCtx.Err()
		})
		if out != AbandonedLast {
			t.Errorf("outcome = %d, want AbandonedLast", out)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	}()
	<-started
	sentinel := errors.New("drain")
	cancel(sentinel)
	<-done
	select {
	case got := <-cause:
		if !errors.Is(got, sentinel) {
			t.Fatalf("exec cause = %v, want sentinel", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shared execution was not cancelled")
	}
}

func TestFlightSequentialCallsRunFresh(t *testing.T) {
	var f Flight[int]
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, out, err := f.Do(context.Background(), context.Background(), "k", func(context.Context) (int, error) {
			return int(execs.Add(1)), nil
		})
		if err != nil || out != Led || v != i+1 {
			t.Fatalf("call %d: v=%d out=%d err=%v", i, v, out, err)
		}
	}
	if f.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", f.InFlight())
	}
}

func TestFlightErrorFansOut(t *testing.T) {
	var f Flight[int]
	sentinel := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := f.Do(context.Background(), context.Background(), "k", func(context.Context) (int, error) {
				<-gate
				return 0, sentinel
			})
			if !errors.Is(err, sentinel) {
				t.Errorf("err = %v, want sentinel", err)
			}
		}()
	}
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()
}
