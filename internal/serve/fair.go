package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrQueueFull is returned by FairQueue.Acquire when the global wait
// queue is at capacity: the server is saturated and the caller should
// shed the request rather than let the queue grow without bound.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrTenantQueueFull is returned when one tenant's share of the wait
// queue is exhausted while the global queue still has room — the
// per-tenant quota that keeps a flooding tenant from occupying every
// queue slot.
var ErrTenantQueueFull = errors.New("serve: tenant admission quota exhausted")

// FairConfig sizes a FairQueue.
type FairConfig struct {
	// Capacity is the total admissible weight (worker units).
	Capacity int64
	// MaxQueue bounds the global wait queue; beyond it Acquire sheds
	// with ErrQueueFull.
	MaxQueue int
	// TenantQueue bounds each tenant's share of the wait queue; beyond
	// it Acquire sheds with ErrTenantQueueFull. 0 means MaxQueue (only
	// the global bound applies).
	TenantQueue int
	// Weights maps tenant → dequeue share; tenants not listed get
	// weight 1. A tenant with weight 3 is granted capacity three times
	// as often as a weight-1 tenant when both have queued work.
	Weights map[string]int64
}

// FairQueue is a context-aware weighted semaphore with per-tenant
// bounded FIFO wait queues and weighted fair dequeue — the admission
// controller of the multi-tenant query service.
//
// Within a tenant, waiters are served strictly FIFO (a light late
// arrival never overtakes a parked heavy one). Across tenants, the
// dequeuer runs stride scheduling: each tenant with queued work carries
// a virtual pass, the tenant with the minimum pass is served next, and
// serving advances its pass by weight/Weights[tenant] — so a tenant
// flooding the queue cannot starve a quiet one, whose next request is
// scheduled at the current virtual time regardless of how many requests
// the flooder has parked.
type FairQueue struct {
	mu          sync.Mutex
	capacity    int64
	inUse       int64
	maxQueue    int
	tenantQueue int
	weights     map[string]int64

	tenants    map[string]*tenantQ // tenants with queued waiters
	queued     int                 // total queued waiters
	globalPass uint64              // virtual time: pass of the last scheduled tenant
}

type tenantQ struct {
	name    string
	waiters list.List // of *fairWaiter, FIFO
	pass    uint64
}

type fairWaiter struct {
	n     int64
	ready chan struct{} // closed once the waiter holds its weight
}

// strideScale keeps pass increments integral for weights up to 2^20.
const strideScale = 1 << 20

// NewFairQueue returns a fair admission queue for the given sizing.
func NewFairQueue(cfg FairConfig) *FairQueue {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.TenantQueue <= 0 || cfg.TenantQueue > cfg.MaxQueue {
		cfg.TenantQueue = cfg.MaxQueue
	}
	return &FairQueue{
		capacity:    cfg.Capacity,
		maxQueue:    cfg.MaxQueue,
		tenantQueue: cfg.TenantQueue,
		weights:     cfg.Weights,
	}
}

// Capacity returns the total admissible weight.
func (q *FairQueue) Capacity() int64 { return q.capacity }

// InUse returns the currently held weight.
func (q *FairQueue) InUse() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inUse
}

// Queued returns the total number of waiting acquirers.
func (q *FairQueue) Queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// QueuedFor returns tenant's waiting acquirers.
func (q *FairQueue) QueuedFor(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if tq := q.tenants[tenant]; tq != nil {
		return tq.waiters.Len()
	}
	return 0
}

// QueuedByTenant returns a snapshot of waiting acquirers per tenant.
func (q *FairQueue) QueuedByTenant() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		out[name] = tq.waiters.Len()
	}
	return out
}

func (q *FairQueue) weightOf(tenant string) int64 {
	if w := q.weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// Acquire blocks until n units of weight are held for tenant, ctx is
// done, or a queue bound is hit. n is clamped to the capacity so
// oversized requests degrade to "whole machine" rather than deadlocking.
// On a nil error the caller must Release the returned (clamped) weight.
func (q *FairQueue) Acquire(ctx context.Context, tenant string, n int64) (int64, error) {
	if n < 1 {
		n = 1
	}
	if n > q.capacity {
		n = q.capacity
	}
	q.mu.Lock()
	// Fast path: capacity available and nobody queued anywhere (a grant
	// here cannot overtake a parked waiter because there is none).
	if q.queued == 0 && q.inUse+n <= q.capacity {
		q.inUse += n
		q.mu.Unlock()
		return n, nil
	}
	if q.queued >= q.maxQueue {
		q.mu.Unlock()
		return 0, ErrQueueFull
	}
	tq := q.tenants[tenant]
	if tq == nil {
		// A tenant (re)entering the queue starts at the current virtual
		// time: it competes fairly from now on, with no credit for past
		// idleness and no debt from past floods.
		tq = &tenantQ{name: tenant, pass: q.globalPass}
		if q.tenants == nil {
			q.tenants = make(map[string]*tenantQ)
		}
		q.tenants[tenant] = tq
	}
	if tq.waiters.Len() >= q.tenantQueue {
		if tq.waiters.Len() == 0 {
			delete(q.tenants, tenant)
		}
		q.mu.Unlock()
		return 0, ErrTenantQueueFull
	}
	w := &fairWaiter{n: n, ready: make(chan struct{})}
	elem := tq.waiters.PushBack(w)
	q.queued++
	q.mu.Unlock()

	select {
	case <-w.ready:
		return n, nil
	case <-ctx.Done():
		q.mu.Lock()
		select {
		case <-w.ready:
			// The weight was granted concurrently with cancellation; the
			// caller is abandoning, so give it straight back.
			q.mu.Unlock()
			q.Release(n)
			return 0, ctx.Err()
		default:
			tq.waiters.Remove(elem)
			q.queued--
			if tq.waiters.Len() == 0 {
				delete(q.tenants, tenant)
			}
			// Removing a waiter can unblock others: the departed waiter
			// may have been the head capacity was reserved for.
			q.notifyLocked()
			q.mu.Unlock()
			return 0, ctx.Err()
		}
	}
}

// Release returns n units of weight and grants capacity to queued
// waiters in weighted fair order.
func (q *FairQueue) Release(n int64) {
	q.mu.Lock()
	q.inUse -= n
	if q.inUse < 0 {
		q.mu.Unlock()
		panic("serve: fair queue released more than held")
	}
	q.notifyLocked()
	q.mu.Unlock()
}

// notifyLocked grants capacity to the head waiter of the minimum-pass
// tenant while it fits; it stops at the first head that does not fit, so
// a parked heavy waiter is never starved by light arrivals behind it.
func (q *FairQueue) notifyLocked() {
	for q.queued > 0 {
		// Pick the tenant with the minimum pass; ties break by name so
		// the schedule is deterministic.
		var next *tenantQ
		for _, tq := range q.tenants {
			if next == nil || tq.pass < next.pass || (tq.pass == next.pass && tq.name < next.name) {
				next = tq
			}
		}
		front := next.waiters.Front()
		w := front.Value.(*fairWaiter)
		if q.inUse+w.n > q.capacity {
			return
		}
		q.inUse += w.n
		next.waiters.Remove(front)
		q.queued--
		q.globalPass = next.pass
		next.pass += uint64(w.n) * strideScale / uint64(q.weightOf(next.name))
		if next.waiters.Len() == 0 {
			delete(q.tenants, next.name)
		}
		close(w.ready)
	}
}
