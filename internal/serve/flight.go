package serve

import (
	"context"
	"sync"
)

// FlightOutcome reports how a Flight.Do caller was served.
type FlightOutcome int

const (
	// Led: this caller started the shared execution (fn ran on its behalf).
	Led FlightOutcome = iota
	// Joined: this caller coalesced onto an execution another caller led
	// and received the shared result.
	Joined
	// AbandonedShared: this caller's context ended while the shared
	// execution kept running for the remaining waiters.
	AbandonedShared
	// AbandonedLast: this caller's context ended and it was the last
	// waiter, so the shared execution was cancelled with the caller's
	// cancellation cause.
	AbandonedLast
)

// Flight coalesces concurrent executions that share a key: the first
// caller of Do for a key becomes the leader and fn runs exactly once; the
// immutable result fans out to every concurrent caller of the same key.
//
// Cancellation is per-waiter: each caller waits under its own context and
// a caller whose context ends gets that context's error while the shared
// execution keeps running for the remaining waiters. Only when the last
// waiter abandons is the execution itself cancelled (with the last
// waiter's cause), so nobody pays for a result nobody wants.
//
// The zero value is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done    chan struct{} // closed after val/err are set
	val     V
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

// Do returns the shared result for key. fn runs at most once per in-flight
// key, on a context derived from base (NOT from ctx — the execution must
// outlive any single waiter); ctx governs only this caller's wait. The
// result value is shared across waiters and must be treated as immutable.
func (f *Flight[V]) Do(ctx, base context.Context, key string, fn func(context.Context) (V, error)) (V, FlightOutcome, error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	c, joined := f.calls[key]
	outcome := Joined
	if !joined {
		execCtx, cancel := context.WithCancelCause(base)
		c = &flightCall[V]{done: make(chan struct{}), cancel: cancel}
		f.calls[key] = c
		outcome = Led
		go func() {
			v, err := fn(execCtx)
			f.mu.Lock()
			c.val, c.err = v, err
			// Drop the call before publishing so a later arrival starts a
			// fresh execution (its result should come from the caller's
			// cache, not a stale flight).
			delete(f.calls, key)
			f.mu.Unlock()
			close(c.done)
			cancel(context.Canceled) // release the exec context's resources
		}()
	}
	c.waiters++
	f.mu.Unlock()

	select {
	case <-c.done:
		return c.val, outcome, c.err
	case <-ctx.Done():
	}
	// The result may have landed in the same instant the context fired;
	// prefer it — the caller paid for it.
	select {
	case <-c.done:
		return c.val, outcome, c.err
	default:
	}
	f.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	f.mu.Unlock()
	var zero V
	if last {
		c.cancel(context.Cause(ctx))
		return zero, AbandonedLast, ctx.Err()
	}
	return zero, AbandonedShared, ctx.Err()
}

// InFlight returns the number of executions currently in flight.
func (f *Flight[V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// Waiters returns the number of callers currently waiting on in-flight
// executions (leaders included) — an observability hook for tests and
// metrics that need to know when coalescing has actually attached.
func (f *Flight[V]) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.calls {
		n += c.waiters
	}
	return n
}
