package serve

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU result cache. Entries are keyed by an exact
// string key (no hashing, so no collisions) and carry a set of tags;
// InvalidateTags drops every entry carrying a tag — the server tags each
// result with the dataset names it was computed from, so a registration
// invalidates exactly the results it obsoletes.
//
// All methods are safe for concurrent use. Values are returned as stored:
// callers that cache pointers must treat the pointee as immutable.
type Cache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	byTag map[string]map[*list.Element]struct{}

	hits, misses, evictions, invalidations int64
}

type centry[V any] struct {
	key  string
	tags []string
	val  V
}

// CacheStats is a point-in-time copy of the cache counters.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
}

// NewCache returns a cache bounded to max entries; max < 1 is clamped
// to 1 (a zero-capacity LRU is a miss counter, not a cache).
func NewCache[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{
		max:   max,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
		byTag: make(map[string]map[*list.Element]struct{}),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*centry[V]).val, true
}

// Put stores val under key with the given invalidation tags, evicting the
// least recently used entry beyond the bound. Re-putting an existing key
// replaces its value and tags.
func (c *Cache[V]) Put(key string, tags []string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.untagLocked(el)
		e := el.Value.(*centry[V])
		e.val, e.tags = val, tags
		c.tagLocked(el, tags)
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&centry[V]{key: key, tags: tags, val: val})
	c.byKey[key] = el
	c.tagLocked(el, tags)
	for c.ll.Len() > c.max {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// InvalidateTags removes every entry carrying any of the given tags and
// returns how many entries were dropped.
func (c *Cache[V]) InvalidateTags(tags ...string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, tag := range tags {
		for el := range c.byTag[tag] {
			c.removeLocked(el)
			n++
		}
	}
	c.invalidations += int64(n)
	return n
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
	}
}

func (c *Cache[V]) tagLocked(el *list.Element, tags []string) {
	for _, tag := range tags {
		set := c.byTag[tag]
		if set == nil {
			set = make(map[*list.Element]struct{})
			c.byTag[tag] = set
		}
		set[el] = struct{}{}
	}
}

func (c *Cache[V]) untagLocked(el *list.Element) {
	e := el.Value.(*centry[V])
	for _, tag := range e.tags {
		set := c.byTag[tag]
		delete(set, el)
		if len(set) == 0 {
			delete(c.byTag, tag)
		}
	}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	c.untagLocked(el)
	delete(c.byKey, el.Value.(*centry[V]).key)
	c.ll.Remove(el)
}
