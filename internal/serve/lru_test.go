package serve

import (
	"fmt"
	"testing"
)

func TestCacheGetPutBasics(t *testing.T) {
	c := NewCache[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []string{"R"}, 1)
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("got %v %v, want 1 true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache[int](3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprint("k", i), nil, i)
	}
	// Touch k0 so k1 becomes least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", nil, 3)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should survive", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheRePutReplacesValueAndTags(t *testing.T) {
	c := NewCache[int](4)
	c.Put("a", []string{"R"}, 1)
	c.Put("a", []string{"S"}, 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("got %d, want 2", v)
	}
	if n := c.InvalidateTags("R"); n != 0 {
		t.Fatalf("stale tag R invalidated %d entries", n)
	}
	if n := c.InvalidateTags("S"); n != 1 {
		t.Fatalf("tag S invalidated %d entries, want 1", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0", c.Len())
	}
}

func TestCacheInvalidateTagsSelective(t *testing.T) {
	c := NewCache[int](8)
	c.Put("q1", []string{"R", "S"}, 1)
	c.Put("q2", []string{"S"}, 2)
	c.Put("q3", []string{"T"}, 3)
	if n := c.InvalidateTags("S"); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := c.Get("q3"); !ok {
		t.Fatal("q3 should survive")
	}
	if _, ok := c.Get("q1"); ok {
		t.Fatal("q1 should be gone")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}
}

func TestCacheMaxClamped(t *testing.T) {
	c := NewCache[int](0)
	c.Put("a", nil, 1)
	c.Put("b", nil, 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint("k", (g+i)%24)
				c.Put(k, []string{fmt.Sprint("t", i%3)}, i)
				c.Get(k)
				if i%50 == 0 {
					c.InvalidateTags(fmt.Sprint("t", i%3))
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 16 {
		t.Fatalf("len = %d exceeds bound", c.Len())
	}
}
