// Package server implements mpcd, the long-lived join-aggregate query
// service over the simulated MPC engine. Datasets are registered once and
// held in memory; queries then reference them by name and run concurrently,
// each on its own execution scope (per-query worker runtime and
// context) — the engine-side guarantee that makes a multi-tenant service
// possible without process-global runtime state.
//
// The service owns three cross-cutting concerns the library leaves to its
// caller:
//
//   - Admission control: a weighted semaphore bounds the total OS
//     parallelism of concurrently executing queries, with a bounded FIFO
//     queue and load shedding beyond it (HTTP 429).
//   - End-to-end cancellation: per-request deadlines and client
//     disconnects flow through context into the engine, which stops at the
//     next simulated round barrier; cancelled work never produces a
//     partial response.
//   - Observability: /metrics exposes in-flight/queued/completed/cancelled
//     counts, a per-engine breakdown, and the cumulative metered MPC cost
//     (SumLoad, rounds, total communication) of everything the service has
//     executed.
//
// HTTP surface:
//
//	GET  /healthz      — liveness; 503 while draining
//	GET  /metrics      — MetricsSnapshot JSON
//	POST /v1/datasets  — register a dataset (rows inline or generated)
//	GET  /v1/datasets  — list registered dataset names
//	POST /v1/query     — run a join-aggregate query
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"mpcjoin/internal/core"
	"mpcjoin/internal/db"
	"mpcjoin/internal/hypergraph"
	"mpcjoin/internal/mpc"
	"mpcjoin/internal/relation"
	"mpcjoin/internal/semiring"
	"mpcjoin/internal/transport"
)

// Config sizes the service.
type Config struct {
	// Capacity is the admission capacity in worker units — the total OS
	// parallelism concurrently executing queries may hold. Defaults to
	// GOMAXPROCS.
	Capacity int64
	// MaxQueue bounds the admission wait queue; requests beyond it are
	// shed with HTTP 429. Defaults to 64.
	MaxQueue int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (mpcd's
	// -pprof flag). Off by default: the profiling surface is for
	// operators, not for the query API's clients.
	EnablePprof bool
	// Transport, when non-nil, runs every query's exchange barriers on
	// the given backend (mpcd cluster mode: transport.TCP over the
	// -peers list). nil keeps the in-process path. Results and metered
	// Stats are identical either way; each query execution connects its
	// own wire, so concurrent queries multiplex over the peer tier
	// independently.
	Transport transport.Transport
}

// Server is the query service. Construct with New; serve via Handler.
type Server struct {
	cfg      Config
	reg      *Registry
	sem      *Semaphore
	met      *Metrics
	mux      *http.ServeMux
	draining atomic.Bool
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.Capacity <= 0 {
		cfg.Capacity = int64(runtime.GOMAXPROCS(0))
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	s := &Server{
		cfg: cfg,
		reg: NewRegistry(),
		sem: NewSemaphore(cfg.Capacity, cfg.MaxQueue),
		met: NewMetrics(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/query", s.handleQueryV1)
	s.mux.HandleFunc("POST /v2/query", s.handleQueryV2)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the dataset store (tests and embedding callers).
func (s *Server) Registry() *Registry { return s.reg }

// Metrics exposes the counters (tests and embedding callers).
func (s *Server) Metrics() *Metrics { return s.met }

// SetDraining flips drain mode: while draining, /healthz reports 503 and
// new queries and registrations are shed with 503, while in-flight queries
// run to completion (callers pair this with http.Server.Shutdown, which
// waits for them).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

// clientError marks an error as caused by the request itself (bad schema,
// dangling dataset reference, invalid semiring): the client must change
// the request, so the handler answers 4xx and counts failed_client.
// Anything not wrapped — an engine failure on a well-formed request — is
// an internal error: 5xx and failed_internal.
type clientError struct{ err error }

func (e *clientError) Error() string { return e.err.Error() }
func (e *clientError) Unwrap() error { return e.err }

func isClientError(err error) bool {
	var ce *clientError
	return errors.As(err, &ce)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.met.Snapshot()
	snap.Datasets = s.reg.Len()
	snap.AdmitInUse = s.sem.InUse()
	snap.AdmitCap = s.sem.Capacity()
	snap.AdmitQueued = s.sem.Queued()
	snap.Draining = s.Draining()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.WritePrometheus(w, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// DatasetResponse acknowledges a registration.
type DatasetResponse struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	req, err := DecodeDatasetRequest(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var rows []relation.Row[int64]
	if req.Generate != nil {
		rows = GenerateRows(req.Arity, req.Generate.N, req.Generate.Dom, req.Generate.Seed)
	} else {
		rows = make([]relation.Row[int64], len(req.Rows))
		buf := make([]relation.Value, len(req.Rows)*req.Arity)
		for i, row := range req.Rows {
			vals := buf[i*req.Arity : (i+1)*req.Arity : (i+1)*req.Arity]
			for j := range vals {
				vals[j] = relation.Value(row[j+1])
			}
			rows[i] = relation.Row[int64]{Vals: vals, W: row[0]}
		}
	}
	if err := s.reg.Put(req.Name, req.Arity, rows); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, DatasetResponse{Name: req.Name, Rows: len(rows)})
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"datasets": s.reg.Names()})
}

// QueryResponse is the body of a successful POST /v1/query.
type QueryResponse struct {
	// Attrs is the output schema, in group_by order.
	Attrs []string `json:"attrs"`
	// Rows are output tuples as [annotation, v1, v2, ...], sorted by
	// values. The annotation is a number for the int64-carrier semirings
	// and a boolean for "bools".
	Rows [][]any `json:"rows"`
	// Stats is the metered MPC cost of this query.
	Stats mpc.Stats `json:"stats"`
	// Class is the query's structural class; Engine the algorithm that ran.
	Class  string `json:"class"`
	Engine string `json:"engine"`
	// WallNS is the query's wall-clock execution time in nanoseconds
	// (excluding queueing).
	WallNS int64 `json:"wall_ns"`
	// Rounds is the per-round load timeline, present only when the request
	// set "trace": true.
	Rounds []mpc.RoundTrace `json:"rounds,omitempty"`
	// Faults is the fault-injection accounting, present only when the
	// request carried a faults block (v2). Rows and Stats of a fault-
	// injected query whose faults were absorbed by the retry budget are
	// identical to a fault-free run.
	Faults *mpc.FaultReport `json:"faults,omitempty"`
}

// handleQueryV1 is the deprecated flat-shape query endpoint: a thin
// adapter over the same execution path as /v2/query, kept byte-for-byte
// backward compatible (flat request knobs, {"error": "..."} responses)
// and stamped with deprecation headers pointing at the successor.
func (s *Server) handleQueryV1(w http.ResponseWriter, r *http.Request) {
	markDeprecated(w)
	s.serveQuery(w, r, apiV1)
}

// handleQueryV2 is the current query endpoint: options object, faults
// block, typed error envelope.
func (s *Server) handleQueryV2(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, apiV2)
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if s.Draining() {
		s.met.QueryRejected()
		v.writeError(w, http.StatusServiceUnavailable, "drain", "draining")
		return
	}
	decode := DecodeQueryRequest
	if v == apiV2 {
		decode = DecodeQueryRequestV2
	}
	req, err := decode(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		v.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	// Resolve relation → dataset bindings before spending any admission
	// budget; a dangling reference is a client error, not load.
	q := &hypergraph.Query{}
	insts := make(map[string]*Dataset, len(req.Relations))
	for _, rel := range req.Relations {
		dsName := rel.Dataset
		if dsName == "" {
			dsName = rel.Name
		}
		ds, ok := s.reg.Get(dsName)
		if !ok {
			v.writeError(w, http.StatusNotFound, "not_found", "dataset %q not registered", dsName)
			return
		}
		if ds.Arity != len(rel.Attrs) {
			v.writeError(w, http.StatusBadRequest, "bad_request", "relation %q has %d attrs but dataset %q has arity %d",
				rel.Name, len(rel.Attrs), dsName, ds.Arity)
			return
		}
		attrs := make([]hypergraph.Attr, len(rel.Attrs))
		for i, a := range rel.Attrs {
			attrs[i] = hypergraph.Attr(a)
		}
		q.Edges = append(q.Edges, hypergraph.Edge{Name: rel.Name, Attrs: attrs})
		insts[rel.Name] = ds
	}
	for _, a := range req.GroupBy {
		q.Output = append(q.Output, hypergraph.Attr(a))
	}

	o := core.Options{
		Servers:   req.Servers,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Transport: s.cfg.Transport,
	}
	switch req.Strategy {
	case "yannakakis":
		o.Strategy = core.StrategyYannakakis
	case "tree":
		o.Strategy = core.StrategyTree
	}
	if req.Faults != nil {
		o.Faults = mpc.NewFaultPlane(req.Faults.Spec(req.Seed))
	}
	pl, err := core.PlanQuery(q, o.Strategy)
	if err != nil {
		v.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}

	// Admission: hold weight proportional to the OS parallelism this query
	// runs with for the duration of its execution. The wait respects the
	// client's context, so a disconnected client frees its queue slot.
	// workers: 0 (the default) runs serially, which still occupies one OS
	// worker — clamp to 1 so default queries cannot bypass the capacity.
	weight := int64(req.Workers)
	if req.Workers < 0 {
		weight = int64(runtime.GOMAXPROCS(0))
	}
	if weight < 1 {
		weight = 1
	}

	// Deadline: derived before Acquire so it covers queue wait as well as
	// execution — a query must not sit in the admission queue past its own
	// deadline and then still run.
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if req.DeadlineMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
	}
	defer cancel()

	s.met.QueryQueued()
	weight, err = s.sem.Acquire(ctx, weight)
	s.met.QueryDequeued()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.met.QueryRejected()
			v.writeError(w, http.StatusTooManyRequests, "queue_full", "admission queue full")
		case errors.Is(err, context.DeadlineExceeded):
			s.met.QueryCancelled("deadline")
			v.writeError(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded while queued")
		default:
			s.met.QueryCancelled(s.disconnectCause())
			// The client is gone; nobody reads the response.
		}
		return
	}
	defer s.sem.Release(weight)

	s.met.QueryStarted()
	defer s.met.QueryFinished()

	if req.Trace {
		o.Tracer = mpc.NewTracer()
	}
	start := time.Now()
	out, err := s.execute(ctx, req, q, insts, o)
	wall := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.QueryCancelled("deadline")
			v.writeError(w, http.StatusGatewayTimeout, "deadline", "deadline exceeded after %v", wall)
		case errors.Is(err, context.Canceled):
			cause := s.disconnectCause()
			s.met.QueryCancelled(cause)
			// The client may be gone; the write is best-effort.
			v.writeError(w, http.StatusServiceUnavailable, "drain", "cancelled (%s)", cause)
		case errors.Is(err, mpc.ErrFaultBudgetExceeded):
			s.met.QueryFailedInternal()
			s.met.FaultBudgetExhausted()
			if o.Faults != nil {
				s.met.FaultsObserved(o.Faults.Report())
			}
			v.writeError(w, http.StatusInternalServerError, "fault_budget", "%v", err)
		case isClientError(err):
			s.met.QueryFailedClient()
			v.writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		default:
			s.met.QueryFailedInternal()
			v.writeError(w, http.StatusInternalServerError, "internal", "internal error: %v", err)
		}
		return
	}
	s.met.QueryCompleted(pl.Engine, out.Stats)
	out.Class = pl.Class.String()
	out.Engine = pl.Engine
	out.WallNS = wall.Nanoseconds()
	if o.Tracer != nil {
		out.Rounds = o.Tracer.Rounds()
	}
	if o.Faults != nil {
		rep := o.Faults.Report()
		out.Faults = &rep
		s.met.FaultsObserved(rep)
	}
	writeJSON(w, http.StatusOK, out)
}

// disconnectCause labels a context.Canceled outcome: during a drain the
// daemon (not the client) cancels in-flight work, so the cancellation is
// recorded as "drain" rather than a client disconnect.
func (s *Server) disconnectCause() string {
	if s.Draining() {
		return "drain"
	}
	return "client"
}

// execute materializes the query's instance from the registry (aliasing
// the stored rows; the engine's unowned placement copies them into shards)
// and runs it under the requested semiring.
func (s *Server) execute(ctx context.Context, req *QueryRequest, q *hypergraph.Query, insts map[string]*Dataset, o core.Options) (*QueryResponse, error) {
	if req.Semiring == "bools" {
		inst := make(db.Instance[bool], len(insts))
		for name, ds := range insts {
			rel := newRelation[bool](q, name)
			rel.Rows = make([]relation.Row[bool], len(ds.Rows))
			for i, row := range ds.Rows {
				rel.Rows[i] = relation.Row[bool]{Vals: row.Vals, W: row.W != 0}
			}
			inst[name] = rel
		}
		return runTyped[bool](ctx, semiring.BoolOrAnd{}, q, inst, o, func(w bool) any { return w })
	}

	inst := make(db.Instance[int64], len(insts))
	for name, ds := range insts {
		rel := newRelation[int64](q, name)
		rel.Rows = ds.Rows
		inst[name] = rel
	}
	annot := func(w int64) any { return w }
	switch req.Semiring {
	case "", "ints":
		return runTyped[int64](ctx, semiring.IntSumProd{}, q, inst, o, annot)
	case "minplus":
		return runTyped[int64](ctx, semiring.MinPlus{}, q, inst, o, annot)
	case "maxplus":
		return runTyped[int64](ctx, semiring.MaxPlus{}, q, inst, o, annot)
	case "maxmin":
		return runTyped[int64](ctx, semiring.MaxMin{}, q, inst, o, annot)
	}
	return nil, &clientError{fmt.Errorf("unknown semiring %q", req.Semiring)}
}

// newRelation builds an empty relation carrying the query's schema for
// edge name; the caller fills Rows.
func newRelation[W any](q *hypergraph.Query, name string) *relation.Relation[W] {
	for _, e := range q.Edges {
		if e.Name == name {
			attrs := make([]relation.Attr, len(e.Attrs))
			for i, a := range e.Attrs {
				attrs[i] = relation.Attr(a)
			}
			return relation.New[W](attrs...)
		}
	}
	panic("server: relation not in query: " + name)
}

// runTyped executes the query over a typed instance and renders the rows.
func runTyped[W any](ctx context.Context, sr semiring.Semiring[W], q *hypergraph.Query, inst db.Instance[W], o core.Options, annot func(W) any) (*QueryResponse, error) {
	// Validate up front so request-shape problems classify as client
	// errors; whatever core then fails on (beyond cancellation) is an
	// internal engine error on a well-formed request.
	if err := q.Validate(); err != nil {
		return nil, &clientError{err}
	}
	if err := db.Validate(q, inst); err != nil {
		return nil, &clientError{err}
	}
	rel, st, err := core.ExecuteContext(ctx, sr, q, inst, o)
	if err != nil {
		return nil, err
	}
	rel.SortRows()
	resp := &QueryResponse{Stats: st, Rows: make([][]any, len(rel.Rows))}
	for _, a := range rel.Schema() {
		resp.Attrs = append(resp.Attrs, string(a))
	}
	for i, row := range rel.Rows {
		vals := make([]any, 0, len(row.Vals)+1)
		vals = append(vals, annot(row.W))
		for _, v := range row.Vals {
			vals = append(vals, int64(v))
		}
		resp.Rows[i] = vals
	}
	return resp, nil
}
